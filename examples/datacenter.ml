(* The data-center scenario from the paper's introduction: bursts of jobs
   with heavy-tailed sizes and wildly mixed values arrive at a cluster of
   speed-scalable processors.  Finishing everything wastes energy on
   worthless work; rejecting everything wastes revenue.  PD navigates the
   tradeoff online with a proven guarantee.

   Run with:  dune exec examples/datacenter.exe *)

open Speedscale_model
open Speedscale_workload

let () =
  let power = Power.make 3.0 in
  let machines = 8 in
  let inst = Generate.datacenter ~power ~machines ~seed:2024 ~n:60 in

  Printf.printf
    "=== Data-center scenario: %d jobs, %d processors, alpha = %g ===\n\n"
    (Instance.n_jobs inst) machines (Power.alpha power);

  (* Strategy 1: PD decides online which jobs are worth their energy. *)
  let pd = Speedscale_core.Pd.run inst in
  let pd_cost = Cost.total pd.cost in

  (* Strategy 2: finish everything (multiprocessor Optimal Available). *)
  let all_inst = Instance.with_values inst (fun _ -> Float.infinity) in
  let moa = Speedscale_multi.Moa.schedule all_inst in
  let moa_energy = Schedule.energy power moa in

  (* Strategy 3: do nothing, lose every value. *)
  let reject_all = Instance.total_value inst in

  Printf.printf "%-28s %12s %12s %12s\n" "strategy" "energy" "lost value"
    "total cost";
  Printf.printf "%-28s %12.2f %12.2f %12.2f\n" "PD (this paper)"
    pd.cost.energy pd.cost.lost_value pd_cost;
  Printf.printf "%-28s %12.2f %12.2f %12.2f\n" "finish everything (mOA)"
    moa_energy 0.0 moa_energy;
  Printf.printf "%-28s %12.2f %12.2f %12.2f\n" "reject everything" 0.0
    reject_all reject_all;

  Printf.printf "\nPD rejected %d of %d jobs (the ones not worth their energy):\n"
    (List.length pd.rejected) (Instance.n_jobs inst);
  List.iter
    (fun id ->
      let j = Instance.job inst id in
      Printf.printf "  job %2d: workload %.2f, value %.2f, density %.2f\n" id
        j.workload j.value (Job.density j))
    pd.rejected;

  Printf.printf
    "\ncertified: PD cost <= %.2f x OPT (dual bound %.2f, guarantee %g)\n"
    (pd_cost /. pd.dual_bound) pd.dual_bound pd.guarantee;

  match Schedule.validate inst pd.schedule with
  | Ok () -> Printf.printf "schedule validated: OK\n"
  | Error e -> Printf.printf "schedule validation FAILED: %s\n" e
