(* The adversarial lower-bound family (Bansal-Kimbrel-Pruhs), used in the
   paper's Theorem 3 to show PD's analysis is tight: as n grows, PD's cost
   approaches alpha^alpha times the offline optimum.  On this family PD
   coincides with the classical OA algorithm.

   Run with:  dune exec examples/adversary.exe *)

open Speedscale_model
open Speedscale_workload
open Speedscale_util

let () =
  let alpha = 2.0 in
  let bound = alpha ** alpha in
  Printf.printf
    "=== Lower-bound family, alpha = %g (guarantee alpha^alpha = %g) ===\n\n"
    alpha bound;
  let tab =
    Tab.create ~title:"PD on the adversarial family"
      ~header:[ "n"; "PD cost"; "OPT (YDS)"; "ratio"; "progress to alpha^alpha" ]
  in
  List.iter
    (fun n ->
      let inst = Generate.bkp_lower_bound ~alpha ~n () in
      let pd = Speedscale_core.Pd.run inst in
      let opt =
        Speedscale_single.Yds.energy inst.power (Array.to_list inst.jobs)
      in
      let ratio = Cost.total pd.cost /. opt in
      Tab.add_row tab
        [
          string_of_int n;
          Tab.cell_f (Cost.total pd.cost);
          Tab.cell_f opt;
          Tab.cell_f ratio;
          Tab.bar ~width:30 ~max_value:bound ratio;
        ])
    [ 2; 4; 8; 16; 32; 64; 128 ];
  Tab.print tab;
  Printf.printf
    "The ratio climbs toward %g but never exceeds it: the guarantee is tight.\n"
    bound
