(* Section 3 of the paper observes that PD's rejection policy, with the
   optimal delta = alpha^(1-alpha), collapses on a single processor to
   exactly the Chan-Lam-Li speed threshold.  This example sweeps a job's
   value across the threshold and watches PD and CLL flip from reject to
   accept at the same point.

   Run with:  dune exec examples/rejection_study.exe *)

open Speedscale_model
open Speedscale_util

let () =
  let power = Power.make 3.0 in
  (* A fixed job shape: workload 2 over a unit window (density 2). *)
  let job_with_value v =
    Job.make ~id:0 ~release:0.0 ~deadline:1.0 ~workload:2.0 ~value:v
  in
  (* The critical value: PD accepts iff density <= threshold_speed(v), i.e.
     v >= delta * w * P'(density). *)
  let critical =
    Power.delta_star power *. 2.0 *. Power.deriv power 2.0
  in
  Printf.printf
    "=== Rejection-policy equivalence (alpha = %g) ===\n\n\
     job: w = 2 on [0,1) => planned speed 2; critical value = %.4f\n\n"
    (Power.alpha power) critical;
  let tab =
    Tab.create ~title:"PD vs CLL accept/reject decisions"
      ~header:
        [ "value"; "PD threshold speed"; "CLL threshold speed"; "PD"; "CLL" ]
  in
  List.iter
    (fun factor ->
      let v = critical *. factor in
      let j = job_with_value v in
      let inst = Instance.make ~power ~machines:1 [ j ] in
      let pd = Speedscale_core.Pd.run inst in
      let cll = Speedscale_single.Cll.schedule inst in
      let pd_thr = Speedscale_core.Rejection.threshold_speed power j in
      let cll_thr = Speedscale_single.Cll.threshold_speed power j in
      Tab.add_row tab
        [
          Printf.sprintf "%.4f (%.2fx)" v factor;
          Tab.cell_f pd_thr;
          Tab.cell_f cll_thr;
          (if pd.rejected = [] then "accept" else "reject");
          (if cll.rejected = [] then "accept" else "reject");
        ])
    [ 0.25; 0.5; 0.9; 0.99; 1.01; 1.1; 2.0; 4.0 ];
  Tab.print tab;
  Printf.printf
    "Both algorithms flip at the same critical value: PD's primal-dual\n\
     rejection rule IS the CLL threshold on one processor (Section 3).\n"
