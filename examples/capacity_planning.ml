(* Capacity planning: how many processors should the data center buy?
   The model prices both energy and lost value, so sweeping the machine
   count m under a fixed workload gives a direct cost curve — more
   machines let PD run slower (energy drops superlinearly) and reject
   less, with diminishing returns.

   Run with:  dune exec examples/capacity_planning.exe *)

open Speedscale_model
open Speedscale_util

let () =
  let power = Power.make 3.0 in
  let tab =
    Tab.create ~title:"PD cost vs fleet size (same 48-job burst workload)"
      ~header:
        [ "m"; "energy"; "lost value"; "total"; "rejected"; "certified ratio" ]
  in
  let costs =
    List.map
      (fun machines ->
        (* the same logical workload, arriving at the same times *)
        let inst =
          Speedscale_workload.Generate.random ~power ~machines:4 ~seed:7 ~n:48
            ~arrivals:(Bursty { burst = 8; gap = 1.0 })
            ~sizes:(Pareto_size { shape = 1.9; scale = 0.5 })
            ~laxity:(0.5, 2.0)
            ~values:(Lottery { low = 0.6; high = 25.0; p_high = 0.3 })
        in
        let inst = Instance.make ~power ~machines (Array.to_list inst.jobs) in
        let r = Speedscale_core.Pd.run inst in
        Tab.add_row tab
          [
            string_of_int machines;
            Tab.cell_f r.cost.energy;
            Tab.cell_f r.cost.lost_value;
            Tab.cell_f (Cost.total r.cost);
            Printf.sprintf "%d/48" (List.length r.rejected);
            Tab.cell_f (Cost.total r.cost /. r.dual_bound);
          ];
        (machines, Cost.total r.cost))
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Tab.print tab;
  let best, best_cost =
    List.fold_left
      (fun (bm, bc) (m, c) -> if c < bc then (m, c) else (bm, bc))
      (0, Float.infinity) costs
  in
  Printf.printf
    "Total cost decreases with m (energy convexity + fewer rejections) and\n\
     flattens once every burst fits: beyond m = %d (cost %.2f) extra\n\
     processors buy almost nothing.\n"
    best best_cost
