(* Quickstart: build a small instance by hand, run the paper's PD
   algorithm, and inspect everything it produces — decisions, the final
   schedule, its cost, and the per-instance optimality certificate.

   Run with:  dune exec examples/quickstart.exe *)

open Speedscale_model

let () =
  (* A system of 2 speed-scalable processors with power P(s) = s^3
     (cube-root rule: the classical CMOS exponent). *)
  let power = Power.make 3.0 in

  (* Four jobs arriving online.  Job 3 is large but nearly worthless:
     finishing it would cost more energy than its value. *)
  let jobs =
    [
      Job.make ~id:0 ~release:0.0 ~deadline:2.0 ~workload:2.0 ~value:50.0;
      Job.make ~id:1 ~release:0.0 ~deadline:1.0 ~workload:1.5 ~value:40.0;
      Job.make ~id:2 ~release:0.5 ~deadline:3.0 ~workload:1.0 ~value:30.0;
      Job.make ~id:3 ~release:1.0 ~deadline:1.5 ~workload:3.0 ~value:0.8;
    ]
  in
  let inst = Instance.make ~power ~machines:2 jobs in

  Printf.printf "=== PD quickstart: %d jobs on %d processors, alpha = %g ===\n\n"
    (Instance.n_jobs inst) inst.machines (Power.alpha power);

  let result = Speedscale_core.Pd.run inst in

  (* 1. the online decisions *)
  List.iter
    (fun (d : Speedscale_core.Pd.decision) ->
      Printf.printf
        "job %d (r=%g d=%g w=%g v=%g): %s   lambda=%.4f planned speed=%.4f\n"
        d.job.id d.job.release d.job.deadline d.job.workload d.job.value
        (if d.accepted then "ACCEPT" else "reject")
        d.lambda d.planned_speed)
    result.decisions;

  (* 2. the schedule, as slices and as a Gantt chart *)
  Printf.printf "\nSchedule:\n%s"
    (Format.asprintf "%a" Schedule.pp result.schedule);
  Printf.printf "\n%s"
    (Speedscale_metrics.Gantt.render ~width:60 result.schedule);

  (* 3. cost and the certificate *)
  let cost = Cost.total result.cost in
  Printf.printf
    "\nenergy = %.4f, lost value = %.4f, total cost = %.4f\n"
    result.cost.energy result.cost.lost_value cost;
  Printf.printf
    "dual certificate g(lambda) = %.4f  (a proven lower bound on OPT)\n"
    result.dual_bound;
  Printf.printf
    "=> certified ratio cost / OPT <= %.4f   (Theorem 3 guarantees <= %g)\n"
    (cost /. result.dual_bound)
    result.guarantee;

  (* 4. sanity: the schedule respects every model constraint *)
  match Schedule.validate inst result.schedule with
  | Ok () -> Printf.printf "schedule validated: OK\n"
  | Error e -> Printf.printf "schedule validation FAILED: %s\n" e
