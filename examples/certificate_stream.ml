(* The live optimality certificate: after every arrival, weak duality
   makes g(lambda-so-far) a lower bound on the optimal cost of the prefix
   instance — no future knowledge needed.  A data center operator can
   watch PD's certified regret bound evolve in real time.

   Run with:  dune exec examples/certificate_stream.exe *)

open Speedscale_model
open Speedscale_util

let () =
  let power = Power.make 2.5 in
  let machines = 4 in
  let inst =
    Speedscale_workload.Generate.diurnal ~power ~machines ~seed:42 ~n:40 ()
  in
  Printf.printf
    "=== Live certificate stream: diurnal load, %d jobs, m = %d, alpha = %g ===\n\n"
    (Instance.n_jobs inst) machines (Power.alpha power);
  let pd = Speedscale_core.Pd.create ~power ~machines () in
  let tab =
    Tab.create ~title:"certified regret bound after each arrival"
      ~header:
        [ "arrival"; "t"; "decision"; "cost so far"; "g(lambda)";
          "certified ratio"; "guarantee" ]
  in
  let bound = Power.competitive_bound power in
  Array.iteri
    (fun i (j : Job.t) ->
      let d = Speedscale_core.Pd.arrive pd j in
      if i mod 4 = 3 || i = Instance.n_jobs inst - 1 then begin
        (* cost of the current partial schedule + values lost so far *)
        let sched = Speedscale_core.Pd.schedule pd in
        let energy = Schedule.energy power sched in
        let lost =
          Ksum.sum_by
            (fun id -> (Instance.job inst id).value)
            sched.rejected
        in
        let g = Speedscale_core.Pd.certificate pd in
        Tab.add_row tab
          [
            string_of_int (i + 1);
            Printf.sprintf "%.2f" j.release;
            (if d.accepted then "accept" else "reject");
            Tab.cell_f (energy +. lost);
            Tab.cell_f g;
            Tab.cell_f ((energy +. lost) /. g);
            Tab.cell_f bound;
          ]
      end)
    inst.jobs;
  Tab.print tab;
  Printf.printf
    "Every row's ratio is a machine-checked upper bound on how far the\n\
     prefix schedule is from the prefix optimum; Theorem 3 caps it at %g.\n"
    bound
