(* psched — command-line front end for the profitable speed-scaling
   scheduler library.

     psched generate --preset datacenter -n 40 -m 4 -o inst.txt
     psched run inst.txt --algorithm pd --show-schedule
     psched stream inst.txt --algorithm pd
     psched compare inst.txt
     psched certify inst.txt

   Instances are plain text (see Io); every run is validated against the
   model's feasibility rules before anything is reported. *)

open Cmdliner
open Speedscale_model
open Speedscale_sim
module Online = Speedscale_engine.Online
module Json = Speedscale_obs.Json
module Service = Speedscale_service.Service
module Checkpoint = Speedscale_service.Checkpoint

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)
(* ------------------------------------------------------------------ *)

let instance_arg =
  let doc = "Instance file (format: see `psched generate`)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc)

let algorithm_conv =
  let parse s =
    let s = String.lowercase_ascii s in
    let found =
      List.find_opt
        (fun a -> String.lowercase_ascii a.Driver.name = s)
        Driver.all
    in
    match found with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown algorithm %S (known: %s)" s
             (String.concat ", "
                (List.map (fun a -> a.Driver.name) Driver.all))))
  in
  let print ppf a = Format.pp_print_string ppf a.Driver.name in
  Arg.conv (parse, print)

(* ------------------------------------------------------------------ *)
(* Decision records (shared by `run --decisions-only` and `stream`)     *)
(* ------------------------------------------------------------------ *)

(* One canonical-JSON record per arrival.  The batch `run` fold and the
   line-by-line `stream` front end both emit through here, so diffing
   their outputs (the @stream-smoke alias) certifies that streaming an
   instance reproduces the batch decisions byte for byte. *)
let decision_record ~seq ~plan_before (d : Online.decision)
    (plan : Schedule.t) =
  let opt_float = function None -> Json.Null | Some f -> Json.Float f in
  let n_slices = List.length plan.slices in
  Json.Obj
    [
      ("seq", Json.Int seq);
      ("job", Json.Int d.job_id);
      ("accepted", Json.Bool d.accepted);
      ("lambda", opt_float d.lambda);
      ("planned_speed", opt_float d.planned_speed);
      ("plan_slices", Json.Int n_slices);
      ("plan_delta", Json.Int (n_slices - plan_before));
      ("rejected", Json.Int (List.length plan.rejected));
    ]

let summary_record ~algorithm ~power (decisions : Online.decision list)
    (plan : Schedule.t) =
  let accepted, rejected =
    List.partition (fun (d : Online.decision) -> d.accepted) decisions
  in
  Json.Obj
    [
      ("summary", Json.Str algorithm);
      ("jobs", Json.Int (List.length decisions));
      ("accepted", Json.Int (List.length accepted));
      ("rejected", Json.Int (List.length rejected));
      ("plan_slices", Json.Int (List.length plan.slices));
      ("energy", Json.Float (Schedule.energy power plan));
    ]

(* Fold an online engine over arrivals, printing one record per arrival. *)
let print_decision_fold t ~emit jobs =
  let seq = ref 0 and plan_before = ref 0 in
  let decisions_rev = ref [] in
  List.iter
    (fun j ->
      let d = Online.arrive t j in
      let plan = Online.current_plan t in
      emit (decision_record ~seq:!seq ~plan_before:!plan_before d plan);
      plan_before := List.length plan.Schedule.slices;
      incr seq;
      decisions_rev := d :: !decisions_rev)
    jobs;
  List.rev !decisions_rev

let online_engine_of (alg : Driver.algorithm) =
  match alg.engine with
  | Some e -> e
  | None ->
    failwith
      (Printf.sprintf
         "%s is an offline algorithm; only online engines can stream \
          (known: %s)"
         alg.Driver.name
         (String.concat ", " (List.map Online.name Online.all)))

(* ------------------------------------------------------------------ *)
(* generate                                                             *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let preset =
    let doc = "Workload preset: datacenter, random, or bkp." in
    Arg.(value & opt string "random" & info [ "preset" ] ~doc)
  in
  let alpha =
    Arg.(value & opt float 3.0 & info [ "alpha" ] ~doc:"Energy exponent.")
  in
  let machines =
    Arg.(value & opt int 1 & info [ "m"; "machines" ] ~doc:"Processor count.")
  in
  let n = Arg.(value & opt int 20 & info [ "n" ] ~doc:"Number of jobs.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Output file (default: stdout).")
  in
  let run preset alpha machines n seed out =
    let power = Power.make alpha in
    let inst =
      match preset with
      | "datacenter" ->
        Speedscale_workload.Generate.datacenter ~power ~machines ~seed ~n
      | "bkp" -> Speedscale_workload.Generate.bkp_lower_bound ~alpha ~n ()
      | "random" ->
        Speedscale_workload.Generate.random ~power ~machines ~seed ~n
          ~arrivals:(Poisson 1.0)
          ~sizes:(Uniform_size (0.3, 2.5))
          ~laxity:(0.4, 2.5)
          ~values:(Uniform_value (0.2, 20.0))
      | other -> failwith (Printf.sprintf "unknown preset %S" other)
    in
    let text = Io.to_string inst in
    match out with
    | None -> print_string text
    | Some path ->
      Io.save path inst;
      Printf.printf "wrote %d jobs to %s\n" (Instance.n_jobs inst) path
  in
  let info =
    Cmd.info "generate" ~doc:"Generate a workload instance file."
  in
  Cmd.v info Term.(const run $ preset $ alpha $ machines $ n $ seed $ out)

(* ------------------------------------------------------------------ *)
(* run                                                                  *)
(* ------------------------------------------------------------------ *)

let print_report (r : Driver.report) =
  Printf.printf "%-12s energy=%.4f lost=%.4f total=%.4f  (%.1f ms)  %s\n"
    r.algorithm r.cost.energy r.cost.lost_value (Cost.total r.cost)
    (r.elapsed_s *. 1000.0)
    (match r.validation with Ok () -> "valid" | Error e -> "INVALID: " ^ e)

let run_cmd =
  let algorithm =
    Arg.(
      value
      & opt algorithm_conv Driver.pd
      & info [ "a"; "algorithm" ] ~doc:"Algorithm to run (default PD).")
  in
  let show_schedule =
    Arg.(value & flag & info [ "show-schedule" ] ~doc:"Print the slices.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Replay the resulting schedule through the discrete-event \
             engine and print the event trace.")
  in
  let decisions_only =
    Arg.(
      value & flag
      & info [ "decisions-only" ]
          ~doc:
            "Print one canonical JSON record per arrival (the online \
             decision fold) and nothing else; requires an online \
             algorithm.  Byte-compatible with `psched stream`.")
  in
  let run file algorithm show_schedule trace decisions_only =
    let inst = Io.load file in
    if not (algorithm.Driver.applicable inst) then
      failwith
        (Printf.sprintf "%s is not applicable to this instance"
           algorithm.Driver.name);
    if decisions_only then begin
      let e = online_engine_of algorithm in
      let t = Online.start e (Online.params_of_instance inst) in
      let decisions =
        print_decision_fold t
          ~emit:(fun r -> print_endline (Json.to_string r))
          (Array.to_list inst.jobs)
      in
      print_endline
        (Json.to_string
           (summary_record ~algorithm:(Online.name e) ~power:inst.power
              decisions (Online.finalize t)))
    end
    else begin
      let r = Driver.evaluate ~clock:Unix.gettimeofday algorithm inst in
      print_report r;
      if show_schedule then
        print_string (Format.asprintf "%a" Schedule.pp r.schedule);
      if trace then begin
        let replay = Speedscale_engine.Executor.replay inst r.schedule in
        List.iter
          (fun e ->
            print_endline
              (Format.asprintf "%a" Speedscale_engine.Executor.pp_event e))
          replay.events;
        Printf.printf "\nenergy %.6f, makespan %.6f, %d events\n"
          replay.total_energy replay.makespan
          (List.length replay.events)
      end
    end
  in
  let info = Cmd.info "run" ~doc:"Run one algorithm on an instance." in
  Cmd.v info
    Term.(
      const run $ instance_arg $ algorithm $ show_schedule $ trace
      $ decisions_only)

(* ------------------------------------------------------------------ *)
(* stream / serve                                                       *)
(* ------------------------------------------------------------------ *)

(* Every user-facing failure of the streaming front ends goes through
   here: a one-line diagnostic on stderr (with the input line number
   whenever one is known) and exit 2 — the same discipline as
   bench-diff, never an uncaught exception with a backtrace. *)
let stream_die cmd fmt =
  Fmt.kstr
    (fun msg ->
      Printf.eprintf "psched %s: %s\n" cmd msg;
      exit 2)
    fmt

(* Parse the instance text format as an event stream, validating every
   line as it is read.  Rejects — with line-numbered exit-2 errors —
   anything [Job.make] would throw on later (NaN or negative workloads,
   deadline <= release, ...), plus out-of-order arrivals and headers
   after the first job, so the engines downstream only ever see
   well-formed, release-ordered arrivals. *)
let parse_stream ~cmd ic ~on_alpha ~on_machines ~on_job =
  let fail lineno fmt = stream_die cmd ("line %d: " ^^ fmt) lineno in
  let lineno = ref 0 in
  let last_release = ref Float.neg_infinity in
  let saw_job = ref false in
  let parse_float what v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> fail !lineno "bad %s %S" what v
  in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let line = String.trim line in
       if line = "" || line.[0] = '#' then ()
       else
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [ "alpha"; v ] ->
           if !saw_job then fail !lineno "'alpha' header after the first job";
           let a = parse_float "alpha" v in
           if not (Float.is_finite a) then fail !lineno "bad alpha %S" v;
           (match Power.make a with
           | p -> on_alpha !lineno p
           | exception Invalid_argument m -> fail !lineno "%s" m)
         | [ "machines"; v ] -> (
           if !saw_job then
             fail !lineno "'machines' header after the first job";
           match int_of_string_opt v with
           | Some m when m >= 1 -> on_machines !lineno m
           | Some m -> fail !lineno "machines must be >= 1, got %d" m
           | None -> fail !lineno "bad machines %S" v)
         | [ "job"; r; d; w; v ] ->
           let release = parse_float "release" r in
           let deadline = parse_float "deadline" d in
           let workload = parse_float "workload" w in
           let value =
             if v = "inf" then Float.infinity else parse_float "value" v
           in
           if not (Float.is_finite release && release >= 0.) then
             fail !lineno "release must be finite and >= 0, got %s" r;
           if not (Float.is_finite deadline && deadline > release) then
             fail !lineno
               "deadline must be finite and exceed the release (deadline \
                %s, release %s)"
               d r;
           if not (Float.is_finite workload && workload > 0.) then
             fail !lineno "workload must be positive and finite, got %s" w;
           if Float.is_nan value || value < 0. then
             fail !lineno "value must be >= 0, got %s" v;
           if release < !last_release then
             fail !lineno
               "release %s is before the previous arrival (%g); streams \
                must be release-ordered"
               r !last_release;
           last_release := release;
           saw_job := true;
           on_job !lineno ~release ~deadline ~workload ~value
         | _ -> fail !lineno "unrecognized %S" line
     done
   with End_of_file -> ())

let opt_float = function None -> Json.Null | Some f -> Json.Float f

(* Per-arrival record of the sharded path.  Unlike {!decision_record} it
   carries the shard and skips the plan fields: rebuilding the plan after
   every arrival is what made long streams quadratic, and a service
   cannot afford it. *)
let sharded_record (ev : Service.ev) =
  let d = ev.Service.decision in
  Json.Obj
    [
      ("seq", Json.Int ev.Service.seq);
      ("job", Json.Int d.Online.job_id);
      ("shard", Json.Int ev.Service.shard);
      ("accepted", Json.Bool d.accepted);
      ("lambda", opt_float d.lambda);
      ("planned_speed", opt_float d.planned_speed);
    ]

(* Summaries of the sharded path are derived from final engine states
   (plus the global sequence counter) only — never from the decision
   history — so a run killed and restored from a checkpoint prints the
   very same bytes as one that ran straight through. *)
let sharded_summaries ~engine ~total_seq svc plans =
  let distinct_jobs slices =
    List.sort_uniq Int.compare
      (List.map (fun (s : Schedule.slice) -> s.job) slices)
  in
  let shard_rows =
    Array.to_list
      (Array.mapi
         (fun i (plan : Schedule.t) ->
           let p = (Service.shard_params svc i).Online.power in
           Json.Obj
             [
               ("shard", Json.Int i);
               ("machines", Json.Int plan.machines);
               ("accepted", Json.Int (List.length (distinct_jobs plan.slices)));
               ("rejected", Json.Int (List.length plan.rejected));
               ("plan_slices", Json.Int (List.length plan.slices));
               ("energy", Json.Float (Schedule.energy p plan));
             ])
         plans)
  in
  let sum f = Array.fold_left (fun acc p -> acc + f p) 0 plans in
  let energy =
    Array.to_list plans
    |> List.mapi (fun i p ->
           Schedule.energy (Service.shard_params svc i).Online.power p)
    |> List.fold_left ( +. ) 0.
  in
  let global =
    Json.Obj
      [
        ("summary", Json.Str (Online.name engine ^ "-sharded"));
        ("shards", Json.Int (Array.length plans));
        ("jobs", Json.Int total_seq);
        ( "accepted",
          Json.Int
            (sum (fun (p : Schedule.t) -> List.length (distinct_jobs p.slices)))
        );
        ( "rejected",
          Json.Int (sum (fun (p : Schedule.t) -> List.length p.rejected)) );
        ( "plan_slices",
          Json.Int (sum (fun (p : Schedule.t) -> List.length p.slices)) );
        ("energy", Json.Float energy);
      ]
  in
  shard_rows @ [ global ]

(* The sharded admission loop shared by `psched serve` and
   `psched stream --shards`.  [kill_after] is the crash-injection hook
   the @serve-soak alias uses: emit every record with seq < N, flush,
   exit 0 — no summary, no drain-to-EOF — so a later --restore run can
   be byte-diffed against the straight-through output. *)
let run_sharded ~cmd ~engine ~delta ~shards:k ~workers ~snapshot_dir
    ~snapshot_every ~restore ~kill_after ~migrate_every ~summary_only ic =
  let fail fmt = stream_die cmd fmt in
  if k < 1 then fail "--shards must be >= 1, got %d" k;
  let svc =
    match restore with
    | None -> ref None
    | Some path ->
      let manifest =
        if Sys.file_exists path && Sys.is_directory path then
          Filename.concat path Checkpoint.manifest_name
        else path
      in
      let s =
        match Service.restore ?workers ~manifest () with
        | s -> s
        | exception Failure m -> fail "%s" m
      in
      ref (Some s)
  in
  let alpha = ref None and machines = ref None in
  let emit evs =
    if not summary_only then
      List.iter
        (fun ev -> print_endline (Json.to_string (sharded_record ev)))
        evs
  in
  let killed = ref false in
  let arrivals = ref 0 in
  let get_svc lineno =
    match !svc with
    | Some s -> s
    | None ->
      let power =
        match !alpha with
        | Some p -> p
        | None -> fail "line %d: job before the 'alpha' header line" lineno
      in
      let m =
        match !machines with
        | Some m -> m
        | None ->
          fail "line %d: job before the 'machines' header line" lineno
      in
      if m < k then
        fail
          "line %d: %d machines cannot be split across %d shards (need \
           machines >= shards)"
          lineno m k;
      (* Split the machine pool across the shards: m/k each, the first
         m mod k shards get one more. *)
      let params i =
        let mi = (m / k) + if i < m mod k then 1 else 0 in
        Online.params ?delta ~power ~machines:mi ()
      in
      let s =
        match Service.create ?workers ~engine ~params ~shards:k () with
        | s -> s
        | exception Invalid_argument m -> fail "line %d: %s" lineno m
      in
      svc := Some s;
      s
  in
  let on_job lineno ~release ~deadline ~workload ~value =
    if not !killed then begin
      let s = get_svc lineno in
      let idx = !arrivals in
      incr arrivals;
      (* A restored service replays nothing: the checkpoint already holds
         the first [seq] arrivals, so this run just skips them. *)
      if idx >= Service.seq s then begin
        let j =
          Job.make ~id:idx ~release ~deadline ~workload ~value
        in
        (match Service.submit s j with
        | evs -> emit evs
        | exception e -> fail "line %d: %s" lineno (Printexc.to_string e));
        let seq = Service.seq s in
        (match snapshot_dir with
        | Some dir when snapshot_every > 0 && seq mod snapshot_every = 0 ->
          Service.checkpoint s ~dir
        | _ -> ());
        if migrate_every > 0 && seq mod migrate_every = 0 then begin
          let shard = seq / migrate_every mod Service.shards s in
          let worker =
            (Service.worker_of s ~shard + 1) mod Service.workers s
          in
          Service.migrate s ~shard ~worker
        end;
        match kill_after with
        | Some n when seq >= n ->
          emit (Service.drain s);
          Service.shutdown s;
          flush stdout;
          killed := true
        | _ -> ()
      end
    end
  in
  parse_stream ~cmd ic
    ~on_alpha:(fun _ p -> alpha := Some p)
    ~on_machines:(fun _ m -> machines := Some m)
    ~on_job;
  if not !killed then begin
    match !svc with
    | None -> fail "no jobs in the stream"
    | Some s ->
      emit (Service.drain s);
      let plans = Service.finalize s in
      List.iter
        (fun row -> print_endline (Json.to_string row))
        (sharded_summaries ~engine:(Service.engine s)
           ~total_seq:(Service.seq s) s plans);
      (match snapshot_dir with
      | Some dir when snapshot_every = 0 -> Service.checkpoint s ~dir
      | _ -> ());
      Service.shutdown s
  end;
  if !killed then exit 0

let engine_conv =
  let parse s =
    match Online.find s with
    | Some e -> Ok e
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown online engine %S (known: %s)" s
             (String.concat ", " (List.map Online.name Online.all))))
  in
  let print ppf e = Format.pp_print_string ppf (Online.name e) in
  Arg.conv (parse, print)

let stream_input_arg =
  let doc = "Arrival stream (instance text format); '-' reads stdin." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"STREAM" ~doc)

let stream_engine_arg =
  Arg.(
    value
    & opt engine_conv Online.pd
    & info [ "a"; "algorithm" ] ~doc:"Online engine (default pd).")

let stream_delta_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "delta" ] ~doc:"PD rejection parameter (default alpha^(1-alpha)).")

let stream_summary_only_arg =
  Arg.(
    value & flag
    & info [ "summary-only" ]
        ~doc:
          "Suppress the per-arrival decision records; emit only the final \
           summary record(s).  On the single-engine path this also skips \
           the plan rebuild each record requires, making long soak \
           streams linear instead of quadratic in the number of arrivals.")

let stream_workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ]
        ~doc:"Worker domains for the sharded path (default: one per shard).")

let stream_snapshot_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-dir" ]
        ~doc:
          "Checkpoint directory for the sharded path.  With \
           --snapshot-every N a checkpoint is committed every N \
           arrivals; without it, once after the last arrival.")

let stream_snapshot_every_arg =
  Arg.(
    value & opt int 0
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:"Commit a checkpoint to --snapshot-dir every N arrivals.")

let stream_restore_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "restore" ] ~docv:"DIR|MANIFEST"
        ~doc:
          "Restore the service from a committed checkpoint (a directory \
           containing a manifest, or the manifest path itself) before \
           reading the stream; arrivals the checkpoint already covers \
           are skipped.  Engine, shard count and per-shard parameters \
           come from the manifest.")

let stream_kill_after_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "kill-after" ] ~docv:"N"
        ~doc:
          "Crash injection for failover tests: emit the decision records \
           for the first N arrivals, flush, and exit 0 — no summary.")

let stream_cmd =
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Partition arrivals across K engine shards running on \
             separate domains (default 1: the single-engine path, whose \
             output is byte-identical to `psched run --decisions-only`).")
  in
  let snapshot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ]
          ~doc:
            "Write the final engine snapshot to this file (single-engine \
             path; written atomically via a temp file and rename).")
  in
  let run input engine delta snapshot_out summary_only shards workers
      snapshot_dir snapshot_every restore kill_after =
    let cmd = "stream" in
    let ic =
      if input = "-" then stdin
      else
        match open_in input with
        | ic -> ic
        | exception Sys_error m -> stream_die cmd "%s" m
    in
    Fun.protect
      ~finally:(fun () -> if input <> "-" then close_in ic)
      (fun () ->
        if shards > 1 || restore <> None then begin
          (match snapshot_out with
          | Some _ ->
            stream_die cmd
              "--snapshot is the single-engine flag; use --snapshot-dir \
               with --shards"
          | None -> ());
          run_sharded ~cmd ~engine ~delta ~shards ~workers ~snapshot_dir
            ~snapshot_every ~restore ~kill_after ~migrate_every:0
            ~summary_only ic
        end
        else begin
          (* Single-engine path: arrivals are consumed line by line, so
             the engine demonstrably never sees a job before its line is
             read.  Header lines (alpha, machines) must precede the
             first job line. *)
          let alpha = ref None and machines = ref None in
          let state = ref None in
          let seq = ref 0 and plan_before = ref 0 in
          let decisions_rev = ref [] in
          let on_job lineno ~release ~deadline ~workload ~value =
            let t =
              match !state with
              | Some t -> t
              | None ->
                let power =
                  match !alpha with
                  | Some p -> p
                  | None ->
                    stream_die cmd
                      "line %d: job before the 'alpha' header line" lineno
                in
                let m =
                  match !machines with
                  | Some m -> m
                  | None ->
                    stream_die cmd
                      "line %d: job before the 'machines' header line"
                      lineno
                in
                let t =
                  Online.start engine
                    (Online.params ?delta ~power ~machines:m ())
                in
                state := Some t;
                t
            in
            let j =
              Job.make ~id:!seq ~release ~deadline ~workload ~value
            in
            let dec =
              match Online.arrive t j with
              | d -> d
              | exception e ->
                stream_die cmd "line %d: %s" lineno (Printexc.to_string e)
            in
            if not summary_only then begin
              let plan = Online.current_plan t in
              print_endline
                (Json.to_string
                   (decision_record ~seq:!seq ~plan_before:!plan_before dec
                      plan));
              plan_before := List.length plan.Schedule.slices
            end;
            incr seq;
            decisions_rev := dec :: !decisions_rev
          in
          parse_stream ~cmd ic
            ~on_alpha:(fun _ p -> alpha := Some p)
            ~on_machines:(fun _ m -> machines := Some m)
            ~on_job;
          match !state with
          | None -> stream_die cmd "no jobs in the stream"
          | Some t ->
            let power = (Online.params_of t).Online.power in
            print_endline
              (Json.to_string
                 (summary_record ~algorithm:(Online.name engine) ~power
                    (List.rev !decisions_rev)
                    (Online.finalize t)));
            (match snapshot_out with
            | None -> ()
            | Some path ->
              Speedscale_service.Atomic_io.write ~path (Online.snapshot t))
        end)
  in
  let info =
    Cmd.info "stream"
      ~doc:
        "Feed arrival events line by line through an online engine, \
         emitting one decision record per arrival."
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Reads the instance text format as an event stream: header \
             lines fix the model (alpha, machines), then every 'job' line \
             is an arrival handed to the engine immediately.  Output is \
             one canonical JSON record per arrival (accept/reject, \
             multiplier, planned speed, plan delta) plus a final summary \
             record — byte-identical to `psched run --decisions-only` on \
             the same instance, which is the online=batch equivalence the \
             @stream-smoke alias checks.";
          `P
            "With --shards K > 1 (or --restore) the arrivals are \
             hash-partitioned across K engine instances running on \
             separate domains — see `psched serve` for the long-running \
             front end with checkpointing and live migration.  Malformed \
             streams (NaN or non-positive workloads, deadline <= \
             release, out-of-order arrivals, missing headers) are \
             rejected with a line-numbered message and exit status 2.";
        ]
  in
  Cmd.v info
    Term.(
      const run $ stream_input_arg $ stream_engine_arg $ stream_delta_arg
      $ snapshot_out $ stream_summary_only_arg $ shards $ stream_workers_arg
      $ stream_snapshot_dir_arg $ stream_snapshot_every_arg
      $ stream_restore_arg $ stream_kill_after_arg)

let serve_cmd =
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"K"
          ~doc:"Engine shards to partition arrivals across (default 4).")
  in
  let migrate_every =
    Arg.(
      value & opt int 0
      & info [ "migrate-every" ] ~docv:"N"
          ~doc:
            "Live-migrate one shard to the next worker domain every N \
             arrivals (0: never).  Exercises drain/snapshot/restore \
             under load; the decision stream is unaffected.")
  in
  let run input engine delta summary_only shards workers snapshot_dir
      snapshot_every restore kill_after migrate_every =
    let cmd = "serve" in
    let ic =
      if input = "-" then stdin
      else
        match open_in input with
        | ic -> ic
        | exception Sys_error m -> stream_die cmd "%s" m
    in
    Fun.protect
      ~finally:(fun () -> if input <> "-" then close_in ic)
      (fun () ->
        run_sharded ~cmd ~engine ~delta ~shards ~workers ~snapshot_dir
          ~snapshot_every ~restore ~kill_after ~migrate_every ~summary_only
          ic)
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Sharded admission-control service: partition an arrival stream \
         across engine shards on separate domains, with checkpointing, \
         restore and live shard migration."
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Runs the lib/service admission loop over the input stream: \
             each arrival is routed to a shard by a deterministic hash \
             of its id, shards decide independently on their slice of \
             the machine pool, and decisions are merged back into one \
             stream in global arrival order — byte-identical run over \
             run, at any worker count, under migration, and across \
             kill/restore.";
          `P
            "--snapshot-dir plus --snapshot-every N commit a consistent \
             checkpoint (per-shard `online-snapshot v1` files plus a \
             digest-carrying manifest, renamed into place atomically) \
             every N arrivals.  A killed service restarts with --restore \
             and skips the arrivals the checkpoint already covers; the \
             concatenated output equals the straight-through run's, byte \
             for byte, which is exactly what the @serve-soak alias \
             checks.";
        ]
  in
  Cmd.v info
    Term.(
      const run $ stream_input_arg $ stream_engine_arg $ stream_delta_arg
      $ stream_summary_only_arg $ shards $ stream_workers_arg
      $ stream_snapshot_dir_arg $ stream_snapshot_every_arg
      $ stream_restore_arg $ stream_kill_after_arg $ migrate_every)

(* ------------------------------------------------------------------ *)
(* compare                                                              *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let run file =
    let inst = Io.load file in
    Printf.printf "instance: %s\n\n" (Format.asprintf "%a" Instance.pp inst);
    List.iter
      (fun alg ->
        if alg.Driver.applicable inst then
          print_report (Driver.evaluate ~clock:Unix.gettimeofday alg inst))
      Driver.all
  in
  let info =
    Cmd.info "compare" ~doc:"Run every applicable algorithm on an instance."
  in
  Cmd.v info Term.(const run $ instance_arg)

(* ------------------------------------------------------------------ *)
(* engines                                                              *)
(* ------------------------------------------------------------------ *)

let engines_cmd =
  let run () =
    print_endline "online engines (usable with run/stream/serve):";
    List.iter
      (fun e ->
        Printf.printf "  %-12s %-15s %s\n" (Online.name e)
          (Online.family_name (Online.family e))
          (Online.description e))
      Online.all;
    print_endline "";
    print_endline "offline baselines (compare only):";
    List.iter
      (fun (alg : Driver.algorithm) ->
        if alg.engine = None then
          Printf.printf "  %-12s %-15s %s\n" alg.name "offline"
            alg.description)
      Driver.all
  in
  let info =
    Cmd.info "engines"
      ~doc:
        "List every registered engine with its scheduling-model family \
         (preemptive, non-preemptive, migratory) and the offline baselines."
  in
  Cmd.v info Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* certify                                                              *)
(* ------------------------------------------------------------------ *)

let certify_cmd =
  let run file =
    let inst = Io.load file in
    let r = Speedscale_core.Pd.run inst in
    let cost = Cost.total r.cost in
    Printf.printf "PD cost            : %.6f\n" cost;
    Printf.printf "dual bound g(l)    : %.6f  (proven <= OPT)\n" r.dual_bound;
    Printf.printf "certified ratio    : %.6f\n" (cost /. r.dual_bound);
    Printf.printf "guarantee (a^a)    : %.6f\n" r.guarantee;
    Printf.printf "accepted/rejected  : %d/%d\n"
      (List.length r.accepted) (List.length r.rejected);
    if cost <= (r.guarantee *. r.dual_bound) +. 1e-9 then
      print_endline "Theorem 3 certificate: HOLDS"
    else print_endline "Theorem 3 certificate: VIOLATED (bug!)"
  in
  let info =
    Cmd.info "certify"
      ~doc:"Run PD and print its per-instance optimality certificate."
  in
  Cmd.v info Term.(const run $ instance_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                              *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let run file =
    let inst = Io.load file in
    let r = Speedscale_core.Pd.run inst in
    let a = Speedscale_core.Analysis.analyze inst r in
    Printf.printf "%-5s %-11s %9s %9s %9s %9s %9s\n" "job" "category"
      "lambda" "shat" "xhat" "E_lambda" "E_PD";
    Array.iter
      (fun (ji : Speedscale_core.Analysis.job_info) ->
        Printf.printf "%-5d %-11s %9.4f %9.4f %9.4f %9.4f %9.4f\n" ji.id
          (Speedscale_core.Analysis.category_name ji.category)
          ji.lambda ji.shat ji.xhat ji.e_lambda ji.e_pd)
      a.jobs;
    Printf.printf
      "\ng = %.6f (g1 %.4f + g2 %.4f + g3 %.4f); cost(PD) = %.6f\n" a.g_total
      a.g1 a.g2 a.g3 a.cost_pd;
    Printf.printf
      "checks: traces-disjoint=%b prop7=%b prop8b=%b L9=%b L10=%b L11=%b thm3=%b\n"
      a.traces_disjoint a.prop7_ok a.prop8b_ok a.lemma9_ok a.lemma10_ok
      a.lemma11_ok a.theorem3_ok
  in
  let info =
    Cmd.info "analyze"
      ~doc:"Run PD and print the Section 4 proof anatomy (traces, categories)."
  in
  Cmd.v info Term.(const run $ instance_arg)

(* ------------------------------------------------------------------ *)
(* provision                                                            *)
(* ------------------------------------------------------------------ *)

let provision_cmd =
  let run file =
    let inst = Io.load file in
    let must = Instance.with_values inst (fun _ -> Float.infinity) in
    Printf.printf "%-4s %14s\n" "m" "min speed cap";
    List.iter
      (fun m ->
        let inst_m =
          Instance.make ~power:must.power ~machines:m
            (Array.to_list must.jobs)
        in
        Printf.printf "%-4d %14.6f\n" m
          (Speedscale_flow.Feasibility.min_speed_cap inst_m))
      [ 1; 2; 4; 8; 16 ]
  in
  let info =
    Cmd.info "provision"
      ~doc:
        "Minimum feasible speed cap (max-flow bisection) across fleet sizes."
  in
  Cmd.v info Term.(const run $ instance_arg)

(* ------------------------------------------------------------------ *)
(* replay                                                               *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~doc:"Write the event trace to this CSV file.")
  in
  let run file csv =
    let inst = Io.load file in
    let r = Speedscale_core.Pd.run inst in
    let run = Speedscale_engine.Executor.replay inst r.schedule in
    List.iter
      (fun e ->
        print_endline
          (Format.asprintf "%a" Speedscale_engine.Executor.pp_event e))
      run.events;
    Printf.printf "\nenergy %.6f, makespan %.6f, %d events\n" run.total_energy
      run.makespan (List.length run.events);
    match csv with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Speedscale_engine.Executor.to_csv run));
      Printf.printf "trace written to %s\n" path
  in
  let info =
    Cmd.info "replay"
      ~doc:"Run PD and replay the schedule through the event engine."
  in
  Cmd.v info Term.(const run $ instance_arg $ csv)

(* ------------------------------------------------------------------ *)
(* bench-diff                                                           *)
(* ------------------------------------------------------------------ *)

let bench_diff_cmd =
  let old_arg =
    let doc = "Baseline BENCH_*.json (produced by `bench/main.exe --json`)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc)
  in
  let new_arg =
    let doc = "Candidate BENCH_*.json to gate against the baseline." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc)
  in
  let threshold =
    let doc =
      "Relative slowdown that counts as a regression (0.1 = fail when a \
       kernel is more than 10% slower)."
    in
    Arg.(
      value
      & opt float Speedscale_obs.Diff.default_threshold
      & info [ "threshold" ] ~docv:"FRACTION" ~doc)
  in
  let run old_path new_path threshold =
    let load path =
      match Speedscale_obs.Record.read_file ~path with
      | Ok f -> f
      | Error e ->
        Printf.eprintf "psched bench-diff: %s: %s\n" path e;
        exit 2
    in
    let old_file = load old_path and new_file = load new_path in
    let report =
      Speedscale_obs.Diff.compare_files ~threshold old_file new_file
    in
    print_string (Speedscale_obs.Diff.to_string report);
    if not (Speedscale_obs.Diff.ok report) then exit 1
  in
  let info =
    Cmd.info "bench-diff"
      ~doc:
        "Compare two structured benchmark files; exit non-zero on a perf or \
         verdict regression."
  in
  Cmd.v info Term.(const run $ old_arg $ new_arg $ threshold)

(* ------------------------------------------------------------------ *)
(* gantt                                                                *)
(* ------------------------------------------------------------------ *)

let gantt_cmd =
  let algorithm =
    Arg.(
      value
      & opt algorithm_conv Driver.pd
      & info [ "a"; "algorithm" ] ~doc:"Algorithm to chart (default PD).")
  in
  let width =
    Arg.(value & opt int 72 & info [ "width" ] ~doc:"Chart width in columns.")
  in
  let run file algorithm width =
    let inst = Io.load file in
    if not (algorithm.Driver.applicable inst) then
      failwith
        (Printf.sprintf "%s is not applicable to this instance"
           algorithm.Driver.name);
    let r = Driver.evaluate ~clock:Unix.gettimeofday algorithm inst in
    Printf.printf "%s on %s\n\n" r.algorithm
      (Format.asprintf "%a" Instance.pp inst);
    print_string (Speedscale_metrics.Gantt.render ~width r.schedule);
    print_report r
  in
  let info =
    Cmd.info "gantt" ~doc:"Render an algorithm's schedule as an ASCII chart."
  in
  Cmd.v info Term.(const run $ instance_arg $ algorithm $ width)

let () =
  let info =
    Cmd.info "psched" ~version:"1.0.0"
      ~doc:"Profitable scheduling on multiple speed-scalable processors."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; run_cmd; stream_cmd; serve_cmd; compare_cmd;
            engines_cmd; certify_cmd; analyze_cmd; provision_cmd; replay_cmd;
            gantt_cmd; bench_diff_cmd;
          ]))
