(* slint: the speedscale static-analysis driver.  See doc/LINTING.md. *)

let usage =
  "slint [--root DIR] [--json] [--sarif PATH] [--baseline FILE] \
   [--write-baseline] [--update-baseline] [--rules r1,r2] [--rule NAME] \
   [--list-rules] [--explain RULE] [--bench-out PATH]\n\n\
   Exit codes:\n\
  \  0  no findings outside the baseline and no stale baseline entries\n\
  \  1  an error-severity finding outside the baseline, or a stale \
   baseline entry\n\
  \  2  usage or configuration error (unknown rule, bad root, bad baseline)\n"

open Speedscale_lint

let explain name =
  match Rule.find ~name Registry.all with
  | None ->
    Fmt.epr "slint: unknown rule %s (known: %s)@." name
      (String.concat ", " Registry.names);
    exit 2
  | Some r ->
    Fmt.pr "%s  (%s%s)@.@.%s@." r.name
      (match r.severity with Finding.Error -> "error" | _ -> "warning")
      (if r.check_project <> None then ", whole-program" else "")
      r.doc;
    if not (String.equal r.example "") then Fmt.pr "@.Example:@.%s@." r.example;
    (* the marker is concatenated so the lint scanner does not read this
       source line as a (malformed) suppression directive *)
    Fmt.pr
      "@.Suppress a single line with a comment on it or just above:@.\
      \  (* %s %s -- reason *)@.\
       Unused or malformed directives are themselves findings.@."
      ("slint:" ^ " allow") r.name;
    exit 0

let () =
  let root = ref "." in
  let json = ref false in
  let sarif_path = ref None in
  let baseline_path = ref None in
  let write_baseline = ref false in
  let update_baseline = ref false in
  let bench_out = ref None in
  let rule_names = ref [] in
  let list_rules = ref false in
  let add_rules s =
    rule_names := !rule_names @ List.map String.trim (String.split_on_char ',' s)
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR  directory to scan (default .)");
      ("--json", Arg.Set json, "  emit findings as a JSON array");
      ( "--sarif",
        Arg.String (fun s -> sarif_path := Some s),
        "PATH  additionally write a SARIF 2.1.0 report to PATH" );
      ( "--baseline",
        Arg.String (fun s -> baseline_path := Some s),
        "FILE  baseline sexp (default ROOT/lint-baseline.sexp)" );
      ( "--write-baseline",
        Arg.Set write_baseline,
        "  rewrite the baseline to grandfather all current findings" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        "  prune baseline entries that no longer fire (adds nothing)" );
      ( "--rules",
        Arg.String add_rules,
        "NAMES  comma-separated subset of rules to run" );
      ( "--rule",
        Arg.String add_rules,
        "NAME  run a single rule (repeatable; adds to --rules)" );
      ("--list-rules", Arg.Set list_rules, "  print rule names and exit");
      ( "--explain",
        Arg.String explain,
        "RULE  print the rule's doc, an example finding and the \
         suppression syntax" );
      ( "--bench-out",
        Arg.String (fun s -> bench_out := Some s),
        "PATH  write an E25/lint-wall benchmark record (scan wall-clock) \
         to PATH" );
    ]
  in
  Arg.parse spec
    (fun anon -> raise (Arg.Bad (Fmt.str "unexpected argument %S" anon)))
    usage;
  if !list_rules then begin
    List.iter
      (fun (r : Rule.t) -> Fmt.pr "%-16s %s@." r.name r.doc)
      Registry.all;
    exit 0
  end;
  let rules =
    match !rule_names with
    | [] -> Registry.all
    | names -> (
      match Registry.select names with
      | rules -> rules
      | exception Invalid_argument msg ->
        Fmt.epr "slint: %s@." msg;
        exit 2)
  in
  if not (Sys.file_exists !root && Sys.is_directory !root) then begin
    Fmt.epr "slint: root %s is not a directory@." !root;
    exit 2
  end;
  let baseline_file =
    match !baseline_path with
    | Some p -> p
    | None -> Filename.concat !root "lint-baseline.sexp"
  in
  let t0 = Unix.gettimeofday () in
  let findings = Engine.scan ~rules ~root:!root () in
  let scan_wall = Unix.gettimeofday () -. t0 in
  if !write_baseline then begin
    let errors =
      List.filter (fun (f : Finding.t) -> f.severity = Finding.Error) findings
    in
    let oc = open_out baseline_file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Baseline.to_string (Baseline.of_findings errors)));
    Fmt.pr "slint: wrote %d baseline entr%s to %s@." (List.length errors)
      (if List.length errors = 1 then "y" else "ies")
      baseline_file;
    exit 0
  end;
  let baseline =
    match Baseline.load baseline_file with
    | Ok entries -> entries
    | Error msg ->
      Fmt.epr "slint: bad baseline %s: %s@." baseline_file msg;
      exit 2
  in
  if !update_baseline then begin
    let kept = Baseline.prune baseline findings in
    let pruned = List.length baseline - List.length kept in
    let oc = open_out baseline_file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Baseline.to_string kept));
    Fmt.pr "slint: pruned %d stale entr%s from %s (%d kept)@." pruned
      (if pruned = 1 then "y" else "ies")
      baseline_file (List.length kept);
    exit 0
  end;
  let stale = Baseline.stale baseline findings in
  List.iter
    (fun (e : Baseline.entry) ->
      Fmt.epr
        "slint: stale baseline entry (%s %d %s): the finding no longer \
         fires; run slint --update-baseline to prune it@."
        e.file e.line e.rule)
    stale;
  let fresh = List.filter (fun f -> not (Baseline.mem baseline f)) findings in
  (match !sarif_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let ppf = Format.formatter_of_out_channel oc in
        Report.pp_sarif ~rules ppf fresh;
        Format.pp_print_flush ppf ()));
  if !json then Fmt.pr "%a" Report.pp_json fresh
  else if fresh <> [] then Fmt.pr "%a" Report.pp_human fresh;
  let failing =
    stale <> []
    || List.exists (fun (f : Finding.t) -> f.severity = Finding.Error) fresh
  in
  (match !bench_out with
  | None -> ()
  | Some path ->
    let open Speedscale_obs in
    let record =
      (* slint: allow taint-nondet -- wall-clock lands in the sanctioned timing field *)
      Record.make ~id:"E25/lint-wall"
        ~params:[ ("rules", Record.P_int (List.length rules)) ]
        ~counters:
          [
            ("sources", List.length (Engine.list_sources ~root:!root));
            ("findings_fresh", List.length fresh);
          ]
        ~verdict:(not failing)
        ~timing:{ Record.no_timing with wall_s = Some scan_wall }
        Record.Experiment
    in
    Record.write_file ~path
      {
        Record.version = Record.schema_version;
        env = Record.current_env ~jobs:1;
        records = [ record ];
      });
  exit (if failing then 1 else 0)
