(* slint: the speedscale static-analysis driver.  See doc/LINTING.md. *)

let usage = "slint [--root DIR] [--json] [--baseline FILE] [--write-baseline] [--rules r1,r2] [--list-rules]"

open Speedscale_lint

let () =
  let root = ref "." in
  let json = ref false in
  let baseline_path = ref None in
  let write_baseline = ref false in
  let rule_names = ref None in
  let list_rules = ref false in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR  directory to scan (default .)");
      ("--json", Arg.Set json, "  emit findings as a JSON array");
      ( "--baseline",
        Arg.String (fun s -> baseline_path := Some s),
        "FILE  baseline sexp (default ROOT/lint-baseline.sexp)" );
      ( "--write-baseline",
        Arg.Set write_baseline,
        "  rewrite the baseline to grandfather all current findings" );
      ( "--rules",
        Arg.String (fun s -> rule_names := Some (String.split_on_char ',' s)),
        "NAMES  comma-separated subset of rules to run" );
      ("--list-rules", Arg.Set list_rules, "  print rule names and exit");
    ]
  in
  Arg.parse spec
    (fun anon -> raise (Arg.Bad (Fmt.str "unexpected argument %S" anon)))
    usage;
  if !list_rules then begin
    List.iter
      (fun (r : Rule.t) -> Fmt.pr "%-16s %s@." r.name r.doc)
      Registry.all;
    exit 0
  end;
  let rules =
    match !rule_names with
    | None -> Registry.all
    | Some names -> (
      match Registry.select (List.map String.trim names) with
      | rules -> rules
      | exception Invalid_argument msg ->
        Fmt.epr "slint: %s@." msg;
        exit 2)
  in
  if not (Sys.file_exists !root && Sys.is_directory !root) then begin
    Fmt.epr "slint: root %s is not a directory@." !root;
    exit 2
  end;
  let baseline_file =
    match !baseline_path with
    | Some p -> p
    | None -> Filename.concat !root "lint-baseline.sexp"
  in
  let findings = Engine.scan ~rules ~root:!root () in
  if !write_baseline then begin
    let errors =
      List.filter (fun (f : Finding.t) -> f.severity = Finding.Error) findings
    in
    let oc = open_out baseline_file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Baseline.to_string (Baseline.of_findings errors)));
    Fmt.pr "slint: wrote %d baseline entr%s to %s@." (List.length errors)
      (if List.length errors = 1 then "y" else "ies")
      baseline_file;
    exit 0
  end;
  let baseline =
    match Baseline.load baseline_file with
    | Ok entries -> entries
    | Error msg ->
      Fmt.epr "slint: bad baseline %s: %s@." baseline_file msg;
      exit 2
  in
  let fresh = List.filter (fun f -> not (Baseline.mem baseline f)) findings in
  if !json then Fmt.pr "%a" Report.pp_json fresh
  else if fresh <> [] then Fmt.pr "%a" Report.pp_human fresh;
  let failing =
    List.exists (fun (f : Finding.t) -> f.severity = Finding.Error) fresh
  in
  exit (if failing then 1 else 0)
