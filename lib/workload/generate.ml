open Speedscale_util
open Speedscale_model

type size_dist =
  | Fixed of float
  | Uniform_size of float * float
  | Pareto_size of { shape : float; scale : float }
  | Lognormal_size of { mu : float; sigma : float }

type value_model =
  | Infinite
  | Proportional of float
  | Per_density of float
  | Uniform_value of float * float
  | Lottery of { low : float; high : float; p_high : float }

type arrival_process =
  | Poisson of float
  | Regular of float
  | Bursty of { burst : int; gap : float }

let draw_size st = function
  | Fixed w -> w
  | Uniform_size (lo, hi) -> Rand.uniform st ~lo ~hi
  | Pareto_size { shape; scale } -> Rand.pareto st ~shape ~scale
  | Lognormal_size { mu; sigma } -> Rand.lognormal st ~mu ~sigma

let draw_value st power ~workload ~density = function
  | Infinite -> Float.infinity
  | Proportional c -> c *. workload
  | Per_density c ->
    if density <= 0.0 then invalid_arg "Generate.draw_value: density <= 0";
    c *. workload *. (density ** (Power.alpha power -. 1.0))
  | Uniform_value (lo, hi) -> Rand.uniform st ~lo ~hi
  | Lottery { low; high; p_high } ->
    if Rand.uniform st ~lo:0.0 ~hi:1.0 < p_high then high else low

let arrival_times st ~n = function
  | Poisson rate ->
    let t = ref 0.0 in
    List.init n (fun _ ->
        t := !t +. Rand.exponential st ~rate;
        !t)
  | Regular gap -> List.init n (fun i -> float_of_int (i + 1) *. gap)
  | Bursty { burst; gap } ->
    List.init n (fun i -> float_of_int (1 + (i / max 1 burst)) *. gap)

let random ~power ~machines ~seed ~n ~arrivals ~sizes ~laxity ~values =
  if n < 1 then invalid_arg "Generate.random: n < 1";
  let lo_density, hi_density = laxity in
  if lo_density <= 0.0 || hi_density < lo_density then
    invalid_arg "Generate.random: bad laxity range";
  let st = Rand.make seed in
  let releases = arrival_times st ~n arrivals in
  let jobs =
    List.mapi
      (fun i r ->
        let w = draw_size st sizes in
        let density = Rand.uniform st ~lo:lo_density ~hi:hi_density in
        let span = w /. density in
        let v = draw_value st power ~workload:w ~density values in
        Job.make ~id:i ~release:r ~deadline:(r +. span) ~workload:w ~value:v)
      releases
  in
  Instance.make ~power ~machines jobs

let bkp_lower_bound ~alpha ~n ?(value = 1e12) () =
  if n < 1 then invalid_arg "Generate.bkp_lower_bound: n < 1";
  let power = Power.make alpha in
  Instance.make ~power ~machines:1
    (List.init n (fun i ->
         let j = i + 1 in
         Job.make ~id:i
           ~release:(float_of_int (j - 1))
           ~deadline:(float_of_int n)
           (* slint: allow unsafe-pow -- j <= n so the base is >= 1 *)
           ~workload:(float_of_int (n - j + 1) ** (-1.0 /. alpha))
           ~value))

(* Figure 2 illustrates Chen et al.'s schedule before and after a new job:
   three processors, one clearly dominant job (dedicated), two mid-sized
   pool jobs — then a new job whose arrival flips one mid-sized job from
   the pool onto its own processor. *)
let figure2_loads () = (3, 1.0, [ (0, 6.0); (1, 2.2); (2, 1.8) ], (3, 3.0))

let figure3 ~power =
  Instance.make ~power ~machines:1
    [
      Job.make ~id:0 ~release:0.0 ~deadline:3.0 ~workload:3.0 ~value:1e9;
      Job.make ~id:1 ~release:0.0 ~deadline:2.0 ~workload:2.0 ~value:1e9;
    ]

(* Non-homogeneous Poisson by thinning: draw candidate points at the peak
   rate, keep each with probability rate(t)/peak. *)
let diurnal ~power ~machines ~seed ~n ?(period = 24.0) ?peak_rate ?trough_rate
    () =
  if n < 1 then invalid_arg "Generate.diurnal: n < 1";
  let peak =
    Option.value peak_rate ~default:(2.0 *. float_of_int machines)
  in
  let trough =
    Option.value trough_rate ~default:(float_of_int machines /. 4.0)
  in
  if trough <= 0.0 || peak < trough then
    invalid_arg "Generate.diurnal: need 0 < trough <= peak";
  let st = Rand.make seed in
  let rate t =
    let phase = 2.0 *. Float.pi *. t /. period in
    trough +. ((peak -. trough) *. 0.5 *. (1.0 -. cos phase))
  in
  let t = ref 0.0 in
  let arrivals = ref [] in
  let kept = ref 0 in
  while !kept < n do
    t := !t +. Rand.exponential st ~rate:peak;
    if Rand.uniform st ~lo:0.0 ~hi:1.0 <= rate !t /. peak then begin
      arrivals := !t :: !arrivals;
      incr kept
    end
  done;
  let jobs =
    List.rev !arrivals
    |> List.mapi (fun i r ->
           let w = Rand.lognormal st ~mu:(-0.3) ~sigma:0.8 in
           let density = Rand.uniform st ~lo:0.4 ~hi:2.0 in
           let v = 2.0 *. w in
           Job.make ~id:i ~release:r ~deadline:(r +. (w /. density))
             ~workload:w ~value:v)
  in
  Instance.make ~power ~machines jobs

let datacenter ~power ~machines ~seed ~n =
  random ~power ~machines ~seed ~n
    ~arrivals:(Bursty { burst = machines * 2; gap = 1.0 })
    ~sizes:(Pareto_size { shape = 1.8; scale = 0.4 })
    ~laxity:(0.4, 2.5)
    ~values:(Lottery { low = 0.4; high = 30.0; p_high = 0.25 })
