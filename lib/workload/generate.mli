(** Workload generators for tests, examples and the benchmark harness.

    The paper evaluates nothing empirically, so these families are chosen
    to exercise its claims: the exact adversarial lower-bound family from
    Theorem 3's tightness proof, random valuable-job mixes for the
    competitive-ratio measurements, and the two illustrative instances
    behind Figures 2 and 3.  All generators are deterministic given a
    seed. *)

open Speedscale_model

type size_dist =
  | Fixed of float
  | Uniform_size of float * float
  | Pareto_size of { shape : float; scale : float }
      (** heavy-tailed sizes, the classical data-center assumption *)
  | Lognormal_size of { mu : float; sigma : float }

type value_model =
  | Infinite  (** classical must-finish setting *)
  | Proportional of float  (** [v = c·w]: pay per unit of work *)
  | Per_density of float
      (** [v = c·w·density^(α−1)]: pay proportionally to the marginal
          energy of running the job alone — keeps the accept/reject
          decision tight at every scale *)
  | Uniform_value of float * float
  | Lottery of { low : float; high : float; p_high : float }
      (** a few valuable jobs among cheap ones *)

type arrival_process =
  | Poisson of float  (** rate per unit time *)
  | Regular of float  (** fixed inter-arrival gap *)
  | Bursty of { burst : int; gap : float }
      (** [burst] simultaneous arrivals every [gap] time units *)

val random :
  power:Power.t ->
  machines:int ->
  seed:int ->
  n:int ->
  arrivals:arrival_process ->
  sizes:size_dist ->
  laxity:float * float ->
  values:value_model ->
  Instance.t
(** [laxity = (lo, hi)]: each job's window length is its size divided by a
    uniform density draw... more precisely the window is
    [size / uniform(lo,hi)] so that job densities fall in [[lo, hi]]. *)

val bkp_lower_bound : alpha:float -> n:int -> ?value:float -> unit -> Instance.t
(** The Bansal–Kimbrel–Pruhs adversarial family used in the paper's
    tightness proof: job [j ∈ 1..n] arrives at [j-1] with workload
    [(n-j+1)^(-1/α)] and deadline [n].  Default [value] is large enough
    that PD finishes everything.  Single processor. *)

val figure2_loads : unit -> int * float * (int * float) list * (int * float)
(** The ingredients of Figure 2's illustration: [(machines, interval
    length, existing loads, new job load)] — a work assignment whose Chen
    schedule changes dedicated/pool structure when the new job arrives. *)

val figure3 : power:Power.t -> Instance.t
(** The two-job instance of Figure 3: a long early job followed by a
    shorter inner job, on which PD schedules more conservatively than
    OA. *)

val datacenter :
  power:Power.t -> machines:int -> seed:int -> n:int -> Instance.t
(** Preset: bursty arrivals, Pareto sizes, lottery values — the
    "data-center morning" scenario from the paper's introduction. *)

val diurnal :
  power:Power.t ->
  machines:int ->
  seed:int ->
  n:int ->
  ?period:float ->
  ?peak_rate:float ->
  ?trough_rate:float ->
  unit ->
  Instance.t
(** Day/night load: a non-homogeneous Poisson arrival process whose rate
    oscillates sinusoidally between [trough_rate] and [peak_rate] (per
    unit time) with the given [period] (defaults 24.0, peak
    [2·machines], trough [machines/4]).  Sizes are log-normal, values
    proportional to work — the workload that makes adaptive admission
    matter (cf. experiment E17). *)
