(** The YDS offline algorithm (Yao–Demers–Shenker, FOCS 1995): the exact
    energy-optimal single-processor schedule when all jobs must finish.

    YDS repeatedly finds the {e critical interval} — the interval [I]
    maximizing the intensity [w(I) / |I|], where [w(I)] sums the workloads
    of jobs whose windows lie inside [I] — schedules those jobs there at
    exactly that intensity (EDF order), removes them, collapses the used
    time away, and recurses.  We keep the collapse implicit by tracking the
    set of already-{e blocked} original-time segments and measuring
    candidate intervals in collapsed coordinates.

    This is the exact optimum baseline for every single-processor
    experiment, and the building block for the online algorithms OA and
    CLL (which re-run YDS on the remaining work at each arrival). *)

open Speedscale_model

type round = {
  density : float;  (** speed used throughout this critical interval *)
  members : int list;  (** job ids scheduled in this round *)
  segments : (float * float) list;
      (** original-time segments (sorted, disjoint) the round occupies *)
}

val rounds : Job.t list -> round list
(** Critical-interval decomposition, highest density first.  Every job
    appears in exactly one round.  The empty list for no jobs. *)

val profile : Job.t list -> (float * float * float) list
(** The optimal speed profile [(t0, t1, speed)], sorted by time, disjoint;
    speed is piecewise constant and zero outside the returned segments. *)

val energy : Power.t -> Job.t list -> float
(** Energy of the optimal profile: [Σ |seg| · density^α]. *)

val schedule_slices : Job.t list -> Schedule.slice list
(** Slice-level realization of the optimal profile (EDF inside every
    round) for a bare job list; job ids are preserved.  Used directly by
    the online algorithms that re-plan on a shifted job set. *)

val schedule : Instance.t -> Schedule.t
(** Concrete slice-level schedule realizing the profile with EDF inside
    every round.  Requires [machines = 1]; raises [Invalid_argument]
    otherwise. *)

val speed_of_job : Job.t list -> int -> float
(** The planned speed of a given job: the density of the round containing
    it.  Raises [Not_found] if the id is absent.  Used by CLL's admission
    test. *)
