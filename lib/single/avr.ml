open Speedscale_util
open Speedscale_model

let check_single (inst : Instance.t) =
  if inst.machines <> 1 then
    invalid_arg "Avr: single-processor algorithm (machines = 1)"

let interval_speed (inst : Instance.t) ~lo ~hi =
  let acc = Ksum.create () in
  Array.iter
    (fun (j : Job.t) -> if Job.covers j ~lo ~hi then Ksum.add acc (Job.density j))
    inst.jobs;
  Ksum.total acc

let energy (inst : Instance.t) =
  check_single inst;
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  let acc = Ksum.create () in
  for k = 0 to Timeline.n_intervals tl - 1 do
    let lo, hi = Timeline.bounds tl k in
    let s = interval_speed inst ~lo ~hi in
    Ksum.add acc (Power.energy inst.power ~speed:s ~duration:(hi -. lo))
  done;
  Ksum.total acc

let schedule (inst : Instance.t) =
  check_single inst;
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  let slices = ref [] in
  for k = 0 to Timeline.n_intervals tl - 1 do
    let lo, hi = Timeline.bounds tl k in
    let s = interval_speed inst ~lo ~hi in
    if s > 0.0 then begin
      (* sequentialize the processor-sharing schedule: job j owns a chunk
         proportional to its density, run at the summed speed *)
      let cursor = ref lo in
      Array.iter
        (fun (j : Job.t) ->
          if Job.covers j ~lo ~hi then begin
            let dur = Job.density j *. (hi -. lo) /. s in
            if dur > Feq.tol_dust then begin
              slices :=
                {
                  Schedule.proc = 0;
                  t0 = !cursor;
                  t1 = !cursor +. dur;
                  job = j.id;
                  speed = s;
                }
                :: !slices;
              cursor := !cursor +. dur
            end
          end)
        inst.jobs
    end
  done;
  Schedule.make ~machines:1 ~rejected:[] !slices
