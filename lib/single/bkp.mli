(** The BKP online algorithm (Bansal–Kimbrel–Pruhs, FOCS 2004 / JACM 2007)
    for the classical single-processor problem.

    BKP approximates YDS's critical density in an online way: at time [t]
    it considers, for every future boundary [t2 > t], the backward-scaled
    interval [[e·t − (e−1)·t2, t2]] and the work [w(t, t1, t2)] of jobs
    {e known at t} whose windows fit inside it, and runs at speed

    {v  s(t) = e · max_{t2 > t} w(t, e·t−(e−1)·t2, t2) / (e · (t2 − t))  v}

    processing available jobs in EDF order.  BKP is essentially
    [2(α/(α−1))^α e^α]-competitive — better than OA for large [α].

    The BKP speed varies continuously inside atomic intervals (the [t] in
    the formula), which a piecewise-constant slice schedule cannot encode
    exactly.  {b Substitution note (cf. DESIGN.md):} we realize BKP on a
    fine per-interval grid, using the maximum of several speed samples per
    step times a 1e-6 safety margin, and retry with a doubled resolution if
    any job misses its deadline; the reported energy is therefore an upper
    estimate converging to BKP's from above. *)

open Speedscale_model

val speed_at : Instance.t -> float -> float
(** The instantaneous BKP speed (exact formula, maximizing over known
    deadlines). *)

val schedule : ?steps_per_interval:int -> Instance.t -> Schedule.t
(** Discretized realization (default 64 steps per atomic interval).
    Requires [machines = 1]. *)

val energy : ?steps_per_interval:int -> Instance.t -> float
