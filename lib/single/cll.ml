open Speedscale_model

let threshold_speed power (j : Job.t) =
  if Float.equal j.value Float.infinity then Float.infinity
  else
    let alpha = Power.alpha power in
    Power.rejection_speed_factor power
    (* slint: allow unsafe-pow -- value >= 0 and workload > 0 are Job.make invariants *)
    *. ((j.value /. j.workload) ** (1.0 /. (alpha -. 1.0)))

let schedule (inst : Instance.t) =
  let admit ~now:_ ~plan ~candidate =
    let planned = Yds.speed_of_job plan (candidate : Job.t).id in
    planned <= threshold_speed inst.power candidate +. 1e-12
  in
  Oa_engine.run ~admit inst

let cost inst = Schedule.cost inst (schedule inst)
