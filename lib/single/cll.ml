open Speedscale_model

let threshold_speed power (j : Job.t) =
  if Float.equal j.value Float.infinity then Float.infinity
  else
    let alpha = Power.alpha power in
    Power.rejection_speed_factor power
    (* slint: allow unsafe-pow -- value >= 0 and workload > 0 are Job.make invariants *)
    *. ((j.value /. j.workload) ** (1.0 /. (alpha -. 1.0)))

let admission power : Oa_engine.admission_sp =
 fun ~now:_ ~plan ~candidate ->
  let planned = Yds.speed_of_job plan (candidate : Job.t).id in
  {
    Oa_engine.admitted = planned <= threshold_speed power candidate +. Speedscale_util.Feq.tol_guard;
    planned_speed = Some planned;
  }

let schedule (inst : Instance.t) =
  let admit ~now ~plan ~candidate =
    (admission inst.power ~now ~plan ~candidate).Oa_engine.admitted
  in
  Oa_engine.run ~admit inst

let cost inst = Schedule.cost inst (schedule inst)
