open Speedscale_model

type admission = now:float -> plan:Job.t list -> candidate:Job.t -> bool

let work_eps = 1e-9

(* Remaining-work view of a job at time [now]. *)
let adjusted ~now (j : Job.t) ~remaining =
  Job.make ~id:j.id ~release:now ~deadline:j.deadline ~workload:remaining
    ~value:j.value

let clip_slices ~until slices =
  List.filter_map
    (fun (s : Schedule.slice) ->
      if s.t0 >= until then None
      else if s.t1 <= until then Some s
      else Some { s with t1 = until })
    slices

let run ?(admit = fun ~now:_ ~plan:_ ~candidate:_ -> true) (inst : Instance.t)
    =
  if inst.machines <> 1 then
    invalid_arg "Oa_engine.run: single-processor algorithm (machines = 1)";
  let n = Instance.n_jobs inst in
  let remaining = Hashtbl.create 16 in
  (* accepted unfinished job id -> remaining work *)
  let rejected = ref [] in
  let slices = ref [] in
  let arrival_times =
    List.init n (fun i -> (Instance.job inst i).release)
    |> List.sort_uniq Float.compare
  in
  let plan_jobs ~now =
    Hashtbl.fold
      (fun id rem acc ->
        if rem > work_eps *. (1.0 +. (Instance.job inst id).workload) then
          adjusted ~now (Instance.job inst id) ~remaining:rem :: acc
        else acc)
      remaining []
    |> List.sort (fun (a : Job.t) b -> Int.compare a.id b.id)
  in
  let execute ~from ~until =
    match plan_jobs ~now:from with
    | [] -> ()
    | plan ->
      let planned = Yds.schedule_slices plan in
      let executed =
        match until with
        | None -> planned
        | Some te -> clip_slices ~until:te planned
      in
      List.iter
        (fun (s : Schedule.slice) ->
          let work = (s.t1 -. s.t0) *. s.speed in
          let prev = Hashtbl.find remaining s.job in
          Hashtbl.replace remaining s.job (prev -. work))
        executed;
      slices := executed @ !slices
  in
  let rec go = function
    | [] -> ()
    | t :: rest ->
      (* admit / reject the jobs arriving now, one by one in id order *)
      List.iter
        (fun i ->
          let j = Instance.job inst i in
          if j.release = t then begin
            let candidate = adjusted ~now:t j ~remaining:j.workload in
            let plan = plan_jobs ~now:t @ [ candidate ] in
            if admit ~now:t ~plan ~candidate then
              Hashtbl.replace remaining j.id j.workload
            else rejected := j.id :: !rejected
          end)
        (List.init n Fun.id);
      let until = match rest with [] -> None | t' :: _ -> Some t' in
      execute ~from:t ~until;
      go rest
  in
  go arrival_times;
  Schedule.make ~machines:1 ~rejected:!rejected !slices
