open Speedscale_util
open Speedscale_model

type admission = now:float -> plan:Job.t list -> candidate:Job.t -> bool

type verdict = { admitted : bool; planned_speed : float option }

type admission_sp = now:float -> plan:Job.t list -> candidate:Job.t -> verdict

type plan_fn = now:float -> Job.t list -> Schedule.slice list

let work_eps = Feq.tol_snap

(* Remaining-work view of a job at time [now]. *)
let adjusted ~now (j : Job.t) ~remaining =
  Job.make ~id:j.id ~release:now ~deadline:j.deadline ~workload:remaining
    ~value:j.value

let clip_slices ~until slices =
  List.filter_map
    (fun (s : Schedule.slice) ->
      if s.t0 >= until then None
      else
        (* A slice ending within tolerance of the cut would survive as a
           zero-width sliver (its work is float dust); drop it and leave
           the dust in the remaining-work table for the next plan. *)
        let t1 = Float.min s.t1 until in
        if Feq.approx s.t0 t1 then None
        else if s.t1 <= until then Some s
        else Some { s with t1 = until })
    slices

type t = {
  machines : int;
  plan : plan_fn;
  admit : admission_sp;
  must_finish : bool;
  mutable now : float;
  mutable started : bool;
  remaining : (int, float) Hashtbl.t;  (* accepted unfinished id -> work *)
  accepted : (int, Job.t) Hashtbl.t;  (* id -> stored (possibly viewed) job *)
  seen_ids : (int, unit) Hashtbl.t;
  mutable seen_rev : Job.t list;  (* stored arrivals, newest first *)
  mutable rejected_rev : int list;
  mutable executed : Schedule.slice list;  (* committed, newest batch first *)
}

let admit_all ~now:_ ~plan:_ ~candidate:_ = { admitted = true; planned_speed = None }

let start ~machines ~plan ?(admit = admit_all) ?(must_finish = false) () =
  if machines < 1 then invalid_arg "Oa_engine.start: machines must be >= 1";
  {
    machines;
    plan;
    admit;
    must_finish;
    now = Float.neg_infinity;
    started = false;
    remaining = Hashtbl.create 16;
    accepted = Hashtbl.create 16;
    seen_ids = Hashtbl.create 16;
    seen_rev = [];
    rejected_rev = [];
    executed = [];
  }

let plan_jobs t ~now =
  Hashtbl.fold
    (fun id rem acc ->
      let j = Hashtbl.find t.accepted id in
      if rem > work_eps *. (1.0 +. j.workload) then
        adjusted ~now j ~remaining:rem :: acc
      else acc)
    t.remaining []
  |> List.stable_sort Job.compare_release

(* Execute the standing plan on [from, until); [None] means to the end. *)
let execute t ~from ~until =
  match plan_jobs t ~now:from with
  | [] -> ()
  | plan ->
    let planned = t.plan ~now:from plan in
    let executed =
      match until with
      | None -> planned
      | Some te -> clip_slices ~until:te planned
    in
    List.iter
      (fun (s : Schedule.slice) ->
        let work = (s.t1 -. s.t0) *. s.speed in
        let prev = Hashtbl.find t.remaining s.job in
        Hashtbl.replace t.remaining s.job (Float.max 0.0 (prev -. work)))
      executed;
    t.executed <- executed @ t.executed

let step t (j : Job.t) =
  if Hashtbl.mem t.seen_ids j.id then
    invalid_arg (Fmt.str "Oa_engine.step: duplicate job id %d" j.id);
  if t.started && j.release < t.now then
    invalid_arg
      (Fmt.str "Oa_engine.step: job %d released at %g before current time %g"
         j.id j.release t.now);
  if t.started && j.release > t.now then
    execute t ~from:t.now ~until:(Some j.release);
  t.now <- j.release;
  t.started <- true;
  let stored =
    if t.must_finish then
      Job.make ~id:j.id ~release:j.release ~deadline:j.deadline
        ~workload:j.workload ~value:Float.infinity
    else j
  in
  Hashtbl.replace t.seen_ids j.id ();
  t.seen_rev <- stored :: t.seen_rev;
  let candidate = adjusted ~now:t.now stored ~remaining:stored.workload in
  let plan = plan_jobs t ~now:t.now @ [ candidate ] in
  let verdict = t.admit ~now:t.now ~plan ~candidate in
  if verdict.admitted then begin
    Hashtbl.replace t.accepted stored.id stored;
    Hashtbl.replace t.remaining stored.id stored.workload
  end
  else t.rejected_rev <- stored.id :: t.rejected_rev;
  verdict

let now t = t.now
let seen t = List.rev t.seen_rev
let rejected t = t.rejected_rev

let current_plan t =
  let tail =
    if t.started then
      match plan_jobs t ~now:t.now with
      | [] -> []
      | plan -> t.plan ~now:t.now plan
    else []
  in
  Schedule.make ~machines:t.machines ~rejected:t.rejected_rev
    (tail @ t.executed)

let run ?(admit = fun ~now:_ ~plan:_ ~candidate:_ -> true) (inst : Instance.t)
    =
  if inst.machines <> 1 then
    invalid_arg "Oa_engine.run: single-processor algorithm (machines = 1)";
  let t =
    start ~machines:1
      ~plan:(fun ~now:_ jobs -> Yds.schedule_slices jobs)
      ~admit:(fun ~now ~plan ~candidate ->
        { admitted = admit ~now ~plan ~candidate; planned_speed = None })
      ()
  in
  Array.iter (fun j -> ignore (step t j)) inst.jobs;
  current_plan t
