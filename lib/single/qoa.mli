(** qOA (Bansal, Chan, Pruhs, Katz — ICALP 2009): run at [q] times OA's
    planned speed, with [q = 2 − 1/α].

    OA is overly lazy early on; qOA hedges by working [q ≥ 1] times faster
    than the current optimal-available plan, which improves the
    competitive ratio to roughly [4^α / (2 √(eα))] — the best known bound
    for small [α] (better than both OA and BKP at [α = 2, 3]).

    Because qOA runs ahead of its own plan, the plan changes continuously
    between arrivals, not only at arrival events.  {b Substitution note
    (cf. DESIGN.md):} like BKP, we realize qOA on a fine time grid —
    recomputing the remaining-work plan each step — so the reported energy
    converges to qOA's from above as the grid refines. *)

open Speedscale_model

val schedule : ?steps_per_interval:int -> Instance.t -> Schedule.t
(** Discretized simulation (default 24 steps per atomic interval).
    Requires [machines = 1]; values are ignored (must-finish). *)

val energy : ?steps_per_interval:int -> Instance.t -> float

val q_factor : Power.t -> float
(** [2 − 1/α]. *)
