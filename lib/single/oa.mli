(** Optimal Available (OA), Yao–Demers–Shenker's online algorithm for the
    classical (must-finish) single-processor problem.

    At every arrival OA recomputes the optimal offline schedule for the
    remaining known work and follows it.  Bansal–Kimbrel–Pruhs proved OA is
    exactly [α^α]-competitive — the same ratio the paper proves for PD, and
    the two algorithms coincide in spirit (PD is more conservative about
    redistributing previously planned work; see Figure 3 / experiment E5). *)

open Speedscale_model

val schedule : Instance.t -> Schedule.t
(** Requires [machines = 1].  Finishes every job regardless of values. *)

val energy : Instance.t -> float

val planned_speed_of_new_job : Instance.t -> int -> float
(** The speed OA's plan assigns to job [j] at the moment of its arrival
    (jobs before [j] simulated normally) — the quantity CLL thresholds
    against.  Requires [machines = 1]. *)
