open Speedscale_model

let schedule inst = Oa_engine.run inst
let energy (inst : Instance.t) = Schedule.energy inst.power (schedule inst)

let planned_speed_of_new_job (inst : Instance.t) target =
  let result = ref None in
  let admit ~now:_ ~plan ~candidate =
    if (candidate : Job.t).id = target then
      result := Some (Yds.speed_of_job plan target);
    true
  in
  ignore (Oa_engine.run ~admit inst);
  match !result with
  | Some s -> s
  | None -> invalid_arg "Oa.planned_speed_of_new_job: job never arrived"
