(** Average Rate (AVR), Yao–Demers–Shenker's second online heuristic.

    Every job is processed at its own constant {e density} [w_j / (d_j -
    r_j)] throughout its window; the processor speed at any time is the sum
    of the densities of the available jobs.  AVR is
    [2^(α-1) α^α]-competitive — simple, online, but strictly worse than OA.
    We realize the processor-sharing schedule by slicing each atomic
    interval sequentially at the summed speed, which preserves both
    feasibility and the energy integral exactly. *)

open Speedscale_model

val schedule : Instance.t -> Schedule.t
(** Requires [machines = 1]. *)

val energy : Instance.t -> float
(** [∫ (Σ_available density_j)^α dt], computed in closed form over atomic
    intervals. *)
