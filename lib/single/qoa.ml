open Speedscale_model

let q_factor power = 2.0 -. (1.0 /. Power.alpha power)

let check_single (inst : Instance.t) =
  if inst.machines <> 1 then
    invalid_arg "Qoa: single-processor algorithm (machines = 1)"

(* OA's instantaneous planned speed at time [t] is the maximum density of
   the remaining released work: max over deadlines b > t of
   (remaining work due by b) / (b - t). *)
let oa_speed (inst : Instance.t) remaining t =
  let n = Instance.n_jobs inst in
  let best = ref 0.0 in
  for cand = 0 to n - 1 do
    let b = (Instance.job inst cand).deadline in
    if b > t then begin
      let work = ref 0.0 in
      for i = 0 to n - 1 do
        let j = Instance.job inst i in
        if j.release <= t && j.deadline <= b then work := !work +. remaining.(i)
      done;
      let density = !work /. (b -. t) in
      if density > !best then best := density
    end
  done;
  !best

let simulate (inst : Instance.t) ~steps =
  let n = Instance.n_jobs inst in
  let q = q_factor inst.power in
  let remaining = Array.init n (fun i -> (Instance.job inst i).workload) in
  let slices = ref [] in
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  for k = 0 to Timeline.n_intervals tl - 1 do
    let lo, hi = Timeline.bounds tl k in
    let h = (hi -. lo) /. float_of_int steps in
    for step = 0 to steps - 1 do
      let a = lo +. (float_of_int step *. h) in
      let b = a +. h in
      (* freeze the speed for the step; add a whisker of safety *)
      let speed = q *. oa_speed inst remaining a *. (1.0 +. Speedscale_util.Feq.tol_loose) in
      if speed > 0.0 then begin
        let t = ref a in
        let continue = ref true in
        while !continue && !t < b -. 1e-13 do
          let avail =
            List.init n Fun.id
            |> List.filter (fun i ->
                   let j = Instance.job inst i in
                   j.release <= !t +. Speedscale_util.Feq.tol_guard
                   && j.deadline > !t
                   && remaining.(i) > Speedscale_util.Feq.tol_guard)
            |> List.sort (fun i1 i2 ->
                   Float.compare (Instance.job inst i1).deadline
                     (Instance.job inst i2).deadline)
          in
          match avail with
          | [] -> continue := false
          | i :: _ ->
            let j = Instance.job inst i in
            let t_end =
              Float.min
                (Float.min b j.deadline)
                (!t +. (remaining.(i) /. speed))
            in
            let dt = t_end -. !t in
            if dt > Speedscale_util.Feq.tol_step then begin
              slices :=
                { Schedule.proc = 0; t0 = !t; t1 = t_end; job = i; speed }
                :: !slices;
              remaining.(i) <- remaining.(i) -. (dt *. speed)
            end
            else remaining.(i) <- 0.0;
            t := t_end
        done
      end
    done
  done;
  (!slices, remaining)

let schedule ?(steps_per_interval = 24) (inst : Instance.t) =
  check_single inst;
  let rec attempt steps tries =
    let slices, remaining = simulate inst ~steps in
    let unfinished =
      Array.exists (fun r -> r > Speedscale_util.Feq.tol_loose *. (1.0 +. r)) remaining
    in
    if (not unfinished) || tries = 0 then
      Schedule.make ~machines:1 ~rejected:[] slices
    else attempt (steps * 2) (tries - 1)
  in
  attempt steps_per_interval 4

let energy ?steps_per_interval (inst : Instance.t) =
  Schedule.energy inst.power (schedule ?steps_per_interval inst)
