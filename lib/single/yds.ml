open Speedscale_util
open Speedscale_model

type round = {
  density : float;
  members : int list;
  segments : (float * float) list;
}

(* ------------------------------------------------------------------ *)
(* Blocked-segment bookkeeping (the implicit collapse)                  *)
(* ------------------------------------------------------------------ *)

(* Blocked segments are kept sorted and disjoint. *)
let insert_blocked blocked (a, b) =
  let rec merge = function
    | [] -> [ (a, b) ]
    | (x, y) :: rest ->
      if b < x then (a, b) :: (x, y) :: rest
      else if y < a then (x, y) :: merge rest
      else
        (* overlapping or adjacent; fold together and retry *)
        merge_pair (Float.min a x, Float.max b y) rest
  and merge_pair (a, b) = function
    | [] -> [ (a, b) ]
    | (x, y) :: rest ->
      if b < x then (a, b) :: (x, y) :: rest
      else merge_pair (Float.min a x, Float.max b y) rest
  in
  merge blocked

(* Collapsed coordinate: original time minus blocked measure before it. *)
let collapse blocked t =
  t
  -. List.fold_left
       (fun acc (a, b) ->
         if t <= a then acc else acc +. (Float.min b t -. a))
       0.0 blocked

(* Original-time segments (within [lo, hi]) not blocked. *)
let free_segments blocked ~lo ~hi =
  let rec go cursor = function
    | [] -> if cursor < hi then [ (cursor, hi) ] else []
    | (a, b) :: rest ->
      if b <= cursor then go cursor rest
      else if a >= hi then if cursor < hi then [ (cursor, hi) ] else []
      else
        let before = if cursor < a then [ (cursor, Float.min a hi) ] else [] in
        before @ go (Float.max cursor b) rest
  in
  go lo blocked

(* Map a collapsed-coordinate interval [a, b) back to original segments. *)
let expand blocked ~lo ~hi (a, b) =
  let free = free_segments blocked ~lo ~hi in
  let rec go acc = function
    | [] -> List.rev acc
    | (u, v) :: rest ->
      let cu = collapse blocked u in
      let cv = cu +. (v -. u) in
      let o_lo = Float.max a cu and o_hi = Float.min b cv in
      if o_hi > o_lo +. 1e-15 then
        go ((u +. (o_lo -. cu), u +. (o_hi -. cu)) :: acc) rest
      else go acc rest
  in
  go [] free

(* ------------------------------------------------------------------ *)
(* Critical-interval decomposition                                      *)
(* ------------------------------------------------------------------ *)

let rounds jobs =
  match jobs with
  | [] -> []
  | _ ->
    let lo =
      List.fold_left (fun acc (j : Job.t) -> Float.min acc j.release)
        Float.infinity jobs
    and hi =
      List.fold_left (fun acc (j : Job.t) -> Float.max acc j.deadline)
        Float.neg_infinity jobs
    in
    let rec loop remaining blocked acc =
      match remaining with
      | [] -> List.rev acc
      | _ ->
        (* Collapsed windows of the remaining jobs.  For every candidate
           right end b (a collapsed deadline), scan candidate left ends a
           (collapsed releases) in decreasing order with a running workload
           sum, so the whole search is O(n^2 log n) instead of O(n^3). *)
        let cjobs =
          List.map
            (fun (j : Job.t) ->
              (j, collapse blocked j.release, collapse blocked j.deadline))
            remaining
        in
        let deadlines =
          List.map (fun (_, _, cd) -> cd) cjobs |> List.sort_uniq Float.compare
        in
        let best = ref None in
        let consider density a b =
          match !best with
          | Some (d, _, _) when d >= density -> ()
          | _ -> best := Some (density, a, b)
        in
        List.iter
          (fun b ->
            let eligible =
              List.filter (fun (_, _, cd) -> cd <= b +. Feq.tol_guard) cjobs
              |> List.sort (fun (_, r1, _) (_, r2, _) -> Float.compare r2 r1)
            in
            let rec scan cum = function
              | [] -> ()
              | ((j : Job.t), cr, _) :: rest ->
                let cum = cum +. j.workload in
                (match rest with
                | (_, cr2, _) :: _ when cr2 >= cr -. Feq.tol_guard ->
                  (* same left boundary: fold the whole group first *)
                  scan cum rest
                | _ ->
                  if b > cr +. Feq.tol_guard then consider (cum /. (b -. cr)) cr b;
                  scan cum rest)
            in
            scan 0.0 eligible)
          deadlines;
        (match !best with
        | None ->
          (* remaining jobs but no candidate interval: impossible since
             every job has a positive-width window; collapsed windows stay
             positive because its round would have removed it otherwise *)
          invalid_arg "Yds.rounds: degenerate remaining window"
        | Some (density, a, b) ->
          let segments = expand blocked ~lo ~hi (a, b) in
          let members =
            List.filter
              (fun (j : Job.t) ->
                collapse blocked j.release >= a -. Feq.tol_snap
                && collapse blocked j.deadline <= b +. Feq.tol_snap)
              remaining
          in
          let member_ids = List.map (fun (j : Job.t) -> j.id) members in
          let blocked' =
            List.fold_left insert_blocked blocked segments
          in
          let remaining' =
            List.filter
              (fun (j : Job.t) -> not (List.mem j.id member_ids))
              remaining
          in
          loop remaining' blocked'
            ({ density; members = member_ids; segments } :: acc))
    in
    loop jobs [] []

let profile jobs =
  rounds jobs
  |> List.concat_map (fun r ->
         List.map (fun (a, b) -> (a, b, r.density)) r.segments)
  |> List.sort compare

let energy power jobs =
  Ksum.sum_by
    (fun (a, b, s) -> Power.energy power ~speed:s ~duration:(b -. a))
    (profile jobs)

let speed_of_job jobs id =
  let rec find = function
    | [] -> raise Not_found
    | r :: rest -> if List.mem id r.members then r.density else find rest
  in
  find (rounds jobs)

(* ------------------------------------------------------------------ *)
(* EDF realization                                                      *)
(* ------------------------------------------------------------------ *)

(* Within one round the member jobs are scheduled across the round's
   segments at the round's density, earliest deadline first.  Inside a
   round EDF is feasible because the round is exactly the YDS critical
   interval for its members. *)
let edf_round (jobs : Job.t array) r =
  let members =
    List.map (fun id -> jobs.(id)) r.members
    |> List.sort (fun (a : Job.t) b ->
           match Float.compare a.deadline b.deadline with
           | 0 -> Int.compare a.id b.id
           | c -> c)
  in
  let remaining = Hashtbl.create 8 in
  List.iter (fun (j : Job.t) -> Hashtbl.replace remaining j.id j.workload)
    members;
  let slices = ref [] in
  let segments = ref r.segments in
  let offset = ref 0.0 in
  (* walk segments; within each, repeatedly pick the EDF-first available
     job with remaining work *)
  let rec step () =
    match !segments with
    | [] -> ()
    | (a, b) :: rest ->
      let t = a +. !offset in
      if t >= b -. Feq.tol_guard then begin
        segments := rest;
        offset := 0.0;
        step ()
      end
      else begin
        let avail =
          List.filter
            (fun (j : Job.t) ->
              j.release <= t +. Feq.tol_guard
              && Hashtbl.find remaining j.id > Feq.tol_guard)
            members
        in
        match avail with
        | [] ->
          (* idle gap inside the round: jump to the next release *)
          let next_release =
            List.fold_left
              (fun acc (j : Job.t) ->
                if Hashtbl.find remaining j.id > Feq.tol_guard && j.release > t then
                  Float.min acc j.release
                else acc)
              Float.infinity members
          in
          if next_release >= b then begin
            segments := rest;
            offset := 0.0
          end
          else offset := next_release -. a;
          step ()
        | j :: _ ->
          let work_left = Hashtbl.find remaining j.id in
          let dt_work = work_left /. r.density in
          let next_release =
            List.fold_left
              (fun acc (j' : Job.t) ->
                if j'.release > t +. Feq.tol_guard && Hashtbl.find remaining j'.id > Feq.tol_guard
                then Float.min acc j'.release
                else acc)
              Float.infinity members
          in
          let t_end = Float.min (Float.min (t +. dt_work) b) next_release in
          let dt = t_end -. t in
          if dt > Feq.tol_guard then begin
            slices :=
              {
                Schedule.proc = 0;
                t0 = t;
                t1 = t_end;
                job = j.id;
                speed = r.density;
              }
              :: !slices;
            Hashtbl.replace remaining j.id (work_left -. (dt *. r.density))
          end
          else
            (* avoid infinite loops on degenerate float dust *)
            Hashtbl.replace remaining j.id 0.0;
          offset := t_end -. a;
          step ()
      end
  in
  step ();
  !slices

let schedule_slices job_list =
  let max_id =
    List.fold_left (fun acc (j : Job.t) -> max acc j.id) (-1) job_list
  in
  let jobs = Array.make (max_id + 1) None in
  List.iter (fun (j : Job.t) -> jobs.(j.id) <- Some j) job_list;
  let jobs =
    Array.map
      (function
        | Some j -> j
        | None ->
          (* edf_round only looks up ids that occur in rounds, which all
             come from [job_list]; fill holes with a dummy *)
          Job.make ~id:0 ~release:0.0 ~deadline:1.0 ~workload:1.0 ~value:0.0)
      jobs
  in
  List.concat_map (edf_round jobs) (rounds job_list)

let schedule (inst : Instance.t) =
  if inst.machines <> 1 then
    invalid_arg "Yds.schedule: single-processor algorithm (machines = 1)";
  Schedule.make ~machines:1 ~rejected:[]
    (schedule_slices (Array.to_list inst.jobs))
