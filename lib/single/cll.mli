(** The Chan–Lam–Li algorithm (WAOA 2010): profitable single-processor
    scheduling with an OA core and a speed-threshold admission test.

    When job [j] arrives, CLL computes OA's plan including [j] and admits
    [j] iff its planned speed is at most

    {v  α^((α-2)/(α-1)) · (v_j / w_j)^(1/(α-1))  v}

    Rejected jobs are never processed and their value is lost; admitted
    jobs are scheduled like OA.  Chan, Lam and Li proved this algorithm
    [α^α + 2eα]-competitive; the paper's Section 3 observes that PD's
    rejection rule with [δ = α^(1-α)] degenerates to exactly this test on
    one processor (experiment E3 verifies the equivalence numerically). *)

open Speedscale_model

val threshold_speed : Power.t -> Job.t -> float
(** The admission threshold above. *)

val admission : Power.t -> Oa_engine.admission_sp
(** The threshold test as an {!Oa_engine} admission hook: plans the
    candidate with YDS, reports the planned speed, admits iff it is under
    {!threshold_speed}.  This is what the online-engine registry folds
    with. *)

val schedule : Instance.t -> Schedule.t
(** Requires [machines = 1].  The rejected ids are recorded in the
    schedule. *)

val cost : Instance.t -> Cost.t
