(** The Optimal Available (OA) simulation engine, shared by plain OA and
    by Chan–Lam–Li's profitable variant.

    OA (Yao–Demers–Shenker) re-plans at every job arrival: it computes the
    energy-optimal (YDS) schedule for the {e remaining} work of all known
    unfinished jobs and follows it until the next arrival.  Between
    arrivals the executed prefix of the plan is cut out and the remaining
    workloads updated.

    The engine additionally supports an {e admission test} evaluated once
    per arrival: if the test rejects the job, it is discarded (its value
    will be lost) and never processed.  Plain OA admits everything; CLL
    plugs in its planned-speed threshold. *)

open Speedscale_model

type admission = now:float -> plan:Job.t list -> candidate:Job.t -> bool
(** [plan] is the adjusted remaining-work job list {e including} the
    candidate (windows shifted to start at [now]), as CLL's test needs the
    planned schedule with the new job in it. *)

val run : ?admit:admission -> Instance.t -> Schedule.t
(** Simulate the online execution.  Requires [machines = 1].  The returned
    schedule carries the rejected ids.  Jobs whose deadline passes before
    they finish can not occur (YDS plans are feasible); leftover float dust
    below 1e-9 of a workload is considered finished. *)
