(** The incremental replan-execute core shared by every OA-family online
    algorithm: plain OA and Chan–Lam–Li on one processor, and their
    multiprocessor counterparts mOA and mCLL in [lib/multi].

    The OA pattern (Yao–Demers–Shenker) re-plans at every job arrival: it
    computes an energy-optimal schedule for the {e remaining} work of all
    known unfinished jobs and follows it until the next arrival.  Between
    arrivals the executed prefix of the plan is committed and the remaining
    workloads updated.  This module implements that pattern as a mutable
    incremental state driven one arrival at a time — the shape the
    [Speedscale_engine.Online] registry folds over — parameterized by

    + a {e plan function} (single-processor YDS, or the multiprocessor
      convex-program plan), and
    + an {e admission test} evaluated once per arrival: if the test
      rejects the job, it is discarded (its value will be lost) and never
      processed.  Plain OA/mOA admit everything; CLL/mCLL plug in their
      planned-speed threshold.

    Driving [step] over the release-ordered jobs of an instance and then
    reading {!current_plan} reproduces the historical batch simulation
    byte for byte: arrivals sharing a release time are admitted one by one
    (in id order) before any execution, and execution advances only when
    the clock does. *)

open Speedscale_model

type admission = now:float -> plan:Job.t list -> candidate:Job.t -> bool
(** [plan] is the adjusted remaining-work job list {e including} the
    candidate (windows shifted to start at [now]), as CLL's test needs the
    planned schedule with the new job in it. *)

type verdict = {
  admitted : bool;
  planned_speed : float option;
      (** the candidate's speed in the admission-time plan, when the
          admission test computed it (CLL/mCLL); [None] for tests that
          never plan the candidate *)
}

type admission_sp = now:float -> plan:Job.t list -> candidate:Job.t -> verdict
(** Admission test that also reports the planned speed it measured, so the
    online decision record carries it without planning twice. *)

type plan_fn = now:float -> Job.t list -> Schedule.slice list
(** [plan ~now jobs] schedules the remaining-work jobs (windows already
    shifted to start at [now], original ids preserved) from time [now]
    onward.  Must be deterministic in its arguments. *)

type t
(** Mutable incremental state. *)

val start :
  machines:int ->
  plan:plan_fn ->
  ?admit:admission_sp ->
  ?must_finish:bool ->
  unit ->
  t
(** Fresh state at the beginning of time.  [admit] defaults to
    admit-everything; [must_finish] (default [false]) stores arriving jobs
    with their value forced to [infinity] — the energy-only view OA, mOA
    and mAVR plan with.  Raises [Invalid_argument] if [machines < 1]. *)

val step : t -> Job.t -> verdict
(** Process one arrival: execute the standing plan up to the job's release
    time, then run the admission test.  Jobs must arrive in non-decreasing
    release order with distinct ids; raises [Invalid_argument]
    otherwise. *)

val now : t -> float
(** Release time of the last arrival ([neg_infinity] before the first). *)

val seen : t -> Job.t list
(** Every arrival so far, in arrival order, as stored (i.e. with the
    must-finish view applied when configured). *)

val rejected : t -> int list
(** Ids the admission test refused, newest first (the accumulation order
    the batch simulation used). *)

val current_plan : t -> Schedule.t
(** Executed slices so far plus the standing plan for all remaining work,
    as one schedule.  Pure: does not advance the state, so it can be read
    between arrivals (the "what would you do if no more jobs came"
    projection) and doubles as the final schedule after the last
    arrival. *)

val clip_slices : until:float -> Schedule.slice list -> Schedule.slice list
(** Keep only the part of each slice before [until], dropping sliver
    slices whose clipped width is below the [Feq] tolerance (a slice ending
    within tolerance of [until] would otherwise survive as a zero-width
    artifact and trip overlap validation downstream).  Exposed for the
    multiprocessor planners and their tests. *)

val run : ?admit:admission -> Instance.t -> Schedule.t
(** Batch wrapper kept for the offline entry points: folds {!step} over
    the instance's release-ordered jobs with the single-processor YDS plan
    and returns {!current_plan}.  Requires [machines = 1].  The returned
    schedule carries the rejected ids.  Jobs whose deadline passes before
    they finish can not occur (YDS plans are feasible); leftover float
    dust below 1e-9 of a workload is considered finished. *)
