open Speedscale_model

let e = Float.exp 1.0

(* Work of jobs known at time [t] whose windows fit in [t1, t2]. *)
let known_work (inst : Instance.t) ~t ~t1 ~t2 =
  Array.fold_left
    (fun acc (j : Job.t) ->
      if j.release <= t && j.release >= t1 && j.deadline <= t2 then
        acc +. j.workload
      else acc)
    0.0 inst.jobs

let speed_at (inst : Instance.t) t =
  let best = ref 0.0 in
  Array.iter
    (fun (j : Job.t) ->
      let t2 = j.deadline in
      if t2 > t then begin
        let t1 = (e *. t) -. ((e -. 1.0) *. t2) in
        let w = known_work inst ~t ~t1 ~t2 in
        let v = w /. (e *. (t2 -. t)) in
        if v > !best then best := v
      end)
    inst.jobs;
  e *. !best

let check_single (inst : Instance.t) =
  if inst.machines <> 1 then
    invalid_arg "Bkp: single-processor algorithm (machines = 1)"

(* EDF execution over a piecewise-constant speed profile. *)
let edf_over (inst : Instance.t) profile =
  let n = Instance.n_jobs inst in
  let remaining = Array.init n (fun i -> (Instance.job inst i).workload) in
  let slices = ref [] in
  List.iter
    (fun (a, b, speed) ->
      if speed > 0.0 then begin
        let t = ref a in
        let continue = ref true in
        while !continue && !t < b -. 1e-13 do
          let avail =
            List.init n Fun.id
            |> List.filter (fun i ->
                   let j = Instance.job inst i in
                   j.release <= !t +. Speedscale_util.Feq.tol_guard
                   && j.deadline > !t
                   && remaining.(i) > Speedscale_util.Feq.tol_guard)
          in
          match
            List.sort
              (fun i1 i2 ->
                Float.compare (Instance.job inst i1).deadline
                  (Instance.job inst i2).deadline)
              avail
          with
          | [] -> continue := false
          | i :: _ ->
            let j = Instance.job inst i in
            let t_end =
              Float.min
                (Float.min b j.deadline)
                (!t +. (remaining.(i) /. speed))
            in
            let dt = t_end -. !t in
            if dt > Speedscale_util.Feq.tol_step then begin
              slices :=
                { Schedule.proc = 0; t0 = !t; t1 = t_end; job = i; speed }
                :: !slices;
              remaining.(i) <- remaining.(i) -. (dt *. speed);
              t := t_end
            end
            else begin
              remaining.(i) <- 0.0;
              t := t_end
            end
        done
      end)
    profile;
  (!slices, remaining)

let profile_of (inst : Instance.t) ~steps =
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  let segs = ref [] in
  for k = 0 to Timeline.n_intervals tl - 1 do
    let lo, hi = Timeline.bounds tl k in
    let h = (hi -. lo) /. float_of_int steps in
    for i = 0 to steps - 1 do
      let a = lo +. (float_of_int i *. h) in
      let b = a +. h in
      (* conservative per-step speed: max of three samples plus margin *)
      let s =
        Float.max
          (Float.max (speed_at inst a) (speed_at inst ((a +. b) /. 2.0)))
          (speed_at inst (b -. (Speedscale_util.Feq.tol_snap *. h)))
        *. (1.0 +. Speedscale_util.Feq.tol_loose)
      in
      segs := (a, b, s) :: !segs
    done
  done;
  List.rev !segs

let schedule ?(steps_per_interval = 64) (inst : Instance.t) =
  check_single inst;
  let rec attempt steps tries =
    let slices, remaining = edf_over inst (profile_of inst ~steps) in
    let unfinished =
      Array.exists
        (fun r -> r > Speedscale_util.Feq.tol_loose *. (1.0 +. Array.fold_left Float.max 0.0 remaining))
        remaining
    in
    if (not unfinished) || tries = 0 then
      Schedule.make ~machines:1 ~rejected:[] slices
    else attempt (steps * 2) (tries - 1)
  in
  attempt steps_per_interval 4

let energy ?steps_per_interval (inst : Instance.t) =
  Schedule.energy inst.power (schedule ?steps_per_interval inst)
