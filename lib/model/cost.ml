type t = { energy : float; lost_value : float }

let total t = t.energy +. t.lost_value

let make ~energy ~lost_value =
  if energy < 0.0 || lost_value < 0.0 then
    invalid_arg "Cost.make: negative component";
  { energy; lost_value }

let zero = { energy = 0.0; lost_value = 0.0 }

let add a b =
  { energy = a.energy +. b.energy; lost_value = a.lost_value +. b.lost_value }

let pp ppf t =
  Format.fprintf ppf "cost[energy=%.6g lost=%.6g total=%.6g]" t.energy
    t.lost_value (total t)
