type t = { alpha : float }

let make alpha =
  if not (Float.is_finite alpha) || alpha <= 1.0 then
    invalid_arg (Fmt.str "Power.make: alpha must be finite > 1: %g" alpha);
  { alpha }

let alpha t = t.alpha

let energy_rate t s =
  if s < 0.0 then invalid_arg "Power.energy_rate: negative speed";
  if Float.equal s 0.0 then 0.0 else s ** t.alpha

let energy t ~speed ~duration = duration *. energy_rate t speed

let deriv t s =
  if s < 0.0 then invalid_arg "Power.deriv: negative speed";
  if Float.equal s 0.0 then 0.0 else t.alpha *. (s ** (t.alpha -. 1.0))

let inv_deriv t y =
  if y < 0.0 then invalid_arg "Power.inv_deriv: negative marginal";
  if Float.equal y 0.0 then 0.0
  else
    (* slint: allow unsafe-pow -- y >= 0 here and alpha > 1 by [make] *)
    (y /. t.alpha) ** (1.0 /. (t.alpha -. 1.0))

(* slint: allow unsafe-pow -- alpha > 1 by [make] *)
let competitive_bound t = t.alpha ** t.alpha
let cll_bound t = competitive_bound t +. (2.0 *. Float.exp 1.0 *. t.alpha)

(* slint: allow unsafe-pow -- alpha > 1 by [make] *)
let delta_star t = t.alpha ** (1.0 -. t.alpha)

let rejection_speed_factor t =
  (* slint: allow unsafe-pow -- alpha > 1 by [make] *)
  t.alpha ** ((t.alpha -. 2.0) /. (t.alpha -. 1.0))

let pp ppf t = Format.fprintf ppf "P_%.3g" t.alpha
