(** Plain-text instance files.

    Format (order-insensitive header lines, then one line per job):

    {v
    alpha 3.0
    machines 2
    # release deadline workload value   ("inf" for must-finish)
    job 0.0 2.0 1.5 10.0
    job 0.5 3.0 2.0 inf
    v}

    Lines starting with [#] and blank lines are ignored.  Job ids are
    assigned by [Instance.make] (release order). *)

val to_string : Instance.t -> string
val of_string : string -> Instance.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val save : string -> Instance.t -> unit
val load : string -> Instance.t
