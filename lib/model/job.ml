type t = {
  id : int;
  release : float;
  deadline : float;
  workload : float;
  value : float;
}

let make ~id ~release ~deadline ~workload ~value =
  let fail msg = invalid_arg (Fmt.str "Job.make(id=%d): %s" id msg) in
  if not (Float.is_finite release) || release < 0.0 then
    fail "release must be finite >= 0";
  if not (Float.is_finite deadline) || deadline <= release then
    fail "deadline must be finite > release";
  if not (Float.is_finite workload) || workload <= 0.0 then
    fail "workload must be finite > 0";
  if Float.is_nan value || value < 0.0 then fail "value must be >= 0";
  { id; release; deadline; workload; value }

let span j = j.deadline -. j.release
let density j = j.workload /. span j
let value_density j = j.value /. j.workload
let available_at j t = j.release <= t && t < j.deadline
let covers j ~lo ~hi = j.release <= lo && hi <= j.deadline

let compare_release a b =
  match Float.compare a.release b.release with
  | 0 -> Int.compare a.id b.id
  | c -> c

let pp ppf j =
  Format.fprintf ppf "job%d[r=%g d=%g w=%g v=%g]" j.id j.release j.deadline
    j.workload j.value
