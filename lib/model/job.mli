(** Jobs: the unit of work in the profitable-scheduling model.

    A job [j] has a release time [r_j], a hard deadline [d_j], a workload
    [w_j] (work units to process inside [[r_j, d_j)]) and a value [v_j]
    (the loss suffered if the job is not finished).  Values may be
    [infinity], which models the classical Yao–Demers–Shenker setting where
    every job must be finished. *)

type t = private {
  id : int;  (** unique within an instance; also the arrival rank *)
  release : float;
  deadline : float;
  workload : float;
  value : float;
}

val make :
  id:int -> release:float -> deadline:float -> workload:float ->
  value:float -> t
(** Validates: [0 <= release < deadline], [workload > 0], [value >= 0]
    ([infinity] allowed), all finite except [value].
    Raises [Invalid_argument] on violation. *)

val span : t -> float
(** [deadline - release], the job's availability window length. *)

val density : t -> float
(** [workload / span] — the minimum average speed needed to finish the job
    alone on one processor. *)

val value_density : t -> float
(** [value / workload]: loss avoided per unit of work.  [infinity] for
    must-finish jobs. *)

val available_at : t -> float -> bool
(** [available_at j t] is [release <= t < deadline]. *)

val covers : t -> lo:float -> hi:float -> bool
(** [covers j ~lo ~hi] is [true] when [[lo, hi) ⊆ [release, deadline)] —
    the indicator [c_jk] of the paper for an atomic interval [[lo, hi)]. *)

val compare_release : t -> t -> int
(** Order by release time, ties by id — the online arrival order. *)

val pp : Format.formatter -> t -> unit
