(** Cost breakdown of a schedule: invested energy plus lost value
    (Equation (1) of the paper). *)

type t = { energy : float; lost_value : float }

val total : t -> float
val make : energy:float -> lost_value:float -> t
val zero : t
val add : t -> t -> t
val pp : Format.formatter -> t -> unit
