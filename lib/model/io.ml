let to_string (inst : Instance.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Fmt.str "alpha %.17g\n" (Power.alpha inst.power));
  Buffer.add_string b (Fmt.str "machines %d\n" inst.machines);
  Buffer.add_string b "# release deadline workload value\n";
  Array.iter
    (fun (j : Job.t) ->
      Buffer.add_string b
        (Fmt.str "job %.17g %.17g %.17g %s\n" j.release j.deadline
           j.workload
           (if Float.equal j.value Float.infinity then "inf"
            else Fmt.str "%.17g" j.value)))
    inst.jobs;
  Buffer.contents b

let of_string s =
  let alpha = ref None and machines = ref None and jobs = ref [] in
  let parse_float what lineno v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> failwith (Fmt.str "line %d: bad %s %S" lineno what v)
  in
  String.split_on_char '\n' s
  |> List.iteri (fun i line ->
         let lineno = i + 1 in
         let line = String.trim line in
         if line = "" || line.[0] = '#' then ()
         else
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ "alpha"; v ] -> alpha := Some (parse_float "alpha" lineno v)
           | [ "machines"; v ] -> (
             match int_of_string_opt v with
             | Some m -> machines := Some m
             | None ->
               failwith (Fmt.str "line %d: bad machines %S" lineno v))
           | [ "job"; r; d; w; v ] ->
             let value =
               if v = "inf" then Float.infinity
               else parse_float "value" lineno v
             in
             jobs :=
               (fun id ->
                 Job.make ~id ~release:(parse_float "release" lineno r)
                   ~deadline:(parse_float "deadline" lineno d)
                   ~workload:(parse_float "workload" lineno w)
                   ~value)
               :: !jobs
           | _ -> failwith (Fmt.str "line %d: unrecognized %S" lineno line));
  let alpha =
    match !alpha with
    | Some a -> a
    | None -> failwith "missing 'alpha' line"
  in
  let machines =
    match !machines with
    | Some m -> m
    | None -> failwith "missing 'machines' line"
  in
  let jobs = List.rev_map (fun mk -> mk 0) !jobs in
  if jobs = [] then failwith "no jobs";
  Instance.make ~power:(Power.make alpha) ~machines jobs

let save path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
