(** Concrete schedules: who runs where, when, and how fast.

    A schedule is a set of {e slices} — maximal stretches during which one
    processor runs one job at one constant speed — plus the set of jobs the
    algorithm rejected.  All algorithms in this repository produce
    piecewise-constant speed profiles (optimal schedules always can, because
    availability only changes at interval boundaries and [P_α] is convex),
    so slices represent them exactly and energy integrals are closed-form.

    The module also implements the model's feasibility rules from Section 2:
    one job per processor at a time, no job on two processors at once,
    work only inside the job's [[r_j, d_j)] window, and finished jobs must
    receive their full workload. *)

type slice = {
  proc : int;  (** processor index, [0 .. m-1] *)
  t0 : float;
  t1 : float;  (** [t0 < t1] *)
  job : int;  (** job id *)
  speed : float;  (** constant speed [> 0] on the slice *)
}

type t = private {
  machines : int;
  slices : slice list;
  rejected : int list;  (** job ids the algorithm chose not to finish *)
}

val make : machines:int -> rejected:int list -> slice list -> t
(** Basic shape validation only (processor range, positive duration and
    speed); semantic validation against an instance is {!validate}.  Slices
    of zero speed or zero duration are dropped. *)

val energy : Power.t -> t -> float
(** Total energy [Σ_slices (t1 - t0) · speed^α]. *)

val work_of_job : t -> int -> float
(** Work processed for a job across all its slices. *)

val finished : Instance.t -> t -> int list
(** Ids of jobs that received their full workload (up to tolerance) within
    their window. *)

val unfinished : Instance.t -> t -> int list
(** Complement of {!finished} — exactly the jobs whose value is lost. *)

val cost : Instance.t -> t -> Cost.t
(** Energy plus the value of unfinished jobs (Equation (1) of the paper). *)

val validate : Instance.t -> t -> (unit, string) result
(** Full feasibility check: slice shape, processor/job overlap freedom,
    window containment, and that every non-rejected job is finished.  The
    first violated rule is reported. *)

val speed_profile : t -> proc:int -> (float * float * float) list
(** [(t0, t1, speed)] runs of one processor, sorted by time. *)

val speed_at : t -> proc:int -> float -> float
(** Instantaneous speed of a processor ([0] when idle or out of range).
    Slice intervals are half-open, so the speed at a boundary is the
    incoming slice's. *)

val running_at : t -> proc:int -> float -> int option
(** The job running on the processor at that instant, if any. *)

val busy_intervals : t -> job:int -> (float * float) list
(** When (and only when) the given job is being processed, sorted. *)

val pp : Format.formatter -> t -> unit
(** Compact multi-line rendering for debugging and the figure benches. *)
