open Speedscale_util

type slice = { proc : int; t0 : float; t1 : float; job : int; speed : float }
type t = { machines : int; slices : slice list; rejected : int list }

(* Tolerance for work-completion and overlap checks: a schedule assembled
   from thousands of slices accumulates rounding in each one. *)
let work_tol = Feq.tol_loose

let make ~machines ~rejected slices =
  if machines < 1 then invalid_arg "Schedule.make: machines < 1";
  let check s =
    if s.proc < 0 || s.proc >= machines then
      invalid_arg
        (Fmt.str "Schedule.make: slice processor %d out of range" s.proc);
    if not (Float.is_finite s.t0 && Float.is_finite s.t1 && s.t0 < s.t1) then
      invalid_arg "Schedule.make: slice must have t0 < t1 (finite)";
    if not (Float.is_finite s.speed) || s.speed < 0.0 then
      invalid_arg "Schedule.make: slice speed must be finite >= 0"
  in
  let slices =
    List.filter
      (fun s ->
        check s;
        s.speed > 0.0 && s.t1 > s.t0)
      slices
  in
  { machines; slices; rejected = List.sort_uniq Int.compare rejected }

let energy power t =
  Ksum.sum_by
    (fun s -> Power.energy power ~speed:s.speed ~duration:(s.t1 -. s.t0))
    t.slices

let work_of_job t id =
  Ksum.sum_by
    (fun s -> if s.job = id then (s.t1 -. s.t0) *. s.speed else 0.0)
    t.slices

let finished (inst : Instance.t) t =
  let n = Instance.n_jobs inst in
  (* one compensated accumulator per job, one pass over the slices — a
     work_of_job scan per job is O(n * slices) and dominated E20's wall
     time at n = 800 *)
  let work = Array.init n (fun _ -> Ksum.create ()) in
  List.iter
    (fun s ->
      if s.job >= 0 && s.job < n then
        Ksum.add work.(s.job) ((s.t1 -. s.t0) *. s.speed))
    t.slices;
  let rec go i acc =
    if i < 0 then acc
    else
      let j = Instance.job inst i in
      let done_ =
        Ksum.total work.(i) >= j.workload -. (work_tol *. (1.0 +. j.workload))
      in
      go (i - 1) (if done_ then i :: acc else acc)
  in
  go (n - 1) []

let unfinished inst t =
  let n = Instance.n_jobs inst in
  let fin = Array.make n false in
  List.iter (fun i -> fin.(i) <- true) (finished inst t);
  List.init n Fun.id |> List.filter (fun i -> not fin.(i))

let cost (inst : Instance.t) t =
  let lost =
    Ksum.sum_by (fun i -> (Instance.job inst i).value) (unfinished inst t)
  in
  Cost.make ~energy:(energy inst.power t) ~lost_value:lost

(* Overlap detection shared by per-processor and per-job checks: sort by
   start, then each slice must start no earlier than the previous end. *)
let overlap_free label slices =
  let sorted = List.sort (fun a b -> Float.compare a.t0 b.t0) slices in
  let rec go = function
    | a :: (b :: _ as rest) ->
      if b.t0 < a.t1 -. work_tol then
        Error
          (Fmt.str "%s: slices overlap: [%g,%g) and [%g,%g)" label a.t0
             a.t1 b.t0 b.t1)
      else go rest
    | _ -> Ok ()
  in
  go sorted

let ( let* ) = Result.bind

let rec iter_results f = function
  | [] -> Ok ()
  | x :: rest ->
    let* () = f x in
    iter_results f rest

let validate (inst : Instance.t) (t : t) =
  let* () =
    if t.machines = inst.machines then Ok ()
    else Error "schedule machine count differs from instance"
  in
  let n = Instance.n_jobs inst in
  let* () =
    iter_results
      (fun s ->
        if s.job < 0 || s.job >= n then
          Error (Fmt.str "slice refers to unknown job %d" s.job)
        else
          let j = Instance.job inst s.job in
          if s.t0 >= j.release -. work_tol && s.t1 <= j.deadline +. work_tol
          then Ok ()
          else
            Error
              (Fmt.str
                 "job %d processed on [%g,%g) outside its window [%g,%g)"
                 s.job s.t0 s.t1 j.release j.deadline))
      t.slices
  in
  let* () =
    iter_results
      (fun p ->
        overlap_free
          (Fmt.str "processor %d" p)
          (List.filter (fun s -> s.proc = p) t.slices))
      (List.init t.machines Fun.id)
  in
  let* () =
    iter_results
      (fun id ->
        overlap_free
          (Fmt.str "job %d" id)
          (List.filter (fun s -> s.job = id) t.slices))
      (List.init n Fun.id)
  in
  let fin = finished inst t in
  iter_results
    (fun id ->
      if List.mem id t.rejected || List.mem id fin then Ok ()
      else
        Error
          (Fmt.str "job %d is neither rejected nor finished (work %g/%g)"
             id (work_of_job t id)
             (Instance.job inst id).workload))
    (List.init n Fun.id)

let speed_profile t ~proc =
  List.filter (fun s -> s.proc = proc) t.slices
  |> List.map (fun s -> (s.t0, s.t1, s.speed))
  |> List.sort compare

let slice_at t ~proc time =
  List.find_opt
    (fun s -> s.proc = proc && s.t0 <= time && time < s.t1)
    t.slices

let speed_at t ~proc time =
  match slice_at t ~proc time with Some s -> s.speed | None -> 0.0

let running_at t ~proc time =
  Option.map (fun s -> s.job) (slice_at t ~proc time)

let busy_intervals t ~job =
  List.filter (fun s -> s.job = job) t.slices
  |> List.map (fun s -> (s.t0, s.t1))
  |> List.sort compare

let pp ppf t =
  Format.fprintf ppf "schedule[m=%d rejected={%s}]@." t.machines
    (String.concat "," (List.map string_of_int t.rejected));
  List.iter
    (fun p ->
      Format.fprintf ppf "  proc %d:" p;
      List.iter
        (fun (t0, t1, s) -> Format.fprintf ppf " [%g,%g)@%.4g" t0 t1 s)
        (speed_profile t ~proc:p);
      Format.fprintf ppf "@.")
    (List.init t.machines Fun.id)
