type t = { bounds : float array }

let of_times times =
  let sorted = List.sort_uniq Float.compare times in
  if List.length sorted < 2 then
    invalid_arg "Timeline.of_times: need at least two distinct times";
  List.iter
    (fun x ->
      if not (Float.is_finite x) then
        invalid_arg "Timeline.of_times: non-finite boundary")
    sorted;
  { bounds = Array.of_list sorted }

let of_jobs jobs =
  of_times
    (List.concat_map (fun (j : Job.t) -> [ j.release; j.deadline ]) jobs)

let n_intervals t = Array.length t.bounds - 1
let boundaries t = Array.copy t.bounds

let bounds t k =
  if k < 0 || k >= n_intervals t then
    invalid_arg (Fmt.str "Timeline.bounds: index %d" k);
  (t.bounds.(k), t.bounds.(k + 1))

let length t k =
  let lo, hi = bounds t k in
  hi -. lo

(* Binary search: greatest i with bounds.(i) <= x. *)
let find_le t x =
  let b = t.bounds in
  let n = Array.length b in
  if x < b.(0) then None
  else
    let rec go lo hi =
      if lo = hi then Some lo
      else
        let mid = (lo + hi + 1) / 2 in
        if b.(mid) <= x then go mid hi else go lo (mid - 1)
    in
    go 0 (n - 1)

let index_at t x =
  match find_le t x with
  | Some i when i < n_intervals t -> Some i
  | _ -> None

let is_boundary t x = Array.exists (fun b -> b = x) t.bounds

let covering t ~release ~deadline =
  if not (is_boundary t release && is_boundary t deadline) then
    invalid_arg
      (Fmt.str
         "Timeline.covering: window [%g, %g) endpoints are not boundaries"
         release deadline);
  let acc = ref [] in
  for k = n_intervals t - 1 downto 0 do
    let lo, hi = bounds t k in
    if release <= lo && hi <= deadline then acc := k :: !acc
  done;
  !acc

let refine t time =
  let n_old = n_intervals t in
  match find_le t time with
  | None ->
    (* before the horizon: nothing to split *)
    (t, fun k -> [ k ])
  | Some i when t.bounds.(i) = time || i >= n_old ->
    (t, fun k -> [ k ])
  | Some i ->
    let bounds' =
      Array.init
        (Array.length t.bounds + 1)
        (fun j ->
          if j <= i then t.bounds.(j)
          else if j = i + 1 then time
          else t.bounds.(j - 1))
    in
    let map k =
      if k < 0 || k >= n_old then
        invalid_arg "Timeline.refine: stale interval index"
      else if k < i then [ k ]
      else if k = i then [ i; i + 1 ]
      else [ k + 1 ]
    in
    ({ bounds = bounds' }, map)

let pp ppf t =
  Format.fprintf ppf "timeline[%a]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    t.bounds
