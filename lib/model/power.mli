(** The power function [P_α(s) = s^α] of a speed-scalable processor and the
    derived quantities the analysis needs.

    The energy exponent [α] is a real constant [> 1] (the paper allows any
    [α ∈ R_{>1}]; CMOS hardware is ≈ 3).  A value of type {!t} witnesses a
    validated exponent, so downstream code never re-checks it. *)

type t
(** A validated energy exponent. *)

val make : float -> t
(** [make alpha] validates [alpha > 1] and finiteness.
    Raises [Invalid_argument] otherwise. *)

val alpha : t -> float
(** The exponent itself. *)

val energy_rate : t -> float -> float
(** [energy_rate t s] is the power [P_α(s) = s^α] drawn at speed [s >= 0]. *)

val energy : t -> speed:float -> duration:float -> float
(** Energy of running at constant [speed] for [duration]:
    [duration * speed^α]. *)

val deriv : t -> float -> float
(** [deriv t s] is [P'_α(s) = α s^(α-1)], the marginal power at speed
    [s >= 0]. *)

val inv_deriv : t -> float -> float
(** [inv_deriv t y] is the speed [s] with [P'_α(s) = y], i.e.
    [(y/α)^(1/(α-1))], for [y >= 0].  Central to the analysis: the
    hypothetical dual speed is [ŝ_j = inv_deriv (λ_j / w_j)]. *)

val competitive_bound : t -> float
(** [α^α] — the tight competitive ratio of PD (Theorem 3). *)

val cll_bound : t -> float
(** [α^α + 2eα] — Chan–Lam–Li's bound, for comparison tables. *)

val delta_star : t -> float
(** The optimal PD parameter [δ* = α^(1-α) = 1/α^(α-1)] (Theorem 3). *)

val rejection_speed_factor : t -> float
(** [α^((α-2)/(α-1))] — the factor in the equivalent single-processor
    rejection policy of Chan–Lam–Li (Section 3): reject when the planned
    speed exceeds [factor * (v/w)^(1/(α-1))]. *)

val pp : Format.formatter -> t -> unit
