(** Problem instances: a job set plus the machine model.

    An instance fixes the number of processors [m], the energy exponent [α]
    and the jobs.  Jobs are stored in arrival (release) order with ids equal
    to their position, which both the online simulator and the primal-dual
    algorithm rely on. *)

type t = private {
  power : Power.t;
  machines : int;  (** m >= 1 *)
  jobs : Job.t array;  (** sorted by release time; [jobs.(i).id = i] *)
}

val make : power:Power.t -> machines:int -> Job.t list -> t
(** Sorts by release, re-numbers ids to arrival rank.
    Raises [Invalid_argument] if [machines < 1] or jobs is empty. *)

val n_jobs : t -> int
val job : t -> int -> Job.t

val horizon : t -> float * float
(** Earliest release and latest deadline. *)

val total_value : t -> float
(** Sum of all job values ([infinity] if any job is must-finish). *)

val must_finish : t -> bool
(** True when every value is [infinity] — the classical YDS setting. *)

val with_values : t -> (Job.t -> float) -> t
(** Functional update of all job values (used to degenerate a profitable
    instance into an energy-only one and vice versa). *)

val restrict : t -> keep:(Job.t -> bool) -> t
(** Sub-instance with only the jobs satisfying [keep] (ids re-ranked).
    Raises [Invalid_argument] if no job survives. *)

val pp : Format.formatter -> t -> unit
