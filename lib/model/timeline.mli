(** Atomic intervals.

    Following the paper (and Bingham–Greenstreet), time is partitioned into
    atomic intervals [T_k = [τ_{k-1}, τ_k)] whose boundaries are exactly the
    release times and deadlines seen so far.  Within an atomic interval the
    set of available jobs is constant, so an optimal schedule runs at
    constant speeds there and the whole problem reduces to choosing how much
    of each job to place into each interval.

    A timeline is immutable; the online algorithm {e refines} it when a new
    job's release or deadline falls strictly inside an existing interval. *)

type t
(** Strictly increasing boundaries [τ_0 < τ_1 < … < τ_N]; interval [k]
    (0-based) is [[τ_k, τ_{k+1})]. *)

val of_times : float list -> t
(** Builds a timeline from a multiset of boundary times (duplicates are
    merged).  Raises [Invalid_argument] with fewer than two distinct
    times. *)

val of_jobs : Job.t list -> t
(** Timeline over [{r_j, d_j | j}] — the paper's partition (at most [2n-1]
    intervals). *)

val n_intervals : t -> int
val boundaries : t -> float array

val bounds : t -> int -> float * float
(** [bounds t k] is [(τ_k, τ_{k+1})].  Raises [Invalid_argument] if [k] is
    out of range. *)

val length : t -> int -> float
(** [l_k = τ_{k+1} - τ_k]. *)

val covering : t -> release:float -> deadline:float -> int list
(** Indices [k] with [T_k ⊆ [release, deadline)] — where [c_jk = 1].  The
    window endpoints must coincide with boundaries (callers refine first);
    raises [Invalid_argument] otherwise. *)

val refine : t -> float -> t * (int -> int list)
(** [refine t time] inserts [time] as a boundary.  Returns the new timeline
    and a map from each {e old} interval index to the list of {e new}
    indices it became (a singleton except for the split interval).  If
    [time] is already a boundary or outside the horizon, the timeline is
    returned unchanged with the identity-shift map. *)

val index_at : t -> float -> int option
(** [index_at t x] is the interval containing time [x], if any. *)

val pp : Format.formatter -> t -> unit
