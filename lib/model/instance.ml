type t = { power : Power.t; machines : int; jobs : Job.t array }

let renumber jobs =
  List.stable_sort Job.compare_release jobs
  |> List.mapi (fun i (j : Job.t) ->
         Job.make ~id:i ~release:j.release ~deadline:j.deadline
           ~workload:j.workload ~value:j.value)
  |> Array.of_list

let make ~power ~machines jobs =
  if machines < 1 then invalid_arg "Instance.make: machines < 1";
  if jobs = [] then invalid_arg "Instance.make: empty job set";
  { power; machines; jobs = renumber jobs }

let n_jobs t = Array.length t.jobs
let job t i = t.jobs.(i)

let horizon t =
  Array.fold_left
    (fun (lo, hi) (j : Job.t) -> (Float.min lo j.release, Float.max hi j.deadline))
    (Float.infinity, Float.neg_infinity)
    t.jobs

let total_value t =
  Speedscale_util.Ksum.sum_by (fun (j : Job.t) -> j.value) (Array.to_list t.jobs)

let must_finish t =
  Array.for_all (fun (j : Job.t) -> Float.equal j.value Float.infinity) t.jobs

let with_values t f =
  let jobs =
    Array.to_list t.jobs
    |> List.map (fun (j : Job.t) ->
           Job.make ~id:j.id ~release:j.release ~deadline:j.deadline
             ~workload:j.workload ~value:(f j))
  in
  make ~power:t.power ~machines:t.machines jobs

let restrict t ~keep =
  let jobs = Array.to_list t.jobs |> List.filter keep in
  if jobs = [] then invalid_arg "Instance.restrict: no job survives";
  make ~power:t.power ~machines:t.machines jobs

let pp ppf t =
  Format.fprintf ppf "instance[alpha=%g m=%d n=%d]"
    (Power.alpha t.power) t.machines (Array.length t.jobs)
