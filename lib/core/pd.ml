open Speedscale_util
open Speedscale_model
open Speedscale_chen
open Speedscale_solver

type t = {
  power : Power.t;
  machines : int;
  delta : float;
  mutable bounds : float array;  (* strictly increasing; empty before jobs *)
  mutable loads : (int * float) list array;  (* per interval, committed *)
  mutable seen : Job.t list;  (* reversed arrival order *)
  mutable lambda_rev : (int * float) list;
  mutable accepted_rev : int list;
  mutable rejected_rev : int list;
  mutable last_release : float;
}

let create ?delta ~power ~machines () =
  if machines < 1 then invalid_arg "Pd.create: machines < 1";
  let delta = Option.value delta ~default:(Power.delta_star power) in
  if not (Float.is_finite delta) || delta <= 0.0 then
    invalid_arg "Pd.create: delta must be finite > 0";
  {
    power;
    machines;
    delta;
    bounds = [||];
    loads = [||];
    seen = [];
    lambda_rev = [];
    accepted_rev = [];
    rejected_rev = [];
    last_release = Float.neg_infinity;
  }

(* ------------------------------------------------------------------ *)
(* Timeline maintenance                                                 *)
(* ------------------------------------------------------------------ *)

(* Insert [b] as a boundary.  Inside an interval: split it, dividing the
   committed loads proportionally to the sub-lengths (this keeps every
   job's speed unchanged, which is why the reformulated online algorithm
   computes the same schedule as one knowing the partition a priori).
   Outside the current horizon: append an empty edge interval. *)
let insert_boundary t b =
  let n = Array.length t.bounds in
  if n = 0 then t.bounds <- [| b |]
  else if Array.exists (fun x -> x = b) t.bounds then ()
  else if b < t.bounds.(0) then begin
    t.bounds <- Array.append [| b |] t.bounds;
    if n >= 2 then t.loads <- Array.append [| [] |] t.loads
    else t.loads <- [||]
    (* n = 1: there were no intervals yet; now one interval [b, old) *)
  end
  else if b > t.bounds.(n - 1) then begin
    t.bounds <- Array.append t.bounds [| b |];
    if n >= 2 then t.loads <- Array.append t.loads [| [] |]
  end
  else begin
    (* strictly inside: find i with bounds.(i) < b < bounds.(i+1) *)
    let rec find i = if t.bounds.(i + 1) > b then i else find (i + 1) in
    let i = find 0 in
    let lo = t.bounds.(i) and hi = t.bounds.(i + 1) in
    let frac_left = (b -. lo) /. (hi -. lo) in
    let left = List.map (fun (id, w) -> (id, w *. frac_left)) t.loads.(i) in
    let right =
      List.map (fun (id, w) -> (id, w *. (1.0 -. frac_left))) t.loads.(i)
    in
    t.bounds <-
      Array.init (n + 1) (fun j ->
          if j <= i then t.bounds.(j)
          else if j = i + 1 then b
          else t.bounds.(j - 1));
    t.loads <-
      Array.init
        (Array.length t.loads + 1)
        (fun j ->
          if j < i then t.loads.(j)
          else if j = i then left
          else if j = i + 1 then right
          else t.loads.(j - 1))
  end;
  (* transition from "single boundary" to "first real interval" *)
  if Array.length t.bounds >= 2 && Array.length t.loads <> Array.length t.bounds - 1
  then t.loads <- Array.make (Array.length t.bounds - 1) []

let window_intervals t ~release ~deadline =
  let acc = ref [] in
  for k = Array.length t.bounds - 2 downto 0 do
    if t.bounds.(k) >= release && t.bounds.(k + 1) <= deadline then
      acc := k :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Arrival processing                                                   *)
(* ------------------------------------------------------------------ *)

type decision = {
  job : Job.t;
  accepted : bool;
  lambda : float;
  planned_speed : float;
  assignment : (int * float) list;
}

(* The speed corresponding to price level mu for a job of workload w:
   mu = delta * w * P'(s). *)
let speed_of_price t ~workload mu =
  Power.inv_deriv t.power (mu /. (t.delta *. workload))

let arrive t (job : Job.t) =
  if List.exists (fun (j : Job.t) -> j.id = job.id) t.seen then
    invalid_arg "Pd.arrive: duplicate job id";
  if job.release < t.last_release -. 1e-12 then
    invalid_arg "Pd.arrive: jobs must arrive in release order";
  t.last_release <- Float.max t.last_release job.release;
  t.seen <- job :: t.seen;
  insert_boundary t job.release;
  insert_boundary t job.deadline;
  let window = window_intervals t ~release:job.release ~deadline:job.deadline in
  (* Chen problems of the committed loads (job j not yet included). *)
  let problems =
    List.map
      (fun k ->
        let length = t.bounds.(k + 1) -. t.bounds.(k) in
        (k, Chen.build ~machines:t.machines ~length t.loads.(k)))
      window
  in
  let w = job.workload in
  (* Work (in load units) job j would commit at price level mu. *)
  let load_at k_problem s = Float.min (Chen.probe_load_for_speed k_problem s) w in
  let assigned mu =
    let s = speed_of_price t ~workload:w mu in
    Ksum.sum_by (fun (_, p) -> load_at p s) problems
  in
  let commit mu =
    let s = speed_of_price t ~workload:w mu in
    List.filter_map
      (fun (k, p) ->
        let z = load_at p s in
        if z > 0.0 then Some (k, z) else None)
      problems
  in
  let finalize ~accepted ~lambda ~assignment =
    let planned_speed = speed_of_price t ~workload:w lambda in
    t.lambda_rev <- (job.id, lambda) :: t.lambda_rev;
    if accepted then begin
      t.accepted_rev <- job.id :: t.accepted_rev;
      (* rescale so the job is finished exactly despite bisection dust *)
      let total = Ksum.sum_by snd assignment in
      let scale = if total > 0.0 then w /. total else 0.0 in
      let assignment = List.map (fun (k, z) -> (k, z *. scale)) assignment in
      List.iter
        (fun (k, z) -> t.loads.(k) <- (job.id, z) :: t.loads.(k))
        assignment;
      { job; accepted = true; lambda; planned_speed; assignment }
    end
    else begin
      t.rejected_rev <- job.id :: t.rejected_rev;
      { job; accepted = false; lambda; planned_speed; assignment = [] }
    end
  in
  (* Decide: can the whole job be placed before the price reaches v_j? *)
  let at_value = if Float.is_finite job.value then assigned job.value else 0.0 in
  if Float.is_finite job.value && at_value < w *. (1.0 -. 1e-9) then
    finalize ~accepted:false ~lambda:job.value ~assignment:[]
  else begin
    (* find the finishing price mu_star with assigned mu_star = w *)
    let hi =
      if Float.is_finite job.value then job.value
      else begin
        (* grow a bracket: the price at which even a single interval could
           absorb the whole job is a safe upper bound *)
        let init =
          t.delta *. w
          *. Power.deriv t.power
               ((w +. 1.0) /. Float.max 1e-9 (Job.span job))
        in
        Bisect.grow_bracket ~f:assigned ~target:w ~lo:0.0
          ~init:(Float.max init 1e-9) ()
      end
    in
    let mu_star =
      Bisect.monotone_inverse ~f:assigned ~target:w ~lo:0.0 ~hi ()
    in
    finalize ~accepted:true ~lambda:mu_star ~assignment:(commit mu_star)
  end

(* ------------------------------------------------------------------ *)
(* Results                                                              *)
(* ------------------------------------------------------------------ *)

let boundaries t = Array.copy t.bounds
let interval_loads t = Array.copy t.loads

let schedule t =
  let slices = ref [] in
  Array.iteri
    (fun k loads ->
      if loads <> [] then begin
        let lo = t.bounds.(k) and hi = t.bounds.(k + 1) in
        let p = Chen.build ~machines:t.machines ~length:(hi -. lo) loads in
        slices := Chen.slices p ~t0:lo ~t1:hi @ !slices
      end)
    t.loads;
  Schedule.make ~machines:t.machines ~rejected:(List.rev t.rejected_rev)
    !slices

let lambdas t = List.rev t.lambda_rev

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot t =
  let b = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (Buffer.add_string b) fmt in
  pf "pd-snapshot v1\n";
  pf "alpha %.17g\n" (Power.alpha t.power);
  pf "machines %d\n" t.machines;
  pf "delta %.17g\n" t.delta;
  pf "last_release %.17g\n" t.last_release;
  pf "bounds";
  Array.iter (fun x -> pf " %.17g" x) t.bounds;
  pf "\n";
  Array.iteri
    (fun k loads ->
      pf "interval %d" k;
      List.iter (fun (id, load) -> pf " %d:%.17g" id load) loads;
      pf "\n")
    t.loads;
  (* jobs in arrival order with their outcomes *)
  List.iter
    (fun (j : Job.t) ->
      let lambda = List.assoc j.id t.lambda_rev in
      let status =
        if List.mem j.id t.accepted_rev then "accepted" else "rejected"
      in
      pf "job %d %.17g %.17g %.17g %s lambda %.17g %s\n" j.id j.release
        j.deadline j.workload
        (if Float.equal j.value Float.infinity then "inf"
         else Fmt.str "%.17g" j.value)
        lambda status)
    (List.rev t.seen);
  Buffer.contents b

let restore text =
  let fail lineno msg = failwith (Fmt.str "Pd.restore: line %d: %s" lineno msg) in
  let parse_float lineno what s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail lineno (Fmt.str "bad %s %S" what s)
  in
  let alpha = ref None
  and machines = ref None
  and delta = ref None
  and last_release = ref Float.neg_infinity
  and bounds = ref [||]
  and intervals = ref []
  and jobs = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let lineno = i + 1 in
         match String.split_on_char ' ' (String.trim line)
               |> List.filter (( <> ) "")
         with
         | [] -> ()
         | [ "pd-snapshot"; "v1" ] -> ()
         | [ "alpha"; v ] -> alpha := Some (parse_float lineno "alpha" v)
         | [ "machines"; v ] -> (
           match int_of_string_opt v with
           | Some m -> machines := Some m
           | None -> fail lineno "bad machines")
         | [ "delta"; v ] -> delta := Some (parse_float lineno "delta" v)
         | [ "last_release"; v ] ->
           last_release := parse_float lineno "last_release" v
         | "bounds" :: rest ->
           bounds :=
             Array.of_list (List.map (parse_float lineno "bound") rest)
         | "interval" :: k :: rest ->
           let k =
             match int_of_string_opt k with
             | Some k -> k
             | None -> fail lineno "bad interval index"
           in
           let loads =
             List.map
               (fun pair ->
                 match String.split_on_char ':' pair with
                 | [ id; load ] -> (
                   match int_of_string_opt id with
                   | Some id -> (id, parse_float lineno "load" load)
                   | None -> fail lineno "bad load id")
                 | _ -> fail lineno "bad load pair")
               rest
           in
           intervals := (k, loads) :: !intervals
         | [ "job"; id; r; d; w; v; "lambda"; l; status ] ->
           let id =
             match int_of_string_opt id with
             | Some id -> id
             | None -> fail lineno "bad job id"
           in
           let value =
             if v = "inf" then Float.infinity else parse_float lineno "value" v
           in
           let job =
             Job.make ~id ~release:(parse_float lineno "release" r)
               ~deadline:(parse_float lineno "deadline" d)
               ~workload:(parse_float lineno "workload" w)
               ~value
           in
           let accepted =
             match status with
             | "accepted" -> true
             | "rejected" -> false
             | _ -> fail lineno "bad status"
           in
           jobs := (job, parse_float lineno "lambda" l, accepted) :: !jobs
         | _ -> fail lineno (Fmt.str "unrecognized %S" line));
  let alpha = match !alpha with Some a -> a | None -> failwith "Pd.restore: missing alpha" in
  let machines = match !machines with Some m -> m | None -> failwith "Pd.restore: missing machines" in
  let delta = match !delta with Some d -> d | None -> failwith "Pd.restore: missing delta" in
  let t = create ~delta ~power:(Power.make alpha) ~machines () in
  t.bounds <- !bounds;
  let n_intervals = max 0 (Array.length !bounds - 1) in
  let loads = Array.make n_intervals [] in
  List.iter
    (fun (k, l) ->
      if k < 0 || k >= n_intervals then failwith "Pd.restore: interval index out of range";
      loads.(k) <- l)
    !intervals;
  t.loads <- loads;
  t.last_release <- !last_release;
  List.iter
    (fun (job, lambda, accepted) ->
      (* !jobs is already reversed arrival order, matching the fields *)
      t.seen <- t.seen @ [ job ];
      t.lambda_rev <- t.lambda_rev @ [ (job.id, lambda) ];
      if accepted then t.accepted_rev <- t.accepted_rev @ [ job.id ]
      else t.rejected_rev <- t.rejected_rev @ [ job.id ])
    !jobs;
  t

let certificate t =
  match t.seen with
  | [] -> 0.0
  | seen ->
    (* Instance.make re-ranks ids by (release, id); mirror that order to
       line the multipliers up with the re-ranked jobs. *)
    let sorted = List.stable_sort Job.compare_release seen in
    let inst = Instance.make ~power:t.power ~machines:t.machines sorted in
    let lambda =
      Array.of_list
        (List.map
           (fun (j : Job.t) ->
             match List.assoc_opt j.id t.lambda_rev with
             | Some l -> l
             | None -> 0.0)
           sorted)
    in
    (Dual.evaluate inst (Timeline.of_jobs sorted) ~lambda).value

type result = {
  schedule : Schedule.t;
  cost : Cost.t;
  lambda : float array;
  accepted : int list;
  rejected : int list;
  dual_bound : float;
  guarantee : float;
  decisions : decision list;
  delta : float;
  final_boundaries : float array;
  final_loads : (int * float) list array;
}

let run ?delta (inst : Instance.t) =
  let t = create ?delta ~power:inst.power ~machines:inst.machines () in
  let decisions =
    List.init (Instance.n_jobs inst) (fun i -> arrive t (Instance.job inst i))
  in
  let sched = schedule t in
  let n = Instance.n_jobs inst in
  let lambda = Array.make n 0.0 in
  List.iter (fun (id, l) -> lambda.(id) <- l) (lambdas t);
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  let dual = Dual.evaluate inst tl ~lambda in
  {
    schedule = sched;
    cost = Schedule.cost inst sched;
    lambda;
    accepted = List.rev t.accepted_rev;
    rejected = List.rev t.rejected_rev;
    dual_bound = dual.value;
    guarantee = Power.competitive_bound inst.power;
    decisions;
    delta = t.delta;
    final_boundaries = boundaries t;
    final_loads = interval_loads t;
  }
