open Speedscale_util
open Speedscale_model
open Speedscale_chen
open Speedscale_solver

(* Two boundaries closer than this (absolute + relative, Feq-style) denote
   the same instant: deadlines and releases that differ by less than the
   tolerance must share a boundary, or the proportional split of committed
   loads divides by a near-zero interval length and amplifies rounding
   noise into the schedule.  See DESIGN.md section 5. *)
let boundary_tol = 1e-9
let same_boundary a b = Feq.approx ~atol:boundary_tol ~rtol:boundary_tol a b

type arrival_stats = {
  job_id : int;
  accepted : bool;
  probes : int;  (** [Chen.probe_load_for_speed] evaluations this arrival *)
  intervals : int;  (** atomic intervals in the job's window *)
  breakpoints : int;  (** merged breakpoint count (0 on the reference path) *)
  wall_s : float;  (** wall-clock seconds, 0 unless [create ~clock] *)
}

type stats = {
  arrivals : int;
  probes : int;
  intervals : int;
  breakpoints : int;
}

type t = {
  power : Power.t;
  machines : int;
  delta : float;
  (* Timeline: [bounds.(0 .. nb-1)] is strictly increasing; interval [k]
     is [bounds.(k), bounds.(k+1)).  The arrays are capacity buffers
     ([loads] and [cache] always have the same length as [bounds]) so an
     insert is a blit, not a reallocation. *)
  mutable nb : int;
  mutable bounds : float array;
  mutable loads : (int * float) list array;
  mutable cache : Chen.t option array;
  mutable seen : Job.t list;  (* reversed arrival order *)
  seen_ids : (int, unit) Hashtbl.t;
  outcomes : (int, float * bool) Hashtbl.t;  (* id -> lambda, accepted *)
  mutable lambda_rev : (int * float) list;
  mutable accepted_rev : int list;
  mutable rejected_rev : int list;
  mutable last_release : float;
  (* instrumentation *)
  clock : (unit -> float) option;
  mutable observer : (arrival_stats -> unit) option;
  mutable probes_now : int;
  mutable arrivals : int;
  mutable probes_total : int;
  mutable intervals_total : int;
  mutable breakpoints_total : int;
}

let create ?clock ?delta ~power ~machines () =
  if machines < 1 then invalid_arg "Pd.create: machines < 1";
  let delta = Option.value delta ~default:(Power.delta_star power) in
  if not (Float.is_finite delta) || delta <= 0.0 then
    invalid_arg "Pd.create: delta must be finite > 0";
  {
    power;
    machines;
    delta;
    nb = 0;
    bounds = [||];
    loads = [||];
    cache = [||];
    seen = [];
    seen_ids = Hashtbl.create 64;
    outcomes = Hashtbl.create 64;
    lambda_rev = [];
    accepted_rev = [];
    rejected_rev = [];
    last_release = Float.neg_infinity;
    clock;
    observer = None;
    probes_now = 0;
    arrivals = 0;
    probes_total = 0;
    intervals_total = 0;
    breakpoints_total = 0;
  }

let set_observer t obs = t.observer <- obs

let stats t =
  {
    arrivals = t.arrivals;
    probes = t.probes_total;
    intervals = t.intervals_total;
    breakpoints = t.breakpoints_total;
  }

(* ------------------------------------------------------------------ *)
(* Timeline maintenance                                                 *)
(* ------------------------------------------------------------------ *)

let n_intervals t = if t.nb >= 2 then t.nb - 1 else 0

let ensure_slot t =
  let cap = Array.length t.bounds in
  if t.nb >= cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let nb = Array.make ncap 0.0 in
    Array.blit t.bounds 0 nb 0 t.nb;
    t.bounds <- nb;
    let nl = Array.make ncap [] in
    Array.blit t.loads 0 nl 0 (n_intervals t);
    t.loads <- nl;
    let nc = Array.make ncap None in
    Array.blit t.cache 0 nc 0 (n_intervals t);
    t.cache <- nc
  end

(* First index in [0, nb) with bounds.(i) >= b. *)
let lower_bound t b =
  let lo = ref 0 and hi = ref t.nb in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.bounds.(mid) < b then lo := mid + 1 else hi := mid
  done;
  !lo

(* Insert [b] as a boundary unless an existing boundary lies within the
   dedup tolerance (then [b] snaps to it).  Inside an interval: split it,
   dividing the committed loads proportionally to the sub-lengths (this
   keeps every job's speed unchanged, which is why the reformulated online
   algorithm computes the same schedule as one knowing the partition a
   priori).  Outside the current horizon: append an empty edge interval.
   Amortized O(log nb + nb/insert) via binary search + blit into slack
   capacity.  The tolerance guarantees both sub-lengths of a split exceed
   boundary_tol * scale, so the proportional split never divides by a
   near-zero length. *)
let insert_boundary t b =
  let pos = lower_bound t b in
  let dup =
    (pos < t.nb && same_boundary t.bounds.(pos) b)
    || (pos > 0 && same_boundary t.bounds.(pos - 1) b)
  in
  if not dup then begin
    ensure_slot t;
    let n = t.nb and ni = n_intervals t in
    Array.blit t.bounds pos t.bounds (pos + 1) (n - pos);
    t.bounds.(pos) <- b;
    t.nb <- n + 1;
    if n >= 2 then begin
      if pos = 0 then begin
        (* new empty edge interval [b, old first) *)
        Array.blit t.loads 0 t.loads 1 ni;
        Array.blit t.cache 0 t.cache 1 ni;
        t.loads.(0) <- [];
        t.cache.(0) <- None
      end
      else if pos = n then begin
        (* new empty edge interval [old last, b) *)
        t.loads.(ni) <- [];
        t.cache.(ni) <- None
      end
      else begin
        (* split interval pos-1 = [lo, hi) at b *)
        let lo = t.bounds.(pos - 1) and hi = t.bounds.(pos + 1) in
        let frac_left = (b -. lo) /. (hi -. lo) in
        let old = t.loads.(pos - 1) in
        let old_cache = t.cache.(pos - 1) in
        Array.blit t.loads (pos - 1) t.loads pos (ni - (pos - 1));
        Array.blit t.cache (pos - 1) t.cache pos (ni - (pos - 1));
        t.loads.(pos - 1) <-
          List.map (fun (id, w) -> (id, w *. frac_left)) old;
        t.loads.(pos) <-
          List.map (fun (id, w) -> (id, w *. (1.0 -. frac_left))) old;
        let half len factor =
          match old_cache with
          | None -> None
          | Some c -> Some (Chen.rescale c ~length:len ~factor)
        in
        t.cache.(pos - 1) <- half (b -. lo) frac_left;
        t.cache.(pos) <- half (hi -. b) (1.0 -. frac_left)
      end
    end
    else if t.nb = 2 then begin
      (* transition from "single boundary" to "first real interval" *)
      t.loads.(0) <- [];
      t.cache.(0) <- None
    end
  end

(* Index of the boundary representing [x]: exact, or the neighbour [x]
   snapped to during [insert_boundary]. *)
let boundary_index t x =
  let pos = lower_bound t x in
  if pos < t.nb && same_boundary t.bounds.(pos) x then pos
  else if pos > 0 && same_boundary t.bounds.(pos - 1) x then pos - 1
  else invalid_arg (Fmt.str "Pd.boundary_index: %g is not a boundary" x)

(* The committed-load Chen problem of interval [k], built lazily and
   invalidated whenever the interval is split or receives new load. *)
let chen_of t k =
  match t.cache.(k) with
  | Some c -> c
  | None ->
    let c =
      Chen.build ~machines:t.machines
        ~length:(t.bounds.(k + 1) -. t.bounds.(k))
        t.loads.(k)
    in
    t.cache.(k) <- Some c;
    c

(* ------------------------------------------------------------------ *)
(* Arrival processing                                                   *)
(* ------------------------------------------------------------------ *)

type decision = {
  job : Job.t;
  accepted : bool;
  lambda : float;
  planned_speed : float;
  assignment : (int * float) list;
}

(* The speed corresponding to price level mu for a job of workload w:
   mu = delta * w * P'(s). *)
let speed_of_price t ~workload mu =
  Power.inv_deriv t.power (mu /. (t.delta *. workload))

let price_of_speed t ~workload s = t.delta *. workload *. Power.deriv t.power s

(* Work (in load units) job would commit across [probs] at speed [s].
   Summation order is interval order (the Ksum accumulation both arrival
   paths share float-for-float). *)
let assigned_at_speed t ~w probs s =
  t.probes_now <- t.probes_now + Array.length probs;
  let acc = Ksum.create () in
  Array.iter
    (fun (_, p) -> Ksum.add acc (Float.min (Chen.probe_load_for_speed p s) w))
    probs;
  Ksum.total acc

let commit t ~w probs lambda =
  let s = speed_of_price t ~workload:w lambda in
  t.probes_now <- t.probes_now + Array.length probs;
  List.filter_map
    (fun (k, p) ->
      let z = Float.min (Chen.probe_load_for_speed p s) w in
      if z > 0.0 then Some (k, z) else None)
    (Array.to_list probs)

(* Admission checks, timeline refinement and window extraction shared by
   both arrival paths. *)
let arrive_common t (job : Job.t) =
  if Hashtbl.mem t.seen_ids job.id then
    invalid_arg "Pd.arrive: duplicate job id";
  if job.release < t.last_release -. 1e-12 then
    invalid_arg "Pd.arrive: jobs must arrive in release order";
  t.last_release <- Float.max t.last_release job.release;
  Hashtbl.add t.seen_ids job.id ();
  t.seen <- job :: t.seen;
  insert_boundary t job.release;
  insert_boundary t job.deadline;
  let k_lo = boundary_index t job.release
  and k_hi = boundary_index t job.deadline in
  Array.init (max 0 (k_hi - k_lo)) (fun i -> (k_lo + i, chen_of t (k_lo + i)))

let finalize t (job : Job.t) ~accepted ~lambda ~assignment =
  let w = job.workload in
  let planned_speed = speed_of_price t ~workload:w lambda in
  t.lambda_rev <- (job.id, lambda) :: t.lambda_rev;
  Hashtbl.replace t.outcomes job.id (lambda, accepted);
  if accepted then begin
    t.accepted_rev <- job.id :: t.accepted_rev;
    (* rescale so the job is finished exactly despite solver dust; a
       near-zero total cannot be rescued by rescaling — fail loudly
       instead of recording an acceptance backed by a garbage schedule *)
    let total = Ksum.sum_by snd assignment in
    if not (total > 1e-9 *. w) then
      failwith
        (Fmt.str
           "Pd.arrive: job %d accepted but only %g of workload %g was \
            assigned"
           job.id total w);
    let scale = w /. total in
    let assignment = List.map (fun (k, z) -> (k, z *. scale)) assignment in
    List.iter
      (fun (k, z) ->
        t.loads.(k) <- (job.id, z) :: t.loads.(k);
        t.cache.(k) <-
          (match t.cache.(k) with
          | Some c -> Some (Chen.add_load c (job.id, z))
          | None -> None))
      assignment;
    { job; accepted = true; lambda; planned_speed; assignment }
  end
  else begin
    t.rejected_rev <- job.id :: t.rejected_rev;
    { job; accepted = false; lambda; planned_speed; assignment = [] }
  end

let emit_stats t (d : decision) ~intervals ~breakpoints ~t0 =
  t.arrivals <- t.arrivals + 1;
  t.probes_total <- t.probes_total + t.probes_now;
  t.intervals_total <- t.intervals_total + intervals;
  t.breakpoints_total <- t.breakpoints_total + breakpoints;
  match t.observer with
  | None -> ()
  | Some obs ->
    let wall_s = match t.clock with Some c -> c () -. t0 | None -> 0.0 in
    obs
      {
        job_id = d.job.id;
        accepted = d.accepted;
        probes = t.probes_now;
        intervals;
        breakpoints;
        wall_s;
      }

let now t = match t.clock with Some c -> c () | None -> 0.0

(* A job whose window collapsed onto existing boundaries (span below the
   dedup tolerance) can place no work at all. *)
let degenerate_window t (job : Job.t) =
  if Float.is_finite job.value then
    finalize t job ~accepted:false ~lambda:job.value ~assignment:[]
  else
    failwith
      (Fmt.str
         "Pd.arrive: job %d must finish but its window [%g, %g) is \
          degenerate (below the boundary tolerance)"
         job.id job.release job.deadline)

(* ------------------------------------------------------------------ *)
(* Optimized price solve: breakpoint walk                               *)
(* ------------------------------------------------------------------ *)

let merge_sorted a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) 0.0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < la && !j < lb do
      let x = a.(!i) and y = b.(!j) in
      if x <= y then begin
        out.(!k) <- x;
        incr i
      end
      else begin
        out.(!k) <- y;
        incr j
      end;
      incr k
    done;
    if !i < la then Array.blit a !i out !k (la - !i)
    else Array.blit b !j out !k (lb - !j);
    out
  end

(* Merged, sorted, duplicate-free breakpoint speeds of the window's capped
   probe responses.  The total assigned work is affine between adjacent
   entries, zero at the first entry.  Per-interval lists are already
   sorted, so balanced two-way merges do the whole job unboxed —
   [Array.sort]'s polymorphic comparator boxes every float it touches,
   which is measurable at one merge per arrival. *)
let merged_breakpoints ~w probs =
  let parts =
    Array.map (fun (_, p) -> Chen.probe_breakpoints p ~cap:w) probs
  in
  let rec reduce lo hi =
    if hi - lo = 1 then parts.(lo)
    else
      let mid = (lo + hi) / 2 in
      merge_sorted (reduce lo mid) (reduce mid hi)
  in
  let all = reduce 0 (Array.length parts) in
  let n = Array.length all in
  let out = ref 0 and prev = ref Float.nan in
  for i = 0 to n - 1 do
    let x = all.(i) in
    if !out = 0 || not (Float.equal !prev x) then begin
      all.(!out) <- x;
      incr out;
      prev := x
    end
  done;
  Array.sub all 0 !out

(* Find the speed s_star with assigned s_star = w by walking the merged
   breakpoint list: binary-search the first breakpoint whose assignment
   reaches w, then interpolate inside the bracketing segment (assignment
   is affine there, so the interpolation is exact up to rounding; a
   bracketed bisection inside the segment is kept as a fallback).

   [bound_s]: [Some s_v] caps the search at the job's value speed —
   [None] is returned when the assignment never reaches [w] below it,
   which the caller interprets as "the job finishes exactly as the price
   reaches its value".  With [bound_s = None] a sentinel past the global
   saturation breakpoint guarantees the crossing exists. *)
let solve_speed t ~w probs ~bound_s =
  let f s = assigned_at_speed t ~w probs s in
  let nat = merged_breakpoints ~w probs in
  let bps =
    match bound_s with
    | Some sv ->
      let below = Array.of_list (List.filter (fun s -> s < sv)
                                   (Array.to_list nat)) in
      Array.append below [| sv |]
    | None ->
      let last = nat.(Array.length nat - 1) in
      Array.append nat [| last *. (1.0 +. 1e-6) |]
  in
  let n = Array.length bps in
  (* Cancellation in the probe's closed form can make f at the exact
     saturation breakpoint evaluate a few ulp short of w; a strict >= w
     search would then skip past it onto the plateau, where interpolation
     is meaningless.  Searching against w minus a whisker keeps the
     bracketing segment at (or before) the true crossing. *)
  let w_eff = w -. (1e-12 *. (1.0 +. w)) in
  if f bps.(n - 1) < w_eff then (None, n)
  else begin
    (* smallest j with f bps.(j) >= w_eff; f is 0 at the first natural
       breakpoint so the crossing segment has j >= 1 whenever one exists *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if f bps.(mid) >= w_eff then hi := mid else lo := mid + 1
    done;
    let j = !hi in
    let sa, fa = if j = 0 then (0.0, 0.0) else (bps.(j - 1), f bps.(j - 1)) in
    let sb = bps.(j) in
    let fb = f sb in
    let s_star =
      if fb < w || fb -. fa <= 0.0 then
        (* the segment tops out within tolerance of w: its right endpoint
           is the crossing (either the saturation breakpoint under FP
           jitter, or the value-speed cap of a job finishing exactly as
           the price reaches its value) *)
        sb
      else begin
        let s =
          Feq.clamp ~lo:sa ~hi:sb
            (sa +. ((w -. fa) *. (sb -. sa) /. (fb -. fa)))
        in
        if Float.abs (f s -. w) <= 1e-9 *. (1.0 +. w) then s
        else Bisect.monotone_inverse ~f ~target:w ~lo:sa ~hi:sb ()
      end
    in
    (Some s_star, n)
  end

let arrive t (job : Job.t) =
  let t0 = now t in
  t.probes_now <- 0;
  let probs = arrive_common t job in
  let w = job.workload in
  let intervals = Array.length probs in
  let finite = Float.is_finite job.value in
  let d, breakpoints =
    if intervals = 0 then (degenerate_window t job, 0)
    else begin
      let s_v = if finite then speed_of_price t ~workload:w job.value else 0.0 in
      let at_value = if finite then assigned_at_speed t ~w probs s_v else 0.0 in
      if finite && at_value < w *. (1.0 -. 1e-9) then
        (finalize t job ~accepted:false ~lambda:job.value ~assignment:[], 0)
      else begin
        let bound_s = if finite then Some s_v else None in
        let s_star, breakpoints = solve_speed t ~w probs ~bound_s in
        let lambda =
          match s_star with
          | Some s -> price_of_speed t ~workload:w s
          | None ->
            (* the assignment never reaches w strictly below the value
               speed: the job finishes exactly as the price hits v_j *)
            if finite then job.value
            else
              failwith
                (Fmt.str
                   "Pd.arrive: job %d: unbounded price search failed to \
                    place the workload"
                   job.id)
        in
        let assignment = commit t ~w probs lambda in
        (finalize t job ~accepted:true ~lambda ~assignment, breakpoints)
      end
    end
  in
  emit_stats t d ~intervals ~breakpoints ~t0;
  d

(* ------------------------------------------------------------------ *)
(* Reference arrival path (test oracle)                                 *)
(* ------------------------------------------------------------------ *)

(* The pre-optimization solver, kept verbatim in structure: one outer
   bisection on the price with a full window sweep per probe.  Shares the
   timeline, probe and bookkeeping code with {!arrive}, so any divergence
   between the two paths isolates the breakpoint walk. *)
let arrive_reference t (job : Job.t) =
  let t0 = now t in
  t.probes_now <- 0;
  let probs = arrive_common t job in
  let w = job.workload in
  let intervals = Array.length probs in
  let d =
    if intervals = 0 then degenerate_window t job
    else begin
      let assigned mu = assigned_at_speed t ~w probs (speed_of_price t ~workload:w mu) in
      let at_value =
        if Float.is_finite job.value then assigned job.value else 0.0
      in
      if Float.is_finite job.value && at_value < w *. (1.0 -. 1e-9) then
        finalize t job ~accepted:false ~lambda:job.value ~assignment:[]
      else begin
        let hi =
          if Float.is_finite job.value then job.value
          else begin
            (* grow a bracket: the price at which even a single interval
               could absorb the whole job is a safe upper bound *)
            let init =
              t.delta *. w
              *. Power.deriv t.power
                   ((w +. 1.0) /. Float.max 1e-9 (Job.span job))
            in
            Bisect.grow_bracket ~f:assigned ~target:w ~lo:0.0
              ~init:(Float.max init 1e-9) ()
          end
        in
        let mu_star =
          (* [monotone_inverse] raises when f hi < target; a finite-value
             job with at_value in [w(1-1e-9), w) legitimately saturates at
             the value price — that clamp is a modelling decision made
             here, not inside Bisect (DESIGN.md section 5) *)
          if assigned hi < w then hi
          else Bisect.monotone_inverse ~f:assigned ~target:w ~lo:0.0 ~hi ()
        in
        finalize t job ~accepted:true ~lambda:mu_star
          ~assignment:(commit t ~w probs mu_star)
      end
    end
  in
  emit_stats t d ~intervals ~breakpoints:0 ~t0;
  d

(* ------------------------------------------------------------------ *)
(* Results                                                              *)
(* ------------------------------------------------------------------ *)

let boundaries t = Array.sub t.bounds 0 t.nb
let interval_loads t = Array.sub t.loads 0 (n_intervals t)

let schedule t =
  let slices = ref [] in
  for k = 0 to n_intervals t - 1 do
    if t.loads.(k) <> [] then begin
      let lo = t.bounds.(k) and hi = t.bounds.(k + 1) in
      slices := Chen.slices (chen_of t k) ~t0:lo ~t1:hi @ !slices
    end
  done;
  Schedule.make ~machines:t.machines ~rejected:(List.rev t.rejected_rev)
    !slices

let lambdas t = List.rev t.lambda_rev

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot t =
  let b = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (Buffer.add_string b) fmt in
  pf "pd-snapshot v1\n";
  pf "alpha %.17g\n" (Power.alpha t.power);
  pf "machines %d\n" t.machines;
  pf "delta %.17g\n" t.delta;
  pf "last_release %.17g\n" t.last_release;
  pf "bounds";
  for i = 0 to t.nb - 1 do
    pf " %.17g" t.bounds.(i)
  done;
  pf "\n";
  for k = 0 to n_intervals t - 1 do
    pf "interval %d" k;
    List.iter (fun (id, load) -> pf " %d:%.17g" id load) t.loads.(k);
    pf "\n"
  done;
  (* jobs in arrival order with their outcomes *)
  List.iter
    (fun (j : Job.t) ->
      let lambda, accepted = Hashtbl.find t.outcomes j.id in
      let status = if accepted then "accepted" else "rejected" in
      pf "job %d %.17g %.17g %.17g %s lambda %.17g %s\n" j.id j.release
        j.deadline j.workload
        (if Float.equal j.value Float.infinity then "inf"
         else Fmt.str "%.17g" j.value)
        lambda status)
    (List.rev t.seen);
  Buffer.contents b

let restore text =
  let fail lineno msg = failwith (Fmt.str "Pd.restore: line %d: %s" lineno msg) in
  let parse_float lineno what s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail lineno (Fmt.str "bad %s %S" what s)
  in
  let alpha = ref None
  and machines = ref None
  and delta = ref None
  and last_release = ref Float.neg_infinity
  and bounds = ref [||]
  and intervals = ref []
  and jobs = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let lineno = i + 1 in
         match String.split_on_char ' ' (String.trim line)
               |> List.filter (( <> ) "")
         with
         | [] -> ()
         | [ "pd-snapshot"; "v1" ] -> ()
         | [ "alpha"; v ] -> alpha := Some (parse_float lineno "alpha" v)
         | [ "machines"; v ] -> (
           match int_of_string_opt v with
           | Some m -> machines := Some m
           | None -> fail lineno "bad machines")
         | [ "delta"; v ] -> delta := Some (parse_float lineno "delta" v)
         | [ "last_release"; v ] ->
           last_release := parse_float lineno "last_release" v
         | "bounds" :: rest ->
           bounds :=
             Array.of_list (List.map (parse_float lineno "bound") rest)
         | "interval" :: k :: rest ->
           let k =
             match int_of_string_opt k with
             | Some k -> k
             | None -> fail lineno "bad interval index"
           in
           let loads =
             List.map
               (fun pair ->
                 match String.split_on_char ':' pair with
                 | [ id; load ] -> (
                   match int_of_string_opt id with
                   | Some id -> (id, parse_float lineno "load" load)
                   | None -> fail lineno "bad load id")
                 | _ -> fail lineno "bad load pair")
               rest
           in
           intervals := (k, loads) :: !intervals
         | [ "job"; id; r; d; w; v; "lambda"; l; status ] ->
           let id =
             match int_of_string_opt id with
             | Some id -> id
             | None -> fail lineno "bad job id"
           in
           let value =
             if v = "inf" then Float.infinity else parse_float lineno "value" v
           in
           let job =
             Job.make ~id ~release:(parse_float lineno "release" r)
               ~deadline:(parse_float lineno "deadline" d)
               ~workload:(parse_float lineno "workload" w)
               ~value
           in
           let accepted =
             match status with
             | "accepted" -> true
             | "rejected" -> false
             | _ -> fail lineno "bad status"
           in
           jobs := (job, parse_float lineno "lambda" l, accepted) :: !jobs
         | _ -> fail lineno (Fmt.str "unrecognized %S" line));
  let alpha = match !alpha with Some a -> a | None -> failwith "Pd.restore: missing alpha" in
  let machines = match !machines with Some m -> m | None -> failwith "Pd.restore: missing machines" in
  let delta = match !delta with Some d -> d | None -> failwith "Pd.restore: missing delta" in
  let t = create ~delta ~power:(Power.make alpha) ~machines () in
  let bounds = !bounds in
  let cap = Array.length bounds in
  t.bounds <- bounds;
  t.nb <- cap;
  t.loads <- (if cap = 0 then [||] else Array.make cap []);
  t.cache <- (if cap = 0 then [||] else Array.make cap None);
  let n_intervals = max 0 (cap - 1) in
  List.iter
    (fun (k, l) ->
      if k < 0 || k >= n_intervals then failwith "Pd.restore: interval index out of range";
      t.loads.(k) <- l)
    !intervals;
  t.last_release <- !last_release;
  List.iter
    (fun ((job : Job.t), lambda, accepted) ->
      (* !jobs is already reversed arrival order, matching the fields *)
      t.seen <- t.seen @ [ job ];
      Hashtbl.replace t.seen_ids job.id ();
      Hashtbl.replace t.outcomes job.id (lambda, accepted);
      t.lambda_rev <- t.lambda_rev @ [ (job.id, lambda) ];
      if accepted then t.accepted_rev <- t.accepted_rev @ [ job.id ]
      else t.rejected_rev <- t.rejected_rev @ [ job.id ])
    !jobs;
  t

let certificate t =
  match t.seen with
  | [] -> 0.0
  | seen ->
    (* Instance.make re-ranks ids by (release, id); mirror that order to
       line the multipliers up with the re-ranked jobs. *)
    let sorted = List.stable_sort Job.compare_release seen in
    let inst = Instance.make ~power:t.power ~machines:t.machines sorted in
    let lambda =
      Array.of_list
        (List.map
           (fun (j : Job.t) ->
             match Hashtbl.find_opt t.outcomes j.id with
             | Some (l, _) -> l
             | None -> 0.0)
           sorted)
    in
    (Dual.evaluate inst (Timeline.of_jobs sorted) ~lambda).value

type result = {
  schedule : Schedule.t;
  cost : Cost.t;
  lambda : float array;
  accepted : int list;
  rejected : int list;
  dual_bound : float;
  guarantee : float;
  decisions : decision list;
  delta : float;
  final_boundaries : float array;
  final_loads : (int * float) list array;
}

let run ?delta (inst : Instance.t) =
  let t = create ?delta ~power:inst.power ~machines:inst.machines () in
  let decisions =
    List.init (Instance.n_jobs inst) (fun i -> arrive t (Instance.job inst i))
  in
  let sched = schedule t in
  let n = Instance.n_jobs inst in
  let lambda = Array.make n 0.0 in
  List.iter (fun (id, l) -> lambda.(id) <- l) (lambdas t);
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  let dual = Dual.evaluate inst tl ~lambda in
  {
    schedule = sched;
    cost = Schedule.cost inst sched;
    lambda;
    accepted = List.rev t.accepted_rev;
    rejected = List.rev t.rejected_rev;
    dual_bound = dual.value;
    guarantee = Power.competitive_bound inst.power;
    decisions;
    delta = t.delta;
    final_boundaries = boundaries t;
    final_loads = interval_loads t;
  }
