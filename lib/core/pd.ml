open Speedscale_model
open Speedscale_solver

(* PD is the framework's reference instantiation: the paper's
   energy+lost-value objective, the atomic-interval/Chen water-filling
   relaxation, and the Lagrangian dual certificate.  Everything below is
   a thin delegation layer plus the native snapshot text format; the
   algorithm itself lives in Pd_core (where both the fast breakpoint-walk
   solver and the bisection reference oracle are shared with any other
   instantiation of the interval relaxation). *)

module O = Pd_core.Energy_value
module R = Pd_core.Interval (O)
module C = Pd_core.Lagrangian (O)
module Core = Pd_core.Make (O) (R) (C)

type t = Core.t

type arrival_stats = Pd_core.arrival_stats = {
  job_id : int;
  accepted : bool;
  probes : int;
  intervals : int;
  breakpoints : int;
  wall_s : float;
}

type stats = Pd_core.stats = {
  arrivals : int;
  probes : int;
  intervals : int;
  breakpoints : int;
}

type mem_stats = Pd_core.mem_stats = {
  live_intervals : int;
  max_live_intervals : int;
  table_entries : int;
  max_table_entries : int;
  flushed_intervals : int;
  evicted_jobs : int;
  finished_slices : int;
}

type decision = Pd_core.decision = {
  job : Job.t;
  accepted : bool;
  lambda : float;
  planned_speed : float;
  assignment : (int * float) list;
}

type history_error = Pd_core.history_error = {
  operation : string;
  flushed_intervals : int;
  evicted_jobs : int;
}

exception Bounded_memory = Pd_core.Bounded_memory

let create ?clock ?delta ?(gc = false) ~power ~machines () =
  Core.create ?clock ~gc ~err:"Pd"
    (O.make ?delta ~err:"Pd.create" ~power ~machines ())

let set_observer = Core.set_observer
let stats = Core.stats
let mem = Core.mem
let arrive = Core.arrive
let arrive_reference = Core.arrive_reference
let boundaries t = R.boundaries (Core.relax t)
let interval_loads t = R.interval_loads (Core.relax t)
let schedule = Core.schedule
let lambdas = Core.lambdas
let delta t = O.delta (Core.obj t)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot_result t =
  match Core.history_guard t "snapshot" with
  | Error e -> Error e
  | Ok () ->
    let b = Buffer.create 1024 in
    let pf fmt = Fmt.kstr (Buffer.add_string b) fmt in
    let obj = Core.obj t in
    pf "pd-snapshot v1\n";
    pf "alpha %.17g\n" (Power.alpha (O.power obj));
    pf "machines %d\n" (O.machines obj);
    pf "delta %.17g\n" (O.delta obj);
    pf "last_release %.17g\n" (Core.last_release t);
    pf "bounds";
    Array.iter (fun x -> pf " %.17g" x) (boundaries t);
    pf "\n";
    Array.iteri
      (fun k loads ->
        pf "interval %d" k;
        List.iter (fun (id, load) -> pf " %d:%.17g" id load) loads;
        pf "\n")
      (interval_loads t);
    (* jobs in arrival order with their outcomes *)
    List.iter
      (fun (j : Job.t) ->
        let lambda, accepted =
          match Core.outcome t j.id with
          | Some o -> o
          | None -> (0.0, false)
        in
        let status = if accepted then "accepted" else "rejected" in
        pf "job %d %.17g %.17g %.17g %s lambda %.17g %s\n" j.id j.release
          j.deadline j.workload
          (if Float.equal j.value Float.infinity then "inf"
           else Fmt.str "%.17g" j.value)
          lambda status)
      (Core.seen_jobs t);
    Ok (Buffer.contents b)

let snapshot t =
  match snapshot_result t with
  | Ok s -> s
  | Error e -> raise (Bounded_memory e)

let restore text =
  let fail lineno msg =
    failwith (Fmt.str "Pd.restore: line %d: %s" lineno msg)
  in
  let parse_float lineno what s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail lineno (Fmt.str "bad %s %S" what s)
  in
  let alpha = ref None
  and machines = ref None
  and delta = ref None
  and last_release = ref Float.neg_infinity
  and bounds = ref [||]
  and intervals = ref []
  and jobs = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let lineno = i + 1 in
         match
           String.split_on_char ' ' (String.trim line)
           |> List.filter (( <> ) "")
         with
         | [] -> ()
         | [ "pd-snapshot"; "v1" ] -> ()
         | [ "alpha"; v ] -> alpha := Some (parse_float lineno "alpha" v)
         | [ "machines"; v ] -> (
           match int_of_string_opt v with
           | Some m -> machines := Some m
           | None -> fail lineno "bad machines")
         | [ "delta"; v ] -> delta := Some (parse_float lineno "delta" v)
         | [ "last_release"; v ] ->
           last_release := parse_float lineno "last_release" v
         | "bounds" :: rest ->
           bounds :=
             Array.of_list (List.map (parse_float lineno "bound") rest)
         | "interval" :: k :: rest ->
           let k =
             match int_of_string_opt k with
             | Some k -> k
             | None -> fail lineno "bad interval index"
           in
           let loads =
             List.map
               (fun pair ->
                 match String.split_on_char ':' pair with
                 | [ id; load ] -> (
                   match int_of_string_opt id with
                   | Some id -> (id, parse_float lineno "load" load)
                   | None -> fail lineno "bad load id")
                 | _ -> fail lineno "bad load pair")
               rest
           in
           intervals := (k, loads) :: !intervals
         | [ "job"; id; r; d; w; v; "lambda"; l; status ] ->
           let id =
             match int_of_string_opt id with
             | Some id -> id
             | None -> fail lineno "bad job id"
           in
           let value =
             if v = "inf" then Float.infinity
             else parse_float lineno "value" v
           in
           let job =
             Job.make ~id ~release:(parse_float lineno "release" r)
               ~deadline:(parse_float lineno "deadline" d)
               ~workload:(parse_float lineno "workload" w)
               ~value
           in
           let accepted =
             match status with
             | "accepted" -> true
             | "rejected" -> false
             | _ -> fail lineno "bad status"
           in
           jobs := (job, parse_float lineno "lambda" l, accepted) :: !jobs
         | _ -> fail lineno (Fmt.str "unrecognized %S" line));
  let alpha =
    match !alpha with Some a -> a | None -> failwith "Pd.restore: missing alpha"
  in
  let machines =
    match !machines with
    | Some m -> m
    | None -> failwith "Pd.restore: missing machines"
  in
  let delta =
    match !delta with Some d -> d | None -> failwith "Pd.restore: missing delta"
  in
  let t = create ~delta ~power:(Power.make alpha) ~machines () in
  R.load_timeline (Core.relax t) ~bounds:!bounds ~loads:!intervals;
  Core.set_last_release t !last_release;
  List.iter
    (fun ((job : Job.t), lambda, accepted) ->
      Core.record t job ~lambda ~accepted)
    (List.rev !jobs);
  t

let certificate = Core.certificate
let certificate_result = Core.certificate_result

type result = {
  schedule : Schedule.t;
  cost : Cost.t;
  lambda : float array;
  accepted : int list;
  rejected : int list;
  dual_bound : float;
  guarantee : float;
  decisions : decision list;
  delta : float;
  final_boundaries : float array;
  final_loads : (int * float) list array;
}

let run ?delta:d (inst : Instance.t) =
  let t = create ?delta:d ~power:inst.power ~machines:inst.machines () in
  let decisions =
    List.init (Instance.n_jobs inst) (fun i -> arrive t (Instance.job inst i))
  in
  let sched = schedule t in
  let n = Instance.n_jobs inst in
  let lambda = Array.make n 0.0 in
  List.iter (fun (id, l) -> lambda.(id) <- l) (lambdas t);
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  let dual = Dual.evaluate inst tl ~lambda in
  {
    schedule = sched;
    cost = Schedule.cost inst sched;
    lambda;
    accepted = Core.accepted t;
    rejected = Core.rejected t;
    dual_bound = dual.value;
    guarantee = Power.competitive_bound inst.power;
    decisions;
    delta = delta t;
    final_boundaries = boundaries t;
    final_loads = interval_loads t;
  }
