open Speedscale_util
open Speedscale_model
open Speedscale_chen

type category = Finished | Low_yield | High_yield

let category_name = function
  | Finished -> "finished"
  | Low_yield -> "low-yield"
  | High_yield -> "high-yield"

type job_info = {
  id : int;
  category : category;
  lambda : float;
  shat : float;
  stilde : float;
  xhat : float;
  l_hat : float;
  e_lambda : float;
  e_pd : float;
  trace : (int * int) list;
}

type t = {
  jobs : job_info array;
  g_total : float;
  g1 : float;
  g2 : float;
  g3 : float;
  e_pd_total : float;
  cost_pd : float;
  traces_disjoint : bool;
  prop7_ok : bool;
  prop8b_ok : bool;
  lemma9_ok : bool;
  lemma10_ok : bool;
  lemma11_ok : bool;
  theorem3_ok : bool;
}

let rel_ok ~slack lhs rhs = lhs >= rhs -. (slack *. (1.0 +. Float.abs rhs))

let analyze (inst : Instance.t) (r : Pd.result) =
  let n = Instance.n_jobs inst in
  let power = inst.power in
  let alpha = Power.alpha power in
  let delta = r.delta in
  if delta <= 0.0 then invalid_arg "Analysis.analyze: delta must be positive";
  let bounds = r.final_boundaries in
  let n_intervals = Array.length bounds - 1 in
  let finished = Array.make n false in
  List.iter (fun id -> finished.(id) <- true) r.accepted;
  (* hypothetical and planned speeds *)
  let shat =
    Array.init n (fun j ->
        Power.inv_deriv power (r.lambda.(j) /. (Instance.job inst j).workload))
  in
  let stilde =
    Array.map (fun s -> (delta ** (-1.0 /. (alpha -. 1.0))) *. s) shat
  in
  (* per-interval: contributing jobs (Lemma 5c) and PD's processor speeds *)
  let xhat = Array.make n 0.0 in
  let l_hat = Array.make n 0.0 in
  let traces = Array.make n [] in
  let e_pd = Array.make n 0.0 in
  let prop7_ok = ref true in
  let occupied = Hashtbl.create 64 in
  let traces_disjoint = ref true in
  for k = 0 to n_intervals - 1 do
    let lo = bounds.(k) and hi = bounds.(k + 1) in
    let lk = hi -. lo in
    (* available jobs with positive hypothetical speed, ranked by shat *)
    let available = ref [] in
    for j = 0 to n - 1 do
      let job = Instance.job inst j in
      if Job.covers job ~lo ~hi && shat.(j) > 0.0 then
        available := j :: !available
    done;
    let ranked =
      List.sort
        (fun a b ->
          match Float.compare shat.(b) shat.(a) with
          | 0 -> Int.compare a b
          | c -> c)
        !available
    in
    let contributors = List.filteri (fun i _ -> i < inst.machines) ranked in
    (* PD's processor speeds in this interval, fastest first *)
    let chen = Chen.build ~machines:inst.machines ~length:lk r.final_loads.(k) in
    let proc_speeds =
      Array.map (fun load -> load /. lk) (Chen.processor_loads chen)
    in
    (* trace ranks: finished contributors first (by decreasing shat), then
       unfinished contributors *)
    let fin, unfin = List.partition (fun j -> finished.(j)) contributors in
    let assign rank j =
      traces.(j) <- (k, rank) :: traces.(j);
      if Hashtbl.mem occupied (k, rank) then traces_disjoint := false;
      Hashtbl.replace occupied (k, rank) ();
      xhat.(j) <- xhat.(j) +. (lk *. shat.(j) /. (Instance.job inst j).workload);
      l_hat.(j) <- l_hat.(j) +. lk;
      let speed = proc_speeds.(rank) in
      e_pd.(j) <- e_pd.(j) +. Power.energy power ~speed ~duration:lk;
      if finished.(j) && speed < stilde.(j) -. (Feq.tol_loose *. (1.0 +. stilde.(j)))
      then prop7_ok := false
    in
    List.iteri assign fin;
    List.iteri (fun i j -> assign (List.length fin + i) j) unfin
  done;
  (* categories *)
  let low_yield_threshold =
    (alpha -. (alpha ** (1.0 -. alpha))) /. (alpha -. 1.0)
  in
  let category j =
    if finished.(j) then Finished
    else if xhat.(j) <= low_yield_threshold +. Feq.tol_guard then Low_yield
    else High_yield
  in
  let e_lambda = Array.init n (fun j -> r.lambda.(j) *. xhat.(j) /. alpha) in
  let jobs =
    Array.init n (fun j ->
        {
          id = j;
          category = category j;
          lambda = r.lambda.(j);
          shat = shat.(j);
          stilde = stilde.(j);
          xhat = xhat.(j);
          l_hat = l_hat.(j);
          e_lambda = e_lambda.(j);
          e_pd = e_pd.(j);
          trace = List.rev traces.(j);
        })
  in
  (* per-category dual contributions g_i = (1-alpha) sum E_lambda + sum
     lambda *)
  let g_of cat =
    let acc = Ksum.create () in
    Array.iter
      (fun ji ->
        if ji.category = cat then begin
          Ksum.add acc ((1.0 -. alpha) *. ji.e_lambda);
          Ksum.add acc ji.lambda
        end)
      jobs;
    Ksum.total acc
  in
  let g1 = g_of Finished and g2 = g_of Low_yield and g3 = g_of High_yield in
  let e_pd_total = Schedule.energy power r.schedule in
  let cost_pd = Cost.total r.cost in
  (* lemma and proposition checks (small relative slack for float noise) *)
  let slack = Feq.tol_loose in
  let sum_cat cat f =
    Ksum.sum_by f (Array.to_list jobs |> List.filter (fun ji -> ji.category = cat))
  in
  let prop8b_ok =
    Array.for_all
      (fun ji ->
        ji.category <> Finished
        || ji.e_lambda
           <= (delta ** (alpha /. (alpha -. 1.0)) *. ji.e_pd)
              +. (slack *. (1.0 +. ji.e_pd)))
      jobs
  in
  let lemma9_rhs =
    (delta *. e_pd_total)
    +. ((1.0 -. alpha)
       *. (delta ** (alpha /. (alpha -. 1.0)))
       *. sum_cat Finished (fun ji -> ji.e_pd))
  in
  let lemma9_ok = rel_ok ~slack g1 lemma9_rhs in
  let lemma10_rhs =
    (alpha ** -.alpha)
    *. sum_cat Low_yield (fun ji -> (Instance.job inst ji.id).value)
  in
  let lemma10_ok = rel_ok ~slack g2 lemma10_rhs in
  let lemma11_rhs =
    ((1.0 -. alpha) /. (alpha ** alpha) *. sum_cat High_yield (fun ji -> ji.e_pd))
    +. ((alpha ** -.alpha)
       *. sum_cat High_yield (fun ji -> (Instance.job inst ji.id).value))
  in
  let lemma11_ok = rel_ok ~slack g3 lemma11_rhs in
  let g_total = g1 +. g2 +. g3 in
  let theorem3_ok = rel_ok ~slack g_total ((alpha ** -.alpha) *. cost_pd) in
  {
    jobs;
    g_total;
    g1;
    g2;
    g3;
    e_pd_total;
    cost_pd;
    traces_disjoint = !traces_disjoint;
    prop7_ok = !prop7_ok;
    prop8b_ok;
    lemma9_ok;
    lemma10_ok;
    lemma11_ok;
    theorem3_ok;
  }
