(** PD — the paper's online greedy primal-dual algorithm for profitable
    scheduling on [m] speed-scalable processors (Listing 1).

    PD maintains, for every atomic interval [T_k], the workload each
    previously accepted job has committed to [T_k].  When job [j] arrives:

    + the interval partition is refined with [r_j] and [d_j], splitting
      committed loads proportionally (Section 3, "Concerning the Time
      Partitioning");
    + the {e price} of placing work into interval [T_k] is the marginal
      energy cost [λ_jk = δ · ∂P_k/∂x_jk], evaluated with Chen et al.'s
      schedule of the already-committed loads plus [j]'s tentative load;
    + [j]'s load is poured into the cheapest intervals, keeping their
      prices equal (water-filling), until either the whole job is placed —
      job accepted with multiplier [λ_j] = the final common price — or the
      price reaches [v_j] first — job rejected, its tentative load reset,
      and [λ_j = v_j].

    Implementation note: instead of simulating the continuous increase we
    invert it.  A price level [μ] corresponds to the speed
    [s(μ) = P'^{-1}(μ / (δ w_j))]; the load interval [T_k] absorbs at that
    price is [Chen.probe_load_for_speed] — a closed form — so the final
    common price is the water-filling fixed point of a monotone assignment
    function.  {!arrive} resolves it by merging each window interval's
    {!Chen.probe_breakpoints} (the assignment is affine between adjacent
    merged breakpoints) and interpolating inside the bracketing segment —
    O(log breakpoints) window sweeps instead of the ~200 a blind bisection
    needs.  {!arrive_reference} keeps the pre-optimization outer bisection
    as a test oracle; both paths share the timeline, probe and bookkeeping
    code, so any divergence isolates the breakpoint walk.  See
    doc/PERF.md.

    With [δ = α^(1-α)] (the default), PD is [α^α]-competitive (Theorem 3),
    and the certificate [g(λ̃)] returned in {!result} proves the bound {e
    per instance}: [cost <= α^α · g(λ̃) <= α^α · OPT].

    Since the framework refactor, PD is the reference instantiation of
    {!Pd_core}: [Pd_core.Make (Energy_value) (Interval (Energy_value))
    (Lagrangian (Energy_value))], decision-bit-identical to the
    pre-framework code (qcheck-pinned in [test_core.ml]).  The
    non-preemptive engine [Npd] swaps only the relaxation module. *)

open Speedscale_model

type t
(** Mutable online state. *)

val create :
  ?clock:(unit -> float) ->
  ?delta:float ->
  ?gc:bool ->
  power:Power.t ->
  machines:int ->
  unit ->
  t
(** [delta] defaults to [Power.delta_star], the optimal [α^(1-α)].
    [clock] (e.g. [Unix.gettimeofday]) enables per-arrival wall-clock
    measurement in {!arrival_stats}; without it [wall_s] is reported as
    [0].  Raises [Invalid_argument] for [delta <= 0] or [machines < 1].

    [gc] (default [false]) bounds resident memory to the live window:
    before each arrival, every atomic interval lying wholly in the past
    of the current release (by a safety margin of several boundary
    tolerances, DESIGN.md section 5) has its realized slices flushed
    into a finished-schedule accumulator and its committed-load state
    dropped, and the dup-id/outcome table entries of jobs whose
    deadlines are equally past are evicted.  Decisions, multipliers and
    the final {!schedule} are identical to a [~gc:false] state fed the
    same stream; what changes is visibility: {!boundaries},
    {!interval_loads} and {!decision.assignment} indices cover only the
    {e live} intervals, duplicate-id detection only covers jobs whose
    windows are still live, and {!snapshot} / {!certificate} (which need
    the full history) raise [Invalid_argument].  Use {!mem} to observe
    residency. *)

type arrival_stats = {
  job_id : int;
  accepted : bool;
  probes : int;
      (** [Chen.probe_load_for_speed] evaluations spent on this arrival *)
  intervals : int;  (** atomic intervals in the job's window *)
  breakpoints : int;
      (** merged breakpoint count ([0] on the reference path) *)
  wall_s : float;  (** wall-clock seconds ([0] without [create ~clock]) *)
}
(** Per-arrival instrumentation, delivered to the {!set_observer} hook
    after each decision.  All fields except [wall_s] are deterministic
    functions of the instance, so they are safe in observability record
    payloads; [wall_s] belongs in a record's timing slot only. *)

val set_observer : t -> (arrival_stats -> unit) option -> unit
(** Install (or clear) the per-arrival hook.  Called synchronously at the
    end of every {!arrive} / {!arrive_reference}. *)

type stats = {
  arrivals : int;
  probes : int;  (** cumulative probe evaluations *)
  intervals : int;  (** cumulative window sizes *)
  breakpoints : int;  (** cumulative merged breakpoint counts *)
}

val stats : t -> stats
(** Cumulative counters since {!create} (both arrival paths count). *)

type mem_stats = {
  live_intervals : int;  (** atomic intervals currently resident *)
  max_live_intervals : int;  (** high-water mark of [live_intervals] *)
  table_entries : int;  (** dup-id + outcome hash-table entries resident *)
  max_table_entries : int;  (** high-water mark of [table_entries] *)
  flushed_intervals : int;  (** intervals GC has flushed, cumulative *)
  evicted_jobs : int;  (** table entries GC has evicted, cumulative *)
  finished_slices : int;
      (** schedule slices parked in the finished accumulator *)
}

val mem : t -> mem_stats
(** Residency gauges.  With [~gc:false] the flushed/evicted counters stay
    [0] and the live counts grow with the instance; with [~gc:true] the
    live counts are proportional to the live window — the property the
    @bench-gate memory check gates on (doc/BENCHMARKING.md). *)

type decision = {
  job : Job.t;
  accepted : bool;
  lambda : float;  (** the multiplier [λ̃_j] fixed at arrival *)
  planned_speed : float;
      (** [s̃_j]: the common speed of [j]'s assignment just before [λ̃_j]
          was fixed (for rejected jobs, the speed at which the job {e
          would} have run at price [v_j]) *)
  assignment : (int * float) list;
      (** committed loads per interval index of the timeline {e at arrival
          time} (empty for rejected jobs) *)
}

val arrive : t -> Job.t -> decision
(** Process one arrival.  Jobs must arrive in non-decreasing release order
    with distinct ids; raises [Invalid_argument] otherwise.

    Numerical edges (DESIGN.md section 5): a release or deadline within
    the boundary tolerance of an existing boundary snaps to it instead of
    splitting off a near-zero interval.  A job whose whole window
    collapses this way is rejected when its value is finite and raises
    [Failure] when it must finish; an accepted job whose assignment total
    is degenerate (≈ 0) also raises [Failure] rather than recording an
    acceptance backed by a garbage schedule. *)

val arrive_reference : t -> Job.t -> decision
(** The pre-optimization solver (outer bisection on the price with a full
    window sweep per probe), kept as a test oracle.  Interchangeable with
    {!arrive} call-for-call: identical admission checks, timeline updates
    and bookkeeping; accept/reject decisions are identical and multipliers
    agree to solver tolerance.  Quadratic-and-worse in the number of
    intervals — do not use outside tests. *)

val boundaries : t -> float array
(** Current {e live} atomic-interval boundaries (for inspection/tests).
    With [~gc:true], flushed intervals no longer appear. *)

val interval_loads : t -> (int * float) list array
(** Current committed loads per live atomic interval. *)

val schedule : t -> Schedule.t
(** The concrete schedule realized by Chen et al.'s algorithm in every
    atomic interval of the {e final} partition.  With [~gc:true] this is
    the finished accumulator (flushed intervals' slices) followed by the
    live intervals' slices — the same slices, interval for interval, as a
    [~gc:false] state would realize. *)

val lambdas : t -> (int * float) list
(** [(job id, λ̃_j)] in arrival order. *)

type history_error = Pd_core.history_error = {
  operation : string;  (** ["Pd.certificate"] or ["Pd.snapshot"] *)
  flushed_intervals : int;  (** intervals GC had flushed at the call *)
  evicted_jobs : int;  (** table entries GC had evicted at the call *)
}
(** Why a full-history operation is unavailable on a bounded-memory
    ([~gc:true]) state: the flushed prefix is gone.  The counters say how
    much history was dropped, so callers can report precisely instead of
    guessing.  Render with {!Pd_core.pp_history_error}. *)

exception Bounded_memory of history_error
(** The same exception as {!Pd_core.Bounded_memory} (rebound, not
    redeclared).  Raised by {!snapshot} and {!certificate} on a
    [~gc:true] state.
    Prefer the [_result] variants in new code; the exception exists for
    call sites that treat the situation as a programming error. *)

val snapshot : t -> string
(** Serialize the full online state (boundaries, committed loads,
    multipliers, decisions, seen jobs) as plain text.  A scheduler process
    can persist this after each arrival and {!restore} after a restart,
    continuing exactly where it left off.  Raises {!Bounded_memory} on a
    [~gc:true] state (the flushed history is gone); GC'd deployments
    snapshot at the engine layer instead, whose `online-snapshot v1`
    replay format never needs the internal timeline (doc/ENGINE.md). *)

val snapshot_result : t -> (string, history_error) result
(** {!snapshot} with the bounded-memory case as a typed [Error] instead
    of an exception. *)

val restore : string -> t
(** Inverse of {!snapshot}.  Raises [Failure] with a line-numbered message
    on malformed input.  The restored state processes further arrivals
    identically to the original (bit-for-bit: the state is exact). *)

val certificate : t -> float
(** The dual lower bound [g(λ̃)] over the jobs seen {e so far} — a valid
    lower bound on the optimal cost of the prefix instance at any moment
    of the online execution (weak duality needs no future knowledge).
    [0] before the first arrival.  Together with the running cost this
    gives a live, certified bound on PD's regret.  Raises
    {!Bounded_memory} on a [~gc:true] state (needs every multiplier). *)

val certificate_result : t -> (float, history_error) result
(** {!certificate} with the bounded-memory case as a typed [Error]
    instead of an exception. *)

type result = {
  schedule : Schedule.t;
  cost : Cost.t;
  lambda : float array;  (** indexed by job id *)
  accepted : int list;
  rejected : int list;
  dual_bound : float;  (** [g(λ̃)], a certified lower bound on OPT *)
  guarantee : float;  (** [α^α] *)
  decisions : decision list;  (** in arrival order *)
  delta : float;  (** the δ the run used *)
  final_boundaries : float array;
      (** atomic-interval boundaries after all refinements *)
  final_loads : (int * float) list array;
      (** committed loads per final interval — the [x̃] of the analysis *)
}

val run : ?delta:float -> Instance.t -> result
(** Feed all jobs of the instance in release order and assemble the
    result.  [cost <= guarantee * dual_bound] holds up to numerical
    tolerance whenever [delta <= delta_star] (Theorem 3). *)
