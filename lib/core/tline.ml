(* AVL tree over float keys, augmented with subtree sizes for O(log n)
   rank queries.  The balancing scheme is the stdlib Map's (rebuild
   constant 2); the size field rides along every smart-constructor call. *)

type 'a t =
  | Empty
  | Node of { l : 'a t; k : float; v : 'a; r : 'a t; h : int; n : int }

let empty = Empty
let is_empty = function Empty -> true | Node _ -> false
let height = function Empty -> 0 | Node { h; _ } -> h
let cardinal = function Empty -> 0 | Node { n; _ } -> n

let mk l k v r =
  Node
    {
      l;
      k;
      v;
      r;
      h = 1 + Stdlib.max (height l) (height r);
      n = 1 + cardinal l + cardinal r;
    }

(* Precondition (as in stdlib Map): l and r are balanced, and their
   heights differ by at most 3. *)
let balance l k v r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match l with
    (* slint: allow obj-magic -- height l > height r + 2 >= 2 implies l is a Node *)
    | Empty -> assert false
    | Node { l = ll; k = lk; v = lv; r = lr; _ } ->
      if height ll >= height lr then mk ll lk lv (mk lr k v r)
      else (
        match lr with
        (* slint: allow obj-magic -- height lr > height ll >= 0 implies lr is a Node *)
        | Empty -> assert false
        | Node { l = lrl; k = lrk; v = lrv; r = lrr; _ } ->
          mk (mk ll lk lv lrl) lrk lrv (mk lrr k v r))
  else if hr > hl + 2 then
    match r with
    (* slint: allow obj-magic -- height r > height l + 2 >= 2 implies r is a Node *)
    | Empty -> assert false
    | Node { l = rl; k = rk; v = rv; r = rr; _ } ->
      if height rr >= height rl then mk (mk l k v rl) rk rv rr
      else (
        match rl with
        (* slint: allow obj-magic -- height rl > height rr >= 0 implies rl is a Node *)
        | Empty -> assert false
        | Node { l = rll; k = rlk; v = rlv; r = rlr; _ } ->
          mk (mk l k v rll) rlk rlv (mk rlr rk rv rr))
  else mk l k v r

let rec add k v = function
  | Empty ->
    if Float.is_nan k then invalid_arg "Tline.add: NaN key";
    mk Empty k v Empty
  | Node { l; k = k'; v = v'; r; _ } ->
    if Float.is_nan k then invalid_arg "Tline.add: NaN key";
    if Float.equal k k' then mk l k v r
    else if k < k' then balance (add k v l) k' v' r
    else balance l k' v' (add k v r)

let rec min_binding_opt = function
  | Empty -> None
  | Node { l = Empty; k; v; _ } -> Some (k, v)
  | Node { l; _ } -> min_binding_opt l

let rec max_binding_opt = function
  | Empty -> None
  | Node { r = Empty; k; v; _ } -> Some (k, v)
  | Node { r; _ } -> max_binding_opt r

let rec remove_min = function
  (* slint: allow obj-magic -- only called on non-empty trees (merge) *)
  | Empty -> assert false
  | Node { l = Empty; r; _ } -> r
  | Node { l; k; v; r; _ } -> balance (remove_min l) k v r

(* Join two trees whose every key in [l] is below every key in [r]. *)
let merge l r =
  match (l, r) with
  | Empty, t | t, Empty -> t
  | _, _ ->
    let k, v = Option.get (min_binding_opt r) in
    balance l k v (remove_min r)

let rec remove k = function
  | Empty -> Empty
  | Node { l; k = k'; v; r; _ } as t ->
    if Float.equal k k' then merge l r
    else if k < k' then
      let l' = remove k l in
      if l' == l then t else balance l' k' v r
    else
      let r' = remove k r in
      if r' == r then t else balance l k' v r'

let rec find_opt k = function
  | Empty -> None
  | Node { l; k = k'; v; r; _ } ->
    if Float.equal k k' then Some v
    else if k < k' then find_opt k l
    else find_opt k r

let rec rank k = function
  | Empty -> 0
  | Node { l; k = k'; r; _ } ->
    if k <= k' then rank k l else cardinal l + 1 + rank k r

let rec find_last_leq x = function
  | Empty -> None
  | Node { l; k; v; r; _ } ->
    if k <= x then
      match find_last_leq x r with Some _ as b -> b | None -> Some (k, v)
    else find_last_leq x l

let rec find_first_geq x = function
  | Empty -> None
  | Node { l; k; v; r; _ } ->
    if k >= x then
      match find_first_geq x l with Some _ as b -> b | None -> Some (k, v)
    else find_first_geq x r

let bindings_range ~lo ~hi t =
  let rec go t acc =
    match t with
    | Empty -> acc
    | Node { l; k; v; r; _ } ->
      let acc = if k < hi then go r acc else acc in
      let acc = if lo <= k && k < hi then (k, v) :: acc else acc in
      if k >= lo then go l acc else acc
  in
  go t []

let rec iter f = function
  | Empty -> ()
  | Node { l; k; v; r; _ } ->
    iter f l;
    f k v;
    iter f r

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Node { l; k; v; r; _ } -> fold f r (f k v (fold f l acc))

let bindings t = fold (fun k v acc -> (k, v) :: acc) t [] |> List.rev
