(** The machinery of the paper's Section 4, made executable.

    Theorem 3's proof is built from a chain of structural objects: the
    {e optimal infeasible solution} [(x̂, ŷ)] attaining [g(λ̃)]
    (Lemmas 4–6), the hypothetical speeds [ŝ_j] and planned speeds
    [s̃_j = δ^(-1/(α-1)) ŝ_j], the per-job {e trace} [Tr(j)] mapping each
    job to (interval, processor-rank) pairs of PD's final schedule, the
    three job categories (finished / unfinished low-yield / unfinished
    high-yield), and the per-category bounds of Lemmas 9–11 that assemble
    into [g(λ̃) ≥ α^(-α)·cost(PD)].

    This module constructs all of these for an actual PD run and checks
    every inequality numerically.  It exists for three reasons: (1) it is
    the deepest possible correctness test of the implementation — each
    lemma holds only if the water-filling, the multipliers and the
    schedule all interlock exactly as the proof requires; (2) it powers
    the "anatomy of the proof" benchmark (E13); (3) it documents the
    analysis in runnable form. *)

open Speedscale_model

type category =
  | Finished  (** [J₁]: jobs PD finished ([ỹ_j = 1]) *)
  | Low_yield
      (** [J₂]: rejected, with [x̂_j ≤ (α−α^(1−α))/(α−1)] — their value
          must be small, bounded via Lemma 10 *)
  | High_yield
      (** [J₃]: rejected but scheduled substantially by the optimal
          infeasible solution — the hard case, Lemma 11 *)

type job_info = {
  id : int;
  category : category;
  lambda : float;
  shat : float;  (** [ŝ_j = (λ_j/(α w_j))^(1/(α−1))] *)
  stilde : float;  (** [s̃_j = δ^(−1/(α−1)) · ŝ_j] *)
  xhat : float;  (** [x̂_j], total fraction in the optimal infeasible solution *)
  l_hat : float;  (** [l(j)], total time the infeasible solution runs [j] *)
  e_lambda : float;  (** [E_λ(j) = λ_j x̂_j / α] (Prop. 8a) *)
  e_pd : float;  (** PD's energy during [j]'s trace *)
  trace : (int * int) list;  (** (interval index, processor rank) pairs *)
}

type t = {
  jobs : job_info array;
  g_total : float;  (** [g(λ̃)] recomputed from the job decomposition *)
  g1 : float;
  g2 : float;
  g3 : float;  (** per-category contributions, [g = g1+g2+g3] (§4.3) *)
  e_pd_total : float;  (** PD's total energy *)
  cost_pd : float;  (** energy + lost value *)
  traces_disjoint : bool;  (** traces are pairwise disjoint (§4.2) *)
  prop7_ok : bool;  (** finished jobs: [s(i,k) ≥ s̃_j] on their trace *)
  prop8b_ok : bool;  (** finished jobs: [E_λ(j) ≤ δ^(α/(α−1)) E_PD(j)] *)
  lemma9_ok : bool;
  lemma10_ok : bool;
  lemma11_ok : bool;
  theorem3_ok : bool;  (** [g(λ̃) ≥ α^(−α)·cost(PD)] *)
}

val analyze : Instance.t -> Pd.result -> t
(** Builds every object of §4 for the given run and evaluates all checks.
    Lemma 11's bound (and hence the assembled Theorem 3 bound) is only
    guaranteed for [δ ≤ α^(1-α)], matching the paper's prerequisite. *)

val category_name : category -> string
