(** Ordered float-keyed map with order statistics — the balanced tree
    behind PD's timeline (doc/PERF.md).

    Keys are atomic-interval start times; values are whatever payload the
    caller attaches (PD stores a mutable interval record).  All structural
    operations are O(log n); [rank] makes the public interval {e indices}
    of [Pd.decision.assignment] computable without walking the tree.

    The tree is immutable (the caller stores it in a mutable field);
    payload mutation is the caller's business.  Keys are compared with
    exact float equality — PD only ever queries keys it previously
    inserted, after boundary snapping has already collapsed near-equal
    instants, so no tolerance belongs at this layer.  NaN keys are
    rejected. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val cardinal : 'a t -> int

val add : float -> 'a -> 'a t -> 'a t
(** Insert, replacing any existing binding of the key.  Raises
    [Invalid_argument] on a NaN key. *)

val remove : float -> 'a t -> 'a t
(** The tree unchanged (physically) when the key is absent. *)

val find_opt : float -> 'a t -> 'a option

val rank : float -> 'a t -> int
(** Number of keys strictly below the argument. *)

val min_binding_opt : 'a t -> (float * 'a) option
val max_binding_opt : 'a t -> (float * 'a) option

val find_last_leq : float -> 'a t -> (float * 'a) option
(** Greatest binding with key [<= x], if any. *)

val find_first_geq : float -> 'a t -> (float * 'a) option
(** Least binding with key [>= x], if any. *)

val bindings_range : lo:float -> hi:float -> 'a t -> (float * 'a) list
(** In-order bindings with [lo <= key < hi] — PD's window extraction.
    O(log n + result). *)

val iter : (float -> 'a -> unit) -> 'a t -> unit
(** In-order. *)

val fold : (float -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** In-order (leftmost binding first). *)

val bindings : 'a t -> (float * 'a) list
