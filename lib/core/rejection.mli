(** PD's rejection policy in closed form (Section 3, "Relation to the OA
    Algorithm").

    PD rejects job [j] exactly when the common price of its water-filled
    assignment would exceed [v_j] before the job is fully placed, i.e.
    when the planned speed would exceed the threshold [s] solving
    [δ · w_j · P'_α(s) = v_j].  With the optimal [δ = α^(1-α)] this
    threshold equals Chan–Lam–Li's

    {v  α^((α-2)/(α-1)) · (v_j / w_j)^(1/(α-1))  v}

    so on a single processor PD's accept/reject decisions coincide with
    CLL's — which experiment E3 verifies decision-by-decision. *)

open Speedscale_model

val threshold_speed : ?delta:float -> Power.t -> Job.t -> float
(** The speed above which PD (with the given [delta], default
    [Power.delta_star]) rejects the job: [P'^{-1}(v_j / (δ w_j))].
    [infinity] for must-finish jobs. *)

val energy_budget_factor : Power.t -> float
(** [α^(α-2)]: with [δ = δ*], PD rejects a job iff the energy its planned
    schedule would invest exceeds [α^(α-2) · v_j] (Section 3). *)
