(** The reusable primal-dual engine behind {!Pd}.

    Nguyen Kim Thang's "Lagrangian Duality based Algorithms in Online
    Scheduling" observes that the paper's accept/reject + λ-pricing loop
    is an instance of a general recipe: maintain a relaxed assignment of
    the committed work, price each arrival by the marginal cost of
    squeezing it in, accept iff the price stays below the job's worth,
    and read a dual certificate off the multipliers.  This module factors
    that recipe into three module parameters:

    + an {{!OBJECTIVE} objective} — the price↔speed conversions, the
      acceptance cap, and the proven guarantee ({!Energy_value} is the
      paper's energy + lost-value objective);
    + a {{!RELAXATION} relaxation} — how committed work is represented,
      refined, priced, and turned into a schedule ({!Interval} is the
      paper's atomic-interval timeline with Chen water-filling; [Npd]'s
      contiguous-slot booking is a second instance);
    + a {{!CERTIFICATE} certificate} — the per-run dual bound
      ({!Lagrangian} evaluates [g(λ)], a lower bound on OPT by weak
      duality, exactly as E11's duality chain does).

    {!Make} ties them into the generic online loop: admission checks,
    bounded-memory table eviction, decision bookkeeping, observer
    instrumentation, and certificate reporting.  {!Pd} instantiates
    [Make (Energy_value) (Interval (Energy_value)) (Lagrangian
    (Energy_value))] and is decision-bit-identical to the pre-framework
    code (the qcheck equivalence suite in [test_core.ml] pins this); the
    non-preemptive engine [Npd] swaps only the relaxation. *)

open Speedscale_model

(* ------------------------------------------------------------------ *)
(* Numerics shared by relaxations                                       *)
(* ------------------------------------------------------------------ *)

val boundary_tol : float
(** Boundary dedup tolerance (DESIGN.md section 5). *)

val same_boundary : float -> float -> bool
(** Two instants within {!boundary_tol} (absolute + relative). *)

val safely_past : last_release:float -> float -> bool
(** Whether a boundary trails the newest release by enough margin that no
    future boundary can land at, below, or within snapping distance of
    it — the GC flush criterion (DESIGN.md section 5). *)

(* ------------------------------------------------------------------ *)
(* Vocabulary                                                           *)
(* ------------------------------------------------------------------ *)

type arrival_stats = {
  job_id : int;
  accepted : bool;
  probes : int;  (** probe evaluations spent on this arrival *)
  intervals : int;  (** candidate intervals/slots in the job's window *)
  breakpoints : int;
      (** merged breakpoint count ([0] on the reference path) *)
  wall_s : float;  (** wall-clock seconds ([0] without [create ~clock]) *)
}

type stats = {
  arrivals : int;
  probes : int;
  intervals : int;
  breakpoints : int;
}

type mem_stats = {
  live_intervals : int;
  max_live_intervals : int;
  table_entries : int;
  max_table_entries : int;
  flushed_intervals : int;
  evicted_jobs : int;
  finished_slices : int;
}

type decision = {
  job : Job.t;
  accepted : bool;
  lambda : float;
  planned_speed : float;
  assignment : (int * float) list;
}

type history_error = {
  operation : string;  (** e.g. ["Pd.certificate"] *)
  flushed_intervals : int;  (** intervals GC had flushed at the call *)
  evicted_jobs : int;  (** table entries GC had evicted at the call *)
}
(** Why a full-history operation is unavailable on a bounded-memory
    ([~gc:true]) state: the flushed prefix is gone. *)

exception Bounded_memory of history_error
(** Raised by the exception-style full-history entry points
    ([certificate], [snapshot]) on a [~gc:true] state; the [_result]
    variants return [Error] instead. *)

val pp_history_error : Format.formatter -> history_error -> unit

(* ------------------------------------------------------------------ *)
(* Flushed-slice accumulator (shared by relaxations with GC)            *)
(* ------------------------------------------------------------------ *)

module Slab : sig
  type t

  val create : unit -> t
  val length : t -> int
  val push : t -> Schedule.slice -> unit

  val fold : ('a -> Schedule.slice -> 'a) -> 'a -> t -> 'a
  (** Folds in push order. *)
end

(* ------------------------------------------------------------------ *)
(* Module parameters                                                    *)
(* ------------------------------------------------------------------ *)

module type OBJECTIVE = sig
  type t

  val name : string
  val power : t -> Power.t
  val machines : t -> int
  val delta : t -> float

  val speed_of_price : t -> workload:float -> float -> float
  (** The speed at which the marginal price of the job equals the given
      price level. *)

  val price_of_speed : t -> workload:float -> float -> float
  (** Inverse of {!speed_of_price}. *)

  val acceptance_cap : t -> Job.t -> float
  (** The price above which the job is not worth running ([v_j] for the
      paper's objective; [+∞] for must-finish jobs). *)

  val guarantee : t -> float
  (** The proven competitive factor at the objective's default
      parameters ([α^α] for {!Energy_value}, Theorem 3). *)
end

module Energy_value : sig
  include OBJECTIVE

  val make :
    ?delta:float -> err:string -> power:Power.t -> machines:int -> unit -> t
  (** [delta] defaults to [Power.delta_star].  Raises [Invalid_argument]
      (prefixed with [err]) for [machines < 1] or [delta <= 0]. *)
end

type relax_arrival = { r_probes : int; r_intervals : int; r_breakpoints : int }

type relax_mem = {
  r_live : int;
  r_max_live : int;
  r_flushed : int;
  r_finished_slices : int;
}

type verdict =
  | Reject of float  (** the job cannot finish below this price *)
  | Accept of float * (int * float) list
      (** final common price and the committed public assignment *)

module type RELAXATION = sig
  type obj
  type t

  val name : string
  val create : obj -> err:string -> gc:bool -> t

  val prepare : t -> Job.t -> last_release:float -> unit
  (** Timeline refinement (and, under gc, flushing of the wholly-past
      prefix) before pricing the arrival. *)

  val price : t -> Job.t -> reference:bool -> verdict
  (** Price the arrival against the committed state and, on acceptance,
      commit its assignment.  [reference] selects the relaxation's slow
      oracle solver where it has one.  May raise [Failure] when a
      must-finish job cannot be placed. *)

  val take_arrival : t -> relax_arrival
  (** Instrumentation of the last {!price} call. *)

  val schedule : t -> rejected:int list -> Schedule.t
  val mem : t -> relax_mem
end

module type CERTIFICATE = sig
  type obj

  val name : string

  val evaluate : obj -> jobs:Job.t list -> lambda_of:(int -> float) -> float
  (** A certified lower bound on the optimal cost of the instance made of
      [jobs] (arrival order), given the multipliers the run fixed. *)
end

module Lagrangian (O : OBJECTIVE) : CERTIFICATE with type obj = O.t
(** The paper's dual bound [g(λ)] (weak duality, Theorem 2) — valid for
    any instantiation whose feasible schedules are contained in the
    preemptive-migratory relaxation. *)

(* ------------------------------------------------------------------ *)
(* The generic accept/reject + λ-pricing loop                           *)
(* ------------------------------------------------------------------ *)

module Make
    (O : OBJECTIVE)
    (R : RELAXATION with type obj = O.t)
    (C : CERTIFICATE with type obj = O.t) : sig
  type t

  val create : ?clock:(unit -> float) -> ?gc:bool -> err:string -> O.t -> t
  (** [err] prefixes every raised message (["Pd"], ["Npd"], …). *)

  val obj : t -> O.t
  val relax : t -> R.t
  val gc_enabled : t -> bool

  val arrive : t -> Job.t -> decision
  val arrive_reference : t -> Job.t -> decision

  val schedule : t -> Schedule.t
  val lambdas : t -> (int * float) list
  val accepted : t -> int list
  val rejected : t -> int list
  val seen_jobs : t -> Job.t list  (** arrival order; [[]] under gc *)

  val outcome : t -> int -> (float * bool) option
  val last_release : t -> float

  val set_observer : t -> (arrival_stats -> unit) option -> unit
  val stats : t -> stats
  val mem : t -> mem_stats

  val certificate : t -> float
  (** Raises {!Bounded_memory} on a [~gc:true] state. *)

  val certificate_result : t -> (float, history_error) result
  val history_guard : t -> string -> (unit, history_error) result

  (** Restore support (native snapshot formats): *)

  val set_last_release : t -> float -> unit

  val record : t -> Job.t -> lambda:float -> accepted:bool -> unit
  (** Replay one recorded outcome into the bookkeeping (callers load the
      relaxation state separately).  Call in arrival order. *)
end

(* ------------------------------------------------------------------ *)
(* The default relaxation: atomic intervals + Chen water-filling        *)
(* ------------------------------------------------------------------ *)

module Interval (O : OBJECTIVE) : sig
  include RELAXATION with type obj = O.t

  (** Beyond the [RELAXATION] contract, the interval timeline exposes its
      state for {!Pd}'s native snapshot format and inspection API: *)

  val boundaries : t -> float array
  val interval_loads : t -> (int * float) list array

  val load_timeline :
    t -> bounds:float array -> loads:(int * (int * float) list) list -> unit
  (** Load a serialized timeline into a fresh relaxation (snapshot
      restore).  Raises [Failure] on an out-of-range interval index. *)
end
