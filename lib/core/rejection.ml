open Speedscale_model

let threshold_speed ?delta power (j : Job.t) =
  if Float.equal j.value Float.infinity then Float.infinity
  else
    let delta = Option.value delta ~default:(Power.delta_star power) in
    Power.inv_deriv power (j.value /. (delta *. j.workload))

let energy_budget_factor power =
  let alpha = Power.alpha power in
  alpha ** (alpha -. 2.0)
