open Speedscale_util
open Speedscale_model
open Speedscale_chen
open Speedscale_solver

(* Two boundaries closer than this (absolute + relative, Feq-style) denote
   the same instant: deadlines and releases that differ by less than the
   tolerance must share a boundary, or the proportional split of committed
   loads divides by a near-zero interval length and amplifies rounding
   noise into the schedule.  See DESIGN.md section 5. *)
let boundary_tol = Feq.tol_snap
let same_boundary a b = Feq.approx ~atol:boundary_tol ~rtol:boundary_tol a b

(* "Wholly in the past", robustly: a boundary [hi] may be forgotten only
   when it trails [last_release] by a 4x boundary-tolerance margin (plus
   the 1e-12 arrival-order slack).  A future release can undershoot
   [last_release] by at most 1e-12, and a future boundary within the snap
   tolerance of a retained boundary must still find it — the margin makes
   it impossible for any future boundary to land at, below, or within
   snapping distance of a flushed boundary, so flushing can never change
   a decision.  See DESIGN.md section 5. *)
let safely_past ~last_release hi =
  let scale = 1.0 +. Float.max (Float.abs hi) (Float.abs last_release) in
  last_release -. hi > (4.0 *. boundary_tol *. scale) +. Feq.tol_guard

type arrival_stats = {
  job_id : int;
  accepted : bool;
  probes : int;  (** [Chen.probe_load_for_speed] evaluations this arrival *)
  intervals : int;  (** candidate intervals/slots in the job's window *)
  breakpoints : int;  (** merged breakpoint count (0 on the reference path) *)
  wall_s : float;  (** wall-clock seconds, 0 unless [create ~clock] *)
}

type stats = {
  arrivals : int;
  probes : int;
  intervals : int;
  breakpoints : int;
}

type mem_stats = {
  live_intervals : int;
  max_live_intervals : int;
  table_entries : int;
  max_table_entries : int;
  flushed_intervals : int;
  evicted_jobs : int;
  finished_slices : int;
}

type decision = {
  job : Job.t;
  accepted : bool;
  lambda : float;
  planned_speed : float;
  assignment : (int * float) list;
}

type history_error = {
  operation : string;
  flushed_intervals : int;
  evicted_jobs : int;
}

exception Bounded_memory of history_error

let pp_history_error ppf (e : history_error) =
  Fmt.pf ppf
    "%s needs the full history; this state runs with ~gc:true (bounded \
     memory): %d intervals flushed, %d jobs evicted"
    e.operation e.flushed_intervals e.evicted_jobs

(* Binary min-heap of (deadline, job id): the eviction order for the
   dup-id/outcome tables under GC.  Only ever holds live-window jobs. *)
module Expiry = struct
  type t = { mutable a : (float * int) array; mutable n : int }

  let create () = { a = [||]; n = 0 }
  let key h i = fst h.a.(i)

  let swap h i j =
    let x = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- x

  let push h d id =
    if h.n = Array.length h.a then begin
      let cap = Stdlib.max 8 (2 * Array.length h.a) in
      let a = Array.make cap (0.0, 0) in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- (d, id);
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && key h ((!i - 1) / 2) > key h !i do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let peek h = if h.n = 0 then None else Some h.a.(0)

  let pop h =
    h.n <- h.n - 1;
    swap h 0 h.n;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.n && key h l < key h !m then m := l;
      if r < h.n && key h r < key h !m then m := r;
      if !m <> !i then begin
        swap h !i !m;
        i := !m
      end
      else continue := false
    done
end

(* Flushed slices parked as a flat float array (stride 5: proc, t0, t1,
   job, speed).  A soak-length stream retains millions of slices; kept as
   a list of boxed records they dominate the major collector's marking
   work and per-arrival wall time degrades with the length of the history
   — a float array's contents are never scanned, so the accumulator is
   GC-inert no matter how large it grows.  Ids round-trip exactly through
   the float encoding (|id| < 2^53). *)
module Slab = struct
  (* Fixed-size chunks, newest first, rather than a growable array: a
     doubling realloc would copy the whole history (a multi-hundred-MB
     pause at soak sizes) and leave the old array as major-heap garbage. *)
  let stride = 5
  let chunk_slices = 1 lsl 16
  let chunk_words = stride * chunk_slices

  type t = { mutable chunks_rev : float array list; mutable n : int }

  let create () = { chunks_rev = []; n = 0 }
  let length s = s.n

  let push s (sl : Schedule.slice) =
    let i = s.n mod chunk_slices in
    if i = 0 then s.chunks_rev <- Array.make chunk_words 0.0 :: s.chunks_rev;
    let a = List.hd s.chunks_rev in
    let o = stride * i in
    a.(o) <- float_of_int sl.Schedule.proc;
    a.(o + 1) <- sl.t0;
    a.(o + 2) <- sl.t1;
    a.(o + 3) <- float_of_int sl.job;
    a.(o + 4) <- sl.speed;
    s.n <- s.n + 1

  (* In-order traversal; O(chunks) to find the start, so iterate chunk by
     chunk when reading everything back. *)
  let get_in a i : Schedule.slice =
    let o = stride * i in
    {
      proc = int_of_float a.(o);
      t0 = a.(o + 1);
      t1 = a.(o + 2);
      job = int_of_float a.(o + 3);
      speed = a.(o + 4);
    }

  (* [fold f acc s] folds over the slices in push order. *)
  let fold f acc s =
    let chunks = List.rev s.chunks_rev in
    let acc = ref acc in
    List.iteri
      (fun c a ->
        let first = c * chunk_slices in
        let limit = Stdlib.min chunk_slices (s.n - first) in
        for i = 0 to limit - 1 do
          acc := f !acc (get_in a i)
        done)
      chunks;
    !acc
end

(* ------------------------------------------------------------------ *)
(* Module parameters: objective, relaxation, certificate                *)
(* ------------------------------------------------------------------ *)

module type OBJECTIVE = sig
  type t

  val name : string
  val power : t -> Power.t
  val machines : t -> int
  val delta : t -> float
  val speed_of_price : t -> workload:float -> float -> float
  val price_of_speed : t -> workload:float -> float -> float
  val acceptance_cap : t -> Job.t -> float
  val guarantee : t -> float
end

(* The paper's objective: energy plus the value of unfinished jobs.  The
   marginal price of running job [j] at speed [s] is
   [mu = delta * w_j * P'(s)]; a job is worth accepting while the price
   stays below its value [v_j]. *)
module Energy_value = struct
  type t = { power : Power.t; machines : int; delta : float }

  let name = "energy+lost-value"

  let make ?delta ~err ~power ~machines () =
    if machines < 1 then invalid_arg (err ^ ": machines < 1");
    let delta = Option.value delta ~default:(Power.delta_star power) in
    if not (Float.is_finite delta) || delta <= 0.0 then
      invalid_arg (err ^ ": delta must be finite > 0");
    { power; machines; delta }

  let power t = t.power
  let machines t = t.machines
  let delta t = t.delta

  (* The speed corresponding to price level mu for a job of workload w:
     mu = delta * w * P'(s). *)
  let speed_of_price t ~workload mu =
    Power.inv_deriv t.power (mu /. (t.delta *. workload))

  let price_of_speed t ~workload s =
    t.delta *. workload *. Power.deriv t.power s

  let acceptance_cap _ (job : Job.t) = job.value
  let guarantee t = Power.competitive_bound t.power
end

type relax_arrival = { r_probes : int; r_intervals : int; r_breakpoints : int }

type relax_mem = {
  r_live : int;
  r_max_live : int;
  r_flushed : int;
  r_finished_slices : int;
}

type verdict =
  | Reject of float  (** the job cannot finish below this price *)
  | Accept of float * (int * float) list
      (** final common price and the committed public assignment *)

module type RELAXATION = sig
  type obj
  type t

  val name : string
  val create : obj -> err:string -> gc:bool -> t

  val prepare : t -> Job.t -> last_release:float -> unit
  (** Timeline refinement (and, under gc, flushing of the wholly-past
      prefix) before pricing the arrival. *)

  val price : t -> Job.t -> reference:bool -> verdict
  (** Price the arrival against the committed state and, on acceptance,
      commit its assignment.  [reference] selects the relaxation's slow
      oracle solver where it has one.  May raise [Failure] when a
      must-finish job cannot be placed. *)

  val take_arrival : t -> relax_arrival
  (** Instrumentation of the last [price] call. *)

  val schedule : t -> rejected:int list -> Schedule.t
  val mem : t -> relax_mem
end

module type CERTIFICATE = sig
  type obj

  val name : string

  val evaluate : obj -> jobs:Job.t list -> lambda_of:(int -> float) -> float
  (** A certified lower bound on the optimal cost of the instance made of
      [jobs] (arrival order), given the multipliers the run fixed. *)
end

(* The default certificate: the Lagrangian dual bound g(lambda) of the
   paper's relaxation (weak duality, Theorem 2).  It is a valid lower
   bound for any instantiation whose feasible set is contained in the
   preemptive-migratory relaxation — in particular for the non-preemptive
   engine, whose schedules are a subset of the preemptive ones. *)
module Lagrangian (O : OBJECTIVE) = struct
  type obj = O.t

  let name = "lagrangian-dual"

  let evaluate obj ~jobs ~lambda_of =
    match jobs with
    | [] -> 0.0
    | seen ->
      (* Instance.make re-ranks ids by (release, id); mirror that order to
         line the multipliers up with the re-ranked jobs. *)
      let sorted = List.stable_sort Job.compare_release seen in
      let inst =
        Instance.make ~power:(O.power obj) ~machines:(O.machines obj) sorted
      in
      let lambda =
        Array.of_list (List.map (fun (j : Job.t) -> lambda_of j.id) sorted)
      in
      (Dual.evaluate inst (Timeline.of_jobs sorted) ~lambda).value
end

(* ------------------------------------------------------------------ *)
(* The generic accept/reject + lambda-pricing loop                      *)
(* ------------------------------------------------------------------ *)

module Make
    (O : OBJECTIVE)
    (R : RELAXATION with type obj = O.t)
    (C : CERTIFICATE with type obj = O.t) =
struct
  type t = {
    obj : O.t;
    relax : R.t;
    err : string;
    gc : bool;
    expiry : Expiry.t;
    mutable seen : Job.t list;  (* reversed arrival order; empty under GC *)
    seen_ids : (int, unit) Hashtbl.t;
    outcomes : (int, float * bool) Hashtbl.t;  (* id -> lambda, accepted *)
    mutable lambda_rev : (int * float) list;
    mutable accepted_rev : int list;
    mutable rejected_rev : int list;
    mutable last_release : float;
    mutable evicted_jobs : int;
    (* instrumentation *)
    clock : (unit -> float) option;
    mutable observer : (arrival_stats -> unit) option;
    mutable arrivals : int;
    mutable probes_total : int;
    mutable intervals_total : int;
    mutable breakpoints_total : int;
    mutable max_table : int;
  }

  let create ?clock ?(gc = false) ~err obj =
    {
      obj;
      relax = R.create obj ~err ~gc;
      err;
      gc;
      expiry = Expiry.create ();
      seen = [];
      seen_ids = Hashtbl.create 64;
      outcomes = Hashtbl.create 64;
      lambda_rev = [];
      accepted_rev = [];
      rejected_rev = [];
      last_release = Float.neg_infinity;
      evicted_jobs = 0;
      clock;
      observer = None;
      arrivals = 0;
      probes_total = 0;
      intervals_total = 0;
      breakpoints_total = 0;
      max_table = 0;
    }

  let obj t = t.obj
  let relax t = t.relax
  let gc_enabled t = t.gc
  let set_observer t obs = t.observer <- obs
  let now t = match t.clock with Some c -> c () | None -> 0.0

  let stats t =
    {
      arrivals = t.arrivals;
      probes = t.probes_total;
      intervals = t.intervals_total;
      breakpoints = t.breakpoints_total;
    }

  let mem t =
    let rm = R.mem t.relax in
    {
      live_intervals = rm.r_live;
      max_live_intervals = rm.r_max_live;
      table_entries = Hashtbl.length t.seen_ids + Hashtbl.length t.outcomes;
      max_table_entries = t.max_table;
      flushed_intervals = rm.r_flushed;
      evicted_jobs = t.evicted_jobs;
      finished_slices = rm.r_finished_slices;
    }

  let evict_tables t =
    if t.gc then begin
      let evicting = ref true in
      while !evicting do
        match Expiry.peek t.expiry with
        | Some (d, id) when safely_past ~last_release:t.last_release d ->
          Expiry.pop t.expiry;
          Hashtbl.remove t.seen_ids id;
          Hashtbl.remove t.outcomes id;
          t.evicted_jobs <- t.evicted_jobs + 1
        | _ -> evicting := false
      done
    end

  let bump_table t =
    let tables = Hashtbl.length t.seen_ids + Hashtbl.length t.outcomes in
    if tables > t.max_table then t.max_table <- tables

  let emit_stats t (d : decision) ~(ra : relax_arrival) ~t0 =
    t.arrivals <- t.arrivals + 1;
    t.probes_total <- t.probes_total + ra.r_probes;
    t.intervals_total <- t.intervals_total + ra.r_intervals;
    t.breakpoints_total <- t.breakpoints_total + ra.r_breakpoints;
    match t.observer with
    | None -> ()
    | Some obs ->
      let wall_s = match t.clock with Some c -> c () -. t0 | None -> 0.0 in
      obs
        {
          job_id = d.job.id;
          accepted = d.accepted;
          probes = ra.r_probes;
          intervals = ra.r_intervals;
          breakpoints = ra.r_breakpoints;
          wall_s;
        }

  let arrive_with ~reference t (job : Job.t) =
    let t0 = now t in
    if Hashtbl.mem t.seen_ids job.id then
      invalid_arg (t.err ^ ".arrive: duplicate job id");
    if job.release < t.last_release -. Feq.tol_guard then
      invalid_arg (t.err ^ ".arrive: jobs must arrive in release order");
    t.last_release <- Float.max t.last_release job.release;
    Hashtbl.add t.seen_ids job.id ();
    if t.gc then Expiry.push t.expiry job.deadline job.id
    else t.seen <- job :: t.seen;
    evict_tables t;
    R.prepare t.relax job ~last_release:t.last_release;
    let verdict = R.price t.relax job ~reference in
    let w = job.workload in
    let d =
      match verdict with
      | Reject lambda ->
        let planned_speed = O.speed_of_price t.obj ~workload:w lambda in
        t.lambda_rev <- (job.id, lambda) :: t.lambda_rev;
        Hashtbl.replace t.outcomes job.id (lambda, false);
        bump_table t;
        t.rejected_rev <- job.id :: t.rejected_rev;
        { job; accepted = false; lambda; planned_speed; assignment = [] }
      | Accept (lambda, assignment) ->
        let planned_speed = O.speed_of_price t.obj ~workload:w lambda in
        t.lambda_rev <- (job.id, lambda) :: t.lambda_rev;
        Hashtbl.replace t.outcomes job.id (lambda, true);
        bump_table t;
        t.accepted_rev <- job.id :: t.accepted_rev;
        { job; accepted = true; lambda; planned_speed; assignment }
    in
    emit_stats t d ~ra:(R.take_arrival t.relax) ~t0;
    d

  let arrive t job = arrive_with ~reference:false t job
  let arrive_reference t job = arrive_with ~reference:true t job
  let schedule t = R.schedule t.relax ~rejected:(List.rev t.rejected_rev)
  let lambdas t = List.rev t.lambda_rev
  let accepted t = List.rev t.accepted_rev
  let rejected t = List.rev t.rejected_rev
  let seen_jobs t = List.rev t.seen
  let outcome t id = Hashtbl.find_opt t.outcomes id
  let last_release t = t.last_release
  let set_last_release t x = t.last_release <- x

  (* Restore support: replay one recorded outcome into the bookkeeping
     (callers load the relaxation state separately).  Call in arrival
     order. *)
  let record t (job : Job.t) ~lambda ~accepted =
    t.seen <- job :: t.seen;
    Hashtbl.replace t.seen_ids job.id ();
    Hashtbl.replace t.outcomes job.id (lambda, accepted);
    t.lambda_rev <- (job.id, lambda) :: t.lambda_rev;
    if accepted then t.accepted_rev <- job.id :: t.accepted_rev
    else t.rejected_rev <- job.id :: t.rejected_rev

  let history_guard t operation =
    if t.gc then
      Error
        {
          operation = t.err ^ "." ^ operation;
          flushed_intervals = (R.mem t.relax).r_flushed;
          evicted_jobs = t.evicted_jobs;
        }
    else Ok ()

  let certificate_result t =
    match history_guard t "certificate" with
    | Error e -> Error e
    | Ok () ->
      Ok
        (C.evaluate t.obj ~jobs:(List.rev t.seen) ~lambda_of:(fun id ->
             match Hashtbl.find_opt t.outcomes id with
             | Some (l, _) -> l
             | None -> 0.0))

  let certificate t =
    match certificate_result t with
    | Ok v -> v
    | Error e -> raise (Bounded_memory e)
end

(* ------------------------------------------------------------------ *)
(* The default relaxation: atomic intervals + Chen water-filling        *)
(* ------------------------------------------------------------------ *)

(* One atomic interval [lo, hi) of the live timeline.  The payload is
   mutable so splits and load commits touch the record in place; only the
   tree structure (keyed by [lo]) is rebuilt, at O(log live) per insert. *)
type ivl = {
  mutable lo : float;
  mutable hi : float;
  mutable loads : (int * float) list;
  mutable cache : Chen.t option;
}

module Interval (O : OBJECTIVE) = struct
  type obj = O.t

  let name = "interval-water-filling"

  type t = {
    obj : O.t;
    err : string;
    gc : bool;
    machines : int;
    (* Timeline: the live atomic intervals as a balanced order-statistics
       tree keyed by interval start; [lone] carries the single-boundary
       state (one boundary seen, no interval yet).  Invariant: [lone] is
       [None] whenever the tree is non-empty, and the live intervals are
       contiguous ([hi] of one is [lo] of the next). *)
    mutable live : ivl Tline.t;
    mutable lone : float option;
    (* GC state: slices of flushed (wholly-past) intervals.  Each flush
       pushes its slices in reverse, so reading the slab back to front
       yields newest flush first with batch-internal order restored —
       [schedule] appends that after the live slices, reproducing the
       slice order of a never-flushed timeline. *)
    finished : Slab.t;
    mutable flushed_intervals : int;
    mutable max_live : int;
    (* instrumentation of the last price call *)
    mutable probes_now : int;
    mutable intervals_last : int;
    mutable breakpoints_last : int;
  }

  let create obj ~err ~gc =
    {
      obj;
      err;
      gc;
      machines = O.machines obj;
      live = Tline.empty;
      lone = None;
      finished = Slab.create ();
      flushed_intervals = 0;
      max_live = 0;
      probes_now = 0;
      intervals_last = 0;
      breakpoints_last = 0;
    }

  (* Insert [b] as a boundary unless an existing boundary lies within the
     dedup tolerance (then [b] snaps to it).  Inside an interval: split it,
     dividing the committed loads proportionally to the sub-lengths (this
     keeps every job's speed unchanged, which is why the reformulated
     online algorithm computes the same schedule as one knowing the
     partition a priori).  Outside the current horizon: append an empty
     edge interval.  O(log live) via the tree.  The tolerance guarantees
     both sub-lengths of a split exceed boundary_tol * scale, so the
     proportional split never divides by a near-zero length. *)
  let insert_boundary t b =
    match Tline.find_last_leq b t.live with
    | None -> (
      match (Tline.min_binding_opt t.live, t.lone) with
      | Some (glo, _), _ ->
        (* before the current horizon *)
        if not (same_boundary glo b) then
          t.live <-
            Tline.add b { lo = b; hi = glo; loads = []; cache = None } t.live
      | None, Some x ->
        if not (same_boundary x b) then begin
          let lo = Float.min x b and hi = Float.max x b in
          t.live <- Tline.add lo { lo; hi; loads = []; cache = None } t.live;
          t.lone <- None
        end
      | None, None -> t.lone <- Some b)
    | Some (lo_k, iv) ->
      if not (same_boundary lo_k b) then
        if b < iv.hi then begin
          if not (same_boundary iv.hi b) then begin
            (* split [lo, hi) at b *)
            let lo = iv.lo and hi = iv.hi in
            let frac_left = (b -. lo) /. (hi -. lo) in
            let half len factor =
              match iv.cache with
              | None -> None
              | Some c -> Some (Chen.rescale c ~length:len ~factor)
            in
            let right =
              {
                lo = b;
                hi;
                loads =
                  List.map
                    (fun (id, w) -> (id, w *. (1.0 -. frac_left)))
                    iv.loads;
                cache = half (hi -. b) (1.0 -. frac_left);
              }
            in
            iv.hi <- b;
            iv.loads <- List.map (fun (id, w) -> (id, w *. frac_left)) iv.loads;
            iv.cache <- half (b -. lo) frac_left;
            t.live <- Tline.add b right t.live
          end
        end
        else if not (same_boundary iv.hi b) then
          (* [iv] is the last interval (contiguity): append an empty edge
             interval [old horizon, b) *)
          t.live <-
            Tline.add iv.hi
              { lo = iv.hi; hi = b; loads = []; cache = None }
              t.live

  (* The boundary value representing [x]: exact, or the neighbour [x]
     snapped to during [insert_boundary]. *)
  let boundary_key t x =
    let of_lone () =
      match t.lone with
      | Some l when same_boundary l x -> Some l
      | _ -> None
    in
    let cand =
      match Tline.find_last_leq x t.live with
      | Some (lo_k, iv) ->
        if same_boundary lo_k x then Some lo_k
        else if same_boundary iv.hi x then Some iv.hi
        else None
      | None -> (
        match Tline.min_binding_opt t.live with
        | Some (glo, _) when same_boundary glo x -> Some glo
        | _ -> of_lone ())
    in
    match cand with
    | Some b -> b
    | None ->
      invalid_arg (Fmt.str "%s.boundary_key: %g is not a boundary" t.err x)

  (* The committed-load Chen problem of an interval, built lazily and
     invalidated whenever the interval is split or receives new load. *)
  let chen t iv =
    match iv.cache with
    | Some c -> c
    | None ->
      let c =
        Chen.build ~machines:t.machines ~length:(iv.hi -. iv.lo) iv.loads
      in
      iv.cache <- Some c;
      c

  let flush_slices t iv =
    match iv.loads with
    | [] -> ()
    | _ ->
      let slices = Chen.slices (chen t iv) ~t0:iv.lo ~t1:iv.hi in
      List.iter (Slab.push t.finished) (List.rev slices)

  let gc_flush t ~last_release =
    let continue = ref true in
    while !continue do
      match Tline.min_binding_opt t.live with
      | Some (k, iv) when safely_past ~last_release iv.hi ->
        flush_slices t iv;
        t.live <- Tline.remove k t.live;
        t.flushed_intervals <- t.flushed_intervals + 1
      | _ -> continue := false
    done;
    match t.lone with
    | Some x when safely_past ~last_release x -> t.lone <- None
    | _ -> ()

  let prepare t (job : Job.t) ~last_release =
    if t.gc then gc_flush t ~last_release;
    insert_boundary t job.release;
    insert_boundary t job.deadline;
    let live = Tline.cardinal t.live in
    if live > t.max_live then t.max_live <- live

  (* Work (in load units) the job would commit across [probs] at speed
     [s].  Summation order is interval order (the Ksum accumulation both
     arrival paths share float-for-float). *)
  let assigned_at_speed t ~w probs s =
    t.probes_now <- t.probes_now + Array.length probs;
    let acc = Ksum.create () in
    Array.iter
      (fun (_, _, p) ->
        Ksum.add acc (Float.min (Chen.probe_load_for_speed p s) w))
      probs;
    Ksum.total acc

  (* Commit the accepted assignment at the final price: rescale so the job
     is finished exactly despite solver dust, then pour the loads into the
     interval records.  A near-zero total cannot be rescued by rescaling —
     fail loudly instead of recording an acceptance backed by a garbage
     schedule. *)
  let commit_loads t (job : Job.t) probs lambda =
    let w = job.workload in
    let s = O.speed_of_price t.obj ~workload:w lambda in
    t.probes_now <- t.probes_now + Array.length probs;
    let assignment =
      List.filter_map
        (fun (k, iv, p) ->
          let z = Float.min (Chen.probe_load_for_speed p s) w in
          if z > 0.0 then Some (k, iv, z) else None)
        (Array.to_list probs)
    in
    let total = Ksum.sum_by (fun (_, _, z) -> z) assignment in
    if not (total > Feq.tol_snap *. w) then
      failwith
        (Fmt.str
           "%s.arrive: job %d accepted but only %g of workload %g was \
            assigned"
           t.err job.id total w);
    let scale = w /. total in
    let assignment =
      List.map (fun (k, iv, z) -> (k, iv, z *. scale)) assignment
    in
    List.iter
      (fun (_, iv, z) ->
        iv.loads <- (job.id, z) :: iv.loads;
        iv.cache <-
          (match iv.cache with
          | Some c -> Some (Chen.add_load c (job.id, z))
          | None -> None))
      assignment;
    List.map (fun (k, _, z) -> (k, z)) assignment

  (* ---------------------------------------------------------------- *)
  (* Optimized price solve: breakpoint walk                             *)
  (* ---------------------------------------------------------------- *)

  let merge_sorted a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let out = Array.make (la + lb) 0.0 in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < la && !j < lb do
        let x = a.(!i) and y = b.(!j) in
        if x <= y then begin
          out.(!k) <- x;
          incr i
        end
        else begin
          out.(!k) <- y;
          incr j
        end;
        incr k
      done;
      if !i < la then Array.blit a !i out !k (la - !i)
      else Array.blit b !j out !k (lb - !j);
      out
    end

  (* Merged, sorted, duplicate-free breakpoint speeds of the window's
     capped probe responses.  The total assigned work is affine between
     adjacent entries, zero at the first entry.  Per-interval lists are
     already sorted, so balanced two-way merges do the whole job unboxed —
     [Array.sort]'s polymorphic comparator boxes every float it touches,
     which is measurable at one merge per arrival. *)
  let merged_breakpoints ~w probs =
    let parts =
      Array.map (fun (_, _, p) -> Chen.probe_breakpoints p ~cap:w) probs
    in
    let rec reduce lo hi =
      if hi - lo = 1 then parts.(lo)
      else
        let mid = (lo + hi) / 2 in
        merge_sorted (reduce lo mid) (reduce mid hi)
    in
    let all = reduce 0 (Array.length parts) in
    let n = Array.length all in
    let out = ref 0 and prev = ref Float.nan in
    for i = 0 to n - 1 do
      let x = all.(i) in
      if !out = 0 || not (Float.equal !prev x) then begin
        all.(!out) <- x;
        incr out;
        prev := x
      end
    done;
    Array.sub all 0 !out

  (* Find the speed s_star with assigned s_star = w by walking the merged
     breakpoint list: binary-search the first breakpoint whose assignment
     reaches w, then interpolate inside the bracketing segment (assignment
     is affine there, so the interpolation is exact up to rounding; a
     bracketed bisection inside the segment is kept as a fallback).

     [bound_s]: [Some s_v] caps the search at the job's value speed —
     [None] is returned when the assignment never reaches [w] below it,
     which the caller interprets as "the job finishes exactly as the price
     reaches its value".  With [bound_s = None] a sentinel past the global
     saturation breakpoint guarantees the crossing exists. *)
  let solve_speed t ~w probs ~bound_s =
    let f s = assigned_at_speed t ~w probs s in
    let nat = merged_breakpoints ~w probs in
    let bps =
      match bound_s with
      | Some sv ->
        let below =
          Array.of_list (List.filter (fun s -> s < sv) (Array.to_list nat))
        in
        Array.append below [| sv |]
      | None ->
        let last = nat.(Array.length nat - 1) in
        Array.append nat [| last *. (1.0 +. Feq.tol_loose) |]
    in
    let n = Array.length bps in
    (* Cancellation in the probe's closed form can make f at the exact
       saturation breakpoint evaluate a few ulp short of w; a strict >= w
       search would then skip past it onto the plateau, where interpolation
       is meaningless.  Searching against w minus a whisker keeps the
       bracketing segment at (or before) the true crossing. *)
    let w_eff = w -. (Feq.tol_guard *. (1.0 +. w)) in
    if f bps.(n - 1) < w_eff then (None, n)
    else begin
      (* smallest j with f bps.(j) >= w_eff; f is 0 at the first natural
         breakpoint so the crossing segment has j >= 1 whenever one exists *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if f bps.(mid) >= w_eff then hi := mid else lo := mid + 1
      done;
      let j = !hi in
      let sa, fa =
        if j = 0 then (0.0, 0.0) else (bps.(j - 1), f bps.(j - 1))
      in
      let sb = bps.(j) in
      let fb = f sb in
      let s_star =
        if fb < w || fb -. fa <= 0.0 then
          (* the segment tops out within tolerance of w: its right endpoint
             is the crossing (either the saturation breakpoint under FP
             jitter, or the value-speed cap of a job finishing exactly as
             the price reaches its value) *)
          sb
        else begin
          let s =
            Feq.clamp ~lo:sa ~hi:sb
              (sa +. ((w -. fa) *. (sb -. sa) /. (fb -. fa)))
          in
          if Float.abs (f s -. w) <= Feq.tol_snap *. (1.0 +. w) then s
          else Bisect.monotone_inverse ~f ~target:w ~lo:sa ~hi:sb ()
        end
      in
      (Some s_star, n)
    end

  (* ---------------------------------------------------------------- *)
  (* Pricing                                                            *)
  (* ---------------------------------------------------------------- *)

  let window t (job : Job.t) =
    let k_lo = boundary_key t job.release
    and k_hi = boundary_key t job.deadline in
    if k_lo >= k_hi then [||]
    else begin
      let base = Tline.rank k_lo t.live in
      let win = Tline.bindings_range ~lo:k_lo ~hi:k_hi t.live in
      Array.of_list (List.mapi (fun i (_, iv) -> (base + i, iv, chen t iv)) win)
    end

  (* A job whose window collapsed onto existing boundaries (span below the
     dedup tolerance) can place no work at all. *)
  let degenerate_window t (job : Job.t) =
    if Float.is_finite job.value then Reject job.value
    else
      failwith
        (Fmt.str
           "%s.arrive: job %d must finish but its window [%g, %g) is \
            degenerate (below the boundary tolerance)"
           t.err job.id job.release job.deadline)

  let price_fast t (job : Job.t) probs =
    let w = job.workload in
    let finite = Float.is_finite job.value in
    let s_v =
      if finite then O.speed_of_price t.obj ~workload:w job.value else 0.0
    in
    let at_value = if finite then assigned_at_speed t ~w probs s_v else 0.0 in
    if finite && at_value < w *. (1.0 -. Feq.tol_snap) then Reject job.value
    else begin
      let bound_s = if finite then Some s_v else None in
      let s_star, breakpoints = solve_speed t ~w probs ~bound_s in
      t.breakpoints_last <- breakpoints;
      let lambda =
        match s_star with
        | Some s -> O.price_of_speed t.obj ~workload:w s
        | None ->
          (* the assignment never reaches w strictly below the value
             speed: the job finishes exactly as the price hits v_j *)
          if finite then job.value
          else
            failwith
              (Fmt.str
                 "%s.arrive: job %d: unbounded price search failed to \
                  place the workload"
                 t.err job.id)
      in
      Accept (lambda, commit_loads t job probs lambda)
    end

  (* The pre-optimization solver, kept verbatim in structure: one outer
     bisection on the price with a full window sweep per probe.  Shares
     the timeline, probe and bookkeeping code with the fast path, so any
     divergence between the two isolates the breakpoint walk. *)
  let price_reference t (job : Job.t) probs =
    let w = job.workload in
    let assigned mu =
      assigned_at_speed t ~w probs (O.speed_of_price t.obj ~workload:w mu)
    in
    let at_value =
      if Float.is_finite job.value then assigned job.value else 0.0
    in
    if Float.is_finite job.value && at_value < w *. (1.0 -. Feq.tol_snap) then
      Reject job.value
    else begin
      let hi =
        if Float.is_finite job.value then job.value
        else begin
          (* grow a bracket: the price at which even a single interval
             could absorb the whole job is a safe upper bound *)
          let init =
            O.delta t.obj *. w
            *. Power.deriv (O.power t.obj)
                 ((w +. 1.0) /. Float.max Feq.tol_snap (Job.span job))
          in
          Bisect.grow_bracket ~f:assigned ~target:w ~lo:0.0
            ~init:(Float.max init Feq.tol_snap) ()
        end
      in
      let mu_star =
        (* [monotone_inverse] raises when f hi < target; a finite-value
           job with at_value in [w(1-1e-9), w) legitimately saturates at
           the value price — that clamp is a modelling decision made
           here, not inside Bisect (DESIGN.md section 5) *)
        if assigned hi < w then hi
        else Bisect.monotone_inverse ~f:assigned ~target:w ~lo:0.0 ~hi ()
      in
      Accept (mu_star, commit_loads t job probs mu_star)
    end

  let price t (job : Job.t) ~reference =
    t.probes_now <- 0;
    t.breakpoints_last <- 0;
    let probs = window t job in
    t.intervals_last <- Array.length probs;
    if Array.length probs = 0 then degenerate_window t job
    else if reference then price_reference t job probs
    else price_fast t job probs

  let take_arrival t =
    {
      r_probes = t.probes_now;
      r_intervals = t.intervals_last;
      r_breakpoints = t.breakpoints_last;
    }

  (* ---------------------------------------------------------------- *)
  (* Results and state surfaces                                         *)
  (* ---------------------------------------------------------------- *)

  let boundaries t =
    match Tline.max_binding_opt t.live with
    | None -> (
      match t.lone with None -> [||] | Some x -> [| x |])
    | Some (_, last) ->
      let keys = Tline.fold (fun k _ acc -> k :: acc) t.live [] in
      Array.of_list (List.rev (last.hi :: keys))

  let interval_loads t =
    let loads = Tline.fold (fun _ iv acc -> iv.loads :: acc) t.live [] in
    Array.of_list (List.rev loads)

  let schedule t ~rejected =
    (* prepending in push order reverses the slab; each flush pushed its
       batch reversed, so this restores newest flush first with
       batch-internal order intact — the never-flushed slice order *)
    let finished = Slab.fold (fun acc sl -> sl :: acc) [] t.finished in
    let slices =
      Tline.fold
        (fun _ iv acc ->
          match iv.loads with
          | [] -> acc
          | _ -> Chen.slices (chen t iv) ~t0:iv.lo ~t1:iv.hi @ acc)
        t.live finished
    in
    Schedule.make ~machines:t.machines ~rejected slices

  let mem t =
    {
      r_live = Tline.cardinal t.live;
      r_max_live = t.max_live;
      r_flushed = t.flushed_intervals;
      r_finished_slices = Slab.length t.finished;
    }

  (* Load a serialized timeline into a fresh relaxation (snapshot
     restore). *)
  let load_timeline t ~bounds ~loads =
    let nb = Array.length bounds in
    let n_intervals = Stdlib.max 0 (nb - 1) in
    if nb = 1 then t.lone <- Some bounds.(0);
    let ivls =
      Array.init n_intervals (fun k ->
          { lo = bounds.(k); hi = bounds.(k + 1); loads = []; cache = None })
    in
    Array.iter (fun iv -> t.live <- Tline.add iv.lo iv t.live) ivls;
    List.iter
      (fun (k, l) ->
        if k < 0 || k >= n_intervals then
          failwith (t.err ^ ".restore: interval index out of range");
        ivls.(k).loads <- l)
      loads
end
