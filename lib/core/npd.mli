(** NPD — the non-preemptive sibling of {!Pd}, built on the same
    {!Pd_core} framework with the relaxation module swapped.

    Model (Cohen-Addad, Li, Mathieu and Milis, "Energy-efficient
    algorithms for non-preemptive speed-scaling"): an accepted job must
    run in {e one contiguous time slot on one machine} at constant
    speed — no preemption, no migration.  The admission rule is the same
    λ-pricing as PD's: when job [j] arrives, every maximal free gap of
    every machine intersected with [[r_j, d_j)] yields one candidate
    slot (using the whole gap is optimal within a gap, since
    [ℓ · P(w/ℓ)] strictly decreases in [ℓ] for [α > 1]); the candidate's
    price is the marginal energy cost [δ · w_j · P'(w_j / ℓ)] at the
    slot speed.  The job takes the cheapest candidate iff its price is
    at most [v_j], else it is rejected with [λ_j = v_j].

    Because every non-preemptive schedule is feasible for the preemptive
    relaxation, the Lagrangian bound [g(λ̃)] from {!certificate} remains
    a certified lower bound on the {e preemptive} optimum — and hence
    also on the (larger) non-preemptive optimum.  Unlike PD, no
    constant-factor guarantee is claimed for this greedy (the
    non-preemptive problem is strongly NP-hard even offline); experiment
    E27 measures the gap against PD and the dual bound empirically.

    The two solver flavours of the framework coincide here (the
    candidate set is finite and the price is closed-form), so there is
    no [arrive_reference].  [~gc:true] bounds memory exactly as in PD:
    wholly-past slots are flushed into a finished-slice accumulator. *)

open Speedscale_model

type t
(** Mutable online state. *)

val create :
  ?clock:(unit -> float) ->
  ?delta:float ->
  ?gc:bool ->
  power:Power.t ->
  machines:int ->
  unit ->
  t
(** Same conventions as {!Pd.create}: [delta] defaults to
    [Power.delta_star]; raises [Invalid_argument] (prefixed ["Npd"]) for
    [delta <= 0] or [machines < 1]. *)

type decision = Pd_core.decision = {
  job : Job.t;
  accepted : bool;
  lambda : float;
  planned_speed : float;
  assignment : (int * float) list;
      (** for NPD: [[(machine, workload)]] of the booked slot (empty for
          rejected jobs) *)
}

val arrive : t -> Job.t -> decision
(** Process one arrival.  Jobs must arrive in non-decreasing release
    order with distinct ids; raises [Invalid_argument] otherwise.
    Raises [Failure] when a must-finish job has no free slot of usable
    length inside its window. *)

val schedule : t -> Schedule.t
(** One slice per booked slot (plus the flushed accumulator under gc). *)

val lambdas : t -> (int * float) list
(** [(job id, λ_j)] in arrival order. *)

val slots : t -> (float * float * int * float) list list
(** Per machine, the live booked slots [(t0, t1, job, speed)] sorted by
    start time (for inspection/tests).  Under gc, flushed slots no
    longer appear. *)

val stats : t -> Pd_core.stats
(** Cumulative counters: [probes] counts priced candidate slots,
    [intervals] counts scanned gaps, [breakpoints] stays [0]. *)

val mem : t -> Pd_core.mem_stats
(** Residency gauges; [live_intervals] counts live booked slots. *)

val set_observer : t -> (Pd_core.arrival_stats -> unit) option -> unit

val certificate : t -> float
(** The Lagrangian dual bound [g(λ̃)] over the jobs seen so far — a
    lower bound on the preemptive (hence also the non-preemptive)
    optimal cost of the prefix instance.  Raises
    {!Pd_core.Bounded_memory} on a [~gc:true] state. *)

val certificate_result : t -> (float, Pd_core.history_error) result

type result = {
  schedule : Schedule.t;
  cost : Cost.t;
  lambda : float array;  (** indexed by job id *)
  accepted : int list;
  rejected : int list;
  dual_bound : float;  (** [g(λ̃)], lower bound on the preemptive OPT *)
  guarantee : float;
      (** [α^α] — PD's factor, reported for comparison only; NPD claims
          no worst-case guarantee *)
  decisions : decision list;  (** in arrival order *)
}

val run : ?delta:float -> Instance.t -> result
(** Feed all jobs of the instance in release order and assemble the
    result. *)
