open Speedscale_model
open Speedscale_solver

module O = Pd_core.Energy_value

(* The non-preemptive relaxation: every accepted job owns one contiguous
   slot on one machine and runs it at constant speed.  Pricing scans the
   free gaps of every machine inside the job's window; because
   [len * P(w/len)] is strictly decreasing in [len] for alpha > 1, the
   cheapest placement inside a gap always uses the whole gap∩window, so
   each gap contributes exactly one candidate.  The candidate price is
   PD's marginal price at the slot speed, [delta * w * P'(w/len)] — the
   same vocabulary as the preemptive engine, so the Lagrangian dual bound
   over the multipliers stays a valid certificate (non-preemptive
   schedules are a subset of the preemptive relaxation's). *)
module Windows = struct
  type obj = O.t

  let name = "contiguous-slot booking"

  type slot = { s0 : float; s1 : float; job : int; speed : float }

  type t = {
    obj : O.t;
    err : string;
    gc : bool;
    machines : int;
    booked : slot list array;  (* per machine, sorted by start, disjoint *)
    finished : Pd_core.Slab.t;
    mutable flushed_slots : int;
    mutable live_slots : int;
    mutable max_live : int;
    mutable probes_now : int;
    mutable intervals_last : int;
  }

  let create obj ~err ~gc =
    {
      obj;
      err;
      gc;
      machines = O.machines obj;
      booked = Array.make (O.machines obj) [];
      finished = Pd_core.Slab.create ();
      flushed_slots = 0;
      live_slots = 0;
      max_live = 0;
      probes_now = 0;
      intervals_last = 0;
    }

  (* Under gc, park wholly-past slots in the slab.  Slots are sorted and
     disjoint per machine, so the flushable ones form a prefix. *)
  let prepare t (_ : Job.t) ~last_release =
    if t.gc then
      for i = 0 to t.machines - 1 do
        let rec drop = function
          | s :: rest when Pd_core.safely_past ~last_release s.s1 ->
            Pd_core.Slab.push t.finished
              {
                Schedule.proc = i;
                t0 = s.s0;
                t1 = s.s1;
                job = s.job;
                speed = s.speed;
              };
            t.flushed_slots <- t.flushed_slots + 1;
            t.live_slots <- t.live_slots - 1;
            drop rest
          | rest -> rest
        in
        t.booked.(i) <- drop t.booked.(i)
      done

  (* The cheapest candidate slot: scan machines in index order and each
     machine's gaps in time order, keeping the strictly cheapest — a
     deterministic earliest-machine/earliest-gap tie-break. *)
  let best_candidate t (job : Job.t) =
    let w = job.workload in
    let best = ref None in
    let consider i g0 g1 =
      t.intervals_last <- t.intervals_last + 1;
      let len = g1 -. g0 in
      let scale = 1.0 +. Float.max (Float.abs g0) (Float.abs g1) in
      if len > Pd_core.boundary_tol *. scale then begin
        t.probes_now <- t.probes_now + 1;
        let price = O.price_of_speed t.obj ~workload:w (w /. len) in
        match !best with
        | Some (p, _, _, _) when p <= price -> ()
        | _ -> best := Some (price, i, g0, g1)
      end
    in
    for i = 0 to t.machines - 1 do
      let rec walk cursor = function
        | _ when cursor >= job.deadline -> ()
        | [] -> consider i cursor job.deadline
        | s :: rest ->
          if s.s1 <= cursor then walk cursor rest
          else begin
            if s.s0 > cursor then
              consider i cursor (Float.min s.s0 job.deadline);
            walk (Float.max cursor s.s1) rest
          end
      in
      walk job.release t.booked.(i)
    done;
    !best

  let insert_slot t i s =
    let rec ins = function
      | [] -> [ s ]
      | x :: rest -> if x.s0 <= s.s0 then x :: ins rest else s :: x :: rest
    in
    t.booked.(i) <- ins t.booked.(i);
    t.live_slots <- t.live_slots + 1;
    if t.live_slots > t.max_live then t.max_live <- t.live_slots

  (* Both solver flavours coincide: the candidate set is finite and the
     closed-form price needs no iteration, so [reference] is ignored. *)
  let price t (job : Job.t) ~reference:_ =
    t.probes_now <- 0;
    t.intervals_last <- 0;
    let cap = O.acceptance_cap t.obj job in
    match best_candidate t job with
    | None ->
      if Float.is_finite cap then Pd_core.Reject cap
      else
        failwith
          (Fmt.str
             "%s.arrive: job %d must finish but no machine has a free slot \
              inside [%g, %g)"
             t.err job.id job.release job.deadline)
    | Some (price, i, g0, g1) ->
      if Float.is_finite cap && price > cap then Pd_core.Reject cap
      else begin
        insert_slot t i
          { s0 = g0; s1 = g1; job = job.id; speed = job.workload /. (g1 -. g0) };
        Pd_core.Accept (price, [ (i, job.workload) ])
      end

  let take_arrival t =
    {
      Pd_core.r_probes = t.probes_now;
      r_intervals = t.intervals_last;
      r_breakpoints = 0;
    }

  let schedule t ~rejected =
    let finished = Pd_core.Slab.fold (fun acc sl -> sl :: acc) [] t.finished in
    let live =
      List.concat
        (List.init t.machines (fun i ->
             List.map
               (fun s ->
                 {
                   Schedule.proc = i;
                   t0 = s.s0;
                   t1 = s.s1;
                   job = s.job;
                   speed = s.speed;
                 })
               t.booked.(i)))
    in
    Schedule.make ~machines:t.machines ~rejected (live @ finished)

  let mem t =
    {
      Pd_core.r_live = t.live_slots;
      r_max_live = t.max_live;
      r_flushed = t.flushed_slots;
      r_finished_slices = Pd_core.Slab.length t.finished;
    }
end

module C = Pd_core.Lagrangian (O)
module Core = Pd_core.Make (O) (Windows) (C)

type t = Core.t

type decision = Pd_core.decision = {
  job : Job.t;
  accepted : bool;
  lambda : float;
  planned_speed : float;
  assignment : (int * float) list;
}

let create ?clock ?delta ?(gc = false) ~power ~machines () =
  Core.create ?clock ~gc ~err:"Npd"
    (O.make ?delta ~err:"Npd.create" ~power ~machines ())

let arrive = Core.arrive
let schedule = Core.schedule
let lambdas = Core.lambdas
let stats = Core.stats
let mem = Core.mem
let set_observer = Core.set_observer
let certificate = Core.certificate
let certificate_result = Core.certificate_result

let slots t =
  let r = Core.relax t in
  List.init (Array.length r.Windows.booked) (fun i ->
      List.map
        (fun (s : Windows.slot) -> (s.s0, s.s1, s.job, s.speed))
        r.Windows.booked.(i))

type result = {
  schedule : Schedule.t;
  cost : Cost.t;
  lambda : float array;
  accepted : int list;
  rejected : int list;
  dual_bound : float;
  guarantee : float;
  decisions : decision list;
}

let run ?delta (inst : Instance.t) =
  let t = create ?delta ~power:inst.power ~machines:inst.machines () in
  let decisions =
    List.init (Instance.n_jobs inst) (fun i -> arrive t (Instance.job inst i))
  in
  let sched = schedule t in
  let n = Instance.n_jobs inst in
  let lambda = Array.make n 0.0 in
  List.iter (fun (id, l) -> lambda.(id) <- l) (lambdas t);
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  let dual = Dual.evaluate inst tl ~lambda in
  {
    schedule = sched;
    cost = Schedule.cost inst sched;
    lambda;
    accepted = Core.accepted t;
    rejected = Core.rejected t;
    dual_bound = dual.value;
    guarantee = Power.competitive_bound inst.power;
    decisions;
  }
