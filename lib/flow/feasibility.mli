(** Deadline-scheduling feasibility at a fixed speed cap, and the minimum
    feasible speed cap (Horn's flow construction).

    Can all jobs finish on [m] migrating processors if no processor ever
    exceeds speed [s]?  Classical answer: build a flow network

    {v source --w_j--> job_j --s·l_k--> interval_k --m·s·l_k--> sink v}

    (with an arc only when [T_k ⊆ [r_j, d_j)]).  A job may not run on two
    processors at once, which is exactly the [s·l_k] arc capacity; an
    interval offers [m·s·l_k] processing overall.  Feasible iff the max
    flow saturates [Σ w_j] — in which case McNaughton's rule (already used
    in [Chen.slices]) realizes the per-interval assignment.

    The minimum feasible cap [s*] is found by bisection; it is the
    [α → ∞] limit of the energy-optimal schedule's maximum speed and a
    useful provisioning number ("what is the slowest fleet that can keep
    every deadline?"). *)

open Speedscale_model

val feasible : Instance.t -> speed_cap:float -> bool
(** Values are ignored (every job must fit).  [speed_cap >= 0]. *)

val work_assignment :
  Instance.t -> speed_cap:float -> ((int * float) list array * Timeline.t) option
(** On success, per-interval (job, load) lists realizing the cap (feed them
    to [Chen] or McNaughton to get slices), plus the timeline used. *)

val min_speed_cap : ?tol:float -> Instance.t -> float
(** The smallest feasible cap, by bisection (default relative tolerance
    1e-9).  Lower-bounded by the max job density and by
    [total work / (m · busy horizon)]. *)

val schedule : Instance.t -> speed_cap:float -> Schedule.t option
(** Realize a feasible cap as a concrete schedule: the flow's per-interval
    work assignment fed through Chen et al.'s dedicated/pool realization.
    Every slice speed is at most [speed_cap] (up to 1e-6 relative).
    [None] when the cap is infeasible. *)
