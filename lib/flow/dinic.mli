(** Maximum flow (Dinic's algorithm) on small dense networks.

    Substrate for the classical deadline-scheduling feasibility test
    (Horn 1974): whether a set of jobs with windows fits on [m] migrating
    processors at a speed cap reduces to a bipartite job/interval flow
    network.  Dinic runs in [O(V^2 E)] — far more than enough for the
    [O(n^2)]-node networks scheduling produces.

    Capacities are floats; a relative tolerance decides saturation, which
    is safe here because all capacities are sums/products of instance
    data, not results of iterative computation. *)

type t
(** A flow network under construction / after solving. *)

val create : n_nodes:int -> source:int -> sink:int -> t
(** Raises [Invalid_argument] on out-of-range or equal source/sink. *)

val add_edge : t -> src:int -> dst:int -> capacity:float -> unit
(** Adds a directed edge (and its residual reverse edge).  Zero-capacity
    edges are permitted and simply useless.  Raises on negative capacity
    or out-of-range nodes. *)

val max_flow : t -> float
(** Runs Dinic to completion and returns the max-flow value.  The network
    keeps its residual state afterwards; call {!flow_on} to inspect. *)

val flow_on : t -> src:int -> dst:int -> float
(** Total flow currently routed on edges [src -> dst] (0 if none). *)
