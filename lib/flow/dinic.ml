(* Standard Dinic: BFS level graph + blocking-flow DFS with iterator
   pruning.  Edges are stored in one array; edge i and i lxor 1 are a
   forward/residual pair. *)

type edge = { dst : int; mutable cap : float; original : float; src : int }

type t = {
  n : int;
  source : int;
  sink : int;
  mutable edges : edge array;
  mutable n_edges : int;
  adj : int list array;  (* node -> edge indices, reversed order *)
  mutable level : int array;
  mutable iter : int list array;
}

let create ~n_nodes ~source ~sink =
  if n_nodes < 2 || source < 0 || source >= n_nodes || sink < 0
     || sink >= n_nodes || source = sink
  then invalid_arg "Dinic.create: bad node layout";
  {
    n = n_nodes;
    source;
    sink;
    edges = Array.make 16 { dst = 0; cap = 0.0; original = 0.0; src = 0 };
    n_edges = 0;
    adj = Array.make n_nodes [];
    level = [||];
    iter = [||];
  }

let push_edge t e =
  if t.n_edges = Array.length t.edges then begin
    let bigger = Array.make (2 * t.n_edges) e in
    Array.blit t.edges 0 bigger 0 t.n_edges;
    t.edges <- bigger
  end;
  t.edges.(t.n_edges) <- e;
  t.n_edges <- t.n_edges + 1

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Dinic.add_edge: node out of range";
  if Float.is_nan capacity || capacity < 0.0 then
    invalid_arg "Dinic.add_edge: negative capacity";
  let fwd = t.n_edges in
  push_edge t { dst; cap = capacity; original = capacity; src };
  push_edge t { dst = src; cap = 0.0; original = 0.0; src = dst };
  t.adj.(src) <- fwd :: t.adj.(src);
  t.adj.(dst) <- (fwd + 1) :: t.adj.(dst)

let eps = Speedscale_util.Feq.tol_guard

let bfs t =
  let level = Array.make t.n (-1) in
  level.(t.source) <- 0;
  let q = Queue.create () in
  Queue.push t.source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun ei ->
        let e = t.edges.(ei) in
        if e.cap > eps && level.(e.dst) < 0 then begin
          level.(e.dst) <- level.(u) + 1;
          Queue.push e.dst q
        end)
      t.adj.(u)
  done;
  t.level <- level;
  level.(t.sink) >= 0

let rec dfs t u pushed =
  if u = t.sink then pushed
  else begin
    let result = ref 0.0 in
    let rec try_edges () =
      match t.iter.(u) with
      | [] -> ()
      | ei :: rest ->
        let e = t.edges.(ei) in
        if e.cap > eps && t.level.(e.dst) = t.level.(u) + 1 then begin
          let d = dfs t e.dst (Float.min pushed e.cap) in
          if d > eps then begin
            e.cap <- e.cap -. d;
            t.edges.(ei lxor 1).cap <- t.edges.(ei lxor 1).cap +. d;
            result := d
          end
          else begin
            t.iter.(u) <- rest;
            try_edges ()
          end
        end
        else begin
          t.iter.(u) <- rest;
          try_edges ()
        end
    in
    try_edges ();
    !result
  end

let max_flow t =
  let total = ref 0.0 in
  while bfs t do
    t.iter <- Array.copy t.adj;
    let rec pump () =
      let f = dfs t t.source Float.infinity in
      if f > eps then begin
        total := !total +. f;
        pump ()
      end
    in
    pump ()
  done;
  !total

let flow_on t ~src ~dst =
  let acc = ref 0.0 in
  for i = 0 to t.n_edges - 1 do
    if i land 1 = 0 then begin
      let e = t.edges.(i) in
      if e.src = src && e.dst = dst then acc := !acc +. (e.original -. e.cap)
    end
  done;
  !acc
