(** Exact energy-optimal migratory scheduling via flow peeling
    (Angel, Bampis, Kacem and Letsios, "Speed scaling on parallel
    processors with migration").

    Every job must finish (values are ignored); preemption and migration
    are free.  The optimum has a level structure: each job runs at one
    constant speed, and the distinct speeds can be peeled off greedily.
    Each round binary-searches the minimal level [s] at which the
    still-free jobs fit alongside the already-frozen ones — feasibility
    is one max-flow on a {e time-unit} network

    {v source --w_j/s_j--> job_j --l_k--> interval_k --m·l_k--> sink v}

    — then freezes exactly the jobs whose flow is pinched at [s]
    (slowing such a job alone breaks feasibility).  Termination: every
    round freezes at least one job.

    This is the combinatorial, certificate-carrying counterpart of
    {!Speedscale_multi.Mopt} (the projected-gradient solver): [Mopt]
    converges to tolerance, [Migratory] bisects a monotone predicate
    whose answer a max-flow certifies, and {!certify} re-checks the
    claimed optimum after the fact.  E28 uses it as the exact
    denominator for PD's empirical competitive ratio. *)

open Speedscale_model

type result = {
  energy : float;  (** optimal total energy *)
  speeds : float array;  (** per-job constant speed, indexed by job id *)
  levels : float list;  (** distinct peeled levels, outermost first *)
  schedule : Schedule.t;  (** a schedule realizing [energy] *)
}

val solve : Instance.t -> result
(** Raises [Failure] via the bisection helpers only on malformed
    instances (empty windows are already rejected by [Job.make]). *)

val energy : Instance.t -> float
(** [(solve inst).energy]. *)

val schedule : Instance.t -> Schedule.t
(** [(solve inst).schedule].  Validates against the instance with every
    job finished. *)

type certificate = {
  feasible : bool;
      (** the claimed speeds admit a feasible assignment (max-flow
          saturates the total processing time) *)
  pinched : bool;
      (** uniformly slowing all jobs of any one level by the probe
          factor breaks feasibility — no level can be lowered *)
  n_levels : int;  (** number of peeled levels *)
}

val certify : Instance.t -> result -> certificate
(** Post-hoc optimality witness for a {!solve} result; E28 reports it
    alongside the ratio table.  [feasible && pinched] is the CONFIRMED
    condition. *)
