open Speedscale_util
open Speedscale_model

(* Node layout: 0 = source, 1 = sink, 2..2+n-1 = jobs,
   2+n .. 2+n+N-1 = intervals. *)
let build_network (inst : Instance.t) tl ~speed_cap =
  let n = Instance.n_jobs inst in
  let nk = Timeline.n_intervals tl in
  let source = 0 and sink = 1 in
  let job_node j = 2 + j in
  let interval_node k = 2 + n + k in
  let net = Dinic.create ~n_nodes:(2 + n + nk) ~source ~sink in
  for j = 0 to n - 1 do
    Dinic.add_edge net ~src:source ~dst:(job_node j)
      ~capacity:(Instance.job inst j).workload
  done;
  for k = 0 to nk - 1 do
    let lo, hi = Timeline.bounds tl k in
    let lk = hi -. lo in
    Dinic.add_edge net ~src:(interval_node k) ~dst:sink
      ~capacity:(float_of_int inst.machines *. speed_cap *. lk);
    for j = 0 to n - 1 do
      if Job.covers (Instance.job inst j) ~lo ~hi then
        Dinic.add_edge net ~src:(job_node j) ~dst:(interval_node k)
          ~capacity:(speed_cap *. lk)
    done
  done;
  (net, job_node, interval_node)

let total_work (inst : Instance.t) =
  Ksum.sum_by (fun (j : Job.t) -> j.workload) (Array.to_list inst.jobs)

let feasible_with tl (inst : Instance.t) ~speed_cap =
  if speed_cap < 0.0 || Float.is_nan speed_cap then
    invalid_arg "Feasibility.feasible: bad speed cap";
  let net, _, _ = build_network inst tl ~speed_cap in
  let flow = Dinic.max_flow net in
  let needed = total_work inst in
  flow >= needed -. (Feq.tol_snap *. (1.0 +. needed))

let timeline_of (inst : Instance.t) =
  Timeline.of_jobs (Array.to_list inst.jobs)

let feasible inst ~speed_cap = feasible_with (timeline_of inst) inst ~speed_cap

let work_assignment (inst : Instance.t) ~speed_cap =
  let tl = timeline_of inst in
  let net, job_node, interval_node = build_network inst tl ~speed_cap in
  let flow = Dinic.max_flow net in
  let needed = total_work inst in
  if flow < needed -. (Feq.tol_snap *. (1.0 +. needed)) then None
  else begin
    let n = Instance.n_jobs inst in
    let loads = Array.make (Timeline.n_intervals tl) [] in
    for k = 0 to Timeline.n_intervals tl - 1 do
      for j = 0 to n - 1 do
        let f = Dinic.flow_on net ~src:(job_node j) ~dst:(interval_node k) in
        if f > Feq.tol_guard then loads.(k) <- (j, f) :: loads.(k)
      done
    done;
    Some (loads, tl)
  end

let schedule (inst : Instance.t) ~speed_cap =
  match work_assignment inst ~speed_cap with
  | None -> None
  | Some (loads, tl) ->
    let slices = ref [] in
    Array.iteri
      (fun k pairs ->
        if pairs <> [] then begin
          let lo, hi = Timeline.bounds tl k in
          let chen =
            Speedscale_chen.Chen.build ~machines:inst.machines
              ~length:(hi -. lo) pairs
          in
          slices := Speedscale_chen.Chen.slices chen ~t0:lo ~t1:hi @ !slices
        end)
      loads;
    Some (Schedule.make ~machines:inst.machines ~rejected:[] !slices)

let min_speed_cap ?(tol = Feq.tol_snap) (inst : Instance.t) =
  let tl = timeline_of inst in
  (* certified lower bounds: max single-job density; total work over the
     full m-machine capacity of the horizon *)
  let density_lb =
    Array.fold_left
      (fun acc j -> Float.max acc (Job.density j))
      0.0 inst.jobs
  in
  let lo_t, hi_t = Instance.horizon inst in
  let capacity_lb =
    total_work inst /. (float_of_int inst.machines *. (hi_t -. lo_t))
  in
  let lo = Float.max density_lb capacity_lb in
  if feasible_with tl inst ~speed_cap:lo then lo
  else begin
    let hi =
      Bisect.grow_bracket
        ~f:(fun s -> if feasible_with tl inst ~speed_cap:s then 1.0 else 0.0)
        ~target:1.0 ~lo:0.0 ~init:(Float.max lo Feq.tol_snap) ()
    in
    Bisect.monotone_inverse ~tol
      ~f:(fun s -> if feasible_with tl inst ~speed_cap:s then 1.0 else 0.0)
      ~target:1.0 ~lo ~hi ()
  end
