open Speedscale_util
open Speedscale_model

(* Time-unit flow network: job [j] needs [times.(j)] processing time
   (workload over its assigned speed), an interval offers [l_k] per
   machine and [m * l_k] overall.  Node layout mirrors [Feasibility]:
   0 = source, 1 = sink, 2..2+n-1 = jobs, 2+n.. = intervals. *)
let build_network (inst : Instance.t) tl ~times =
  let n = Instance.n_jobs inst in
  let nk = Timeline.n_intervals tl in
  let source = 0 and sink = 1 in
  let job_node j = 2 + j in
  let interval_node k = 2 + n + k in
  let net = Dinic.create ~n_nodes:(2 + n + nk) ~source ~sink in
  for j = 0 to n - 1 do
    Dinic.add_edge net ~src:source ~dst:(job_node j) ~capacity:times.(j)
  done;
  for k = 0 to nk - 1 do
    let lo, hi = Timeline.bounds tl k in
    let lk = hi -. lo in
    Dinic.add_edge net ~src:(interval_node k) ~dst:sink
      ~capacity:(float_of_int inst.machines *. lk);
    for j = 0 to n - 1 do
      if Job.covers (Instance.job inst j) ~lo ~hi then
        Dinic.add_edge net ~src:(job_node j) ~dst:(interval_node k)
          ~capacity:lk
    done
  done;
  (net, job_node, interval_node)

let feasible_times ?(tol = Feq.tol_snap) (inst : Instance.t) tl ~times =
  let net, _, _ = build_network inst tl ~times in
  let flow = Dinic.max_flow net in
  let needed = Ksum.sum_array times in
  flow >= needed -. (tol *. (1.0 +. needed))

let times_at (inst : Instance.t) speeds ~free_level =
  Array.mapi
    (fun j speed ->
      let w = (Instance.job inst j).workload in
      match speed with Some s -> w /. s | None -> w /. free_level)
    speeds

(* Minimal level [s] at which the still-free jobs fit alongside the
   frozen ones, by bisection on the monotone feasibility predicate. *)
let min_free_level (inst : Instance.t) tl speeds =
  let f s =
    if feasible_times inst tl ~times:(times_at inst speeds ~free_level:s)
    then 1.0
    else 0.0
  in
  (* certified lower bound: no free job can run slower than its density *)
  let density_lb = ref 0.0 in
  Array.iteri
    (fun j job ->
      if speeds.(j) = None then
        density_lb := Float.max !density_lb (Job.density job))
    inst.jobs;
  let density_lb = !density_lb in
  let lo = Float.max density_lb Feq.tol_snap in
  let level =
    if Float.equal (f lo) 1.0 then lo
    else begin
      let hi = Bisect.grow_bracket ~f ~target:1.0 ~lo:0.0 ~init:lo () in
      Bisect.monotone_inverse ~tol:Feq.tol_snap ~f ~target:1.0 ~lo ~hi ()
    end
  in
  (* The bisected level is feasible only up to the round's own relative
     tolerance — a deficit that is harmless now (total demand is large)
     but poisonous later, when the frozen jobs' demand is compared
     against a much smaller total.  Certify the level against the far
     stricter guard tolerance, nudging up geometrically: any residual
     deficit is then below every later round's acceptance margin. *)
  let strictly_feasible s =
    feasible_times ~tol:Feq.tol_guard inst tl
      ~times:(times_at inst speeds ~free_level:s)
  in
  let rec certify level step budget =
    if strictly_feasible level then level
    else if budget = 0 then
      failwith "Migratory.solve: could not certify a feasible level"
    else certify (level *. (1.0 +. step)) (2.0 *. step) (budget - 1)
  in
  certify level (16.0 *. Feq.tol_snap) 24

(* A free job is critical at level [s] when slowing it alone by the probe
   factor theta breaks feasibility — the flow is pinched through its
   window, so the optimum must run it at exactly [s]. *)
let theta = 100.0 *. Feq.tol_loose

let critical_jobs (inst : Instance.t) tl speeds ~level =
  let n = Instance.n_jobs inst in
  let critical = ref [] in
  for j = n - 1 downto 0 do
    if speeds.(j) = None then begin
      let times = times_at inst speeds ~free_level:level in
      times.(j) <- (Instance.job inst j).workload /. (level *. (1.0 -. theta));
      if not (feasible_times inst tl ~times) then critical := j :: !critical
    end
  done;
  !critical

type result = {
  energy : float;
  speeds : float array;
  levels : float list;
  schedule : Schedule.t;
}

let solve (inst : Instance.t) =
  let n = Instance.n_jobs inst in
  if n = 0 then
    {
      energy = 0.0;
      speeds = [||];
      levels = [];
      schedule = Schedule.make ~machines:inst.machines ~rejected:[] [];
    }
  else begin
    let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
    let speeds = Array.make n None in
    let levels = ref [] in
    let remaining = ref n in
    while !remaining > 0 do
      let level = min_free_level inst tl speeds in
      levels := level :: !levels;
      let freeze js =
        List.iter
          (fun j ->
            speeds.(j) <- Some level;
            remaining := !remaining - 1)
          js
      in
      match critical_jobs inst tl speeds ~level with
      | [] ->
        (* numerically nothing pinches individually (ties): the level is
           still minimal, so every remaining job runs at it *)
        let all_free = ref [] in
        for j = n - 1 downto 0 do
          if speeds.(j) = None then all_free := j :: !all_free
        done;
        freeze !all_free
      | critical -> freeze critical
    done;
    let speeds =
      Array.map
        (function
          | Some s -> s
          | None -> failwith "Migratory.solve: job left without a level")
        speeds
    in
    let energy =
      Ksum.sum
        (List.init n (fun j ->
             let w = (Instance.job inst j).workload in
             Power.energy inst.power ~speed:speeds.(j)
               ~duration:(w /. speeds.(j))))
    in
    (* realize: one more flow at the final times, then hand each
       interval's work to Chen (same realization path as Feasibility) *)
    let times = Array.mapi (fun j s -> (Instance.job inst j).workload /. s) speeds in
    let net, job_node, interval_node = build_network inst tl ~times in
    ignore (Dinic.max_flow net);
    let slices = ref [] in
    for k = 0 to Timeline.n_intervals tl - 1 do
      let lo, hi = Timeline.bounds tl k in
      let pairs = ref [] in
      for j = 0 to n - 1 do
        if Job.covers (Instance.job inst j) ~lo ~hi then begin
          let t = Dinic.flow_on net ~src:(job_node j) ~dst:(interval_node k) in
          let load = t *. speeds.(j) in
          if load > Feq.tol_guard then pairs := (j, load) :: !pairs
        end
      done;
      if !pairs <> [] then begin
        let chen =
          Speedscale_chen.Chen.build ~machines:inst.machines ~length:(hi -. lo)
            !pairs
        in
        slices := Speedscale_chen.Chen.slices chen ~t0:lo ~t1:hi @ !slices
      end
    done;
    {
      energy;
      speeds;
      levels = List.rev !levels;
      schedule = Schedule.make ~machines:inst.machines ~rejected:[] !slices;
    }
  end

let energy inst = (solve inst).energy
let schedule inst = (solve inst).schedule

type certificate = {
  feasible : bool;
  pinched : bool;
  n_levels : int;
}

let certify (inst : Instance.t) (r : result) =
  let n = Instance.n_jobs inst in
  if n = 0 then { feasible = true; pinched = true; n_levels = 0 }
  else begin
    let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
    let times =
      Array.mapi (fun j s -> (Instance.job inst j).workload /. s) r.speeds
    in
    let feasible = feasible_times inst tl ~times in
    (* optimality witness: uniformly slowing any whole level breaks
       feasibility, so no level can be lowered — together with the
       per-round minimality this pins the speeds *)
    let pinched =
      List.for_all
        (fun level ->
          let slowed =
            Array.mapi
              (fun j t ->
                if Feq.approx r.speeds.(j) level then t /. (1.0 -. theta)
                else t)
              times
          in
          not (feasible_times inst tl ~times:slowed))
        r.levels
    in
    { feasible; pinched; n_levels = List.length r.levels }
  end
