let phi = (sqrt 5.0 -. 1.0) /. 2.0 (* 1/golden ratio, ~0.618 *)

let minimize ?(iterations = 200) ?(tol = 1e-10) ~f ~lo ~hi () =
  if lo > hi then invalid_arg "Golden.minimize: lo > hi";
  let rec loop a b x1 x2 f1 f2 k =
    if k = 0 || b -. a <= tol *. (1.0 +. Float.abs a +. Float.abs b) then begin
      let x = 0.5 *. (a +. b) in
      (x, f x)
    end
    else if f1 < f2 then
      (* minimum is in [a, x2] *)
      let x1' = a +. ((1.0 -. phi) *. (x2 -. a)) in
      loop a x2 x1' x1 (f x1') f1 (k - 1)
    else
      let x2' = x1 +. (phi *. (b -. x1)) in
      loop x1 b x2 x2' f2 (f x2') (k - 1)
  in
  if hi -. lo <= tol then (lo, f lo)
  else begin
    let x1 = lo +. ((1.0 -. phi) *. (hi -. lo)) in
    let x2 = lo +. (phi *. (hi -. lo)) in
    loop lo hi x1 x2 (f x1) (f x2) iterations
  end
