type t = { mutable sum : float; mutable comp : float }

let create () = { sum = 0.0; comp = 0.0 }

(* Neumaier's variant: also correct when the addend dominates the sum. *)
let add acc x =
  let t = acc.sum +. x in
  if Float.abs acc.sum >= Float.abs x then
    acc.comp <- acc.comp +. (acc.sum -. t +. x)
  else acc.comp <- acc.comp +. (x -. t +. acc.sum);
  acc.sum <- t

let total acc = acc.sum +. acc.comp

let sum xs =
  let acc = create () in
  List.iter (add acc) xs;
  total acc

let sum_array xs =
  let acc = create () in
  Array.iter (add acc) xs;
  total acc

let sum_by f xs =
  let acc = create () in
  List.iter (fun x -> add acc (f x)) xs;
  total acc
