type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
}

let fail_empty name = invalid_arg (name ^ ": empty sample")

let mean = function
  | [] -> fail_empty "Stats.mean"
  | xs -> Ksum.sum xs /. float_of_int (List.length xs)

let max_of = function
  | [] -> fail_empty "Stats.max_of"
  | x :: xs -> List.fold_left Float.max x xs

let min_of = function
  | [] -> fail_empty "Stats.min_of"
  | x :: xs -> List.fold_left Float.min x xs

let percentile p = function
  | [] -> fail_empty "Stats.percentile"
  | xs ->
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    let pos = p *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor pos) in
    let frac = pos -. float_of_int i in
    if i >= n - 1 then arr.(n - 1)
    else ((1.0 -. frac) *. arr.(i)) +. (frac *. arr.(i + 1))

let summarize xs =
  match xs with
  | [] -> fail_empty "Stats.summarize"
  | _ ->
    let n = List.length xs in
    let mu = mean xs in
    let var =
      if n <= 1 then 0.0
      else Ksum.sum_by (fun x -> (x -. mu) ** 2.0) xs /. float_of_int (n - 1)
    in
    {
      count = n;
      mean = mu;
      stddev = sqrt var;
      min = min_of xs;
      max = max_of xs;
      p50 = percentile 0.5 xs;
      p90 = percentile 0.9 xs;
    }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.6g sd=%.3g min=%.6g p50=%.6g p90=%.6g max=%.6g" s.count
    s.mean s.stddev s.min s.p50 s.p90 s.max
