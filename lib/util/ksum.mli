(** Compensated (Kahan–Babuška) summation.

    Energy totals are sums of many small positive terms (one per job per
    atomic interval); naive summation loses digits that matter when we
    compare a schedule's cost against a dual bound with 1e-9 tolerances. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** Fresh accumulator holding 0. *)

val add : t -> float -> unit
(** [add acc x] accumulates [x] with Neumaier's correction. *)

val total : t -> float
(** Current compensated total. *)

val sum : float list -> float
(** One-shot compensated sum of a list. *)

val sum_array : float array -> float
(** One-shot compensated sum of an array. *)

val sum_by : ('a -> float) -> 'a list -> float
(** [sum_by f xs] is the compensated sum of [f x] for [x] in [xs]. *)
