(** Root finding and monotone inversion by bisection.

    Bisection is the workhorse of this repository: Chen et al.'s schedule
    makes speeds piecewise-smooth but only piecewise, so derivative-based
    root finding is unreliable, while every function we need to invert
    (speed as a function of added load, assigned work as a function of the
    price level) is continuous and monotone.  Bisection gives guaranteed
    bracketing at a predictable cost of ~50 evaluations for full double
    precision. *)

val default_iterations : int
(** Iteration budget, 200 — enough to exhaust double precision on any
    bracket. *)

val root :
  ?iterations:int ->
  ?tol:float ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** [root ~f ~lo ~hi ()] finds [x] in [[lo, hi]] with [f x = 0], assuming
    [f] is continuous and [f lo] and [f hi] have opposite (or zero) signs.
    Stops when the bracket width is below [tol] (absolute + relative) or the
    iteration budget is exhausted.  Raises [Invalid_argument] when the
    initial bracket does not straddle a sign change. *)

val monotone_inverse :
  ?iterations:int ->
  ?tol:float ->
  f:(float -> float) ->
  target:float ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** [monotone_inverse ~f ~target ~lo ~hi ()] finds the {e smallest} [x]
    with [f x = target] for a nondecreasing continuous [f] (important when
    [f] plateaus at the target, as PD's saturating assignment function
    does).  If [f lo >= target] returns [lo].  If [f hi < target] the
    target is {e not} in the bracket and the function raises
    [Invalid_argument] — callers that want saturating semantics must test
    [f hi] themselves and decide what a clamp means at their level (PD,
    for instance, clamps the price to the job's value, which is a
    modelling decision, not a numerical one).  Silent clamping hid a real
    bug in PD's arrival path; see DESIGN.md section 5. *)

val grow_bracket :
  ?factor:float ->
  ?max_doublings:int ->
  f:(float -> float) ->
  target:float ->
  lo:float ->
  init:float ->
  unit ->
  float
(** [grow_bracket ~f ~target ~lo ~init ()] returns a value
    [hi >= max lo init] such that [f hi >= target], doubling geometrically
    from [max lo init].  [lo] is the bracket floor: the search never probes
    below it, so a caller who already knows the answer exceeds [lo] starts
    there even when its [init] estimate is smaller.  Raises [Failure] if
    the budget of doublings is exhausted — which for our monotone unbounded
    functions indicates a programming error upstream. *)
