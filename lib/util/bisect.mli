(** Root finding and monotone inversion by bisection.

    Bisection is the workhorse of this repository: Chen et al.'s schedule
    makes speeds piecewise-smooth but only piecewise, so derivative-based
    root finding is unreliable, while every function we need to invert
    (speed as a function of added load, assigned work as a function of the
    price level) is continuous and monotone.  Bisection gives guaranteed
    bracketing at a predictable cost of ~50 evaluations for full double
    precision. *)

val default_iterations : int
(** Iteration budget, 200 — enough to exhaust double precision on any
    bracket. *)

val root :
  ?iterations:int ->
  ?tol:float ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** [root ~f ~lo ~hi ()] finds [x] in [[lo, hi]] with [f x = 0], assuming
    [f] is continuous and [f lo] and [f hi] have opposite (or zero) signs.
    Stops when the bracket width is below [tol] (absolute + relative) or the
    iteration budget is exhausted.  Raises [Invalid_argument] when the
    initial bracket does not straddle a sign change. *)

val monotone_inverse :
  ?iterations:int ->
  ?tol:float ->
  f:(float -> float) ->
  target:float ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** [monotone_inverse ~f ~target ~lo ~hi ()] finds the {e smallest} [x]
    with [f x = target] for a nondecreasing continuous [f] (important when
    [f] plateaus at the target, as PD's saturating assignment function
    does).  If [f lo >= target] returns [lo]; if [f hi < target] returns
    [hi] (saturating semantics: callers clamp to the bracket, which is what
    water-filling needs). *)

val grow_bracket :
  ?factor:float ->
  ?max_doublings:int ->
  f:(float -> float) ->
  target:float ->
  lo:float ->
  init:float ->
  unit ->
  float
(** [grow_bracket ~f ~target ~lo ~init ()] returns a value [hi >= init] such
    that [f hi >= target], doubling geometrically from [init].  Raises
    [Failure] if the budget of doublings is exhausted — which for our
    monotone unbounded functions indicates a programming error upstream. *)
