type t = {
  title : string;
  header : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~header = { title; header; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let pad_to n row =
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left
      (fun acc r -> max acc (List.length r))
      (List.length t.header) rows
  in
  let header = pad_to ncols t.header in
  let rows = List.map (pad_to ncols) rows in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row
  in
  note_widths header;
  List.iter note_widths rows;
  let trim_end s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let render_row row =
    row
    |> List.mapi (fun i c -> Fmt.str "%-*s" widths.(i) c)
    |> String.concat "  "
    |> trim_end
  and total_width =
    Array.fold_left ( + ) 0 widths + (2 * Stdlib.max 0 (ncols - 1))
  in
  let rule = String.make (max total_width (String.length t.title)) '-' in
  String.concat "\n"
    ([ t.title; rule; render_row header; rule ]
    @ List.map render_row rows
    @ [ rule ])

let print t = Fmt.pr "%s@.@." (render t)

let cell_f ?(digits = 4) v = Fmt.str "%.*f" digits v
let cell_g v = Fmt.str "%.6g" v

let bar ~width ~max_value v =
  if max_value <= 0.0 then ""
  else
    let n =
      int_of_float (Float.round (float_of_int width *. v /. max_value))
    in
    String.make (min width (max 0 n)) '#'

let rule n = String.make n '-'
