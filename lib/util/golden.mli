(** Golden-section search: derivative-free minimization of a unimodal
    function on an interval.

    Used where a one-dimensional convex (hence unimodal) quantity must be
    minimized without a usable derivative — e.g. tuning a scalar knob of a
    schedule against a black-box cost.  Guaranteed bracket shrinkage by
    the golden ratio per evaluation; ~80 evaluations exhaust double
    precision. *)

val minimize :
  ?iterations:int ->
  ?tol:float ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float * float
(** [minimize ~f ~lo ~hi ()] returns the pair (argmin, min value) for a
    unimodal [f] on [[lo, hi]].  Defaults: 200 iterations, relative
    tolerance 1e-10.  Raises [Invalid_argument] if [lo > hi]. *)
