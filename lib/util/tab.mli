(** Plain-text table and bar-figure rendering for the benchmark harness.

    The paper is a theory paper, so our "figures" are printed schedules and
    ratio curves; this module renders them as aligned ASCII so the bench
    output is diffable and self-contained. *)

type t

val create : title:string -> header:string list -> t
(** A table with a caption row and column headers. *)

val add_row : t -> string list -> unit
(** Appends a row; short rows are padded with empty cells. *)

val render : t -> string
(** Aligned ASCII rendering with a title rule. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val cell_f : ?digits:int -> float -> string
(** Fixed-width float cell, default 4 significant digits after the point. *)

val cell_g : float -> string
(** Shortest-form float cell ([%.6g]). *)

val bar : width:int -> max_value:float -> float -> string
(** [bar ~width ~max_value v] renders a horizontal bar of ['#'] proportional
    to [v / max_value], for ASCII "figures". *)

val rule : int -> string
(** A horizontal rule of ['-'] of the given width. *)
