(** Descriptive statistics over float samples, used by the benchmark
    harness to aggregate per-seed results into table rows. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1); 0 for n <= 1 *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val mean : float list -> float
val max_of : float list -> float
val min_of : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,1], linear interpolation between order
    statistics.  Raises [Invalid_argument] on the empty list. *)

val pp_summary : Format.formatter -> summary -> unit
