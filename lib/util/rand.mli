(** Deterministic random variate generation on top of [Random.State].

    All workload generators take an explicit state so that every test and
    benchmark run is reproducible from a fixed seed. *)

type t = Random.State.t

val make : int -> t
(** [make seed] creates an isolated generator. *)

val split : t -> t
(** [split st] derives an independent child generator; the parent advances.
    Used to give each instance in a sweep its own stream. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform on [[lo, hi)].  Requires [lo <= hi]. *)

val exponential : t -> rate:float -> float
(** Exponential with the given [rate] (mean [1/rate]).  Requires
    [rate > 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto with minimum [scale] and tail index [shape]; heavy-tailed job
    sizes.  Requires both positive. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal variate [exp (mu + sigma * N(0,1))]. *)

val choice : t -> 'a array -> 'a
(** Uniformly random element.  Requires a nonempty array. *)
