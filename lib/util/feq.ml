let default_atol = 1e-9
let default_rtol = 1e-9

(* The three tolerance regimes the tree uses, as named constants so
   every module agrees bit-for-bit (the magic-tolerance lint rule
   polices raw literals outside this file). *)
let tol_snap = 1e-9
let tol_guard = 1e-12
let tol_loose = 1e-6
let tol_step = 1e-13
let tol_dust = 1e-15

let approx ?(atol = default_atol) ?(rtol = default_rtol) x y =
  let scale = Float.max (Float.abs x) (Float.abs y) in
  Float.abs (x -. y) <= atol +. (rtol *. scale)

let leq ?(atol = default_atol) ?(rtol = default_rtol) x y =
  x <= y || approx ~atol ~rtol x y

let geq ?(atol = default_atol) ?(rtol = default_rtol) x y = leq ~atol ~rtol y x

let lt ?(atol = default_atol) ?(rtol = default_rtol) x y =
  x < y && not (approx ~atol ~rtol x y)

let gt ?(atol = default_atol) ?(rtol = default_rtol) x y = lt ~atol ~rtol y x
let is_zero ?(atol = default_atol) x = Float.abs x <= atol

let clamp ~lo ~hi x =
  if x < lo then lo else if x > hi then hi else x

let finite_or_fail ctx x =
  if Float.is_finite x then x
  else invalid_arg (Fmt.str "%s: non-finite value %h" ctx x)
