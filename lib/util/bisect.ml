let default_iterations = 200

let bracket_done ~tol lo hi =
  hi -. lo <= tol *. (1.0 +. Float.abs lo +. Float.abs hi)

let root ?(iterations = default_iterations) ?(tol = 1e-13) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if Float.equal flo 0.0 then lo
  else if Float.equal fhi 0.0 then hi
  else if flo *. fhi > 0.0 then
    invalid_arg
      (Fmt.str "Bisect.root: no sign change on [%g, %g] (f: %g, %g)" lo
         hi flo fhi)
  else
    (* Invariant: f changes sign on [lo, hi]; [sign_lo] is the sign of f lo. *)
    let sign_lo = flo < 0.0 in
    let rec loop lo hi k =
      if k = 0 || bracket_done ~tol lo hi then 0.5 *. (lo +. hi)
      else
        let mid = 0.5 *. (lo +. hi) in
        let fm = f mid in
        if Float.equal fm 0.0 then mid
        else if fm < 0.0 = sign_lo then loop mid hi (k - 1)
        else loop lo mid (k - 1)
    in
    loop lo hi iterations

let monotone_inverse ?(iterations = default_iterations) ?(tol = 1e-13) ~f
    ~target ~lo ~hi () =
  if f lo >= target then lo
  else
    let fhi = f hi in
    if fhi < target then
      invalid_arg
        (Fmt.str
           "Bisect.monotone_inverse: target %g out of bracket [%g, %g] (f hi \
            = %g)"
           target lo hi fhi)
    else
      let rec loop lo hi k =
        if k = 0 || bracket_done ~tol lo hi then 0.5 *. (lo +. hi)
        else
          let mid = 0.5 *. (lo +. hi) in
          if f mid < target then loop mid hi (k - 1) else loop lo mid (k - 1)
      in
      loop lo hi iterations

let grow_bracket ?(factor = 2.0) ?(max_doublings = 200) ~f ~target ~lo ~init
    () =
  let rec loop hi k =
    if f hi >= target then hi
    else if k = 0 then
      failwith
        (Fmt.str "Bisect.grow_bracket: target %g unreachable at %g"
           target hi)
    else loop (hi *. factor) (k - 1)
  in
  loop (Float.max (Float.max init lo) 1e-12) max_doublings
