type t = Random.State.t

let make seed = Random.State.make [| seed; 0x5eed; seed lxor 0x9e3779b9 |]

let split st =
  Random.State.make
    [| Random.State.bits st; Random.State.bits st; Random.State.bits st |]

let uniform st ~lo ~hi =
  if lo > hi then invalid_arg "Rand.uniform: lo > hi";
  lo +. Random.State.float st (hi -. lo)

let exponential st ~rate =
  if rate <= 0.0 then invalid_arg "Rand.exponential: rate <= 0";
  let u = 1.0 -. Random.State.float st 1.0 in
  -.log u /. rate

let pareto st ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rand.pareto: args <= 0";
  let u = 1.0 -. Random.State.float st 1.0 in
  (* slint: allow unsafe-pow -- u is in (0, 1] by construction *)
  scale /. (u ** (1.0 /. shape))

(* Box-Muller; we only need one variate per call and accept the waste. *)
let lognormal st ~mu ~sigma =
  let u1 = 1.0 -. Random.State.float st 1.0 in
  let u2 = Random.State.float st 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

let choice st arr =
  if Array.length arr = 0 then invalid_arg "Rand.choice: empty array";
  arr.(Random.State.int st (Array.length arr))
