(** Tolerant floating-point comparisons.

    All algorithms in this repository work on continuous quantities (times,
    speeds, workloads, prices).  Exact float equality is meaningless after a
    few arithmetic operations, so every comparison that carries semantic
    weight goes through this module.  The default tolerance combines an
    absolute and a relative component: [x] and [y] are considered equal when
    [|x - y| <= atol + rtol * max |x| |y|]. *)

val default_atol : float
(** Default absolute tolerance, [1e-9]. *)

val default_rtol : float
(** Default relative tolerance, [1e-9]. *)

val tol_snap : float
(** [1e-9] — boundary-snapping / comparison tolerance: when two times,
    loads or prices within [tol_snap] are treated as the same point.
    Equals {!default_atol}; the distinct name marks intent. *)

val tol_guard : float
(** [1e-12] — guard tolerance for degeneracy tests three orders tighter
    than {!tol_snap}: zero-length intervals, vanishing denominators,
    bracketing-segment endpoints. *)

val tol_loose : float
(** [1e-6] — loose tolerance for derived quantities that accumulate
    rounding over many operations (schedule energies, certificate
    slack). *)

val tol_step : float
(** [1e-13] — a simulation time step shorter than this is rounding
    residue: emitting a slice for it would create measure-zero
    work. *)

val tol_dust : float
(** [1e-15] — a slice duration below this is dust left by boundary
    subtraction; schedules drop such slices rather than carry them. *)

val approx : ?atol:float -> ?rtol:float -> float -> float -> bool
(** [approx x y] is [true] when [x] and [y] are equal up to tolerance. *)

val leq : ?atol:float -> ?rtol:float -> float -> float -> bool
(** [leq x y] is [true] when [x <= y] up to tolerance ([x] may exceed [y] by
    no more than the tolerance). *)

val geq : ?atol:float -> ?rtol:float -> float -> float -> bool
(** [geq x y] is [leq y x]. *)

val lt : ?atol:float -> ?rtol:float -> float -> float -> bool
(** [lt x y] is strict: [x < y] and not [approx x y]. *)

val gt : ?atol:float -> ?rtol:float -> float -> float -> bool
(** [gt x y] is [lt y x]. *)

val is_zero : ?atol:float -> float -> bool
(** [is_zero x] tests [|x| <= atol] (relative part is meaningless at 0). *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] is [x] forced into the closed interval [[lo, hi]]. *)

val finite_or_fail : string -> float -> float
(** [finite_or_fail ctx x] returns [x] or raises [Invalid_argument] with
    context [ctx] if [x] is [nan] or infinite.  Used to fail fast at module
    boundaries rather than propagate poisoned values. *)
