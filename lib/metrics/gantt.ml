open Speedscale_model

let job_glyph id =
  if id < 0 then '?'
  else if id < 10 then Char.chr (Char.code '0' + id)
  else if id < 36 then Char.chr (Char.code 'a' + id - 10)
  else '*'

(* speed ramp glyphs, slowest to fastest *)
let speed_glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '#'; '@' |]

let render ?(width = 72) ?(show_speed = true) (s : Schedule.t) =
  match s.slices with
  | [] -> "(empty schedule)"
  | first :: rest ->
    let lo, hi, smax =
      List.fold_left
        (fun (lo, hi, smax) (x : Schedule.slice) ->
          (Float.min lo x.t0, Float.max hi x.t1, Float.max smax x.speed))
        (first.t0, first.t1, first.speed)
        rest
    in
    let span = hi -. lo in
    let cell_time c = lo +. ((float_of_int c +. 0.5) *. span /. float_of_int width) in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Fmt.str "time %.3g .. %.3g  (%d columns, %.3g per cell)\n" lo hi
         width (span /. float_of_int width));
    for proc = 0 to s.machines - 1 do
      let jobs_row = Bytes.make width '.' in
      let speed_row = Bytes.make width ' ' in
      for c = 0 to width - 1 do
        let t = cell_time c in
        match
          List.find_opt
            (fun (x : Schedule.slice) ->
              x.proc = proc && x.t0 <= t && t < x.t1)
            s.slices
        with
        | None -> ()
        | Some x ->
          Bytes.set jobs_row c (job_glyph x.job);
          if smax > 0.0 then begin
            let idx =
              int_of_float
                (Float.round
                   (x.speed /. smax
                   *. float_of_int (Array.length speed_glyphs - 1)))
            in
            Bytes.set speed_row c
              speed_glyphs.(max 0 (min (Array.length speed_glyphs - 1) idx))
          end
      done;
      Buffer.add_string buf
        (Fmt.str "p%-2d |%s|\n" proc (Bytes.to_string jobs_row));
      if show_speed then
        Buffer.add_string buf
          (Fmt.str "    |%s| speed (max %.3g)\n"
             (Bytes.to_string speed_row) smax)
    done;
    Buffer.contents buf
