open Speedscale_util
open Speedscale_model

type t = {
  n_slices : int;
  preemptions : int;
  migrations : int;
  busy_time : float;
  max_speed : float;
  avg_speed : float;
  utilization : float;
}

let gap_tol = Feq.tol_snap

let of_schedule (s : Schedule.t) =
  let slices = s.slices in
  let by_job = Hashtbl.create 16 in
  List.iter
    (fun (sl : Schedule.slice) ->
      Hashtbl.replace by_job sl.job
        (sl :: Option.value ~default:[] (Hashtbl.find_opt by_job sl.job)))
    slices;
  let preemptions = ref 0 and migrations = ref 0 in
  Hashtbl.iter
    (fun _ group ->
      let sorted =
        List.sort (fun (a : Schedule.slice) b -> Float.compare a.t0 b.t0) group
      in
      let rec scan = function
        | (a : Schedule.slice) :: (b :: _ as rest) ->
          let gap = b.t0 -. a.t1 in
          if gap > gap_tol *. (1.0 +. Float.abs a.t1) then incr preemptions;
          if b.proc <> a.proc then incr migrations;
          scan rest
        | _ -> ()
      in
      scan sorted)
    by_job;
  let busy_time = Ksum.sum_by (fun (sl : Schedule.slice) -> sl.t1 -. sl.t0) slices in
  let work =
    Ksum.sum_by (fun (sl : Schedule.slice) -> (sl.t1 -. sl.t0) *. sl.speed) slices
  in
  let max_speed =
    List.fold_left (fun acc (sl : Schedule.slice) -> Float.max acc sl.speed) 0.0
      slices
  in
  let span =
    match slices with
    | [] -> 0.0
    | sl :: rest ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (x : Schedule.slice) ->
            (Float.min lo x.t0, Float.max hi x.t1))
          (sl.t0, sl.t1) rest
      in
      hi -. lo
  in
  {
    n_slices = List.length slices;
    preemptions = !preemptions;
    migrations = !migrations;
    busy_time;
    max_speed;
    avg_speed = (if busy_time > 0.0 then work /. busy_time else 0.0);
    utilization =
      (if span > 0.0 then busy_time /. (float_of_int s.machines *. span)
       else 0.0);
  }

let pp ppf t =
  Format.fprintf ppf
    "slices=%d preempt=%d migrate=%d busy=%.3g maxspeed=%.3g avgspeed=%.3g util=%.3g"
    t.n_slices t.preemptions t.migrations t.busy_time t.max_speed t.avg_speed
    t.utilization
