(** Structural statistics of schedules — the systems-facing counterpart of
    the cost metrics.

    The model allows unlimited preemption and migration for free, but real
    systems pay for both; these statistics let the benchmark harness show
    {e how much} of that freedom each algorithm actually uses (PD's
    never-redistribute rule keeps its schedules noticeably calmer than
    replanning algorithms like OA). *)

open Speedscale_model

type t = {
  n_slices : int;
  preemptions : int;
      (** times a job is interrupted and later resumed (anywhere) *)
  migrations : int;
      (** times a job resumes on a different processor than it last ran *)
  busy_time : float;  (** total processor-seconds at positive speed *)
  max_speed : float;
  avg_speed : float;  (** work-weighted: total work / busy time *)
  utilization : float;
      (** busy time / (machines × makespan window); 0 for empty schedules *)
}

val of_schedule : Schedule.t -> t

val pp : Format.formatter -> t -> unit
