open Speedscale_util

type sample = { cost : float; lower_bound : float; ratio : float }

let make ~cost ~lower_bound =
  if not (lower_bound > 0.0) then
    invalid_arg
      (Fmt.str "Ratio.make: lower bound must be > 0 (got %g)"
         lower_bound);
  { cost; lower_bound; ratio = cost /. lower_bound }

let ratios samples = List.map (fun s -> s.ratio) samples

type aggregate = {
  count : int;
  mean_ratio : float;
  max_ratio : float;
  p90_ratio : float;
  violations : int;
}

let aggregate ~guarantee samples =
  let rs = ratios samples in
  if rs = [] then invalid_arg "Ratio.aggregate: no samples";
  {
    count = List.length rs;
    mean_ratio = Stats.mean rs;
    max_ratio = Stats.max_of rs;
    p90_ratio = Stats.percentile 0.9 rs;
    violations =
      List.length
        (List.filter (fun r -> r > guarantee +. (Feq.tol_loose *. (1.0 +. guarantee))) rs);
  }

let pp_aggregate ppf a =
  Format.fprintf ppf "n=%d mean=%.4f p90=%.4f max=%.4f violations=%d" a.count
    a.mean_ratio a.p90_ratio a.max_ratio a.violations
