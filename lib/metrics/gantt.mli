(** ASCII Gantt rendering of schedules.

    One lane per processor, time quantized to a character grid; each cell
    shows which job runs there (`0`–`9`, then `a`–`z`, `*` beyond 36, `.`
    idle).  A second row per lane optionally shows relative speed as a
    block ramp.  Meant for terminal inspection, the examples, and the
    figure experiments — not for exact reading (the validator and the
    replay engine are for that). *)

open Speedscale_model

val render :
  ?width:int -> ?show_speed:bool -> Schedule.t -> string
(** [render sched] with default [width = 72] columns over the schedule's
    busy extent.  Empty schedules render a note instead. *)

val job_glyph : int -> char
(** The cell character used for a job id. *)
