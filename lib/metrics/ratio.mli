(** Competitive-ratio bookkeeping for the benchmark harness.

    Empirical ratios are always measured against a {e certified lower
    bound} on the optimum — either the dual certificate [g(λ̃)], an exact
    YDS/IMP optimum, or the CP relaxation — so a reported ratio of [ρ]
    means "the algorithm's cost is at most [ρ]·OPT on this instance",
    never an estimate in the wrong direction. *)


type sample = {
  cost : float;
  lower_bound : float;  (** certified [<= OPT] *)
  ratio : float;  (** [cost / lower_bound] *)
}

val make : cost:float -> lower_bound:float -> sample
(** Raises [Invalid_argument] for non-positive lower bounds. *)

val ratios : sample list -> float list

type aggregate = {
  count : int;
  mean_ratio : float;
  max_ratio : float;
  p90_ratio : float;
  violations : int;  (** samples whose ratio exceeded a given guarantee *)
}

val aggregate : guarantee:float -> sample list -> aggregate
(** Summarize a sweep against a theoretical guarantee (e.g. [α^α]). *)

val pp_aggregate : Format.formatter -> aggregate -> unit
