open Speedscale_util
open Speedscale_model

let of_schedule (inst : Instance.t) sched =
  let finished = Schedule.finished inst sched in
  let gained = Ksum.sum_by (fun id -> (Instance.job inst id).value) finished in
  gained -. Schedule.energy inst.power sched

let identity_gap (inst : Instance.t) sched =
  let total = Instance.total_value inst in
  if not (Float.is_finite total) then Float.nan
  else
    Float.abs
      (of_schedule inst sched +. Cost.total (Schedule.cost inst sched) -. total)
