(** The profit view of a schedule.

    Pruhs–Stein (APPROX 2010) study the same setting with the mirrored
    objective {e maximize} [Σ_finished v_j − energy]; Chan–Lam–Li (and
    this paper) minimize [energy + Σ_unfinished v_j].  The two differ by
    the constant [Σ_j v_j]:

    {v  profit(S) = total value − cost(S)  v}

    so a cost-minimizer is also a profit-maximizer on any fixed instance —
    but competitive ratios do NOT transfer (profit can be 0 or negative,
    which is why Pruhs–Stein need resource augmentation while the paper's
    loss view admits a bound of α^α).  This module computes the profit
    view for reporting. *)

open Speedscale_model

val of_schedule : Instance.t -> Schedule.t -> float
(** [Σ_finished v_j − energy].  May be negative. *)

val identity_gap : Instance.t -> Schedule.t -> float
(** [|profit + cost − total value|] — zero up to float noise, exported so
    tests can pin the relationship.  Instances with infinite values return
    [nan] (the identity is meaningless there). *)
