(** Umbrella module: the whole library under one namespace.

    [Speedscale.Pd.run] is the paper's algorithm; everything else is the
    substrate and evaluation machinery around it.  Individual libraries
    ([speedscale_core], [speedscale_model], …) remain usable directly for
    finer-grained dependencies. *)

(* model *)
module Power = Speedscale_model.Power
module Job = Speedscale_model.Job
module Instance = Speedscale_model.Instance
module Timeline = Speedscale_model.Timeline
module Schedule = Speedscale_model.Schedule
module Cost = Speedscale_model.Cost
module Io = Speedscale_model.Io

(* the paper's contribution *)
module Pd = Speedscale_core.Pd
module Rejection = Speedscale_core.Rejection
module Analysis = Speedscale_core.Analysis

(* substrates *)
module Chen = Speedscale_chen.Chen
module Cp = Speedscale_solver.Cp
module Dual = Speedscale_solver.Dual
module Kkt = Speedscale_solver.Kkt
module Proj = Speedscale_solver.Proj
module Pgd = Speedscale_solver.Pgd

(* single-processor classics *)
module Yds = Speedscale_single.Yds
module Oa = Speedscale_single.Oa
module Avr = Speedscale_single.Avr
module Bkp = Speedscale_single.Bkp
module Qoa = Speedscale_single.Qoa
module Cll = Speedscale_single.Cll

(* multiprocessor *)
module Mopt = Speedscale_multi.Mopt
module Moa = Speedscale_multi.Moa
module Mavr = Speedscale_multi.Mavr
module Opt = Speedscale_multi.Opt
module Mcll = Speedscale_multi.Mcll
module Partitioned = Speedscale_multi.Partitioned

(* extensions and tooling *)
module Levels = Speedscale_discrete.Levels
module Dinic = Speedscale_flow.Dinic
module Feasibility = Speedscale_flow.Feasibility
module Executor = Speedscale_engine.Executor
module Generate = Speedscale_workload.Generate
module Driver = Speedscale_sim.Driver
module Baselines = Speedscale_sim.Baselines
module Ratio = Speedscale_metrics.Ratio
module Profit = Speedscale_metrics.Profit
module Structure = Speedscale_metrics.Structure
module Gantt = Speedscale_metrics.Gantt

(* numeric utilities *)
module Feq = Speedscale_util.Feq
module Bisect = Speedscale_util.Bisect
module Ksum = Speedscale_util.Ksum
module Stats = Speedscale_util.Stats
module Tab = Speedscale_util.Tab
module Rand = Speedscale_util.Rand
module Golden = Speedscale_util.Golden
