(** Discrete speed levels — bridging the paper's continuous model to real
    DVFS hardware.

    The paper (like all of the YDS line) assumes a continuum of speeds,
    while the hardware it motivates (Intel SpeedStep, AMD PowerNow!)
    exposes a finite level set.  The classical remedy, already present in
    Chen et al. (ECRTS 2004): a slice at continuous speed [s] between two
    adjacent levels [l <= s <= h] is emulated by running the fraction
    [(s − l)/(h − l)] of the slice at [h] and the rest at [l].  Work and
    the occupied time window are preserved exactly (so feasibility is
    untouched); by convexity of [P_α] the energy only grows, and the
    overhead shrinks as the level grid densifies.

    This module converts any {!Schedule.t} produced by the continuous
    algorithms into a level-feasible schedule and quantifies the overhead
    (experiment E15). *)

open Speedscale_model

type t
(** A validated, sorted set of distinct speed levels (all > 0). *)

val make : float list -> t
(** Raises [Invalid_argument] on an empty list or non-positive levels. *)

val geometric : base:float -> ratio:float -> count:int -> t
(** [geometric ~base ~ratio ~count]: levels [base·ratio^i], i < count.
    Requires [base > 0], [ratio > 1], [count >= 1]. *)

val covering : t -> float -> bool
(** [covering t s]: is there a level [>= s]?  (Speeds above the highest
    level cannot be emulated.) *)

val max_level : t -> float
val speeds : t -> float list

val round_slice : t -> Schedule.slice -> Schedule.slice list
(** Emulate one slice: one or two sub-slices at adjacent levels carrying
    exactly the original work inside the original window (a slice slower
    than the lowest level runs at the lowest level for part of the window
    and idles).  Raises [Invalid_argument] if the slice speed exceeds the
    highest level. *)

val round_schedule : t -> Schedule.t -> Schedule.t
(** Apply {!round_slice} to every slice. *)

val energy_overhead : Power.t -> t -> Schedule.t -> float
(** [energy(rounded) / energy(original)] — always [>= 1], approaching [1]
    as the grid densifies.  Raises [Invalid_argument] on schedules with
    zero energy. *)
