open Speedscale_model

type t = { levels : float array }  (* sorted increasing, distinct, > 0 *)

let make speeds =
  let sorted = List.sort_uniq Float.compare speeds in
  if sorted = [] then invalid_arg "Levels.make: empty level set";
  List.iter
    (fun s ->
      if not (Float.is_finite s) || s <= 0.0 then
        invalid_arg "Levels.make: levels must be finite > 0")
    sorted;
  { levels = Array.of_list sorted }

let geometric ~base ~ratio ~count =
  if base <= 0.0 || ratio <= 1.0 || count < 1 then
    invalid_arg "Levels.geometric: need base > 0, ratio > 1, count >= 1";
  make (List.init count (fun i -> base *. (ratio ** float_of_int i)))

let max_level t = t.levels.(Array.length t.levels - 1)
let covering t s = s <= max_level t +. Speedscale_util.Feq.tol_guard
let speeds t = Array.to_list t.levels

(* Adjacent levels around s: (lo, hi) with lo <= s <= hi where possible.
   Below the grid: (None, lowest).  Exactly on a level: that level twice. *)
let bracket t s =
  let n = Array.length t.levels in
  if s < t.levels.(0) then (None, t.levels.(0))
  else begin
    (* largest level <= s *)
    let rec go lo hi =
      if lo = hi then lo
      else
        let mid = (lo + hi + 1) / 2 in
        if t.levels.(mid) <= s then go mid hi else go lo (mid - 1)
    in
    let i = go 0 (n - 1) in
    if Float.equal t.levels.(i) s || i = n - 1 then (Some t.levels.(i), t.levels.(i))
    else (Some t.levels.(i), t.levels.(i + 1))
  end

let round_slice t (sl : Schedule.slice) =
  if not (covering t sl.speed) then
    invalid_arg
      (Fmt.str "Levels.round_slice: speed %g above highest level %g"
         sl.speed (max_level t));
  let duration = sl.t1 -. sl.t0 in
  match bracket t sl.speed with
  | Some lo, hi when lo = hi || Float.abs (sl.speed -. lo) <= Speedscale_util.Feq.tol_guard *. lo ->
    [ { sl with speed = lo } ]
  | None, lowest ->
    (* run at the lowest level just long enough, idle afterwards *)
    let busy = duration *. sl.speed /. lowest in
    [ { sl with t1 = sl.t0 +. busy; speed = lowest } ]
  | Some lo, hi ->
    let phi = (sl.speed -. lo) /. (hi -. lo) in
    let t_mid = sl.t0 +. (phi *. duration) in
    let fast = { sl with t1 = t_mid; speed = hi } in
    let slow = { sl with t0 = t_mid; speed = lo } in
    List.filter (fun (s : Schedule.slice) -> s.t1 -. s.t0 > Speedscale_util.Feq.tol_dust) [ fast; slow ]

let round_schedule t (s : Schedule.t) =
  Schedule.make ~machines:s.machines ~rejected:s.rejected
    (List.concat_map (round_slice t) s.slices)

let energy_overhead power t s =
  let base = Schedule.energy power s in
  if base <= 0.0 then
    invalid_arg "Levels.energy_overhead: schedule has zero energy";
  Schedule.energy power (round_schedule t s) /. base
