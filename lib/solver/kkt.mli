(** KKT residuals for (CP) solutions.

    The paper frames PD as "greedily increasing the convex program's
    variables while maintaining a relaxed version of the KKT conditions";
    this module makes the exact conditions checkable.  For the must-finish
    program (per-job simplex), stationarity says: there is a multiplier
    [ν_j] per job with

    - [∂P/∂x_jk = ν_j] wherever [x_jk > 0], and
    - [∂P/∂x_jk ≥ ν_j] wherever [x_jk = 0]

    i.e. every used interval has the same marginal price and no unused
    interval is cheaper.  For the profitable program (capped simplex) the
    same holds with the complement condition [ν_j ≤ v_j], and [ν_j = v_j]
    whenever the job is left partly unfinished ([Σ_k x_jk < 1]).

    The residual is the worst relative violation over all jobs; a correct
    solver drives it to ~0, and the tests use it both positively (solved
    points pass) and negatively (perturbed points fail). *)

val residual : Cp.t -> Cp.mode -> float array -> float
(** Worst relative KKT violation of the point.  [0] is perfect. *)
