(** Euclidean projections onto the feasible sets of the convex program.

    (CP)'s feasible region factors per job: the loads a job places into the
    atomic intervals of its window form a vector in the {e capped simplex}
    [{x >= 0, Σx <= c}] (profitable mode, the job may stay partly
    unfinished) or the {e simplex} [{x >= 0, Σx = c}] (must-finish mode).
    Both projections have exact O(n log n) algorithms (Duchi et al. 2008),
    which is what makes projected gradient practical here. *)

val simplex : total:float -> float array -> float array
(** [simplex ~total v] is the Euclidean projection of [v] onto
    [{x >= 0, Σ x_i = total}].  Requires [total >= 0]. *)

val capped_simplex : total:float -> float array -> float array
(** Projection onto [{x >= 0, Σ x_i <= total}]: clip at zero first; if the
    sum still exceeds [total], fall back to {!simplex}. *)

val box : lo:float -> hi:float -> float array -> float array
(** Componentwise clamp. *)
