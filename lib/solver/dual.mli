(** Exact evaluation of the Lagrangian dual function [g(λ)] of (CP)
    (Section 4.1–4.2 of the paper).

    For fixed multipliers [λ ⪰ 0] the inner minimization over [(x, y)]
    has a closed form (Lemmas 4–6): in every atomic interval the optimal
    infeasible solution runs the [min(m, n_k)] available jobs with the
    largest hypothetical speeds

    {v ŝ_j = (λ_j / (α w_j))^(1/(α-1)) v}

    each on its own processor at exactly [ŝ_j], contributing
    [(1-α) l_k ŝ_j^α] per job; the [y]-terms contribute [min(λ_j, v_j)]
    per job.  Hence

    {v g(λ) = Σ_k (1-α) l_k Σ_{j ∈ top(k)} ŝ_j^α + Σ_j min(λ_j, v_j) v}

    By weak duality [g(λ) <= cost(OPT)] for {e any} λ, so evaluating [g] at
    PD's multipliers yields a machine-checkable lower bound on the offline
    optimum — the certificate behind every competitive-ratio measurement in
    the benchmark harness. *)

open Speedscale_model

type evaluation = {
  value : float;  (** [g(λ)] *)
  shat : float array;  (** hypothetical dual speeds [ŝ_j] *)
  xhat : float array;
      (** total fraction [x̂_j = Σ_k x̂_jk] of job [j] scheduled by the
          optimal infeasible solution (Lemma 5(a)) *)
  energy_hat : float array;
      (** [E_λ(j) = l(j) ŝ_j^α = λ_j x̂_j / α] per job (Lemma 6 / Prop 8a) *)
}

val evaluate : Instance.t -> Timeline.t -> lambda:float array -> evaluation
(** [lambda] must have one entry per job, each [>= 0].  The timeline must
    cover every job window with boundary-aligned endpoints (use the same
    timeline the algorithm used, or [Timeline.of_jobs]). *)

val value : Instance.t -> lambda:float array -> float
(** Convenience: build the canonical timeline and return [g(λ)]. *)
