open Speedscale_model

(* Marginal prices of the energy part only (no value terms). *)
let energy_marginals cp x = Cp.gradient cp Cp.Must_finish x

let residual cp mode x =
  let inst = Cp.instance cp in
  let n = Instance.n_jobs inst in
  let g = energy_marginals cp x in
  let worst = ref 0.0 in
  let bump v = if v > !worst then worst := v in
  for j = 0 to n - 1 do
    let job = Instance.job inst j in
    let window = Cp.window cp j in
    let base = Cp.offset cp j in
    let len = Array.length window in
    let total = ref 0.0 in
    for i = 0 to len - 1 do
      total := !total +. x.(base + i)
    done;
    (* nu_j: the common marginal of used intervals = the cheapest marginal
       overall at an exact KKT point *)
    let min_all = ref Float.infinity in
    let max_used = ref Float.neg_infinity in
    let used = ref false in
    for i = 0 to len - 1 do
      let m = g.(base + i) in
      if m < !min_all then min_all := m;
      if x.(base + i) > Speedscale_util.Feq.tol_snap then begin
        used := true;
        if m > !max_used then max_used := m
      end
    done;
    let scale = 1.0 +. Float.abs !min_all in
    (* equal marginals on used intervals; no cheaper unused interval *)
    if !used then bump ((!max_used -. !min_all) /. scale);
    (match mode with
    | Cp.Must_finish ->
      (* feasibility: the job must be fully assigned *)
      bump (Float.abs (!total -. 1.0))
    | Cp.Profitable ->
      if Float.is_finite job.value then begin
        if !total < 1.0 -. Speedscale_util.Feq.tol_snap then
          if !used then
            (* partially finished: marginal price pinned at the value *)
            bump (Float.abs (!min_all -. job.value) /. (1.0 +. job.value))
          else
            (* fully rejected: no interval may be cheaper than the value *)
            bump
              (Float.max 0.0 ((job.value -. !min_all) /. (1.0 +. job.value)))
        else if !used then
          (* fully finished: the price must not exceed the value *)
          bump (Float.max 0.0 ((!max_used -. job.value) /. (1.0 +. job.value)))
      end
      else bump (Float.abs (!total -. 1.0)))
  done;
  !worst
