let simplex ~total v =
  if total < 0.0 then invalid_arg "Proj.simplex: negative total";
  let n = Array.length v in
  if n = 0 then [||]
  else begin
    let u = Array.copy v in
    Array.sort (fun a b -> Float.compare b a) u;
    (* theta = (prefix_sum(rho) - total) / rho with rho the largest index
       keeping all kept coordinates positive *)
    let rho = ref 0 and best_theta = ref 0.0 in
    let cum = ref 0.0 in
    for i = 0 to n - 1 do
      cum := !cum +. u.(i);
      let theta = (!cum -. total) /. float_of_int (i + 1) in
      if u.(i) -. theta > 0.0 then begin
        rho := i + 1;
        best_theta := theta
      end
    done;
    let theta = if !rho = 0 then -.total /. float_of_int n else !best_theta in
    Array.map (fun x -> Float.max 0.0 (x -. theta)) v
  end

let capped_simplex ~total v =
  let clipped = Array.map (Float.max 0.0) v in
  let sum = Speedscale_util.Ksum.sum_array clipped in
  if sum <= total then clipped else simplex ~total v

let box ~lo ~hi v = Array.map (fun x -> Float.min hi (Float.max lo x)) v
