open Speedscale_util
open Speedscale_model
open Speedscale_chen

type t = {
  inst : Instance.t;
  tl : Timeline.t;
  windows : int array array;  (* job -> interval indices *)
  offsets : int array;  (* job -> start of its block in the flat vector *)
  dim : int;
  by_interval : (int * int) list array;
      (* interval k -> (job, flat index) pairs with c_jk = 1 *)
}

type mode = Profitable | Must_finish

let make inst =
  let jobs = List.init (Instance.n_jobs inst) (Instance.job inst) in
  let tl = Timeline.of_jobs jobs in
  let n = Instance.n_jobs inst in
  let windows =
    Array.init n (fun j ->
        let job = Instance.job inst j in
        Timeline.covering tl ~release:job.release ~deadline:job.deadline
        |> Array.of_list)
  in
  let offsets = Array.make n 0 in
  let dim = ref 0 in
  Array.iteri
    (fun j w ->
      offsets.(j) <- !dim;
      dim := !dim + Array.length w)
    windows;
  let by_interval = Array.make (Timeline.n_intervals tl) [] in
  Array.iteri
    (fun j w ->
      Array.iteri
        (fun idx k -> by_interval.(k) <- (j, offsets.(j) + idx) :: by_interval.(k))
        w)
    windows;
  { inst; tl; windows; offsets; dim = !dim; by_interval }

let instance t = t.inst
let timeline t = t.tl
let n_vars t = t.dim
let window t j = Array.copy t.windows.(j)
let offset t j = t.offsets.(j)

let completion t x =
  Array.mapi
    (fun j w ->
      let acc = ref 0.0 in
      Array.iteri (fun idx _ -> acc := !acc +. x.(t.offsets.(j) + idx)) w;
      !acc)
    t.windows

let interval_problem t x k =
  let loads =
    List.filter_map
      (fun (j, flat) ->
        let load = x.(flat) *. (Instance.job t.inst j).workload in
        if load > 0.0 then Some (j, load) else None)
      t.by_interval.(k)
  in
  Chen.build ~machines:t.inst.machines ~length:(Timeline.length t.tl k) loads

let energy t x =
  let acc = Ksum.create () in
  for k = 0 to Timeline.n_intervals t.tl - 1 do
    Ksum.add acc (Chen.energy t.inst.power (interval_problem t x k))
  done;
  Ksum.total acc

let lost_value t x =
  let comp = completion t x in
  let acc = Ksum.create () in
  Array.iteri
    (fun j c ->
      let v = (Instance.job t.inst j).value in
      let missing = Float.max 0.0 (1.0 -. c) in
      (* infinite-value jobs are pinned to the simplex by the projection;
         tolerate float dust in the completion *)
      if Float.equal v Float.infinity then begin
        if missing > Feq.tol_loose then Ksum.add acc Float.infinity
      end
      else Ksum.add acc (v *. missing))
    comp;
  Ksum.total acc

let objective t mode x =
  match mode with
  | Must_finish -> energy t x
  | Profitable -> energy t x +. lost_value t x

let gradient t mode x =
  let g = Array.make t.dim 0.0 in
  for k = 0 to Timeline.n_intervals t.tl - 1 do
    let problem = interval_problem t x k in
    let speeds = Chen.job_speeds problem in
    (* marginal speed for jobs with zero load in this interval *)
    let zero_speed = Chen.probe_speed problem 0.0 in
    List.iter
      (fun (j, flat) ->
        let w = (Instance.job t.inst j).workload in
        let s =
          match List.assoc_opt j speeds with
          | Some s -> s
          | None -> zero_speed
        in
        g.(flat) <- w *. Power.deriv t.inst.power s)
      t.by_interval.(k)
  done;
  (match mode with
  | Must_finish -> ()
  | Profitable ->
    Array.iteri
      (fun j w ->
        let v = (Instance.job t.inst j).value in
        if Float.is_finite v then
          Array.iteri
            (fun idx _ ->
              let flat = t.offsets.(j) + idx in
              g.(flat) <- g.(flat) -. v)
            w)
      t.windows);
  g

let project t mode x =
  let out = Array.copy x in
  Array.iteri
    (fun j w ->
      let len = Array.length w in
      let block = Array.sub out t.offsets.(j) len in
      let v = (Instance.job t.inst j).value in
      let projected =
        match mode with
        | Must_finish -> Proj.simplex ~total:1.0 block
        | Profitable ->
          if Float.equal v Float.infinity then Proj.simplex ~total:1.0 block
          else Proj.capped_simplex ~total:1.0 block
      in
      Array.blit projected 0 out t.offsets.(j) len)
    t.windows;
  out

type solution = {
  x : float array;
  objective : float;
  energy : float;
  lost_value : float;
  completion : float array;
  iterations : int;
  converged : bool;
}

(* Exact block-coordinate descent: one job's allocation, others fixed, has
   a closed-form optimum via water-filling — find the price level mu at
   which the job's marginal w·P'(s) is equal across its used intervals.
   Chen.probe_load_for_speed answers "how much load before interval k
   reaches speed s", so one outer bisection on mu solves the block
   exactly.  For profitable jobs the price is capped at the value (KKT:
   partial completion pins the marginal at v).  Convex + C1 + separable
   blocks => sweeps converge to the global optimum; in practice a few
   sweeps polish the projected-gradient point to ~1e-6 KKT residual. *)
let rebalance_sweeps t mode x ~sweeps =
  let n = Instance.n_jobs t.inst in
  for _ = 1 to sweeps do
    for j = 0 to n - 1 do
      let job = Instance.job t.inst j in
      let w = job.workload in
      let window = t.windows.(j) in
      let base = t.offsets.(j) in
      (* per-interval Chen problems of everyone else's loads *)
      let others =
        Array.map
          (fun k ->
            let loads =
              List.filter_map
                (fun (j', flat) ->
                  if j' = j then None
                  else
                    let load = x.(flat) *. (Instance.job t.inst j').workload in
                    if load > 0.0 then Some (j', load) else None)
                t.by_interval.(k)
            in
            Chen.build ~machines:t.inst.machines
              ~length:(Timeline.length t.tl k) loads)
          window
      in
      let load_at p s = Float.min (Chen.probe_load_for_speed p s) w in
      let speed_of_price mu = Power.inv_deriv t.inst.power (mu /. w) in
      let assigned mu =
        let s = speed_of_price mu in
        Ksum.sum_by (fun p -> load_at p s) (Array.to_list others)
      in
      let commit mu =
        let s = speed_of_price mu in
        Array.iteri
          (fun idx p -> x.(base + idx) <- load_at p s /. w)
          others
      in
      let solve_full () =
        let hi =
          Speedscale_util.Bisect.grow_bracket ~f:assigned ~target:w ~lo:0.0
            ~init:
              (Float.max Feq.tol_snap
                 (w *. Power.deriv t.inst.power (w /. Float.max Feq.tol_snap (Job.span job))))
            ()
        in
        let mu =
          Speedscale_util.Bisect.monotone_inverse ~f:assigned ~target:w
            ~lo:0.0 ~hi ()
        in
        commit mu;
        (* normalize bisection dust to exact completion *)
        let total = ref 0.0 in
        Array.iteri (fun idx _ -> total := !total +. x.(base + idx)) others;
        if !total > 0.0 then
          Array.iteri
            (fun idx _ -> x.(base + idx) <- x.(base + idx) /. !total)
            others
      in
      match mode with
      | Must_finish -> solve_full ()
      | Profitable ->
        if Float.equal job.value Float.infinity then solve_full ()
        else if assigned job.value >= w *. (1.0 -. Feq.tol_guard) then solve_full ()
        else
          (* partial completion at marginal price = value *)
          commit job.value
    done
  done

let solve ?(max_iters = 4000) ?(tol = 1e-10) ?x0 t mode =
  let x0 =
    match x0 with
    | Some x ->
      if Array.length x <> t.dim then invalid_arg "Cp.solve: x0 dimension";
      x
    | None ->
      let x = Array.make t.dim 0.0 in
      Array.iteri
        (fun j w ->
          let len = Array.length w in
          let share = 1.0 /. float_of_int (max 1 len) in
          Array.iteri (fun idx _ -> x.(t.offsets.(j) + idx) <- share) w)
        t.windows;
      x
  in
  let r =
    Pgd.minimize ~max_iters ~tol
      ~f:(fun x -> objective t mode x)
      ~grad:(fun x -> gradient t mode x)
      ~project:(fun x -> project t mode x)
      ~x0 ()
  in
  (* polish with exact per-job water-filling; sweep until the objective
     stops improving (it cannot increase: every block step is exact) *)
  let x = Array.copy r.x in
  let budget = ref 25 in
  let continue = ref true in
  let best = ref (objective t mode x) in
  while !continue && !budget > 0 do
    decr budget;
    rebalance_sweeps t mode x ~sweeps:1;
    let now = objective t mode x in
    if now >= !best -. (Feq.tol_guard *. (1.0 +. Float.abs !best)) then
      continue := false;
    if now < !best then best := now
  done;
  {
    x;
    objective = objective t mode x;
    energy = energy t x;
    lost_value = lost_value t x;
    completion = completion t x;
    iterations = r.iterations;
    converged = r.converged;
  }

let to_schedule ?(finish_tol = Feq.tol_loose) t x =
  let comp = completion t x in
  let rejected = ref [] in
  let scale = Array.make (Instance.n_jobs t.inst) 0.0 in
  Array.iteri
    (fun j c ->
      if c >= 1.0 -. finish_tol then scale.(j) <- 1.0 /. c
      else rejected := j :: !rejected)
    comp;
  let slices = ref [] in
  for k = 0 to Timeline.n_intervals t.tl - 1 do
    let loads =
      List.filter_map
        (fun (j, flat) ->
          let load = x.(flat) *. scale.(j) *. (Instance.job t.inst j).workload in
          if load > 0.0 then Some (j, load) else None)
        t.by_interval.(k)
    in
    if loads <> [] then begin
      let lo, hi = Timeline.bounds t.tl k in
      let problem =
        Chen.build ~machines:t.inst.machines ~length:(hi -. lo) loads
      in
      slices := Chen.slices problem ~t0:lo ~t1:hi @ !slices
    end
  done;
  Schedule.make ~machines:t.inst.machines ~rejected:!rejected !slices
