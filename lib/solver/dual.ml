open Speedscale_util
open Speedscale_model

type evaluation = {
  value : float;
  shat : float array;
  xhat : float array;
  energy_hat : float array;
}

let evaluate (inst : Instance.t) tl ~lambda =
  let n = Instance.n_jobs inst in
  if Array.length lambda <> n then
    invalid_arg "Dual.evaluate: lambda size mismatch";
  Array.iter
    (fun l ->
      if Float.is_nan l || l < 0.0 then
        invalid_arg "Dual.evaluate: multipliers must be >= 0")
    lambda;
  let power = inst.power in
  let alpha = Power.alpha power in
  let shat =
    Array.init n (fun j ->
        let job = Instance.job inst j in
        Power.inv_deriv power (lambda.(j) /. job.workload))
  in
  let xhat = Array.make n 0.0 in
  let interval_acc = Ksum.create () in
  for k = 0 to Timeline.n_intervals tl - 1 do
    let lo, hi = Timeline.bounds tl k in
    let lk = hi -. lo in
    (* available jobs, ranked by hypothetical speed *)
    let available = ref [] in
    for j = 0 to n - 1 do
      let job = Instance.job inst j in
      if Job.covers job ~lo ~hi && shat.(j) > 0.0 then
        available := (j, shat.(j)) :: !available
    done;
    let ranked =
      List.sort (fun (_, a) (_, b) -> Float.compare b a) !available
    in
    let contributors = List.filteri (fun i _ -> i < inst.machines) ranked in
    List.iter
      (fun (j, s) ->
        let job = Instance.job inst j in
        xhat.(j) <- xhat.(j) +. (lk *. s /. job.workload);
        (* slint: allow unsafe-pow -- contributors are filtered to shat > 0 above *)
        Ksum.add interval_acc ((1.0 -. alpha) *. lk *. (s ** alpha)))
      contributors
  done;
  let job_acc = Ksum.create () in
  for j = 0 to n - 1 do
    Ksum.add job_acc (Float.min lambda.(j) (Instance.job inst j).value)
  done;
  let energy_hat =
    Array.init n (fun j -> lambda.(j) *. xhat.(j) /. alpha)
  in
  {
    value = Ksum.total interval_acc +. Ksum.total job_acc;
    shat;
    xhat;
    energy_hat;
  }

let value inst ~lambda =
  let jobs = List.init (Instance.n_jobs inst) (Instance.job inst) in
  (evaluate inst (Timeline.of_jobs jobs) ~lambda).value
