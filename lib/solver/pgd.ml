type result = {
  x : float array;
  objective : float;
  iterations : int;
  converged : bool;
}

let norm2 a b =
  let acc = ref 0.0 in
  Array.iteri (fun i ai -> acc := !acc +. ((ai -. b.(i)) ** 2.0)) a;
  sqrt !acc

let minimize ?(max_iters = 5000) ?(tol = 1e-10) ?(initial_step = 1.0) ~f ~grad
    ~project ~x0 () =
  let n = Array.length x0 in
  let x = ref (project (Array.copy x0)) in
  let fx = ref (f !x) in
  let step = ref initial_step in
  let iters = ref 0 in
  let converged = ref false in
  (try
     while !iters < max_iters && not !converged do
       incr iters;
       let g = grad !x in
       (* Backtrack until sufficient decrease (Armijo over the projected
          step, as usual for projected gradient). *)
       let rec attempt eta tries =
         let candidate =
           project (Array.init n (fun i -> !x.(i) -. (eta *. g.(i))))
         in
         let fc = f candidate in
         let dist = norm2 candidate !x in
         (* Armijo: improve at least proportionally to the move's length *)
         if fc <= !fx -. (1e-4 /. Float.max eta 1e-18 *. dist *. dist) then
           (candidate, fc, eta, dist)
         else if tries <= 0 || Float.equal dist 0.0 then (candidate, fc, eta, dist)
         else attempt (eta /. 2.0) (tries - 1)
       in
       let candidate, fc, eta, dist = attempt !step 60 in
       if fc <= !fx then begin
         x := candidate;
         fx := fc;
         (* allow the step to recover so we do not get stuck tiny *)
         step := Float.min (eta *. 2.0) 1e6;
         if dist <= tol *. (1.0 +. norm2 !x (Array.make n 0.0)) then
           converged := true
       end
       else begin
         (* no improvement even at the smallest step: local flatness at the
            optimum up to float precision *)
         converged := true
       end
     done
   with e -> raise e);
  { x = !x; objective = !fx; iterations = !iters; converged = !converged }
