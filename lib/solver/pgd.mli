(** Projected gradient descent for smooth convex objectives over products
    of easily-projected sets, with Armijo backtracking line search.

    This is the generic engine behind the offline solvers.  The objective
    (the summed interval energies [P_k] plus linear value terms) is convex
    and C¹ (Proposition 1(b)), so projected gradient converges to the
    global optimum; backtracking frees us from estimating a Lipschitz
    constant for the gradient, which blows up as pool memberships change. *)

type result = {
  x : float array;
  objective : float;
  iterations : int;
  converged : bool;  (** projected-gradient norm fell below tolerance *)
}

val minimize :
  ?max_iters:int ->
  ?tol:float ->
  ?initial_step:float ->
  f:(float array -> float) ->
  grad:(float array -> float array) ->
  project:(float array -> float array) ->
  x0:float array ->
  unit ->
  result
(** [minimize ~f ~grad ~project ~x0 ()] iterates
    [x <- project (x - η ∇f x)], halving [η] (per iteration, from a
    step that adapts between iterations) until the Armijo condition holds.
    Stops when [|x' - x|] is below [tol] (scaled) or after [max_iters].
    Defaults: 5000 iterations, tolerance 1e-10. *)
