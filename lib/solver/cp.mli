(** The convex-programming relaxation (CP) of the scheduling problem
    (Figure 1 of the paper) and an offline solver for it.

    Variables are the fractions [x_jk ∈ [0,1]] of job [j]'s workload placed
    into atomic interval [T_k] (only intervals inside the job's window are
    materialized).  The indicator [y_j] is eliminated: for fixed [x] the
    optimal choice is [y_j = min(1, Σ_k x_jk)], so over the per-job capped
    simplex [Σ_k x_jk <= 1] the objective

    {v Σ_k P_k(x·w) + Σ_j v_j (1 - Σ_k x_jk) v}

    is convex and C¹ (Prop. 1), and projected gradient descent reaches the
    global optimum.  In must-finish mode the per-job constraint is
    [Σ_k x_jk = 1] and the value terms disappear — the classical
    multiprocessor YDS relaxation (Bingham–Greenstreet), whose optimum is
    the true offline energy optimum because Chen's per-interval schedule
    realizes any interval work assignment optimally.

    The optimum of (CP) lower-bounds the optimum of the integral program
    (IMP) and hence of the real scheduling problem; {!to_schedule} converts
    any [x] into a concrete schedule whose energy equals the objective's
    energy term exactly. *)

open Speedscale_model

type t
(** A compiled problem: instance, timeline, and the flat variable layout. *)

type mode =
  | Profitable  (** jobs may be left unfinished at the price of their value *)
  | Must_finish  (** every job must be fully assigned ([Σ_k x_jk = 1]) *)

val make : Instance.t -> t
(** Timeline is the paper's partition over all release times/deadlines. *)

val instance : t -> Instance.t
val timeline : t -> Timeline.t
val n_vars : t -> int

val window : t -> int -> int array
(** Interval indices (into the timeline) of job [j]'s availability
    window. *)

val offset : t -> int -> int
(** Start of job [j]'s block in the flat variable vector; the variable for
    the [i]-th interval of [window t j] lives at [offset t j + i]. *)

val completion : t -> float array -> float array
(** Per-job [Σ_k x_jk] of a flat variable vector. *)

val energy : t -> float array -> float
(** [Σ_k P_k] — energy of the work assignment. *)

val objective : t -> mode -> float array -> float
val gradient : t -> mode -> float array -> float array
val project : t -> mode -> float array -> float array

type solution = {
  x : float array;
  objective : float;
  energy : float;
  lost_value : float;
  completion : float array;
  iterations : int;
  converged : bool;
}

val solve :
  ?max_iters:int -> ?tol:float -> ?x0:float array -> t -> mode -> solution
(** Projected gradient from a uniform starting point (or [x0]).  In
    [Profitable] mode jobs with infinite value are constrained to the full
    simplex, so the objective stays finite. *)

val to_schedule : ?finish_tol:float -> t -> float array -> Schedule.t
(** Realize a work assignment: Chen's algorithm in every interval.  Jobs
    whose completion is below [1 - finish_tol] (default 1e-6) are marked
    rejected.  In must-finish solutions every job completes.  Fractions
    of nearly-complete jobs are rescaled so that finished jobs receive
    exactly their workload. *)
