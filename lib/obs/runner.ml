let default_jobs () =
  let n = Domain.recommended_domain_count () in
  if n < 1 then 1 else if n > 8 then 8 else n

let map ~jobs f xs =
  match xs with
  | [] -> []
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let run i =
      (* slint: allow domain-race -- audited: slot i is claimed exclusively via Atomic.fetch_and_add and out is read only after Domain.join *)
      out.(i) <- Some (match f arr.(i) with v -> Ok v | exception e -> Error e)
    in
    let workers = min jobs n in
    if workers <= 1 then
      for i = 0 to n - 1 do
        run i
      done
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            run i;
            loop ()
          end
        in
        loop ()
      in
      let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains
    end;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> invalid_arg "Runner.map: unreached task slot")
         out)
