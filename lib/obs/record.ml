type kind = Experiment | Timing

type param = P_int of int | P_float of float | P_str of string | P_bool of bool

type timing = {
  wall_s : float option;
  ns_per_run : float option;
  runs : int option;
}

type t = {
  id : string;
  kind : kind;
  params : (string * param) list;
  metrics : (string * float) list;
  counters : (string * int) list;
  verdict : bool option;
  timing : timing option;
}

type env = {
  ocaml_version : string;
  word_size : int;
  os_type : string;
  jobs : int;
}

type file = { version : int; env : env; records : t list }

let schema_version = 1

let make ~id ?(params = []) ?(metrics = []) ?(counters = []) ?verdict ?timing
    kind =
  { id; kind; params; metrics; counters; verdict; timing }

let no_timing = { wall_s = None; ns_per_run = None; runs = None }

let with_wall ~wall_s r =
  match r.timing with
  | None -> { r with timing = Some { no_timing with wall_s = Some wall_s } }
  | Some ({ wall_s = None; _ } as t) ->
    { r with timing = Some { t with wall_s = Some wall_s } }
  | Some _ -> r

let strip_timing r = { r with timing = None }

(* ------------------------------------------------------------------ *)
(* Resident-memory gauges                                              *)
(* ------------------------------------------------------------------ *)

let resident_gauge_prefix = "resident_"

let is_resident_gauge name =
  String.length name > String.length resident_gauge_prefix
  && String.equal
       (String.sub name 0 (String.length resident_gauge_prefix))
       resident_gauge_prefix

let resident_gauges r =
  List.filter (fun (name, _) -> is_resident_gauge name) r.counters

(* ------------------------------------------------------------------ *)
(* Equality                                                            *)
(* ------------------------------------------------------------------ *)

let equal_param a b =
  match (a, b) with
  | P_int x, P_int y -> Int.equal x y
  | P_float x, P_float y -> Float.equal x y
  | P_str x, P_str y -> String.equal x y
  | P_bool x, P_bool y -> Bool.equal x y
  | (P_int _ | P_float _ | P_str _ | P_bool _), _ -> false

let equal_assoc eq_v xs ys =
  List.length xs = List.length ys
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && eq_v v1 v2)
       xs ys

let equal_kind a b =
  match (a, b) with
  | Experiment, Experiment | Timing, Timing -> true
  | (Experiment | Timing), _ -> false

let equal_timing a b =
  Option.equal Float.equal a.wall_s b.wall_s
  && Option.equal Float.equal a.ns_per_run b.ns_per_run
  && Option.equal Int.equal a.runs b.runs

let equal_modulo_timing a b =
  String.equal a.id b.id && equal_kind a.kind b.kind
  && equal_assoc equal_param a.params b.params
  && equal_assoc Float.equal a.metrics b.metrics
  && equal_assoc Int.equal a.counters b.counters
  && Option.equal Bool.equal a.verdict b.verdict

let equal a b =
  equal_modulo_timing a b && Option.equal equal_timing a.timing b.timing

let equal_env a b =
  String.equal a.ocaml_version b.ocaml_version
  && Int.equal a.word_size b.word_size
  && String.equal a.os_type b.os_type
  && Int.equal a.jobs b.jobs

let equal_file a b =
  Int.equal a.version b.version && equal_env a.env b.env
  && List.length a.records = List.length b.records
  && List.for_all2 equal a.records b.records

let current_env ~jobs =
  {
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
    os_type = Sys.os_type;
    jobs;
  }

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)
(* ------------------------------------------------------------------ *)

let kind_to_string = function Experiment -> "experiment" | Timing -> "timing"

let kind_of_string = function
  | "experiment" -> Ok Experiment
  | "timing" -> Ok Timing
  | other -> Error (Fmt.str "unknown record kind %S" other)

let param_to_json = function
  | P_int i -> Json.Int i
  | P_float f -> Json.Float f
  | P_str s -> Json.Str s
  | P_bool b -> Json.Bool b

let param_of_json = function
  | Json.Int i -> Ok (P_int i)
  | Json.Float f -> Ok (P_float f)
  | Json.Str s -> Ok (P_str s)
  | Json.Bool b -> Ok (P_bool b)
  | Json.Null | Json.List _ | Json.Obj _ ->
    Error "parameters must be scalars"

let timing_to_json t =
  let field name v to_j acc =
    match v with None -> acc | Some x -> (name, to_j x) :: acc
  in
  Json.Obj
    (field "wall_s" t.wall_s
       (fun f -> Json.Float f)
       (field "ns_per_run" t.ns_per_run
          (fun f -> Json.Float f)
          (field "runs" t.runs (fun i -> Json.Int i) [])))

let to_json r =
  let base =
    [
      ("id", Json.Str r.id);
      ("kind", Json.Str (kind_to_string r.kind));
      ("params", Json.Obj (List.map (fun (k, p) -> (k, param_to_json p)) r.params));
      ("metrics", Json.Obj (List.map (fun (k, f) -> (k, Json.Float f)) r.metrics));
      ("counters", Json.Obj (List.map (fun (k, i) -> (k, Json.Int i)) r.counters));
    ]
  in
  let with_verdict =
    match r.verdict with
    | None -> base
    | Some b -> base @ [ ("verdict", Json.Bool b) ]
  in
  let with_timing =
    match r.timing with
    | None -> with_verdict
    | Some t -> with_verdict @ [ ("timing", timing_to_json t) ]
  in
  Json.Obj with_timing

(* ------------------------------------------------------------------ *)
(* JSON decoding                                                       *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let field name conv json =
  match Json.member name json with
  | None -> Error (Fmt.str "missing field %S" name)
  | Some v -> (
    match conv v with
    | Ok x -> Ok x
    | Error e -> Error (Fmt.str "field %S: %s" name e))

let optional_field name conv json =
  match Json.member name json with
  | None -> Ok None
  | Some v -> (
    match conv v with
    | Ok x -> Ok (Some x)
    | Error e -> Error (Fmt.str "field %S: %s" name e))

let assoc_field name conv json =
  match Json.member name json with
  | None -> Ok []
  | Some (Json.Obj fields) ->
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        match conv v with
        | Ok x -> Ok ((k, x) :: acc)
        | Error e -> Error (Fmt.str "field %S, key %S: %s" name k e))
      (Ok []) fields
    |> Result.map List.rev
  | Some v ->
    Error (Fmt.str "field %S: expected an object, found %s" name
             (Json.to_string v))

let timing_of_json json =
  let* wall_s = optional_field "wall_s" Json.to_float json in
  let* ns_per_run = optional_field "ns_per_run" Json.to_float json in
  let* runs = optional_field "runs" Json.to_int json in
  Ok { wall_s; ns_per_run; runs }

let of_json json =
  let* id = field "id" Json.to_str json in
  let* kind_s = field "kind" Json.to_str json in
  let* kind = kind_of_string kind_s in
  let* params = assoc_field "params" param_of_json json in
  let* metrics = assoc_field "metrics" Json.to_float json in
  let* counters = assoc_field "counters" Json.to_int json in
  let* verdict = optional_field "verdict" Json.to_bool json in
  let* timing = optional_field "timing" timing_of_json json in
  Ok { id; kind; params; metrics; counters; verdict; timing }

let env_to_json e =
  Json.Obj
    [
      ("ocaml_version", Json.Str e.ocaml_version);
      ("word_size", Json.Int e.word_size);
      ("os_type", Json.Str e.os_type);
      ("jobs", Json.Int e.jobs);
    ]

let env_of_json json =
  let* ocaml_version = field "ocaml_version" Json.to_str json in
  let* word_size = field "word_size" Json.to_int json in
  let* os_type = field "os_type" Json.to_str json in
  let* jobs = field "jobs" Json.to_int json in
  Ok { ocaml_version; word_size; os_type; jobs }

let file_to_json f =
  Json.Obj
    [
      ("schema_version", Json.Int f.version);
      ("env", env_to_json f.env);
      ("records", Json.List (List.map to_json f.records));
    ]

let file_of_json json =
  let* version = field "schema_version" Json.to_int json in
  if version <> schema_version then
    Error
      (Fmt.str "unsupported schema version %d (this build reads %d)" version
         schema_version)
  else
    let* env = field "env" env_of_json json in
    let* items = field "records" Json.to_list json in
    let* records =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* r = of_json item in
          Ok (r :: acc))
        (Ok []) items
    in
    Ok { version; env; records = List.rev records }

let encode_file f = Json.to_string (file_to_json f) ^ "\n"

let decode_file s =
  let* json = Json.of_string s in
  file_of_json json

let write_file ~path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode_file f))

let read_file ~path =
  if not (Sys.file_exists path) then Error (Fmt.str "no such file: %s" path)
  else
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    decode_file text
