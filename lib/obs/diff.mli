(** The perf-regression gate behind [psched bench-diff OLD.json NEW.json].

    Records are joined on [Record.id].  For each pair the timing measure is
    the bechamel estimate ([ns_per_run]) when both sides carry one, falling
    back to task wall-clock ([wall_s]); the pair is a {e regression} when
    [new / old > 1 + threshold].  Two further failure modes are gated:

    - a verdict that flips CONFIRMED → NOT CONFIRMED (a correctness
      regression is never "just noise");
    - a resident-memory gauge (a counter named [resident_*], see
      {!Record.is_resident_gauge}) that grows past the same threshold —
      space regressions are gated exactly like time regressions.  A gauge
      present on only one side (e.g. an old baseline recorded before the
      gauge existed) is not comparable and never fails;
    - nothing at all — added/removed benchmarks and drifted deterministic
      metrics are reported but do not fail, so growing the suite never
      blocks a PR.

    [ok] is what the CLI turns into the exit code. *)

type status =
  | Regression of float  (** new/old timing ratio above the threshold *)
  | Improvement of float  (** new/old timing ratio below 1 - threshold *)
  | Stable of float option  (** within threshold; [None] = nothing timed *)
  | Added  (** only in the new file *)
  | Removed  (** only in the old file *)

type entry = {
  id : string;
  status : status;
  verdict_broke : bool;  (** CONFIRMED in old, NOT CONFIRMED in new *)
  payload_drifted : bool;
      (** deterministic metrics/counters/params differ between the files *)
  old_measure : float option;  (** ns per run (or wall seconds) in old *)
  new_measure : float option;
  mem_broke : (string * float) option;
      (** worst resident gauge past the threshold: name and new/old ratio *)
}

type report = {
  threshold : float;
  entries : entry list;  (** old-file order, then additions *)
  compared : int;  (** ids present on both sides *)
  regressions : int;
  improvements : int;
  verdict_breaks : int;
  mem_breaks : int;  (** entries whose [mem_broke] is set *)
}

val default_threshold : float
(** [0.10]: flag a kernel that got more than 10% slower. *)

val compare_files : ?threshold:float -> Record.file -> Record.file -> report
(** [compare_files old_file new_file].  Raises [Invalid_argument] on a
    non-positive threshold. *)

val ok : report -> bool
(** No regressions, no verdict breaks, no memory breaks. *)

val to_string : report -> string
(** Human-readable table plus a one-line summary, newline-terminated. *)
