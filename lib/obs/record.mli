(** The structured benchmark-result model behind [BENCH_*.json].

    One {!t} is one benchmark observation: an experiment verdict or a
    bechamel micro-timing.  The deterministic payload (id, params, metrics,
    counters, verdict) is kept strictly apart from the {!timing} statistics
    so that two runs of the same experiment set can be compared for {e
    result} equality regardless of how fast the machine was — that is what
    the parallel-runner determinism property and [psched bench-diff] both
    rely on. *)

type kind =
  | Experiment  (** a table/figure experiment with a CONFIRMED verdict *)
  | Timing  (** a bechamel micro-timing of one kernel *)

type param =
  | P_int of int
  | P_float of float
  | P_str of string
  | P_bool of bool

type timing = {
  wall_s : float option;  (** wall-clock of the whole task, seconds *)
  ns_per_run : float option;  (** bechamel OLS estimate, ns per run *)
  runs : int option;  (** repetitions behind the estimate *)
}

type t = {
  id : string;  (** "E2", "E12/yds-n30", ... — the diff join key *)
  kind : kind;
  params : (string * param) list;  (** instance sizes, seeds, alpha, ... *)
  metrics : (string * float) list;  (** deterministic measured numbers *)
  counters : (string * int) list;  (** deterministic op/event counts *)
  verdict : bool option;  (** CONFIRMED / NOT CONFIRMED, when meaningful *)
  timing : timing option;  (** the only machine-dependent part *)
}

type env = {
  ocaml_version : string;
  word_size : int;
  os_type : string;
  jobs : int;  (** worker domains the producing run used *)
}

type file = { version : int; env : env; records : t list }

val schema_version : int
(** Current schema version, stored in [file.version]; [decode_file]
    rejects files from a different major schema. *)

val make :
  id:string ->
  ?params:(string * param) list ->
  ?metrics:(string * float) list ->
  ?counters:(string * int) list ->
  ?verdict:bool ->
  ?timing:timing ->
  kind ->
  t

val no_timing : timing
(** All-[None] timing, for [with_wall] to fill in. *)

val with_wall : wall_s:float -> t -> t
(** Fill the wall-clock field if the record does not already carry one. *)

val strip_timing : t -> t
(** Drop the machine-dependent part; what determinism tests compare. *)

val resident_gauge_prefix : string
(** ["resident_"].  A counter whose name carries this prefix is a {e
    resident-memory gauge}: a deterministic high-water count of live
    state (live intervals, table entries, ...) rather than of work done.
    [psched bench-diff] gates gauges like timings — a gauge that grows
    past the threshold between baseline and candidate fails the diff
    (space regressions are as real as time regressions; see {!Diff}). *)

val is_resident_gauge : string -> bool
(** Whether a counter name carries {!resident_gauge_prefix}. *)

val resident_gauges : t -> (string * int) list
(** The record's resident-memory gauge counters, in record order. *)

val equal : t -> t -> bool
(** Full structural equality (floats via [Float.equal]). *)

val equal_modulo_timing : t -> t -> bool
(** Equality of the deterministic payloads only. *)

val equal_file : file -> file -> bool

val current_env : jobs:int -> env

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val file_to_json : file -> Json.t
val file_of_json : Json.t -> (file, string) result

val encode_file : file -> string
(** Canonical JSON text, newline-terminated. *)

val decode_file : string -> (file, string) result

val write_file : path:string -> file -> unit
val read_file : path:string -> (file, string) result
(** [read_file] returns [Error] rather than raising on unreadable paths. *)
