(** Domain-parallel ordered map for the benchmark harness.

    The slow exact-OPT sweeps are embarrassingly parallel: every experiment
    is a pure function of its hard-coded seeds, so fanning them out across
    OCaml 5 domains changes wall-clock only.  Two guarantees make the
    fan-out observably equivalent to a sequential run:

    - {e ordered merge}: results come back in input order, whatever the
      completion order was;
    - {e no shared state}: each task must derive its randomness from its
      own fixed seed ([Speedscale_util.Rand.make]); the runner adds none.
      Tasks that honor this produce byte-identical output at any [jobs]
      (the determinism property pinned in [test_diff.ml]).

    Caveat: wall-clock {e timings} measured inside concurrently running
    tasks are noisier than sequential ones — bechamel micro-timings should
    stay on a quiet machine or a sequential run (see doc/BENCHMARKING.md). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], clamped to [1..8]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element, running up to [jobs]
    domains ([jobs <= 1] degenerates to [List.map], no domains spawned).
    Results are in input order.  If any application raises, the exception
    of the {e earliest} failed index is re-raised after all domains have
    joined, so failure reporting is deterministic too. *)
