type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
         xs ys
  | (Null | Bool _ | Int _ | Float _ | Str _ | List _ | Obj _), _ -> false

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let float_to_string x =
  if Float.is_nan x then "NaN"
  else if Float.equal x Float.infinity then "Infinity"
  else if Float.equal x Float.neg_infinity then "-Infinity"
  else if Float.is_integer x && Float.abs x < 1e16 then Fmt.str "%.1f" x
  else
    let exact s = Float.equal (float_of_string s) x in
    let s = Fmt.str "%.15g" x in
    let s =
      if exact s then s
      else
        let s = Fmt.str "%.16g" x in
        if exact s then s else Fmt.str "%.17g" x
    in
    (* %g drops the exponent when it fits the precision, so a large
       integral float (e.g. 2^54-ish) can render as bare digits — which
       would decode as Int.  Keep it a float on the wire. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | Str s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape_string buf k;
          Buffer.add_string buf ": ";
          go (indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string * int

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when Char.equal got c -> advance ()
    | Some got -> fail (Fmt.str "expected %C, found %C" c got)
    | None -> fail (Fmt.str "expected %C, found end of input" c)
  in
  let literal word value =
    let k = String.length word in
    if !pos + k <= n && String.equal (String.sub s !pos k) word then begin
      pos := !pos + k;
      value
    end
    else fail (Fmt.str "invalid token (expected %s)" word)
  in
  let utf8_of_code buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail (Fmt.str "invalid \\u escape %S" hex)
            | Some code when code >= 0xD800 && code <= 0xDFFF ->
              fail "surrogate \\u escapes are not supported"
            | Some code ->
              pos := !pos + 4;
              utf8_of_code buf code)
          | c -> fail (Fmt.str "invalid escape \\%c" c)));
        loop ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if Option.equal Char.equal (peek ()) (Some '-') then advance ();
    let is_float = ref false in
    let rec loop () =
      match peek () with
      | Some ('0' .. '9') ->
        advance ();
        loop ()
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
        is_float := true;
        advance ();
        loop ()
      | _ -> ()
    in
    loop ();
    if !pos = start then fail "expected a number";
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Fmt.str "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Fmt.str "invalid number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if Option.equal Char.equal (peek ()) (Some '}') then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | _ -> expect '}'
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if Option.equal Char.equal (peek ()) (Some ']') then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | _ -> expect ']'
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some 'N' -> literal "NaN" (Float Float.nan)
    | Some 'I' -> literal "Infinity" (Float Float.infinity)
    | Some '-' when !pos + 1 < n && Char.equal s.[!pos + 1] 'I' ->
      advance ();
      literal "Infinity" (Float Float.neg_infinity)
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Fmt.str "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after the JSON value";
  v

let of_string s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error (msg, pos) ->
    Error (Fmt.str "at offset %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let to_int = function
  | Int i -> Ok i
  | v -> Error (Fmt.str "expected an int, found %s" (type_name v))

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | v -> Error (Fmt.str "expected a number, found %s" (type_name v))

let to_str = function
  | Str s -> Ok s
  | v -> Error (Fmt.str "expected a string, found %s" (type_name v))

let to_bool = function
  | Bool b -> Ok b
  | v -> Error (Fmt.str "expected a bool, found %s" (type_name v))

let to_list = function
  | List items -> Ok items
  | v -> Error (Fmt.str "expected an array, found %s" (type_name v))
