(** Persistent worker pool with per-queue ingest and batched dequeue.

    {!Runner.map} is one-shot: it spawns domains, drains a fixed task
    list, and joins.  A long-running service needs the opposite shape — a
    fixed set of worker domains that outlive any one batch, fed through
    {e per-queue} ingest so that all tasks routed to one queue execute
    sequentially, in submission order, on a single domain at a time.
    That per-queue serialization is what lets a caller confine mutable
    state (an online engine, say) to "whichever domain currently owns
    queue [i]" without any locking of its own.

    Guarantees:

    - {e order}: tasks submitted to the same queue run in submission
      order, never concurrently with each other;
    - {e batched dequeue}: a worker takes a queue's whole backlog under
      one lock acquisition and runs it outside the lock, so the mutex is
      touched O(batches), not O(tasks);
    - {e bounded ingest}: each queue holds at most [queue_cap] pending
      tasks; {!submit} refuses (returns [false]) instead of buffering
      unboundedly, giving the producer natural backpressure;
    - {e migration}: {!assign} hands a queue to a different worker; the
      switch takes effect between batches, so the serialization guarantee
      is preserved across the move.

    Tasks must not raise: a task that does poisons its queue (the
    exception is stored, the queue's remaining and future tasks are
    discarded) and the earliest poisoned queue's exception is re-raised
    by {!quiesce} and {!shutdown}.  Callers that need per-task error
    reporting should catch inside the task and route the error through
    their own result channel. *)

type t

val create : ?queue_cap:int -> workers:int -> queues:int -> unit -> t
(** Spawn [workers] persistent domains serving [queues] ingest queues.
    Queue [i] starts assigned to worker [i mod workers].  Default
    [queue_cap] is 1024.  Raises [Invalid_argument] if [workers < 1],
    [queues < 1] or [queue_cap < 1]. *)

val workers : t -> int
val queues : t -> int

val submit : t -> queue:int -> (unit -> unit) -> bool
(** Enqueue one task; [false] when the queue is at capacity (nothing is
    enqueued — retry after draining your output side).  Raises
    [Invalid_argument] on a bad queue index or after {!shutdown}. *)

val assign : t -> queue:int -> worker:int -> unit
(** Reassign a queue to another worker.  Takes effect after the batch
    currently in flight (if any); tasks never run concurrently across
    the move. *)

val worker_of : t -> queue:int -> int
(** The queue's current worker assignment. *)

val quiesce : t -> unit
(** Block until every queue is empty and no batch is in flight.  If any
    queue was poisoned, re-raises the earliest poisoned queue's
    exception (deterministic choice: lowest queue index). *)

val shutdown : t -> unit
(** Drain all remaining work, stop the workers and join their domains.
    Idempotent.  Re-raises the earliest poisoned queue's exception after
    the join, like {!quiesce}. *)
