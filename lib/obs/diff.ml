type status =
  | Regression of float
  | Improvement of float
  | Stable of float option
  | Added
  | Removed

type entry = {
  id : string;
  status : status;
  verdict_broke : bool;
  payload_drifted : bool;
  old_measure : float option;
  new_measure : float option;
  mem_broke : (string * float) option;
}

type report = {
  threshold : float;
  entries : entry list;
  compared : int;
  regressions : int;
  improvements : int;
  verdict_breaks : int;
  mem_breaks : int;
}

let default_threshold = 0.10

(* ns_per_run when both runs have it (comparable units), else wall_s. *)
let measures (a : Record.t) (b : Record.t) =
  let pick f r = Option.bind r.Record.timing f in
  match (pick (fun t -> t.Record.ns_per_run) a, pick (fun t -> t.ns_per_run) b)
  with
  | Some x, Some y -> (Some x, Some y)
  | _ -> (
    match (pick (fun t -> t.Record.wall_s) a, pick (fun t -> t.wall_s) b) with
    | Some x, Some y -> (Some x, Some y)
    | _ -> (None, None))

(* Worst new/old growth across the resident-memory gauges both records
   carry.  A gauge missing on either side — in particular an old baseline
   recorded before the gauge existed — is not comparable and never fails:
   the gate tightens as baselines are regenerated, it does not block the
   first file that introduces a gauge. *)
let worst_gauge_growth (old_r : Record.t) (new_r : Record.t) =
  List.fold_left
    (fun acc (name, ov) ->
      if ov <= 0 then acc
      else
        match List.assoc_opt name new_r.Record.counters with
        | None -> acc
        | Some nv -> (
          let ratio = float_of_int nv /. float_of_int ov in
          match acc with
          | Some (_, worst) when worst >= ratio -> acc
          | _ -> Some (name, ratio)))
    None
    (Record.resident_gauges old_r)

let classify ~threshold (old_r : Record.t) (new_r : Record.t) =
  let old_m, new_m = measures old_r new_r in
  let status =
    match (old_m, new_m) with
    | Some o, Some n when o > 0.0 ->
      let ratio = n /. o in
      if ratio > 1.0 +. threshold then Regression ratio
      else if ratio < 1.0 -. threshold then Improvement ratio
      else Stable (Some ratio)
    | _ -> Stable None
  in
  let verdict_broke =
    match (old_r.verdict, new_r.verdict) with
    | Some true, Some false -> true
    | _ -> false
  in
  let payload_drifted =
    not
      (Record.equal_modulo_timing
         { old_r with verdict = None }
         { new_r with verdict = None })
  in
  let mem_broke =
    match worst_gauge_growth old_r new_r with
    | Some (name, ratio) when ratio > 1.0 +. threshold -> Some (name, ratio)
    | _ -> None
  in
  {
    id = old_r.id;
    status;
    verdict_broke;
    payload_drifted;
    old_measure = old_m;
    new_measure = new_m;
    mem_broke;
  }

let compare_files ?(threshold = default_threshold) old_file new_file =
  if threshold <= 0.0 then
    invalid_arg "Diff.compare_files: threshold must be positive";
  let open Record in
  let find id records = List.find_opt (fun r -> String.equal r.id id) records in
  let paired =
    List.map
      (fun old_r ->
        match find old_r.id new_file.records with
        | Some new_r -> classify ~threshold old_r new_r
        | None ->
          {
            id = old_r.id;
            status = Removed;
            verdict_broke = false;
            payload_drifted = false;
            old_measure = None;
            new_measure = None;
            mem_broke = None;
          })
      old_file.records
  in
  let added =
    List.filter_map
      (fun new_r ->
        if Option.is_some (find new_r.id old_file.records) then None
        else
          Some
            {
              id = new_r.id;
              status = Added;
              verdict_broke = false;
              payload_drifted = false;
              old_measure = None;
              new_measure = None;
              mem_broke = None;
            })
      new_file.records
  in
  let entries = paired @ added in
  let count p = List.length (List.filter p entries) in
  {
    threshold;
    entries;
    compared =
      count (fun e ->
          match e.status with
          | Regression _ | Improvement _ | Stable _ -> true
          | Added | Removed -> false);
    regressions = count (fun e -> match e.status with Regression _ -> true | _ -> false);
    improvements =
      count (fun e -> match e.status with Improvement _ -> true | _ -> false);
    verdict_breaks = count (fun e -> e.verdict_broke);
    mem_breaks = count (fun e -> Option.is_some e.mem_broke);
  }

let ok r = r.regressions = 0 && r.verdict_breaks = 0 && r.mem_breaks = 0

let to_string r =
  let buf = Buffer.create 1024 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "bench-diff: fail on new/old > %.2f (threshold %.0f%%)"
    (1.0 +. r.threshold) (r.threshold *. 100.0);
  let measure = function
    | None -> "-"
    | Some m -> Fmt.str "%.4g" m
  in
  line "  %-36s %12s %12s %8s  %s" "id" "old" "new" "ratio" "status";
  List.iter
    (fun e ->
      let ratio, status =
        match e.status with
        | Regression x -> (Fmt.str "%.3f" x, "REGRESSION")
        | Improvement x -> (Fmt.str "%.3f" x, "improvement")
        | Stable (Some x) -> (Fmt.str "%.3f" x, "ok")
        | Stable None -> ("-", "ok (untimed)")
        | Added -> ("-", "added")
        | Removed -> ("-", "removed")
      in
      let status = if e.verdict_broke then status ^ " VERDICT-BROKE" else status in
      let status =
        match e.mem_broke with
        | Some (name, ratio) ->
          status ^ Fmt.str " MEM-GROWTH(%s x%.3f)" name ratio
        | None -> status
      in
      let status = if e.payload_drifted then status ^ " (payload drifted)" else status in
      line "  %-36s %12s %12s %8s  %s" e.id (measure e.old_measure)
        (measure e.new_measure) ratio status)
    r.entries;
  line
    "summary: %d compared, %d regressions, %d improvements, %d verdict \
     breaks, %d memory breaks"
    r.compared r.regressions r.improvements r.verdict_breaks r.mem_breaks;
  line "%s"
    (if ok r then "OK: no perf regressions"
     else "FAIL: perf or verdict regression detected");
  Buffer.contents buf
