(** Minimal, dependency-free JSON layer for the benchmark pipeline.

    The encoder is {e canonical}: a given value always renders to the same
    bytes (object fields keep their insertion order, floats print in the
    shortest form that round-trips exactly, indentation is fixed at two
    spaces).  This is what lets a checked-in [BENCH_*.json] act as a golden
    fixture — any schema or formatting drift shows up as a byte diff.

    Deviations from strict JSON, both directions: the bare tokens
    [Infinity], [-Infinity] and [NaN] encode the non-finite floats (the
    benchmark model keeps its numbers finite, but the layer must not
    corrupt data silently if one slips through). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality; floats compare with [Float.equal], so [NaN] equals
    itself and the round-trip law [decode (encode v) = v] is testable. *)

val float_to_string : float -> string
(** Shortest decimal representation that parses back to the identical bit
    pattern ([%.15g], widening to [%.16g]/[%.17g] only when needed).
    Integral floats render with a trailing [".0"] so they stay floats on
    decode. *)

val to_string : t -> string
(** Canonical pretty rendering (two-space indent, no trailing newline). *)

val of_string : string -> (t, string) result
(** Parser.  Numbers without [.], [e] or [E] decode as [Int] when they fit
    in an OCaml [int], as [Float] otherwise; [\uXXXX] escapes outside the
    surrogate range decode to UTF-8 bytes.  Errors carry a byte offset. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k], [None] on any
    other constructor or absent key. *)

val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
(** [to_float] accepts [Int] too (JSON does not distinguish). *)

val to_str : t -> (string, string) result
val to_bool : t -> (bool, string) result
val to_list : t -> (t list, string) result
