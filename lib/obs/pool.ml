(* Persistent worker pool: a fixed set of domains serving per-queue
   ingest with batched dequeue.  One mutex guards every queue; workers
   take a queue's whole backlog under one lock acquisition and run it
   unlocked, so lock traffic is O(batches).  Per-queue serialization —
   tasks of one queue never run concurrently and never out of order —
   is the property callers lean on to confine un-synchronized mutable
   state to "the domain currently owning queue i". *)

type queue = {
  mutable items_rev : (unit -> unit) list;
  mutable len : int;
  mutable owner : int;
  mutable running : bool;  (* a batch from this queue is in flight *)
  mutable poison : exn option;  (* first task exception; queue is dead *)
}

type t = {
  m : Mutex.t;
  work : Condition.t;  (* new work, ownership change, or shutdown *)
  idle : Condition.t;  (* a batch completed *)
  qs : queue array;
  cap : int;
  n_workers : int;
  mutable stop : bool;
  mutable joined : bool;
  mutable domains : unit Domain.t list;
}

let workers t = t.n_workers
let queues t = Array.length t.qs

(* Run a batch until the first exception; everything after the raising
   task is discarded (the queue is poisoned anyway). *)
let rec run_all = function
  | [] -> None
  | f :: rest -> ( match f () with () -> run_all rest | exception e -> Some e)

(* Called with [t.m] held; returns with [t.m] held. *)
let run_batch t q =
  q.running <- true;
  let batch = List.rev q.items_rev in
  let dead = q.poison <> None in
  q.items_rev <- [];
  q.len <- 0;
  Mutex.unlock t.m;
  let exn = if dead then None else run_all batch in
  Mutex.lock t.m;
  (match exn with
  | Some e when q.poison = None -> q.poison <- Some e
  | _ -> ());
  q.running <- false;
  (* wake quiesce/capacity waiters, and any worker that now owns a queue
     this batch was holding *)
  Condition.broadcast t.idle;
  Condition.broadcast t.work

let worker t w =
  let nq = Array.length t.qs in
  (* Round-robin over the queues currently assigned to this worker.
     Once the pool is stopping, ownership is relaxed: any worker may
     drain any queue (no new submits can arrive, and the [running] flag
     still serializes each queue), so work is never stranded on a queue
     whose owner already exited. *)
  let pick cursor =
    let rec go i =
      if i >= nq then None
      else
        let qi = (cursor + i) mod nq in
        let q = t.qs.(qi) in
        if (q.owner = w || t.stop) && (not q.running) && q.len > 0 then
          Some qi
        else go (i + 1)
    in
    go 0
  in
  Mutex.lock t.m;
  let rec loop cursor =
    match pick cursor with
    | Some qi ->
      run_batch t t.qs.(qi);
      loop (qi + 1)
    | None ->
      if t.stop then Mutex.unlock t.m
      else begin
        Condition.wait t.work t.m;
        loop cursor
      end
  in
  loop 0

let create ?(queue_cap = 1024) ~workers ~queues () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  if queues < 1 then invalid_arg "Pool.create: queues must be >= 1";
  if queue_cap < 1 then invalid_arg "Pool.create: queue_cap must be >= 1";
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      qs =
        Array.init queues (fun i ->
            {
              items_rev = [];
              len = 0;
              owner = i mod workers;
              running = false;
              poison = None;
            });
      cap = queue_cap;
      n_workers = workers;
      stop = false;
      joined = false;
      domains = [];
    }
  in
  t.domains <- List.init workers (fun w -> Domain.spawn (fun () -> worker t w));
  t

let check_queue t qi =
  if qi < 0 || qi >= Array.length t.qs then
    invalid_arg (Fmt.str "Pool: bad queue index %d" qi)

let submit t ~queue f =
  check_queue t queue;
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  let q = t.qs.(queue) in
  if q.len >= t.cap then begin
    Mutex.unlock t.m;
    false
  end
  else begin
    q.items_rev <- f :: q.items_rev;
    q.len <- q.len + 1;
    if q.len = 1 then Condition.broadcast t.work;
    Mutex.unlock t.m;
    true
  end

let assign t ~queue ~worker =
  check_queue t queue;
  if worker < 0 || worker >= t.n_workers then
    invalid_arg (Fmt.str "Pool.assign: bad worker index %d" worker);
  Mutex.lock t.m;
  t.qs.(queue).owner <- worker;
  Condition.broadcast t.work;
  Mutex.unlock t.m

let worker_of t ~queue =
  check_queue t queue;
  Mutex.lock t.m;
  let w = t.qs.(queue).owner in
  Mutex.unlock t.m;
  w

let earliest_poison t =
  (* called with t.m held *)
  let found = ref None in
  Array.iter
    (fun q -> if !found = None && q.poison <> None then found := q.poison)
    t.qs;
  !found

let quiesce t =
  Mutex.lock t.m;
  let busy () =
    Array.exists (fun q -> q.len > 0 || q.running) t.qs
  in
  while busy () do
    Condition.wait t.idle t.m
  done;
  let p = earliest_poison t in
  Mutex.unlock t.m;
  match p with Some e -> raise e | None -> ()

let shutdown t =
  Mutex.lock t.m;
  let first = not t.joined in
  let doms = t.domains in
  if first then begin
    t.stop <- true;
    t.joined <- true;
    t.domains <- [];
    Condition.broadcast t.work
  end;
  Mutex.unlock t.m;
  if first then List.iter Domain.join doms;
  Mutex.lock t.m;
  let p = earliest_poison t in
  Mutex.unlock t.m;
  match p with Some e -> raise e | None -> ()
