open Speedscale_model
module Pd = Speedscale_core.Pd
module Npd = Speedscale_core.Npd
module Oa_engine = Speedscale_single.Oa_engine
module Yds = Speedscale_single.Yds
module Cll = Speedscale_single.Cll
module Avr = Speedscale_single.Avr
module Bkp = Speedscale_single.Bkp
module Moa = Speedscale_multi.Moa
module Mcll = Speedscale_multi.Mcll
module Mavr = Speedscale_multi.Mavr
module Partitioned = Speedscale_multi.Partitioned

(* ------------------------------------------------------------------ *)
(* Vocabulary                                                           *)
(* ------------------------------------------------------------------ *)

type params = {
  power : Power.t;
  machines : int;
  delta : float option;
  clock : (unit -> float) option;
}

let params ?delta ?clock ~power ~machines () =
  if machines < 1 then invalid_arg "Online.params: machines must be >= 1";
  { power; machines; delta; clock }

let params_of_instance ?delta ?clock (inst : Instance.t) =
  params ?delta ?clock ~power:inst.power ~machines:inst.machines ()

type decision = {
  job_id : int;
  accepted : bool;
  lambda : float option;
  planned_speed : float option;
}

(* Which scheduling model the engine's plans live in; `psched engines`
   groups the registry by this. *)
type family = Preemptive | Non_preemptive | Migratory

let family_name = function
  | Preemptive -> "preemptive"
  | Non_preemptive -> "non-preemptive"
  | Migratory -> "migratory"

type event = { decision : decision; wall_s : float }

(* ------------------------------------------------------------------ *)
(* Snapshot wire format (doc/ENGINE.md)                                 *)
(*                                                                      *)
(*   online-snapshot v1                                                 *)
(*   engine <name>                                                      *)
(*   alpha <float>                                                      *)
(*   machines <int>                                                     *)
(*   delta <float>            -- only when params.delta is Some         *)
(*   job <id> <r> <d> <w> <v|inf>   -- one line per arrival, in order   *)
(*                                                                      *)
(* Every engine is a deterministic function of its arrival prefix, so   *)
(* recording params + arrivals and replaying them on restore is an      *)
(* exact state transfer (PD's bit-exact native snapshot agrees: the     *)
(* replay recomputes the same timeline, loads and multipliers).         *)
(* ------------------------------------------------------------------ *)

let render_snapshot ~name ~(p : params) (jobs : Job.t list) =
  let b = Buffer.create 256 in
  let pf fmt = Fmt.kstr (Buffer.add_string b) fmt in
  pf "online-snapshot v1\n";
  pf "engine %s\n" name;
  pf "alpha %.17g\n" (Power.alpha p.power);
  pf "machines %d\n" p.machines;
  (match p.delta with None -> () | Some d -> pf "delta %.17g\n" d);
  List.iter
    (fun (j : Job.t) ->
      pf "job %d %.17g %.17g %.17g %s\n" j.id j.release j.deadline j.workload
        (if Float.equal j.value Float.infinity then "inf"
         else Fmt.str "%.17g" j.value))
    jobs;
  Buffer.contents b

type parsed_snapshot = {
  s_engine : string;
  s_params : params;
  s_jobs : Job.t list;  (** in arrival order *)
}

let parse_snapshot s =
  let fail lineno fmt =
    Fmt.kstr (fun m -> failwith (Fmt.str "Online.restore: line %d: %s" lineno m)) fmt
  in
  let engine = ref None
  and alpha = ref None
  and machines = ref None
  and delta = ref None
  and jobs_rev = ref [] in
  let parse_float what lineno v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> fail lineno "bad %s %S" what v
  in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | first :: _ when String.trim first = "online-snapshot v1" -> ()
  | _ -> failwith "Online.restore: not an online-snapshot v1");
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if lineno = 1 || line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "engine"; name ] -> engine := Some name
        | [ "alpha"; v ] -> alpha := Some (parse_float "alpha" lineno v)
        | [ "machines"; v ] -> (
          match int_of_string_opt v with
          | Some m -> machines := Some m
          | None -> fail lineno "bad machines %S" v)
        | [ "delta"; v ] -> delta := Some (parse_float "delta" lineno v)
        | [ "job"; id; r; d; w; v ] ->
          let id =
            match int_of_string_opt id with
            | Some id -> id
            | None -> fail lineno "bad job id %S" id
          in
          let value =
            if v = "inf" then Float.infinity
            else parse_float "value" lineno v
          in
          jobs_rev :=
            Job.make ~id ~release:(parse_float "release" lineno r)
              ~deadline:(parse_float "deadline" lineno d)
              ~workload:(parse_float "workload" lineno w)
              ~value
            :: !jobs_rev
        | _ -> fail lineno "unrecognized %S" line)
    lines;
  let need what = function
    | Some v -> v
    | None -> failwith (Fmt.str "Online.restore: missing '%s' line" what)
  in
  {
    s_engine = need "engine" !engine;
    s_params =
      params ?delta:!delta
        ~power:(Power.make (need "alpha" !alpha))
        ~machines:(need "machines" !machines) ();
    s_jobs = List.rev !jobs_rev;
  }

(* ------------------------------------------------------------------ *)
(* The engine signature and the wrapper functor                          *)
(* ------------------------------------------------------------------ *)

module type ONLINE = sig
  val name : string
  val description : string
  val family : family
  val applicable : params -> bool

  type state

  val create : params -> state
  val arrive : state -> Job.t -> decision
  val current_plan : state -> Schedule.t
  val finalize : state -> Schedule.t
  val set_observer : state -> (event -> unit) option -> unit
  val params_of : state -> params
  val snapshot : state -> string
  val restore : string -> state
end

(* What each concrete algorithm provides; [Make] adds the uniform
   arrival validation, seen-jobs recording, observer timing and
   replay-based snapshot/restore on top. *)
module type CORE = sig
  val name : string
  val description : string
  val family : family
  val applicable : params -> bool

  type core

  val create_core : params -> core
  val arrive_core : core -> Job.t -> decision
  val plan_core : core -> Schedule.t
end

module Make (C : CORE) : ONLINE = struct
  let name = C.name
  let description = C.description
  let family = C.family
  let applicable = C.applicable

  type state = {
    params : params;
    core : C.core;
    seen_ids : (int, unit) Hashtbl.t;
    mutable last_release : float;
    mutable started : bool;
    mutable seen_rev : Job.t list;  (** original arrivals, newest first *)
    mutable observer : (event -> unit) option;
  }

  let create p =
    if not (C.applicable p) then
      invalid_arg
        (Fmt.str "Online: engine %s is not applicable (machines = %d)" C.name
           p.machines);
    {
      params = p;
      core = C.create_core p;
      seen_ids = Hashtbl.create 16;
      last_release = Float.neg_infinity;
      started = false;
      seen_rev = [];
      observer = None;
    }

  let arrive st (j : Job.t) =
    if Hashtbl.mem st.seen_ids j.id then
      invalid_arg (Fmt.str "Online.arrive: duplicate job id %d" j.id);
    if st.started && j.release < st.last_release then
      invalid_arg
        (Fmt.str "Online.arrive: job %d released at %g before current time %g"
           j.id j.release st.last_release);
    let t0 = match st.params.clock with Some c -> c () | None -> 0.0 in
    let d = C.arrive_core st.core j in
    Hashtbl.replace st.seen_ids j.id ();
    st.last_release <- j.release;
    st.started <- true;
    st.seen_rev <- j :: st.seen_rev;
    let wall_s =
      match st.params.clock with Some c -> c () -. t0 | None -> 0.0
    in
    (match st.observer with
    | Some f -> f { decision = d; wall_s }
    | None -> ());
    d

  let current_plan st = C.plan_core st.core
  let finalize st = C.plan_core st.core
  let set_observer st f = st.observer <- f
  let params_of st = st.params
  let snapshot st = render_snapshot ~name ~p:st.params (List.rev st.seen_rev)

  let restore s =
    let parsed = parse_snapshot s in
    if parsed.s_engine <> name then
      failwith
        (Fmt.str "Online.restore: snapshot is for engine %s, not %s"
           parsed.s_engine name);
    let st = create parsed.s_params in
    List.iter (fun j -> ignore (arrive st j)) parsed.s_jobs;
    st
end

type engine = (module ONLINE)

(* ------------------------------------------------------------------ *)
(* Concrete engines                                                     *)
(* ------------------------------------------------------------------ *)

let any_machines (_ : params) = true
let single_only (p : params) = p.machines = 1

(* PD: natively incremental — its state (atomic intervals, committed
   loads, multipliers) is exactly the paper's.  The engine runs PD with
   ~gc:true: unbounded streams (psched stream, @stream-soak) keep only
   the live window resident, and decisions/schedules are provably
   identical to the full-history state (Pd.create's contract; the
   oracle suite in test_core.ml checks it).  Snapshots are unaffected —
   the Make wrapper's replay format records arrivals, not the
   timeline. *)
let pd : engine =
  (module Make (struct
    let name = "pd"
    let description = "primal-dual (the paper's algorithm, Listing 1)"
    let family = Migratory
    let applicable = any_machines

    type core = Pd.t

    let create_core (p : params) =
      Pd.create ?delta:p.delta ~gc:true ~power:p.power ~machines:p.machines ()

    let arrive_core core j =
      let d = Pd.arrive core j in
      {
        job_id = j.Job.id;
        accepted = d.Pd.accepted;
        lambda = Some d.Pd.lambda;
        planned_speed = Some d.Pd.planned_speed;
      }

    let plan_core = Pd.schedule
  end))

(* NPD: the non-preemptive sibling — same framework, same gc contract,
   but accepted jobs commit to one contiguous slot on one machine. *)
let npd : engine =
  (module Make (struct
    let name = "npd"
    let description = "non-preemptive primal-dual: pricing over contiguous slots"
    let family = Non_preemptive
    let applicable = any_machines

    type core = Npd.t

    let create_core (p : params) =
      Npd.create ?delta:p.delta ~gc:true ~power:p.power ~machines:p.machines ()

    let arrive_core core j =
      let d = Npd.arrive core j in
      {
        job_id = j.Job.id;
        accepted = d.Npd.accepted;
        lambda = Some d.Npd.lambda;
        planned_speed = Some d.Npd.planned_speed;
      }

    let plan_core = Npd.schedule
  end))

(* The OA-family engines share the replan-execute core. *)
let verdict_decision (j : Job.t) (v : Oa_engine.verdict) =
  {
    job_id = j.id;
    accepted = v.admitted;
    lambda = None;
    planned_speed = v.planned_speed;
  }

module Oa_like (S : sig
  val name : string
  val description : string
  val family : family
  val applicable : params -> bool
  val start : params -> Oa_engine.t
end) =
struct
  let name = S.name
  let description = S.description
  let family = S.family
  let applicable = S.applicable

  type core = Oa_engine.t

  let create_core = S.start
  let arrive_core core j = verdict_decision j (Oa_engine.step core j)
  let plan_core = Oa_engine.current_plan
end

let yds_plan ~now:_ jobs = Yds.schedule_slices jobs

let oa : engine =
  (module Make (Oa_like (struct
    let name = "oa"
    let description = "Optimal Available (single processor, must finish)"
    let family = Preemptive
    let applicable = single_only

    let start (_ : params) =
      Oa_engine.start ~machines:1 ~plan:yds_plan ~must_finish:true ()
  end)))

let cll : engine =
  (module Make (Oa_like (struct
    let name = "cll"
    let description = "Chan-Lam-Li: OA + speed-threshold rejection"
    let family = Preemptive
    let applicable = single_only

    let start (p : params) =
      Oa_engine.start ~machines:1 ~plan:yds_plan ~admit:(Cll.admission p.power)
        ()
  end)))

let moa : engine =
  (module Make (Oa_like (struct
    let name = "moa"
    let description = "multiprocessor Optimal Available (must finish)"
    let family = Migratory
    let applicable = any_machines
    let start (p : params) = Moa.start ~power:p.power ~machines:p.machines ()
  end)))

let mcll : engine =
  (module Make (Oa_like (struct
    let name = "mcll"
    let description = "naive multiprocessor CLL (the E22 strawman)"
    let family = Migratory
    let applicable = any_machines
    let start (p : params) = Mcll.start ~power:p.power ~machines:p.machines ()
  end)))

(* Replan-from-scratch engines: AVR/BKP/mAVR plans are memoryless
   functions of the available jobs (density profiles), so the standing
   plan after k arrivals is the batch plan of the k-prefix — executing
   incrementally and replanning from scratch coincide.  The adapter
   accumulates the prefix and re-derives the plan on demand. *)
module Accumulate (S : sig
  val name : string
  val description : string
  val family : family
  val applicable : params -> bool
  val must_finish : bool
  val batch : Instance.t -> Schedule.t
end) =
struct
  let name = S.name
  let description = S.description
  let family = S.family
  let applicable = S.applicable

  type core = { p : params; mutable jobs_rev : Job.t list }

  let create_core p = { p; jobs_rev = [] }

  let arrive_core core (j : Job.t) =
    core.jobs_rev <- j :: core.jobs_rev;
    { job_id = j.id; accepted = true; lambda = None; planned_speed = None }

  let plan_core core =
    match core.jobs_rev with
    | [] -> Schedule.make ~machines:core.p.machines ~rejected:[] []
    | jobs_rev ->
      (* Arrivals come in non-decreasing release order, so this sorted
         view is the arrival order modulo id ties — and [Instance.make]
         re-sorts with the same comparator, so rank i is ordered.(i). *)
      let ordered = List.stable_sort Job.compare_release (List.rev jobs_rev) in
      let viewed =
        if S.must_finish then
          List.map
            (fun (j : Job.t) ->
              Job.make ~id:j.id ~release:j.release ~deadline:j.deadline
                ~workload:j.workload ~value:Float.infinity)
            ordered
        else ordered
      in
      let rank_to_orig =
        Array.of_list (List.map (fun (j : Job.t) -> j.id) ordered)
      in
      let sub =
        Instance.make ~power:core.p.power ~machines:core.p.machines viewed
      in
      let planned = S.batch sub in
      Schedule.make ~machines:core.p.machines
        ~rejected:(List.map (fun r -> rank_to_orig.(r)) planned.rejected)
        (List.map
           (fun (s : Schedule.slice) -> { s with job = rank_to_orig.(s.job) })
           planned.slices)
end

let avr : engine =
  (module Make (Accumulate (struct
    let name = "avr"
    let description = "Average Rate (single processor, must finish)"
    let family = Preemptive
    let applicable = single_only
    let must_finish = true
    let batch = Avr.schedule
  end)))

let bkp : engine =
  (module Make (Accumulate (struct
    let name = "bkp"
    let description = "Bansal-Kimbrel-Pruhs (single processor, must finish)"
    let family = Preemptive
    let applicable = single_only
    let must_finish = true
    let batch inst = Bkp.schedule inst
  end)))

let mavr : engine =
  (module Make (Accumulate (struct
    let name = "mavr"
    let description = "multiprocessor Average Rate (must finish)"
    let family = Migratory
    let applicable = any_machines
    let must_finish = true
    let batch = Mavr.schedule
  end)))

(* Partitioned: the pinning is genuinely per-arrival (greedy against the
   committed per-processor energies); the plan is per-CPU YDS under the
   committed pinning. *)
let partitioned : engine =
  (module Make (struct
    let name = "partitioned"
    let description = "non-migratory: greedy per-arrival pinning + per-CPU YDS"
    let family = Preemptive
    let applicable = any_machines

    type core = Partitioned.t

    let create_core (p : params) =
      Partitioned.create ~power:p.power ~machines:p.machines ()

    let arrive_core core (j : Job.t) =
      ignore (Partitioned.arrive core j);
      { job_id = j.id; accepted = true; lambda = None; planned_speed = None }

    let plan_core = Partitioned.current_plan
  end))

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let all : engine list =
  [ pd; npd; oa; avr; bkp; cll; moa; mavr; mcll; partitioned ]

let name (e : engine) =
  let module E = (val e) in
  E.name

let description (e : engine) =
  let module E = (val e) in
  E.description

let family (e : engine) =
  let module E = (val e) in
  E.family

let applicable (e : engine) p =
  let module E = (val e) in
  E.applicable p

let find s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun e -> name e = s) all

(* ------------------------------------------------------------------ *)
(* Packed states                                                        *)
(* ------------------------------------------------------------------ *)

type t =
  | Packed : (module ONLINE with type state = 's) * 's -> t

let start (e : engine) p =
  let module E = (val e) in
  Packed ((module E), E.create p)

let arrive (Packed ((module E), st)) j = E.arrive st j
let current_plan (Packed ((module E), st)) = E.current_plan st
let finalize (Packed ((module E), st)) = E.finalize st
let set_observer (Packed ((module E), st)) f = E.set_observer st f
let params_of (Packed ((module E), st)) = E.params_of st
let snapshot (Packed ((module E), st)) = E.snapshot st

let engine_of (Packed ((module E), _)) : engine = (module E)

let restore s =
  let parsed = parse_snapshot s in
  match find parsed.s_engine with
  | None ->
    failwith (Fmt.str "Online.restore: unknown engine %S" parsed.s_engine)
  | Some e ->
    let module E = (val e) in
    Packed ((module E), E.restore s)

(* ------------------------------------------------------------------ *)
(* The batch fold                                                       *)
(* ------------------------------------------------------------------ *)

type run_result = { schedule : Schedule.t; decisions : decision list }

let run ?delta ?clock ?observer (e : engine) (inst : Instance.t) =
  let t = start e (params_of_instance ?delta ?clock inst) in
  (match observer with Some _ -> set_observer t observer | None -> ());
  let decisions_rev = ref [] in
  Array.iter
    (fun j -> decisions_rev := arrive t j :: !decisions_rev)
    inst.jobs;
  { schedule = finalize t; decisions = List.rev !decisions_rev }
