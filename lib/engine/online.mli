(** One interface for every online algorithm in the repository.

    The paper's whole point is {e online} decision-making: an algorithm
    commits at each release time [r_j], knowing only the jobs released so
    far.  This module makes that contract structural.  An engine is a
    first-class module of type {!ONLINE}: mutable state created from
    {!params}, driven one {!arrive} at a time, readable between arrivals
    as a {!current_plan}, and serializable with {!snapshot}/{!restore}
    (the checkpoint primitive sharded or restartable serving needs).  The
    batch entry points of the library ([Driver], [psched run]) are thin
    folds of [arrive] over the release-ordered jobs — online algorithms
    provably never see future jobs, because nothing ever hands them more
    than one arrival.

    The registry {!all} covers the ten online algorithms: PD (the
    paper's primal-dual scheduler), NPD (its non-preemptive sibling),
    the single-processor classics OA, AVR, BKP and CLL, and the
    multiprocessor baselines mOA, mAVR, mCLL and partitioned.  Offline
    algorithms (YDS, OPT-energy, OPT-exact, OPT-migratory) are
    deliberately absent — they cannot be expressed as per-arrival update
    rules, which is the point of keeping them out.

    Each engine declares the scheduling-model {!family} its plans live
    in (preemptive, non-preemptive, or migratory) — `psched engines`
    renders the registry grouped by it.  Orthogonally, three {e
    implementation} families sit behind the one signature:

    + {e native incremental} — PD wraps [Pd.arrive], whose state (atomic
      intervals, committed loads, multipliers) evolves per arrival;
    + {e replan-execute} — OA, CLL, mOA and mCLL drive the
      [Oa_engine] core: execute the standing plan up to the arrival,
      run the admission test, re-plan the remaining work;
    + {e replan-from-scratch} — AVR, BKP, mAVR and partitioned re-derive
      their full plan from the arrival prefix after each job (their plans
      are memoryless density profiles or fixed pinnings, so executing
      incrementally and replanning from scratch coincide; the admission
      decisions are still made strictly online).

    Every engine's decisions on a prefix are byte-identical whether or
    not a suffix exists (the qcheck prefix-stability property in
    [test_engine_online] pins this for each registry entry). *)

open Speedscale_model

(* ------------------------------------------------------------------ *)
(* Vocabulary                                                           *)
(* ------------------------------------------------------------------ *)

type params = {
  power : Power.t;
  machines : int;  (** [m >= 1] *)
  delta : float option;
      (** PD's rejection parameter [δ]; [None] means the engine default
          ([δ* = α^(1-α)] for PD).  Ignored by every other engine. *)
  clock : (unit -> float) option;
      (** Wall clock (e.g. [Unix.gettimeofday]) for the [wall_s] field of
          observer {!event}s; without it [wall_s] is reported as [0] and
          the whole execution is deterministic. *)
}

val params :
  ?delta:float ->
  ?clock:(unit -> float) ->
  power:Power.t ->
  machines:int ->
  unit ->
  params
(** Raises [Invalid_argument] if [machines < 1]. *)

val params_of_instance :
  ?delta:float -> ?clock:(unit -> float) -> Instance.t -> params
(** The instance's power and machine count. *)

type decision = {
  job_id : int;
  accepted : bool;
  lambda : float option;
      (** the price multiplier fixed at arrival, for engines that price
          admissions (PD: [λ̃_j]); [None] elsewhere *)
  planned_speed : float option;
      (** the candidate's speed in the admission-time plan, where the
          engine computed one (PD, CLL, mCLL); [None] elsewhere *)
}

type family = Preemptive | Non_preemptive | Migratory
(** The scheduling model an engine's plans live in: may a job be paused
    and resumed ([Preemptive]), must it run as one contiguous slot on
    one machine ([Non_preemptive]), or may it additionally move between
    machines ([Migratory])?  Single-machine engines are [Preemptive];
    [partitioned] pins jobs but preempts within a machine. *)

val family_name : family -> string
(** ["preemptive"], ["non-preemptive"], ["migratory"] — the spelling
    `psched engines` prints. *)

type event = { decision : decision; wall_s : float }
(** Per-arrival observer payload: the decision plus the wall-clock cost
    of processing it ([0] without [params.clock]).  Everything except
    [wall_s] is a deterministic function of the arrival prefix. *)

(* ------------------------------------------------------------------ *)
(* The engine signature                                                 *)
(* ------------------------------------------------------------------ *)

module type ONLINE = sig
  val name : string
  (** Registry key; also the [--algorithm] spelling (case-insensitive). *)

  val description : string

  val family : family
  (** The scheduling model the engine's plans live in. *)

  val applicable : params -> bool
  (** E.g. the single-processor classics require [machines = 1]. *)

  type state
  (** Mutable online state. *)

  val create : params -> state

  val arrive : state -> Job.t -> decision
  (** Process one arrival.  Jobs must arrive in non-decreasing release
      order with distinct ids; raises [Invalid_argument] otherwise. *)

  val current_plan : state -> Schedule.t
  (** Committed past plus the standing plan for all known remaining work,
      as one schedule.  Pure: reading it between arrivals does not
      advance the state. *)

  val finalize : state -> Schedule.t
  (** The schedule after the last arrival.  For every current engine this
      equals {!current_plan} (plans are pure projections); the separate
      entry point exists so engines with commit-on-close semantics fit
      the same signature. *)

  val set_observer : state -> (event -> unit) option -> unit
  (** Install (or clear) the per-arrival hook, called synchronously at
      the end of every {!arrive}. *)

  val params_of : state -> params
  (** The parameters the state was created with (after {!restore}: the
      parameters recorded in the snapshot). *)

  val snapshot : state -> string
  (** Serialize the online state as plain text (format: see
      doc/ENGINE.md).  Engines are deterministic functions of their
      arrival prefix, so the snapshot records [params] plus the arrivals
      seen so far; {!restore} replays them. *)

  val restore : string -> state
  (** Inverse of {!snapshot}: the restored state processes further
      arrivals identically to the original.  The clock is not
      serializable, so restored states report [wall_s = 0].  Raises
      [Failure] on malformed input or an [engine] header naming a
      different engine. *)
end

type engine = (module ONLINE)

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

val pd : engine
(** The paper's algorithm, [α^α]-competitive (Theorem 3). *)

val npd : engine
(** Non-preemptive primal-dual: the same λ-pricing admission over
    contiguous single-machine slots ([Npd]); no worst-case guarantee is
    claimed (E27 measures it). *)

val oa : engine
(** Optimal Available (single processor, must-finish view). *)

val avr : engine
(** Average Rate (single processor, must-finish view). *)

val bkp : engine
(** Bansal–Kimbrel–Pruhs (single processor, must-finish view). *)

val cll : engine
(** Chan–Lam–Li: OA + speed-threshold rejection. *)

val moa : engine
(** Multiprocessor Optimal Available (must-finish view). *)

val mavr : engine
(** Multiprocessor Average Rate (must-finish view). *)

val mcll : engine
(** Naive multiprocessor CLL (the E22 strawman). *)

val partitioned : engine
(** Non-migratory: greedy per-arrival pinning + per-CPU YDS. *)

val all : engine list
(** Every engine above, PD first. *)

val name : engine -> string
val description : engine -> string
val family : engine -> family
val applicable : engine -> params -> bool

val find : string -> engine option
(** Case-insensitive lookup by {!name}. *)

(* ------------------------------------------------------------------ *)
(* Packed states: driving an engine without knowing its state type      *)
(* ------------------------------------------------------------------ *)

type t
(** An engine paired with one of its states. *)

val start : engine -> params -> t
(** Raises [Invalid_argument] when the engine is not {!applicable}. *)

val arrive : t -> Job.t -> decision
val current_plan : t -> Schedule.t
val finalize : t -> Schedule.t
val set_observer : t -> (event -> unit) option -> unit

val params_of : t -> params
(** The parameters behind the packed state (post-{!restore}: the ones
    recorded in the snapshot) — what sharded serving needs to compute
    per-shard summaries without carrying params out of band. *)

val snapshot : t -> string
val engine_of : t -> engine

val restore : string -> t
(** Reads the [engine <name>] header and dispatches to that engine's
    [restore].  Raises [Failure] on an unknown engine or malformed
    snapshot. *)

(* ------------------------------------------------------------------ *)
(* The batch fold                                                       *)
(* ------------------------------------------------------------------ *)

type run_result = {
  schedule : Schedule.t;
  decisions : decision list;  (** in arrival order *)
}

val run :
  ?delta:float ->
  ?clock:(unit -> float) ->
  ?observer:(event -> unit) ->
  engine ->
  Instance.t ->
  run_result
(** Feed the instance's jobs in release order and finalize — the only
    way batch code consumes an online engine, which is what makes the
    online-ness structural. *)
