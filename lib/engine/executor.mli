(** Operational execution of schedules: a discrete-event replay engine.

    The analytic layer ([Schedule]) treats a schedule as a set of slices
    and checks feasibility by sorting and summing.  This module gives the
    same object {e operational} semantics: a virtual clock advances
    through the schedule, every processor runs a little state machine, and
    each observable transition becomes an {!event} — arrival, start,
    speed change, preemption, migration, completion, deadline miss,
    abandonment.  Replaying is how a real runtime would consume the
    scheduler's output, and it double-checks the analytic layer from an
    independent direction: work is accounted by integrating the simulated
    execution, lifecycle legality is enforced transition by transition,
    and the event counts must agree with the statistics
    [Speedscale_metrics.Structure] computes combinatorially.

    The engine is deterministic and allocation-light; traces can be
    exported as CSV for external tooling. *)

open Speedscale_model

type event_kind =
  | Arrival  (** the job becomes known ([r_j]) *)
  | Start  (** first time the job runs *)
  | Speed_change  (** same processor, new speed, contiguous in time *)
  | Preempt  (** the job stops running with work remaining *)
  | Resume  (** runs again after a preemption, same processor *)
  | Migrate  (** runs again on a different processor *)
  | Complete  (** full workload processed *)
  | Reject  (** the algorithm declared the job rejected *)
  | Deadline_miss
      (** deadline passed with work remaining on a non-rejected job —
          indicates a scheduler bug; never emitted by the algorithms in
          this repository *)

type event = {
  time : float;
  kind : event_kind;
  job : int;
  proc : int;  (** processor involved, [-1] for processor-less events *)
  speed : float;  (** speed after the event, 0 where meaningless *)
}

type job_outcome = {
  job : int;
  work_done : float;
  completed : bool;
  completion_time : float option;
  n_preemptions : int;
  n_migrations : int;
}

type run = {
  events : event list;  (** chronological *)
  outcomes : job_outcome array;  (** indexed by job id *)
  total_energy : float;  (** integrated over the replay *)
  makespan : float;  (** last moment any processor is busy (0 if none) *)
}

val replay : Instance.t -> Schedule.t -> run
(** Replays the schedule against the instance.  The schedule does not have
    to be feasible — infeasibilities surface as [Deadline_miss] events and
    [completed = false] outcomes, which is exactly what makes the engine
    useful as an independent checker. *)

val kind_name : event_kind -> string

val to_csv : run -> string
(** One line per event: [time,kind,job,proc,speed] with a header row. *)

val pp_event : Format.formatter -> event -> unit
