open Speedscale_util
open Speedscale_model

type event_kind =
  | Arrival
  | Start
  | Speed_change
  | Preempt
  | Resume
  | Migrate
  | Complete
  | Reject
  | Deadline_miss

type event = {
  time : float;
  kind : event_kind;
  job : int;
  proc : int;
  speed : float;
}

type job_outcome = {
  job : int;
  work_done : float;
  completed : bool;
  completion_time : float option;
  n_preemptions : int;
  n_migrations : int;
}

type run = {
  events : event list;
  outcomes : job_outcome array;
  total_energy : float;
  makespan : float;
}

let kind_name = function
  | Arrival -> "arrival"
  | Start -> "start"
  | Speed_change -> "speed-change"
  | Preempt -> "preempt"
  | Resume -> "resume"
  | Migrate -> "migrate"
  | Complete -> "complete"
  | Reject -> "reject"
  | Deadline_miss -> "deadline-miss"

(* total order used to break time ties deterministically *)
let kind_rank = function
  | Arrival -> 0
  | Reject -> 1
  | Complete -> 2
  | Preempt -> 3
  | Speed_change -> 4
  | Start -> 5
  | Resume -> 6
  | Migrate -> 7
  | Deadline_miss -> 8

let gap_tol = Feq.tol_snap

type job_state = {
  mutable work : float;
  mutable started : bool;
  mutable last_end : float;
  mutable last_proc : int;
  mutable done_at : float option;
  mutable preemptions : int;
  mutable migrations : int;
}

let replay (inst : Instance.t) (sched : Schedule.t) =
  let n = Instance.n_jobs inst in
  let states =
    Array.init n (fun _ ->
        {
          work = 0.0;
          started = false;
          last_end = Float.neg_infinity;
          last_proc = -1;
          done_at = None;
          preemptions = 0;
          migrations = 0;
        })
  in
  let events = ref [] in
  let emit time kind job proc speed =
    events := { time; kind; job; proc; speed } :: !events
  in
  (* arrivals and rejections *)
  Array.iter
    (fun (j : Job.t) ->
      emit j.release Arrival j.id (-1) 0.0;
      if List.mem j.id sched.rejected then emit j.release Reject j.id (-1) 0.0)
    inst.jobs;
  (* per-job slice walks, in global time order per job *)
  let energy = Ksum.create () in
  let makespan = ref 0.0 in
  let by_job = Array.make n [] in
  List.iter
    (fun (sl : Schedule.slice) ->
      if sl.job >= 0 && sl.job < n then by_job.(sl.job) <- sl :: by_job.(sl.job))
    sched.slices;
  Array.iteri
    (fun id slices ->
      let job = Instance.job inst id in
      let st = states.(id) in
      let sorted =
        List.sort (fun (a : Schedule.slice) b -> Float.compare a.t0 b.t0) slices
      in
      List.iter
        (fun (sl : Schedule.slice) ->
          let dur = sl.t1 -. sl.t0 in
          Ksum.add energy (Power.energy inst.power ~speed:sl.speed ~duration:dur);
          if sl.t1 > !makespan then makespan := sl.t1;
          (* lifecycle transitions at the head of the slice *)
          (if not st.started then begin
             st.started <- true;
             emit sl.t0 Start id sl.proc sl.speed
           end
           else begin
             let contiguous =
               sl.t0 -. st.last_end <= gap_tol *. (1.0 +. Float.abs sl.t0)
             in
             if sl.proc <> st.last_proc then begin
               emit st.last_end Preempt id st.last_proc 0.0;
               st.preemptions <- st.preemptions + 1;
               st.migrations <- st.migrations + 1;
               emit sl.t0 Migrate id sl.proc sl.speed
             end
             else if not contiguous then begin
               emit st.last_end Preempt id st.last_proc 0.0;
               st.preemptions <- st.preemptions + 1;
               emit sl.t0 Resume id sl.proc sl.speed
             end
             else emit sl.t0 Speed_change id sl.proc sl.speed
           end);
          (* work accounting; completion can land inside the slice *)
          let before = st.work in
          st.work <- st.work +. (dur *. sl.speed);
          let target = job.workload *. (1.0 -. Feq.tol_snap) in
          if st.done_at = None && st.work >= target then begin
            let need = job.workload -. before in
            let t_done =
              if sl.speed > 0.0 then
                Float.min sl.t1 (sl.t0 +. (need /. sl.speed))
              else sl.t1
            in
            st.done_at <- Some t_done;
            emit t_done Complete id sl.proc 0.0
          end;
          st.last_end <- sl.t1;
          st.last_proc <- sl.proc)
        sorted;
      (* deadline verdicts *)
      if st.done_at = None && not (List.mem id sched.rejected) then
        emit job.deadline Deadline_miss id (-1) 0.0)
    by_job;
  let outcomes =
    Array.init n (fun id ->
        let st = states.(id) in
        {
          job = id;
          work_done = st.work;
          completed = st.done_at <> None;
          completion_time = st.done_at;
          n_preemptions = st.preemptions;
          n_migrations = st.migrations;
        })
  in
  let events =
    List.sort
      (fun a b ->
        match Float.compare a.time b.time with
        | 0 -> (
          match Int.compare (kind_rank a.kind) (kind_rank b.kind) with
          | 0 -> Int.compare a.job b.job
          | c -> c)
        | c -> c)
      !events
  in
  { events; outcomes; total_energy = Ksum.total energy; makespan = !makespan }

let to_csv run =
  let b = Buffer.create 1024 in
  Buffer.add_string b "time,kind,job,proc,speed\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Fmt.str "%.9g,%s,%d,%d,%.9g\n" e.time (kind_name e.kind) e.job
           e.proc e.speed))
    run.events;
  Buffer.contents b

let pp_event ppf e =
  Format.fprintf ppf "%8.4f %-12s job %d proc %d speed %.4g" e.time
    (kind_name e.kind) e.job e.proc e.speed
