open Speedscale_model

let must_finish inst = Instance.with_values inst (fun _ -> Float.infinity)

let admit_all (inst : Instance.t) =
  Speedscale_single.Oa_engine.run (must_finish inst)

let reject_all (inst : Instance.t) =
  Schedule.make ~machines:inst.machines
    ~rejected:(List.init (Instance.n_jobs inst) Fun.id)
    []

let value_density_threshold c (inst : Instance.t) =
  let admit ~now:_ ~plan:_ ~candidate =
    Job.value_density (candidate : Job.t) >= c
  in
  Speedscale_single.Oa_engine.run ~admit inst

let best_static_threshold ~candidates (inst : Instance.t) =
  match candidates with
  | [] -> invalid_arg "Baselines.best_static_threshold: no candidates"
  | _ ->
    List.fold_left
      (fun (best_c, best_cost) c ->
        let cost = Schedule.cost inst (value_density_threshold c inst) in
        if Cost.total cost < Cost.total best_cost then (c, cost)
        else (best_c, best_cost))
      (Float.nan, Cost.make ~energy:Float.max_float ~lost_value:0.0)
      candidates
