open Speedscale_model

type algorithm = {
  name : string;
  description : string;
  applicable : Instance.t -> bool;
  run : Instance.t -> Schedule.t;
}

type report = {
  algorithm : string;
  cost : Cost.t;
  schedule : Schedule.t;
  validation : (unit, string) result;
  elapsed_s : float;
}

let evaluate alg inst =
  if not (alg.applicable inst) then
    invalid_arg
      (Fmt.str "Driver.evaluate: %s is not applicable here" alg.name);
  let t0 = Unix.gettimeofday () in
  let schedule = alg.run inst in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  {
    algorithm = alg.name;
    cost = Schedule.cost inst schedule;
    schedule;
    validation = Schedule.validate inst schedule;
    elapsed_s;
  }

let single_only (inst : Instance.t) = inst.machines = 1
let always _ = true
let must_finish_view inst = Instance.with_values inst (fun _ -> Float.infinity)

let pd =
  {
    name = "PD";
    description = "primal-dual online (this paper), delta = alpha^(1-alpha)";
    applicable = always;
    run = (fun inst -> (Speedscale_core.Pd.run inst).schedule);
  }

let pd_with_delta delta =
  {
    name = Fmt.str "PD(delta=%.4g)" delta;
    description = "primal-dual online with explicit delta";
    applicable = always;
    run = (fun inst -> (Speedscale_core.Pd.run ~delta inst).schedule);
  }

let oa =
  {
    name = "OA";
    description = "Optimal Available (single processor, must-finish)";
    applicable = single_only;
    run = (fun inst -> Speedscale_single.Oa.schedule (must_finish_view inst));
  }

let avr =
  {
    name = "AVR";
    description = "Average Rate (single processor, must-finish)";
    applicable = single_only;
    run = (fun inst -> Speedscale_single.Avr.schedule (must_finish_view inst));
  }

let bkp =
  {
    name = "BKP";
    description = "Bansal-Kimbrel-Pruhs (single processor, must-finish)";
    applicable = single_only;
    run = (fun inst -> Speedscale_single.Bkp.schedule (must_finish_view inst));
  }

let cll =
  {
    name = "CLL";
    description = "Chan-Lam-Li: OA + speed-threshold rejection";
    applicable = single_only;
    run = Speedscale_single.Cll.schedule;
  }

let moa =
  {
    name = "mOA";
    description = "multiprocessor Optimal Available (must-finish)";
    applicable = always;
    run = (fun inst -> Speedscale_multi.Moa.schedule (must_finish_view inst));
  }

let mopt =
  {
    name = "OPT-energy";
    description = "offline energy optimum, all jobs finished";
    applicable = always;
    run = (fun inst -> Speedscale_multi.Mopt.schedule (must_finish_view inst));
  }

let mavr =
  {
    name = "mAVR";
    description = "multiprocessor Average Rate (must-finish)";
    applicable = always;
    run = (fun inst -> Speedscale_multi.Mavr.schedule (must_finish_view inst));
  }

let mcll =
  {
    name = "mCLL";
    description = "naive multiprocessor CLL (mOA core + threshold admission)";
    applicable = always;
    run = Speedscale_multi.Mcll.schedule;
  }

let partitioned =
  {
    name = "partitioned";
    description = "non-migratory: greedy job->processor pinning + per-CPU YDS";
    applicable = always;
    run =
      (fun inst -> Speedscale_multi.Partitioned.schedule (must_finish_view inst));
  }

let opt_small =
  {
    name = "OPT-exact";
    description = "exact profitable offline optimum (subset enumeration)";
    applicable = (fun inst -> Instance.n_jobs inst <= 14);
    run = (fun inst -> snd (Speedscale_multi.Opt.best_schedule inst));
  }

let all = [ pd; oa; avr; bkp; cll; moa; mavr; mcll; partitioned; mopt; opt_small ]
