open Speedscale_model
module Online = Speedscale_engine.Online

type algorithm = {
  name : string;
  description : string;
  applicable : Instance.t -> bool;
  run : Instance.t -> Schedule.t;
  engine : Online.engine option;
}

type report = {
  algorithm : string;
  cost : Cost.t;
  schedule : Schedule.t;
  validation : (unit, string) result;
  elapsed_s : float;
}

let evaluate ?clock alg inst =
  if not (alg.applicable inst) then
    invalid_arg
      (Fmt.str "Driver.evaluate: %s is not applicable here" alg.name);
  let now = match clock with Some c -> c | None -> fun () -> 0.0 in
  let t0 = now () in
  let schedule = alg.run inst in
  let elapsed_s = now () -. t0 in
  {
    algorithm = alg.name;
    cost = Schedule.cost inst schedule;
    schedule;
    validation = Schedule.validate inst schedule;
    elapsed_s;
  }

let always _ = true
let must_finish_view inst = Instance.with_values inst (fun _ -> Float.infinity)

(* Online algorithms are the registry engines folded over the instance's
   release-ordered jobs — batch simulation is a projection of the online
   interface, not a separate code path. *)
let of_engine ~name (e : Online.engine) =
  {
    name;
    description = Online.description e;
    applicable =
      (fun (inst : Instance.t) ->
        Online.applicable e (Online.params_of_instance inst));
    run = (fun inst -> (Online.run e inst).schedule);
    engine = Some e;
  }

let pd =
  {
    (of_engine ~name:"PD" Online.pd) with
    description = "primal-dual online (this paper), delta = alpha^(1-alpha)";
  }

let pd_with_delta delta =
  {
    name = Fmt.str "PD(delta=%.4g)" delta;
    description = "primal-dual online with explicit delta";
    applicable = always;
    run = (fun inst -> (Online.run ~delta Online.pd inst).schedule);
    engine = Some Online.pd;
  }

let npd = of_engine ~name:"NPD" Online.npd
let oa = of_engine ~name:"OA" Online.oa
let avr = of_engine ~name:"AVR" Online.avr
let bkp = of_engine ~name:"BKP" Online.bkp
let cll = of_engine ~name:"CLL" Online.cll
let moa = of_engine ~name:"mOA" Online.moa
let mavr = of_engine ~name:"mAVR" Online.mavr
let mcll = of_engine ~name:"mCLL" Online.mcll
let partitioned = of_engine ~name:"partitioned" Online.partitioned

(* The offline references stay batch-only: they need the whole instance
   up front, which is exactly why they are not in the online registry. *)
let mopt =
  {
    name = "OPT-energy";
    description = "offline energy optimum, all jobs finished";
    applicable = always;
    run = (fun inst -> Speedscale_multi.Mopt.schedule (must_finish_view inst));
    engine = None;
  }

let opt_small =
  {
    name = "OPT-exact";
    description = "exact profitable offline optimum (subset enumeration)";
    applicable = (fun inst -> Instance.n_jobs inst <= 14);
    run = (fun inst -> snd (Speedscale_multi.Opt.best_schedule inst));
    engine = None;
  }

let opt_flow =
  {
    name = "OPT-migratory";
    description = "exact migratory energy optimum (flow peeling), all finished";
    (* each peeling round is a handful of max-flows on an O(n^2)-edge
       network; keep batch comparisons to moderate instances *)
    applicable = (fun inst -> Instance.n_jobs inst <= 60);
    run =
      (fun inst -> Speedscale_flow.Migratory.schedule (must_finish_view inst));
    engine = None;
  }

let all =
  [
    pd; npd; oa; avr; bkp; cll; moa; mavr; mcll; partitioned; mopt; opt_small;
    opt_flow;
  ]
