(** Canonical (non-clever) admission policies — the strawmen the paper's
    introduction argues against.

    "Coupling [speed scaling] with canonical or standard algorithms wastes
    much potential.  Only by designing sophisticated algorithms can one
    hope to fully exploit their power."  These baselines make that claim
    measurable (experiment E17): each combines a {e static} admission rule
    with the same OA execution core PD's competitors use, so any gap to PD
    is attributable to the admission/pricing logic alone.

    Single-processor (they ride on [Oa_engine]). *)

open Speedscale_model

val admit_all : Instance.t -> Schedule.t
(** Finish everything, however expensive (OA on the full set). *)

val reject_all : Instance.t -> Schedule.t
(** Do nothing; lose every value. *)

val value_density_threshold : float -> Instance.t -> Schedule.t
(** Admit a job iff [v_j / w_j >= c] — the obvious static rule.  It knows
    the job but not the congestion, which is exactly what breaks it when
    load varies over time. *)

val best_static_threshold :
  candidates:float list -> Instance.t -> float * Cost.t
(** Clairvoyantly pick the best threshold from [candidates] {e in
    hindsight} for this instance — an upper bound on what any static rule
    of this family can do.  Returns (threshold, its cost). *)
