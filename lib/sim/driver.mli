(** A uniform way to run every scheduler in the repository on an instance
    and collect comparable, validated results.

    The online algorithms are not implemented here: they live in the
    [Speedscale_engine.Online] registry as incremental per-arrival
    engines, and the driver's batch [run] is a thin fold of
    [Online.arrive] over the release-ordered jobs.  The driver adds the
    offline references (OPT-energy, OPT-exact, OPT-migratory), which
    need the whole instance up front and therefore cannot be online
    engines.

    Each algorithm is wrapped as a {!algorithm} record with an
    applicability predicate (single- vs multi-processor, profitable vs
    must-finish), so benchmark sweeps can ask "everyone who can handle this
    instance" without special-casing. Every run is validated against the
    model's feasibility rules; an algorithm returning an infeasible
    schedule is a bug, and the driver surfaces it as an [Error]. *)

open Speedscale_model

type algorithm = {
  name : string;
  description : string;
  applicable : Instance.t -> bool;
  run : Instance.t -> Schedule.t;
  engine : Speedscale_engine.Online.engine option;
      (** the registry engine the batch [run] folds, when the algorithm is
          online; [None] for the offline references *)
}

type report = {
  algorithm : string;
  cost : Cost.t;
  schedule : Schedule.t;
  validation : (unit, string) result;
  elapsed_s : float;  (** [0] unless {!evaluate} was given a clock *)
}

val evaluate : ?clock:(unit -> float) -> algorithm -> Instance.t -> report
(** Run, cost and validate.  [clock] (e.g. [Unix.gettimeofday]) enables
    the [elapsed_s] timing; without it the report is a deterministic
    function of the instance, which is what tests and observability
    records want. *)

val of_engine :
  name:string -> Speedscale_engine.Online.engine -> algorithm
(** Wrap a registry engine as a batch algorithm (fold + finalize), keeping
    the engine reachable through the [engine] field for streaming/replay
    consumers. *)

val pd : algorithm
(** The paper's algorithm with the optimal [δ = α^(1-α)]. *)

val pd_with_delta : float -> algorithm
(** PD with an explicit δ (for the E6 sweep). *)

val npd : algorithm
(** Non-preemptive primal-dual: λ-pricing over contiguous
    single-machine slots (no proven guarantee — E27 measures it). *)

val oa : algorithm
(** Single-processor Optimal Available (values forced to [infinity]). *)

val avr : algorithm
val bkp : algorithm
val cll : algorithm

val moa : algorithm
(** Multiprocessor OA (energy-only). *)

val mavr : algorithm
(** Multiprocessor Average Rate (energy-only). *)

val mcll : algorithm
(** Naive multiprocessor CLL (no proven guarantee — the E22 strawman). *)

val partitioned : algorithm
(** Non-migratory baseline: greedy pinning + per-processor YDS. *)

val mopt : algorithm
(** Offline energy optimum (values forced to [infinity]). *)

val opt_small : algorithm
(** Exact profitable offline optimum by enumeration; applicable to at most
    14 jobs. *)

val opt_flow : algorithm
(** Exact migratory energy optimum via flow peeling
    ([Speedscale_flow.Migratory]), values forced to [infinity];
    applicable to at most 60 jobs.  Unlike {!mopt} it carries a
    combinatorial optimality certificate (E28). *)

val all : algorithm list
(** Every algorithm above, PD first. *)
