(** A uniform way to run every scheduler in the repository on an instance
    and collect comparable, validated results.

    Each algorithm is wrapped as a {!algorithm} record with an
    applicability predicate (single- vs multi-processor, profitable vs
    must-finish), so benchmark sweeps can ask "everyone who can handle this
    instance" without special-casing. Every run is validated against the
    model's feasibility rules; an algorithm returning an infeasible
    schedule is a bug, and the driver surfaces it as an [Error]. *)

open Speedscale_model

type algorithm = {
  name : string;
  description : string;
  applicable : Instance.t -> bool;
  run : Instance.t -> Schedule.t;
}

type report = {
  algorithm : string;
  cost : Cost.t;
  schedule : Schedule.t;
  validation : (unit, string) result;
  elapsed_s : float;
}

val evaluate : algorithm -> Instance.t -> report
(** Run, time, cost and validate. *)

val pd : algorithm
(** The paper's algorithm with the optimal [δ = α^(1-α)]. *)

val pd_with_delta : float -> algorithm
(** PD with an explicit δ (for the E6 sweep). *)

val oa : algorithm
(** Single-processor Optimal Available (values forced to [infinity]). *)

val avr : algorithm
val bkp : algorithm
val cll : algorithm

val moa : algorithm
(** Multiprocessor OA (energy-only). *)

val mavr : algorithm
(** Multiprocessor Average Rate (energy-only). *)

val mcll : algorithm
(** Naive multiprocessor CLL (no proven guarantee — the E22 strawman). *)

val partitioned : algorithm
(** Non-migratory baseline: greedy pinning + per-processor YDS. *)

val mopt : algorithm
(** Offline energy optimum (values forced to [infinity]). *)

val opt_small : algorithm
(** Exact profitable offline optimum by enumeration; applicable to at most
    14 jobs. *)

val all : algorithm list
(** Every algorithm above, PD first. *)
