(** Reporters: human-readable text and machine-readable JSON. *)

val pp_human : Format.formatter -> Finding.t list -> unit
(** One [file:line:col: [rule] severity: message] line per finding plus a
    summary count. *)

val pp_json : Format.formatter -> Finding.t list -> unit
(** A JSON array of [{file, line, col, rule, severity, message}]. *)
