(** Reporters: human-readable text, machine-readable JSON, and SARIF. *)

val pp_human : Format.formatter -> Finding.t list -> unit
(** One [file:line:col: [rule] severity: message] line per finding plus a
    summary count. *)

val pp_json : Format.formatter -> Finding.t list -> unit
(** A JSON array of [{file, line, col, rule, severity, message}]. *)

val pp_sarif : rules:Rule.t list -> Format.formatter -> Finding.t list -> unit
(** SARIF 2.1.0 with the given rules as the driver's rule metadata and one
    [result] per finding.  Deterministic for a fixed rule list and finding
    order, so golden fixtures can byte-compare the output. *)
