open Parsetree

let name = "float-eq"

let doc =
  "polymorphic =, <>, ==, != or compare applied to a float expression; \
   use Float.equal / Float.compare or Util.Feq (DESIGN.md section 5)"

let eq_paths =
  [
    [ "=" ]; [ "<>" ]; [ "==" ]; [ "!=" ]; [ "compare" ];
    [ "Stdlib"; "=" ]; [ "Stdlib"; "<>" ]; [ "Stdlib"; "compare" ];
  ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_ident_paths =
  [
    [ "Float"; "infinity" ]; [ "Float"; "neg_infinity" ]; [ "Float"; "nan" ];
    [ "Float"; "pi" ]; [ "Float"; "epsilon" ]; [ "Float"; "max_float" ];
    [ "Float"; "min_float" ]; [ "infinity" ]; [ "neg_infinity" ]; [ "nan" ];
    [ "max_float" ]; [ "min_float" ]; [ "epsilon_float" ];
  ]

let float_fun_paths =
  [
    [ "float_of_int" ]; [ "sqrt" ]; [ "exp" ]; [ "log" ]; [ "log10" ];
    [ "cos" ]; [ "sin" ]; [ "tan" ]; [ "atan" ]; [ "abs_float" ];
    [ "Float"; "abs" ]; [ "Float"; "of_int" ]; [ "Float"; "exp" ];
    [ "Float"; "log" ]; [ "Float"; "sqrt" ]; [ "Float"; "round" ];
    [ "Float"; "min" ]; [ "Float"; "max" ];
  ]

(* Syntactic approximation of "this expression has type float". *)
let floatish e =
  let e = Astq.strip e in
  Option.is_some (Astq.float_const e)
  || Astq.path_is e float_ident_paths
  ||
  match Astq.apply_parts e with
  | Some (f, _) -> (
    Astq.path_is f float_fun_paths
    ||
    match Astq.path f with
    | Some [ op ] -> List.mem op float_ops
    | _ -> false)
  | None -> false

let check _ctx str =
  let acc = ref [] in
  Astq.iter_expressions str (fun e ->
      match Astq.apply_parts e with
      | Some (f, [ a; b ]) when Astq.path_is f eq_paths && (floatish a || floatish b)
        ->
        acc :=
          Finding.of_location ~rule:name ~severity:Finding.Error ~message:doc
            e.pexp_loc
          :: !acc
      | _ -> ());
  List.rev !acc

let rule = Rule.make ~doc ~severity:Finding.Error ~check_structure:check name
