open Parsetree

let name = "float-eq"

let doc =
  "polymorphic =, <>, ==, !=, compare, or the compare-with-0 idiom applied \
   to a float expression; use Float.equal / Float.compare or Util.Feq \
   (DESIGN.md section 5)"

let eq_paths =
  [
    [ "=" ]; [ "<>" ]; [ "==" ]; [ "!=" ]; [ "compare" ];
    [ "Stdlib"; "=" ]; [ "Stdlib"; "<>" ]; [ "Stdlib"; "compare" ];
  ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_ident_paths =
  [
    [ "Float"; "infinity" ]; [ "Float"; "neg_infinity" ]; [ "Float"; "nan" ];
    [ "Float"; "pi" ]; [ "Float"; "epsilon" ]; [ "Float"; "max_float" ];
    [ "Float"; "min_float" ]; [ "infinity" ]; [ "neg_infinity" ]; [ "nan" ];
    [ "max_float" ]; [ "min_float" ]; [ "epsilon_float" ];
  ]

let float_fun_paths =
  [
    [ "float_of_int" ]; [ "sqrt" ]; [ "exp" ]; [ "log" ]; [ "log10" ];
    [ "cos" ]; [ "sin" ]; [ "tan" ]; [ "atan" ]; [ "abs_float" ];
    [ "Float"; "abs" ]; [ "Float"; "of_int" ]; [ "Float"; "exp" ];
    [ "Float"; "log" ]; [ "Float"; "sqrt" ]; [ "Float"; "round" ];
    [ "Float"; "min" ]; [ "Float"; "max" ];
  ]

(* Syntactic approximation of "this expression has type float". *)
let floatish e =
  let e = Astq.strip e in
  Option.is_some (Astq.float_const e)
  || Astq.path_is e float_ident_paths
  ||
  match Astq.apply_parts e with
  | Some (f, _) -> (
    Astq.path_is f float_fun_paths
    ||
    match Astq.path f with
    | Some [ op ] -> List.mem op float_ops
    | _ -> false)
  | None -> false

let compare_paths = [ [ "compare" ]; [ "Stdlib"; "compare" ] ]

let is_zero_literal e =
  match (Astq.strip e).pexp_desc with
  | Pexp_constant (Pconst_integer ("0", None)) -> true
  | _ -> false

(* [compare a b] with a float operand, for the [compare x y = 0] idiom. *)
let float_compare_app e =
  match Astq.apply_parts e with
  | Some (f, [ a; b ]) when Astq.path_is f compare_paths && (floatish a || floatish b)
    ->
    Some (Astq.strip e).pexp_loc
  | _ -> None

let check _ctx str =
  let acc = ref [] in
  (* inner [compare a b] applications already reported as part of a
     [compare a b = 0] idiom — the outer form carries the finding *)
  let skip = Hashtbl.create 4 in
  let flag (e : expression) =
    acc :=
      Finding.of_location ~rule:name ~severity:Finding.Error ~message:doc
        e.pexp_loc
      :: !acc
  in
  Astq.iter_expressions str (fun e ->
      if not (Hashtbl.mem skip (Astq.strip e).pexp_loc.loc_start.pos_cnum) then
        match Astq.apply_parts e with
        | Some (f, [ a; b ]) when Astq.path_is f eq_paths ->
          let idiom =
            if is_zero_literal b then float_compare_app a
            else if is_zero_literal a then float_compare_app b
            else None
          in
          (match idiom with
          | Some inner_loc ->
            Hashtbl.replace skip inner_loc.Location.loc_start.pos_cnum ();
            flag e
          | None -> if floatish a || floatish b then flag e)
        | _ -> ());
  List.rev !acc

let rule = Rule.make ~doc ~severity:Finding.Error ~check_structure:check name
