open Parsetree

let name = "float-eq"

let doc =
  "polymorphic =, <>, ==, !=, compare, or the compare-with-0 idiom applied \
   to a float expression; use Float.equal / Float.compare or Util.Feq \
   (DESIGN.md section 5)"

let eq_paths =
  [
    [ "=" ]; [ "<>" ]; [ "==" ]; [ "!=" ]; [ "compare" ];
    [ "Stdlib"; "=" ]; [ "Stdlib"; "<>" ]; [ "Stdlib"; "compare" ];
  ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_ident_paths =
  [
    [ "Float"; "infinity" ]; [ "Float"; "neg_infinity" ]; [ "Float"; "nan" ];
    [ "Float"; "pi" ]; [ "Float"; "epsilon" ]; [ "Float"; "max_float" ];
    [ "Float"; "min_float" ]; [ "infinity" ]; [ "neg_infinity" ]; [ "nan" ];
    [ "max_float" ]; [ "min_float" ]; [ "epsilon_float" ];
  ]

let float_fun_paths =
  [
    [ "float_of_int" ]; [ "sqrt" ]; [ "exp" ]; [ "log" ]; [ "log10" ];
    [ "cos" ]; [ "sin" ]; [ "tan" ]; [ "atan" ]; [ "abs_float" ];
    [ "Float"; "abs" ]; [ "Float"; "of_int" ]; [ "Float"; "exp" ];
    [ "Float"; "log" ]; [ "Float"; "sqrt" ]; [ "Float"; "round" ];
    [ "Float"; "min" ]; [ "Float"; "max" ];
  ]

(* Syntactic approximation of "this expression has type float". *)
let floatish e =
  let e = Astq.strip e in
  Option.is_some (Astq.float_const e)
  || Astq.path_is e float_ident_paths
  ||
  match Astq.apply_parts e with
  | Some (f, _) -> (
    Astq.path_is f float_fun_paths
    ||
    match Astq.path f with
    | Some [ op ] -> List.mem op float_ops
    | _ -> false)
  | None -> false

let compare_paths = [ [ "compare" ]; [ "Stdlib"; "compare" ] ]

let is_zero_literal e =
  match (Astq.strip e).pexp_desc with
  | Pexp_constant (Pconst_integer ("0", None)) -> true
  | _ -> false

(* [compare a b] with a float operand, for the [compare x y = 0] idiom. *)
let float_compare_app e =
  match Astq.apply_parts e with
  | Some (f, [ a; b ]) when Astq.path_is f compare_paths && (floatish a || floatish b)
    ->
    Some (Astq.strip e).pexp_loc
  | _ -> None

(* ---- equality hidden inside container scans ------------------------- *)
(* [Array.exists (fun x -> x = b) floats] compares floats through the
   polymorphic [=] even though neither operand is syntactically float-ish;
   the container argument gives it away. *)

let hidden_doc =
  "polymorphic equality on float elements hidden inside an \
   exists/for_all/mem scan; compare with Float.equal or Util.Feq in the \
   predicate instead (DESIGN.md section 5)"

let scan_fns =
  [
    [ "Array"; "exists" ]; [ "Array"; "for_all" ];
    [ "List"; "exists" ]; [ "List"; "for_all" ];
  ]

let mem_fns = [ [ "Array"; "mem" ]; [ "List"; "mem" ] ]

(* Syntactic approximation of "this container holds floats". *)
let rec float_container e =
  match (Astq.strip e).pexp_desc with
  | Pexp_array elems -> List.exists floatish elems
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some arg) -> (
    (* list literals: walk the cons spine *)
    match (Astq.strip arg).pexp_desc with
    | Pexp_tuple [ hd; tl ] -> floatish hd || float_container tl
    | _ -> false)
  | _ -> (
    match Astq.apply_parts e with
    | Some (f, args) when Astq.path_is f [ [ "Array"; "make" ] ] ->
      List.exists floatish args
    | Some (f, args) when Astq.path_is f [ [ "Array"; "init" ] ] ->
      List.exists
        (fun a ->
          match (Astq.strip a).pexp_desc with
          | Pexp_fun (_, _, _, body) -> floatish body
          | _ -> Astq.path_is a float_fun_paths)
        args
    | Some (f, _) -> Astq.path_is f [ [ "Array"; "create_float" ] ]
    | None -> false)

(* [fun x -> x = e] (either operand order, [=] or [<>]): the location of
   the equality when the predicate compares its own parameter. *)
let pred_poly_eq pred =
  match (Astq.strip pred).pexp_desc with
  | Pexp_fun (Nolabel, None, pat, body) -> (
    let vars = Astq.pat_vars pat in
    let body = Astq.strip body in
    match Astq.apply_parts body with
    | Some (f, [ a; b ]) when Astq.path_is f eq_paths ->
      let is_param e =
        match Astq.path e with Some [ v ] -> List.mem v vars | _ -> false
      in
      if is_param a || is_param b then Some body.pexp_loc else None
    | _ -> None)
  | _ -> None

let check _ctx str =
  let acc = ref [] in
  (* inner applications already reported as part of an enclosing idiom
     ([compare a b = 0], a scan predicate) — the outer form carries the
     finding *)
  let skip = Hashtbl.create 4 in
  let flag_at ~message (loc : Location.t) =
    acc :=
      Finding.of_location ~rule:name ~severity:Finding.Error ~message loc
      :: !acc
  in
  let flag (e : expression) = flag_at ~message:doc e.pexp_loc in
  Astq.iter_expressions str (fun e ->
      if not (Hashtbl.mem skip (Astq.strip e).pexp_loc.loc_start.pos_cnum) then
        match Astq.apply_parts e with
        | Some (f, [ a; b ]) when Astq.path_is f eq_paths ->
          let idiom =
            if is_zero_literal b then float_compare_app a
            else if is_zero_literal a then float_compare_app b
            else None
          in
          (match idiom with
          | Some inner_loc ->
            Hashtbl.replace skip inner_loc.Location.loc_start.pos_cnum ();
            flag e
          | None -> if floatish a || floatish b then flag e)
        | Some (f, [ pred; container ]) when Astq.path_is f scan_fns -> (
          match pred_poly_eq pred with
          | Some eq_loc when float_container container ->
            Hashtbl.replace skip eq_loc.Location.loc_start.pos_cnum ();
            flag_at ~message:hidden_doc eq_loc
          | _ -> ())
        | Some (f, [ x; container ]) when Astq.path_is f mem_fns ->
          if floatish x || float_container container then
            flag_at ~message:hidden_doc (Astq.strip e).pexp_loc
        | _ -> ());
  List.rev !acc

let example =
  "if cost = expected then ...\n\
   (* fires: exact float equality; use Feq.approx (or an intentional \
   bit-equality via Float.equal with a suppression) *)"

let rule =
  Rule.make ~doc ~severity:Finding.Error ~check_structure:check ~example name
