open Parsetree

let name = "unsafe-pow"

let doc =
  "( ** ) / Float.pow is NaN for a negative base with a non-integral \
   exponent (the P_alpha energy curve); guard the base non-negative, use \
   an integral literal exponent, or suppress with the invariant that makes \
   it safe"

let pow_paths = [ [ "**" ]; [ "Float"; "pow" ]; [ "Stdlib"; "**" ] ]

module S = Set.Make (String)

(* Expressions whose result is non-negative whatever the inputs, plus
   project producers whose range is known positive by construction
   (Power.make enforces alpha > 1, so the alpha-derived getters qualify). *)
let nonneg_fun_paths =
  [
    [ "Float"; "abs" ]; [ "abs_float" ]; [ "sqrt" ]; [ "exp" ];
    [ "Float"; "exp" ]; [ "Float"; "sqrt" ]; [ "Power"; "alpha" ];
    [ "Power"; "competitive_bound" ]; [ "Power"; "delta_star" ];
    [ "Power"; "rejection_speed_factor" ]; [ "Power"; "cll_bound" ];
  ]

let nonneg_product_ops = [ "*."; "/."; "+." ]

let rec nonneg env e =
  let e = Astq.strip e in
  match Astq.float_const e with
  | Some v -> v >= 0.0
  | None -> (
    match Astq.path e with
    | Some [ x ] ->
      S.mem x env
      || List.mem x [ "infinity"; "max_float"; "min_float"; "epsilon_float" ]
    | Some [ "Float"; ("pi" | "infinity" | "epsilon" | "max_float" | "min_float") ]
      ->
      true
    | _ -> (
      match Astq.apply_parts e with
      | Some (f, args) -> (
        Astq.suffix_is f nonneg_fun_paths
        ||
        match Astq.path f with
        | Some [ op ] when List.mem op nonneg_product_ops ->
          List.for_all (nonneg env) args
        | _ -> false)
      | None -> false))

(* An exponent that cannot produce NaN even for a negative base. *)
let integral_exponent e =
  match Astq.float_const (Astq.strip e) with
  | Some v -> Float.is_integer v
  | None -> (
    match Astq.apply_parts e with
    | Some (f, [ _ ]) -> Astq.path_is f [ [ "float_of_int" ]; [ "Float"; "of_int" ] ]
    | _ -> false)

(* Sign facts a condition establishes about simple variables: names known
   non-negative when the condition is true, resp. false. *)
let rec facts cond : S.t * S.t =
  let cond = Astq.strip cond in
  let const e =
    match Astq.float_const e with
    | Some v -> Some v
    | None -> (
      match (Astq.strip e).pexp_desc with
      | Pexp_constant (Pconst_integer (s, _)) -> float_of_string_opt s
      | _ -> None)
  in
  let var e = match Astq.path e with Some [ x ] -> Some x | _ -> None in
  match Astq.apply_parts cond with
  | Some (f, [ a; b ]) -> (
    let comparison op x c =
      (* [x op c] with c a non-negative constant *)
      if c < 0.0 then (S.empty, S.empty)
      else
        match op with
        | "<" | "<=" -> (S.empty, S.singleton x)  (* false: x >= c >= 0 *)
        | ">" | ">=" -> (S.singleton x, S.empty)  (* true: x >= c >= 0 *)
        | _ -> (S.empty, S.empty)
    in
    let flip = function
      | "<" -> ">" | "<=" -> ">=" | ">" -> "<" | ">=" -> "<=" | op -> op
    in
    match Astq.path f with
    | Some [ (("<" | "<=" | ">" | ">=") as op) ] -> (
      match (var a, const b, const a, var b) with
      | Some x, Some c, _, _ -> comparison op x c
      | _, _, Some c, Some x -> comparison (flip op) x c
      | _ -> (S.empty, S.empty))
    | Some [ "||" ] ->
      let _, fa = facts a and _, fb = facts b in
      (S.empty, S.union fa fb)
    | Some [ "&&" ] ->
      let ta, _ = facts a and tb, _ = facts b in
      (S.union ta tb, S.empty)
    | _ -> (S.empty, S.empty))
  | Some (f, [ a ]) when Astq.path_is f [ [ "not" ] ] ->
    let t, fs = facts a in
    (fs, t)
  | _ -> (S.empty, S.empty)

let raising_paths =
  [
    [ "invalid_arg" ]; [ "failwith" ]; [ "raise" ]; [ "raise_notrace" ];
    [ "Stdlib"; "invalid_arg" ]; [ "Stdlib"; "failwith" ];
    [ "Stdlib"; "raise" ];
  ]

let rec always_raises e =
  match (Astq.strip e).pexp_desc with
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> always_raises body
  | Pexp_assert
      { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
        _ } ->
    true
  | _ -> (
    match Astq.apply_parts e with
    | Some (f, _) -> Astq.path_is f raising_paths
    | None -> false)

let check _ctx str =
  let acc = ref [] in
  let env = ref S.empty in
  let scoped it names body =
    let saved = !env in
    env := names;
    it.Ast_iterator.expr it body;
    env := saved
  in
  let remove_bound pat env = S.diff env (S.of_list (Astq.pat_vars pat)) in
  let expr it e =
    (match Astq.apply_parts e with
     | Some (f, [ base; expo ])
       when Astq.path_is f pow_paths
            && not (nonneg !env base || integral_exponent expo) ->
       acc :=
         Finding.of_location ~rule:name ~severity:Finding.Error ~message:doc
           e.pexp_loc
         :: !acc
     | _ -> ());
    match e.pexp_desc with
    | Pexp_ifthenelse (c, then_, else_) ->
      it.Ast_iterator.expr it c;
      let when_true, when_false = facts c in
      scoped it (S.union !env when_true) then_;
      Option.iter (fun e2 -> scoped it (S.union !env when_false) e2) else_
    | Pexp_sequence (({ pexp_desc = Pexp_ifthenelse (c, then_, else_); _ } as e1), e2)
      when always_raises then_ && Option.is_none else_ ->
      (* [if bad then invalid_arg ...; rest]: the negation of the guard
         holds in [rest]. *)
      it.Ast_iterator.expr it e1;
      let _, when_false = facts c in
      scoped it (S.union !env when_false) e2
    | Pexp_let (rf, bindings, body) ->
      List.iter (fun vb -> it.Ast_iterator.value_binding it vb) bindings;
      let bound =
        List.fold_left (fun s vb -> remove_bound vb.pvb_pat s) !env bindings
      in
      (* a non-recursive [let x = e] with e known non-negative extends the
         environment for the body *)
      let bound =
        match rf with
        | Asttypes.Recursive -> bound
        | Asttypes.Nonrecursive ->
          List.fold_left
            (fun s vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } when nonneg !env vb.pvb_expr -> S.add txt s
              | _ -> s)
            bound bindings
      in
      scoped it bound body
    | Pexp_fun (_, default, pat, body) ->
      Option.iter (fun d -> it.Ast_iterator.expr it d) default;
      it.Ast_iterator.pat it pat;
      scoped it (remove_bound pat !env) body
    | Pexp_for (pat, start, stop, _, body) ->
      it.Ast_iterator.expr it start;
      it.Ast_iterator.expr it stop;
      scoped it (remove_bound pat !env) body
    | Pexp_function cases | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      (match e.pexp_desc with
       | Pexp_match (scrut, _) | Pexp_try (scrut, _) ->
         it.Ast_iterator.expr it scrut
       | _ -> ());
      List.iter
        (fun (c : case) ->
          it.Ast_iterator.pat it c.pc_lhs;
          let inner = remove_bound c.pc_lhs !env in
          Option.iter (fun g -> scoped it inner g) c.pc_guard;
          scoped it inner c.pc_rhs)
        cases
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  List.rev !acc

(* Whole-program version: the same firing condition, but non-negativity
   of the base is established by the abstract interpreter — guards and
   lets as before, plus interval facts that flow through let bindings,
   local functions and cross-module calls ({!Absint}).  The legacy
   syntactic prover above is strictly subsumed: literals and trusted
   producers are interpreter axioms, guard refinement is
   comparison-as-refinement, and the nonneg-product closure is interval
   multiplication.  When the summary fixpoint did not converge, proofs
   of safety are inconclusive and the legacy per-file reasoning is used
   instead — a finding may never silently vanish behind an exhausted
   iteration bound. *)
let check_project (a : Absint.t) =
  let files = Project.files (Absint.project a) in
  if not (Absint.converged a) then
    Array.to_list files
    |> List.concat_map (fun (f : Project.file) ->
           check { Rule.rel = f.rel } f.str)
  else begin
    let acc = ref [] in
    Array.iter
      (fun (file : Project.file) ->
        Absint.iter_file a file (fun env e ->
            match Astq.apply_parts e with
            | Some (f, [ base; expo ])
              when Astq.path_is f pow_paths
                   && not
                        (integral_exponent expo
                        || Absdom.nonneg (Absint.eval env base)) ->
              acc :=
                Finding.of_location ~rule:name ~severity:Finding.Error
                  ~message:doc e.pexp_loc
                :: !acc
            | _ -> ()))
      files;
    List.rev !acc
  end

let example =
  "let energy s alpha = s ** alpha\n\
   (* fires: nothing proves s non-negative.  Quiet when an if/guard, a \
   non-negative producer (sqrt, Float.abs, Power.alpha), or — \
   whole-program — a summary from another module bounds s below by 0. *)"

let rule =
  Rule.make ~doc ~severity:Finding.Error ~check_structure:check ~check_project
    ~project_replaces:true ~example name
