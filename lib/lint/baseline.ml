type entry = { file : string; line : int; rule : string }

let header =
  "; slint baseline -- grandfathered findings, one (file line rule) per line.\n\
   ; The goal state is an empty list: fix or explicitly suppress instead.\n"

let to_string entries =
  let b = Buffer.create 256 in
  Buffer.add_string b header;
  List.iter
    (fun e -> Buffer.add_string b (Fmt.str "(%s %d %s)\n" e.file e.line e.rule))
    entries;
  Buffer.contents b

let parse_line lineno line =
  let line = String.trim line in
  if String.equal line "" || line.[0] = ';' then Ok None
  else
    let n = String.length line in
    if n < 2 || line.[0] <> '(' || line.[n - 1] <> ')' then
      Error (Fmt.str "line %d: expected (file line rule), got %S" lineno line)
    else
      let inner = String.trim (String.sub line 1 (n - 2)) in
      match
        String.split_on_char ' ' inner |> List.filter (fun s -> s <> "")
      with
      | [ file; l; rule ] -> (
        match int_of_string_opt l with
        | Some line -> Ok (Some { file; line; rule })
        | None -> Error (Fmt.str "line %d: bad line number %S" lineno l))
      | _ -> Error (Fmt.str "line %d: expected 3 fields, got %S" lineno inner)

let of_string text =
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match parse_line lineno l with
      | Ok None -> go acc (lineno + 1) rest
      | Ok (Some e) -> go (e :: acc) (lineno + 1) rest
      | Error _ as e -> e)
  in
  go [] 1 (String.split_on_char '\n' text)

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        of_string (really_input_string ic n))

let of_findings findings =
  List.map
    (fun (f : Finding.t) -> { file = f.file; line = f.line; rule = f.rule })
    findings

let matches e (f : Finding.t) =
  String.equal e.file f.file && e.line = f.line && String.equal e.rule f.rule

let mem entries f = List.exists (fun e -> matches e f) entries

let stale entries findings =
  List.filter (fun e -> not (List.exists (matches e) findings)) entries

let prune entries findings =
  List.filter (fun e -> List.exists (matches e) findings) entries
