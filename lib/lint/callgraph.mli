(** Per-file call graph over let bindings, the substrate of the
    interprocedural lint rules.

    Every simple [let x = e] binding — toplevel or nested — becomes a node;
    anonymous closures remain part of their enclosing node.  An edge
    [a -> b] exists when [a]'s right-hand side mentions the (unshadowed)
    name of node [b]: plain mentions count, so a function passed to a
    higher-order combinator is linked like a direct call.  [let rec ... and
    ...] groups yield the cycles {!Taint.solve} iterates over. *)

type node = {
  id : int;
  name : string;
  loc : Location.t;  (** location of the bound name *)
  body : Parsetree.expression;  (** the bound RHS, parameters included *)
  parent : int;  (** enclosing node id, [-1] for structure toplevel *)
  recursive : bool;  (** member of a [let rec] group *)
}

type t

type ctx = { node : int; resolve : string -> int option }
(** Passed to [on_expr] at every visited expression: the enclosing node
    ([-1] outside any binding) and the scoped resolver from bare names to
    node ids (shadowed names do not resolve). *)

val build : ?on_expr:(ctx -> Parsetree.expression -> unit) -> Parsetree.structure -> t
(** Builds the graph in a single scoped traversal.  [on_expr] lets a rule
    piggyback on the traversal — it fires before the walker descends, so
    subexpressions are visited afterwards. *)

val nodes : t -> node array
val n_nodes : t -> int
val calls : t -> int -> int list
(** Callees of a node, deduplicated, in first-mention order. *)

val node_named : t -> string -> node option
(** The last node carrying this name, if any (later shadowers win). *)

val is_descendant : t -> ancestor:int -> int -> bool
(** Whether a node's lexical parent chain passes through [ancestor]. *)
