(** Checked-in baseline of grandfathered findings ([lint-baseline.sexp]).

    The format is a line-oriented sexp: comments start with [;], every
    other non-blank line is a [(file line rule)] triple.  A finding
    matching a baseline entry does not fail the build; the intended
    steady state is an empty baseline. *)

type entry = { file : string; line : int; rule : string }

val to_string : entry list -> string
val of_string : string -> (entry list, string) result

val load : string -> (entry list, string) result
(** [Ok []] when the file does not exist. *)

val of_findings : Finding.t list -> entry list
val mem : entry list -> Finding.t -> bool

val stale : entry list -> Finding.t list -> entry list
(** Entries matching none of the current findings — rot that hides a
    fixed (or renamed) finding and would mask a future one at the same
    location.  A clean run treats these as a failure. *)

val prune : entry list -> Finding.t list -> entry list
(** The complement of {!stale}: entries that still fire, i.e. the
    baseline [--update-baseline] rewrites. *)
