(** Checked-in baseline of grandfathered findings ([lint-baseline.sexp]).

    The format is a line-oriented sexp: comments start with [;], every
    other non-blank line is a [(file line rule)] triple.  A finding
    matching a baseline entry does not fail the build; the intended
    steady state is an empty baseline. *)

type entry = { file : string; line : int; rule : string }

val to_string : entry list -> string
val of_string : string -> (entry list, string) result

val load : string -> (entry list, string) result
(** [Ok []] when the file does not exist. *)

val of_findings : Finding.t list -> entry list
val mem : entry list -> Finding.t -> bool
