(* Interprocedural nondeterminism taint into obs record payloads.

   The syntactic [nondeterminism] rule flags global-Random call sites; this
   rule follows nondeterministic *values* through local calls.  Sources are
   the global Random API, wall clocks (Sys.time, Unix.gettimeofday),
   unordered Hashtbl iteration (iter/fold), and Filename.temp_file.  A
   function summary — "calling this can yield a source-dependent value" —
   is solved to fixpoint over the per-file {!Callgraph}; inside each
   function a small value-taint walk tracks let bindings and the parameters
   of closures applied alongside tainted arguments.  Sinks are the record
   payload constructors ([Record.make] and the harness [metric] / [counter]
   / [verdict] helpers): a sink whose argument is tainted means a
   BENCH_*.json payload that cannot reproduce byte-identically, which is
   exactly what the bench-diff gate assumes it can diff. *)

open Parsetree
module S = Set.Make (String)
module M = Map.Make (String)

let name = "taint-nondet"

let doc =
  "a value derived from a nondeterminism source (global Random, Sys.time, \
   Unix.gettimeofday, Hashtbl.iter/fold, Filename.temp_file) flows — \
   possibly through local calls — into an obs record payload \
   (Record.make / metric / counter / verdict); payloads must be \
   reproducible, timings belong in the timing field (doc/LINTING.md \
   \"Dataflow rules\")"

let other_sources =
  [
    [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ]; [ "Hashtbl"; "iter" ];
    [ "Hashtbl"; "fold" ]; [ "Filename"; "temp_file" ];
  ]

(* The pretty name of the source an identifier expression denotes. *)
let source_of e =
  match Astq.path e with
  | None -> None
  | Some p -> (
    match List.rev p with
    | f :: "Random" :: _ when not (String.equal f "State") ->
      Some ("Random." ^ f)
    | _ ->
      if Astq.suffix_is e other_sources then Some (String.concat "." p)
      else None)

let sink_suffixes =
  [ [ "Record"; "make" ]; [ "metric" ]; [ "counter" ]; [ "verdict" ] ]

let iter_subexprs e visit =
  let expr it e =
    visit e;
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e

let contains_source e =
  let found = ref None in
  iter_subexprs e (fun sub ->
      if !found = None then
        match source_of sub with Some s -> found := Some s | None -> ());
  !found

let is_fun_literal e =
  match (Astq.strip e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

(* Why an expression is tainted, for the report. *)
type why =
  | Direct of string  (* mentions a source itself *)
  | Via_node of string  (* mentions a tainted local function/binding *)
  | Via_var of string  (* mentions a tainted local variable *)

let check _ctx str =
  let cg = Callgraph.build str in
  let nodes = Callgraph.nodes cg in
  let n = Callgraph.n_nodes cg in
  let direct_src =
    Array.map (fun (nd : Callgraph.node) -> contains_source nd.body) nodes
  in
  let facts =
    Taint.solve ~n ~deps:(Callgraph.calls cg)
      ~init:(fun v -> direct_src.(v) <> None)
      ~join:( || ) ~equal:Bool.equal ()
  in
  let tainted_names =
    Array.fold_left
      (fun s (nd : Callgraph.node) ->
        if facts.Taint.fact nd.id then S.add nd.name s else s)
      S.empty nodes
  in
  (* Shortest source chain from a tainted node, for the message. *)
  let chain_of id =
    let rec go visited id =
      if List.mem id visited then None
      else
        match direct_src.(id) with
        | Some s -> Some ([ nodes.(id).name ], s)
        | None ->
          List.fold_left
            (fun acc callee ->
              match acc with
              | Some _ -> acc
              | None ->
                if callee < n && facts.Taint.fact callee then
                  Option.map
                    (fun (path, s) -> (nodes.(id).name :: path, s))
                    (go (id :: visited) callee)
                else None)
            None (Callgraph.calls cg id)
    in
    go [] id
  in
  let describe = function
    | Direct s -> Fmt.str "the payload argument calls %s directly" s
    | Via_var x ->
      Fmt.str
        "the payload argument depends on '%s', which carries a \
         source-derived value" x
    | Via_node f -> (
      match Callgraph.node_named cg f with
      | Some nd -> (
        match chain_of nd.id with
        | Some (path, s) ->
          Fmt.str "the payload argument reaches %s via %s" s
            (String.concat " -> " path)
        | None -> Fmt.str "the payload argument mentions tainted '%s'" f)
      | None -> Fmt.str "the payload argument mentions tainted '%s'" f)
  in
  let acc = ref [] in
  (* Locally-bound names, mapped to their taint.  Any local binding —
     tainted or not — shadows the file-level node summary of the same
     name, so an untainted rebinding really clears the taint. *)
  let tmap = ref M.empty in
  let why_tainted e =
    let found = ref None in
    iter_subexprs e (fun sub ->
        if !found = None then
          match source_of sub with
          | Some s -> found := Some (Direct s)
          | None -> (
            match (Astq.strip sub).pexp_desc with
            | Pexp_ident { txt = Longident.Lident x; _ } -> (
              match M.find_opt x !tmap with
              | Some true -> found := Some (Via_var x)
              | Some false -> ()
              | None ->
                if S.mem x tainted_names then found := Some (Via_node x))
            | _ -> ()));
    !found
  in
  let tainted e = why_tainted e <> None in
  let scoped map f =
    let saved = !tmap in
    tmap := map;
    Fun.protect ~finally:(fun () -> tmap := saved) f
  in
  let bind_pat taint_on pat map =
    List.fold_left (fun m x -> M.add x taint_on m) map (Astq.pat_vars pat)
  in
  (* Peel a literal fun chain: parameter patterns plus the innermost body. *)
  let rec peel_fun e pats =
    match (Astq.strip e).pexp_desc with
    | Pexp_fun (_, _, pat, body) -> peel_fun body (pat :: pats)
    | _ -> (List.rev pats, e)
  in
  let expr it e =
    (match Astq.apply_parts e with
    | Some (f, args) when Astq.suffix_is f sink_suffixes -> (
      match List.find_map why_tainted args with
      | Some why ->
        acc :=
          Finding.of_location ~rule:name ~severity:Finding.Error
            ~message:
              (Fmt.str
                 "nondeterministic value flows into an obs record payload: \
                  %s; keep payloads reproducible (timings belong in the \
                  timing field) or suppress with the audited invariant"
                 (describe why))
            e.pexp_loc
          :: !acc
      | None -> ())
    | _ -> ());
    match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> it.Ast_iterator.expr it vb.pvb_expr) vbs;
      let set =
        List.fold_left
          (fun s vb -> bind_pat (tainted vb.pvb_expr) vb.pvb_pat s)
          !tmap vbs
      in
      scoped set (fun () -> it.Ast_iterator.expr it body)
    | Pexp_fun (_, default, pat, body) ->
      Option.iter (it.Ast_iterator.expr it) default;
      it.Ast_iterator.pat it pat;
      scoped (bind_pat false pat !tmap) (fun () ->
          it.Ast_iterator.expr it body)
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      it.Ast_iterator.expr it scrut;
      let t = tainted scrut in
      List.iter
        (fun (c : case) ->
          it.Ast_iterator.pat it c.pc_lhs;
          let inner = bind_pat t c.pc_lhs !tmap in
          Option.iter
            (fun g -> scoped inner (fun () -> it.Ast_iterator.expr it g))
            c.pc_guard;
          scoped inner (fun () -> it.Ast_iterator.expr it c.pc_rhs))
        cases
    | Pexp_function cases ->
      List.iter
        (fun (c : case) ->
          it.Ast_iterator.pat it c.pc_lhs;
          let inner = bind_pat false c.pc_lhs !tmap in
          Option.iter
            (fun g -> scoped inner (fun () -> it.Ast_iterator.expr it g))
            c.pc_guard;
          scoped inner (fun () -> it.Ast_iterator.expr it c.pc_rhs))
        cases
    | Pexp_apply (f, labelled) ->
      it.Ast_iterator.expr it f;
      let args = List.map snd labelled in
      (* closures applied alongside a tainted argument iterate over tainted
         data: their parameters carry the taint into their bodies *)
      let tainted_sibling =
        List.exists (fun a -> (not (is_fun_literal a)) && tainted a) args
      in
      List.iter
        (fun a ->
          if is_fun_literal a then begin
            let pats, body = peel_fun a [] in
            let set =
              List.fold_left
                (fun s p -> bind_pat tainted_sibling p s)
                !tmap pats
            in
            scoped set (fun () -> it.Ast_iterator.expr it body)
          end
          else it.Ast_iterator.expr it a)
        args
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  List.rev !acc

let example =
  "let noise () = Unix.gettimeofday ()\n\
   let sample () = Record.make ~value:(noise ()) ...\n\
   (* fires at the Record.make argument: wall-clock nondeterminism \
   reaches a benchmark payload through the call graph *)"

let rule =
  Rule.make ~doc ~severity:Finding.Error ~check_structure:check ~example name
