let name = "nondeterminism"

let doc =
  "global Random state breaks run-to-run reproducibility; thread a seeded \
   Random.State through Util.Rand instead (DESIGN.md section 5)"

(* Any [Random.f] where [f] is a value of the global-state API.  Seeded
   [Random.State.*] paths have three components and are not matched. *)
let check _ctx str =
  let acc = ref [] in
  Astq.iter_expressions str (fun e ->
      match Astq.path e with
      | Some [ "Random"; f ] when not (String.equal f "State") ->
        acc :=
          Finding.of_location ~rule:name ~severity:Finding.Error
            ~message:(Fmt.str "Random.%s uses the ambient global state; %s" f doc)
            e.pexp_loc
          :: !acc
      | _ -> ());
  List.rev !acc

let example =
  "let jitter = Random.float 1.0\n\
   (* fires: ambient-state randomness in lib/; thread a seeded \
   Random.State.t through the caller instead *)"

let rule =
  Rule.make ~doc ~severity:Finding.Error ~check_structure:check ~example name
