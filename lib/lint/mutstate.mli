(** A syntactic model of mutable values: what creates shared-mutable state,
    what is safe to share across domains by construction, and which
    expression shapes mutate (or racily read) a variable.  Used by
    {!Rule_domain_race}. *)

module S : Set.S with type elt = string

type kind =
  | Ref
  | Arr
  | Bytes_
  | Hashtbl_
  | Buffer_
  | Queue_
  | Stack_
  | Mutable_record

type classification =
  | Mutable of kind  (** freshly-allocated shared-mutable state *)
  | Exempt
      (** safe to share across domains by construction: [Atomic.make],
          [Mutex.create], [Domain.DLS.new_key], semaphores *)
  | Unknown

val kind_name : kind -> string

val mutable_fields : Parsetree.structure -> S.t
(** Names of record fields declared [mutable] in this file's type
    declarations. *)

val classify :
  mutable_fields:S.t -> Parsetree.expression -> classification
(** Classifies a binding right-hand side: [ref e], array/bytes/container
    constructors, array literals, and record literals that set a known
    mutable field are [Mutable]. *)

val root_var : Parsetree.expression -> string option
(** The simple variable at the root of an lvalue-ish expression:
    [x], [x.f], [x.f.g]. *)

val root_path : Parsetree.expression -> string list option
(** Like {!root_var} but keeping module qualification: [M.state.f]
    roots at [["M"; "state"]]. *)

val write_root_path : Parsetree.expression -> (string list * string) option
(** {!write_root} generalised to qualified targets ([M.state := e],
    [Hashtbl.replace M.tbl k v]); what the cross-module race check
    resolves through {!Project}. *)

val deref_root_path : Parsetree.expression -> string list option
(** {!deref_root} generalised to qualified targets ([!M.state]). *)

val write_root : Parsetree.expression -> (string * string) option
(** [(var, op)] when the expression writes through the simple variable
    [var]: [x := e], [x.f <- e], [Array.set]/[Bytes.set] (what
    [x.(i) <- e] desugars to), and the stdlib container mutators
    ([Hashtbl.replace], [Buffer.add_string], [Queue.push], ...). *)

val deref_root : Parsetree.expression -> string option
(** The variable when the expression is [!x] — a read that races with any
    concurrent [:=]. *)
