(** Flags [( ** )] applications whose base is not syntactically
    guaranteed non-negative and whose exponent is not an integral
    literal.  A small flow analysis tracks variables proven non-negative
    by dominating conditionals ([if s < 0.0 then invalid_arg ...; ...]),
    by [let] bindings of non-negative expressions, and by project
    producers with a positive range ([Power.alpha] et al.). *)

val rule : Rule.t
