let name = "missing-mli"

let doc =
  "every module under lib/ must ship an interface (.mli) so its exported \
   surface is explicit and documented"

let applies rel = Rule.lib_only rel && Filename.check_suffix rel ".ml"

let check (ctx : Rule.ctx) ~has_mli =
  if has_mli then []
  else
    [
      Finding.v ~file:ctx.rel ~rule:name ~severity:Finding.Error
        (Fmt.str "%s has no matching %si" ctx.rel ctx.rel);
    ]

let example =
  "lib/foo/bar.ml with no lib/foo/bar.mli\n\
   (* fires: every library module declares its interface *)"

let rule =
  Rule.make ~applies ~doc ~severity:Finding.Error ~check_source:check ~example
    name
