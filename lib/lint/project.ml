(* Whole-program view: every parsed module under the scan root, a
   resolver from dotted value paths to defining nodes, and the per-file
   call graphs of {!Callgraph} stitched into one project-wide graph.

   Resolution is name-based, tuned for a dune-wrapped tree: the *last*
   module component of a path is matched against file basenames, so
   [Speedscale_util.Feq.approx], [Util.Feq.approx] and [Feq.approx] all
   reach lib/util/feq.ml.  Toplevel [module A = B] aliases are chased
   (within the referring file) and toplevel [open M] of a known file
   module brings its exported values into scope for bare names that do
   not resolve lexically.  A [.mli] restricts what other modules can
   see: only values it declares are resolution targets.  Two files
   claiming the same module name make that name ambiguous and it stops
   resolving — a linter must not guess between homonyms.

   The [cross_module] switch exists for exactly one reason: letting
   tests (and the acceptance fixture) demonstrate that a finding
   appears or disappears *because of* cross-module reasoning. *)

open Parsetree

type input = {
  rel : string;
  str : structure;
  exported : string list option;  (* None: no .mli, everything visible *)
}

type file = {
  idx : int;
  rel : string;
  module_name : string;  (* capitalised basename: lib/util/feq.ml -> Feq *)
  str : structure;
  exported : (string, unit) Hashtbl.t option;
  cg : Callgraph.t;
  base : int;  (* global id of this file's node 0 *)
  opens : string list;  (* toplevel-opened module names, alias-expanded *)
  aliases : (string * string) list;  (* module A = ...B, toplevel only *)
}

type t = {
  files : file array;
  by_module : (string, int) Hashtbl.t;  (* -1 marks an ambiguous name *)
  node_file : int array;  (* global node id -> owning file index *)
  calls : int list array;  (* global call graph, global ids *)
  cross_module : bool;
}

let module_name_of_rel rel =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename rel))

let cross_module t = t.cross_module
let files t = t.files
let n_nodes t = Array.length t.node_file
let owner t gid = t.files.(t.node_file.(gid))

let local t gid =
  let f = owner t gid in
  (Callgraph.nodes f.cg).(gid - f.base)

let global f (nd : Callgraph.node) = f.base + nd.id
let calls t gid = t.calls.(gid)

let file_of_rel t rel =
  Array.fold_left
    (fun acc f -> if String.equal f.rel rel then Some f else acc)
    None t.files

let exports f name =
  match f.exported with None -> true | Some h -> Hashtbl.mem h name

(* Last toplevel binding of [name] in [f] that its interface exposes. *)
let toplevel_value f name =
  if not (exports f name) then None
  else
    Array.fold_left
      (fun acc (nd : Callgraph.node) ->
        if nd.parent = -1 && String.equal nd.name name then Some (global f nd)
        else acc)
      None (Callgraph.nodes f.cg)

let lookup_module t name =
  match Hashtbl.find_opt t.by_module name with
  | Some idx when idx >= 0 -> Some t.files.(idx)
  | _ -> None

(* Chase [module A = B] aliases within the referring file; fuel-bounded
   so alias cycles (illegal OCaml anyway) cannot loop the linter. *)
let expand_alias src name =
  let rec go fuel name =
    if fuel = 0 then name
    else
      match List.assoc_opt name src.aliases with
      | Some target -> go (fuel - 1) target
      | None -> name
  in
  go 8 name

let resolve_qualified t src ~mpath ~name =
  if not t.cross_module then None
  else
    match List.rev mpath with
    | [] -> None
    | last :: _ -> (
      match lookup_module t (expand_alias src last) with
      | Some f -> toplevel_value f name
      | None -> None)

(* A bare name that did not resolve lexically: try the file's toplevel
   opens, in source order (first open that exports the name wins, which
   over-approximates OCaml's last-open-wins but only matters when two
   opened modules export the same name). *)
let resolve_open t src ~name =
  if not t.cross_module then None
  else
    List.fold_left
      (fun acc m ->
        match acc with
        | Some _ -> acc
        | None -> (
          match lookup_module t m with
          | Some f when f.idx <> src.idx -> toplevel_value f name
          | _ -> None))
      None src.opens

let resolve_path t src parts =
  match List.rev parts with
  | [] -> None
  | [ name ] -> resolve_open t src ~name
  | name :: rmpath -> resolve_qualified t src ~mpath:(List.rev rmpath) ~name

(* Toplevel [open]s and [module X = ...] aliases of a structure.  An
   opened dotted path keeps only its last component (the wrapped-library
   prefix is not a file module). *)
let opens_and_aliases str =
  let opens = ref [] and aliases = ref [] in
  List.iter
    (fun si ->
      match si.pstr_desc with
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
        -> (
        match List.rev (Longident.flatten txt) with
        | last :: _ -> opens := last :: !opens
        | [] -> ())
      | Pstr_module
          {
            pmb_name = { txt = Some alias; _ };
            pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
            _;
          } -> (
        match List.rev (Longident.flatten txt) with
        | last :: _ -> aliases := (alias, last) :: !aliases
        | [] -> ())
      | _ -> ())
    str;
  (List.rev !opens, !aliases)

let build ?(cross_module = true) (inputs : input list) : t =
  (* Pass 1: per-file call graphs, collecting unresolved references as
     cross-module edge candidates. *)
  let pending = ref [] (* (file idx, local node, path parts) *) in
  let files =
    List.mapi
      (fun idx (inp : input) ->
        let rel = inp.rel and str = inp.str in
        let on_expr (ctx : Callgraph.ctx) e =
          if ctx.node >= 0 then
            match e.pexp_desc with
            | Pexp_ident { txt = Longident.Ldot _ as lid; _ } -> (
              match Longident.flatten lid with
              | parts -> pending := (idx, ctx.node, parts) :: !pending
              | exception Misc.Fatal_error -> ())
            | Pexp_ident { txt = Longident.Lident x; _ }
              when ctx.resolve x = None ->
              (* Either shadowed or defined elsewhere; resolution against
                 the opens decides later, so a shadowed name only links
                 if an opened module happens to export it too. *)
              pending := (idx, ctx.node, [ x ]) :: !pending
            | _ -> ()
        in
        let cg = Callgraph.build ~on_expr str in
        let opens, aliases = opens_and_aliases str in
        let exported =
          Option.map
            (fun names ->
              let h = Hashtbl.create (List.length names + 1) in
              List.iter (fun n -> Hashtbl.replace h n ()) names;
              h)
            inp.exported
        in
        {
          idx;
          rel;
          module_name = module_name_of_rel rel;
          str;
          exported;
          cg;
          base = 0;
          opens;
          aliases;
        })
      inputs
  in
  (* Assign global id ranges and the module table. *)
  let by_module = Hashtbl.create 64 in
  let base = ref 0 in
  let files =
    List.map
      (fun f ->
        let f = { f with base = !base } in
        base := !base + Callgraph.n_nodes f.cg;
        (match Hashtbl.find_opt by_module f.module_name with
        | Some _ -> Hashtbl.replace by_module f.module_name (-1)
        | None -> Hashtbl.replace by_module f.module_name f.idx);
        f)
      files
  in
  let files = Array.of_list files in
  let n = !base in
  let node_file = Array.make n 0 in
  Array.iter
    (fun f ->
      for i = 0 to Callgraph.n_nodes f.cg - 1 do
        node_file.(f.base + i) <- f.idx
      done)
    files;
  let t = { files; by_module; node_file; calls = Array.make n []; cross_module } in
  (* Pass 2: lift per-file edges, then resolve the pending candidates. *)
  Array.iter
    (fun f ->
      for i = 0 to Callgraph.n_nodes f.cg - 1 do
        t.calls.(f.base + i) <-
          List.map (fun j -> f.base + j) (Callgraph.calls f.cg i)
      done)
    files;
  if cross_module then begin
    let add gid callee =
      if not (List.mem callee t.calls.(gid)) then
        t.calls.(gid) <- t.calls.(gid) @ [ callee ]
    in
    List.iter
      (fun (idx, node, parts) ->
        let src = files.(idx) in
        match resolve_path t src parts with
        | Some callee -> add (src.base + node) callee
        | None -> ())
      (List.rev !pending)
  end;
  t
