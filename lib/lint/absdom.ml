(* A float abstract domain: closed intervals over the extended reals plus
   a may-be-NaN bit.

   An abstract value over-approximates the set of IEEE doubles an
   expression can evaluate to: [V { lo; hi; nan }] stands for
   "every double in [lo, hi], plus NaN when [nan]".  The numeric part may
   be empty (a value that is NaN or nothing at all), encoded as
   [lo = +inf, hi = -inf]; [Bot] is the empty set proper, the fact of an
   unreachable or never-returning expression.  [lo] and [hi] are never
   NaN themselves.

   Every operation is sound: if [x ∈ γ a] and [y ∈ γ b] then
   [x op y ∈ γ (op a b)] — including the IEEE corners where arithmetic
   *creates* NaN from non-NaN inputs (inf - inf, 0 * inf, 0/0, inf/inf,
   sqrt/log of a negative).  That soundness is what the qcheck property
   in test/test_lint.ml pins against concrete evaluation, and it is why
   [div top top] must admit NaN even though most divisions never trap.

   The lattice has infinite ascending chains ([0,1] ⊑ [0,2] ⊑ ...), so
   fixpoints over it go through {!widen}, which jumps an unstable bound
   straight to ±inf: any widening sequence stabilises after at most two
   numeric steps plus one NaN-bit step. *)

type t = V of { lo : float; hi : float; nan : bool } | Bot

let nan_only = V { lo = infinity; hi = neg_infinity; nan = true }

(* Normalising constructor: empty numeric part collapses to the canonical
   encoding, and an empty numeric part with no NaN is Bot. *)
let v lo hi nan =
  if lo <= hi then V { lo; hi; nan } else if nan then nan_only else Bot

let bot = Bot
let top = V { lo = neg_infinity; hi = infinity; nan = false }
let top_nan = V { lo = neg_infinity; hi = infinity; nan = true }

let const x =
  if Float.is_nan x then nan_only else V { lo = x; hi = x; nan = false }

let interval lo hi = v lo hi false
let is_bot = function Bot -> true | _ -> false
let empty_num lo hi = not (lo <= hi)
let maybe_nan = function Bot -> false | V r -> r.nan

(* "The numeric value cannot be negative."  Deliberately ignores the NaN
   bit: ( ** ) on a NaN base propagates NaN but never manufactures the
   negative-base NaN that unsafe-pow polices; NaN creation is nan-flow's
   business. *)
let nonneg = function
  | Bot -> true
  | V r -> empty_num r.lo r.hi || r.lo >= 0.0

let mem x = function
  | Bot -> false
  | V r -> if Float.is_nan x then r.nan else r.lo <= x && x <= r.hi

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | V a, V b ->
    Float.equal a.lo b.lo && Float.equal a.hi b.hi && Bool.equal a.nan b.nan
  | _ -> false

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | V a, V b ->
    ((not (a.nan && not b.nan))
    && (empty_num a.lo a.hi || (b.lo <= a.lo && a.hi <= b.hi)))

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | V a, V b ->
    let nan = a.nan || b.nan in
    if empty_num a.lo a.hi then v b.lo b.hi nan
    else if empty_num b.lo b.hi then v a.lo a.hi nan
    else v (Float.min a.lo b.lo) (Float.max a.hi b.hi) nan

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b -> v (Float.max a.lo b.lo) (Float.min a.hi b.hi) (a.nan && b.nan)

(* Refine [a] by the constraint [value ∈ [lo, hi]] (keeping NaN
   admissible iff [nan]); the working half of comparison-as-refinement. *)
let refine a ~lo ~hi ~nan = meet a (V { lo; hi; nan })

let widen old next =
  match (old, next) with
  | Bot, x | x, Bot -> x
  | V o, V n ->
    let nan = o.nan || n.nan in
    if empty_num n.lo n.hi then v o.lo o.hi nan
    else if empty_num o.lo o.hi then v n.lo n.hi nan
    else
      v
        (if n.lo < o.lo then neg_infinity else o.lo)
        (if n.hi > o.hi then infinity else o.hi)
        nan

(* ---------------- arithmetic ---------------- *)

let has0 lo hi = lo <= 0.0 && hi >= 0.0
let unbnd lo hi = Float.equal lo neg_infinity || Float.equal hi infinity

let neg = function
  | Bot -> Bot
  | V r -> v (-.r.hi) (-.r.lo) r.nan

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
    let ea = empty_num a.lo a.hi and eb = empty_num b.lo b.hi in
    let nan =
      a.nan || b.nan
      || ((not ea) && (not eb)
         && ((Float.equal a.hi infinity && Float.equal b.lo neg_infinity)
            || (Float.equal a.lo neg_infinity && Float.equal b.hi infinity)))
    in
    if ea || eb then v infinity neg_infinity nan
    else
      let lo =
        if Float.equal a.lo neg_infinity || Float.equal b.lo neg_infinity then neg_infinity
        else a.lo +. b.lo
      in
      let hi =
        if Float.equal a.hi infinity || Float.equal b.hi infinity then infinity else a.hi +. b.hi
      in
      v lo hi nan

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
    let ea = empty_num a.lo a.hi and eb = empty_num b.lo b.hi in
    let nan =
      a.nan || b.nan
      || ((not ea) && (not eb)
         && ((has0 a.lo a.hi && unbnd b.lo b.hi)
            || (has0 b.lo b.hi && unbnd a.lo a.hi)))
    in
    if ea || eb then v infinity neg_infinity nan
    else
      (* 0 * ±inf is NaN in IEEE; for the bounds we take the limit 0 and
         let the [nan] flag carry the exceptional case. *)
      let mulx x y =
        if
          (Float.equal x 0.0 && (Float.equal y infinity || Float.equal y neg_infinity))
          || (Float.equal y 0.0 && (Float.equal x infinity || Float.equal x neg_infinity))
        then 0.0
        else x *. y
      in
      let p1 = mulx a.lo b.lo
      and p2 = mulx a.lo b.hi
      and p3 = mulx a.hi b.lo
      and p4 = mulx a.hi b.hi in
      v
        (Float.min (Float.min p1 p2) (Float.min p3 p4))
        (Float.max (Float.max p1 p2) (Float.max p3 p4))
        nan

let div a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a, V b ->
    let ea = empty_num a.lo a.hi and eb = empty_num b.lo b.hi in
    let nan =
      a.nan || b.nan
      || ((not ea) && (not eb)
         && ((has0 a.lo a.hi && has0 b.lo b.hi)
            || (unbnd a.lo a.hi && unbnd b.lo b.hi)))
    in
    if ea || eb then v infinity neg_infinity nan
    else if has0 b.lo b.hi then
      (* The interval [0, hi] concretises to every double it compares
         into — including -0.0, whose quotients have the opposite sign
         of +0.0's.  Any zero-touching denominator therefore escapes to
         both infinities; signed zero makes a one-sided limit unsound
         (the qcheck soundness property catches the corner). *)
      v neg_infinity infinity nan
    else
      (* zero-free denominator: endpoint quotients are extremal *)
      let divx x y =
        if
          (Float.equal x infinity || Float.equal x neg_infinity)
          && (Float.equal y infinity || Float.equal y neg_infinity)
        then 0.0
        else x /. y
      in
      let q1 = divx a.lo b.lo
      and q2 = divx a.lo b.hi
      and q3 = divx a.hi b.lo
      and q4 = divx a.hi b.hi in
      v
        (Float.min (Float.min q1 q2) (Float.min q3 q4))
        (Float.max (Float.max q1 q2) (Float.max q3 q4))
        nan

(* Stdlib.min/max are polymorphic-compare based and asymmetric around
   NaN (min nan y = y but min y nan = nan), so once either side may be
   NaN the result may be either side's numeric value or NaN: that is
   exactly [join].  Float.min/Float.max propagate NaN, which the same
   join also covers. *)
let fmin a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a', V b' ->
    if a'.nan || b'.nan || empty_num a'.lo a'.hi || empty_num b'.lo b'.hi then
      join (V a') (V b')
    else v (Float.min a'.lo b'.lo) (Float.min a'.hi b'.hi) false

let fmax a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a', V b' ->
    if a'.nan || b'.nan || empty_num a'.lo a'.hi || empty_num b'.lo b'.hi then
      join (V a') (V b')
    else v (Float.max a'.lo b'.lo) (Float.max a'.hi b'.hi) false

let abs_ = function
  | Bot -> Bot
  | V r ->
    if empty_num r.lo r.hi then v r.lo r.hi r.nan
    else
      let al = Float.abs r.lo and ah = Float.abs r.hi in
      v
        (if has0 r.lo r.hi then 0.0 else Float.min al ah)
        (Float.max al ah) r.nan

let sqrt_ = function
  | Bot -> Bot
  | V r ->
    let nan = r.nan || r.lo < 0.0 in
    if empty_num r.lo r.hi || r.hi < 0.0 then v infinity neg_infinity nan
    else v (Float.sqrt (Float.max r.lo 0.0)) (Float.sqrt r.hi) nan

(* libm's exp/log are monotone but not guaranteed correctly rounded;
   nudge finite bounds one ulp outward so the interval stays an
   over-approximation of whatever the host libm returns. *)
let out_lo x = if Float.equal x neg_infinity || Float.equal x infinity then x else Float.pred x
let out_hi x = if Float.equal x neg_infinity || Float.equal x infinity then x else Float.succ x

let exp_ = function
  | Bot -> Bot
  | V r ->
    if empty_num r.lo r.hi then v r.lo r.hi r.nan
    else
      v
        (Float.max 0.0 (out_lo (Float.exp r.lo)))
        (out_hi (Float.exp r.hi))
        r.nan

let log_ = function
  | Bot -> Bot
  | V r ->
    let nan = r.nan || r.lo < 0.0 in
    if empty_num r.lo r.hi || r.hi < 0.0 then v infinity neg_infinity nan
    else
      let lo = if r.lo <= 0.0 then neg_infinity else out_lo (Float.log r.lo) in
      v lo (out_hi (Float.log r.hi)) nan

(* [base ** expo].  A non-negative base yields a non-negative result —
   with the one IEEE corner that (-0.) ** (negative odd integer) is
   -inf, admitted when 0 is a possible base and a negative exponent is
   possible.  A possibly-negative base yields anything, NaN included:
   that imprecision is deliberate, unsafe-pow flags those sites. *)
let pow a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | V a', V b' ->
    if (not (empty_num a'.lo a'.hi)) && a'.lo >= 0.0 then
      let lo =
        if Float.equal a'.lo 0.0 && (empty_num b'.lo b'.hi || b'.lo < 0.0) then
          neg_infinity
        else 0.0
      in
      v lo infinity (a'.nan || b'.nan)
    else top_nan

let pp ppf = function
  | Bot -> Fmt.string ppf "⊥"
  | V r ->
    if empty_num r.lo r.hi then Fmt.string ppf "NaN"
    else Fmt.pf ppf "[%h, %h]%s" r.lo r.hi (if r.nan then "∪NaN" else "")
