(** Flags [lib/**.ml] files that have no sibling [.mli].  File-level
    finding (line 0); suppressible by a directive anywhere in the file. *)

val rule : Rule.t
