(** The scan driver: source discovery, parsing, rule dispatch and
    suppression filtering. *)

val parse_structure :
  rel:string -> string -> (Parsetree.structure, Finding.t) result
(** Parse implementation text; a syntax/lexical failure becomes a
    [parse-error] finding rather than an exception. *)

val check_source :
  ?has_mli:bool -> rules:Rule.t list -> rel:string -> string -> Finding.t list
(** Run every applicable rule over one file's text (as [rel]), apply
    suppression directives, and report malformed or unused directives.
    [has_mli] (default [true]) feeds the file-level rules. *)

val list_sources : root:string -> string list
(** All [.ml]/[.mli] paths under [root], relative, sorted, skipping
    hidden and underscore-prefixed directories ([_build], [.git], ...). *)

val scan : ?rules:Rule.t list -> root:string -> unit -> Finding.t list
(** Lint the whole tree under [root]. *)
