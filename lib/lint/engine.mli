(** The scan driver: source discovery, parsing, whole-program analysis,
    rule dispatch and suppression filtering. *)

val parse_structure :
  rel:string -> string -> (Parsetree.structure, Finding.t) result
(** Parse implementation text; a syntax/lexical failure becomes a
    [parse-error] finding rather than an exception. *)

type source = { rel : string; text : string; mli : string option }
(** One implementation to lint: path relative to the scan root, its
    text, and the text of its interface when one exists. *)

val check_sources :
  ?cross_module:bool -> rules:Rule.t list -> source list -> Finding.t list
(** Lint a set of files together.  Files under [lib/] that parse form
    the {!Project} over which [check_project] rules run (with
    [cross_module] controlling foreign resolution — [false] exists for
    tests that demonstrate a finding depends on it); a rule with
    [project_replaces] has its per-file check skipped for those files.
    Suppression directives are applied per file across {e all} findings
    — per-file and project alike — and malformed or unused directives
    are reported as usual. *)

val check_source :
  ?has_mli:bool ->
  ?cross_module:bool ->
  rules:Rule.t list ->
  rel:string ->
  string ->
  Finding.t list
(** Single-file convenience over {!check_sources} (a one-file project).
    [has_mli] (default [true]) feeds the file-level rules; the synthetic
    interface exports nothing, which only matters cross-module. *)

val list_sources : root:string -> string list
(** All [.ml]/[.mli] paths under [root], relative, sorted, skipping
    hidden and underscore-prefixed directories ([_build], [.git], ...). *)

val scan : ?rules:Rule.t list -> root:string -> unit -> Finding.t list
(** Lint the whole tree under [root]. *)
