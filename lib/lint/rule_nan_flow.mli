(** [nan-flow] — NaN-manufacturing arithmetic (0/0, inf/inf, log/sqrt of
    a possibly-negative value, 0 · ∞) whose result reaches a benchmark
    payload or a PD decision entry point, judged with the whole-program
    abstract values and closed over the global call graph.  Project-only:
    there is no per-file variant, because the evidence (operand bounds)
    routinely lives in another module. *)

val name : string
val rule : Rule.t
