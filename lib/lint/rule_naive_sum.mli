(** Flags [List.fold_left (+.)]-style float accumulation in [lib/], where
    the repo mandates [Util.Ksum] (Neumaier compensated summation) so the
    dual-certificate comparisons stay trustworthy. *)

val rule : Rule.t
