(* magic-tolerance: a bare float-literal tolerance used directly in a
   comparison.  The tree centralises tolerances in [Util.Feq]
   ([tol_snap], [tol_guard], [tol_loose], [default_atol]); a literal
   [1e-9] inlined at a comparison site drifts out of sync with the
   boundary-snapping tolerance the timeline actually uses, which is
   exactly the class of bug PR2/PR7 chased.  Only small magnitudes fire
   (|lit| <= 1e-4): comparing against [0.5] or [100.] is a threshold,
   not a tolerance.  [lib/util/feq.ml] and [lib/util/bisect.ml] are the
   sanctioned homes of raw tolerance literals and are exempt. *)

let name = "magic-tolerance"

let doc =
  "bare float-literal tolerance in a comparison; use the named Util.Feq \
   constants (tol_snap, tol_guard, tol_loose, default_atol) or \
   Feq.approx so every module agrees on what \"equal\" means"

let exempt_files = [ "lib/util/feq.ml"; "lib/util/bisect.ml" ]

let applies rel =
  Rule.lib_only rel
  && not (List.exists (String.equal rel) exempt_files)

let cmp_paths =
  [ [ "<" ]; [ "<=" ]; [ ">" ]; [ ">=" ]; [ "=" ]; [ "<>" ] ]
  |> List.concat_map (fun p -> [ p; "Stdlib" :: p ])

(* Largest magnitude that still reads as a tolerance rather than a
   threshold (hoisted out of the comparison below so this rule does not
   fire on its own source). *)
let max_magnitude = 1e-4

(* A tolerance-looking literal: small, nonzero.  Comparing against 0.0
   itself is a sign test, not a tolerance. *)
let tolerance_literal e =
  if not (Astq.is_float_literal e) then None
  else
    match Astq.signed_number e with
    | Some v when Float.abs v > 0.0 && Float.abs v <= max_magnitude -> Some v
    | _ -> None

let check _ctx str =
  let acc = ref [] in
  Astq.iter_expressions str (fun e ->
      match Astq.apply_parts e with
      | Some (f, [ a; b ]) when Astq.path_is f cmp_paths ->
        let hit x =
          match tolerance_literal x with
          | Some v ->
            acc :=
              Finding.of_location ~rule:name ~severity:Finding.Warning
                ~message:(Fmt.str "comparison against bare literal %h; %s" v doc)
                e.pexp_loc
              :: !acc
          | None -> ()
        in
        hit a;
        hit b
      | _ -> ());
  List.rev !acc

let example =
  "if Float.abs (a -. b) < 1e-9 then ...\n\
   (* fires: inline tolerance literal.  Write [Float.abs (a -. b) < \
   Feq.tol_snap] or [Feq.approx a b] instead. *)"

let rule =
  Rule.make ~applies ~doc ~severity:Finding.Warning ~check_structure:check
    ~example name
