(** Interprocedural Domain-race detector: outer-scope mutable state
    (per {!Mutstate}) written — or read through [!] — by code reachable
    (via the per-file {!Callgraph} and the {!Taint} fixpoint) from a
    [Domain.spawn] / [Runner.map] closure, without Atomic/Mutex
    mediation. *)

val name : string
val rule : Rule.t
