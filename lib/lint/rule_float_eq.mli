(** Flags polymorphic structural (in)equality and [compare] applied to
    expressions that are syntactically float-valued (literal, float
    operator application, [Float.infinity], ...). *)

val rule : Rule.t
