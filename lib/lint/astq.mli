(** Small parsetree query helpers shared by the rules. *)

val strip : Parsetree.expression -> Parsetree.expression
(** Drop type constraints, coercions and local opens. *)

val path : Parsetree.expression -> string list option
(** Flattened dotted path of an identifier expression. *)

val path_is : Parsetree.expression -> string list list -> bool
(** Exact-path membership test. *)

val suffix_is : Parsetree.expression -> string list list -> bool
(** Match the trailing components of a dotted path, so an alias prefix
    ([Speedscale.Power.alpha]) still matches [["Power"; "alpha"]]. *)

val head_module : Parsetree.expression -> string option
(** Leading module of a dotted identifier ([Printf.sprintf] -> [Printf]). *)

val float_const : Parsetree.expression -> float option
(** Value of a float literal, if the expression is one. *)

val signed_number : Parsetree.expression -> float option
(** Value of a float or integer literal, looking through the parser's
    folded sign and an explicit unary minus ([-1e-9], [~-. x]). *)

val is_float_literal : Parsetree.expression -> bool
(** Whether the expression is a (possibly negated) float literal. *)

val apply_parts :
  Parsetree.expression ->
  (Parsetree.expression * Parsetree.expression list) option
(** Head and (label-stripped) arguments of an application. *)

val pat_vars : Parsetree.pattern -> string list
(** All variable names bound by a pattern. *)

val iter_expressions :
  Parsetree.structure -> (Parsetree.expression -> unit) -> unit
(** Visit every expression of a structure, outermost first. *)
