open Parsetree

let name = "catch-all-exn"

let doc =
  "'with _ ->' swallows every exception, including Out_of_memory, \
   Stack_overflow and Assert_failure; match the specific exceptions you \
   expect"

let catch_all (c : case) =
  Option.is_none c.pc_guard
  && (match c.pc_lhs.ppat_desc with
     | Ppat_any | Ppat_exception { ppat_desc = Ppat_any; _ } -> true
     | _ -> false)

let loc_of (c : case) =
  match c.pc_lhs.ppat_desc with
  | Ppat_exception p -> p.ppat_loc
  | _ -> c.pc_lhs.ppat_loc

let check _ctx str =
  let acc = ref [] in
  Astq.iter_expressions str (fun e ->
      let flag_cases ~exception_only cases =
        List.iter
          (fun (c : case) ->
            let is_exn_case =
              match c.pc_lhs.ppat_desc with
              | Ppat_exception _ -> true
              | _ -> not exception_only
            in
            if is_exn_case && catch_all c then
              acc :=
                Finding.of_location ~rule:name ~severity:Finding.Error
                  ~message:doc (loc_of c)
                :: !acc)
          cases
      in
      match e.pexp_desc with
      | Pexp_try (_, cases) -> flag_cases ~exception_only:false cases
      | Pexp_match (_, cases) -> flag_cases ~exception_only:true cases
      | _ -> ());
  List.rev !acc

let example =
  "try step () with _ -> 0.0\n\
   (* fires: the wildcard swallows Stack_overflow and assertion failures \
   alike; match the exceptions you mean *)"

let rule =
  Rule.make ~doc ~severity:Finding.Error ~check_structure:check ~example name
