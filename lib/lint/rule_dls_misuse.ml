(* Domain.DLS discipline.

   Two misuse shapes:

   - a [Domain.DLS.new_key] anywhere but the right-hand side of a toplevel
     binding: a key created per call (or worse, inside a spawned closure)
     silently partitions state nobody can find again;

   - a [DLS.get k] textually before a [DLS.set k] of the same key in the
     same function: the read observes the ambient/default value, which is
     either a bug (missing initialisation) or a deliberate save/restore
     swap that deserves an audited per-site suppression (the pattern in
     bench/harness.ml's output sink). *)

open Parsetree

let name = "dls-misuse"

let doc =
  "Domain.DLS misuse: a key created outside a toplevel binding, or a DLS \
   slot read before it is set in the same function (doc/LINTING.md \
   \"Dataflow rules\")"

let new_key_suffix = [ [ "DLS"; "new_key" ] ]
let get_suffix = [ [ "DLS"; "get" ] ]
let set_suffix = [ [ "DLS"; "set" ] ]

let is_fun_literal e =
  match (Astq.strip e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

let check _ctx str =
  (* right-hand sides of toplevel bindings whose (stripped) body is a
     direct new_key application are the sanctioned creation sites *)
  let allowed = Hashtbl.create 8 in
  List.iter
    (fun (si : structure_item) ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let rhs = Astq.strip vb.pvb_expr in
            match Astq.apply_parts rhs with
            | Some (f, _) when Astq.suffix_is f new_key_suffix ->
              Hashtbl.replace allowed rhs.pexp_loc.loc_start.pos_cnum ()
            | _ -> ())
          vbs
      | _ -> ())
    str;
  let acc = ref [] in
  let slots = ref [] in  (* (node, key, is_set, loc) *)
  let on_expr (c : Callgraph.ctx) e =
    match Astq.apply_parts e with
    | Some (f, args) -> (
      if Astq.suffix_is f new_key_suffix then begin
        let stripped = Astq.strip e in
        if not (Hashtbl.mem allowed stripped.pexp_loc.loc_start.pos_cnum) then
          acc :=
            Finding.of_location ~rule:name ~severity:Finding.Error
              ~message:
                "Domain.DLS.new_key inside a function or closure: a key \
                 created per call partitions domain-local state invisibly; \
                 create keys once, in a toplevel binding, before any domain \
                 is spawned"
              e.pexp_loc
            :: !acc
      end;
      let record is_set =
        match args with
        | key :: _ -> (
          match Mutstate.root_var key with
          | Some k -> slots := (c.node, k, is_set, e.pexp_loc) :: !slots
          | None -> ())
        | [] -> ()
      in
      if Astq.suffix_is f get_suffix then record false
      else if Astq.suffix_is f set_suffix then record true)
    | None -> ()
  in
  let cg = Callgraph.build ~on_expr str in
  (* get-before-set, per (function, key): report the earliest offending
     read once.  A [let saved = DLS.get k] right-hand side is its own
     callgraph node — attribute every slot event to the nearest enclosing
     *function* node so the get and the set land in the same scope. *)
  let nodes = Callgraph.nodes cg in
  let rec owner id =
    if id < 0 then id
    else if is_fun_literal nodes.(id).body then id
    else owner nodes.(id).parent
  in
  let slots =
    List.rev_map (fun (node, key, is_set, loc) -> (owner node, key, is_set, loc))
      !slots
  in
  let module SS = Set.Make (struct
    type t = int * string

    let compare = compare
  end) in
  let reported = ref SS.empty in
  List.iter
    (fun (node, key, is_set, loc) ->
      if not is_set then
        let later_set =
          List.exists
            (fun (n', k', s', l') ->
              s' && n' = node && String.equal k' key
              && l'.Location.loc_start.pos_cnum > loc.Location.loc_start.pos_cnum)
            slots
        in
        if later_set && not (SS.mem (node, key) !reported) then begin
          reported := SS.add (node, key) !reported;
          acc :=
            Finding.of_location ~rule:name ~severity:Finding.Error
              ~message:
                (Fmt.str
                   "DLS slot '%s' is read before it is set in the same \
                    function: the get observes the ambient/default value; \
                    set first, or suppress with the audited save/restore \
                    justification"
                   key)
              loc
            :: !acc
        end)
    slots;
  List.rev !acc

let example =
  "let key = Domain.DLS.new_key (fun () -> Random.State.make_self_init ())\n\
   (* fires: a self-seeding split per domain makes runs irreproducible; \
   derive per-domain states from one seed *)"

let rule =
  Rule.make ~doc ~severity:Finding.Error ~check_structure:check ~example name
