(** [magic-tolerance] — a bare small float literal (0 < |lit| <= 1e-4)
    used directly as a comparison operand outside the sanctioned
    tolerance homes ([lib/util/feq.ml], [lib/util/bisect.ml]); the fix
    is the named [Util.Feq] constants. *)

val name : string
val rule : Rule.t
