(* Abstract interpretation of float expressions over the whole-program
   call graph.

   Every {!Callgraph} node (each [let] binding, toplevel or nested) gets
   a {e summary}: an {!Absdom} value over-approximating what the binding
   — or, for a function, any full application of it — can evaluate to.
   Summaries are solved to fixpoint by the bounded worklist in {!Taint},
   with parameters abstracted to ⊤∪NaN (the analysis is context- and
   argument-insensitive, so a summary is sound for every call site) and
   {!Absdom.widen} applied once a node's summary keeps changing, which
   caps the interval lattice's infinite ascending chains.

   Inside a body the evaluator is flow-sensitive where it cheaply can
   be: conditions refine the environment in both branches of an [if]
   (strict bounds via [Float.succ]/[Float.pred]), a guard that always
   raises refines the rest of the sequence, [assert] refines what
   follows, and [let] extends the environment — nested bindings reuse
   their own node summaries so local recursion is already solved.
   Identifier references resolve locals first, then file-local nodes,
   then — through {!Project} — qualified paths, aliases and opens into
   other modules.  Anything unknown is ⊤∪NaN; a handful of axioms cover
   stdlib constants and the [Power] getters whose non-negativity is
   enforced by [Power.make] (a record field access is opaque to the
   interpreter, so construction-time invariants must be trusted, not
   derived). *)

open Parsetree
module M = Map.Make (String)

type t = {
  project : Project.t;
  summaries : Absdom.t array;  (* global node id -> result approximation *)
  converged : bool;
}

type env = {
  analysis : t;
  file : Project.file;
  node : int;  (* global id of the enclosing binding, -1 at toplevel *)
  vars : Absdom.t M.t;  (* lexically-bound names in scope *)
}

let project t = t.project
let summary t gid = t.summaries.(gid)
let converged t = t.converged
let env_file env = env.file
let env_node env = env.node
let lookup env x = M.find_opt x env.vars

(* Stdlib / Float float constants. *)
let const_axiom path =
  match path with
  | [ "infinity" ] | [ "Float"; "infinity" ] | [ "Stdlib"; "infinity" ] ->
    Some (Absdom.const infinity)
  | [ "neg_infinity" ] | [ "Float"; "neg_infinity" ] ->
    Some (Absdom.const neg_infinity)
  | [ "nan" ] | [ "Float"; "nan" ] -> Some Absdom.nan_only
  | [ "max_float" ] | [ "Float"; "max_float" ] ->
    Some (Absdom.const max_float)
  | [ "min_float" ] | [ "Float"; "min_float" ] ->
    Some (Absdom.const min_float)
  | [ "epsilon_float" ] | [ "Float"; "epsilon" ] ->
    Some (Absdom.const epsilon_float)
  | [ "Float"; "pi" ] -> Some (Absdom.const Float.pi)
  | _ -> None

(* Producers whose range is non-negative by a construction-time invariant
   the interpreter cannot see (Power.make refuses alpha <= 1; the getters
   read record fields, which are ⊤ to us).  Kept in sync with the legacy
   unsafe-pow whitelist so the interprocedural rule never regresses it. *)
let trusted_nonneg =
  [
    [ "Power"; "alpha" ]; [ "Power"; "competitive_bound" ];
    [ "Power"; "delta_star" ]; [ "Power"; "rejection_speed_factor" ];
    [ "Power"; "cll_bound" ];
  ]

let raising_paths =
  [
    [ "invalid_arg" ]; [ "failwith" ]; [ "raise" ]; [ "raise_notrace" ];
    [ "Stdlib"; "invalid_arg" ]; [ "Stdlib"; "failwith" ];
    [ "Stdlib"; "raise" ];
  ]

let const_of = Astq.signed_number

let bare_var env e =
  match Astq.path (Astq.strip e) with
  | Some [ x ] when M.mem x env.vars -> Some x
  | _ -> None

(* The numeric constraint [x op c] imposes on [x] when the comparison is
   [truth]: interval bounds plus whether NaN survives.  A true strict or
   ordered comparison rules NaN out; a false one keeps it (x < c being
   false means x >= c *or* x is NaN). *)
let constraint_of op c truth =
  let next = Float.succ c and prev = Float.pred c in
  match (op, truth) with
  | "<", true -> Some (neg_infinity, prev, false)
  | "<", false -> Some (c, infinity, true)
  | "<=", true -> Some (neg_infinity, c, false)
  | "<=", false -> Some (next, infinity, true)
  | ">", true -> Some (next, infinity, false)
  | ">", false -> Some (neg_infinity, c, true)
  | ">=", true -> Some (c, infinity, false)
  | ">=", false -> Some (neg_infinity, prev, true)
  | "=", true -> Some (c, c, false)
  | "<>", false -> Some (c, c, false)
  | _ -> None

let flip_op = function
  | "<" -> ">"
  | "<=" -> ">="
  | ">" -> "<"
  | ">=" -> "<="
  | op -> op

(* Refine the environment under the assumption that [cond] evaluated to
   [truth].  Only bare in-scope variables compared against literal
   constants are refined; everything else leaves the env unchanged. *)
let rec refine env cond truth =
  match Astq.apply_parts cond with
  | Some (f, [ a; b ]) -> (
    let refine_var x op c =
      match constraint_of op c truth with
      | None -> env
      | Some (lo, hi, nan) ->
        let cur = M.find x env.vars in
        { env with vars = M.add x (Absdom.refine cur ~lo ~hi ~nan) env.vars }
    in
    match Astq.path f with
    | Some [ (("<" | "<=" | ">" | ">=" | "=" | "<>") as op) ] -> (
      match (bare_var env a, const_of b, const_of a, bare_var env b) with
      | Some x, Some c, _, _ -> refine_var x op c
      | _, _, Some c, Some x -> refine_var x (flip_op op) c
      | _ -> env)
    | Some [ "not" ] -> env
    | Some [ "&&" ] -> if truth then refine (refine env a truth) b truth else env
    | Some [ "||" ] ->
      if truth then env else refine (refine env a truth) b truth
    | _ ->
      if Astq.suffix_is f [ [ "Float"; "equal" ] ] then
        match (bare_var env a, const_of b, const_of a, bare_var env b) with
        | Some x, Some c, _, _ when not (Float.is_nan c) -> refine_var x "=" c
        | _, _, Some c, Some x when not (Float.is_nan c) -> refine_var x "=" c
        | _ -> env
      else if Astq.suffix_is f [ [ "Float"; "is_nan" ] ] then
        match args_single_var env cond with
        | Some x ->
          let cur = M.find x env.vars in
          let refined =
            if truth then Absdom.meet cur Absdom.nan_only
            else Absdom.refine cur ~lo:neg_infinity ~hi:infinity ~nan:false
          in
          { env with vars = M.add x refined env.vars }
        | None -> env
      else env)
  | Some (f, [ a ]) when Astq.path_is f [ [ "not" ] ] -> refine env a (not truth)
  | _ -> env

and args_single_var env cond =
  match Astq.apply_parts cond with
  | Some (_, [ a ]) -> bare_var env a
  | _ -> None

let always_raises e =
  let rec go e =
    match (Astq.strip e).pexp_desc with
    | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> go body
    | Pexp_assert
        {
          pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
          _;
        } ->
      true
    | _ -> (
      match Astq.apply_parts e with
      | Some (f, _) -> Astq.path_is f raising_paths
      | None -> false)
  in
  go e

(* The environment after the statement [e1] in [e1; e2] completed
   normally: a guard that always raises contributes its negation, an
   assert contributes its condition.  [None]: [e1] never completes. *)
let seq_env env e1 =
  match (Astq.strip e1).pexp_desc with
  | Pexp_ifthenelse (c, then_, None) when always_raises then_ ->
    Some (refine env c false)
  | Pexp_assert
      {
        pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
        _;
      } ->
    None
  | Pexp_assert c -> Some (refine env c true)
  | _ -> if always_raises e1 then None else Some env

(* The node a binding pattern's location belongs to, used to reuse the
   solved summary of nested [let] nodes instead of re-evaluating them. *)
let node_at (file : Project.file) (loc : Location.t) =
  Array.fold_left
    (fun acc (nd : Callgraph.node) ->
      if
        nd.loc.loc_start.pos_cnum = loc.loc_start.pos_cnum
        && String.equal nd.loc.loc_start.pos_fname loc.loc_start.pos_fname
      then Some nd
      else acc)
    None
    (Callgraph.nodes file.cg)

(* Global node an identifier expression denotes, if it is not locally
   bound: file-local nodes by (last-wins) name, then the cross-module
   resolver.  Used by rules to ask "does this mention that summary". *)
let resolve_ref env e =
  match Astq.path (Astq.strip e) with
  | Some [ x ] ->
    if M.mem x env.vars then None
    else (
      match Callgraph.node_named env.file.cg x with
      | Some nd -> Some (Project.global env.file nd)
      | None -> Project.resolve_open env.analysis.project env.file ~name:x)
  | Some parts -> Project.resolve_path env.analysis.project env.file parts
  | None -> None

let bind_tops pat vars =
  List.fold_left
    (fun m x -> M.add x Absdom.top_nan m)
    vars (Astq.pat_vars pat)

(* Peel a [fun p1 p2 -> body] chain, binding parameters to ⊤∪NaN. *)
let rec peel env e =
  match (Astq.strip e).pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
    peel { env with vars = bind_tops pat env.vars } body
  | _ -> (env, e)

let rec eval env e : Absdom.t =
  let e = Astq.strip e in
  match const_of e with
  | Some c -> Absdom.const c
  | None -> (
    match e.pexp_desc with
    | Pexp_ident _ -> (
      match Astq.path e with
      | Some [ x ] when M.mem x env.vars -> M.find x env.vars
      | Some p -> (
        match const_axiom p with
        | Some v -> v
        | None -> (
          match resolve_ref env e with
          | Some gid -> env.analysis.summaries.(gid)
          | None -> Absdom.top_nan))
      | None -> Absdom.top_nan)
    | Pexp_apply (f, _) -> (
      let args =
        match Astq.apply_parts e with Some (_, a) -> a | None -> []
      in
      let unary op =
        match args with [ a ] -> op (eval env a) | _ -> Absdom.top_nan
      in
      let binary op =
        match args with
        | [ a; b ] -> op (eval env a) (eval env b)
        | _ -> Absdom.top_nan
      in
      match Astq.path f with
      | Some [ ("+." | "+") ] -> binary Absdom.add
      | Some [ ("-." | "-") ] -> (
        match args with
        | [ a; b ] -> Absdom.sub (eval env a) (eval env b)
        | [ a ] -> Absdom.neg (eval env a)
        | _ -> Absdom.top_nan)
      | Some [ ("~-." | "~-") ] -> unary Absdom.neg
      | Some [ ("~+." | "~+") ] -> unary Fun.id
      | Some [ ("*." | "*") ] -> binary Absdom.mul
      | Some [ ("/." | "/") ] -> binary Absdom.div
      | Some ([ "**" ] | [ "Stdlib"; "**" ] | [ "Float"; "pow" ]) ->
        binary Absdom.pow
      | Some ([ "sqrt" ] | [ "Float"; "sqrt" ]) -> unary Absdom.sqrt_
      | Some ([ "exp" ] | [ "Float"; "exp" ]) -> unary Absdom.exp_
      | Some ([ "log" ] | [ "Float"; "log" ]) -> unary Absdom.log_
      | Some ([ "abs_float" ] | [ "Float"; "abs" ]) -> unary Absdom.abs_
      | Some ([ "min" ] | [ "Stdlib"; "min" ] | [ "Float"; "min" ]) ->
        binary Absdom.fmin
      | Some ([ "max" ] | [ "Stdlib"; "max" ] | [ "Float"; "max" ]) ->
        binary Absdom.fmax
      | Some ([ "float_of_int" ] | [ "Float"; "of_int" ]) -> unary Fun.id
      | Some [ ("<" | "<=" | ">" | ">=" | "=" | "<>" | "==" | "!=" | "&&" | "||") ]
        ->
        Absdom.top (* boolean-valued *)
      | _ ->
        if Astq.path_is f raising_paths then Absdom.bot
        else if Astq.suffix_is f trusted_nonneg then
          Absdom.interval 0.0 infinity
        else (
          (* an application of a known binding: its summary already
             abstracts any full application's result *)
          match
            match Astq.path f with
            | Some [ x ] when M.mem x env.vars -> Some (M.find x env.vars)
            | _ ->
              Option.map
                (fun gid -> env.analysis.summaries.(gid))
                (resolve_ref env f)
          with
          | Some v -> v
          | None -> Absdom.top_nan))
    | Pexp_let (rf, vbs, body) ->
      let rhs_env =
        match rf with
        | Asttypes.Recursive ->
          List.fold_left
            (fun en vb -> { en with vars = bind_tops vb.pvb_pat en.vars })
            env vbs
        | Asttypes.Nonrecursive -> env
      in
      let env' =
        List.fold_left
          (fun en vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } ->
              (* The node summary is sound for any environment but was
                 solved with the enclosing parameters unbound; a direct
                 evaluation in the current (refined) env is also sound.
                 Their meet keeps the sharper of the two. *)
              let direct = eval rhs_env vb.pvb_expr in
              let v =
                match node_at env.file vb.pvb_pat.ppat_loc with
                | Some nd ->
                  Absdom.meet
                    env.analysis.summaries.(Project.global env.file nd)
                    direct
                | None -> direct
              in
              { en with vars = M.add txt v en.vars }
            | _ -> { en with vars = bind_tops vb.pvb_pat en.vars })
          env vbs
      in
      eval env' body
    | Pexp_fun _ ->
      let env', body = peel env e in
      eval env' body
    | Pexp_function cases ->
      List.fold_left
        (fun acc (c : case) ->
          Absdom.join acc
            (eval { env with vars = bind_tops c.pc_lhs env.vars } c.pc_rhs))
        Absdom.bot cases
    | Pexp_ifthenelse (c, then_, else_) -> (
      let v1 = eval (refine env c true) then_ in
      match else_ with
      | Some e2 -> Absdom.join v1 (eval (refine env c false) e2)
      | None -> Absdom.top_nan)
    | Pexp_sequence (e1, e2) -> (
      match seq_env env e1 with
      | None -> Absdom.bot
      | Some env' -> eval env' e2)
    | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      let base =
        match e.pexp_desc with
        | Pexp_try (b, _) -> eval env b
        | _ -> Absdom.bot
      in
      List.fold_left
        (fun acc (c : case) ->
          let env' = { env with vars = bind_tops c.pc_lhs env.vars } in
          let env' =
            match c.pc_guard with Some g -> refine env' g true | None -> env'
          in
          Absdom.join acc (eval env' c.pc_rhs))
        base cases
    | Pexp_assert
        {
          pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
          _;
        } ->
      Absdom.bot
    | _ -> Absdom.top_nan)

(* ---------------- whole-program summary fixpoint ---------------- *)

(* After this many fact changes at a node, further growth is widened.
   Small enough to converge fast, large enough that short chains (a let
   refined twice) keep exact bounds. *)
let widen_after = 3

let analyze (project : Project.t) : t =
  let n = Project.n_nodes project in
  let analysis =
    { project; summaries = Array.make n Absdom.bot; converged = true }
  in
  let wcount = Array.make n 0 in
  (* Parameter names of a node's fun chain, without entering the body. *)
  let rec fun_params acc (e : Parsetree.expression) =
    match (Astq.strip e).pexp_desc with
    | Pexp_fun (_, _, pat, body) -> fun_params (Astq.pat_vars pat @ acc) body
    | _ -> acc
  in
  let eval_node gid =
    let file = Project.owner project gid in
    let nd = Project.local project gid in
    let nodes = Callgraph.nodes file.cg in
    (* Bind the lexical context to ⊤∪NaN: parameters of every enclosing
       node, and — for a nonrecursive binding — the node's own name (a
       bare mention in its RHS is an outer shadowed binding, not itself).
       Without this, name-based resolution can capture the node's own
       Bot summary and unsoundly conclude the value is unreachable. *)
    let rec chain_vars vars id =
      if id < 0 then vars
      else
        let anc = nodes.(id) in
        let vars =
          List.fold_left
            (fun m x -> M.add x Absdom.top_nan m)
            vars
            (fun_params [] anc.body)
        in
        chain_vars vars anc.parent
    in
    let vars = chain_vars M.empty nd.parent in
    let vars =
      if nd.recursive then vars else M.add nd.name Absdom.top_nan vars
    in
    let env, body = peel { analysis; file; node = gid; vars } nd.body in
    eval env body
  in
  let transfer gid _incoming =
    let prev = analysis.summaries.(gid) in
    let nv = Absdom.join prev (eval_node gid) in
    let next =
      if wcount.(gid) >= widen_after then Absdom.widen prev nv else nv
    in
    if not (Absdom.equal next prev) then wcount.(gid) <- wcount.(gid) + 1;
    analysis.summaries.(gid) <- next;
    next
  in
  let result =
    Taint.solve ~n
      ~deps:(Project.calls project)
      ~init:(fun _ -> Absdom.bot)
      ~join:Absdom.join ~equal:Absdom.equal ~transfer ()
  in
  (* The solver's facts array and [summaries] agree; keep the latter. *)
  ignore result.Taint.fact;
  { analysis with converged = result.Taint.converged }

(* ---------------- flow-sensitive file traversal for rules -------- *)

let iter_file (analysis : t) (file : Project.file) on_expr =
  let callback env e = on_expr env e in
  (* entering a binding's right-hand side moves [env.node] to its node *)
  let enter_vb env vb =
    match node_at file vb.pvb_pat.ppat_loc with
    | Some nd -> { env with node = Project.global file nd }
    | None -> env
  in
  let rec walk env e =
    callback env e;
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
      let rhs_env =
        match rf with
        | Asttypes.Recursive ->
          List.fold_left
            (fun en vb -> { en with vars = bind_tops vb.pvb_pat en.vars })
            env vbs
        | Asttypes.Nonrecursive -> env
      in
      List.iter (fun vb -> walk (enter_vb rhs_env vb) vb.pvb_expr) vbs;
      let env' =
        List.fold_left
          (fun en vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } ->
              (* mirror [eval]'s let case: meet the context-free node
                 summary with a direct evaluation under the refined env *)
              let direct = eval rhs_env vb.pvb_expr in
              let v =
                match node_at env.file vb.pvb_pat.ppat_loc with
                | Some nd ->
                  Absdom.meet
                    analysis.summaries.(Project.global env.file nd)
                    direct
                | None -> direct
              in
              { en with vars = M.add txt v en.vars }
            | _ -> { en with vars = bind_tops vb.pvb_pat en.vars })
          env vbs
      in
      walk env' body
    | Pexp_fun (_, default, pat, body) ->
      Option.iter (walk env) default;
      walk { env with vars = bind_tops pat env.vars } body
    | Pexp_function cases ->
      List.iter
        (fun (c : case) ->
          let env' = { env with vars = bind_tops c.pc_lhs env.vars } in
          Option.iter (walk env') c.pc_guard;
          walk env' c.pc_rhs)
        cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk env scrut;
      List.iter
        (fun (c : case) ->
          let env' = { env with vars = bind_tops c.pc_lhs env.vars } in
          (match c.pc_guard with
          | Some g ->
            walk env' g;
            walk (refine env' g true) c.pc_rhs
          | None -> walk env' c.pc_rhs))
        cases
    | Pexp_ifthenelse (c, then_, else_) ->
      walk env c;
      walk (refine env c true) then_;
      Option.iter (walk (refine env c false)) else_
    | Pexp_sequence (e1, e2) ->
      walk env e1;
      let env' = match seq_env env e1 with Some en -> en | None -> env in
      walk env' e2
    | Pexp_for (pat, start, stop, _, body) ->
      walk env start;
      walk env stop;
      walk { env with vars = bind_tops pat env.vars } body
    | Pexp_while (c, body) ->
      walk env c;
      walk (refine env c true) body
    | _ ->
      (* generic descent, same environment for every child *)
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ child -> walk env child);
        }
      in
      Ast_iterator.default_iterator.expr it e
  in
  let top_env = ref { analysis; file; node = -1; vars = M.empty } in
  List.iter
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (rf, vbs) ->
        let rhs_env =
          match rf with
          | Asttypes.Recursive ->
            List.fold_left
              (fun en vb -> { en with vars = bind_tops vb.pvb_pat en.vars })
              !top_env vbs
          | Asttypes.Nonrecursive -> !top_env
        in
        List.iter (fun vb -> walk (enter_vb rhs_env vb) vb.pvb_expr) vbs;
        top_env :=
          List.fold_left
            (fun en vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                let v =
                  match node_at file vb.pvb_pat.ppat_loc with
                  | Some nd -> analysis.summaries.(Project.global file nd)
                  | None -> Absdom.top_nan
                in
                { en with vars = M.add txt v en.vars }
              | _ -> { en with vars = bind_tops vb.pvb_pat en.vars })
            !top_env vbs
      | Pstr_eval (e, _) -> walk !top_env e
      | _ -> ())
    file.str
