(* A generic monotone fixpoint solver over a finite dependency graph.

   Nodes are integers [0 .. n-1].  The fact at node [v] is the least
   solution of

     fact v = transfer v (join (init v) (join over d in deps v of fact d))

   computed with a worklist: when a node's fact grows, only its dependents
   are revisited.  [join] must be monotone and [equal] must detect
   stabilisation, otherwise the [bound] on worklist pops is what guarantees
   termination: on exhaustion the current (sound under-approximation for a
   monotone join) facts are returned with [converged = false], and callers
   are expected to treat that as "analysis inconclusive", not as clean. *)

type 'fact result = {
  fact : int -> 'fact;
  iterations : int;  (* worklist pops performed *)
  converged : bool;  (* false iff the iteration bound was exhausted *)
}

let default_bound ~n ~edges =
  (* Generous for any finite-chain lattice: every pop that changes a fact
     climbs some node one lattice step, and per-file graphs are small. *)
  let b = 4 * (n + 1) * (edges + n + 1) in
  if b < 256 then 256 else b

let solve ~n ~deps ~init ~join ~equal ?transfer ?bound () =
  let transfer = match transfer with Some f -> f | None -> fun _ f -> f in
  let deps = Array.init n deps in
  let edges = Array.fold_left (fun acc d -> acc + List.length d) 0 deps in
  let bound =
    match bound with Some b -> b | None -> default_bound ~n ~edges
  in
  let rdeps = Array.make n [] in
  Array.iteri
    (fun v ds -> List.iter (fun d -> if d >= 0 && d < n then rdeps.(d) <- v :: rdeps.(d)) ds)
    deps;
  Array.iteri (fun v l -> rdeps.(v) <- List.rev l) rdeps;
  let facts = Array.init n init in
  let recompute v =
    let incoming =
      List.fold_left
        (fun acc d -> if d >= 0 && d < n then join acc facts.(d) else acc)
        (init v) deps.(v)
    in
    transfer v incoming
  in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let push v =
    if not queued.(v) then begin
      queued.(v) <- true;
      Queue.add v queue
    end
  in
  for v = 0 to n - 1 do
    push v
  done;
  let iterations = ref 0 in
  let converged = ref true in
  let running = ref true in
  while !running && not (Queue.is_empty queue) do
    if !iterations >= bound then begin
      converged := false;
      running := false
    end
    else begin
      let v = Queue.pop queue in
      queued.(v) <- false;
      incr iterations;
      let nf = recompute v in
      if not (equal nf facts.(v)) then begin
        facts.(v) <- nf;
        List.iter push rdeps.(v)
      end
    end
  done;
  { fact = (fun v -> facts.(v)); iterations = !iterations; converged = !converged }
