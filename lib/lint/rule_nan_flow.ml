(* nan-flow: NaN-manufacturing arithmetic shapes whose result can reach a
   benchmark payload ([Record.make], the harness [metric]/[counter]/
   [verdict] builders) or a PD decision entry point.  A NaN in a payload
   silently corrupts regression baselines (every NaN comparison is
   false, so gates pass vacuously); a NaN fed to [Pd.arrive] corrupts
   the committed-load state.

   Shapes, judged with the whole-program abstract values ({!Absint}), so
   a denominator proved away from zero in {e another module} stays
   quiet:

   - [x /. y] where both operands can be zero (0/0) or both can be
     infinite (inf/inf) — a merely-zero denominator yields ±inf, not
     NaN, and is not reported;
   - [log x] / [log10 x] with [x] possibly negative (log 0 = -inf is
     not NaN);
   - [sqrt x] with [x] possibly negative;
   - [x *. y] where one side can be zero and the other infinite.

   Evidence discipline: a shape only counts when the interpreter has
   {e informative} bounds for the operands involved — an unconstrained
   parameter (⊤) is not evidence that 0/0 can happen, otherwise every
   division in the tree would fire.  Sinks are reached either directly
   (the creator is the sink argument) or through the global call graph:
   a node whose body contains a creator taints its callers, solved by
   {!Taint.solve} over {!Project.calls}, which is what makes the rule
   cross-module. *)

open Parsetree

let name = "nan-flow"

let doc =
  "a NaN-manufacturing expression (0/0 or inf/inf division, log/sqrt of a \
   possibly-negative value, 0 * infinity) flows into a benchmark payload \
   (Record.make / metric / counter / verdict) or a PD decision \
   (Pd.arrive); NaN poisons baseline comparisons silently — guard the \
   operands, classify with Float.is_nan, or suppress with the invariant \
   that rules the shape out"

let sink_suffixes =
  [
    [ "Record"; "make" ]; [ "metric" ]; [ "counter" ]; [ "verdict" ];
    [ "Pd"; "arrive" ]; [ "Pd"; "arrive_reference" ];
  ]

let div_paths = [ [ "/." ]; [ "Stdlib"; "/." ]; [ "Float"; "div" ] ]
let mul_paths = [ [ "*." ]; [ "Stdlib"; "*." ]; [ "Float"; "mul" ] ]

let log_paths =
  [ [ "log" ]; [ "Stdlib"; "log" ]; [ "Float"; "log" ]; [ "log10" ];
    [ "Stdlib"; "log10" ]; [ "Float"; "log10" ] ]

let sqrt_paths = [ [ "sqrt" ]; [ "Stdlib"; "sqrt" ]; [ "Float"; "sqrt" ] ]

(* The interpreter knows something beyond "any float": non-empty numeric
   part, and not the full extended line.  ⊤ operands are not evidence. *)
let informative = function
  | Absdom.Bot -> false
  | Absdom.V { lo; hi; nan = _ } ->
    lo <= hi && not (Float.equal lo neg_infinity && Float.equal hi infinity)

let may_zero = function
  | Absdom.Bot -> false
  | Absdom.V { lo; hi; nan = _ } -> lo <= 0.0 && 0.0 <= hi

let may_inf = function
  | Absdom.Bot -> false
  | Absdom.V { lo; hi; nan = _ } -> Float.equal lo neg_infinity || Float.equal hi infinity

let neg_possible = function
  | Absdom.Bot -> false
  | Absdom.V { lo; hi; nan = _ } -> lo < 0.0 && lo <= hi

(* [creator env e] describes why [e] can evaluate to a fresh NaN at this
   program point, judged with the abstract values in scope. *)
let creator env e =
  match Astq.apply_parts (Astq.strip e) with
  | Some (f, [ a; b ]) when Astq.path_is f div_paths ->
    let va = Absint.eval env a and vb = Absint.eval env b in
    if not (informative va && informative vb) then None
    else if may_zero va && may_zero vb then
      Some "0./0. division (both operands can be zero)"
    else if may_inf va && may_inf vb then
      Some "inf/inf division (both operands can be infinite)"
    else None
  | Some (f, [ a; b ]) when Astq.path_is f mul_paths ->
    let va = Absint.eval env a and vb = Absint.eval env b in
    if
      informative va && informative vb
      && ((may_zero va && may_inf vb) || (may_inf va && may_zero vb))
    then Some "0. *. infinity product"
    else None
  | Some (f, [ a ]) when Astq.path_is f log_paths ->
    let v = Absint.eval env a in
    if informative v && neg_possible v then
      Some "log of a possibly-negative value"
    else None
  | Some (f, [ a ]) when Astq.path_is f sqrt_paths ->
    let v = Absint.eval env a in
    if informative v && neg_possible v then
      Some "sqrt of a possibly-negative value"
    else None
  | _ -> None

let sink_name f =
  match Astq.path f with Some p -> String.concat "." p | None -> "sink"

(* First creator anywhere inside the argument expression (the NaN of
   [verdict (log x > 0.0)] is manufactured one level down).  The
   argument's own env is a sound approximation for its subexpressions:
   an argument introduces no new refinement scopes of its own that we
   would need for the operand bounds. *)
let first_creator env arg =
  let found = ref None in
  let rec go e =
    (match !found with
    | Some _ -> ()
    | None -> (
      match creator env e with
      | Some _ as r -> found := r
      | None ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ child -> go child);
          }
        in
        Ast_iterator.default_iterator.expr it e))
  in
  go arg;
  !found

(* Global node the sink argument denotes, for call-graph taint lookup:
   a (possibly qualified) identifier, or the head of an application
   ([Record.make ~payload:(compute x)] follows [compute]). *)
let arg_target env (file : Project.file) arg =
  let ident e =
    match Absint.resolve_ref env e with
    | Some gid -> Some gid
    | None -> (
      match (Astq.strip e).pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; _ } ->
        Option.map
          (fun (nd : Callgraph.node) -> Project.global file nd)
          (Callgraph.node_named file.cg x)
      | _ -> None)
  in
  match ident arg with
  | Some _ as r -> r
  | None -> (
    match Astq.apply_parts (Astq.strip arg) with
    | Some (h, _) -> ident h
    | None -> None)

let check_project (a : Absint.t) =
  let p = Absint.project a in
  let files = Project.files p in
  let n = Project.n_nodes p in
  let direct = Array.make (max n 1) None in
  Array.iter
    (fun (file : Project.file) ->
      Absint.iter_file a file (fun env e ->
          match creator env e with
          | Some why ->
            let gid = Absint.env_node env in
            if gid >= 0 && direct.(gid) = None then direct.(gid) <- Some why
          | None -> ()))
    files;
  (* Call-graph closure: a node is tainted when its own body contains a
     creator, or it calls a tainted node.  Fact = the reason, stable
     under join (first reason wins). *)
  let facts =
    Taint.solve ~n:(max n 1)
      ~deps:(fun v -> if n = 0 then [] else Project.calls p v)
      ~init:(fun v -> direct.(v))
      ~join:(fun x y -> match x with Some _ -> x | None -> y)
      ~equal:(fun x y ->
        match (x, y) with
        | None, None -> true
        | Some a, Some b -> String.equal a b
        | _ -> false)
      ()
  in
  let acc = ref [] in
  let fire loc msg =
    acc :=
      Finding.of_location ~rule:name ~severity:Finding.Error ~message:msg loc
      :: !acc
  in
  Array.iter
    (fun (file : Project.file) ->
      Absint.iter_file a file (fun env e ->
          match Astq.apply_parts e with
          | Some (f, args) when Astq.suffix_is f sink_suffixes ->
            List.iter
              (fun arg ->
                match first_creator env arg with
                | Some why ->
                  fire arg.pexp_loc
                    (Fmt.str
                       "NaN can be created directly in this %s argument: %s; \
                        %s"
                       (sink_name f) why doc)
                | None -> (
                  match arg_target env file arg with
                  | Some gid -> (
                    match facts.Taint.fact gid with
                    | Some why ->
                      let tf = Project.owner p gid in
                      let tn = Project.local p gid in
                      fire arg.pexp_loc
                        (Fmt.str
                           "'%s' reaching this %s argument can be NaN: %s, \
                            in '%s' (%s line %d) or a function it calls; %s"
                           tn.name (sink_name f) why tn.name tf.rel
                           tn.loc.loc_start.pos_lnum doc)
                    | None -> ())
                  | None -> ()))
              args
          | _ -> ()))
    files;
  List.rev !acc

let example =
  "(* ratio.ml *)  let speedup base opt = base /. opt   (* both can be 0 *)\n\
   (* report.ml *) let row r = Record.make ~value:(Ratio.speedup a b) ...\n\
   (* fires at the Record.make argument: 0./0. manufactured in another \
   module reaches a benchmark payload *)"

let rule = Rule.make ~doc ~severity:Finding.Error ~check_project ~example name
