let name = "printf-in-lib"

let doc =
  "Printf / implicit-stdout printing inside lib/; build strings with \
   Fmt.str and print through Fmt/Logs formatters so output stays \
   redirectable and testable"

let stdout_idents =
  [
    [ "print_string" ]; [ "print_endline" ]; [ "print_newline" ];
    [ "print_char" ]; [ "print_int" ]; [ "print_float" ]; [ "print_bytes" ];
    [ "prerr_string" ]; [ "prerr_endline" ]; [ "prerr_newline" ];
    [ "Format"; "printf" ]; [ "Format"; "eprintf" ];
    [ "Format"; "print_string" ]; [ "Format"; "print_newline" ];
  ]

let check _ctx str =
  let acc = ref [] in
  Astq.iter_expressions str (fun e ->
      let flagged =
        match Astq.path e with
        | Some ("Printf" :: _ :: _) -> true
        | Some p -> List.mem p stdout_idents
        | None -> false
      in
      if flagged then
        acc :=
          Finding.of_location ~rule:name ~severity:Finding.Error ~message:doc
            e.pexp_loc
          :: !acc);
  List.rev !acc

let example =
  "let solve x = Printf.printf \"debug: %f\\n\" x; ...\n\
   (* fires: libraries stay silent; return data or take a reporter *)"

let rule =
  Rule.make ~applies:Rule.lib_only ~doc ~severity:Finding.Error ~example
    ~check_structure:check name
