(* Interprocedural Domain-race detector.

   A "spawn root" is whatever runs on another domain: the argument of
   [Domain.spawn], or a closure handed to [Runner.map]/[Runner.run].  The
   rule computes, with the {!Taint} fixpoint over the per-file
   {!Callgraph}, the set of outer-scope mutable bindings (per {!Mutstate})
   each function writes — or reads through [!] — directly or via any local
   callee, and flags every such access reachable from a spawn root unless
   the binding is [Atomic.t]-like or the accessing function uses a Mutex.
   State created inside the spawned function itself is per-domain and is
   not flagged. *)

open Parsetree

let name = "domain-race"

let doc =
  "outer-scope mutable state written (or !-read) inside code reachable \
   from a Domain.spawn / Runner.map closure without Atomic/Mutex \
   mediation; use Atomic.t, a Mutex, or per-domain state (doc/LINTING.md \
   \"Dataflow rules\")"

type access = { anode : int; target : int; op : string; loc : Location.t }

let access_key a =
  (a.target, a.loc.loc_start.pos_lnum, a.loc.loc_start.pos_cnum, a.op)

let compare_access a b = compare (access_key a) (access_key b)

(* Facts are canonical sorted lists; join is a deduplicating merge. *)
let join_facts a b =
  List.sort_uniq compare_access (List.rev_append a b)

let equal_facts a b =
  List.length a = List.length b && List.for_all2 (fun x y -> compare_access x y = 0) a b

type root = Node_root of int | Inline_root of Location.t

let spawn_paths =
  [ [ "Domain"; "spawn" ]; [ "Runner"; "map" ]; [ "Runner"; "run" ] ]

let mutex_paths =
  [ [ "Mutex"; "lock" ]; [ "Mutex"; "protect" ]; [ "Mutex"; "try_lock" ] ]

let inside (outer : Location.t) (l : Location.t) =
  l.loc_start.pos_cnum >= outer.loc_start.pos_cnum
  && l.loc_end.pos_cnum <= outer.loc_end.pos_cnum

let is_fun_literal e =
  match (Astq.strip e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

let check _ctx str =
  let raw_accesses = ref [] in
  let refs = ref [] in  (* (node, callee, loc) for inline-root attribution *)
  let mediated = Hashtbl.create 8 in
  let sites = ref [] in  (* (site loc, owner node, roots) *)
  let on_expr (c : Callgraph.ctx) e =
    (match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match c.resolve x with
      | Some id -> refs := (c.node, id, e.pexp_loc) :: !refs
      | None -> ())
    | _ -> ());
    if Astq.suffix_is e mutex_paths then Hashtbl.replace mediated c.node ();
    (match Mutstate.write_root e with
    | Some (v, op) -> (
      match c.resolve v with
      | Some id ->
        raw_accesses :=
          { anode = c.node; target = id; op; loc = e.pexp_loc } :: !raw_accesses
      | None -> ())
    | None -> ());
    (match Mutstate.deref_root e with
    | Some v -> (
      match c.resolve v with
      | Some id ->
        raw_accesses :=
          { anode = c.node; target = id; op = "!"; loc = e.pexp_loc }
          :: !raw_accesses
      | None -> ())
    | None -> ());
    match Astq.apply_parts e with
    | Some (f, args) when Astq.suffix_is f spawn_paths ->
      let roots =
        List.filter_map
          (fun arg ->
            match (Astq.strip arg).pexp_desc with
            | Pexp_ident { txt = Longident.Lident x; _ } ->
              Option.map (fun id -> Node_root id) (c.resolve x)
            | _ ->
              if is_fun_literal arg then Some (Inline_root arg.pexp_loc)
              else None)
          args
      in
      if roots <> [] then sites := (e.pexp_loc, c.node, roots) :: !sites
    | _ -> ()
  in
  let cg = Callgraph.build ~on_expr str in
  if !sites = [] then []
  else begin
    let mf = Mutstate.mutable_fields str in
    let nodes = Callgraph.nodes cg in
    let n = Callgraph.n_nodes cg in
    let cls =
      Array.map (fun (nd : Callgraph.node) -> Mutstate.classify ~mutable_fields:mf nd.body) nodes
    in
    let direct = Array.make n [] in
    List.iter
      (fun a ->
        if
          a.anode >= 0
          && (not (Hashtbl.mem mediated a.anode))
          && (match cls.(a.target) with Mutstate.Mutable _ -> true | _ -> false)
        then direct.(a.anode) <- a :: direct.(a.anode))
      !raw_accesses;
    Array.iteri (fun i l -> direct.(i) <- List.sort_uniq compare_access l) direct;
    let facts =
      Taint.solve ~n ~deps:(Callgraph.calls cg)
        ~init:(fun v -> direct.(v))
        ~join:join_facts ~equal:equal_facts ()
    in
    let reachable root =
      match root with
      (* data arguments of the spawn call ([Runner.map f xs]'s [xs]) are
         evaluated on the spawning domain; only function values run on the
         other side *)
      | Node_root id when not (is_fun_literal nodes.(id).body) -> []
      | Node_root id ->
        List.filter
          (fun a ->
            a.target <> id && not (Callgraph.is_descendant cg ~ancestor:id a.target))
          (facts.Taint.fact id)
      | Inline_root range ->
        (* direct accesses written inside the closure text, plus the full
           facts of every local function the closure mentions *)
        let owner_direct =
          List.filter (fun a -> inside range a.loc) !raw_accesses
          |> List.filter (fun a ->
                 (not (Hashtbl.mem mediated a.anode))
                 && match cls.(a.target) with
                    | Mutstate.Mutable _ -> true
                    | _ -> false)
        in
        let via_calls =
          List.concat_map
            (fun (_, callee, loc) ->
              if inside range loc then facts.Taint.fact callee else [])
            !refs
        in
        List.filter
          (fun a -> not (inside range nodes.(a.target).loc))
          (join_facts owner_direct via_calls)
    in
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    List.iter
      (fun (site_loc, _, roots) ->
        List.iter
          (fun root ->
            List.iter
              (fun a ->
                let key = access_key a in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  let target = nodes.(a.target) in
                  let kind =
                    match cls.(a.target) with
                    | Mutstate.Mutable k -> Mutstate.kind_name k
                    | _ -> "mutable value"
                  in
                  let action =
                    if String.equal a.op "!" then "read through !"
                    else Fmt.str "mutated via %s" a.op
                  in
                  acc :=
                    Finding.of_location ~rule:name ~severity:Finding.Error
                      ~message:
                        (Fmt.str
                           "'%s' (%s bound at line %d) is %s inside code \
                            reachable from the closure spawned at line %d, \
                            with no Atomic/Mutex mediation; use Atomic.t, a \
                            Mutex, per-domain state, or suppress with the \
                            audited invariant"
                           target.name kind target.loc.loc_start.pos_lnum
                           action
                           site_loc.Location.loc_start.pos_lnum)
                      a.loc
                    :: !acc
                end)
              (reachable root))
          roots)
      (List.rev !sites);
    List.rev !acc
  end

(* Cross-module complement: the per-file check above resolves only bare
   lexical names, so [A.counter := ...] inside a spawned closure — state
   {e defined in another module} — is invisible to it.  This pass
   collects module-qualified (and open-routed) mutable accesses, resolves
   them through {!Project}, and runs the same spawn-reachability fixpoint
   over the {e global} call graph.  Only cross-module targets are
   reported, so the two passes partition the findings and never
   duplicate. *)

type xaccess = { xanode : int; xtarget : int; xop : string; xloc : Location.t }

let xkey a =
  (a.xtarget, a.xloc.loc_start.pos_fname, a.xloc.loc_start.pos_cnum, a.xop)

let xcompare a b = compare (xkey a) (xkey b)
let xjoin a b = List.sort_uniq xcompare (List.rev_append a b)

let xequal a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> xcompare x y = 0) a b

let check_project (a : Absint.t) =
  let p = Absint.project a in
  let files = Project.files p in
  let n = Project.n_nodes p in
  if n = 0 then []
  else begin
    let mf =
      Array.map
        (fun (f : Project.file) -> lazy (Mutstate.mutable_fields f.str))
        files
    in
    let cls gid =
      let f = Project.owner p gid in
      Mutstate.classify
        ~mutable_fields:(Lazy.force mf.(f.idx))
        (Project.local p gid).body
    in
    let raw = ref [] in
    let mediated = Hashtbl.create 8 in
    let sites = ref [] in  (* (site loc, roots) *)
    let refs = ref [] in  (* (mention loc, global callee) *)
    Array.iter
      (fun (file : Project.file) ->
        let g id = if id >= 0 then file.base + id else -1 in
        let resolve_access (c : Callgraph.ctx) parts k =
          match parts with
          | [ x ] ->
            (* unqualified but not lexically bound: reaches a foreign
               binding only through this file's toplevel opens *)
            if c.resolve x = None then
              Option.iter k (Project.resolve_open p file ~name:x)
          | _ :: _ :: _ ->
            Option.iter
              (fun gid ->
                if (Project.owner p gid).idx <> file.idx then k gid)
              (Project.resolve_path p file parts)
          | [] -> ()
        in
        let on_expr (c : Callgraph.ctx) e =
          if Astq.suffix_is e mutex_paths && c.node >= 0 then
            Hashtbl.replace mediated (g c.node) ();
          (match (Astq.strip e).pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } ->
            Option.iter
              (fun id -> refs := (e.pexp_loc, g id) :: !refs)
              (c.resolve x)
          | Pexp_ident { txt = Longident.Ldot _; _ } ->
            Option.iter
              (fun parts ->
                Option.iter
                  (fun gid -> refs := (e.pexp_loc, gid) :: !refs)
                  (Project.resolve_path p file parts))
              (Astq.path e)
          | _ -> ());
          let record gid op =
            raw :=
              { xanode = g c.node; xtarget = gid; xop = op; xloc = e.pexp_loc }
              :: !raw
          in
          (match Mutstate.write_root_path e with
          | Some (parts, op) -> resolve_access c parts (fun gid -> record gid op)
          | None -> ());
          (match Mutstate.deref_root_path e with
          | Some parts -> resolve_access c parts (fun gid -> record gid "!")
          | None -> ());
          match Astq.apply_parts e with
          | Some (f, args) when Astq.suffix_is f spawn_paths ->
            let roots =
              List.filter_map
                (fun arg ->
                  match (Astq.strip arg).pexp_desc with
                  | Pexp_ident { txt = Longident.Lident x; _ } ->
                    Option.map (fun id -> Node_root (g id)) (c.resolve x)
                  | Pexp_ident { txt = Longident.Ldot _; _ } ->
                    Option.bind (Astq.path arg) (fun parts ->
                        Option.map
                          (fun gid -> Node_root gid)
                          (Project.resolve_path p file parts))
                  | _ ->
                    if is_fun_literal arg then Some (Inline_root arg.pexp_loc)
                    else None)
                args
            in
            if roots <> [] then sites := (e.pexp_loc, roots) :: !sites
          | _ -> ()
        in
        ignore (Callgraph.build ~on_expr file.str))
      files;
    if !sites = [] || !raw = [] then []
    else begin
      let is_shared acc_ =
        match cls acc_.xtarget with Mutstate.Mutable _ -> true | _ -> false
      in
      let direct = Array.make n [] in
      List.iter
        (fun acc_ ->
          if
            acc_.xanode >= 0
            && (not (Hashtbl.mem mediated acc_.xanode))
            && is_shared acc_
          then direct.(acc_.xanode) <- acc_ :: direct.(acc_.xanode))
        !raw;
      let facts =
        Taint.solve ~n ~deps:(Project.calls p)
          ~init:(fun v -> List.sort_uniq xcompare direct.(v))
          ~join:xjoin ~equal:xequal ()
      in
      let inhere (range : Location.t) (l : Location.t) =
        String.equal l.loc_start.pos_fname range.loc_start.pos_fname
        && inside range l
      in
      let reachable = function
        | Node_root gid when not (is_fun_literal (Project.local p gid).body) ->
          []
        | Node_root gid ->
          List.filter (fun acc_ -> acc_.xtarget <> gid) (facts.Taint.fact gid)
        | Inline_root range ->
          let owner_direct =
            List.filter
              (fun acc_ ->
                inhere range acc_.xloc
                && (not (Hashtbl.mem mediated acc_.xanode))
                && is_shared acc_)
              !raw
          in
          let via_calls =
            List.concat_map
              (fun (l, callee) ->
                if inhere range l then facts.Taint.fact callee else [])
              !refs
          in
          xjoin owner_direct via_calls
      in
      let seen = Hashtbl.create 16 in
      let acc = ref [] in
      List.iter
        (fun ((site_loc : Location.t), roots) ->
          List.iter
            (fun root ->
              List.iter
                (fun acc_ ->
                  let key = xkey acc_ in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.replace seen key ();
                    let tf = Project.owner p acc_.xtarget in
                    let tn = Project.local p acc_.xtarget in
                    let kind =
                      match cls acc_.xtarget with
                      | Mutstate.Mutable k -> Mutstate.kind_name k
                      | _ -> "mutable value"
                    in
                    let action =
                      if String.equal acc_.xop "!" then "read through !"
                      else Fmt.str "mutated via %s" acc_.xop
                    in
                    acc :=
                      Finding.of_location ~rule:name ~severity:Finding.Error
                        ~message:
                          (Fmt.str
                             "'%s.%s' (%s defined in %s line %d) is %s inside \
                              code reachable from the closure spawned at line \
                              %d, with no Atomic/Mutex mediation; use \
                              Atomic.t, a Mutex, per-domain state, or \
                              suppress with the audited invariant"
                             tf.module_name tn.name kind tf.rel
                             tn.loc.loc_start.pos_lnum action
                             site_loc.loc_start.pos_lnum)
                        acc_.xloc
                    :: !acc
                  end)
                (reachable root))
            roots)
        (List.rev !sites);
      List.rev !acc
    end
  end

let example =
  "(* counters.ml *)  let hits = ref 0\n\
   (* worker.ml *)    let run () = Domain.spawn (fun () -> Counters.hits := 1)\n\
   (* fires: mutable state defined in another module, written from a \
   spawned closure without Atomic/Mutex mediation *)"

let rule =
  Rule.make ~doc ~severity:Finding.Error ~check_structure:check ~check_project
    ~example name
