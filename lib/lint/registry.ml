let all =
  [
    Rule_float_eq.rule;
    Rule_naive_sum.rule;
    Rule_nondeterminism.rule;
    Rule_printf_in_lib.rule;
    Rule_missing_mli.rule;
    Rule_catch_all_exn.rule;
    Rule_unsafe_pow.rule;
    Rule_obj_magic.rule;
    Rule_domain_race.rule;
    Rule_dls_misuse.rule;
    Rule_taint_nondet.rule;
    Rule_nan_flow.rule;
    Rule_magic_tolerance.rule;
  ]

let names = List.map (fun (r : Rule.t) -> r.name) all

let select requested =
  List.map
    (fun name ->
      match Rule.find ~name all with
      | Some r -> r
      | None ->
        invalid_arg
          (Fmt.str "unknown rule %s (known: %s)" name
             (String.concat ", " names)))
    requested
