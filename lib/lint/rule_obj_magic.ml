open Parsetree

let name = "obj-magic"

let doc =
  "Obj.magic and assert false are banned by policy: Obj.magic defeats \
   the type system, and an unreachable branch must be suppressed with a \
   written justification of why it cannot be reached"

let check _ctx str =
  let acc = ref [] in
  let flag loc message =
    acc :=
      Finding.of_location ~rule:name ~severity:Finding.Error ~message loc
      :: !acc
  in
  Astq.iter_expressions str (fun e ->
      match e.pexp_desc with
      | Pexp_assert
          { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
            _ } ->
        flag e.pexp_loc
          "assert false: justify unreachability in a suppression comment or \
           raise a descriptive exception"
      | _ ->
        if Astq.path_is e [ [ "Obj"; "magic" ] ] then
          flag e.pexp_loc "Obj.magic defeats the type system"
        else if Astq.path_is e [ [ "Obj"; "repr" ]; [ "Obj"; "obj" ] ] then
          flag e.pexp_loc "Obj.repr/Obj.obj reinterpret memory unchecked");
  List.rev !acc

let example =
  "let coerce (x : int) : float = Obj.magic x\n\
   (* fires: unchecked representation cast; restructure the types *)"

let rule =
  Rule.make ~doc ~severity:Finding.Error ~check_structure:check ~example name
