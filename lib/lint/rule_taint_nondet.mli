(** Interprocedural nondeterminism taint: values derived from global
    Random, wall clocks, Hashtbl iteration order, or temp-file names must
    not reach obs record payload constructors ([Record.make],
    [metric]/[counter]/[verdict]), even through local calls.  Built on
    {!Callgraph} function summaries solved with {!Taint}. *)

val name : string
val rule : Rule.t
