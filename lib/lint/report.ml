let pp_human ppf findings =
  List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) findings;
  let errors, warnings =
    List.partition (fun (f : Finding.t) -> f.severity = Finding.Error) findings
  in
  Fmt.pf ppf "%d error%s, %d warning%s@."
    (List.length errors)
    (if List.length errors = 1 then "" else "s")
    (List.length warnings)
    (if List.length warnings = 1 then "" else "s")

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* SARIF 2.1.0, the minimal subset code-review tooling ingests: one run,
   the driver's rule metadata, and one result per finding with a physical
   location.  Output is deterministic (rule order follows the registry,
   result order follows the finding list) so the golden fixture in
   test/slint_golden.sarif can be byte-compared. *)
let pp_sarif ~rules ppf findings =
  let rule_entry (r : Rule.t) =
    Fmt.str
      "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"defaultConfiguration\":{\"level\":\"%s\"}}"
      (json_escape r.name) (json_escape r.doc)
      (match r.severity with Finding.Error -> "error" | Finding.Warning -> "warning")
  in
  let result (f : Finding.t) =
    let level =
      match f.severity with Finding.Error -> "error" | Finding.Warning -> "warning"
    in
    (* SARIF regions are 1-based in both coordinates; Finding.col is a
       0-based parsetree column, and line 0 means a whole-file finding
       (no region at all). *)
    let region =
      if f.line = 0 then ""
      else
        Fmt.str ",\"region\":{\"startLine\":%d,\"startColumn\":%d}" f.line
          (f.col + 1)
    in
    Fmt.str
      "{\"ruleId\":\"%s\",\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"}%s}}]}"
      (json_escape f.rule) level (json_escape f.message) (json_escape f.file)
      region
  in
  Fmt.pf ppf
    "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"slint\",\"informationUri\":\"doc/LINTING.md\",\"rules\":[%s]}},\"results\":[%s]}]}@."
    (String.concat "," (List.map rule_entry rules))
    (String.concat "," (List.map result findings))

let pp_json ppf findings =
  let item (f : Finding.t) =
    Fmt.str
      "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"}"
      (json_escape f.file) f.line f.col (json_escape f.rule)
      (Finding.severity_name f.severity)
      (json_escape f.message)
  in
  Fmt.pf ppf "[%s]@." (String.concat "," (List.map item findings))
