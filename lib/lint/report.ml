let pp_human ppf findings =
  List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) findings;
  let errors, warnings =
    List.partition (fun (f : Finding.t) -> f.severity = Finding.Error) findings
  in
  Fmt.pf ppf "%d error%s, %d warning%s@."
    (List.length errors)
    (if List.length errors = 1 then "" else "s")
    (List.length warnings)
    (if List.length warnings = 1 then "" else "s")

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_json ppf findings =
  let item (f : Finding.t) =
    Fmt.str
      "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"}"
      (json_escape f.file) f.line f.col (json_escape f.rule)
      (Finding.severity_name f.severity)
      (json_escape f.message)
  in
  Fmt.pf ppf "[%s]@." (String.concat "," (List.map item findings))
