type directive = {
  line : int;  (* line the directive appears on *)
  governs : int;  (* line whose findings it suppresses; 0 = none *)
  rule : string;
  mutable used : bool;
}

type t = { directives : directive list; malformed : Finding.t list }

(* Built by concatenation so the scanner does not read this very line as a
   directive when linting its own sources. *)
let marker = "slint: " ^ "allow"

let find_sub s sub =
  let n = String.length s and k = String.length sub in
  let rec go i =
    if i + k > n then None
    else if String.equal (String.sub s i k) sub then Some i
    else go (i + 1)
  in
  go 0

let is_blank s = String.equal (String.trim s) ""

let is_rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* The directive text after the marker: a rule name, then a mandatory
   free-form reason ("— why this is safe"). *)
let parse_directive rest =
  let rest = String.trim rest in
  let n = String.length rest in
  let stop = ref 0 in
  while !stop < n && is_rule_char rest.[!stop] do
    incr stop
  done;
  if !stop = 0 then None
  else
    let rule = String.sub rest 0 !stop in
    let tail = String.sub rest !stop (n - !stop) in
    let reason =
      String.to_seq tail
      |> Seq.filter (fun c ->
             (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
             || (c >= '0' && c <= '9'))
      |> Seq.length
    in
    Some (rule, reason >= 3)

let directive_only line idx =
  (* the directive's opening comment is the first non-blank thing on the
     line, so the directive governs the following code line instead *)
  let before = String.sub line 0 idx in
  match find_sub before "(*" with
  | None -> false
  | Some c -> is_blank (String.sub before 0 c)

let parse ~file text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let n = Array.length lines in
  let directive_lines = Hashtbl.create 8 in
  let raw = ref [] in
  Array.iteri
    (fun i line ->
      match find_sub line marker with
      | None -> ()
      | Some idx ->
        Hashtbl.replace directive_lines (i + 1) ();
        let rest = String.sub line (idx + String.length marker)
            (String.length line - idx - String.length marker)
        in
        raw := (i + 1, directive_only line idx, parse_directive rest) :: !raw)
    lines;
  let directives = ref [] and malformed = ref [] in
  List.iter
    (fun (lineno, own_line, parsed) ->
      match parsed with
      | None | Some (_, false) ->
        malformed :=
          Finding.v ~line:lineno ~file ~rule:"suppress-syntax"
            ~severity:Finding.Error
            (Fmt.str
               "malformed suppression; expected (* %s <rule> -- <reason> *)"
               marker)
          :: !malformed
      | Some (rule, true) ->
        let governs =
          if not own_line then lineno
          else begin
            (* first following line that is not blank and not itself a
               directive-only comment line *)
            let rec scan j =
              if j > n then 0
              else if
                Hashtbl.mem directive_lines j || is_blank lines.(j - 1)
              then scan (j + 1)
              else j
            in
            scan (lineno + 1)
          end
        in
        directives := { line = lineno; governs; rule; used = false } :: !directives)
    (List.rev !raw);
  { directives = List.rev !directives; malformed = List.rev !malformed }

let malformed t = t.malformed

let suppressed t (f : Finding.t) =
  let matching d =
    String.equal d.rule f.rule && (d.governs = f.line || f.line = 0)
  in
  match List.find_opt matching t.directives with
  | None -> false
  | Some d ->
    d.used <- true;
    true

let unused t ~file =
  List.filter_map
    (fun d ->
      if d.used then None
      else
        Some
          (Finding.v ~line:d.line ~file ~rule:"unused-suppression"
             ~severity:Finding.Warning
             (Fmt.str "suppression for rule %s matches no finding" d.rule)))
    t.directives
