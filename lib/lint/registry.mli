(** The eight project rules, in reporting order. *)

val all : Rule.t list
val names : string list

val select : string list -> Rule.t list
(** Resolve rule names; raises [Invalid_argument] on an unknown name. *)
