(** Float abstract domain: closed intervals over the extended reals plus a
    may-be-NaN bit.

    [V { lo; hi; nan }] concretises to every IEEE double in [[lo, hi]]
    plus NaN when [nan] is set; {!bot} is the empty set (unreachable /
    never-returns).  Every operation is {e sound}: whenever [x ∈ γ a] and
    [y ∈ γ b], [x op y ∈ γ (op a b)] — including the IEEE corners where
    arithmetic on non-NaN inputs creates NaN (inf − inf, 0 · inf, 0/0,
    inf/inf, [sqrt]/[log] of a negative) or infinities (overflow, x/0).
    The qcheck property in [test/test_lint.ml] pins this against concrete
    evaluation of randomly generated arithmetic programs.

    Fixpoints over this lattice must go through {!widen} (the interval
    order has infinite ascending chains); a widening sequence stabilises
    after at most two numeric escapes and one NaN-bit flip per value. *)

type t = V of { lo : float; hi : float; nan : bool } | Bot

val bot : t
val top : t
(** All non-NaN doubles, \[−inf, +inf\]. *)

val top_nan : t
(** Every double including NaN; the "know nothing" element. *)

val nan_only : t
(** NaN and nothing else (empty numeric part). *)

val const : float -> t
(** Singleton; [const nan] is {!nan_only}. *)

val interval : float -> float -> t
(** [interval lo hi], no NaN.  Normalises an empty range to {!bot}. *)

val v : float -> float -> bool -> t
(** [v lo hi nan] — normalising constructor used by the tests. *)

val is_bot : t -> bool
val maybe_nan : t -> bool

val nonneg : t -> bool
(** The numeric part cannot be negative.  Ignores the NaN bit on purpose:
    [( ** )] on a NaN base propagates NaN but never raises the
    negative-base concern that [unsafe-pow] polices. *)

val mem : float -> t -> bool
(** Concretisation membership — the soundness oracle for the qcheck
    property ([mem nan] tests the NaN bit). *)

val equal : t -> t -> bool
val leq : t -> t -> bool
(** Lattice order: [leq a b] iff γ a ⊆ γ b. *)

val join : t -> t -> t
val meet : t -> t -> t

val refine : t -> lo:float -> hi:float -> nan:bool -> t
(** Comparison-as-refinement: meet with the constraint
    [value ∈ [lo, hi] (∪ NaN iff nan)].  Strict comparisons are encoded
    with [Float.succ]/[Float.pred] bounds by the caller. *)

val widen : t -> t -> t
(** [widen old next]: an unstable lower (upper) bound escapes straight to
    −inf (+inf); the NaN bit is or-ed.  Guarantees termination of any
    increasing iteration. *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val fmin : t -> t -> t
(** Sound for both [Stdlib.min] and [Float.min] (their NaN behaviours
    differ; the result covers both). *)

val fmax : t -> t -> t
val abs_ : t -> t
val sqrt_ : t -> t
val exp_ : t -> t
val log_ : t -> t

val pow : t -> t -> t
(** [pow base expo].  Deliberately coarse: non-negative base ⇒ result in
    \[0, +inf\] (modulo the (−0) ** negative corner); possibly-negative
    base ⇒ {!top_nan}. *)

val pp : Format.formatter -> t -> unit
