let parse_structure ~rel text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf rel;
  match Parse.implementation lexbuf with
  | str -> Ok str
  | exception Syntaxerr.Error _ ->
    Error
      (Finding.v ~line:lexbuf.lex_curr_p.pos_lnum ~file:rel ~rule:"parse-error"
         ~severity:Finding.Error "syntax error; file does not parse")
  | exception Lexer.Error (_, loc) ->
    Error
      (Finding.of_location ~rule:"parse-error" ~severity:Finding.Error
         ~message:"lexical error; file does not scan" loc)

let check_source ?(has_mli = true) ~rules ~rel text =
  let ctx : Rule.ctx = { rel } in
  let applicable = List.filter (fun (r : Rule.t) -> r.applies rel) rules in
  let structural = List.filter_map (fun (r : Rule.t) -> r.check_structure) applicable in
  let raw =
    (if structural = [] then []
     else
       match parse_structure ~rel text with
       | Error f -> [ f ]
       | Ok str -> List.concat_map (fun check -> check ctx str) structural)
    @ List.concat_map
        (fun (r : Rule.t) ->
          match r.check_source with None -> [] | Some check -> check ctx ~has_mli)
        applicable
  in
  let sup = Suppress.parse ~file:rel text in
  let kept = List.filter (fun f -> not (Suppress.suppressed sup f)) raw in
  List.sort Finding.compare
    (kept @ Suppress.malformed sup @ Suppress.unused sup ~file:rel)

let skip_dir name =
  String.length name = 0 || name.[0] = '.' || name.[0] = '_'
  || String.equal name "node_modules"

let list_sources ~root =
  let files = ref [] in
  let rec walk rel_dir =
    let abs = if rel_dir = "" then root else Filename.concat root rel_dir in
    match Sys.readdir abs with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          let rel = if rel_dir = "" then name else rel_dir ^ "/" ^ name in
          if Sys.is_directory (Filename.concat root rel) then begin
            if not (skip_dir name) then walk rel
          end
          else if
            Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
          then files := rel :: !files)
        entries
  in
  walk "";
  List.rev !files

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan ?(rules = []) ~root () =
  let all = list_sources ~root in
  let have = Hashtbl.create 64 in
  List.iter (fun rel -> Hashtbl.replace have rel ()) all;
  all
  |> List.filter (fun rel -> Filename.check_suffix rel ".ml")
  |> List.concat_map (fun rel ->
         let text = read_file (Filename.concat root rel) in
         let has_mli = Hashtbl.mem have (rel ^ "i") in
         check_source ~has_mli ~rules ~rel text)
  |> List.sort Finding.compare
