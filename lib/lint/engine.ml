let parse_structure ~rel text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf rel;
  match Parse.implementation lexbuf with
  | str -> Ok str
  | exception Syntaxerr.Error _ ->
    Error
      (Finding.v ~line:lexbuf.lex_curr_p.pos_lnum ~file:rel ~rule:"parse-error"
         ~severity:Finding.Error "syntax error; file does not parse")
  | exception Lexer.Error (_, loc) ->
    Error
      (Finding.of_location ~rule:"parse-error" ~severity:Finding.Error
         ~message:"lexical error; file does not scan" loc)

type source = { rel : string; text : string; mli : string option }

(* Value names a [.mli] declares; [None] when the interface does not
   parse (treat as everything-visible rather than silently hiding). *)
let exported_of_mli ~rel text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf rel;
  match Parse.interface lexbuf with
  | sg ->
    Some
      (List.filter_map
         (fun (si : Parsetree.signature_item) ->
           match si.psig_desc with
           | Parsetree.Psig_value vd -> Some vd.pval_name.txt
           | _ -> None)
         sg)
  | exception Syntaxerr.Error _ -> None
  | exception Lexer.Error _ -> None

let check_sources ?(cross_module = true) ~rules (sources : source list) =
  let parse_errors = ref [] in
  let parsed =
    List.map
      (fun s ->
        let needs_tree =
          List.exists
            (fun (r : Rule.t) ->
              r.applies s.rel
              && (r.check_structure <> None || r.check_project <> None))
            rules
        in
        let str =
          if not needs_tree then None
          else
            match parse_structure ~rel:s.rel s.text with
            | Ok str -> Some str
            | Error f ->
              parse_errors := f :: !parse_errors;
              None
        in
        (s, str))
      sources
  in
  (* The whole-program view covers the library tree: every lib/ file that
     parsed joins the project, whatever rules are selected. *)
  let project_inputs =
    List.filter_map
      (fun (s, str) ->
        match str with
        | Some str when Rule.lib_only s.rel ->
          Some
            {
              Project.rel = s.rel;
              str;
              exported =
                Option.bind s.mli (fun text ->
                    exported_of_mli ~rel:(s.rel ^ "i") text);
            }
        | _ -> None)
      parsed
  in
  let any_project =
    List.exists (fun (r : Rule.t) -> r.check_project <> None) rules
  in
  let analysis =
    if any_project && project_inputs <> [] then
      Some (Absint.analyze (Project.build ~cross_module project_inputs))
    else None
  in
  let in_project rel =
    match analysis with
    | None -> false
    | Some a -> Project.file_of_rel (Absint.project a) rel <> None
  in
  let project_findings =
    match analysis with
    | None -> []
    | Some a ->
      List.concat_map
        (fun (r : Rule.t) ->
          match r.check_project with
          | Some check ->
            List.filter (fun (f : Finding.t) -> r.applies f.file) (check a)
          | None -> [])
        rules
  in
  let per_file =
    List.concat_map
      (fun ((s : source), str) ->
        let ctx : Rule.ctx = { rel = s.rel } in
        let applicable =
          List.filter (fun (r : Rule.t) -> r.applies s.rel) rules
        in
        (match str with
        | None -> []
        | Some str ->
          List.concat_map
            (fun (r : Rule.t) ->
              match r.check_structure with
              | Some check
                when not
                       (r.project_replaces && r.check_project <> None
                      && in_project s.rel) ->
                check ctx str
              | _ -> [])
            applicable)
        @ List.concat_map
            (fun (r : Rule.t) ->
              match r.check_source with
              | Some check -> check ctx ~has_mli:(s.mli <> None)
              | None -> [])
            applicable)
      parsed
  in
  let all =
    List.sort_uniq Finding.compare
      (project_findings @ per_file @ !parse_errors)
  in
  let by_file = Hashtbl.create 16 in
  List.iter
    (fun (f : Finding.t) ->
      Hashtbl.replace by_file f.file
        (f :: (Option.value ~default:[] (Hashtbl.find_opt by_file f.file))))
    all;
  List.concat_map
    (fun ((s : source), _) ->
      let fs =
        List.rev (Option.value ~default:[] (Hashtbl.find_opt by_file s.rel))
      in
      let sup = Suppress.parse ~file:s.rel s.text in
      let kept = List.filter (fun f -> not (Suppress.suppressed sup f)) fs in
      kept @ Suppress.malformed sup @ Suppress.unused sup ~file:s.rel)
    parsed
  |> List.sort Finding.compare

let check_source ?(has_mli = true) ?(cross_module = true) ~rules ~rel text =
  check_sources ~cross_module ~rules
    [ { rel; text; mli = (if has_mli then Some "" else None) } ]

let skip_dir name =
  String.length name = 0 || name.[0] = '.' || name.[0] = '_'
  || String.equal name "node_modules"

let list_sources ~root =
  let files = ref [] in
  let rec walk rel_dir =
    let abs = if rel_dir = "" then root else Filename.concat root rel_dir in
    match Sys.readdir abs with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          let rel = if rel_dir = "" then name else rel_dir ^ "/" ^ name in
          if Sys.is_directory (Filename.concat root rel) then begin
            if not (skip_dir name) then walk rel
          end
          else if
            Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
          then files := rel :: !files)
        entries
  in
  walk "";
  List.rev !files

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan ?(rules = []) ~root () =
  let all = list_sources ~root in
  let have = Hashtbl.create 64 in
  List.iter (fun rel -> Hashtbl.replace have rel ()) all;
  all
  |> List.filter (fun rel -> Filename.check_suffix rel ".ml")
  |> List.map (fun rel ->
         let text = read_file (Filename.concat root rel) in
         let mli =
           if Hashtbl.mem have (rel ^ "i") then
             Some (read_file (Filename.concat root (rel ^ "i")))
           else None
         in
         { rel; text; mli })
  |> check_sources ~rules
