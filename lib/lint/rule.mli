(** A pluggable lint rule.

    A rule may inspect the parsetree of one implementation
    ([check_structure]), file-level facts the engine computes
    ([check_source], currently just whether a matching [.mli] exists), or
    the whole-program abstract interpretation ([check_project], receiving
    the solved {!Absint.t} and returning findings across every file it
    covers).  [applies] filters by path relative to the scan root — the
    engine also applies it to the {e finding} paths a project check
    returns. *)

type ctx = { rel : string }  (** path of the file under scrutiny *)

type t = {
  name : string;
  doc : string;
  example : string;
      (** minimal source snippet that fires the rule, for [slint
          --explain]; empty when no snippet is curated *)
  severity : Finding.severity;
  applies : string -> bool;
  check_structure : (ctx -> Parsetree.structure -> Finding.t list) option;
  check_source : (ctx -> has_mli:bool -> Finding.t list) option;
  check_project : (Absint.t -> Finding.t list) option;
  project_replaces : bool;
      (** skip [check_structure] for files the project analysis covers:
          the project check subsumes it, and running both would keep
          per-file findings that cross-module facts disprove *)
}

val everywhere : string -> bool
(** [applies] predicate matching every file. *)

val under : string -> string -> bool
(** [under dir rel] is true when [rel] lives below [dir ^ "/"]. *)

val lib_only : string -> bool
(** [under "lib"]. *)

val make :
  ?applies:(string -> bool) ->
  ?check_structure:(ctx -> Parsetree.structure -> Finding.t list) ->
  ?check_source:(ctx -> has_mli:bool -> Finding.t list) ->
  ?check_project:(Absint.t -> Finding.t list) ->
  ?project_replaces:bool ->
  ?example:string ->
  doc:string -> severity:Finding.severity -> string -> t

val find : name:string -> t list -> t option

val finding : t -> message:string -> Location.t -> Finding.t
(** Finding carrying the rule's name and severity. *)
