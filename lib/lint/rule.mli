(** A pluggable lint rule.

    A rule may inspect the parsetree of an implementation
    ([check_structure]), or file-level facts the engine computes
    ([check_source], currently just whether a matching [.mli] exists).
    [applies] filters by path relative to the scan root, so rules can be
    scoped e.g. to [lib/] only. *)

type ctx = { rel : string }  (** path of the file under scrutiny *)

type t = {
  name : string;
  doc : string;
  severity : Finding.severity;
  applies : string -> bool;
  check_structure : (ctx -> Parsetree.structure -> Finding.t list) option;
  check_source : (ctx -> has_mli:bool -> Finding.t list) option;
}

val everywhere : string -> bool
(** [applies] predicate matching every file. *)

val under : string -> string -> bool
(** [under dir rel] is true when [rel] lives below [dir ^ "/"]. *)

val lib_only : string -> bool
(** [under "lib"]. *)

val make :
  ?applies:(string -> bool) ->
  ?check_structure:(ctx -> Parsetree.structure -> Finding.t list) ->
  ?check_source:(ctx -> has_mli:bool -> Finding.t list) ->
  doc:string -> severity:Finding.severity -> string -> t

val find : name:string -> t list -> t option

val finding : t -> message:string -> Location.t -> Finding.t
(** Finding carrying the rule's name and severity. *)
