(** Flags [Random.self_init] and every other use of the global [Random]
    state.  Experiments must stay bit-reproducible, so randomness goes
    through a fixed-seed [Random.State] via [Util.Rand]. *)

val rule : Rule.t
