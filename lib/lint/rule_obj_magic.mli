(** Policy rule for unsafe escapes: flags [Obj.magic] (and
    [Obj.repr]/[Obj.obj]) plus [assert false], which must carry a
    suppression comment justifying unreachability. *)

val rule : Rule.t
