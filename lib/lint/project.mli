(** Whole-program view over every parsed module under the scan root: a
    name-based resolver from dotted value paths to their defining let
    bindings, and the per-file {!Callgraph}s stitched into one global
    call graph (nodes renumbered into a single id space).

    Resolution matches the {e last} module component of a path against
    file basenames — the right fit for a dune-wrapped tree, where
    [Speedscale_util.Feq.approx], [Util.Feq.approx] and [Feq.approx]
    must all reach [lib/util/feq.ml].  Toplevel [module A = B] aliases
    are chased within the referring file; toplevel [open M] of a known
    file module lets bare names that do not resolve lexically reach
    [M]'s exports.  A [.mli] restricts visibility to the values it
    declares.  Homonymous modules are ambiguous and never resolve. *)

type input = {
  rel : string;
  str : Parsetree.structure;
  exported : string list option;
      (** value names the [.mli] declares; [None] = no interface,
          everything is visible *)
}

type file = {
  idx : int;
  rel : string;
  module_name : string;
  str : Parsetree.structure;
  exported : (string, unit) Hashtbl.t option;
  cg : Callgraph.t;
  base : int;  (** global id of this file's node 0 *)
  opens : string list;
  aliases : (string * string) list;
}

type t

val build : ?cross_module:bool -> input list -> t
(** [cross_module:false] degrades the project to a bag of per-file
    graphs: no qualified resolution, no cross-module edges.  Exists so
    tests can show a finding is {e caused} by whole-program reasoning. *)

val cross_module : t -> bool
val files : t -> file array
val file_of_rel : t -> string -> file option
val module_name_of_rel : string -> string

val n_nodes : t -> int
(** Total nodes across all files; global ids are [0 .. n_nodes - 1]. *)

val owner : t -> int -> file
val local : t -> int -> Callgraph.node
(** The per-file node behind a global id ([id]/[parent] fields are
    file-local; use {!global} to lift). *)

val global : file -> Callgraph.node -> int
val calls : t -> int -> int list
(** Callees of a global node: per-file lexical edges plus resolved
    cross-module references. *)

val exports : file -> string -> bool
val toplevel_value : file -> string -> int option
(** Last toplevel binding of the name that the interface exposes, as a
    global id. *)

val resolve_qualified : t -> file -> mpath:string list -> name:string -> int option
(** Resolve [M1.(...).Mk.name] seen in [file]: alias-expand the last
    module component, look the module up, take its visible toplevel
    binding.  [None] when [cross_module] is off. *)

val resolve_open : t -> file -> name:string -> int option
(** Resolve a lexically-unresolved bare name through the file's toplevel
    [open]s. *)

val resolve_path : t -> file -> string list -> int option
(** Dotted path including the value name: [["Feq"; "approx"]], or a bare
    [["approx"]] (routed through the opens). *)
