open Parsetree

let name = "naive-sum"

let doc =
  "naive float accumulation with fold_left (+.); use Util.Ksum's \
   compensated summation in lib/ (DESIGN.md section 5)"

let fold_paths =
  [
    [ "List"; "fold_left" ]; [ "Array"; "fold_left" ]; [ "Seq"; "fold_left" ];
    [ "ListLabels"; "fold_left" ]; [ "ArrayLabels"; "fold_left" ];
  ]

(* (+.) directly, or an eta-expanded [fun acc x -> acc +. ...]. *)
let is_float_adder f =
  let f = Astq.strip f in
  Astq.path_is f [ [ "+." ] ]
  ||
  match f.pexp_desc with
  | Pexp_fun (Nolabel, None, { ppat_desc = Ppat_var { txt = acc; _ }; _ }, body)
    -> (
    let body =
      match (Astq.strip body).pexp_desc with
      | Pexp_fun (Nolabel, None, _, inner) -> inner
      | _ -> body
    in
    match Astq.apply_parts body with
    | Some (op, [ lhs; _ ]) ->
      Astq.path_is op [ [ "+." ] ] && Astq.path_is lhs [ [ acc ] ]
    | _ -> false)
  | _ -> false

let check _ctx str =
  let acc = ref [] in
  Astq.iter_expressions str (fun e ->
      match Astq.apply_parts e with
      | Some (f, adder :: _) when Astq.suffix_is f fold_paths && is_float_adder adder
        ->
        acc :=
          Finding.of_location ~rule:name ~severity:Finding.Error ~message:doc
            e.pexp_loc
          :: !acc
      | _ -> ());
  List.rev !acc

let example =
  "List.fold_left ( +. ) 0.0 costs\n\
   (* fires: cancellation-prone accumulation; use Util.Ksum *)"

let rule =
  Rule.make ~applies:Rule.lib_only ~doc ~severity:Finding.Error
    ~check_structure:check ~example name
