type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let v ?(line = 0) ?(col = 0) ~file ~rule ~severity message =
  { file; line; col; rule; severity; message }

let of_location ~rule ~severity ~message (loc : Location.t) =
  let p = loc.loc_start in
  {
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    rule;
    severity;
    message;
  }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    | c -> c)
  | c -> c

let pp ppf t =
  Fmt.pf ppf "%s:%d:%d: [%s] %s: %s" t.file t.line t.col t.rule
    (severity_name t.severity) t.message
