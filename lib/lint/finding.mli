(** A single lint finding: a rule violation anchored to a source position. *)

type severity = Error | Warning

type t = {
  file : string;  (** path relative to the scan root *)
  line : int;  (** 1-based; 0 means the finding is about the whole file *)
  col : int;  (** 0-based column *)
  rule : string;  (** rule name, e.g. ["float-eq"] *)
  severity : severity;
  message : string;
}

val severity_name : severity -> string

val v :
  ?line:int -> ?col:int -> file:string -> rule:string -> severity:severity ->
  string -> t
(** File-level finding constructor ([line] defaults to 0). *)

val of_location :
  rule:string -> severity:severity -> message:string -> Location.t -> t
(** Finding anchored at the start of a parsetree location. *)

val compare : t -> t -> int
(** Order by (file, line, col, rule). *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: [rule] severity: message] *)
