(* Per-file call graph over let bindings.

   Every [let x = e] (and [let rec f = ... and g = ...]) whose pattern is a
   simple variable becomes a node, whether toplevel or nested inside another
   binding's body; anonymous closures stay part of their enclosing node.
   An edge [a -> b] is recorded whenever the body of [a] mentions the name
   of an in-scope node [b] — application or not, so closures passed to
   higher-order functions count as calls — with lexical scoping: shadowed
   names (function parameters, match/case bindings, inner lets) do not
   resolve to outer nodes.  Mutual recursion is represented naturally: a
   [let rec ... and ...] group has all its names in scope in all its
   bodies, producing the cycle the {!Taint} solver then iterates over. *)

open Parsetree

type node = {
  id : int;
  name : string;
  loc : Location.t;  (* location of the bound name *)
  body : expression;  (* the bound right-hand side, parameters included *)
  parent : int;  (* enclosing node, -1 for structure-toplevel bindings *)
  recursive : bool;  (* member of a [let rec] group *)
}

type t = {
  nodes : node array;
  calls : int list array;  (* deduped callee ids, first-reference order *)
}

type ctx = { node : int; resolve : string -> int option }

let nodes t = t.nodes
let n_nodes t = Array.length t.nodes
let calls t id = t.calls.(id)

let node_named t name =
  Array.fold_left
    (fun acc nd -> if String.equal nd.name name then Some nd else acc)
    None t.nodes

let rec is_descendant t ~ancestor id =
  if id < 0 then false
  else
    let p = t.nodes.(id).parent in
    p >= 0 && (p = ancestor || is_descendant t ~ancestor p)

let build ?(on_expr = fun _ _ -> ()) (str : structure) : t =
  let nodes = ref [] and n = ref 0 in
  let calls : (int, (int, unit) Hashtbl.t * int list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  (* env maps a bare name to a node id, or -1 when shadowed by a non-node
     binder (parameter, pattern variable, destructuring let). *)
  let env = ref [] in
  let current = ref (-1) in
  let resolve x =
    match List.assoc_opt x !env with
    | Some id when id >= 0 -> Some id
    | _ -> None
  in
  let add_edge callee =
    if !current >= 0 then begin
      let seen, order =
        match Hashtbl.find_opt calls !current with
        | Some p -> p
        | None ->
          let p = (Hashtbl.create 8, ref []) in
          Hashtbl.replace calls !current p;
          p
      in
      if not (Hashtbl.mem seen callee) then begin
        Hashtbl.replace seen callee ();
        order := callee :: !order
      end
    end
  in
  let new_node name loc body ~recursive =
    let id = !n in
    incr n;
    nodes := { id; name; loc; body; parent = !current; recursive } :: !nodes;
    id
  in
  let scoped_env e f =
    let saved = !env in
    env := e;
    Fun.protect ~finally:(fun () -> env := saved) f
  in
  let scoped_current id f =
    let saved = !current in
    current := id;
    Fun.protect ~finally:(fun () -> current := saved) f
  in
  let shadow names base =
    List.fold_left (fun e x -> (x, -1) :: e) base names
  in
  (* Shared handling of a binding group: create nodes, walk right-hand
     sides ([let rec] sees the whole group in scope), return the extended
     environment for whatever the bindings scope over. *)
  let bindings it recursive vbs =
    let named vb =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } -> Some txt
      | _ -> None
    in
    let ids =
      List.map
        (fun vb ->
          match named vb with
          | Some name ->
            Some (new_node name vb.pvb_pat.ppat_loc vb.pvb_expr ~recursive)
          | None -> None)
        vbs
    in
    let bound =
      List.fold_left2
        (fun e vb id ->
          match id with
          | Some id -> (
            match named vb with
            | Some name -> (name, id) :: e
            | None -> e)
          | None -> shadow (Astq.pat_vars vb.pvb_pat) e)
        !env vbs ids
    in
    List.iter2
      (fun vb id ->
        let rhs_env = if recursive then bound else !env in
        let walk () =
          scoped_env rhs_env (fun () -> it.Ast_iterator.expr it vb.pvb_expr)
        in
        match id with
        | Some id -> scoped_current id walk
        | None -> walk ())
      vbs ids;
    bound
  in
  let expr it e =
    on_expr { node = !current; resolve } e;
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } ->
      Option.iter add_edge (resolve x)
    | Pexp_let (rf, vbs, body) ->
      let bound = bindings it (rf = Asttypes.Recursive) vbs in
      scoped_env bound (fun () -> it.Ast_iterator.expr it body)
    | Pexp_fun (_, default, pat, body) ->
      Option.iter (it.Ast_iterator.expr it) default;
      it.Ast_iterator.pat it pat;
      scoped_env (shadow (Astq.pat_vars pat) !env) (fun () ->
          it.Ast_iterator.expr it body)
    | Pexp_function cases | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      (match e.pexp_desc with
      | Pexp_match (scrut, _) | Pexp_try (scrut, _) ->
        it.Ast_iterator.expr it scrut
      | _ -> ());
      List.iter
        (fun (c : case) ->
          it.Ast_iterator.pat it c.pc_lhs;
          let inner = shadow (Astq.pat_vars c.pc_lhs) !env in
          Option.iter
            (fun g -> scoped_env inner (fun () -> it.Ast_iterator.expr it g))
            c.pc_guard;
          scoped_env inner (fun () -> it.Ast_iterator.expr it c.pc_rhs))
        cases
    | Pexp_for (pat, start, stop, _, body) ->
      it.Ast_iterator.expr it start;
      it.Ast_iterator.expr it stop;
      scoped_env (shadow (Astq.pat_vars pat) !env) (fun () ->
          it.Ast_iterator.expr it body)
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let structure_item it si =
    match si.pstr_desc with
    | Pstr_value (rf, vbs) ->
      (* the bindings stay in scope for the rest of the structure *)
      env := bindings it (rf = Asttypes.Recursive) vbs
    | _ -> Ast_iterator.default_iterator.structure_item it si
  in
  let it = { Ast_iterator.default_iterator with expr; structure_item } in
  it.structure it str;
  let count = !n in
  let node_arr = Array.make count None in
  List.iter (fun nd -> node_arr.(nd.id) <- Some nd) !nodes;
  let nodes =
    Array.map
      (function
        | Some nd -> nd
        | None -> invalid_arg "Callgraph.build: missing node slot")
      node_arr
  in
  let call_arr = Array.make count [] in
  Hashtbl.iter (fun id (_, order) -> call_arr.(id) <- List.rev !order) calls;
  { nodes; calls = call_arr }
