type ctx = { rel : string }

type t = {
  name : string;
  doc : string;
  severity : Finding.severity;
  applies : string -> bool;
  check_structure : (ctx -> Parsetree.structure -> Finding.t list) option;
  check_source : (ctx -> has_mli:bool -> Finding.t list) option;
}

let everywhere _ = true

let under dir rel =
  let prefix = dir ^ "/" in
  let n = String.length prefix in
  String.length rel >= n && String.equal (String.sub rel 0 n) prefix

let lib_only = under "lib"

let make ?(applies = everywhere) ?check_structure ?check_source ~doc ~severity
    name =
  { name; doc; severity; applies; check_structure; check_source }

let find ~name rules = List.find_opt (fun r -> String.equal r.name name) rules

let finding rule ~message loc =
  Finding.of_location ~rule:rule.name ~severity:rule.severity ~message loc
