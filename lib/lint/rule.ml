type ctx = { rel : string }

type t = {
  name : string;
  doc : string;
  example : string;  (* minimal firing snippet, shown by slint --explain *)
  severity : Finding.severity;
  applies : string -> bool;
  check_structure : (ctx -> Parsetree.structure -> Finding.t list) option;
  check_source : (ctx -> has_mli:bool -> Finding.t list) option;
  check_project : (Absint.t -> Finding.t list) option;
  project_replaces : bool;
      (* when true, [check_structure] is skipped for files the
         whole-program analysis covers: the project check subsumes it,
         and running both would keep per-file findings the cross-module
         facts disprove *)
}

let everywhere _ = true

let under dir rel =
  let prefix = dir ^ "/" in
  let n = String.length prefix in
  String.length rel >= n && String.equal (String.sub rel 0 n) prefix

let lib_only = under "lib"

let make ?(applies = everywhere) ?check_structure ?check_source ?check_project
    ?(project_replaces = false) ?(example = "") ~doc ~severity name =
  {
    name;
    doc;
    example;
    severity;
    applies;
    check_structure;
    check_source;
    check_project;
    project_replaces;
  }

let find ~name rules = List.find_opt (fun r -> String.equal r.name name) rules

let finding rule ~message loc =
  Finding.of_location ~rule:rule.name ~severity:rule.severity ~message loc
