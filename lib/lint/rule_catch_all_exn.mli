(** Flags exception handlers that catch everything: [try ... with _ ->]
    and [match ... with exception _ ->] (unguarded wildcard patterns). *)

val rule : Rule.t
