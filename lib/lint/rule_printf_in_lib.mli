(** Flags any [Printf.*] use and implicit-stdout printers
    ([print_string], [Format.printf], ...) inside [lib/].  Library code
    formats with [Fmt]; executables under [bin/], [bench/] and
    [examples/] may print freely. *)

val rule : Rule.t
