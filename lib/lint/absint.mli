(** Abstract interpretation of float expressions over the whole-program
    call graph: every {!Callgraph} node gets an {!Absdom} summary of what
    it (or any full application of it, for a function) can evaluate to,
    solved to fixpoint by {!Taint.solve} with {!Absdom.widen} capping the
    interval lattice's infinite chains.

    The analysis is argument-insensitive (parameters are ⊤∪NaN, so one
    summary is sound for every call site) but flow-sensitive inside a
    body: [if]/[while]/guard conditions refine bare variables compared
    against literals — strict bounds via [Float.succ]/[Float.pred] — and
    a guard that always raises, or an [assert], refines the rest of the
    sequence.  Identifiers resolve locals, then file-local nodes, then
    cross-module paths through {!Project}.  [Power]'s alpha-derived
    getters are axiomatically non-negative (their invariant lives in
    [Power.make], behind a record field the interpreter cannot read). *)

type t
(** A solved analysis: project + per-node summaries. *)

val analyze : Project.t -> t
(** Run the summary fixpoint.  With [cross_module:false] projects this
    degenerates to per-file analysis — same API, no foreign facts. *)

val project : t -> Project.t

val summary : t -> int -> Absdom.t
(** Summary of a global node id. *)

val converged : t -> bool
(** [false] iff {!Taint.solve} hit its pop bound; rules should then
    treat "proved safe" claims as inconclusive (findings stay findings,
    proofs of absence do not). *)

val widen_after : int
(** Fact changes at a node before widening engages. *)

type env
(** Evaluation environment at a program point: owning file + the
    abstract values of lexically-bound names (refined by dominating
    conditions). *)

val env_file : env -> Project.file

val env_node : env -> int
(** Global id of the innermost binding whose right-hand side contains
    the current program point, [-1] at structure toplevel. *)

val lookup : env -> string -> Absdom.t option

val eval : env -> Parsetree.expression -> Absdom.t
(** Abstract value of an expression at this point. *)

val resolve_ref : env -> Parsetree.expression -> int option
(** Global node a (possibly qualified) identifier expression denotes,
    [None] when it is locally bound or unresolvable. *)

val iter_file : t -> Project.file -> (env -> Parsetree.expression -> unit) -> unit
(** Walk every expression of the file's structure in evaluation order,
    maintaining the environment (parameter binding, let extension,
    branch refinement); the callback fires before descent, like
    {!Callgraph.build}'s [on_expr]. *)
