open Parsetree

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> strip e
  | _ -> e

let path e =
  match (strip e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match Longident.flatten txt with
    | p -> Some p
    | exception Misc.Fatal_error -> None)
  | _ -> None

let path_is e candidates =
  match path e with Some p -> List.mem p candidates | None -> false

(* [suffix_is e s] matches the last components of a dotted path, so
   [Speedscale.Power.alpha] matches [["Power"; "alpha"]]. *)
let suffix_is e suffixes =
  match path e with
  | None -> false
  | Some p ->
    let n = List.length p in
    List.exists
      (fun s ->
        let k = List.length s in
        k <= n
        && List.equal String.equal s
             (List.filteri (fun i _ -> i >= n - k) p))
      suffixes

let head_module e =
  match path e with Some (m :: _ :: _) -> Some m | _ -> None

let float_const e =
  match (strip e).pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) -> float_of_string_opt s
  | _ -> None

(* A literal numeric constant — float or integer — looking through the
   parser's folded sign and an explicit unary minus. *)
let rec signed_number e =
  let e = strip e in
  match e.pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) | Pexp_constant (Pconst_integer (s, _))
    ->
    float_of_string_opt s
  | Pexp_apply (f, [ (Asttypes.Nolabel, a) ])
    when path_is f [ [ "~-." ]; [ "~-" ] ] ->
    Option.map Float.neg (signed_number a)
  | _ -> None

let is_float_literal e =
  let rec go e =
    match (strip e).pexp_desc with
    | Pexp_constant (Pconst_float _) -> true
    | Pexp_apply (f, [ (Asttypes.Nolabel, a) ])
      when path_is f [ [ "~-." ]; [ "~-" ] ] ->
      go a
    | _ -> false
  in
  go e

let apply_parts e =
  match (strip e).pexp_desc with
  | Pexp_apply (f, args) -> Some (f, List.map snd args)
  | _ -> None

let pat_vars p =
  let acc = ref [] in
  let pat it (p : pattern) =
    (match p.ppat_desc with
     | Ppat_var { txt; _ } -> acc := txt :: !acc
     | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
     | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.pat it p;
  !acc

let iter_expressions str visit =
  let expr it e =
    visit e;
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str
