(** Domain.DLS discipline: keys must be created in toplevel bindings, and a
    [DLS.get] before a [DLS.set] of the same key in the same function is
    either a missing initialisation or a save/restore swap that needs an
    audited suppression. *)

val name : string
val rule : Rule.t
