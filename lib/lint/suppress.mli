(** Per-site suppression comments.

    A directive has the shape

    {v (* slint: allow <rule> -- <reason> *) v}

    The reason is mandatory.  A directive at the end of a code line
    suppresses that line's findings for [<rule>]; a directive alone on
    its line suppresses the next code line.  File-level findings
    (line 0, e.g. missing-mli) are suppressed by a directive anywhere in
    the file. *)

type t

val parse : file:string -> string -> t
(** Scan source text for directives. *)

val malformed : t -> Finding.t list
(** Directives missing a rule name or a reason, reported as
    [suppress-syntax] errors. *)

val suppressed : t -> Finding.t -> bool
(** Whether a finding is governed by a directive (marks it used). *)

val unused : t -> file:string -> Finding.t list
(** [unused-suppression] warnings for directives that matched nothing;
    call after filtering all findings of the file. *)
