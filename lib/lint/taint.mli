(** Generic monotone fixpoint solver with a worklist and a termination
    bound — the engine under the interprocedural lint rules
    ({!Rule_taint_nondet}, {!Rule_domain_race}).

    Nodes are the integers [0 .. n-1].  The solution satisfies

    {[ fact v = transfer v (join (init v) (join of fact d for d in deps v)) ]}

    at every node, provided [join] is monotone over a finite-height lattice
    and [equal] recognises stabilisation. *)

type 'fact result = {
  fact : int -> 'fact;  (** the computed fact at each node *)
  iterations : int;  (** worklist pops performed *)
  converged : bool;
      (** [false] iff the pop bound was exhausted first; treat the facts as
          inconclusive in that case *)
}

val default_bound : n:int -> edges:int -> int
(** The bound used when [?bound] is omitted: [max 256 (4*(n+1)*(edges+n+1))],
    generous for any finite-chain lattice on per-file graphs. *)

val solve :
  n:int ->
  deps:(int -> int list) ->
  init:(int -> 'fact) ->
  join:('fact -> 'fact -> 'fact) ->
  equal:('fact -> 'fact -> bool) ->
  ?transfer:(int -> 'fact -> 'fact) ->
  ?bound:int ->
  unit ->
  'fact result
(** [solve ~n ~deps ~init ~join ~equal ()] computes the least fixpoint.
    [deps v] lists the nodes whose facts flow into [v] (out-of-range ids
    are ignored); [transfer] post-processes the joined fact (defaults to
    the identity). *)
