(* A syntactic model of mutable values for the concurrency rules.

   [classify] decides, from a binding's right-hand side alone, whether the
   bound value is shared-mutable ([Mutable]), safe to share across domains
   by construction ([Exempt]: Atomic.t, Mutex.t, Domain.DLS keys — the DLS
   slot itself is domain-local), or not known to be either ([Unknown]).
   [write_root] and [deref_root] recognise the mutation forms the parser
   produces: [:=], [<-] on fields, the [Array.set]/[Bytes.set] applications
   that [a.(i) <- v] desugars to, the stdlib container mutators, and [!]
   dereference (a read that races with any concurrent [:=]). *)

open Parsetree
module S = Set.Make (String)

type kind =
  | Ref
  | Arr  (* "Array" clashes with the stdlib module *)
  | Bytes_
  | Hashtbl_
  | Buffer_
  | Queue_
  | Stack_
  | Mutable_record

type classification = Mutable of kind | Exempt | Unknown

let kind_name = function
  | Ref -> "ref cell"
  | Arr -> "array"
  | Bytes_ -> "bytes"
  | Hashtbl_ -> "hash table"
  | Buffer_ -> "buffer"
  | Queue_ -> "queue"
  | Stack_ -> "stack"
  | Mutable_record -> "record with mutable fields"

(* Constructors whose result is freshly-allocated mutable state, keyed by
   module suffix. *)
let constructors =
  [
    (Arr,
     [ "make"; "init"; "create_float"; "make_matrix"; "of_list"; "copy";
       "append"; "concat"; "sub"; "map"; "mapi"; "of_seq" ],
     "Array");
    (Bytes_, [ "create"; "make"; "init"; "of_string"; "copy"; "sub" ], "Bytes");
    (Hashtbl_, [ "create"; "copy"; "of_seq" ], "Hashtbl");
    (Buffer_, [ "create" ], "Buffer");
    (Queue_, [ "create"; "copy"; "of_seq" ], "Queue");
    (Stack_, [ "create"; "copy"; "of_seq" ], "Stack");
  ]

let exempt_suffixes =
  [ [ "Atomic"; "make" ]; [ "Mutex"; "create" ]; [ "DLS"; "new_key" ];
    [ "Semaphore"; "Counting"; "make" ]; [ "Semaphore"; "Binary"; "make" ] ]

let lid_last = function
  | Longident.Lident s | Longident.Ldot (_, s) -> s
  | Longident.Lapply _ -> ""

(* Record fields declared [mutable] anywhere in this file. *)
let mutable_fields (str : structure) =
  let acc = ref S.empty in
  let type_declaration it (td : type_declaration) =
    (match td.ptype_kind with
    | Ptype_record labels ->
      List.iter
        (fun (ld : label_declaration) ->
          if ld.pld_mutable = Asttypes.Mutable then
            acc := S.add ld.pld_name.txt !acc)
        labels
    | _ -> ());
    Ast_iterator.default_iterator.type_declaration it td
  in
  let it = { Ast_iterator.default_iterator with type_declaration } in
  it.structure it str;
  !acc

let classify ~mutable_fields e =
  let e = Astq.strip e in
  match e.pexp_desc with
  | Pexp_array _ -> Mutable Arr
  | Pexp_record (fields, _)
    when List.exists
           (fun ((lid : Longident.t Asttypes.loc), _) ->
             S.mem (lid_last lid.txt) mutable_fields)
           fields ->
    Mutable Mutable_record
  | _ -> (
    match Astq.apply_parts e with
    | None -> Unknown
    | Some (f, _) ->
      if Astq.suffix_is f exempt_suffixes then Exempt
      else if Astq.path_is f [ [ "ref" ]; [ "Stdlib"; "ref" ] ] then Mutable Ref
      else (
        match
          List.find_opt
            (fun (_, fns, m) ->
              Astq.suffix_is f (List.map (fun fn -> [ m; fn ]) fns))
            constructors
        with
        | Some (k, _, _) -> Mutable k
        | None -> Unknown))

(* Module-suffix mutator tables: applying one of these to a variable
   mutates it in place. *)
let mutators =
  [
    ("Array", [ "set"; "unsafe_set"; "fill"; "blit"; "sort"; "stable_sort"; "fast_sort" ]);
    ("Bytes", [ "set"; "unsafe_set"; "fill"; "blit"; "blit_string" ]);
    ("Hashtbl",
     [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Buffer",
     [ "add_char"; "add_string"; "add_bytes"; "add_substring"; "add_subbytes";
       "add_buffer"; "add_channel"; "clear"; "reset"; "truncate" ]);
    ("Queue", [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
  ]

(* The (possibly dotted) identifier a mutation target bottoms out in:
   [x], [M.state], [M.state.field] all root at the identifier's path. *)
let rec root_path e =
  match (Astq.strip e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match Longident.flatten txt with
    | parts -> Some parts
    | exception Misc.Fatal_error -> None)
  | Pexp_field (inner, _) -> root_path inner
  | _ -> None

let root_var e =
  match root_path e with Some [ x ] -> Some x | _ -> None

(* [write_root_path e] returns [(path, op)] when [e] writes through the
   identifier at [path] — bare or module-qualified. *)
let write_root_path e =
  match (Astq.strip e).pexp_desc with
  | Pexp_setfield (target, { txt; _ }, _) ->
    Option.map
      (fun p ->
        (p, Fmt.str "%s.%s <-" (String.concat "." p) (lid_last txt)))
      (root_path target)
  | _ -> (
    match Astq.apply_parts e with
    | Some (f, target :: _) -> (
      if Astq.path_is f [ [ ":=" ] ] then
        Option.map (fun p -> (p, ":=")) (root_path target)
      else if
        Astq.path_is f
          [ [ "incr" ]; [ "decr" ]; [ "Stdlib"; "incr" ]; [ "Stdlib"; "decr" ] ]
      then
        Option.map
          (fun p ->
            (p, match Astq.path f with Some q -> String.concat "." q | None -> "incr"))
          (root_path target)
      else
        match
          List.find_opt
            (fun (m, fns) ->
              Astq.suffix_is f (List.map (fun fn -> [ m; fn ]) fns))
            mutators
        with
        | Some (m, _) ->
          Option.map
            (fun p ->
              let op =
                match Astq.path f with
                | Some q -> String.concat "." q
                | None -> m ^ ".<mutator>"
              in
              (p, op))
            (root_path target)
        | None -> None)
    | _ -> None)

(* [write_root e] returns [(var, op)] when [e] writes through a bare
   (file-local) variable. *)
let write_root e =
  match write_root_path e with Some ([ x ], op) -> Some (x, op) | _ -> None

(* [deref_root_path e] returns the identifier path when [e] is [!x] or
   [!M.state]: a bare read of a shared ref races with any concurrent
   [:=]. *)
let deref_root_path e =
  match Astq.apply_parts e with
  | Some (f, [ target ]) when Astq.path_is f [ [ "!" ] ] -> root_path target
  | _ -> None

let deref_root e =
  match deref_root_path e with Some [ x ] -> Some x | _ -> None
