(** Non-migratory (partitioned) scheduling — what migration buys.

    The paper's model allows free migration; many real systems pin jobs to
    a processor.  The partitioned baseline assigns each job permanently to
    one processor and then runs the exact single-processor optimum (YDS)
    on every processor.  Optimal partitioning is NP-hard (it subsumes
    makespan scheduling), so we use the standard greedy heuristics and let
    the benchmark (E19) quantify the migration gap against the migratory
    optimum.

    Note the subtlety: because YDS is convex in load, the greedy choice is
    made against the {e current energy increase}, not just raw work. *)

open Speedscale_model

type heuristic =
  | Least_work  (** assign to the processor with the least total workload *)
  | Least_energy_increase
      (** assign where the per-processor YDS energy grows the least *)

type t
(** Incremental assignment state: per-processor job sets and their YDS
    energies, updated one arrival at a time. *)

val create : ?heuristic:heuristic -> power:Power.t -> machines:int -> unit -> t
(** Default heuristic: [Least_energy_increase].
    Raises [Invalid_argument] if [machines < 1]. *)

val arrive : t -> Job.t -> int
(** Pin one arriving job to a processor (the online decision — it depends
    only on the jobs seen so far) and return the processor index. *)

val assignment : t -> (int * int) list
(** [(job id, processor)] pairs in arrival order. *)

val current_plan : t -> Schedule.t
(** Per-processor YDS over the jobs seen so far under the committed
    pinning — the plan the engine re-derives after each arrival. *)

val assign : heuristic -> Instance.t -> int array
(** Processor index per job (jobs considered in release order — the
    assignment is online-compatible; this is {!create} + {!arrive} folded
    over the instance). *)

val improve : Instance.t -> int array -> int array
(** Offline local search on an assignment: repeatedly move a single job to
    another processor while the total per-processor YDS energy strictly
    decreases; stops at a local optimum (guaranteed to terminate — the
    energy is strictly decreasing and bounded below).  Returns a new
    array. *)

val schedule :
  ?heuristic:heuristic -> ?local_search:bool -> Instance.t -> Schedule.t
(** Default heuristic: [Least_energy_increase], no local search.  Values
    are ignored. *)

val energy : ?heuristic:heuristic -> ?local_search:bool -> Instance.t -> float
