(** A naive multiprocessor generalization of Chan–Lam–Li — the obvious
    strawman the paper's PD supersedes.

    Before PD, no profitable multiprocessor algorithm with a guarantee was
    known.  The natural ad-hoc construction bolts CLL's single-processor
    admission rule onto the multiprocessor OA core: on arrival, compute
    the energy-optimal plan for remaining work plus the candidate, read
    off the candidate's planned speed, and admit iff it is below the CLL
    threshold [α^((α-2)/(α-1))·(v/w)^(1/(α-1))].  Nothing is known about
    this heuristic's competitive ratio — that absence is precisely the gap
    Theorem 3 fills — but it is a fair empirical baseline (experiment
    E22). *)

open Speedscale_model

val admission :
  power:Power.t -> machines:int -> Speedscale_single.Oa_engine.admission_sp
(** The CLL threshold test against the multiprocessor plan: plans the
    remaining work plus the candidate via {!Moa.plan_slices}, reads off
    the candidate's maximum planned speed, admits iff it is below the
    threshold. *)

val start : power:Power.t -> machines:int -> unit -> Speedscale_single.Oa_engine.t
(** Fresh incremental mCLL state (replan-execute core + {!admission}). *)

val schedule : Instance.t -> Schedule.t
(** Batch wrapper: folds the incremental state over the release-ordered
    jobs.  Works for any [machines]; reduces to CLL-like behaviour at
    [m = 1]. *)

val cost : Instance.t -> Cost.t
