(** A naive multiprocessor generalization of Chan–Lam–Li — the obvious
    strawman the paper's PD supersedes.

    Before PD, no profitable multiprocessor algorithm with a guarantee was
    known.  The natural ad-hoc construction bolts CLL's single-processor
    admission rule onto the multiprocessor OA core: on arrival, compute
    the energy-optimal plan for remaining work plus the candidate, read
    off the candidate's planned speed, and admit iff it is below the CLL
    threshold [α^((α-2)/(α-1))·(v/w)^(1/(α-1))].  Nothing is known about
    this heuristic's competitive ratio — that absence is precisely the gap
    Theorem 3 fills — but it is a fair empirical baseline (experiment
    E22). *)

open Speedscale_model

val schedule : Instance.t -> Schedule.t
(** Works for any [machines]; reduces to CLL-like behaviour at [m = 1]. *)

val cost : Instance.t -> Cost.t
