(** Multiprocessor Optimal Available — the Albers–Antoniadis–Greiner
    extension of OA to [m] speed-scalable processors with migration.

    At every arrival the algorithm recomputes an energy-optimal offline
    schedule (via the convex program + Chen realization) for the remaining
    work of all known jobs and follows it until the next arrival.  AAG
    proved this is [α^α]-competitive, like single-processor OA.  It is the
    energy-only multiprocessor baseline PD is compared against in the
    benchmark harness (all values infinite). *)

open Speedscale_model

val plan_slices :
  power:Power.t -> machines:int -> Speedscale_single.Oa_engine.plan_fn
(** The multiprocessor replan step: energy-optimal plan (convex program +
    Chen realization; plain YDS at [m = 1]) for a remaining-work job list,
    original ids preserved.  Shared with mCLL, whose admission test plans
    the candidate the same way. *)

val start : power:Power.t -> machines:int -> unit -> Speedscale_single.Oa_engine.t
(** Fresh incremental mOA state: the replan-execute core armed with
    {!plan_slices}, admit-everything, values forced to [infinity]. *)

val schedule : Instance.t -> Schedule.t
(** Batch wrapper: folds the incremental state over the release-ordered
    jobs.  Values are ignored: every job is finished. *)

val energy : Instance.t -> float
