(** Multiprocessor Optimal Available — the Albers–Antoniadis–Greiner
    extension of OA to [m] speed-scalable processors with migration.

    At every arrival the algorithm recomputes an energy-optimal offline
    schedule (via the convex program + Chen realization) for the remaining
    work of all known jobs and follows it until the next arrival.  AAG
    proved this is [α^α]-competitive, like single-processor OA.  It is the
    energy-only multiprocessor baseline PD is compared against in the
    benchmark harness (all values infinite). *)

open Speedscale_model

val schedule : Instance.t -> Schedule.t
(** Values are ignored: every job is finished. *)

val energy : Instance.t -> float
