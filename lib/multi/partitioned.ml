open Speedscale_model

type heuristic = Least_work | Least_energy_increase

(* ------------------------------------------------------------------ *)
(* Incremental assignment state                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  power : Power.t;
  machines : int;
  heuristic : heuristic;
  jobs_of : Job.t list array;  (* per processor, newest first *)
  work_of : float array;
  energy_of : float array;
  mutable seen_rev : Job.t list;
  mutable assignment_rev : (int * int) list;  (* (job id, processor) *)
}

let create ?(heuristic = Least_energy_increase) ~power ~machines () =
  if machines < 1 then invalid_arg "Partitioned.create: machines must be >= 1";
  {
    power;
    machines;
    heuristic;
    jobs_of = Array.make machines [];
    work_of = Array.make machines 0.0;
    energy_of = Array.make machines 0.0;
    seen_rev = [];
    assignment_rev = [];
  }

let arrive t (j : Job.t) =
  let best = ref 0 and best_score = ref Float.infinity in
  for p = 0 to t.machines - 1 do
    let score =
      match t.heuristic with
      | Least_work -> t.work_of.(p)
      | Least_energy_increase ->
        Speedscale_single.Yds.energy t.power (j :: t.jobs_of.(p))
        -. t.energy_of.(p)
    in
    if score < !best_score then begin
      best_score := score;
      best := p
    end
  done;
  let p = !best in
  t.jobs_of.(p) <- j :: t.jobs_of.(p);
  t.work_of.(p) <- t.work_of.(p) +. j.workload;
  if t.heuristic = Least_energy_increase then
    t.energy_of.(p) <- Speedscale_single.Yds.energy t.power t.jobs_of.(p);
  t.seen_rev <- j :: t.seen_rev;
  t.assignment_rev <- (j.id, p) :: t.assignment_rev;
  p

let assignment t = List.rev t.assignment_rev

let plan_of_assignment ~power:_ ~machines jobs assignment_of =
  let slices = ref [] in
  for p = 0 to machines - 1 do
    let mine = List.filter (fun (j : Job.t) -> assignment_of j.id = p) jobs in
    if mine <> [] then begin
      let local = Speedscale_single.Yds.schedule_slices mine in
      slices :=
        List.map (fun (s : Schedule.slice) -> { s with proc = p }) local
        @ !slices
    end
  done;
  !slices

let current_plan t =
  let jobs =
    List.sort (fun (a : Job.t) b -> Int.compare a.id b.id) t.seen_rev
  in
  let table = Hashtbl.create 16 in
  List.iter (fun (id, p) -> Hashtbl.replace table id p) t.assignment_rev;
  Schedule.make ~machines:t.machines ~rejected:[]
    (plan_of_assignment ~power:t.power ~machines:t.machines jobs
       (Hashtbl.find table))

(* ------------------------------------------------------------------ *)
(* Batch entry points                                                   *)
(* ------------------------------------------------------------------ *)

let assign heuristic (inst : Instance.t) =
  let t = create ~heuristic ~power:inst.power ~machines:inst.machines () in
  let assignment = Array.make (Instance.n_jobs inst) 0 in
  Array.iter (fun (j : Job.t) -> assignment.(j.id) <- arrive t j) inst.jobs;
  assignment

let improve (inst : Instance.t) assignment =
  let m = inst.machines in
  let a = Array.copy assignment in
  let jobs_of p =
    Array.to_list inst.jobs
    |> List.filter (fun (j : Job.t) -> a.(j.id) = p)
  in
  let energy_of p = Speedscale_single.Yds.energy inst.power (jobs_of p) in
  let energies = Array.init m energy_of in
  let improved = ref true in
  while !improved do
    improved := false;
    Array.iter
      (fun (j : Job.t) ->
        let src = a.(j.id) in
        let src_without =
          Speedscale_single.Yds.energy inst.power
            (List.filter (fun (j' : Job.t) -> j'.id <> j.id) (jobs_of src))
        in
        let moved = ref false in
        let dst = ref 0 in
        while (not !moved) && !dst < m do
          if !dst <> src then begin
            let dst_with =
              Speedscale_single.Yds.energy inst.power (j :: jobs_of !dst)
            in
            let delta =
              src_without +. dst_with -. energies.(src) -. energies.(!dst)
            in
            if delta < -.Speedscale_util.Feq.tol_snap *. (1.0 +. energies.(src)) then begin
              a.(j.id) <- !dst;
              energies.(src) <- src_without;
              energies.(!dst) <- dst_with;
              improved := true;
              moved := true
            end
          end;
          incr dst
        done)
      inst.jobs
  done;
  a

let schedule ?(heuristic = Least_energy_increase) ?(local_search = false)
    (inst : Instance.t) =
  let assignment = assign heuristic inst in
  let assignment = if local_search then improve inst assignment else assignment in
  Schedule.make ~machines:inst.machines ~rejected:[]
    (plan_of_assignment ~power:inst.power ~machines:inst.machines
       (Array.to_list inst.jobs)
       (fun id -> assignment.(id)))

let energy ?heuristic ?local_search (inst : Instance.t) =
  Schedule.energy inst.power (schedule ?heuristic ?local_search inst)
