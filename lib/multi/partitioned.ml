open Speedscale_model

type heuristic = Least_work | Least_energy_increase

let assign heuristic (inst : Instance.t) =
  let m = inst.machines in
  let assignment = Array.make (Instance.n_jobs inst) 0 in
  let jobs_of = Array.make m [] in
  let work_of = Array.make m 0.0 in
  let energy_of = Array.make m 0.0 in
  Array.iter
    (fun (j : Job.t) ->
      let best = ref 0 and best_score = ref Float.infinity in
      for p = 0 to m - 1 do
        let score =
          match heuristic with
          | Least_work -> work_of.(p)
          | Least_energy_increase ->
            Speedscale_single.Yds.energy inst.power (j :: jobs_of.(p))
            -. energy_of.(p)
        in
        if score < !best_score then begin
          best_score := score;
          best := p
        end
      done;
      let p = !best in
      assignment.(j.id) <- p;
      jobs_of.(p) <- j :: jobs_of.(p);
      work_of.(p) <- work_of.(p) +. j.workload;
      if heuristic = Least_energy_increase then
        energy_of.(p) <- Speedscale_single.Yds.energy inst.power jobs_of.(p))
    inst.jobs;
  assignment

let improve (inst : Instance.t) assignment =
  let m = inst.machines in
  let a = Array.copy assignment in
  let jobs_of p =
    Array.to_list inst.jobs
    |> List.filter (fun (j : Job.t) -> a.(j.id) = p)
  in
  let energy_of p = Speedscale_single.Yds.energy inst.power (jobs_of p) in
  let energies = Array.init m energy_of in
  let improved = ref true in
  while !improved do
    improved := false;
    Array.iter
      (fun (j : Job.t) ->
        let src = a.(j.id) in
        let src_without =
          Speedscale_single.Yds.energy inst.power
            (List.filter (fun (j' : Job.t) -> j'.id <> j.id) (jobs_of src))
        in
        let moved = ref false in
        let dst = ref 0 in
        while (not !moved) && !dst < m do
          if !dst <> src then begin
            let dst_with =
              Speedscale_single.Yds.energy inst.power (j :: jobs_of !dst)
            in
            let delta =
              src_without +. dst_with -. energies.(src) -. energies.(!dst)
            in
            if delta < -1e-9 *. (1.0 +. energies.(src)) then begin
              a.(j.id) <- !dst;
              energies.(src) <- src_without;
              energies.(!dst) <- dst_with;
              improved := true;
              moved := true
            end
          end;
          incr dst
        done)
      inst.jobs
  done;
  a

let schedule ?(heuristic = Least_energy_increase) ?(local_search = false)
    (inst : Instance.t) =
  let assignment = assign heuristic inst in
  let assignment = if local_search then improve inst assignment else assignment in
  let slices = ref [] in
  for p = 0 to inst.machines - 1 do
    let mine =
      Array.to_list inst.jobs
      |> List.filter (fun (j : Job.t) -> assignment.(j.id) = p)
    in
    if mine <> [] then begin
      let local = Speedscale_single.Yds.schedule_slices mine in
      slices :=
        List.map (fun (s : Schedule.slice) -> { s with proc = p }) local
        @ !slices
    end
  done;
  Schedule.make ~machines:inst.machines ~rejected:[] !slices

let energy ?heuristic ?local_search (inst : Instance.t) =
  Schedule.energy inst.power (schedule ?heuristic ?local_search inst)
