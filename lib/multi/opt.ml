open Speedscale_model

type result = {
  cost : float;
  accepted : int list;
  energy : float;
  lost_value : float;
}

(* Jobs of the subset, plus the map from sub-instance rank to original id
   (Instance.make re-ranks by release order). *)
let sub_instance (inst : Instance.t) mask =
  let kept =
    Array.to_list inst.jobs
    |> List.filter (fun (j : Job.t) -> mask land (1 lsl j.id) <> 0)
  in
  let sorted = List.stable_sort Job.compare_release kept in
  let rank_to_orig = Array.of_list (List.map (fun (j : Job.t) -> j.id) sorted) in
  (Instance.make ~power:inst.power ~machines:inst.machines kept, rank_to_orig)

let lost_of (inst : Instance.t) mask =
  Array.fold_left
    (fun acc (j : Job.t) ->
      if mask land (1 lsl j.id) = 0 then acc +. j.value else acc)
    0.0 inst.jobs

let accepted_of (inst : Instance.t) mask =
  List.init (Instance.n_jobs inst) Fun.id
  |> List.filter (fun id -> mask land (1 lsl id) <> 0)

let solve ?(max_jobs = 14) (inst : Instance.t) =
  let n = Instance.n_jobs inst in
  if n > max_jobs then
    invalid_arg
      (Fmt.str "Opt.solve: %d jobs exceed the enumeration limit %d" n
         max_jobs);
  let best =
    ref
      {
        cost = Instance.total_value inst;
        accepted = [];
        energy = 0.0;
        lost_value = Instance.total_value inst;
      }
  in
  for mask = 1 to (1 lsl n) - 1 do
    let lost = lost_of inst mask in
    if lost < !best.cost then begin
      let sub, _ = sub_instance inst mask in
      let energy = Mopt.energy sub in
      let cost = energy +. lost in
      if cost < !best.cost then
        best :=
          { cost; accepted = accepted_of inst mask; energy; lost_value = lost }
    end
  done;
  !best

let best_schedule (inst : Instance.t) =
  let r = solve inst in
  let mask = List.fold_left (fun acc id -> acc lor (1 lsl id)) 0 r.accepted in
  let rejected =
    List.init (Instance.n_jobs inst) Fun.id
    |> List.filter (fun id -> mask land (1 lsl id) = 0)
  in
  if r.accepted = [] then
    (r, Schedule.make ~machines:inst.machines ~rejected [])
  else begin
    let sub, rank_to_orig = sub_instance inst mask in
    let sched = Mopt.schedule sub in
    let slices =
      List.map
        (fun (s : Schedule.slice) -> { s with job = rank_to_orig.(s.job) })
        sched.slices
    in
    (r, Schedule.make ~machines:inst.machines ~rejected slices)
  end
