open Speedscale_model
open Speedscale_solver

let energy (inst : Instance.t) =
  if inst.machines = 1 then
    Speedscale_single.Yds.energy inst.power (Array.to_list inst.jobs)
  else
    let sol = Cp.solve ~max_iters:800 (Cp.make inst) Must_finish in
    sol.energy

let schedule (inst : Instance.t) =
  if inst.machines = 1 then Speedscale_single.Yds.schedule inst
  else
    let cp = Cp.make inst in
    let sol = Cp.solve ~max_iters:800 cp Must_finish in
    Cp.to_schedule cp sol.x
