open Speedscale_model
open Speedscale_solver

let work_eps = 1e-9

let clip_slices ~until slices =
  List.filter_map
    (fun (s : Schedule.slice) ->
      if s.t0 >= until then None
      else if s.t1 <= until then Some s
      else Some { s with t1 = until })
    slices

let schedule (inst : Instance.t) =
  let n = Instance.n_jobs inst in
  let remaining = Hashtbl.create 16 in
  let slices = ref [] in
  let arrival_times =
    List.init n (fun i -> (Instance.job inst i).release)
    |> List.sort_uniq Float.compare
  in
  let plan_jobs ~now =
    Hashtbl.fold
      (fun id rem acc ->
        if rem > work_eps *. (1.0 +. (Instance.job inst id).workload) then
          let j = Instance.job inst id in
          Job.make ~id ~release:now ~deadline:j.deadline ~workload:rem
            ~value:Float.infinity
          :: acc
        else acc)
      remaining []
    |> List.stable_sort Job.compare_release
  in
  let execute ~from ~until =
    match plan_jobs ~now:from with
    | [] -> ()
    | plan ->
      let rank_to_orig = Array.of_list (List.map (fun (j : Job.t) -> j.id) plan) in
      let sub = Instance.make ~power:inst.power ~machines:inst.machines plan in
      let planned =
        if inst.machines = 1 then Speedscale_single.Yds.schedule sub
        else
          let cp = Cp.make sub in
          let sol = Cp.solve ~max_iters:800 cp Must_finish in
          Cp.to_schedule cp sol.x
      in
      let remapped =
        List.map
          (fun (s : Schedule.slice) -> { s with job = rank_to_orig.(s.job) })
          planned.slices
      in
      let executed =
        match until with
        | None -> remapped
        | Some te -> clip_slices ~until:te remapped
      in
      List.iter
        (fun (s : Schedule.slice) ->
          let work = (s.t1 -. s.t0) *. s.speed in
          let prev = Hashtbl.find remaining s.job in
          Hashtbl.replace remaining s.job (Float.max 0.0 (prev -. work)))
        executed;
      slices := executed @ !slices
  in
  let rec go = function
    | [] -> ()
    | t :: rest ->
      Array.iter
        (fun (j : Job.t) ->
          if j.release = t then Hashtbl.replace remaining j.id j.workload)
        inst.jobs;
      let until = match rest with [] -> None | t' :: _ -> Some t' in
      execute ~from:t ~until;
      go rest
  in
  go arrival_times;
  Schedule.make ~machines:inst.machines ~rejected:[] !slices

let energy (inst : Instance.t) = Schedule.energy inst.power (schedule inst)
