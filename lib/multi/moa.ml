open Speedscale_model
open Speedscale_solver

(* Energy-optimal plan for a remaining-work job list (original ids are
   preserved through the rank remapping; all releases equal [now], so
   Instance.make's release-rank renumbering is the list order). *)
let plan_slices ~power ~machines : Speedscale_single.Oa_engine.plan_fn =
 fun ~now:_ jobs ->
  let rank_to_orig = Array.of_list (List.map (fun (j : Job.t) -> j.id) jobs) in
  let sub = Instance.make ~power ~machines jobs in
  let planned =
    if machines = 1 then Speedscale_single.Yds.schedule sub
    else
      let cp = Cp.make sub in
      let sol = Cp.solve ~max_iters:800 cp Must_finish in
      Cp.to_schedule cp sol.x
  in
  List.map
    (fun (s : Schedule.slice) -> { s with job = rank_to_orig.(s.job) })
    planned.slices

let start ~power ~machines () =
  Speedscale_single.Oa_engine.start ~machines
    ~plan:(plan_slices ~power ~machines)
    ~must_finish:true ()

let schedule (inst : Instance.t) =
  let t = start ~power:inst.power ~machines:inst.machines () in
  Array.iter
    (fun j -> ignore (Speedscale_single.Oa_engine.step t j))
    inst.jobs;
  Speedscale_single.Oa_engine.current_plan t

let energy (inst : Instance.t) = Schedule.energy inst.power (schedule inst)
