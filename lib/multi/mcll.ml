open Speedscale_model
open Speedscale_solver

let work_eps = 1e-9

let clip_slices ~until slices =
  List.filter_map
    (fun (s : Schedule.slice) ->
      if s.t0 >= until then None
      else if s.t1 <= until then Some s
      else Some { s with t1 = until })
    slices

(* Energy-optimal plan for a job list (ids preserved via remapping). *)
let plan_schedule (inst : Instance.t) plan =
  let rank_to_orig = Array.of_list (List.map (fun (j : Job.t) -> j.id) plan) in
  let sub = Instance.make ~power:inst.power ~machines:inst.machines plan in
  let planned =
    if inst.machines = 1 then Speedscale_single.Yds.schedule sub
    else
      let cp = Cp.make sub in
      let sol = Cp.solve ~max_iters:800 cp Must_finish in
      Cp.to_schedule cp sol.x
  in
  List.map
    (fun (s : Schedule.slice) -> { s with job = rank_to_orig.(s.job) })
    planned.slices

let max_speed_of slices id =
  List.fold_left
    (fun acc (s : Schedule.slice) ->
      if s.job = id then Float.max acc s.speed else acc)
    0.0 slices

let schedule (inst : Instance.t) =
  let n = Instance.n_jobs inst in
  let remaining = Hashtbl.create 16 in
  let rejected = ref [] in
  let slices = ref [] in
  let arrival_times =
    List.init n (fun i -> (Instance.job inst i).release)
    |> List.sort_uniq Float.compare
  in
  let plan_jobs ~now =
    Hashtbl.fold
      (fun id rem acc ->
        if rem > work_eps *. (1.0 +. (Instance.job inst id).workload) then
          let j = Instance.job inst id in
          Job.make ~id ~release:now ~deadline:j.deadline ~workload:rem
            ~value:j.value
          :: acc
        else acc)
      remaining []
    |> List.stable_sort Job.compare_release
  in
  let rec go = function
    | [] -> ()
    | t :: rest ->
      (* admission, one candidate at a time in id order *)
      Array.iter
        (fun (j : Job.t) ->
          if j.release = t then begin
            let candidate =
              Job.make ~id:j.id ~release:t ~deadline:j.deadline
                ~workload:j.workload ~value:j.value
            in
            let plan = plan_jobs ~now:t @ [ candidate ] in
            let planned_speed = max_speed_of (plan_schedule inst plan) j.id in
            if
              planned_speed
              <= Speedscale_single.Cll.threshold_speed inst.power j +. 1e-12
            then Hashtbl.replace remaining j.id j.workload
            else rejected := j.id :: !rejected
          end)
        inst.jobs;
      (match plan_jobs ~now:t with
      | [] -> ()
      | plan ->
        let planned = plan_schedule inst plan in
        let executed =
          match rest with
          | [] -> planned
          | t' :: _ -> clip_slices ~until:t' planned
        in
        List.iter
          (fun (s : Schedule.slice) ->
            let work = (s.t1 -. s.t0) *. s.speed in
            let prev = Hashtbl.find remaining s.job in
            Hashtbl.replace remaining s.job (Float.max 0.0 (prev -. work)))
          executed;
        slices := executed @ !slices);
      go rest
  in
  go arrival_times;
  Schedule.make ~machines:inst.machines ~rejected:!rejected !slices

let cost (inst : Instance.t) = Schedule.cost inst (schedule inst)
