open Speedscale_model

let max_speed_of slices id =
  List.fold_left
    (fun acc (s : Schedule.slice) ->
      if s.job = id then Float.max acc s.speed else acc)
    0.0 slices

let admission ~power ~machines : Speedscale_single.Oa_engine.admission_sp =
 fun ~now ~plan ~candidate ->
  let planned =
    max_speed_of (Moa.plan_slices ~power ~machines ~now plan) candidate.Job.id
  in
  {
    Speedscale_single.Oa_engine.admitted =
      planned <= Speedscale_single.Cll.threshold_speed power candidate +. Speedscale_util.Feq.tol_guard;
    planned_speed = Some planned;
  }

let start ~power ~machines () =
  Speedscale_single.Oa_engine.start ~machines
    ~plan:(Moa.plan_slices ~power ~machines)
    ~admit:(admission ~power ~machines) ()

let schedule (inst : Instance.t) =
  let t = start ~power:inst.power ~machines:inst.machines () in
  Array.iter
    (fun j -> ignore (Speedscale_single.Oa_engine.step t j))
    inst.jobs;
  Speedscale_single.Oa_engine.current_plan t

let cost (inst : Instance.t) = Schedule.cost inst (schedule inst)
