(** Offline energy-optimal multiprocessor scheduling with migration — the
    Bingham–Greenstreet / Albers–Antoniadis–Greiner substrate.

    Every job must be finished; the question is only how to distribute work
    over atomic intervals and processors.  Distributing over intervals is
    the convex program of [Cp] in must-finish mode; within an interval,
    Chen et al.'s algorithm is optimal by construction.  On one processor
    this coincides with YDS (which we use directly there, being exact). *)

open Speedscale_model

val energy : Instance.t -> float
(** Optimal total energy to finish all jobs (values are ignored).
    Exact for [machines = 1] (YDS); for [machines > 1] solved numerically
    to projected-gradient tolerance. *)

val schedule : Instance.t -> Schedule.t
(** A schedule achieving {!energy} (up to solver tolerance). *)
