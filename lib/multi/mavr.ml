open Speedscale_util
open Speedscale_model
open Speedscale_chen

let interval_loads (inst : Instance.t) ~lo ~hi =
  Array.to_list inst.jobs
  |> List.filter_map (fun (j : Job.t) ->
         if Job.covers j ~lo ~hi then Some (j.id, Job.density j *. (hi -. lo))
         else None)

let schedule (inst : Instance.t) =
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  let slices = ref [] in
  for k = 0 to Timeline.n_intervals tl - 1 do
    let lo, hi = Timeline.bounds tl k in
    match interval_loads inst ~lo ~hi with
    | [] -> ()
    | loads ->
      let chen = Chen.build ~machines:inst.machines ~length:(hi -. lo) loads in
      slices := Chen.slices chen ~t0:lo ~t1:hi @ !slices
  done;
  Schedule.make ~machines:inst.machines ~rejected:[] !slices

let energy (inst : Instance.t) =
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  let acc = Ksum.create () in
  for k = 0 to Timeline.n_intervals tl - 1 do
    let lo, hi = Timeline.bounds tl k in
    match interval_loads inst ~lo ~hi with
    | [] -> ()
    | loads ->
      Ksum.add acc
        (Chen.energy inst.power
           (Chen.build ~machines:inst.machines ~length:(hi -. lo) loads))
  done;
  Ksum.total acc
