(** Multiprocessor Average Rate.

    The natural migratory extension of Yao–Demers–Shenker's AVR: inside
    every atomic interval each available job contributes its density
    [w_j / (d_j − r_j)] worth of load, and the interval is realized with
    Chen et al.'s optimal per-interval schedule (dedicated/pool split +
    McNaughton).  On one processor this degenerates to classical AVR
    exactly (all jobs pooled at the summed density).

    Like AVR it is fully online and oblivious — a job's processing rate
    never reacts to other jobs — which makes it a useful "no coordination"
    baseline for the multiprocessor experiments (E18). *)

open Speedscale_model

val schedule : Instance.t -> Schedule.t
(** Values are ignored: every job is finished. *)

val energy : Instance.t -> float
