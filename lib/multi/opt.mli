(** Exact offline optimum of the profitable scheduling problem — the
    integral program (IMP) of Figure 1 — by enumerating acceptance sets.

    The integral part of (IMP) is only the accept/reject vector [y]; once
    it is fixed, the rest is the convex must-finish problem on the accepted
    jobs.  For the small instances used to measure true competitive ratios
    (experiment E8) we enumerate all [2^n] acceptance sets, pruning any set
    whose rejected value alone exceeds the incumbent. *)

open Speedscale_model

type result = {
  cost : float;
  accepted : int list;  (** original job ids of the best acceptance set *)
  energy : float;
  lost_value : float;
}

val solve : ?max_jobs:int -> Instance.t -> result
(** Raises [Invalid_argument] if the instance has more than [max_jobs]
    (default 14) jobs — the enumeration is exponential by design. *)

val best_schedule : Instance.t -> result * Schedule.t
(** The optimum together with a concrete realizing schedule. *)
