(** Chen et al.'s energy-optimal multiprocessor schedule for one atomic
    interval (ECRTS 2004), as used by the paper in Section 2.2.

    Input: an interval of length [l], [m] processors, and an absolute
    workload [W_j] for each job assigned to the interval.  The energy-
    minimal schedule splits jobs into {e dedicated} jobs — each larger than
    the average of what remains, run alone on its own processor at speed
    [W_j / l] — and {e pool} jobs, which timeshare the remaining processors
    at one common speed.  Formally (Equation (5) of the paper), after
    sorting [W_1 >= W_2 >= ...], job [j] is dedicated iff

    {v j <= m  /\  W_j > 0  /\  W_j >= (Σ_{j' > j} W_j') / (m - j) v}

    and the dedicated set is a prefix of the sorted order.

    The module works in absolute loads; the caller converts the paper's
    fractional variables via [W_j = x_jk * w_j].

    Besides the partition itself this module exposes the quantities PD's
    analysis needs: the interval energy [P_k] (Eq. 6), the marginal power
    [∂P_k/∂load_j = P'_α(s_j)] (Prop. 1(b)), and a closed-form inverse
    [probe_load_for_speed] that answers "how much load must a {e new} job
    place into this interval to be scheduled at speed [s]?" — the primitive
    from which PD's water-filling is built. *)

open Speedscale_model

type t
(** An interval problem: [m], [l], and the (id, load) pairs with load > 0,
    preprocessed (sorted, prefix sums) for O(log p) queries. *)

val build : machines:int -> length:float -> (int * float) list -> t
(** Loads with non-positive values are dropped.  Duplicated ids, a
    non-positive length or [machines < 1] raise [Invalid_argument]. *)

val add_load : t -> int * float -> t
(** [add_load t (id, z)] is [t] with one more job: value-identical to
    rebuilding from the extended pair list, but O(p) blits instead of a
    sort plus duplicate scan — the incremental commit update on PD's hot
    path.  The load must be positive ([Invalid_argument] otherwise) and
    the id must not already be present (unchecked: the caller owns the id
    discipline). *)

val rescale : t -> length:float -> factor:float -> t
(** [rescale t ~length ~factor] scales every load by [factor > 0] and sets
    the interval length — the split update when a new boundary divides an
    interval and its committed loads proportionally.  Value-identical to
    rebuilding from the scaled pairs (sorted order is preserved; prefix
    sums and the dedicated prefix are recomputed on the scaled values). *)

val machines : t -> int
val interval_length : t -> float

val total_load : t -> float
(** Sum of all job loads in the interval. *)

type partition = {
  dedicated : (int * float) list;
      (** (id, load), in decreasing load order; job [i] in this list runs
          alone on processor [i] at speed [load / l]. *)
  pool : (int * float) list;  (** remaining jobs, any order *)
  pool_speed : float;  (** common speed of pool processors (0 if none) *)
  pool_procs : int;  (** [m - |dedicated|] *)
}

val partition : t -> partition

val energy : Power.t -> t -> float
(** [P_k] of Equation (6): dedicated jobs at their own speed plus pool
    processors at the pool speed, over the interval length. *)

val speed_of_job : t -> int -> float
(** Speed at which the given job runs ([load/l] if dedicated, pool speed
    otherwise).  Raises [Not_found] for ids without load. *)

val job_speeds : t -> (int * float) list
(** All (id, speed) pairs in one O(p) pass — the full gradient direction
    of [P_k] via Prop. 1(b). *)

val processor_loads : t -> float array
(** Work processed by each processor, sorted in decreasing order — the
    [L_i] of Proposition 2. *)

val probe_speed : t -> float -> float
(** [probe_speed t z] is the speed a {e new} job with load [z >= 0] would
    receive if added to the interval.  At [z = 0] this is the right limit —
    the marginal speed: the pool speed if a pool processor exists, else the
    smallest dedicated speed. *)

val probe_load_for_speed : t -> float -> float
(** [probe_load_for_speed t s] is the unique load [z > 0] such that
    [probe_speed t z = s], or [0] when [probe_speed t 0 >= s] (the interval
    is already running at least that fast).  Closed form, O(log p).
    Satisfies [probe_speed t (probe_load_for_speed t s) = s] whenever the
    result is positive. *)

val probe_breakpoints : t -> cap:float -> float array
(** Sorted, duplicate-free speeds [s_1 < s_2 < ... < s_B] such that the
    capped probe response [g s = min (probe_load_for_speed t s) cap] is
    affine on every segment [[s_i, s_{i+1}]], identically [0] at and below
    [s_1], and equal to [cap] at [s_B] (and beyond).  A superset of the
    true kinks of [g] — spurious interior entries are allowed — with
    [O(machines)] entries.  This is the primitive behind PD's fast
    water-filling: between two adjacent merged breakpoints the total work
    a new job would commit across its window is a sum of affine functions,
    so the finishing price falls out of one linear interpolation instead
    of a blind bisection.  [cap] must be positive. *)

val marginal_power : Power.t -> t -> float
(** [P'_α(probe_speed t 0)] — the marginal energy cost per unit of load a
    new job pays in this interval; [λ_jk / (δ w_j)] at [x_jk = 0]. *)

val slices : t -> t0:float -> t1:float -> Schedule.slice list
(** Realize the partition on the concrete time window [[t0, t1)] (whose
    width must equal the interval length): dedicated job [i] on processor
    [i]; pool jobs wrapped across processors [d..m-1] by McNaughton's rule,
    which is valid because every pool load is at most [pool_speed * l]. *)
