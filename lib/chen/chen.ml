open Speedscale_util
open Speedscale_model

type t = {
  machines : int;
  length : float;
  ids : int array;  (* sorted by decreasing load *)
  loads : float array;  (* sorted decreasing, all > 0 *)
  prefix : float array;  (* prefix.(i) = loads.(0) + ... + loads.(i-1) *)
  n_dedicated : int;
}

let machines t = t.machines
let interval_length t = t.length
let total_load t = t.prefix.(Array.length t.loads)

(* The dedicated set is the maximal prefix (in decreasing load order) such
   that each member carries at least the per-processor average of what
   follows it (Eq. 5).  With at most m positive loads every job is
   dedicated; the greedy scan mirrors Chen et al.'s recursive peeling. *)
let dedicated_prefix ~machines ~loads ~prefix =
  let p = Array.length loads in
  let total = prefix.(p) in
  let rec go d =
    if d >= p || d >= machines then d
    else
      let rest = total -. prefix.(d + 1) in
      let procs_left = machines - (d + 1) in
      if procs_left = 0 then if rest <= 0.0 then d + 1 else d
      else if loads.(d) *. float_of_int procs_left >= rest then go (d + 1)
      else d
  in
  go 0

let build ~machines ~length pairs =
  if machines < 1 then invalid_arg "Chen.build: machines < 1";
  if not (Float.is_finite length) || length <= 0.0 then
    invalid_arg "Chen.build: interval length must be > 0";
  let pairs =
    List.filter
      (fun (_, w) ->
        if Float.is_nan w then invalid_arg "Chen.build: NaN load";
        w > 0.0)
      pairs
  in
  let ids_seen = Hashtbl.create 16 in
  List.iter
    (fun (id, _) ->
      if Hashtbl.mem ids_seen id then
        invalid_arg (Fmt.str "Chen.build: duplicate job id %d" id);
      Hashtbl.add ids_seen id ())
    pairs;
  let arr = Array.of_list pairs in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) arr;
  let p = Array.length arr in
  let ids = Array.map fst arr and loads = Array.map snd arr in
  let prefix = Array.make (p + 1) 0.0 in
  for i = 0 to p - 1 do
    prefix.(i + 1) <- prefix.(i) +. loads.(i)
  done;
  let n_dedicated = dedicated_prefix ~machines ~loads ~prefix in
  { machines; length; ids; loads; prefix; n_dedicated }

type partition = {
  dedicated : (int * float) list;
  pool : (int * float) list;
  pool_speed : float;
  pool_procs : int;
}

let pool_stats t =
  let p = Array.length t.loads in
  let d = t.n_dedicated in
  let pool_load = t.prefix.(p) -. t.prefix.(d) in
  let pool_procs = t.machines - d in
  let pool_speed =
    if pool_procs <= 0 then 0.0
    else pool_load /. (float_of_int pool_procs *. t.length)
  in
  (pool_load, pool_procs, pool_speed)

let partition t =
  let d = t.n_dedicated in
  let take lo hi =
    List.init (hi - lo) (fun i -> (t.ids.(lo + i), t.loads.(lo + i)))
  in
  let _, pool_procs, pool_speed = pool_stats t in
  {
    dedicated = take 0 d;
    pool = take d (Array.length t.loads);
    pool_speed;
    pool_procs;
  }

let energy power t =
  let d = t.n_dedicated in
  let acc = Ksum.create () in
  for i = 0 to d - 1 do
    Ksum.add acc
      (Power.energy power ~speed:(t.loads.(i) /. t.length) ~duration:t.length)
  done;
  let _, pool_procs, pool_speed = pool_stats t in
  if pool_procs > 0 && pool_speed > 0.0 then
    Ksum.add acc
      (float_of_int pool_procs
      *. Power.energy power ~speed:pool_speed ~duration:t.length);
  Ksum.total acc

let speed_of_job t id =
  let rec find i =
    if i >= Array.length t.ids then raise Not_found
    else if t.ids.(i) = id then i
    else find (i + 1)
  in
  let i = find 0 in
  if i < t.n_dedicated then t.loads.(i) /. t.length
  else
    let _, _, pool_speed = pool_stats t in
    pool_speed

let job_speeds t =
  let _, _, pool_speed = pool_stats t in
  List.init (Array.length t.ids) (fun i ->
      ( t.ids.(i),
        if i < t.n_dedicated then t.loads.(i) /. t.length else pool_speed ))

let processor_loads t =
  let d = t.n_dedicated in
  let _, _, pool_speed = pool_stats t in
  Array.init t.machines (fun i ->
      if i < d then t.loads.(i) else pool_speed *. t.length)

(* Number of stored loads strictly greater than [x] (loads sorted desc). *)
let count_gt t x =
  let loads = t.loads in
  let p = Array.length loads in
  let rec go lo hi =
    (* invariant: loads.(i) > x for i < lo; loads.(i) <= x for i >= hi *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if loads.(mid) > x then go (mid + 1) hi else go lo mid
  in
  go 0 p

(* Incrementally insert one (id, load) pair: O(p) blits, no sort and no
   duplicate scan — the committed-state update PD performs once per window
   interval per accepted job, where a full [build] would dominate the
   arrival cost.  The prefix sums are recomputed by summation over the new
   sorted order, so the result is value-identical to [build] on the
   extended pair list (up to the order of tied loads, which no query
   observes).  The caller guarantees [id] is not already present. *)
let add_load t (id, z) =
  if Float.is_nan z || z <= 0.0 then
    invalid_arg "Chen.add_load: load must be > 0";
  let p = Array.length t.loads in
  let pos = count_gt t z in
  let ids = Array.make (p + 1) id in
  Array.blit t.ids 0 ids 0 pos;
  Array.blit t.ids pos ids (pos + 1) (p - pos);
  let loads = Array.make (p + 1) z in
  Array.blit t.loads 0 loads 0 pos;
  Array.blit t.loads pos loads (pos + 1) (p - pos);
  let prefix = Array.make (p + 2) 0.0 in
  for i = 0 to p do
    prefix.(i + 1) <- prefix.(i) +. loads.(i)
  done;
  let n_dedicated = dedicated_prefix ~machines:t.machines ~loads ~prefix in
  { t with ids; loads; prefix; n_dedicated }

(* Scale every load by [factor] and set a new length: the interval-split
   update.  Sorted order is preserved (factor > 0) and the dedicated
   prefix is recomputed on the scaled values, so the result is
   value-identical to [build] on the scaled pairs. *)
let rescale t ~length ~factor =
  if not (Float.is_finite length) || length <= 0.0 then
    invalid_arg "Chen.rescale: length must be finite > 0";
  if not (Float.is_finite factor) || factor <= 0.0 then
    invalid_arg "Chen.rescale: factor must be finite > 0";
  let p = Array.length t.loads in
  let loads = Array.map (fun w -> w *. factor) t.loads in
  let prefix = Array.make (p + 1) 0.0 in
  for i = 0 to p - 1 do
    prefix.(i + 1) <- prefix.(i) +. loads.(i)
  done;
  let n_dedicated = dedicated_prefix ~machines:t.machines ~loads ~prefix in
  { t with length; loads; prefix; n_dedicated }

let probe_speed_zero t =
  let d = t.n_dedicated in
  let _, pool_procs, pool_speed = pool_stats t in
  if pool_procs > 0 then pool_speed
  else
    (* all m processors dedicated; an infinitesimal probe would pool with
       the smallest dedicated job *)
    t.loads.(d - 1) /. t.length

let probe_speed t z =
  if z < 0.0 || Float.is_nan z then invalid_arg "Chen.probe_speed: bad load";
  if Float.equal z 0.0 then probe_speed_zero t
  else begin
    (* Recompute the partition with the probe merged in.  The probe gets a
       fresh id below any real one; only its speed is needed. *)
    let p = Array.length t.loads in
    let pos = count_gt t z in
    let loads = Array.make (p + 1) 0.0 in
    Array.blit t.loads 0 loads 0 pos;
    loads.(pos) <- z;
    Array.blit t.loads pos loads (pos + 1) (p - pos);
    let prefix = Array.make (p + 2) 0.0 in
    for i = 0 to p do
      prefix.(i + 1) <- prefix.(i) +. loads.(i)
    done;
    let d = dedicated_prefix ~machines:t.machines ~loads ~prefix in
    if pos < d then z /. t.length
    else
      let pool_load = prefix.(p + 1) -. prefix.(d) in
      let pool_procs = t.machines - d in
      pool_load /. (float_of_int pool_procs *. t.length)
  end

let probe_load_for_speed t s =
  if s < 0.0 || Float.is_nan s then
    invalid_arg "Chen.probe_load_for_speed: bad speed";
  if s <= 0.0 || s <= probe_speed_zero t then 0.0
  else
    let sl = s *. t.length in
    let d = count_gt t sl in
    if d >= t.machines then 0.0
    else
      let pool_others = total_load t -. t.prefix.(d) in
      let z_pool = (sl *. float_of_int (t.machines - d)) -. pool_others in
      let z = Float.min z_pool sl in
      Float.max z 0.0

(* Breakpoint speeds of the capped probe response g(s) = min(z(s), cap),
   where z(s) = probe_load_for_speed t s.  Within a regime where the
   probe's dedicated count d is fixed, z is one of 0, s*l*(m-d) - rest, or
   s*l — affine in s — so the kinks of g are contained in: the speeds
   where d changes (s*l crossing a stored load), the speeds where each
   affine piece enters (z = 0), hands over (z_pool = s*l), or saturates
   (z = cap), plus the marginal speed below which z is identically zero.
   We emit the full superset for every d; spurious entries inside an
   affine stretch are harmless — callers only rely on g being affine
   BETWEEN consecutive entries, never on every entry being a real kink. *)
let probe_breakpoints t ~cap =
  if Float.is_nan cap || cap <= 0.0 then
    invalid_arg "Chen.probe_breakpoints: cap must be > 0";
  let m = t.machines and l = t.length in
  let p = Array.length t.loads in
  let psz = probe_speed_zero t in
  let dmax = Int.min p (m - 1) in
  (* flat buffer, insertion-sorted in place: this runs once per window
     interval per arrival, so no lists, no comparison closures *)
  let buf = Array.make (2 + Int.min p m + (3 * (dmax + 1))) 0.0 in
  let n = ref 0 in
  let push s =
    if Float.is_finite s && s >= psz then begin
      buf.(!n) <- s;
      incr n
    end
  in
  push psz;
  (* d-transitions: only the first m matter (d >= m forces z = 0) *)
  for i = 0 to Int.min p m - 1 do
    push (t.loads.(i) /. l)
  done;
  (* per fixed dedicated count d: entry (z_pool = 0), saturation
     (z_pool = cap) and handover (z_pool = s*l) speeds *)
  for d = 0 to dmax do
    let others = total_load t -. t.prefix.(d) in
    let procs = float_of_int (m - d) in
    push (others /. (procs *. l));
    push ((cap +. others) /. (procs *. l));
    if m - d - 1 >= 1 then push (others /. (float_of_int (m - d - 1) *. l))
  done;
  (* the z = s*l branch saturates *)
  push (cap /. l);
  let len = !n in
  for i = 1 to len - 1 do
    let x = buf.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && buf.(!j) > x do
      buf.(!j + 1) <- buf.(!j);
      decr j
    done;
    buf.(!j + 1) <- x
  done;
  let out = ref 0 and prev = ref Float.nan in
  for i = 0 to len - 1 do
    let x = buf.(i) in
    if !out = 0 || not (Float.equal !prev x) then begin
      buf.(!out) <- x;
      incr out;
      prev := x
    end
  done;
  Array.sub buf 0 !out

let marginal_power power t = Power.deriv power (probe_speed_zero t)

let slices t ~t0 ~t1 =
  if not (Feq.approx (t1 -. t0) t.length) then
    invalid_arg
      (Fmt.str "Chen.slices: window [%g,%g) has length %g, expected %g"
         t0 t1 (t1 -. t0) t.length);
  let d = t.n_dedicated in
  let dedicated =
    List.init d (fun i ->
        {
          Schedule.proc = i;
          t0;
          t1;
          job = t.ids.(i);
          speed = t.loads.(i) /. t.length;
        })
  in
  let _, pool_procs, pool_speed = pool_stats t in
  if pool_procs <= 0 || pool_speed <= 0.0 then dedicated
  else begin
    (* McNaughton wrap-around on processors d .. m-1: valid because every
       pool load is at most pool_speed * length. *)
    let l = t.length in
    let acc = ref dedicated in
    let proc = ref d and offset = ref 0.0 in
    let emit p lo hi id =
      if hi -. lo > Feq.tol_guard *. (1.0 +. l) then
        acc :=
          { Schedule.proc = p; t0 = t0 +. lo; t1 = t0 +. hi; job = id;
            speed = pool_speed }
          :: !acc
    in
    for i = d to Array.length t.loads - 1 do
      let id = t.ids.(i) in
      let dur = t.loads.(i) /. pool_speed in
      let cap = l -. !offset in
      let last_proc = !proc >= t.machines - 1 in
      if dur <= cap +. (Feq.tol_snap *. l) || last_proc then begin
        (* fits (or this is the final processor: accumulated rounding can
           claim an overflow of order 1e-9*l — squeeze it in, the work
           tolerance absorbs it) *)
        let dur = Float.min dur cap in
        emit !proc !offset (!offset +. dur) id;
        offset := !offset +. dur;
        if l -. !offset <= Feq.tol_snap *. l && not last_proc then begin
          incr proc;
          offset := 0.0
        end
      end
      else begin
        emit !proc !offset l id;
        let rest = dur -. cap in
        incr proc;
        (* the wrapped piece ends before the first piece started, so the
           job never runs on two processors at once *)
        emit !proc 0.0 rest id;
        offset := rest
      end
    done;
    !acc
  end
