type t = {
  engine : string;
  shard_fn : string;
  shards : int;
  seq : int;
  files : string list;
}

let manifest_name = "manifest"
let ckpt_prefix = "ckpt-"

let shard_file ~seq i = Fmt.str "%s%d-shard-%d.snap" ckpt_prefix seq i

let render ~engine ~shard_fn ~seq entries =
  let b = Buffer.create 256 in
  let pf fmt = Fmt.kstr (Buffer.add_string b) fmt in
  pf "service-manifest v1\n";
  pf "engine %s\n" engine;
  pf "shard-fn %s\n" shard_fn;
  pf "shards %d\n" (List.length entries);
  pf "seq %d\n" seq;
  List.iteri (fun i (file, digest) -> pf "shard %d %s %s\n" i file digest)
    entries;
  Buffer.contents b

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    failwith (Fmt.str "Checkpoint.write: %s exists and is not a directory" dir)

let write ~dir ~engine ~shard_fn ~seq snapshots =
  ensure_dir dir;
  let entries =
    Array.to_list
      (Array.mapi
         (fun i snap ->
           let file = shard_file ~seq i in
           Atomic_io.write ~path:(Filename.concat dir file) snap;
           (file, Digest.to_hex (Digest.string snap)))
         snapshots)
  in
  Atomic_io.write
    ~path:(Filename.concat dir manifest_name)
    (render ~engine ~shard_fn ~seq entries);
  (* Prune superseded checkpoint files only after the manifest commit:
     a crash before this point leaves extra files, never missing ones. *)
  let keep = List.map fst entries in
  Array.iter
    (fun name ->
      if
        String.length name >= String.length ckpt_prefix
        && String.sub name 0 (String.length ckpt_prefix) = ckpt_prefix
        && (not (List.mem name keep))
        && Filename.check_suffix name ".snap"
      then Sys.remove (Filename.concat dir name))
    (Sys.readdir dir)

let load ~manifest =
  let fail fmt = Fmt.kstr (fun m -> failwith ("Checkpoint.load: " ^ m)) fmt in
  let text =
    match Atomic_io.read ~path:manifest with
    | s -> s
    | exception Sys_error e -> fail "%s" e
  in
  let dir = Filename.dirname manifest in
  let engine = ref None
  and shard_fn = ref None
  and shards = ref None
  and seq = ref None
  and entries_rev = ref [] in
  let lines = String.split_on_char '\n' text in
  (match lines with
  | first :: _ when String.trim first = "service-manifest v1" -> ()
  | _ -> fail "%s is not a service-manifest v1" manifest);
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if lineno = 1 || line = "" || line.[0] = '#' then ()
      else
        let int_field what v =
          match int_of_string_opt v with
          | Some n -> n
          | None -> fail "line %d: bad %s %S" lineno what v
        in
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "engine"; v ] -> engine := Some v
        | [ "shard-fn"; v ] -> shard_fn := Some v
        | [ "shards"; v ] -> shards := Some (int_field "shards" v)
        | [ "seq"; v ] -> seq := Some (int_field "seq" v)
        | [ "shard"; i; file; digest ] ->
          entries_rev := (int_field "shard index" i, file, digest)
            :: !entries_rev
        | _ -> fail "line %d: unrecognized %S" lineno line)
    lines;
  let need what = function
    | Some v -> v
    | None -> fail "missing '%s' line" what
  in
  let k = need "shards" !shards in
  let entries =
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) (List.rev !entries_rev)
  in
  if List.length entries <> k then
    fail "expected %d shard lines, found %d" k (List.length entries);
  List.iteri
    (fun i (idx, _, _) -> if idx <> i then fail "missing shard %d entry" i)
    entries;
  let snaps =
    List.map
      (fun (i, file, digest) ->
        let path = Filename.concat dir file in
        let snap =
          match Atomic_io.read ~path with
          | s -> s
          | exception Sys_error e -> fail "shard %d: %s" i e
        in
        let actual = Digest.to_hex (Digest.string snap) in
        if not (String.equal actual digest) then
          fail
            "shard %d: digest mismatch for %s (manifest %s, file %s) — \
             checkpoint is corrupt"
            i file digest actual;
        snap)
      entries
  in
  ( {
      engine = need "engine" !engine;
      shard_fn = need "shard-fn" !shard_fn;
      shards = k;
      seq = need "seq" !seq;
      files = List.map (fun (_, f, _) -> f) entries;
    },
    Array.of_list snaps )
