(** Crash-safe file writes: the primitive failover depends on.

    A checkpoint that is written with a bare [open_out] can be observed
    half-written — exactly when it matters, because the observer is the
    process restoring after the crash that interrupted the write.  Every
    snapshot and manifest in this repository goes through {!write}
    instead: the bytes land in [path ^ ".tmp"] and are moved over [path]
    with [Sys.rename], which POSIX makes atomic within a filesystem.  A
    reader therefore sees either the complete previous content or the
    complete new content, never a truncated mixture; a crash mid-write
    leaves at worst a stale [.tmp] file next to an intact target. *)

val write : path:string -> string -> unit
(** Write the whole string to [path] atomically (tmp + rename).  On any
    exception the temporary file is removed and [path] is untouched. *)

val write_seq : path:string -> (unit -> string option) -> unit
(** Chunked variant: pull chunks from the producer until it returns
    [None], then commit atomically.  If the producer (or the write)
    raises, the temporary file is removed, [path] keeps its previous
    content, and the exception is re-raised — the property the
    partial-snapshot test injects a failure to observe. *)

val read : path:string -> string
(** Read a whole file; raises [Sys_error] like [open_in]. *)
