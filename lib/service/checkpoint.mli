(** Checkpoint manifests: the commit protocol for sharded snapshots.

    A service checkpoint is [k] per-shard `online-snapshot v1` files plus
    one {e manifest} naming them.  The write protocol makes the whole
    set crash-consistent without fsync ceremony:

    + every shard snapshot is written atomically ({!Atomic_io.write}) to
      a {e per-checkpoint} name, [ckpt-<seq>-shard-<i>.snap], so a new
      checkpoint never overwrites the files the current manifest points
      at;
    + the manifest — carrying each file's MD5 — is renamed into place
      {e last}, which makes it the single commit point;
    + files from superseded checkpoints are pruned only {e after} the
      manifest commit, so a crash anywhere leaves a manifest whose files
      all exist, intact, with matching digests.

    {!load} verifies the digests and fails loudly on any mismatch: a
    corrupted checkpoint must never restore silently. *)

type t = {
  engine : string;  (** registry name, e.g. ["pd"] *)
  shard_fn : string;  (** partitioning-function tag, e.g. ["id-mix-v1"] *)
  shards : int;
  seq : int;  (** arrivals ingested when the checkpoint was cut *)
  files : string list;  (** per-shard snapshot file names, shard order *)
}

val manifest_name : string
(** ["manifest"] — the file {!write} commits inside the directory. *)

val write :
  dir:string -> engine:string -> shard_fn:string -> seq:int ->
  string array ->
  unit
(** [write ~dir ~engine ~shard_fn ~seq snapshots] commits one checkpoint
    (creating [dir] if needed) and prunes files of older checkpoints.
    The commit point is the atomic rename of [dir/manifest]. *)

val load : manifest:string -> t * string array
(** Read a manifest (by path) and its shard snapshot texts, verifying
    every recorded MD5.  Raises [Failure] with a descriptive message on
    a missing file, a digest mismatch, or a malformed manifest. *)
