let write_seq ~path producer =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  let cleanup () =
    close_out_noerr oc;
    if Sys.file_exists tmp then Sys.remove tmp
  in
  (match
     let rec pump () =
       match producer () with
       | Some chunk ->
         output_string oc chunk;
         pump ()
       | None -> ()
     in
     pump ();
     close_out oc
   with
  | () -> ()
  | exception e ->
    cleanup ();
    raise e);
  (* the commit point: atomic within a filesystem *)
  match Sys.rename tmp path with
  | () -> ()
  | exception e ->
    if Sys.file_exists tmp then Sys.remove tmp;
    raise e

let write ~path contents =
  let sent = ref false in
  write_seq ~path (fun () ->
      if !sent then None
      else begin
        sent := true;
        Some contents
      end)

let read ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
