(** Sharded admission control: many online engines, one decision stream.

    The paper's PD algorithm is an online admission controller; PR 7 made
    its arrival path flat at tens of microseconds with bounded memory.
    This module is the payoff: a long-running, domain-parallel service
    that hash-partitions arriving jobs across [k] independent engine
    instances ({e shards}), runs the shards on OCaml 5 domains through
    the persistent {!Speedscale_obs.Pool} (per-shard ingest queues,
    batched dequeue), and merges the per-shard decisions back into one
    {e deterministic} stream: events are emitted in global arrival order,
    and every decision is a pure function of its shard's arrival
    subsequence, so the merged stream is byte-identical run over run —
    at any worker count, under migration, and across kill/restore.

    Sharding model: the partition function routes each job to a shard;
    each shard is a full engine over its own (smaller) machine pool, à la
    [lib/multi/partitioned.ml] lifted one level — jobs never migrate
    between shards, which is what makes shard decisions independent and
    the whole service embarrassingly parallel.  The competitive-ratio
    price of that independence is measured by experiment E26 next to
    E22's migration-gap numbers.

    Failover rides the `online-snapshot v1` wire format: {!checkpoint}
    cuts a consistent per-shard snapshot set at an exact global sequence
    number (marker tasks flow through the ingest queues, so no barrier
    stalls the shards), commits it atomically ({!Checkpoint}), and
    {!restore} rebuilds the service from the manifest alone.  Live
    {!migrate} moves a shard to another domain by drain → snapshot →
    restore-on-the-new-domain, through the same wire format. *)

open Speedscale_model
module Online := Speedscale_engine.Online

type t

type ev = {
  seq : int;  (** global arrival sequence number, dense from 0 *)
  shard : int;
  decision : Online.decision;
}
(** One merged-stream event.  Events come back in strictly increasing
    [seq] order across {!submit}/{!poll}/{!drain}. *)

val default_shard_fn : string * (Job.t -> int -> int)
(** [("id-mix-v1", fn)]: the default partition function — a fixed-key
    integer mix of [job.id] reduced mod the shard count.  Deterministic
    across runs and processes (no [Hashtbl.hash], no randomization). *)

val create :
  ?workers:int ->
  ?queue_cap:int ->
  ?shard_fn:string * (Job.t -> int -> int) ->
  engine:Online.engine ->
  params:(int -> Online.params) ->
  shards:int ->
  unit ->
  t
(** [create ~engine ~params ~shards ()] starts [shards] engine instances
    (shard [i] gets [params i]) on a fresh worker pool.  [workers]
    defaults to [shards]; [queue_cap] bounds each shard's ingest backlog
    (default 1024) — {!submit} applies backpressure by draining finished
    decisions while a queue is full.  The named [shard_fn] is recorded
    in checkpoints; {!restore} refuses a manifest whose tag differs.
    Raises [Invalid_argument] on [shards < 1] or inapplicable params. *)

val restore :
  ?workers:int ->
  ?queue_cap:int ->
  ?shard_fn:string * (Job.t -> int -> int) ->
  manifest:string ->
  unit ->
  t
(** Rebuild a service from a committed checkpoint: every shard engine is
    {!Online.restore}d from its snapshot, and the global sequence
    counter resumes from the manifest's [seq] — the caller re-feeds the
    input suffix from that point on.  Raises [Failure] on a missing or
    corrupt checkpoint ({!Checkpoint.load}) and on a [shard_fn] tag
    mismatch. *)

val shards : t -> int
val workers : t -> int

val seq : t -> int
(** Arrivals ingested so far, including those replayed into a restored
    state — i.e. the [seq] the next {!submit} will be assigned. *)

val engine : t -> Online.engine
val shard_params : t -> int -> Online.params

val shard_of : t -> Job.t -> int
(** Where the partition function routes this job. *)

val worker_of : t -> shard:int -> int

val submit : t -> Job.t -> ev list
(** Route one arrival to its shard and return any decisions that became
    emittable (possibly none — shards run asynchronously; possibly
    several).  Jobs must be submitted in non-decreasing release order.
    If the shard's engine rejects the job with an exception (duplicate
    id, decreasing release), that exception re-surfaces here or at the
    next drain point, in deterministic stream order. *)

val poll : t -> ev list
(** Non-blocking drain of every decision that is ready to emit. *)

val drain : t -> ev list
(** Block until every submitted arrival has been decided and emitted. *)

val checkpoint : t -> dir:string -> unit
(** Cut a checkpoint at the current {!seq} and commit it to [dir]
    (atomically — see {!Checkpoint}).  Marker tasks are enqueued behind
    each shard's pending arrivals, so the snapshot set is consistent
    with exactly the first [seq] submissions; the call blocks until all
    markers have executed, then writes from the calling thread. *)

val migrate : t -> shard:int -> worker:int -> unit
(** Live shard migration: drain the shard's queue (marker), snapshot its
    engine on the old domain, reassign the queue, and restore the
    snapshot {e on the new domain} before any queued arrival runs there.
    The merged decision stream is unaffected — snapshot/restore is an
    exact state transfer.  No-op when the shard already lives on
    [worker]. *)

val finalize : t -> Schedule.t array
(** Quiesce the pool and return each shard's final schedule. *)

val shutdown : t -> unit
(** Drain, stop the workers and join their domains.  Idempotent. *)
