open Speedscale_model
module Online = Speedscale_engine.Online
module Pool = Speedscale_obs.Pool

(* ------------------------------------------------------------------ *)
(* Vocabulary                                                           *)
(* ------------------------------------------------------------------ *)

type ev = { seq : int; shard : int; decision : Online.decision }

(* Fixed-key integer mix (SplitMix-style finalizer, constants truncated
   to OCaml's 63-bit int) reduced mod the shard count.  Deliberately not
   [Hashtbl.hash]: the partition must be a stable, documented function —
   it is recorded in every checkpoint manifest and a restored service
   must route the input suffix exactly as the dead one would have. *)
let id_mix (j : Job.t) k =
  let h = j.id in
  let h = h lxor (h lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x27D4EB2F165667C5 in
  let h = h lxor (h lsr 32) in
  (h land max_int) mod k

let default_shard_fn = ("id-mix-v1", id_mix)

(* ------------------------------------------------------------------ *)
(* Per-shard decision back-channel                                      *)
(* ------------------------------------------------------------------ *)

(* Workers push (seq, result) here in their shard's processing order;
   the merging thread pops.  One queue per shard, so FIFO order per
   shard equals submission order per shard. *)
module Outq = struct
  type 'a t = { m : Mutex.t; cv : Condition.t; q : 'a Queue.t }

  let create () =
    { m = Mutex.create (); cv = Condition.create (); q = Queue.create () }

  let push t x =
    Mutex.lock t.m;
    Queue.add x t.q;
    Condition.signal t.cv;
    Mutex.unlock t.m

  let try_pop t =
    Mutex.lock t.m;
    let r = Queue.take_opt t.q in
    Mutex.unlock t.m;
    r

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.cv t.m
    done;
    let r = Queue.take t.q in
    Mutex.unlock t.m;
    r
end

(* ------------------------------------------------------------------ *)
(* The service                                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  eng : Online.engine;
  k : int;
  tag : string;
  route : Job.t -> int -> int;
  shards : Online.t array;
      (* slot [s] is owned by whichever domain currently serves queue
         [s]; the merging thread touches it only after Pool.quiesce *)
  pool : Pool.t;
  outs : (int * (Online.decision, exn) result) Outq.t array;
  pending : (int * int) Queue.t;  (* (seq, shard), submission order *)
  mutable next_seq : int;
  mutable ready_rev : ev list;  (* drained during internal blocking *)
}

let shards t = t.k
let workers t = Pool.workers t.pool
let seq t = t.next_seq
let engine t = t.eng
let shard_params t i = Online.params_of t.shards.(i)
let shard_of t j = t.route j t.k
let worker_of t ~shard = Pool.worker_of t.pool ~queue:shard

let make ?workers ?queue_cap ?(shard_fn = default_shard_fn) ~engine
    ~next_seq states =
  let k = Array.length states in
  let workers = match workers with Some w -> w | None -> k in
  let tag, route = shard_fn in
  {
    eng = engine;
    k;
    tag;
    route;
    shards = states;
    pool = Pool.create ?queue_cap ~workers ~queues:k ();
    outs = Array.init k (fun _ -> Outq.create ());
    pending = Queue.create ();
    next_seq;
    ready_rev = [];
  }

let create ?workers ?queue_cap ?shard_fn ~engine ~params ~shards () =
  if shards < 1 then invalid_arg "Service.create: shards must be >= 1";
  let states = Array.init shards (fun i -> Online.start engine (params i)) in
  make ?workers ?queue_cap ?shard_fn ~engine ~next_seq:0 states

let restore ?workers ?queue_cap ?shard_fn ~manifest () =
  let mf, snaps = Checkpoint.load ~manifest in
  let tag, _ =
    match shard_fn with Some f -> f | None -> default_shard_fn
  in
  if not (String.equal mf.Checkpoint.shard_fn tag) then
    failwith
      (Fmt.str
         "Service.restore: manifest partitions with %s, this service with %s \
          — restoring would route the suffix differently"
         mf.Checkpoint.shard_fn tag);
  let engine =
    match Online.find mf.Checkpoint.engine with
    | Some e -> e
    | None ->
      failwith
        (Fmt.str "Service.restore: unknown engine %S" mf.Checkpoint.engine)
  in
  let states = Array.map Online.restore snaps in
  make ?workers ?queue_cap ?shard_fn ~engine ~next_seq:mf.Checkpoint.seq
    states

(* ---------------- merged-stream emission ---------------- *)

(* Emit the oldest submitted-but-unemitted decision, blocking until its
   shard has processed it.  Progress is guaranteed: the pending head is
   the oldest task of its shard's queue, and that shard's worker drains
   its queue in order regardless of what the merging thread does. *)
let emit_block t =
  let sq, s = Queue.pop t.pending in
  let sq', r = Outq.pop t.outs.(s) in
  assert (sq = sq');
  match r with
  | Ok d ->
    let e = { seq = sq; shard = s; decision = d } in
    t.ready_rev <- e :: t.ready_rev;
    e
  | Error e -> raise e

let try_emit t =
  match Queue.peek_opt t.pending with
  | None -> false
  | Some (_, s) -> (
    match Outq.try_pop t.outs.(s) with
    | None -> false
    | Some (sq', r) ->
      let sq, _ = Queue.pop t.pending in
      assert (sq = sq');
      (match r with
      | Ok d -> t.ready_rev <- { seq = sq; shard = s; decision = d } :: t.ready_rev
      | Error e -> raise e);
      true)

let flush t =
  let evs = List.rev t.ready_rev in
  t.ready_rev <- [];
  evs

let poll t =
  while try_emit t do
    ()
  done;
  flush t

(* Place one task on a shard's ingest queue, draining the merged stream
   into [ready_rev] whenever the queue is full (backpressure). *)
let submit_task t s task =
  while not (Pool.submit t.pool ~queue:s task) do
    ignore (emit_block t)
  done

let submit t j =
  let s = t.route j t.k in
  if s < 0 || s >= t.k then
    invalid_arg (Fmt.str "Service.submit: shard_fn routed job %d to %d" j.Job.id s);
  let sq = t.next_seq in
  let task () =
    (* shards.(s) is mutated only by tasks on ingest queue s, which the
       pool serializes on one domain at a time; the merging thread reads
       it only after Pool.quiesce *)
    let r =
      match Online.arrive t.shards.(s) j with
      | d -> Ok d
      | exception e -> Error e
    in
    Outq.push t.outs.(s) (sq, r)
  in
  submit_task t s task;
  t.next_seq <- sq + 1;
  Queue.add (sq, s) t.pending;
  poll t

let drain t =
  while not (Queue.is_empty t.pending) do
    ignore (emit_block t)
  done;
  flush t

(* ---------------- checkpoint and migration ---------------- *)

(* A little one-shot mailbox for marker results. *)
module Cell = struct
  type 'a t = { m : Mutex.t; cv : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); cv = Condition.create (); v = None }

  let put c x =
    Mutex.lock c.m;
    c.v <- Some x;
    Condition.signal c.cv;
    Mutex.unlock c.m

  let get c =
    Mutex.lock c.m;
    while c.v = None do
      Condition.wait c.cv c.m
    done;
    let v = Option.get c.v in
    Mutex.unlock c.m;
    v
end

let checkpoint t ~dir =
  let at = t.next_seq in
  let cells = Array.init t.k (fun _ -> Cell.create ()) in
  (* Markers ride the ingest queues behind every arrival submitted so
     far, so shard [s]'s snapshot covers exactly its share of the first
     [at] submissions — a consistent cut with no global barrier. *)
  for s = 0 to t.k - 1 do
    submit_task t s (fun () ->
        (* queue-confined: the marker runs on shard s's owning domain *)
        Cell.put cells.(s) (Online.snapshot t.shards.(s)))
  done;
  let snaps = Array.map Cell.get cells in
  Checkpoint.write ~dir ~engine:(Online.name t.eng) ~shard_fn:t.tag ~seq:at
    snaps

let migrate t ~shard ~worker =
  if shard < 0 || shard >= t.k then
    invalid_arg (Fmt.str "Service.migrate: bad shard %d" shard);
  if Pool.worker_of t.pool ~queue:shard <> worker then begin
    (* 1. drain: the marker runs after every queued arrival; 2. snapshot
       on the old domain *)
    let cell = Cell.create () in
    submit_task t shard (fun () ->
        Cell.put cell (Online.snapshot t.shards.(shard)));
    let snap = Cell.get cell in
    (* 3. hand the (now empty) queue to the new domain *)
    Pool.assign t.pool ~queue:shard ~worker;
    (* 4. restore on the new domain, ordered before any later arrival:
       the queue is empty here (the merging thread is the only submitter
       and it was blocked on the marker), so this cannot fail for
       capacity and is the queue's next task *)
    submit_task t shard (fun () ->
        t.shards.(shard) <- Online.restore snap)
  end

(* ---------------- end of stream ---------------- *)

let finalize t =
  Pool.quiesce t.pool;
  Array.map Online.finalize t.shards

let shutdown t = Pool.shutdown t.pool
