; slint baseline -- grandfathered findings, one (file line rule) per line.
; The goal state is an empty list: fix or explicitly suppress instead.
