(* The experiment suite: one function per table/figure of DESIGN.md's
   per-experiment index.  The paper is a theory paper, so each experiment
   verifies a stated theorem, lemma or structural claim numerically, or
   reproduces one of the paper's illustrative figures as a printed
   artifact.  EXPERIMENTS.md records the expected vs. measured shapes. *)

open Speedscale_util
open Speedscale_model
open Speedscale_chen
open Speedscale_single
open Speedscale_multi
open Speedscale_metrics
open Harness

(* ================================================================== *)
(* E1 — Theorem 3 upper bound: cost(PD) <= alpha^alpha * g(lambda)     *)
(* ================================================================== *)

let e1 () =
  section "E1" "Theorem 3 upper bound: cost(PD) <= alpha^alpha * g(lambda)";
  let tab =
    Tab.create ~title:"certified competitive ratio cost(PD) / g(lambda)"
      ~header:
        [ "alpha"; "m"; "seeds"; "mean"; "p90"; "max"; "alpha^alpha"; "violations" ]
  in
  let all_ok = ref true in
  let worst = ref 0.0 and total_violations = ref 0 in
  List.iter
    (fun alpha ->
      List.iter
        (fun machines ->
          let samples =
            List.init 8 (fun seed ->
                let inst =
                  random_instance ~alpha ~machines ~seed:(seed + 1) ~n:24
                in
                let r = Speedscale_core.Pd.run inst in
                Ratio.make ~cost:(Cost.total r.cost) ~lower_bound:r.dual_bound)
          in
          (* slint: allow unsafe-pow -- alpha ranges over positive literals *)
          let guarantee = alpha ** alpha in
          let a = Ratio.aggregate ~guarantee samples in
          if a.max_ratio /. guarantee > !worst then
            worst := a.max_ratio /. guarantee;
          total_violations := !total_violations + a.violations;
          if a.violations > 0 then all_ok := false;
          Tab.add_row tab
            [
              Printf.sprintf "%.2g" alpha;
              string_of_int machines;
              string_of_int a.count;
              Tab.cell_f a.mean_ratio;
              Tab.cell_f a.p90_ratio;
              Tab.cell_f a.max_ratio;
              Tab.cell_f guarantee;
              string_of_int a.violations;
            ])
        [ 1; 2; 4; 8 ])
    [ 1.5; 2.0; 2.5; 3.0 ];
  Tab.print tab;
  metric "worst_certified_ratio_vs_guarantee" !worst;
  counter "violations" !total_violations;
  verdict ~expected:"all certified ratios strictly below alpha^alpha, 0 violations"
    !all_ok

(* ================================================================== *)
(* E2 — Theorem 3 tightness: the adversarial family drives the ratio   *)
(*      towards alpha^alpha                                            *)
(* ================================================================== *)

let e2 () =
  section "E2"
    "Theorem 3 tightness: PD/OPT on the Bansal-Kimbrel-Pruhs family";
  let tab =
    Tab.create ~title:"ratio cost(PD) / cost(YDS) as n grows"
      ~header:[ "alpha"; "n"; "PD"; "OPT(YDS)"; "ratio"; "alpha^alpha" ]
  in
  let monotone = ref true and bounded = ref true in
  List.iter
    (fun alpha ->
      let last = ref 0.0 in
      List.iter
        (fun n ->
          let inst = Speedscale_workload.Generate.bkp_lower_bound ~alpha ~n () in
          let pd = Speedscale_core.Pd.run inst in
          let opt = Yds.energy inst.power (Array.to_list inst.jobs) in
          let ratio = Cost.total pd.cost /. opt in
          if ratio < !last -. 1e-9 then monotone := false;
          (* slint: allow unsafe-pow -- alpha ranges over positive literals *)
          if ratio > (alpha ** alpha) +. 1e-6 then bounded := false;
          last := ratio;
          Tab.add_row tab
            [
              Printf.sprintf "%g" alpha;
              string_of_int n;
              Tab.cell_f (Cost.total pd.cost);
              Tab.cell_f opt;
              Tab.cell_f ratio;
              (* slint: allow unsafe-pow -- alpha ranges over positive literals *)
              Tab.cell_f (alpha ** alpha);
            ])
        [ 5; 10; 20; 40; 80; 160; 320 ];
      metric (Printf.sprintf "final_ratio_alpha%g" alpha) !last)
    [ 2.0; 3.0 ];
  Tab.print tab;
  verdict
    ~expected:"ratio increases monotonically towards alpha^alpha, never above"
    (!monotone && !bounded)

(* ================================================================== *)
(* E3 — rejection-policy equivalence with Chan-Lam-Li                  *)
(* ================================================================== *)

let e3 () =
  section "E3" "PD's rejection policy equals the CLL threshold (Section 3)";
  (* part 1: the closed-form thresholds agree across alpha *)
  let tab =
    Tab.create ~title:"threshold speeds, PD (delta = alpha^(1-alpha)) vs CLL"
      ~header:[ "alpha"; "w"; "v"; "PD threshold"; "CLL threshold"; "delta" ]
  in
  let thresholds_agree = ref true in
  List.iter
    (fun alpha ->
      let power = Power.make alpha in
      List.iter
        (fun (w, v) ->
          let j = Job.make ~id:0 ~release:0.0 ~deadline:1.0 ~workload:w ~value:v in
          let pd_t = Speedscale_core.Rejection.threshold_speed power j in
          let cll_t = Cll.threshold_speed power j in
          if Float.abs (pd_t -. cll_t) > 1e-9 *. (1.0 +. cll_t) then
            thresholds_agree := false;
          Tab.add_row tab
            [
              Printf.sprintf "%g" alpha;
              Printf.sprintf "%g" w;
              Printf.sprintf "%g" v;
              Tab.cell_f pd_t;
              Tab.cell_f cll_t;
              Printf.sprintf "%.4g" (Power.delta_star power);
            ])
        [ (1.0, 1.0); (2.0, 5.0); (0.5, 10.0); (3.0, 0.2) ])
    [ 1.5; 2.0; 3.0 ];
  Tab.print tab;
  (* part 2: accept/reject decisions on fresh-arrival probes (the planned
     speed is unambiguous there) flip at the same critical value *)
  let probes = ref 0 and agreements = ref 0 in
  List.iter
    (fun alpha ->
      let power = Power.make alpha in
      List.iter
        (fun density ->
          List.iter
            (fun value_factor ->
              let w = 2.0 in
              let span = w /. density in
              let critical =
                Power.delta_star power *. w *. Power.deriv power density
              in
              let v = critical *. value_factor in
              let j =
                Job.make ~id:0 ~release:0.0 ~deadline:span ~workload:w ~value:v
              in
              let inst = Instance.make ~power ~machines:1 [ j ] in
              let pd_accepts =
                (Speedscale_core.Pd.run inst).rejected = []
              in
              let cll_accepts = (Cll.schedule inst).rejected = [] in
              incr probes;
              if pd_accepts = cll_accepts then incr agreements)
            [ 0.5; 0.9; 0.999; 1.001; 1.1; 2.0 ])
        [ 0.25; 1.0; 4.0 ])
    [ 1.5; 2.0; 3.0 ];
  note "fresh-arrival probes: %d/%d identical decisions" !agreements !probes;
  verdict ~expected:"identical thresholds and 100% decision agreement"
    (!thresholds_agree && !probes = !agreements)

(* ================================================================== *)
(* E4 — Figure 2: Chen schedule before/after a new job                 *)
(* ================================================================== *)

let e4 () =
  section "E4" "Figure 2: Chen et al.'s schedule before/after an arrival";
  let machines, length, loads, (new_id, new_load) =
    Speedscale_workload.Generate.figure2_loads ()
  in
  let power = Power.make 3.0 in
  let describe label pairs =
    let t = Chen.build ~machines ~length pairs in
    let p = Chen.partition t in
    note "%s:" label;
    List.iteri
      (fun i (id, w) ->
        note "  proc %d: job %d DEDICATED  load %.2f  speed %.2f  %s" i id w
          (w /. length)
          (Tab.bar ~width:24 ~max_value:8.0 (w /. length)))
      p.dedicated;
    if p.pool <> [] then begin
      note "  procs %d..%d: POOL at speed %.2f  %s"
        (List.length p.dedicated) (machines - 1) p.pool_speed
        (Tab.bar ~width:24 ~max_value:8.0 p.pool_speed);
      List.iter (fun (id, w) -> note "    pool job %d: load %.2f" id w) p.pool
    end;
    note "  interval energy P_k = %.3f" (Chen.energy power t);
    (t, p)
  in
  let _, before = describe "(a) before the new job" loads in
  let _, after =
    describe "(b) after the new job" ((new_id, new_load) :: loads)
  in
  note "";
  verdict
    ~expected:
      "the arrival enlarges the pool speed and can flip dedicated/pool roles"
    (after.pool_speed > before.pool_speed)

(* ================================================================== *)
(* E5 — Figure 3: PD schedules more conservatively than OA             *)
(* ================================================================== *)

let e5 () =
  section "E5" "Figure 3: structural difference between PD and OA";
  let power = Power.make 2.0 in
  let inst = Speedscale_workload.Generate.figure3 ~power in
  let pd = Speedscale_core.Pd.run inst in
  let oa =
    Oa.schedule (Instance.with_values inst (fun _ -> Float.infinity))
  in
  let profile name (s : Schedule.t) =
    note "%s:" name;
    List.iter
      (fun (t0, t1, speed) ->
        note "  [%4.2f, %4.2f) speed %.3f  %s" t0 t1 speed
          (Tab.bar ~width:30 ~max_value:2.5 speed))
      (Schedule.speed_profile s ~proc:0)
  in
  profile "PD (never redistributes committed work)" pd.schedule;
  profile "OA (replans everything at each arrival)" oa;
  note "";
  note "PD, as a Gantt chart:";
  print_string (Gantt.render ~width:60 pd.schedule);
  note "OA:";
  print_string (Gantt.render ~width:60 oa);
  let last_speed (s : Schedule.t) =
    Schedule.speed_profile s ~proc:0
    |> List.fold_left (fun acc (_, t1, sp) -> if t1 >= 3.0 -. 1e-9 then sp else acc) 0.0
  in
  let pd_last = last_speed pd.schedule and oa_last = last_speed oa in
  note "";
  note "speed in the last atomic interval [2,3): PD %.3f vs OA %.3f" pd_last
    oa_last;
  verdict
    ~expected:
      "PD leaves more slack in the last interval (lower speed there than OA)"
    (pd_last < oa_last -. 1e-9)

(* ================================================================== *)
(* E6 — the delta parameter: alpha^(1-alpha) is the right choice       *)
(* ================================================================== *)

let e6 () =
  section "E6" "delta sweep: rejection quality across delta/delta*";
  let alpha = 2.0 in
  let tab =
    Tab.create
      ~title:"mean/max cost ratio to the exact optimum over 12 seeds (m=1, n=9)"
      ~header:
        [ "delta/delta*"; "mean ratio"; "max ratio"; "mean rejected"; "bound ok" ]
  in
  let star = Power.delta_star (Power.make alpha) in
  let results =
    List.map
      (fun factor ->
        let delta = star *. factor in
        let ratios, rejected =
          List.split
            (List.init 12 (fun seed ->
                 let inst =
                   random_instance ~alpha ~machines:1 ~seed:(100 + seed) ~n:9
                 in
                 let r = Speedscale_core.Pd.run ~delta inst in
                 let opt = Opt.solve inst in
                 ( Cost.total r.cost /. opt.cost,
                   float_of_int (List.length r.rejected) )))
        in
        let mean = Stats.mean ratios and worst = Stats.max_of ratios in
        let ok = worst <= (alpha ** alpha) +. 1e-6 in
        Tab.add_row tab
          [
            Printf.sprintf "%.2fx" factor;
            Tab.cell_f mean;
            Tab.cell_f worst;
            Tab.cell_f (Stats.mean rejected);
            (if ok then "yes" else "NO");
          ];
        (factor, worst))
      [ 0.25; 0.5; 1.0; 2.0; 4.0 ]
  in
  Tab.print tab;
  (* the guarantee is proven only for delta <= delta*; delta > delta* can
     overshoot while delta = delta* must stay within alpha^alpha *)
  let at_star = List.assoc 1.0 results in
  verdict
    ~expected:
      "worst ratio at delta* within alpha^alpha; larger delta rejects more"
    (at_star <= (alpha ** alpha) +. 1e-6)

(* ================================================================== *)
(* E7 — profitable single processor: PD vs CLL                         *)
(* ================================================================== *)

let e7 () =
  section "E7" "PD vs Chan-Lam-Li against the exact optimum (m=1)";
  let alpha = 2.0 in
  let tab =
    Tab.create ~title:"cost ratios to OPT-exact over 15 seeds (n=9)"
      ~header:[ "algorithm"; "mean"; "p90"; "max"; "proven bound" ]
  in
  let pd_samples = ref [] and cll_samples = ref [] in
  List.iter
    (fun seed ->
      let inst = random_instance ~alpha ~machines:1 ~seed:(200 + seed) ~n:9 in
      let opt = Opt.solve inst in
      let pd = Speedscale_core.Pd.run inst in
      let cll_cost = Cost.total (Cll.cost inst) in
      pd_samples :=
        Ratio.make ~cost:(Cost.total pd.cost) ~lower_bound:opt.cost
        :: !pd_samples;
      cll_samples :=
        Ratio.make ~cost:cll_cost ~lower_bound:opt.cost :: !cll_samples)
    (List.init 15 Fun.id);
  let bound_pd = alpha ** alpha in
  let bound_cll = bound_pd +. (2.0 *. Float.exp 1.0 *. alpha) in
  let row name samples bound =
    let a = Ratio.aggregate ~guarantee:bound samples in
    Tab.add_row tab
      [
        name;
        Tab.cell_f a.mean_ratio;
        Tab.cell_f a.p90_ratio;
        Tab.cell_f a.max_ratio;
        Tab.cell_f bound;
      ];
    a
  in
  let a_pd = row "PD (this paper)" !pd_samples bound_pd in
  let a_cll = row "CLL" !cll_samples bound_cll in
  Tab.print tab;
  verdict
    ~expected:
      "both within their bounds; PD's bound (alpha^alpha) is the smaller one"
    (a_pd.max_ratio <= bound_pd +. 1e-6
    && a_cll.max_ratio <= bound_cll +. 1e-6
    && bound_pd < bound_cll)

(* ================================================================== *)
(* E8 — multiprocessor: PD against the exact optimum across m          *)
(* ================================================================== *)

let e8 () =
  section "E8" "true competitive ratio vs exact OPT across machine counts";
  let alpha = 2.0 in
  let tab =
    Tab.create ~title:"cost(PD)/cost(OPT-exact), 6 seeds each (n=7)"
      ~header:[ "m"; "mean"; "max"; "alpha^alpha"; "violations" ]
  in
  let ok = ref true in
  List.iter
    (fun machines ->
      let samples =
        List.init 6 (fun seed ->
            let inst =
              random_instance ~alpha ~machines ~seed:(300 + seed) ~n:7
            in
            let pd = Speedscale_core.Pd.run inst in
            let opt = Opt.solve inst in
            Ratio.make ~cost:(Cost.total pd.cost) ~lower_bound:opt.cost)
      in
      let a = Ratio.aggregate ~guarantee:(alpha ** alpha) samples in
      (* allow 2% numerical slack from the convex solver inside OPT *)
      if a.max_ratio > (alpha ** alpha) *. 1.02 then ok := false;
      Tab.add_row tab
        [
          string_of_int machines;
          Tab.cell_f a.mean_ratio;
          Tab.cell_f a.max_ratio;
          Tab.cell_f (alpha ** alpha);
          string_of_int a.violations;
        ])
    [ 1; 2; 3 ];
  Tab.print tab;
  verdict ~expected:"all ratios <= alpha^alpha for every machine count" !ok

(* ================================================================== *)
(* E9 — energy-only degeneration: the classical online algorithms      *)
(* ================================================================== *)

let e9 () =
  section "E9" "energy-only setting (infinite values): classical baselines";
  let alpha = 2.0 in
  let tab =
    Tab.create ~title:"energy ratio to YDS over 10 seeds (m=1, n=14)"
      ~header:[ "algorithm"; "mean"; "max"; "known guarantee" ]
  in
  let collect f =
    List.init 10 (fun seed ->
        let inst = random_must_finish ~alpha ~machines:1 ~seed:(400 + seed) ~n:14 in
        let yds = Yds.energy inst.power (Array.to_list inst.jobs) in
        f inst /. yds)
  in
  let pd_r = collect (fun i -> Cost.total (Speedscale_core.Pd.run i).cost) in
  let oa_r = collect Oa.energy in
  let avr_r = collect Avr.energy in
  let bkp_r = collect (fun i -> Bkp.energy ~steps_per_interval:32 i) in
  let qoa_r = collect (fun i -> Qoa.energy ~steps_per_interval:16 i) in
  let row name rs bound =
    Tab.add_row tab
      [ name; Tab.cell_f (Stats.mean rs); Tab.cell_f (Stats.max_of rs); bound ]
  in
  row "PD (huge values)" pd_r "alpha^alpha = 4";
  row "OA" oa_r "alpha^alpha = 4";
  row "qOA" qoa_r "4^a/(2 sqrt(ea)) = 3.43";
  row "AVR" avr_r "2^(a-1) a^a = 8";
  row "BKP" bkp_r "~2(a/(a-1))^a e^a = 59.1";
  Tab.print tab;
  let ok =
    Stats.max_of pd_r <= 4.0 +. 1e-6
    && Stats.max_of oa_r <= 4.0 +. 1e-6
    && Stats.max_of avr_r <= 8.0 +. 1e-6
  in
  verdict
    ~expected:"every algorithm within its known guarantee; YDS never beaten"
    (ok
    && List.for_all (fun r -> r >= 1.0 -. 1e-6) (pd_r @ oa_r @ avr_r @ bkp_r))

(* ================================================================== *)
(* E10 — Propositions 1 and 2, numerically                             *)
(* ================================================================== *)

let e10 () =
  section "E10" "Prop 1 (gradient of P_k) and Prop 2 (arrival monotonicity)";
  let power = Power.make 3.0 in
  let st = Rand.make 77 in
  let max_grad_err = ref 0.0 and prop2_violations = ref 0 in
  let trials = 500 in
  for _ = 1 to trials do
    let m = 1 + Random.State.int st 5 in
    let n = 1 + Random.State.int st 10 in
    let l = Rand.uniform st ~lo:0.2 ~hi:3.0 in
    let loads =
      List.init n (fun i -> (i, Rand.uniform st ~lo:0.05 ~hi:8.0))
    in
    let t = Chen.build ~machines:m ~length:l loads in
    (* gradient vs central difference on a random coordinate *)
    let idx = Random.State.int st n in
    let w = List.assoc idx loads in
    let h = 1e-6 *. (1.0 +. w) in
    let with_load x =
      Chen.build ~machines:m ~length:l
        (List.map (fun (i, v) -> (i, if i = idx then x else v)) loads)
    in
    let lo = with_load (w -. h) and hi = with_load (w +. h) in
    let stable =
      List.length (Chen.partition lo).dedicated
      = List.length (Chen.partition hi).dedicated
    in
    if stable then begin
      let fd = (Chen.energy power hi -. Chen.energy power lo) /. (2.0 *. h) in
      let grad = Power.deriv power (Chen.speed_of_job t idx) in
      let err = Float.abs (fd -. grad) /. (1.0 +. Float.abs grad) in
      if err > !max_grad_err then max_grad_err := err
    end;
    (* Prop 2 *)
    let z = Rand.uniform st ~lo:0.05 ~hi:8.0 in
    let t' = Chen.build ~machines:m ~length:l ((n, z) :: loads) in
    let lb = Chen.processor_loads t and la = Chen.processor_loads t' in
    Array.iteri
      (fun i before ->
        let diff = la.(i) -. before in
        if diff < -1e-9 || diff > z +. 1e-9 then incr prop2_violations)
      lb
  done;
  note "%d randomized trials" trials;
  note "max relative |finite difference - P'(s_j)| : %.2e" !max_grad_err;
  note "Prop 2 violations (0 <= L'_i - L_i <= z)   : %d" !prop2_violations;
  verdict ~expected:"gradient error ~1e-4 or below; zero Prop 2 violations"
    (!max_grad_err < 1e-3 && !prop2_violations = 0)

(* ================================================================== *)
(* E11 — the duality chain                                             *)
(* ================================================================== *)

let e11 () =
  section "E11" "duality chain: g(lambda) <= CP <= IMP(=OPT) <= cost(PD)";
  let alpha = 2.0 in
  let tab =
    Tab.create ~title:"per-seed chain values (m=1, n=6)"
      ~header:[ "seed"; "g(lambda)"; "CP relax"; "OPT exact"; "cost(PD)"; "chain" ]
  in
  let ok = ref true in
  List.iter
    (fun seed ->
      let inst = random_instance ~alpha ~machines:1 ~seed:(500 + seed) ~n:6 in
      let pd = Speedscale_core.Pd.run inst in
      let cp =
        Speedscale_solver.Cp.solve ~max_iters:8000
          (Speedscale_solver.Cp.make inst)
          Speedscale_solver.Cp.Profitable
      in
      let opt = Opt.solve inst in
      let tol = 2e-2 in
      let chain_ok =
        pd.dual_bound <= cp.objective +. (tol *. (1.0 +. cp.objective))
        && cp.objective <= opt.cost +. (tol *. (1.0 +. opt.cost))
        && opt.cost <= Cost.total pd.cost +. (tol *. (1.0 +. Cost.total pd.cost))
      in
      if not chain_ok then ok := false;
      Tab.add_row tab
        [
          string_of_int seed;
          Tab.cell_f pd.dual_bound;
          Tab.cell_f cp.objective;
          Tab.cell_f opt.cost;
          Tab.cell_f (Cost.total pd.cost);
          (if chain_ok then "ok" else "BROKEN");
        ])
    (List.init 8 Fun.id);
  Tab.print tab;
  verdict ~expected:"the chain holds on every seed" !ok

(* ================================================================== *)
(* E13 — anatomy of the proof: Section 4's objects on a real run       *)
(* ================================================================== *)

let e13 () =
  section "E13"
    "anatomy of Theorem 3's proof: traces, categories, Lemmas 9-11";
  let alpha = 2.5 in
  let power = Power.make alpha in
  let inst =
    Speedscale_workload.Generate.datacenter ~power ~machines:4 ~seed:31 ~n:40
  in
  let r = Speedscale_core.Pd.run inst in
  let a = Speedscale_core.Analysis.analyze inst r in
  let tab =
    Tab.create ~title:"job categories and their dual contributions"
      ~header:
        [ "category"; "#jobs"; "sum lambda"; "sum E_lambda"; "sum E_PD(trace)";
          "sum value"; "g_i" ]
  in
  let cat_row name cat g_i =
    let members =
      Array.to_list a.jobs
      |> List.filter (fun ji -> ji.Speedscale_core.Analysis.category = cat)
    in
    let open Speedscale_core.Analysis in
    Tab.add_row tab
      [
        name;
        string_of_int (List.length members);
        Tab.cell_f (Ksum.sum_by (fun ji -> ji.lambda) members);
        Tab.cell_f (Ksum.sum_by (fun ji -> ji.e_lambda) members);
        Tab.cell_f (Ksum.sum_by (fun ji -> ji.e_pd) members);
        Tab.cell_f
          (Ksum.sum_by (fun ji -> (Instance.job inst ji.id).value) members);
        Tab.cell_f g_i;
      ]
  in
  cat_row "J1 finished" Speedscale_core.Analysis.Finished a.g1;
  cat_row "J2 unfinished low-yield" Speedscale_core.Analysis.Low_yield a.g2;
  cat_row "J3 unfinished high-yield" Speedscale_core.Analysis.High_yield a.g3;
  Tab.print tab;
  note "g(lambda) = g1+g2+g3 = %.4f;  cost(PD) = %.4f;  alpha^alpha * g = %.4f"
    a.g_total a.cost_pd
    ((alpha ** alpha) *. a.g_total);
  note "checks: traces disjoint=%b  Prop7=%b  Prop8b=%b  L9=%b  L10=%b  L11=%b  Thm3=%b"
    a.traces_disjoint a.prop7_ok a.prop8b_ok a.lemma9_ok a.lemma10_ok
    a.lemma11_ok a.theorem3_ok;
  (* A crafted instance with a HIGH-YIELD job, so Lemma 11 is exercised
     non-vacuously: a long, low-density accepted job (cheap multiplier)
     plus a rejected job whose value-derived dual speed tops it, making
     the optimal infeasible solution schedule 2-2.5x its workload. *)
  let p2 = Power.make 2.0 in
  let crafted =
    Instance.make ~power:p2 ~machines:1
      [
        Job.make ~id:0 ~release:0.0 ~deadline:10.0 ~workload:4.0 ~value:1e9;
        Job.make ~id:1 ~release:0.0 ~deadline:10.0 ~workload:1.0 ~value:0.44;
      ]
  in
  let rc = Speedscale_core.Pd.run crafted in
  let ac = Speedscale_core.Analysis.analyze crafted rc in
  let j3 =
    Array.to_list ac.jobs
    |> List.filter (fun ji ->
           ji.Speedscale_core.Analysis.category
           = Speedscale_core.Analysis.High_yield)
  in
  note "";
  note "crafted high-yield witness: job 1 rejected with xhat = %.3f (> %.3f)"
    (match j3 with
     | ji :: _ -> ji.Speedscale_core.Analysis.xhat
     | [] -> Float.nan)
    ((2.0 -. (2.0 ** -1.0)) /. 1.0);
  note "Lemma 11 on the witness: g3 = %.4f, checks Thm3=%b L11=%b" ac.g3
    ac.theorem3_ok ac.lemma11_ok;
  verdict
    ~expected:
      "every lemma-level inequality of Section 4 holds, incl. a non-vacuous \
       Lemma 11"
    (a.traces_disjoint && a.prop7_ok && a.prop8b_ok && a.lemma9_ok
   && a.lemma10_ok && a.lemma11_ok && a.theorem3_ok && j3 <> []
   && ac.lemma11_ok && ac.theorem3_ok)

(* ================================================================== *)
(* E14 — structural statistics: how calm are the schedules?            *)
(* ================================================================== *)

let e14 () =
  section "E14" "schedule structure: preemptions, migrations, utilization";
  let alpha = 2.0 in
  let tab =
    Tab.create
      ~title:"structural statistics (datacenter workload, must-finish view)"
      ~header:
        [ "algorithm"; "m"; "slices"; "preempt"; "migrate"; "avg speed";
          "util"; "energy" ]
  in
  let all_valid = ref true in
  let add name machines (inst : Instance.t) sched =
    (match Schedule.validate inst sched with
    | Ok () -> ()
    | Error _ -> all_valid := false);
    let st = Structure.of_schedule sched in
    Tab.add_row tab
      [
        name;
        string_of_int machines;
        string_of_int st.n_slices;
        string_of_int st.preemptions;
        string_of_int st.migrations;
        Tab.cell_f st.avg_speed;
        Tab.cell_f st.utilization;
        Tab.cell_f (Schedule.energy inst.power sched);
      ]
  in
  (* multiprocessor: PD vs mOA *)
  let power = Power.make alpha in
  let inst4 =
    Instance.with_values
      (Speedscale_workload.Generate.datacenter ~power ~machines:4 ~seed:8 ~n:24)
      (fun _ -> Float.infinity)
  in
  add "PD" 4 inst4 (Speedscale_core.Pd.run inst4).schedule;
  add "mOA" 4 inst4 (Moa.schedule inst4);
  (* single processor: the full lineup *)
  let inst1 = random_must_finish ~alpha ~machines:1 ~seed:8 ~n:12 in
  add "PD" 1 inst1 (Speedscale_core.Pd.run inst1).schedule;
  add "OA" 1 inst1 (Oa.schedule inst1);
  add "qOA" 1 inst1 (Qoa.schedule ~steps_per_interval:16 inst1);
  add "AVR" 1 inst1 (Avr.schedule inst1);
  add "BKP" 1 inst1 (Bkp.schedule ~steps_per_interval:32 inst1);
  add "YDS (offline)" 1 inst1 (Yds.schedule inst1);
  Tab.print tab;
  verdict ~expected:"every schedule passes full feasibility validation"
    !all_valid

(* ================================================================== *)
(* E15 — discrete speed levels: the cost of real DVFS grids            *)
(* ================================================================== *)

let e15 () =
  section "E15"
    "discrete DVFS levels: energy overhead of emulating PD's schedule";
  let power = Power.make 3.0 in
  let inst =
    Speedscale_workload.Generate.datacenter ~power ~machines:4 ~seed:21 ~n:40
  in
  let r = Speedscale_core.Pd.run inst in
  let st = Structure.of_schedule r.schedule in
  let top = st.max_speed *. 1.05 in
  let base = 0.02 in
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf
           "overhead = E(discrete)/E(continuous); grid spans [%.2g, %.2g]"
           base top)
      ~header:[ "levels"; "grid ratio"; "energy overhead"; "bar" ]
  in
  let overheads =
    List.map
      (fun count ->
        (* slint: allow unsafe-pow -- top and base are positive speeds *)
        let ratio = (top /. base) ** (1.0 /. float_of_int (count - 1)) in
        let levels =
          Speedscale_discrete.Levels.geometric ~base ~ratio ~count
        in
        let o =
          Speedscale_discrete.Levels.energy_overhead power levels r.schedule
        in
        Tab.add_row tab
          [
            string_of_int count;
            Tab.cell_f ratio;
            Tab.cell_f o;
            Tab.bar ~width:30 ~max_value:0.6 (o -. 1.0);
          ];
        o)
      [ 2; 3; 5; 9; 17; 33; 65 ]
  in
  Tab.print tab;
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && monotone rest
    | _ -> true
  in
  verdict
    ~expected:
      "overhead >= 1, decreasing monotonically to ~1 as the grid densifies"
    (List.for_all (fun o -> o >= 1.0 -. 1e-9) overheads
    && monotone overheads
    && List.nth overheads (List.length overheads - 1) < 1.02)

(* ================================================================== *)
(* E16 — provisioning: minimum feasible speed cap vs fleet size        *)
(* ================================================================== *)

let e16 () =
  section "E16"
    "provisioning: Horn-flow minimum speed cap vs the algorithms' peaks";
  let alpha = 2.0 in
  let tab =
    Tab.create
      ~title:"min feasible cap (max-flow bisection) and realized peak speeds"
      ~header:
        [ "m"; "min cap s*"; "PD peak"; "OPT-energy peak"; "peak/s* (PD)" ]
  in
  let ok = ref true in
  let caps =
    List.map
      (fun machines ->
        let inst =
          Instance.with_values
            (random_must_finish ~alpha ~machines ~seed:77 ~n:16)
            (fun _ -> Float.infinity)
        in
        let cap = Speedscale_flow.Feasibility.min_speed_cap inst in
        let pd_peak =
          (Structure.of_schedule (Speedscale_core.Pd.run inst).schedule)
            .max_speed
        in
        let opt_peak =
          (Structure.of_schedule (Mopt.schedule inst)).max_speed
        in
        (* no schedule can peak below the feasibility threshold *)
        if pd_peak < cap -. 1e-6 || opt_peak < cap -. 1e-3 then ok := false;
        Tab.add_row tab
          [
            string_of_int machines;
            Tab.cell_f cap;
            Tab.cell_f pd_peak;
            Tab.cell_f opt_peak;
            Tab.cell_f (pd_peak /. cap);
          ];
        cap)
      [ 1; 2; 4; 8 ]
  in
  Tab.print tab;
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && decreasing rest
    | _ -> true
  in
  verdict
    ~expected:
      "s* decreases with m; every algorithm's peak speed is >= s*"
    (!ok && decreasing caps)

(* ================================================================== *)
(* E17 — "canonical algorithms waste potential" (the intro's claim)    *)
(* ================================================================== *)

let e17 () =
  section "E17"
    "adaptive pricing vs static admission rules on a two-phase load";
  let power = Power.make 2.0 in
  (* Phase 1 (quiet): staggered cheap-to-run jobs, all worth accepting.
     Phase 2 (congestion burst): same value density, but 12 jobs collide
     in one window — finishing all is ruinous.  A static value-density
     rule cannot tell the phases apart; PD prices the congestion. *)
  let quiet =
    List.init 10 (fun i ->
        Job.make ~id:i
          ~release:(float_of_int i)
          ~deadline:(float_of_int i +. 2.0)
          ~workload:1.0 ~value:3.0)
  in
  let burst =
    List.init 12 (fun i ->
        Job.make ~id:(10 + i) ~release:20.0 ~deadline:22.0 ~workload:1.0
          ~value:3.0)
  in
  let inst = Instance.make ~power ~machines:1 (quiet @ burst) in
  let pd = Speedscale_core.Pd.run inst in
  let pd_cost = Cost.total pd.cost in
  let report name (sched : Schedule.t) =
    let c = Schedule.cost inst sched in
    (name, Cost.total c, c, List.length sched.rejected)
  in
  let thresholds = [ 0.5; 1.0; 2.0; 2.9; 3.1; 4.0; 8.0 ] in
  let best_c, best_cost =
    Speedscale_sim.Baselines.best_static_threshold ~candidates:thresholds inst
  in
  let rows =
    [
      ("PD (adaptive pricing)", pd_cost,
       Schedule.cost inst pd.schedule, List.length pd.rejected);
      report "admit everything (OA)" (Speedscale_sim.Baselines.admit_all inst);
      report
        (Printf.sprintf "best static v/w >= %.2g (hindsight)" best_c)
        (Speedscale_sim.Baselines.value_density_threshold best_c inst);
      report "reject everything" (Speedscale_sim.Baselines.reject_all inst);
    ]
  in
  metric "pd_total" pd_cost;
  metric "best_static_total" (Cost.total best_cost);
  counter "pd_rejected" (List.length pd.rejected);
  let tab =
    Tab.create
      ~title:
        "two-phase workload: 10 staggered cheap jobs, then a 12-job burst \
         (all jobs have v/w = 3)"
      ~header:[ "policy"; "energy"; "lost value"; "total"; "rejected" ]
  in
  List.iter
    (fun (name, total, (c : Cost.t), rej) ->
      Tab.add_row tab
        [
          name;
          Tab.cell_f c.energy;
          Tab.cell_f c.lost_value;
          Tab.cell_f total;
          Printf.sprintf "%d/22" rej;
        ])
    rows;
  Tab.print tab;
  note "dual lower bound on OPT: %.4f;  PD certified within %.2fx"
    pd.dual_bound (pd_cost /. pd.dual_bound);
  let statics =
    List.map (fun (_, t, _, _) -> t) (List.tl rows)
  in
  verdict
    ~expected:
      "PD beats every static rule, including the hindsight-best threshold"
    (List.for_all (fun t -> pd_cost < t -. 1e-6) statics)

(* ================================================================== *)
(* E18 — multiprocessor energy-only lineup                             *)
(* ================================================================== *)

let e18 () =
  section "E18"
    "multiprocessor energy-only: PD vs mOA vs mAVR against the optimum";
  let alpha = 2.0 in
  let tab =
    Tab.create ~title:"energy ratio to OPT-energy, 6 seeds each (n=12)"
      ~header:
        [ "m"; "PD mean"; "PD max"; "mOA mean"; "mOA max"; "mAVR mean";
          "mAVR max" ]
  in
  let ok = ref true in
  List.iter
    (fun machines ->
      let collect f =
        List.init 6 (fun seed ->
            let inst =
              random_must_finish ~alpha ~machines ~seed:(600 + seed) ~n:12
            in
            let opt = Mopt.energy inst in
            f inst /. opt)
      in
      let pd = collect (fun i -> Cost.total (Speedscale_core.Pd.run i).cost) in
      let moa = collect Moa.energy in
      let mavr = collect Mavr.energy in
      (* PD and mOA carry the alpha^alpha guarantee; mAVR inherits AVR's
         2^(alpha-1) alpha^alpha in spirit.  2% slack for the numeric
         optimum. *)
      if Stats.max_of pd > (alpha ** alpha) *. 1.02 then ok := false;
      if Stats.max_of moa > (alpha ** alpha) *. 1.02 then ok := false;
      List.iter
        (fun r -> if r < 1.0 -. 2e-2 then ok := false)
        (pd @ moa @ mavr);
      Tab.add_row tab
        [
          string_of_int machines;
          Tab.cell_f (Stats.mean pd);
          Tab.cell_f (Stats.max_of pd);
          Tab.cell_f (Stats.mean moa);
          Tab.cell_f (Stats.max_of moa);
          Tab.cell_f (Stats.mean mavr);
          Tab.cell_f (Stats.max_of mavr);
        ])
    [ 1; 2; 4 ];
  Tab.print tab;
  verdict
    ~expected:
      "no ratio below 1; PD and mOA within alpha^alpha at every m"
    !ok

(* ================================================================== *)
(* E19 — the migration gap: what the model's free migration buys        *)
(* ================================================================== *)

let e19 () =
  section "E19"
    "migration gap: partitioned (non-migratory) heuristics vs the \
     migratory optimum";
  let alpha = 2.0 in
  let tab =
    Tab.create
      ~title:"energy ratio to the migratory optimum, 6 seeds each (n=14)"
      ~header:
        [ "m"; "least-work mean"; "least-work max"; "least-energy mean";
          "least-energy max"; "mOA (migratory) mean" ]
  in
  let ok = ref true in
  List.iter
    (fun machines ->
      let collect f =
        List.init 6 (fun seed ->
            let inst =
              random_must_finish ~alpha ~machines ~seed:(700 + seed) ~n:14
            in
            let opt = Mopt.energy inst in
            f inst /. opt)
      in
      let lw =
        collect (Partitioned.energy ~heuristic:Partitioned.Least_work)
      in
      let le =
        collect
          (Partitioned.energy ~heuristic:Partitioned.Least_energy_increase)
      in
      let moa = collect Moa.energy in
      List.iter
        (fun r -> if r < 1.0 -. 2e-2 then ok := false)
        (lw @ le @ moa);
      Tab.add_row tab
        [
          string_of_int machines;
          Tab.cell_f (Stats.mean lw);
          Tab.cell_f (Stats.max_of lw);
          Tab.cell_f (Stats.mean le);
          Tab.cell_f (Stats.max_of le);
          Tab.cell_f (Stats.mean moa);
        ])
    [ 2; 4 ];
  Tab.print tab;
  verdict
    ~expected:
      "partitioned heuristics pay a visible migration gap; nothing beats \
       the migratory optimum"
    !ok

(* ================================================================== *)
(* E20 — scaling: PD stays online at realistic sizes                   *)
(* ================================================================== *)

let e20 () =
  section "E20" "scaling: PD wall time and certificate quality vs n";
  let tab =
    Tab.create ~title:"diurnal workload, m = 8, alpha = 3"
      ~header:
        [ "n"; "wall (ms)"; "per arrival (us)"; "probes/arr";
          "certified ratio"; "rejected" ]
  in
  let ok = ref true in
  List.iter
    (fun n ->
      let inst =
        Speedscale_workload.Generate.diurnal ~power:(Power.make 3.0)
          ~machines:8 ~seed:13 ~n ()
      in
      (* drive the instrumented arrival loop directly: the per-arrival
         observer gives deterministic work counters (probes, intervals,
         breakpoints), the wall clock stays in the record's timing slot *)
      let pd =
        Speedscale_core.Pd.create ~power:inst.power
          ~machines:inst.machines ()
      in
      let rejected = ref 0 in
      let max_probes = ref 0 and max_bps = ref 0 in
      Speedscale_core.Pd.set_observer pd
        (Some
           (fun (s : Speedscale_core.Pd.arrival_stats) ->
             if not s.accepted then incr rejected;
             if s.probes > !max_probes then max_probes := s.probes;
             if s.breakpoints > !max_bps then max_bps := s.breakpoints));
      let t0 = Harness.now () in
      Array.iter
        (fun j -> ignore (Speedscale_core.Pd.arrive pd j))
        inst.jobs;
      let dt = Harness.now () -. t0 in
      let cost =
        Cost.total (Schedule.cost inst (Speedscale_core.Pd.schedule pd))
      in
      let dual = Speedscale_core.Pd.certificate pd in
      let guarantee = Power.competitive_bound inst.power in
      let ratio = cost /. dual in
      if ratio > 27.0 +. 1e-6 then ok := false;
      if cost > (guarantee *. dual) +. 1e-6 then ok := false;
      let st = Speedscale_core.Pd.stats pd in
      if n = 800 then begin
        metric "certified_ratio_n800" ratio;
        counter "rejected_n800" !rejected
      end;
      add_record
        (Speedscale_obs.Record.with_wall ~wall_s:dt
           (Speedscale_obs.Record.make
              ~id:(Printf.sprintf "E20/arrivals-n%d" n)
              ~params:
                [
                  ("n", Speedscale_obs.Record.P_int n);
                  ("machines", Speedscale_obs.Record.P_int 8);
                ]
              ~counters:
                [
                  ("probes", st.probes);
                  ("intervals", st.intervals);
                  ("breakpoints", st.breakpoints);
                  ("max_probes_per_arrival", !max_probes);
                  ("max_breakpoints_per_arrival", !max_bps);
                  ("rejected", !rejected);
                ]
              Speedscale_obs.Record.Timing));
      Tab.add_row tab
        [
          string_of_int n;
          Tab.cell_f (dt *. 1000.0);
          Tab.cell_f (dt *. 1e6 /. float_of_int n);
          Tab.cell_f (float_of_int st.probes /. float_of_int n);
          Tab.cell_f ratio;
          Printf.sprintf "%d/%d" !rejected n;
        ])
    [ 50; 100; 200; 400; 800 ];
  Tab.print tab;
  verdict
    ~expected:
      "per-arrival cost grows mildly; breakpoint-walk water-filling keeps \
       the certificate intact at every size"
    !ok

(* ================================================================== *)
(* E24 — the E20 scaling series continued under GC, two more decades    *)
(* ================================================================== *)

(* The tree timeline + GC arrival path at sizes the flat timeline could
   not reach (doc/PERF.md).  Verdict inputs are deterministic counters
   only; the resident_* counters are memory gauges that `psched
   bench-diff` fails on growth, like a timing regression.  For the two
   smaller rungs the whole stream is replayed through the reference
   bisection solver (same gc state) and decisions must agree: acceptance
   bit for bit, multipliers to solver tolerance. *)
let e24 () =
  section "E24" "gc soak ladder: bounded-memory PD from n = 10^3 to 10^5";
  let ok = ref true in
  let tab2 =
    Tab.create ~title:"gc-on ladder: bounded-memory arrival path"
      ~header:
        [ "n"; "wall (ms)"; "per arrival (us)"; "probes/arr";
          "max live ivls"; "max tbl"; "flushed"; "rejected"; "oracle" ]
  in
  let probes_per_arrival = Hashtbl.create 8 in
  let live_at = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let inst =
        Speedscale_workload.Generate.diurnal ~power:(Power.make 3.0)
          ~machines:8 ~seed:13 ~n ()
      in
      let pd =
        Speedscale_core.Pd.create ~gc:true ~power:inst.power
          ~machines:inst.machines ()
      in
      let rejected = ref 0 in
      Speedscale_core.Pd.set_observer pd
        (Some
           (fun (s : Speedscale_core.Pd.arrival_stats) ->
             if not s.accepted then incr rejected));
      let decisions_rev = ref [] in
      let keep_decisions = n <= 10_000 in
      let t0 = Harness.now () in
      Array.iter
        (fun j ->
          let d = Speedscale_core.Pd.arrive pd j in
          if keep_decisions then decisions_rev := d :: !decisions_rev)
        inst.jobs;
      let dt = Harness.now () -. t0 in
      let st = Speedscale_core.Pd.stats pd in
      let m = Speedscale_core.Pd.mem pd in
      if m.flushed_intervals = 0 then ok := false;
      Hashtbl.replace probes_per_arrival n
        (float_of_int st.probes /. float_of_int n);
      Hashtbl.replace live_at n m.max_live_intervals;
      let oracle_cell =
        if not keep_decisions then "-"
        else begin
          let orc =
            Speedscale_core.Pd.create ~gc:true ~power:inst.power
              ~machines:inst.machines ()
          in
          let agree = ref true in
          List.iter2
            (fun j (d : Speedscale_core.Pd.decision) ->
              let r = Speedscale_core.Pd.arrive_reference orc j in
              let tol = 1e-9 *. (1.0 +. Float.abs d.lambda) in
              if
                (not (Bool.equal r.accepted d.accepted))
                || Float.abs (r.lambda -. d.lambda) > tol
              then agree := false)
            (Array.to_list inst.jobs)
            (List.rev !decisions_rev);
          if not !agree then ok := false;
          if !agree then "agree" else "DIVERGED"
        end
      in
      add_record
        (Speedscale_obs.Record.with_wall ~wall_s:dt
           (Speedscale_obs.Record.make
              ~id:(Printf.sprintf "E24/ladder-n%d" n)
              ~params:
                [
                  ("n", Speedscale_obs.Record.P_int n);
                  ("machines", Speedscale_obs.Record.P_int 8);
                  ("gc", Speedscale_obs.Record.P_bool true);
                ]
              ~counters:
                [
                  ("probes", st.probes);
                  ("intervals", st.intervals);
                  ("breakpoints", st.breakpoints);
                  ("rejected", !rejected);
                  ("flushed_intervals", m.flushed_intervals);
                  ("evicted_jobs", m.evicted_jobs);
                  ("finished_slices", m.finished_slices);
                  ("resident_live_intervals", m.max_live_intervals);
                  ("resident_table_entries", m.max_table_entries);
                ]
              Speedscale_obs.Record.Timing));
      Tab.add_row tab2
        [
          string_of_int n;
          Tab.cell_f (dt *. 1000.0);
          Tab.cell_f (dt *. 1e6 /. float_of_int n);
          Tab.cell_f (float_of_int st.probes /. float_of_int n);
          string_of_int m.max_live_intervals;
          string_of_int m.max_table_entries;
          string_of_int m.flushed_intervals;
          Printf.sprintf "%d/%d" !rejected n;
          oracle_cell;
        ])
    [ 1_000; 3_162; 10_000; 31_623; 100_000 ];
  Tab.print tab2;
  (* sub-linearity / flat residency across two decades: per-arrival work
     and the live high-water marks at n = 10^5 must stay within 2x of
     n = 10^3 — linear growth would put them ~100x apart *)
  let ppa n = Hashtbl.find probes_per_arrival n in
  if ppa 100_000 > 2.0 *. ppa 1_000 then ok := false;
  if
    float_of_int (Hashtbl.find live_at 100_000)
    > 2.0 *. float_of_int (Hashtbl.find live_at 1_000)
  then ok := false;
  metric "ladder_probes_per_arrival_growth" (ppa 100_000 /. ppa 1_000);
  counter "ladder_max_live_n100000" (Hashtbl.find live_at 100_000);
  verdict
    ~expected:
      "the gc-on ladder holds per-arrival work and residency flat over two \
       decades and matches the reference oracle at every cross-checked rung"
    !ok

(* ================================================================== *)
(* E21 — how tight is the dual certificate itself?                      *)
(* ================================================================== *)

let e21 () =
  section "E21"
    "certificate tightness: how far is g(lambda) below the true optimum?";
  let alpha = 2.0 in
  let tab =
    Tab.create
      ~title:
        "OPT-exact / g(lambda): 1.0 would mean the certificate is exact \
         (12 seeds, n=8)"
      ~header:[ "m"; "mean"; "max"; "certified vs true ratio inflation" ]
  in
  let ok = ref true in
  List.iter
    (fun machines ->
      let slack =
        List.init 12 (fun seed ->
            let inst =
              random_instance ~alpha ~machines ~seed:(800 + seed) ~n:8
            in
            let pd = Speedscale_core.Pd.run inst in
            let opt = Opt.solve inst in
            (* weak duality: g <= OPT must hold *)
            if pd.dual_bound > opt.cost +. (2e-2 *. (1.0 +. opt.cost)) then
              ok := false;
            opt.cost /. pd.dual_bound)
      in
      Tab.add_row tab
        [
          string_of_int machines;
          Tab.cell_f (Stats.mean slack);
          Tab.cell_f (Stats.max_of slack);
          Printf.sprintf "certified ratios overstate by ~%.0f%%"
            ((Stats.mean slack -. 1.0) *. 100.0);
        ])
    [ 1; 2 ];
  Tab.print tab;
  verdict
    ~expected:
      "g(lambda) <= OPT always; the gap (certificate conservatism) is a \
       modest constant factor"
    !ok

(* ================================================================== *)
(* E22 — PD vs the ad-hoc multiprocessor CLL                           *)
(* ================================================================== *)

let e22 () =
  section "E22"
    "PD vs the naive multiprocessor CLL (mOA core + threshold admission)";
  let alpha = 2.0 in
  let tab =
    Tab.create
      ~title:"cost ratio to OPT-exact over 8 seeds (n=7); PD has a proof, \
              mCLL does not"
      ~header:[ "m"; "PD mean"; "PD max"; "mCLL mean"; "mCLL max" ]
  in
  let ok = ref true in
  List.iter
    (fun machines ->
      let pd_r = ref [] and mcll_r = ref [] in
      List.iter
        (fun seed ->
          let inst =
            random_instance ~alpha ~machines ~seed:(900 + seed) ~n:7
          in
          let opt = Opt.solve inst in
          let pd = Cost.total (Speedscale_core.Pd.run inst).cost in
          let mc = Cost.total (Mcll.cost inst) in
          if pd > (alpha ** alpha) *. opt.cost *. 1.02 then ok := false;
          pd_r := (pd /. opt.cost) :: !pd_r;
          mcll_r := (mc /. opt.cost) :: !mcll_r)
        (List.init 8 Fun.id);
      Tab.add_row tab
        [
          string_of_int machines;
          Tab.cell_f (Stats.mean !pd_r);
          Tab.cell_f (Stats.max_of !pd_r);
          Tab.cell_f (Stats.mean !mcll_r);
          Tab.cell_f (Stats.max_of !mcll_r);
        ])
    [ 1; 2; 3 ];
  Tab.print tab;
  verdict
    ~expected:
      "comparable average behaviour — but only PD carries the alpha^alpha \
       proof (and stays within it)"
    !ok

(* ================================================================== *)
(* E26 — the sharded admission service: throughput and the price of     *)
(* partitioning                                                         *)
(* ================================================================== *)

(* Two questions about lib/service.  (1) Throughput: arrivals/sec of
   the full submit → shard → merge loop at >= 10^6 jobs per run, across
   shard counts — the scaling shape depends on the host's core count
   (this is a Timing record, so bench-diff gates it like any other
   wall-clock), while the verdict rests only on deterministic
   invariants: every run processes the whole stream, the merged stream
   is identical at every worker count, and the one-shard service costs
   exactly what plain PD costs.  (2) The competitive-ratio price of
   partitioning (jobs never migrate between shards), measured against
   the global PD dual bound next to E22's numbers. *)
let e26 () =
  section "E26"
    "sharded admission service: arrivals/sec vs shards, and the ratio \
     price of partitioning";
  let module Service = Speedscale_service.Service in
  let module Online = Speedscale_engine.Online in
  let ok = ref true in
  (* -- throughput: 10^6 arrivals through the service ---------------- *)
  let machines = 8 in
  let inst =
    Speedscale_workload.Generate.diurnal ~power:(Power.make 3.0) ~machines
      ~seed:17 ~n:1_000_000 ()
  in
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf
           "service throughput, n=%d, m=%d (1 host core splits the \
            shards; see doc/SERVICE.md)"
           (Array.length inst.jobs) machines)
      ~header:
        [ "shards"; "wall (s)"; "arrivals/sec"; "per arrival (us)";
          "accepted"; "rejected" ]
  in
  let throughput = Hashtbl.create 4 in
  List.iter
    (fun k ->
      let params i =
        let mi = (machines / k) + if i < machines mod k then 1 else 0 in
        Online.params ~power:inst.power ~machines:mi ()
      in
      let svc = Service.create ~engine:Online.pd ~params ~shards:k () in
      let accepted = ref 0 and rejected = ref 0 and events = ref 0 in
      let count evs =
        List.iter
          (fun (ev : Service.ev) ->
            incr events;
            if ev.decision.Online.accepted then incr accepted
            else incr rejected)
          evs
      in
      let t0 = Harness.now () in
      Array.iter (fun j -> count (Service.submit svc j)) inst.jobs;
      count (Service.drain svc);
      let dt = Harness.now () -. t0 in
      ignore (Service.finalize svc);
      Service.shutdown svc;
      let n = Array.length inst.jobs in
      if !events <> n then ok := false;
      Hashtbl.replace throughput k (float_of_int n /. dt);
      add_record
        (Speedscale_obs.Record.with_wall ~wall_s:dt
           (Speedscale_obs.Record.make
              ~id:(Printf.sprintf "E26/serve-n%d-k%d" n k)
              ~params:
                [
                  ("n", Speedscale_obs.Record.P_int n);
                  ("machines", Speedscale_obs.Record.P_int machines);
                  ("shards", Speedscale_obs.Record.P_int k);
                ]
              ~counters:
                [
                  ("events", !events);
                  ("accepted", !accepted);
                  ("rejected", !rejected);
                ]
              Speedscale_obs.Record.Timing));
      Tab.add_row tab
        [
          string_of_int k;
          Tab.cell_f dt;
          Tab.cell_f (float_of_int n /. dt);
          Tab.cell_f (dt *. 1e6 /. float_of_int n);
          string_of_int !accepted;
          string_of_int !rejected;
        ])
    [ 1; 2; 4; 8 ];
  Tab.print tab;
  metric "throughput_k1_arrivals_per_s" (Hashtbl.find throughput 1);
  metric "throughput_k8_arrivals_per_s" (Hashtbl.find throughput 8);
  (* -- determinism: the merged stream must not care about workers ---- *)
  let det_inst = random_instance ~alpha:2.0 ~machines:4 ~seed:902 ~n:200 in
  let run_events workers =
    let params _ = Online.params ~power:det_inst.power ~machines:1 () in
    let svc =
      Service.create ~workers ~engine:Online.pd ~params ~shards:4 ()
    in
    let evs = ref [] in
    Array.iter (fun j -> evs := List.rev_append (Service.submit svc j) !evs)
      det_inst.jobs;
    evs := List.rev_append (Service.drain svc) !evs;
    Service.shutdown svc;
    List.rev !evs
  in
  if run_events 1 <> run_events 4 then ok := false;
  (* -- the ratio price of partitioning, next to E22 ------------------ *)
  let alpha = 2.0 in
  let rtab =
    Tab.create
      ~title:
        "sharded PD cost over the global PD dual bound g(lambda), 8 seeds \
         (n=64, m=4); k=1 is global PD itself"
      ~header:[ "shards"; "mean"; "max"; "vs global PD mean" ]
  in
  List.iter
    (fun k ->
      let ratios = ref [] and vs_pd = ref [] in
      List.iter
        (fun seed ->
          let inst =
            random_instance ~alpha ~machines:4 ~seed:(700 + seed) ~n:64
          in
          let r = Speedscale_core.Pd.run inst in
          let pd_cost = Cost.total r.cost in
          let value_of =
            let tbl = Hashtbl.create 64 in
            Array.iter
              (fun (j : Job.t) -> Hashtbl.replace tbl j.id j.value)
              inst.jobs;
            Hashtbl.find tbl
          in
          let params i =
            let mi = (4 / k) + if i < 4 mod k then 1 else 0 in
            Online.params ~power:inst.power ~machines:mi ()
          in
          let svc = Service.create ~engine:Online.pd ~params ~shards:k () in
          Array.iter (fun j -> ignore (Service.submit svc j)) inst.jobs;
          ignore (Service.drain svc);
          let plans = Service.finalize svc in
          Service.shutdown svc;
          let cost =
            Array.fold_left
              (fun acc (p : Schedule.t) ->
                acc
                +. Schedule.energy inst.power p
                +. List.fold_left
                     (fun a id -> a +. value_of id)
                     0.0 p.rejected)
              0.0 plans
          in
          (* the one-shard service is global PD with a pool detour:
             its cost must coincide exactly *)
          if k = 1 && Float.abs (cost -. pd_cost) > 1e-9 *. (1.0 +. pd_cost)
          then ok := false;
          ratios := (cost /. r.dual_bound) :: !ratios;
          vs_pd := (cost /. pd_cost) :: !vs_pd)
        (List.init 8 Fun.id);
      Tab.add_row rtab
        [
          string_of_int k;
          Tab.cell_f (Stats.mean !ratios);
          Tab.cell_f (Stats.max_of !ratios);
          Tab.cell_f (Stats.mean !vs_pd);
        ])
    [ 1; 2; 4 ];
  Tab.print rtab;
  verdict
    ~expected:
      "every shard count processes the full 10^6-arrival stream, the \
       merged stream is worker-count invariant, and the one-shard service \
       costs exactly what global PD costs"
    !ok

(* ================================================================== *)
(* E27 — the price of contiguity: non-preemptive NPD vs preemptive PD  *)
(* ================================================================== *)

let e27 () =
  section "E27"
    "price of contiguity: non-preemptive NPD vs preemptive PD, with both \
     dual certificates";
  let tab =
    Tab.create
      ~title:
        "cost(NPD)/cost(PD) and certified ratios vs each engine's own \
         dual bound g(lambda), 6 seeds each (n=16)"
      ~header:
        [ "alpha"; "m"; "npd/pd mean"; "npd/pd max"; "rej pd"; "rej npd";
          "npd/g mean"; "g<=0"; "pd/g mean"; "cert viol" ]
  in
  let ok = ref true and total_violations = ref 0 in
  List.iter
    (fun alpha ->
      List.iter
        (fun machines ->
          let vs_pd = ref [] and npd_cert = ref [] and pd_cert = ref [] in
          let rej_pd = ref 0 and rej_npd = ref 0 and violations = ref 0 in
          let vacuous = ref 0 in
          List.iter
            (fun seed ->
              let inst =
                random_instance ~alpha ~machines ~seed:(2700 + seed) ~n:16
              in
              let p = Speedscale_core.Pd.run inst in
              let np = Speedscale_core.Npd.run inst in
              let pc = Cost.total p.cost and nc = Cost.total np.cost in
              vs_pd := (nc /. pc) :: !vs_pd;
              rej_pd := !rej_pd + List.length p.rejected;
              rej_npd := !rej_npd + List.length np.rejected;
              (* each engine's Lagrangian g(lambda) lower-bounds the
                 preemptive OPT, which lower-bounds the cost of every
                 feasible solution — preemptive or not.  NPD's aggressive
                 rejections can push its g(lambda) nonpositive, a valid
                 but vacuous bound; the ratio is only meaningful when
                 g(lambda) > 0, so vacuous seeds are counted apart. *)
              if np.dual_bound > 0.0 then
                npd_cert := (nc /. np.dual_bound) :: !npd_cert
              else incr vacuous;
              pd_cert := (pc /. p.dual_bound) :: !pd_cert;
              let tol b = 1e-9 *. (1.0 +. b) in
              if nc < np.dual_bound -. tol np.dual_bound then
                incr violations;
              if pc < p.dual_bound -. tol p.dual_bound then incr violations)
            (List.init 6 Fun.id);
          if !violations > 0 then ok := false;
          total_violations := !total_violations + !violations;
          Tab.add_row tab
            [
              Printf.sprintf "%.2g" alpha;
              string_of_int machines;
              Tab.cell_f (Stats.mean !vs_pd);
              Tab.cell_f (Stats.max_of !vs_pd);
              string_of_int !rej_pd;
              string_of_int !rej_npd;
              (if !npd_cert = [] then "-" else Tab.cell_f (Stats.mean !npd_cert));
              string_of_int !vacuous;
              Tab.cell_f (Stats.mean !pd_cert);
              string_of_int !violations;
            ])
        [ 1; 4 ])
    [ 1.5; 2.0; 3.0 ];
  Tab.print tab;
  counter "certificate_violations" !total_violations;
  verdict
    ~expected:
      "contiguity costs or rejects more often than preemptive PD on most \
       seeds, and neither engine's cost ever drops below its own dual \
       bound"
    !ok

(* ================================================================== *)
(* E28 — E19 closed: the migration gap against the certified exact     *)
(*       migratory optimum                                             *)
(* ================================================================== *)

let e28 () =
  section "E28"
    "migration gap vs the flow-certified exact migratory optimum \
     (E19's denominator, now exact)";
  let alpha = 2.0 in
  let tab =
    Tab.create
      ~title:
        "energy ratio to the certified flow optimum, 6 seeds each (n=14)"
      ~header:
        [ "m"; "least-work mean"; "least-work max"; "least-energy mean";
          "least-energy max"; "mOA mean"; "PGD/flow max"; "certified" ]
  in
  let ok = ref true in
  List.iter
    (fun machines ->
      let certified = ref 0 and pgd_gap = ref [] in
      let instances =
        List.init 6 (fun seed ->
            random_must_finish ~alpha ~machines ~seed:(700 + seed) ~n:14)
      in
      let opts =
        List.map
          (fun inst ->
            let r = Speedscale_flow.Migratory.solve inst in
            let c = Speedscale_flow.Migratory.certify inst r in
            if c.feasible && c.pinched then incr certified;
            (* the PGD optimum (E19's old denominator) must coincide *)
            pgd_gap := (Mopt.energy inst /. r.energy) :: !pgd_gap;
            r.energy)
          instances
      in
      let collect f =
        List.map2 (fun inst opt -> f inst /. opt) instances opts
      in
      let lw =
        collect (Partitioned.energy ~heuristic:Partitioned.Least_work)
      in
      let le =
        collect
          (Partitioned.energy ~heuristic:Partitioned.Least_energy_increase)
      in
      let moa = collect Moa.energy in
      List.iter
        (fun r -> if r < 1.0 -. 1e-6 then ok := false)
        (lw @ le @ moa);
      List.iter
        (fun g -> if Float.abs (g -. 1.0) > 1e-3 then ok := false)
        !pgd_gap;
      if !certified <> 6 then ok := false;
      Tab.add_row tab
        [
          string_of_int machines;
          Tab.cell_f (Stats.mean lw);
          Tab.cell_f (Stats.max_of lw);
          Tab.cell_f (Stats.mean le);
          Tab.cell_f (Stats.max_of le);
          Tab.cell_f (Stats.mean moa);
          Tab.cell_f (Stats.max_of !pgd_gap);
          Printf.sprintf "%d/6" !certified;
        ])
    [ 2; 4 ];
  Tab.print tab;
  verdict
    ~expected:
      "every flow optimum carries a feasible+pinched certificate, agrees \
       with the PGD optimum, and no heuristic beats it"
    !ok

let all =
  [
    ("E1", e1);
    ("E2", e2);
    ("E3", e3);
    ("E4", e4);
    ("E5", e5);
    ("E6", e6);
    ("E7", e7);
    ("E8", e8);
    ("E9", e9);
    ("E10", e10);
    ("E11", e11);
    ("E13", e13);
    ("E14", e14);
    ("E15", e15);
    ("E16", e16);
    ("E17", e17);
    ("E18", e18);
    ("E19", e19);
    ("E20", e20);
    ("E21", e21);
    ("E22", e22);
    ("E24", e24);
    ("E26", e26);
    ("E27", e27);
    ("E28", e28);
  ]
