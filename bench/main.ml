(* Benchmark harness entry point.

     dune exec bench/main.exe            # run every experiment + timings
     dune exec bench/main.exe -- E2 E5   # run selected experiments
     dune exec bench/main.exe -- quick   # skip the slow exact-OPT sweeps

   Each experiment regenerates one table or figure of EXPERIMENTS.md and
   prints a CONFIRMED / NOT CONFIRMED verdict for the expected shape. *)

let slow = [ "E6"; "E7"; "E8"; "E11"; "E18"; "E19"; "E21"; "E22" ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if args = [ "list" ] then begin
    Printf.printf "available experiments:\n";
    List.iter (fun (id, _) -> Printf.printf "  %s\n" id) Experiments.all;
    Printf.printf "  E12 (timings)\nmodes: quick (skips the slow sweeps: %s)\n"
      (String.concat ", " slow);
    exit 0
  end;
  let wanted, with_timings =
    match args with
    | [] -> (List.map fst Experiments.all, true)
    | [ "quick" ] ->
      (List.filter (fun (id, _) -> not (List.mem id slow)) Experiments.all
       |> List.map fst,
       false)
    | ids -> (ids, List.mem "E12" ids || List.mem "timings" ids)
  in
  Printf.printf
    "Profitable Scheduling on Multiple Speed-Scalable Processors —\n\
     experiment harness (see DESIGN.md / EXPERIMENTS.md for the index)\n";
  List.iter
    (fun (id, f) -> if List.mem id wanted then f ())
    Experiments.all;
  if with_timings && (args = [] || List.mem "E12" args || List.mem "timings" args)
  then Timings.run ();
  Printf.printf "\nAll requested experiments completed.\n"
