(* Benchmark harness entry point.

     dune exec bench/main.exe                      # every experiment + timings
     dune exec bench/main.exe -- E2 E5             # run selected experiments
     dune exec bench/main.exe -- quick             # skip the slow exact-OPT sweeps
     dune exec bench/main.exe -- quick --json BENCH_quick.json
     dune exec bench/main.exe -- --jobs 4 --json BENCH_PR2.json

   Each experiment regenerates one table or figure of EXPERIMENTS.md and
   prints a CONFIRMED / NOT CONFIRMED verdict for the expected shape.
   Experiments fan out across OCaml 5 domains (their seeds are fixed per
   experiment, and output/records merge in experiment order, so any --jobs
   value prints identical bytes); bechamel timings always run sequentially
   after them, on an otherwise idle process.  --json additionally writes
   every structured record (see doc/BENCHMARKING.md for the schema and the
   `psched bench-diff` regression gate). *)

let slow = [ "E6"; "E7"; "E8"; "E11"; "E18"; "E19"; "E21"; "E22"; "E28" ]

(* The cheap figure/property experiments: what `--smoke` (the @bench-quick
   alias attached to @runtest) runs so the pipeline is exercised on every
   test run without paying for the full sweeps. *)
let smoke_set = [ "E2"; "E3"; "E4"; "E5"; "E10" ]

let usage code =
  let ch = if code = 0 then stdout else stderr in
  Printf.fprintf ch
    "usage: main.exe [list | quick | all | IDS...] [--json PATH] [--jobs N] \
     [--smoke]\n\
    \  list         print the experiment index and exit\n\
    \  quick        skip the slow exact-OPT sweeps (%s) and the timings\n\
    \  IDS          run selected experiments (E12 or 'timings' selects the \
     bechamel suite)\n\
    \  --json PATH  write structured benchmark records (schema: \
     doc/BENCHMARKING.md)\n\
    \  --jobs N     worker domains for the experiment fan-out (default: \
     cores, max 8)\n\
    \  --smoke      tiny smoke run: restrict to %s, single-repetition \
     timings\n"
    (String.concat ", " slow)
    (String.concat "," smoke_set);
  exit code

type cli = {
  mutable ids : string list;  (* reversed *)
  mutable json : string option;
  mutable jobs : int option;
  mutable smoke : bool;
  mutable quick : bool;
  mutable all : bool;
  mutable list : bool;
}

let parse_args args =
  let cli =
    { ids = []; json = None; jobs = None; smoke = false; quick = false;
      all = false; list = false }
  in
  let rec go = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ -> usage 0
    | "--json" :: path :: rest ->
      cli.json <- Some path;
      go rest
    | [ "--json" ] ->
      prerr_endline "main.exe: --json needs a path argument";
      exit 2
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some k when k >= 1 ->
        cli.jobs <- Some k;
        go rest
      | _ ->
        Printf.eprintf "main.exe: --jobs needs a positive integer, got %S\n" n;
        exit 2)
    | [ "--jobs" ] ->
      prerr_endline "main.exe: --jobs needs a count argument";
      exit 2
    | "--smoke" :: rest ->
      cli.smoke <- true;
      go rest
    | "list" :: rest ->
      cli.list <- true;
      go rest
    | "quick" :: rest ->
      cli.quick <- true;
      go rest
    | "all" :: rest ->
      cli.all <- true;
      go rest
    | arg :: rest ->
      if String.length arg > 0 && Char.equal arg.[0] '-' then begin
        Printf.eprintf "main.exe: unknown option %s\n" arg;
        usage 2
      end;
      cli.ids <- arg :: cli.ids;
      go rest
  in
  go args;
  cli.ids <- List.rev cli.ids;
  cli

let () =
  let cli = parse_args (List.tl (Array.to_list Sys.argv)) in
  let known = List.map fst Experiments.all in
  if cli.list then begin
    Printf.printf "available experiments:\n";
    List.iter (fun id -> Printf.printf "  %s\n" id) known;
    Printf.printf "  E12 (timings)\nmodes: quick (skips the slow sweeps: %s)\n"
      (String.concat ", " slow);
    exit 0
  end;
  (* Reject unknown experiment ids loudly: a typo like E99 must not pass
     for a successful (empty) run. *)
  List.iter
    (fun id ->
      if
        not
          (List.mem id known || String.equal id "E12"
         || String.equal id "timings")
      then begin
        Printf.eprintf
          "main.exe: unknown experiment id %S (run 'main.exe list' for the \
           index)\n"
          id;
        exit 2
      end)
    cli.ids;
  let wanted, with_timings =
    if cli.ids <> [] then
      ( List.filter (fun id -> List.mem id cli.ids) known,
        List.mem "E12" cli.ids || List.mem "timings" cli.ids )
    else if cli.quick then (List.filter (fun id -> not (List.mem id slow)) known, false)
    else (known, true)
  in
  (* Smoke mode restricts implicit selections to the cheap subset; explicit
     ids are respected (the caller asked for exactly those). *)
  let wanted =
    if cli.smoke && cli.ids = [] then
      List.filter (fun id -> List.mem id smoke_set) wanted
    else wanted
  in
  let jobs =
    match cli.jobs with
    | Some k -> k
    | None -> Speedscale_obs.Runner.default_jobs ()
  in
  Printf.printf
    "Profitable Scheduling on Multiple Speed-Scalable Processors —\n\
     experiment harness (see DESIGN.md / EXPERIMENTS.md for the index)\n";
  let tasks = List.filter (fun (id, _) -> List.mem id wanted) Experiments.all in
  let results =
    Speedscale_obs.Runner.map ~jobs
      (fun (id, f) -> Harness.with_task id f)
      tasks
  in
  List.iter (fun (r : Harness.task_result) -> print_string r.output) results;
  let timing_records =
    if with_timings then begin
      let tr = Harness.with_task "E12" (fun () -> Timings.run ~smoke:cli.smoke ()) in
      print_string tr.output;
      tr.records
    end
    else []
  in
  Printf.printf "\nAll requested experiments completed.\n";
  match cli.json with
  | None -> ()
  | Some path ->
    let records =
      List.concat_map (fun (r : Harness.task_result) -> r.records) results
      @ timing_records
    in
    let file =
      {
        Speedscale_obs.Record.version = Speedscale_obs.Record.schema_version;
        env = Speedscale_obs.Record.current_env ~jobs;
        records;
      }
    in
    Speedscale_obs.Record.write_file ~path file
