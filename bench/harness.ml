(* Shared helpers for the experiment harness.

   Every print helper routes through a domain-local sink: outside a task it
   is plain stdout, inside [with_task] it is a per-task buffer.  That is
   what lets the runner fan experiments out across domains and still merge
   their output (and their structured records) in deterministic order. *)

open Speedscale_model
module Obs = Speedscale_obs

(* ------------------------------------------------------------------ *)
(* Output sink and record collection                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  buf : Buffer.t;
  mutable recs : Obs.Record.t list;  (* newest first *)
  mutable current : string;  (* experiment id set by [section] *)
  mutable metrics : (string * float) list;  (* newest first *)
  mutable counters : (string * int) list;
}

let ctx_key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Injectable wall clock, mirroring [Driver.evaluate ?clock] and
   [Pd.create ?clock]: every bench timing reads [now ()], so a test can
   freeze it (e.g. [clock := fun () -> 0.0]) and get byte-deterministic
   reports. *)
let clock : (unit -> float) ref = ref Unix.gettimeofday
let now () = !clock ()

let out_str s =
  match Domain.DLS.get ctx_key with
  | Some c -> Buffer.add_string c.buf s
  | None -> Stdlib.print_string s

let out fmt = Printf.ksprintf out_str fmt

(* Shadows Stdlib.print_string for every [open Harness] user, so existing
   experiment code redirects without edits. *)
let print_string = out_str

let section id title =
  (match Domain.DLS.get ctx_key with
  | Some c -> c.current <- id
  | None -> ());
  out "\n=== %s: %s ===\n\n" id title

let note fmt =
  Printf.ksprintf
    (fun s ->
      out_str s;
      out_str "\n")
    fmt

(* Same bytes as Speedscale_util.Tab.print ("%s@.@."), sink-redirected. *)
module Tab = struct
  include Speedscale_util.Tab

  let print t =
    out_str (render t);
    out_str "\n\n"
end

let metric name value =
  match Domain.DLS.get ctx_key with
  | Some c -> c.metrics <- (name, value) :: c.metrics
  | None -> ()

let counter name value =
  match Domain.DLS.get ctx_key with
  | Some c -> c.counters <- (name, value) :: c.counters
  | None -> ()

let add_record r =
  match Domain.DLS.get ctx_key with
  | Some c -> c.recs <- r :: c.recs
  | None -> ()

let verdict ~expected ok =
  out "expected shape: %s -> %s\n" expected
    (if ok then "CONFIRMED" else "NOT CONFIRMED");
  match Domain.DLS.get ctx_key with
  | Some c ->
    let r =
      Obs.Record.make ~id:c.current ~metrics:(List.rev c.metrics)
        ~counters:(List.rev c.counters) ~verdict:ok Obs.Record.Experiment
    in
    c.metrics <- [];
    c.counters <- [];
    c.recs <- r :: c.recs
  | None -> ()

type task_result = {
  task_id : string;
  output : string;  (* everything the task printed, in order *)
  records : Obs.Record.t list;  (* emission order, wall-clock attached *)
  wall_s : float;
}

let with_task id (f : unit -> unit) : task_result =
  (* slint: allow dls-misuse -- audited save/restore: the ambient ctx is snapshotted here and restored after f (), including on exceptions *)
  let saved = Domain.DLS.get ctx_key in
  let c =
    { buf = Buffer.create 4096; recs = []; current = id; metrics = [];
      counters = [] }
  in
  Domain.DLS.set ctx_key (Some c);
  let t0 = now () in
  (match f () with
  | () -> Domain.DLS.set ctx_key saved
  | exception e ->
    Domain.DLS.set ctx_key saved;
    raise e);
  let wall_s = now () -. t0 in
  let records = List.rev_map (Obs.Record.with_wall ~wall_s) c.recs in
  { task_id = id; output = Buffer.contents c.buf; records; wall_s }

(* ------------------------------------------------------------------ *)
(* Instance families                                                    *)
(* ------------------------------------------------------------------ *)

(* Standard random valuable-job family used across experiments. *)
let random_instance ~alpha ~machines ~seed ~n =
  let power = Power.make alpha in
  Speedscale_workload.Generate.random ~power ~machines ~seed ~n
    ~arrivals:(Poisson (float_of_int machines))
    ~sizes:(Uniform_size (0.3, 2.5))
    ~laxity:(0.4, 2.5)
    ~values:(Uniform_value (0.2, 20.0))

(* Energy-only variant (infinite values). *)
let random_must_finish ~alpha ~machines ~seed ~n =
  Instance.with_values
    (random_instance ~alpha ~machines ~seed ~n)
    (fun _ -> Float.infinity)
