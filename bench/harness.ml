(* Shared helpers for the experiment harness. *)

open Speedscale_model

let section id title =
  Printf.printf "\n=== %s: %s ===\n\n" id title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* Standard random valuable-job family used across experiments. *)
let random_instance ~alpha ~machines ~seed ~n =
  let power = Power.make alpha in
  Speedscale_workload.Generate.random ~power ~machines ~seed ~n
    ~arrivals:(Poisson (float_of_int machines))
    ~sizes:(Uniform_size (0.3, 2.5))
    ~laxity:(0.4, 2.5)
    ~values:(Uniform_value (0.2, 20.0))

(* Energy-only variant (infinite values). *)
let random_must_finish ~alpha ~machines ~seed ~n =
  Instance.with_values
    (random_instance ~alpha ~machines ~seed ~n)
    (fun _ -> Float.infinity)

let verdict ~expected ok =
  Printf.printf "expected shape: %s -> %s\n" expected
    (if ok then "CONFIRMED" else "NOT CONFIRMED")
