(* E12 — Bechamel micro-timings of the core operations, one Test.make per
   experiment table so the cost of regenerating each table is itself
   measured, plus the primitive kernels (Chen partition, YDS, PD arrival
   processing, dual evaluation).

   Every estimate is also emitted as a structured Speedscale_obs record
   (id "E12/<test-name>", kind Timing) so BENCH_*.json files carry the
   micro-timings that `psched bench-diff` gates on. *)

open Bechamel
open Speedscale_model

let pd_run ~machines ~n =
  let inst = Harness.random_instance ~alpha:2.0 ~machines ~seed:9 ~n in
  Staged.stage (fun () -> ignore (Speedscale_core.Pd.run inst))

let chen_kernel ~p =
  let st = Speedscale_util.Rand.make 5 in
  let loads =
    List.init p (fun i -> (i, Speedscale_util.Rand.uniform st ~lo:0.1 ~hi:5.0))
  in
  Staged.stage (fun () ->
      let t = Speedscale_chen.Chen.build ~machines:8 ~length:1.0 loads in
      ignore (Speedscale_chen.Chen.energy (Power.make 3.0) t))

let yds_kernel ~n =
  let inst = Harness.random_must_finish ~alpha:2.0 ~machines:1 ~seed:4 ~n in
  let jobs = Array.to_list inst.jobs in
  Staged.stage (fun () ->
      ignore (Speedscale_single.Yds.energy inst.power jobs))

let dual_kernel ~n =
  let inst = Harness.random_instance ~alpha:2.0 ~machines:4 ~seed:3 ~n in
  let r = Speedscale_core.Pd.run inst in
  let tl = Timeline.of_jobs (Array.to_list inst.jobs) in
  Staged.stage (fun () ->
      ignore (Speedscale_solver.Dual.evaluate inst tl ~lambda:r.lambda))

let flow_kernel ~n =
  let inst = Harness.random_must_finish ~alpha:2.0 ~machines:4 ~seed:6 ~n in
  Staged.stage (fun () ->
      ignore (Speedscale_flow.Feasibility.min_speed_cap inst))

let opt_exact_kernel ~n =
  let inst = Harness.random_instance ~alpha:2.0 ~machines:1 ~seed:2 ~n in
  Staged.stage (fun () -> ignore (Speedscale_multi.Opt.solve inst))

let replay_kernel ~n =
  let inst = Harness.random_instance ~alpha:2.0 ~machines:4 ~seed:8 ~n in
  let r = Speedscale_core.Pd.run inst in
  Staged.stage (fun () ->
      ignore (Speedscale_engine.Executor.replay inst r.schedule))

let tests =
  Test.make_grouped ~name:"speedscale"
    [
      Test.make ~name:"pd-arrivals-n20-m1" (pd_run ~machines:1 ~n:20);
      Test.make ~name:"pd-arrivals-n100-m1" (pd_run ~machines:1 ~n:100);
      Test.make ~name:"pd-arrivals-n100-m8" (pd_run ~machines:8 ~n:100);
      Test.make ~name:"chen-interval-p100" (chen_kernel ~p:100);
      Test.make ~name:"chen-interval-p1000" (chen_kernel ~p:1000);
      Test.make ~name:"yds-n30" (yds_kernel ~n:30);
      Test.make ~name:"dual-certificate-n50" (dual_kernel ~n:50);
      Test.make ~name:"min-speed-cap-n24-m4" (flow_kernel ~n:24);
      Test.make ~name:"opt-exact-n10-m1" (opt_exact_kernel ~n:10);
      Test.make ~name:"replay-n50-m4" (replay_kernel ~n:50);
    ]

let run ?(smoke = false) () =
  Harness.section "E12" "Bechamel micro-timings (ns per run, OLS estimate)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    (* smoke: one repetition batch with a tiny quota, just enough to prove
       the pipeline runs end to end; numbers are meaningless. *)
    if smoke then Benchmark.cfg ~limit:1 ~quota:(Time.second 0.005) ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Some est
        | _ -> None
      in
      (match est with
      | Some est ->
        Harness.out "%-40s %14.0f ns/run  (%.3f ms)\n" name est (est /. 1e6)
      | None -> Harness.out "%-40s (no estimate)\n" name);
      Harness.add_record
        (* slint: allow taint-nondet -- audited: the benchmark name set is fixed; Hashtbl.fold only perturbs order and rows are sorted before emission *)
        (Speedscale_obs.Record.make
           ~id:(Printf.sprintf "E12/%s" name)
           ~timing:
             { Speedscale_obs.Record.no_timing with ns_per_run = est }
           Speedscale_obs.Record.Timing))
    (List.sort compare rows);
  (* Deterministic companion to the pd-arrivals timings: the same
     workload's per-arrival work counters.  Machine-independent, so
     bench-diff surfaces algorithmic drift (extra probes, breakpoint
     blow-up) even where raw nanoseconds are too noisy to gate on. *)
  let inst = Harness.random_instance ~alpha:2.0 ~machines:8 ~seed:9 ~n:100 in
  let pd =
    Speedscale_core.Pd.create ~power:inst.Instance.power
      ~machines:inst.Instance.machines ()
  in
  Array.iter
    (fun j -> ignore (Speedscale_core.Pd.arrive pd j))
    inst.Instance.jobs;
  let st = Speedscale_core.Pd.stats pd in
  Harness.add_record
    (Speedscale_obs.Record.make ~id:"E12/pd-arrivals-n100-m8-counters"
       ~params:
         [
           ("n", Speedscale_obs.Record.P_int 100);
           ("machines", Speedscale_obs.Record.P_int 8);
         ]
       ~counters:
         [
           ("probes", st.probes);
           ("intervals", st.intervals);
           ("breakpoints", st.breakpoints);
         ]
       Speedscale_obs.Record.Timing)
