(* Tests for the operational replay engine, including cross-checks against
   the analytic layer (Schedule energy / Structure statistics). *)

open Speedscale_model
open Speedscale_engine

let p2 = Power.make 2.0

let mk ~id ~r ~d ~w ?(v = Float.infinity) () =
  Job.make ~id ~release:r ~deadline:d ~workload:w ~value:v

let slice proc t0 t1 job speed = { Schedule.proc; t0; t1; job; speed }

let kinds_of run job kind =
  List.filter (fun (e : Executor.event) -> e.job = job && e.kind = kind)
    run.Executor.events

(* ------------------------------------------------------------------ *)
(* Lifecycle on hand-built schedules                                    *)
(* ------------------------------------------------------------------ *)

let test_simple_run_events () =
  let inst = Instance.make ~power:p2 ~machines:1 [ mk ~id:0 ~r:0.0 ~d:2.0 ~w:2.0 () ] in
  let s = Schedule.make ~machines:1 ~rejected:[] [ slice 0 0.0 2.0 0 1.0 ] in
  let run = Executor.replay inst s in
  Alcotest.(check int) "arrival" 1 (List.length (kinds_of run 0 Executor.Arrival));
  Alcotest.(check int) "start" 1 (List.length (kinds_of run 0 Executor.Start));
  Alcotest.(check int) "complete" 1 (List.length (kinds_of run 0 Executor.Complete));
  Alcotest.(check int) "no misses" 0
    (List.length (kinds_of run 0 Executor.Deadline_miss));
  let o = run.outcomes.(0) in
  Alcotest.(check bool) "completed" true o.completed;
  Alcotest.(check (float 1e-9)) "work" 2.0 o.work_done;
  Alcotest.(check (float 1e-9)) "completion at 2" 2.0
    (Option.get o.completion_time);
  Alcotest.(check (float 1e-9)) "energy" 2.0 run.total_energy;
  Alcotest.(check (float 1e-9)) "makespan" 2.0 run.makespan

let test_preempt_resume_migrate () =
  let inst =
    Instance.make ~power:p2 ~machines:2 [ mk ~id:0 ~r:0.0 ~d:5.0 ~w:3.0 () ]
  in
  (* run [0,1) proc0, gap, [2,3) proc0 (resume), then [3,4) proc1
     (migrate, contiguous) *)
  let s =
    Schedule.make ~machines:2 ~rejected:[]
      [ slice 0 0.0 1.0 0 1.0; slice 0 2.0 3.0 0 1.0; slice 1 3.0 4.0 0 1.0 ]
  in
  let run = Executor.replay inst s in
  Alcotest.(check int) "2 preempts" 2
    (List.length (kinds_of run 0 Executor.Preempt));
  Alcotest.(check int) "1 resume" 1
    (List.length (kinds_of run 0 Executor.Resume));
  Alcotest.(check int) "1 migrate" 1
    (List.length (kinds_of run 0 Executor.Migrate));
  let o = run.outcomes.(0) in
  Alcotest.(check int) "outcome preemptions" 2 o.n_preemptions;
  Alcotest.(check int) "outcome migrations" 1 o.n_migrations

let test_speed_change_contiguous () =
  let inst = Instance.make ~power:p2 ~machines:1 [ mk ~id:0 ~r:0.0 ~d:3.0 ~w:3.0 () ] in
  let s =
    Schedule.make ~machines:1 ~rejected:[]
      [ slice 0 0.0 1.0 0 1.0; slice 0 1.0 2.0 0 2.0 ]
  in
  let run = Executor.replay inst s in
  Alcotest.(check int) "speed change" 1
    (List.length (kinds_of run 0 Executor.Speed_change));
  Alcotest.(check int) "no preempt" 0
    (List.length (kinds_of run 0 Executor.Preempt))

let test_deadline_miss_detected () =
  let inst = Instance.make ~power:p2 ~machines:1 [ mk ~id:0 ~r:0.0 ~d:1.0 ~w:5.0 () ] in
  let s = Schedule.make ~machines:1 ~rejected:[] [ slice 0 0.0 1.0 0 1.0 ] in
  let run = Executor.replay inst s in
  Alcotest.(check int) "miss" 1
    (List.length (kinds_of run 0 Executor.Deadline_miss));
  Alcotest.(check bool) "not completed" false run.outcomes.(0).completed

let test_rejected_job_events () =
  let inst =
    Instance.make ~power:p2 ~machines:1 [ mk ~id:0 ~r:0.5 ~d:1.0 ~w:5.0 ~v:1.0 () ]
  in
  let s = Schedule.make ~machines:1 ~rejected:[ 0 ] [] in
  let run = Executor.replay inst s in
  Alcotest.(check int) "reject event" 1
    (List.length (kinds_of run 0 Executor.Reject));
  Alcotest.(check int) "no miss for rejected" 0
    (List.length (kinds_of run 0 Executor.Deadline_miss))

let test_mid_slice_completion () =
  (* slice longer than the remaining work: completion lands inside *)
  let inst = Instance.make ~power:p2 ~machines:1 [ mk ~id:0 ~r:0.0 ~d:4.0 ~w:1.0 () ] in
  let s = Schedule.make ~machines:1 ~rejected:[] [ slice 0 0.0 4.0 0 1.0 ] in
  let run = Executor.replay inst s in
  Alcotest.(check (float 1e-9)) "completes at t=1" 1.0
    (Option.get run.outcomes.(0).completion_time)

let test_events_chronological () =
  let inst =
    Instance.make ~power:p2 ~machines:1
      [ mk ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 (); mk ~id:1 ~r:0.5 ~d:2.0 ~w:1.0 () ]
  in
  let s =
    Schedule.make ~machines:1 ~rejected:[]
      [ slice 0 0.0 1.0 0 1.0; slice 0 1.0 2.0 1 1.0 ]
  in
  let run = Executor.replay inst s in
  let rec sorted = function
    | (a : Executor.event) :: (b :: _ as rest) ->
      a.time <= b.time +. 1e-12 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (sorted run.events)

let test_csv_export () =
  let inst = Instance.make ~power:p2 ~machines:1 [ mk ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 () ] in
  let s = Schedule.make ~machines:1 ~rejected:[] [ slice 0 0.0 1.0 0 1.0 ] in
  let csv = Executor.to_csv (Executor.replay inst s) in
  let lines = String.split_on_char '\n' csv |> List.filter (( <> ) "") in
  Alcotest.(check string) "header" "time,kind,job,proc,speed" (List.hd lines);
  (* arrival + start + complete = 3 events *)
  Alcotest.(check int) "rows" 4 (List.length lines)

(* ------------------------------------------------------------------ *)
(* Cross-checks against the analytic layer on real PD runs              *)
(* ------------------------------------------------------------------ *)

let gen_setup =
  QCheck.Gen.(
    let* machines = 1 -- 3 in
    let* n = 1 -- 10 in
    let* jobs =
      list_size (return n)
        (let* r = float_range 0.0 6.0 in
         let* span = float_range 0.4 3.0 in
         let* w = float_range 0.2 2.0 in
         let* v = float_range 0.1 15.0 in
         return (r, r +. span, w, v))
    in
    return (machines, jobs))

let arb_setup =
  QCheck.make gen_setup ~print:(fun (m, jobs) ->
      Printf.sprintf "m=%d jobs=[%s]" m
        (String.concat ";"
           (List.map
              (fun (r, d, w, v) -> Printf.sprintf "(%g,%g,%g,%g)" r d w v)
              jobs)))

let instance_of (machines, jobs) =
  Instance.make ~power:p2 ~machines
    (List.mapi (fun i (r, d, w, v) -> mk ~id:i ~r ~d ~w ~v ()) jobs)

let prop_replay_agrees_with_analytic =
  QCheck.Test.make
    ~name:"replay of PD: energy, work and misses agree with Schedule"
    ~count:150 arb_setup (fun setup ->
      let inst = instance_of setup in
      let r = Speedscale_core.Pd.run inst in
      let run = Executor.replay inst r.schedule in
      (* energy agrees *)
      let analytic = Schedule.energy inst.Instance.power r.schedule in
      if Float.abs (run.total_energy -. analytic) > 1e-6 *. (1.0 +. analytic)
      then QCheck.Test.fail_reportf "energy mismatch";
      (* no deadline misses on a valid schedule *)
      if
        List.exists
          (fun (e : Executor.event) -> e.kind = Executor.Deadline_miss)
          run.events
      then QCheck.Test.fail_reportf "unexpected deadline miss";
      (* work accounting agrees per job *)
      Array.for_all
        (fun (o : Executor.job_outcome) ->
          Float.abs (o.work_done -. Schedule.work_of_job r.schedule o.job)
          <= 1e-6 *. (1.0 +. o.work_done))
        run.outcomes)

let prop_replay_counts_match_structure =
  QCheck.Test.make
    ~name:"replay preempt/migrate counts equal Structure's" ~count:150
    arb_setup (fun setup ->
      let inst = instance_of setup in
      let r = Speedscale_core.Pd.run inst in
      let run = Executor.replay inst r.schedule in
      let st = Speedscale_metrics.Structure.of_schedule r.schedule in
      let total f =
        Array.fold_left (fun acc o -> acc + f o) 0 run.outcomes
      in
      (* Structure counts a migration once (consecutive slices on distinct
         processors) and a preemption only on a time gap; the engine
         counts a migration also as a preemption.  Their relationship is
         engine.preempt = structure.preempt + structure.migrate-without-gap;
         we check the exactly-equal quantities instead: *)
      total (fun o -> o.Executor.n_migrations) = st.migrations)

let prop_replay_completes_accepted =
  QCheck.Test.make ~name:"accepted jobs complete before deadline" ~count:150
    arb_setup (fun setup ->
      let inst = instance_of setup in
      let r = Speedscale_core.Pd.run inst in
      let run = Executor.replay inst r.schedule in
      List.for_all
        (fun id ->
          let o = run.outcomes.(id) in
          o.completed
          && Option.get o.completion_time
             <= (Instance.job inst id).deadline +. 1e-6)
        r.accepted)

(* Fault injection: damage a valid schedule by deleting one slice.  The
   analytic validator and the operational replay engine must agree that
   something is wrong (some job under-served), and on healthy schedules
   they must agree everything is fine — a differential test between two
   independent checkers. *)
let prop_fault_injection_differential =
  QCheck.Test.make
    ~name:"validator and replay engine agree on damaged schedules"
    ~count:100
    QCheck.(pair arb_setup (int_bound 1000))
    (fun (setup, pick) ->
      let inst = instance_of setup in
      let r = Speedscale_core.Pd.run inst in
      let slices = r.schedule.slices in
      QCheck.assume (slices <> []);
      let victim = List.nth slices (pick mod List.length slices) in
      let damaged =
        Schedule.make ~machines:inst.Instance.machines
          ~rejected:r.schedule.rejected
          (List.filter (fun s -> s != victim) slices)
      in
      let validator_ok =
        match Schedule.validate inst damaged with Ok () -> true | Error _ -> false
      in
      let run = Executor.replay inst damaged in
      let replay_ok =
        (not
           (List.exists
              (fun (e : Executor.event) -> e.kind = Executor.Deadline_miss)
              run.events))
        && List.for_all
             (fun id -> run.outcomes.(id).completed)
             r.accepted
      in
      (* deleting work from an accepted job must break both checkers;
         if the victim belonged to work already over-provisioned by
         rounding dust both may still pass — they must AGREE either way *)
      validator_ok = replay_ok)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "simple run" `Quick test_simple_run_events;
          Alcotest.test_case "preempt/resume/migrate" `Quick
            test_preempt_resume_migrate;
          Alcotest.test_case "speed change" `Quick test_speed_change_contiguous;
          Alcotest.test_case "deadline miss" `Quick test_deadline_miss_detected;
          Alcotest.test_case "rejected job" `Quick test_rejected_job_events;
          Alcotest.test_case "mid-slice completion" `Quick
            test_mid_slice_completion;
          Alcotest.test_case "chronological" `Quick test_events_chronological;
          Alcotest.test_case "csv" `Quick test_csv_export;
        ] );
      ( "cross-checks",
        [
          q prop_replay_agrees_with_analytic;
          q prop_replay_counts_match_structure;
          q prop_replay_completes_accepted;
          q prop_fault_injection_differential;
        ] );
    ]
