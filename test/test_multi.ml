(* Tests for the multiprocessor substrates: offline energy optimum (Mopt),
   multiprocessor Optimal Available (Moa) and the exact profitable optimum
   by subset enumeration (Opt). *)

open Speedscale_model
open Speedscale_multi

let p2 = Power.make 2.0
let p3 = Power.make 3.0

let mk_job ~id ~r ~d ~w ?(v = Float.infinity) () =
  Job.make ~id ~release:r ~deadline:d ~workload:w ~value:v

(* ------------------------------------------------------------------ *)
(* Mopt                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mopt_single_processor_is_yds () =
  let inst =
    Instance.make ~power:p2 ~machines:1
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:2.0 ();
      ]
  in
  Alcotest.(check (float 1e-9))
    "YDS value" 5.0 (Mopt.energy inst)

let test_mopt_two_processors () =
  let inst =
    Instance.make ~power:p3 ~machines:2
      [
        mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:2.0 ();
      ]
  in
  (* each job on its own processor at speed 2 *)
  Alcotest.(check (float 1e-3)) "2 * 8" 16.0 (Mopt.energy inst)

let test_mopt_schedule_valid () =
  let inst =
    Instance.make ~power:p2 ~machines:2
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:2.0 ();
        mk_job ~id:1 ~r:0.5 ~d:1.5 ~w:1.0 ();
        mk_job ~id:2 ~r:1.0 ~d:3.0 ~w:1.5 ();
      ]
  in
  let s = Mopt.schedule inst in
  match Schedule.validate inst s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid Mopt schedule: %s" e

(* ------------------------------------------------------------------ *)
(* Moa                                                                  *)
(* ------------------------------------------------------------------ *)

let test_moa_single_event_equals_opt () =
  (* all jobs released together: mOA = offline optimum *)
  let inst =
    Instance.make ~power:p2 ~machines:2
      [
        mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 ();
        mk_job ~id:1 ~r:0.0 ~d:2.0 ~w:2.0 ();
        mk_job ~id:2 ~r:0.0 ~d:2.0 ~w:1.0 ();
      ]
  in
  Alcotest.(check (float 1e-2))
    "matches Mopt" (Mopt.energy inst) (Moa.energy inst)

let gen_setup =
  QCheck.Gen.(
    let* machines = 1 -- 3 in
    let* n = 1 -- 6 in
    let* jobs =
      list_size (return n)
        (let* r = float_range 0.0 5.0 in
         let* span = float_range 0.4 3.0 in
         let* w = float_range 0.2 2.0 in
         return (r, r +. span, w))
    in
    return (machines, jobs))

let arb_setup =
  QCheck.make gen_setup ~print:(fun (m, jobs) ->
      Printf.sprintf "m=%d jobs=[%s]" m
        (String.concat ";"
           (List.map (fun (r, d, w) -> Printf.sprintf "(%g,%g,%g)" r d w) jobs)))

let instance_of (machines, jobs) =
  Instance.make ~power:p2 ~machines
    (List.mapi (fun i (r, d, w) -> mk_job ~id:i ~r ~d ~w ()) jobs)

let prop_moa_feasible_and_bounded =
  QCheck.Test.make ~name:"mOA feasible; Mopt <= mOA <= alpha^alpha Mopt"
    ~count:40 arb_setup (fun setup ->
      let inst = instance_of setup in
      let s = Moa.schedule inst in
      (match Schedule.validate inst s with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible mOA: %s" e);
      let moa = Schedule.energy p2 s in
      let opt = Mopt.energy inst in
      (* the numeric solver leaves ~1% slack on both sides *)
      moa >= opt -. (2e-2 *. (1.0 +. opt))
      && moa <= (4.0 *. opt) +. (2e-2 *. (1.0 +. opt)))

(* ------------------------------------------------------------------ *)
(* Mavr                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mavr_single_processor_is_avr () =
  let inst =
    Instance.make ~power:p2 ~machines:1
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:2.0 ();
        mk_job ~id:1 ~r:1.0 ~d:3.0 ~w:2.0 ();
      ]
  in
  Alcotest.(check (float 1e-9))
    "matches classical AVR"
    (Speedscale_single.Avr.energy inst)
    (Mavr.energy inst)

let test_mavr_two_processors () =
  (* two non-overlapping-density jobs, each below the other's average:
     pooled on both processors *)
  let inst =
    Instance.make ~power:p2 ~machines:2
      [
        mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:1.0 ();
      ]
  in
  (* each density 1, each dedicated at speed 1: energy 2 *)
  Alcotest.(check (float 1e-9)) "dedicated densities" 2.0 (Mavr.energy inst)

let prop_mavr_feasible_and_above_opt =
  QCheck.Test.make ~name:"mAVR feasible; energy >= Mopt" ~count:40 arb_setup
    (fun setup ->
      let inst = instance_of setup in
      let s = Mavr.schedule inst in
      (match Schedule.validate inst s with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible mAVR: %s" e);
      let e = Schedule.energy p2 s in
      Float.abs (e -. Mavr.energy inst) <= 1e-6 *. (1.0 +. e)
      && e >= Mopt.energy inst -. (2e-2 *. (1.0 +. e)))

(* ------------------------------------------------------------------ *)
(* Partitioned (non-migratory)                                          *)
(* ------------------------------------------------------------------ *)

let test_partitioned_single_machine_is_yds () =
  let inst =
    Instance.make ~power:p2 ~machines:1
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:2.0 ();
      ]
  in
  Alcotest.(check (float 1e-9)) "YDS value" 5.0 (Partitioned.energy inst)

let test_partitioned_spreads_equal_jobs () =
  let inst =
    Instance.make ~power:p2 ~machines:2
      [
        mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:1.0 ();
      ]
  in
  let a = Partitioned.assign Least_energy_increase inst in
  Alcotest.(check bool) "different processors" true (a.(0) <> a.(1));
  Alcotest.(check (float 1e-9)) "each at speed 1" 2.0 (Partitioned.energy inst)

let prop_partitioned_feasible_and_above_migratory =
  QCheck.Test.make
    ~name:"partitioned feasible; energy >= migratory optimum" ~count:30
    arb_setup (fun setup ->
      let inst = instance_of setup in
      let s = Partitioned.schedule inst in
      (match Schedule.validate inst s with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible partitioned: %s" e);
      (* per-processor slices never collide across processors by
         construction; energy dominates the migratory optimum *)
      Schedule.energy p2 s >= Mopt.energy inst -. 2e-2)

let prop_partitioned_local_search_never_hurts =
  QCheck.Test.make
    ~name:"local search never increases partitioned energy" ~count:25
    arb_setup (fun setup ->
      let inst = instance_of setup in
      let base = Partitioned.energy inst in
      let improved = Partitioned.energy ~local_search:true inst in
      (match
         Schedule.validate inst (Partitioned.schedule ~local_search:true inst)
       with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible after search: %s" e);
      improved <= base +. (1e-9 *. (1.0 +. base)))

let test_partitioned_local_search_fixes_bad_start () =
  (* least-work puts the two big jobs apart but pairs them with the small
     ones badly; the crafted case below is fixed by one swap *)
  let inst =
    Instance.make ~power:p2 ~machines:2
      [
        mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:1.9 ();
        mk_job ~id:2 ~r:1.0 ~d:2.0 ~w:2.0 ();
        mk_job ~id:3 ~r:1.0 ~d:2.0 ~w:1.9 ();
      ]
  in
  (* a deliberately bad assignment: both [0,1) jobs together *)
  let bad = [| 0; 0; 1; 1 |] in
  let better = Partitioned.improve inst bad in
  let energy_of a =
    List.init 2 (fun p ->
        Speedscale_single.Yds.energy p2
          (Array.to_list inst.jobs
          |> List.filter (fun (j : Job.t) -> a.(j.id) = p)))
    |> List.fold_left ( +. ) 0.0
  in
  Alcotest.(check bool) "strictly better" true
    (energy_of better < energy_of bad -. 1e-9)

let prop_partitioned_heuristics_both_valid =
  QCheck.Test.make ~name:"both partition heuristics produce valid schedules"
    ~count:30 arb_setup (fun setup ->
      let inst = instance_of setup in
      List.for_all
        (fun h ->
          match
            Schedule.validate inst (Partitioned.schedule ~heuristic:h inst)
          with
          | Ok () -> true
          | Error _ -> false)
        [ Partitioned.Least_work; Partitioned.Least_energy_increase ])

(* ------------------------------------------------------------------ *)
(* Opt (exact IMP)                                                      *)
(* ------------------------------------------------------------------ *)

let test_opt_single_job_accept_or_reject () =
  (* finishing costs 4 (speed 2 for 1s at alpha 2) *)
  let costly v =
    Instance.make ~power:p2 ~machines:1
      [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ~v () ]
  in
  let r_accept = Opt.solve (costly 10.0) in
  Alcotest.(check (float 1e-6)) "accepts: cost = energy" 4.0 r_accept.cost;
  Alcotest.(check (list int)) "accepted set" [ 0 ] r_accept.accepted;
  let r_reject = Opt.solve (costly 3.0) in
  Alcotest.(check (float 1e-6)) "rejects: cost = value" 3.0 r_reject.cost;
  Alcotest.(check (list int)) "empty set" [] r_reject.accepted

let test_opt_mixed_pair () =
  (* two jobs share [0,1] on one processor; alpha=2.
     energies: both = (w1+w2)^2 = 9; only j0 (w=1) = 1; only j1 (w=2) = 4.
     values: v0 = 2, v1 = 3.
     costs: both: 9; none: 5; only j0: 1 + 3 = 4; only j1: 4 + 2 = 6. *)
  let inst =
    Instance.make ~power:p2 ~machines:1
      [
        mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 ~v:2.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:2.0 ~v:3.0 ();
      ]
  in
  let r = Opt.solve inst in
  Alcotest.(check (float 1e-6)) "best is only j0" 4.0 r.cost;
  Alcotest.(check (list int)) "keeps j0" [ 0 ] r.accepted

let test_opt_best_schedule_consistent () =
  let inst =
    Instance.make ~power:p2 ~machines:2
      [
        mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.5 ~v:8.0 ();
        mk_job ~id:1 ~r:0.0 ~d:2.0 ~w:1.0 ~v:0.1 ();
        mk_job ~id:2 ~r:0.5 ~d:2.0 ~w:2.0 ~v:9.0 ();
      ]
  in
  let r, sched = Opt.best_schedule inst in
  (match Schedule.validate inst sched with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid OPT schedule: %s" e);
  Alcotest.(check (float 1e-2))
    "schedule cost matches reported cost" r.cost
    (Cost.total (Schedule.cost inst sched))

let test_opt_rejects_oversized_instances () =
  let inst =
    Instance.make ~power:p2 ~machines:1
      (List.init 15 (fun i ->
           mk_job ~id:i ~r:(float_of_int i) ~d:(float_of_int i +. 1.0) ~w:1.0
             ~v:1.0 ()))
  in
  Alcotest.check_raises "limit enforced"
    (Invalid_argument "Opt.solve: 15 jobs exceed the enumeration limit 14")
    (fun () -> ignore (Opt.solve inst))

(* ------------------------------------------------------------------ *)
(* Mcll (naive multiprocessor CLL)                                      *)
(* ------------------------------------------------------------------ *)

let test_mcll_single_processor_matches_cll () =
  let inst =
    Instance.make ~power:p2 ~machines:1
      [
        Job.make ~id:0 ~release:0.0 ~deadline:1.0 ~workload:1.0 ~value:100.0;
        Job.make ~id:1 ~release:0.0 ~deadline:1.0 ~workload:2.0 ~value:0.05;
      ]
  in
  let m = Mcll.schedule inst in
  let c = Speedscale_single.Cll.schedule inst in
  Alcotest.(check (list int)) "same rejections" c.rejected m.rejected;
  Alcotest.(check (float 1e-6))
    "same cost"
    (Cost.total (Schedule.cost inst c))
    (Cost.total (Schedule.cost inst m))

(* The ground-truth competitive test: PD against the exact optimum. *)
let gen_profitable =
  QCheck.Gen.(
    let* machines = 1 -- 3 in
    let* n = 1 -- 6 in
    let* jobs =
      list_size (return n)
        (let* r = float_range 0.0 4.0 in
         let* span = float_range 0.4 3.0 in
         let* w = float_range 0.2 2.0 in
         let* v = float_range 0.1 10.0 in
         return (r, r +. span, w, v))
    in
    return (machines, jobs))

let arb_profitable =
  QCheck.make gen_profitable ~print:(fun (m, jobs) ->
      Printf.sprintf "m=%d jobs=[%s]" m
        (String.concat ";"
           (List.map
              (fun (r, d, w, v) -> Printf.sprintf "(%g,%g,%g,%g)" r d w v)
              jobs)))

let prop_mcll_feasible =
  QCheck.Test.make ~name:"mCLL schedules are feasible" ~count:20
    arb_profitable (fun (machines, jobs) ->
      let inst =
        Instance.make ~power:p2 ~machines
          (List.mapi (fun i (r, d, w, v) -> mk_job ~id:i ~r ~d ~w ~v ()) jobs)
      in
      match Schedule.validate inst (Mcll.schedule inst) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "infeasible mCLL: %s" e)

let prop_pd_within_guarantee_of_exact_opt =
  QCheck.Test.make ~name:"cost(PD) <= alpha^alpha * cost(OPT-exact)"
    ~count:25 arb_profitable (fun (machines, jobs) ->
      let inst =
        Instance.make ~power:p2 ~machines
          (List.mapi (fun i (r, d, w, v) -> mk_job ~id:i ~r ~d ~w ~v ()) jobs)
      in
      let pd = Speedscale_core.Pd.run inst in
      let opt = Opt.solve inst in
      Cost.total pd.cost <= (4.0 *. opt.cost) +. (5e-2 *. (1.0 +. opt.cost)))

let prop_dual_bound_below_exact_opt =
  QCheck.Test.make ~name:"g(lambda) <= cost(OPT-exact)" ~count:25
    arb_profitable (fun (machines, jobs) ->
      let inst =
        Instance.make ~power:p2 ~machines
          (List.mapi (fun i (r, d, w, v) -> mk_job ~id:i ~r ~d ~w ~v ()) jobs)
      in
      let pd = Speedscale_core.Pd.run inst in
      let opt = Opt.solve inst in
      pd.dual_bound <= opt.cost +. (5e-2 *. (1.0 +. opt.cost)))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "multi"
    [
      ( "mopt",
        [
          Alcotest.test_case "m=1 is YDS" `Quick test_mopt_single_processor_is_yds;
          Alcotest.test_case "two processors" `Quick test_mopt_two_processors;
          Alcotest.test_case "schedule valid" `Quick test_mopt_schedule_valid;
        ] );
      ( "moa",
        [
          Alcotest.test_case "single event" `Quick test_moa_single_event_equals_opt;
          q prop_moa_feasible_and_bounded;
        ] );
      ( "mavr",
        [
          Alcotest.test_case "m=1 is AVR" `Quick test_mavr_single_processor_is_avr;
          Alcotest.test_case "two processors" `Quick test_mavr_two_processors;
          q prop_mavr_feasible_and_above_opt;
        ] );
      ( "partitioned",
        [
          Alcotest.test_case "m=1 is YDS" `Quick
            test_partitioned_single_machine_is_yds;
          Alcotest.test_case "spreads equal jobs" `Quick
            test_partitioned_spreads_equal_jobs;
          Alcotest.test_case "local search fixes bad start" `Quick
            test_partitioned_local_search_fixes_bad_start;
          q prop_partitioned_feasible_and_above_migratory;
          q prop_partitioned_heuristics_both_valid;
          q prop_partitioned_local_search_never_hurts;
        ] );
      ( "mcll",
        [
          Alcotest.test_case "m=1 matches CLL" `Quick
            test_mcll_single_processor_matches_cll;
          q prop_mcll_feasible;
        ] );
      ( "opt",
        [
          Alcotest.test_case "single job" `Quick
            test_opt_single_job_accept_or_reject;
          Alcotest.test_case "mixed pair" `Quick test_opt_mixed_pair;
          Alcotest.test_case "best schedule" `Quick test_opt_best_schedule_consistent;
          Alcotest.test_case "size limit" `Quick test_opt_rejects_oversized_instances;
          q prop_pd_within_guarantee_of_exact_opt;
          q prop_dual_bound_below_exact_opt;
        ] );
    ]
