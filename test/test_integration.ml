(* Cross-stack integration tests: whole pipelines that exercise several
   libraries together — generator -> PD -> validation -> certificate ->
   analysis -> file round-trips — the way a downstream user would chain
   them. *)

open Speedscale_model
open Speedscale_workload

let p25 = Power.make 2.5

(* ------------------------------------------------------------------ *)
(* End-to-end: datacenter workload through the whole PD pipeline        *)
(* ------------------------------------------------------------------ *)

let test_datacenter_end_to_end () =
  let inst = Generate.datacenter ~power:p25 ~machines:4 ~seed:99 ~n:50 in
  let r = Speedscale_core.Pd.run inst in
  (* 1. schedule is feasible *)
  (match Schedule.validate inst r.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid schedule: %s" e);
  (* 2. the certificate holds *)
  Alcotest.(check bool) "Theorem 3 certificate" true
    (Cost.total r.cost <= (r.guarantee *. r.dual_bound) +. 1e-6);
  (* 3. the full Section 4 analysis validates *)
  let a = Speedscale_core.Analysis.analyze inst r in
  Alcotest.(check bool) "analysis checks" true
    (a.traces_disjoint && a.prop7_ok && a.prop8b_ok && a.lemma9_ok
   && a.lemma10_ok && a.lemma11_ok && a.theorem3_ok);
  (* 4. profit identity ties the two objectives together *)
  Alcotest.(check (float 1e-6)) "profit identity" 0.0
    (Speedscale_metrics.Profit.identity_gap inst r.schedule);
  (* 5. every accepted job is finished, every rejected one untouched *)
  List.iter
    (fun id ->
      Alcotest.(check bool) "accepted finished" true
        (List.mem id (Schedule.finished inst r.schedule)))
    r.accepted

let test_instance_survives_disk_and_reruns_identically () =
  let inst = Generate.datacenter ~power:p25 ~machines:2 ~seed:5 ~n:20 in
  let r1 = Speedscale_core.Pd.run inst in
  let path = Filename.temp_file "speedscale" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path inst;
      let inst' = Io.load path in
      let r2 = Speedscale_core.Pd.run inst' in
      Alcotest.(check (float 1e-9))
        "identical cost after file round-trip"
        (Cost.total r1.cost) (Cost.total r2.cost);
      Alcotest.(check (list int)) "identical rejections" r1.rejected r2.rejected)

(* ------------------------------------------------------------------ *)
(* Online vs offline consistency across the whole stack                 *)
(* ------------------------------------------------------------------ *)

let test_online_offline_sandwich () =
  (* dual bound <= exact OPT <= PD cost <= alpha^alpha * dual bound *)
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:2
      [
        Job.make ~id:0 ~release:0.0 ~deadline:2.0 ~workload:1.5 ~value:9.0;
        Job.make ~id:1 ~release:0.3 ~deadline:1.3 ~workload:2.0 ~value:1.2;
        Job.make ~id:2 ~release:0.6 ~deadline:3.0 ~workload:1.0 ~value:14.0;
        Job.make ~id:3 ~release:1.0 ~deadline:2.2 ~workload:0.8 ~value:4.0;
      ]
  in
  let pd = Speedscale_core.Pd.run inst in
  let opt = Speedscale_multi.Opt.solve inst in
  let tol = 2e-2 in
  Alcotest.(check bool) "dual <= OPT" true
    (pd.dual_bound <= opt.cost +. (tol *. (1.0 +. opt.cost)));
  Alcotest.(check bool) "OPT <= PD" true
    (opt.cost <= Cost.total pd.cost +. (tol *. (1.0 +. Cost.total pd.cost)));
  Alcotest.(check bool) "PD <= 4 * dual" true
    (Cost.total pd.cost <= (4.0 *. pd.dual_bound) +. 1e-6)

(* interval refinement: processing in arrival order with online splits
   must equal processing with the full timeline known a priori (the
   paper's "Concerning the Time Partitioning" argument). *)
let test_refinement_invariance () =
  let power = Power.make 2.0 in
  (* jobs whose windows force several refinements of earlier intervals *)
  let jobs =
    [
      Job.make ~id:0 ~release:0.0 ~deadline:8.0 ~workload:4.0 ~value:100.0;
      Job.make ~id:1 ~release:1.0 ~deadline:3.0 ~workload:1.0 ~value:50.0;
      Job.make ~id:2 ~release:2.0 ~deadline:7.0 ~workload:2.0 ~value:80.0;
      Job.make ~id:3 ~release:2.5 ~deadline:6.5 ~workload:1.0 ~value:60.0;
    ]
  in
  let inst = Instance.make ~power ~machines:2 jobs in
  let r = Speedscale_core.Pd.run inst in
  (* a-priori partition: all boundaries known up front.  PD with the
     pre-refined timeline is simulated by feeding zero-impact "marker"
     jobs first?  Instead we check the theorem's practical consequence:
     every job's committed work per ORIGINAL sub-window matches the
     refined run when recomputed from slices. *)
  List.iter
    (fun id ->
      let j = Instance.job inst id in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "job %d fully scheduled" id)
        j.workload
        (Schedule.work_of_job r.schedule id))
    r.accepted;
  (* boundaries are exactly the distinct release/deadline times *)
  let expected =
    List.concat_map (fun (j : Job.t) -> [ j.release; j.deadline ]) jobs
    |> List.sort_uniq Float.compare
  in
  Alcotest.(check int) "boundary count" (List.length expected)
    (Array.length r.final_boundaries);
  List.iteri
    (fun i b ->
      Alcotest.(check (float 1e-12)) "boundary" b r.final_boundaries.(i))
    expected

(* the driver's algorithms all coexist on a generated single-processor
   instance, and the offline optimum is the cheapest *)
let test_full_lineup_ordering () =
  let inst =
    Generate.random ~power:(Power.make 2.0) ~machines:1 ~seed:17 ~n:8
      ~arrivals:(Poisson 1.0)
      ~sizes:(Uniform_size (0.3, 1.5))
      ~laxity:(0.5, 2.0)
      ~values:(Uniform_value (0.5, 12.0))
  in
  let open Speedscale_sim in
  let cost alg = Cost.total (Driver.evaluate alg inst).cost in
  let opt = cost Driver.opt_small in
  List.iter
    (fun alg ->
      if alg.Driver.applicable inst then
        Alcotest.(check bool)
          (Printf.sprintf "OPT <= %s" alg.Driver.name)
          true
          (opt <= cost alg +. 2e-2))
    Driver.all

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "datacenter end-to-end" `Quick
            test_datacenter_end_to_end;
          Alcotest.test_case "disk round-trip rerun" `Quick
            test_instance_survives_disk_and_reruns_identically;
          Alcotest.test_case "online/offline sandwich" `Quick
            test_online_offline_sandwich;
          Alcotest.test_case "refinement invariance" `Quick
            test_refinement_invariance;
          Alcotest.test_case "full lineup ordering" `Quick
            test_full_lineup_ordering;
        ] );
    ]
