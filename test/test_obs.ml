(* Tests for the structured benchmark-result model (lib/obs): the
   canonical JSON layer, the record schema round trip, the checked-in
   golden fixture, and the domain-parallel ordered runner. *)

open Speedscale_obs

let parse_ok s =
  match Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let parse_err name s =
  match Json.of_string s with
  | Ok v -> Alcotest.failf "%s: %S parsed as %s" name s (Json.to_string v)
  | Error _ -> ()

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Json: parsing                                                       *)
(* ------------------------------------------------------------------ *)

let test_json_parse_basics () =
  let v = parse_ok {|{"a": 1, "b": [true, null, "x"], "c": -2.5}|} in
  (match Json.member "a" v with
  | Some a -> Alcotest.(check (result int string)) "int" (Ok 1) (Json.to_int a)
  | None -> Alcotest.fail "missing a");
  (match Json.member "b" v with
  | Some (Json.List [ Json.Bool true; Json.Null; Json.Str "x" ]) -> ()
  | _ -> Alcotest.fail "list shape");
  (match Json.member "c" v with
  | Some c ->
    Alcotest.(check (result (float 0.0) string)) "float" (Ok (-2.5))
      (Json.to_float c)
  | None -> Alcotest.fail "missing c");
  Alcotest.(check bool) "absent member" true (Json.member "zzz" v = None);
  (* to_float accepts Int: JSON does not distinguish *)
  Alcotest.(check (result (float 0.0) string)) "int as float" (Ok 7.0)
    (Json.to_float (Json.Int 7))

let test_json_parse_escapes () =
  (match parse_ok {|"A\n\t\\\"/"|} with
  | Json.Str s -> Alcotest.(check string) "escapes" "A\n\t\\\"/" s
  | _ -> Alcotest.fail "not a string");
  (* \uXXXX above ASCII decodes to UTF-8 bytes *)
  (match parse_ok {|"é"|} with
  | Json.Str s -> Alcotest.(check string) "utf8" "\xc3\xa9" s
  | _ -> Alcotest.fail "not a string")

let test_json_parse_errors () =
  parse_err "unclosed list" "[1,";
  parse_err "trailing garbage" {|{"a": 1} x|};
  parse_err "bare surrogate" {|"\ud800"|};
  parse_err "truncated keyword" "tru";
  parse_err "missing colon" {|{"a" 1}|};
  parse_err "empty input" "";
  parse_err "unterminated string" {|"abc|}

let test_json_nonfinite_tokens () =
  Alcotest.(check string) "inf" "Infinity" (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "-inf" "-Infinity"
    (Json.to_string (Json.Float Float.neg_infinity));
  Alcotest.(check string) "nan" "NaN" (Json.to_string (Json.Float Float.nan));
  let v = Json.List [ Json.Float Float.nan; Json.Float Float.neg_infinity ] in
  Alcotest.(check bool) "round trip" true
    (Json.equal v (parse_ok (Json.to_string v)))

let test_json_float_format () =
  Alcotest.(check string) "integral keeps .0" "3.0" (Json.float_to_string 3.0);
  Alcotest.(check string) "negative zero" "-0.0" (Json.float_to_string (-0.0));
  List.iter
    (fun x ->
      let s = Json.float_to_string x in
      Alcotest.(check bool)
        (Printf.sprintf "%s round-trips bitwise" s)
        true
        (Int64.equal (Int64.bits_of_float x)
           (Int64.bits_of_float (float_of_string s))))
    [ 0.1; 1.0 /. 3.0; 1e300; 4.9e-324; Float.max_float; 2.834168375169046 ]

(* Random values exercise the shortest-round-trip widening and escaping. *)
let gen_scalar_float =
  QCheck.Gen.(
    oneof
      [
        float_range (-1e6) 1e6;
        oneofl
          [ 0.0; -0.0; 1e-9; 1e300; 4.9e-324; Float.infinity;
            Float.neg_infinity; Float.nan ];
        map
          (fun (m, e) -> m *. (10.0 ** float_of_int e))
          (pair (float_range (-1.0) 1.0) (int_range (-30) 30));
      ])

let gen_name =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (1 -- 10)
         (oneofl [ "a"; "B"; "0"; "/"; "_"; "-"; "\xc3\xa9"; "\""; "\\"; "\n" ])))

let prop_json_float_roundtrip =
  QCheck.Test.make ~name:"float_to_string round-trips every bit pattern"
    ~count:500
    (QCheck.make gen_scalar_float ~print:Json.float_to_string)
    (fun x ->
      let y = float_of_string (Json.float_to_string x) in
      (Float.is_nan x && Float.is_nan y)
      || Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))

let prop_json_string_roundtrip =
  QCheck.Test.make ~name:"string escaping round-trips arbitrary bytes"
    ~count:500
    (QCheck.make gen_name ~print:(fun s -> s))
    (fun s ->
      match Json.of_string (Json.to_string (Json.Str s)) with
      | Ok (Json.Str s') -> String.equal s s'
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Record: schema round trip                                           *)
(* ------------------------------------------------------------------ *)

let gen_param =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Record.P_int i) small_signed_int;
        map (fun f -> Record.P_float f) gen_scalar_float;
        map (fun s -> Record.P_str s) gen_name;
        map (fun b -> Record.P_bool b) bool;
      ])

let gen_timing =
  QCheck.Gen.(
    map
      (fun (wall_s, ns_per_run, runs) ->
        { Record.wall_s; ns_per_run; runs })
      (triple
         (option (float_range 0.0 1e4))
         (option (float_range 0.0 1e12))
         (option (int_range 1 1_000_000))))

let gen_record =
  QCheck.Gen.(
    map
      (fun (id, kind, params, metrics, (counters, verdict, timing)) ->
        {
          Record.id;
          kind = (if kind then Record.Experiment else Record.Timing);
          params;
          metrics;
          counters;
          verdict;
          timing;
        })
      (tup5 gen_name bool
         (list_size (0 -- 4) (pair gen_name gen_param))
         (list_size (0 -- 4) (pair gen_name gen_scalar_float))
         (triple
            (list_size (0 -- 4) (pair gen_name small_signed_int))
            (option bool)
            (option gen_timing))))

let gen_file =
  QCheck.Gen.(
    map
      (fun (jobs, records) ->
        {
          Record.version = Record.schema_version;
          env = Record.current_env ~jobs;
          records;
        })
      (pair (int_range 1 8) (list_size (0 -- 8) gen_record)))

let arb_file =
  QCheck.make gen_file ~print:(fun f -> Record.encode_file f)

(* On failure, name the first component that differs — "the files are not
   equal" is useless for a 50-line counterexample. *)
let explain_mismatch (a : Record.file) (b : Record.file) =
  if a.version <> b.version then Some "version"
  else if not (a.env = b.env) then Some "env"
  else if List.length a.records <> List.length b.records then
    Some "record count"
  else
    List.find_mapi
      (fun i ((ra : Record.t), (rb : Record.t)) ->
        if not (Record.equal ra rb) then
          let section =
            if not (String.equal ra.id rb.id) then "id"
            else if ra.kind <> rb.kind then "kind"
            else if not (ra.params = rb.params) then "params"
            else if
              not
                (List.length ra.metrics = List.length rb.metrics
                && List.for_all2
                     (fun (k1, v1) (k2, v2) ->
                       String.equal k1 k2 && Float.equal v1 v2)
                     ra.metrics rb.metrics)
            then "metrics"
            else if not (ra.counters = rb.counters) then "counters"
            else if ra.verdict <> rb.verdict then "verdict"
            else "timing"
          in
          let param_repr = function
            | Record.P_int i -> Printf.sprintf "P_int %d" i
            | Record.P_float f -> Printf.sprintf "P_float %h" f
            | Record.P_str s -> Printf.sprintf "P_str %S" s
            | Record.P_bool b -> Printf.sprintf "P_bool %b" b
          in
          let params_repr ps =
            String.concat "; "
              (List.map
                 (fun (k, p) -> Printf.sprintf "%S -> %s" k (param_repr p))
                 ps)
          in
          Some
            (Printf.sprintf "record %d (%s) %s:\n  orig:    %s\n  decoded: %s"
               i ra.id section
               (params_repr ra.params)
               (params_repr rb.params))
        else None)
      (List.combine a.records b.records)

let prop_record_file_roundtrip =
  QCheck.Test.make ~name:"decode_file (encode_file f) = f" ~count:300 arb_file
    (fun f ->
      match Record.decode_file (Record.encode_file f) with
      | Ok f' -> (
        match explain_mismatch f f' with
        | None -> true
        | Some what -> QCheck.Test.fail_reportf "differs at %s" what)
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_record_encode_stable =
  QCheck.Test.make ~name:"encode is canonical: encode (decode (encode f)) = encode f"
    ~count:300 arb_file (fun f ->
      let bytes1 = Record.encode_file f in
      match Record.decode_file bytes1 with
      | Ok f' -> String.equal bytes1 (Record.encode_file f')
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let test_record_wrong_schema_rejected () =
  let f =
    {
      Record.version = Record.schema_version;
      env = Record.current_env ~jobs:1;
      records = [];
    }
  in
  let text = Record.encode_file f in
  let needle = Printf.sprintf "\"schema_version\": %d" Record.schema_version in
  let i =
    let rec find i =
      if String.sub text i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let bumped =
    String.sub text 0 i ^ "\"schema_version\": 999"
    ^ String.sub text
        (i + String.length needle)
        (String.length text - i - String.length needle)
  in
  match Record.decode_file bumped with
  | Ok _ -> Alcotest.fail "schema version 999 must be rejected"
  | Error e ->
    Alcotest.(check bool) "message names the version" true
      (let sub = "999" in
       let n = String.length e and k = String.length sub in
       let rec go i = i + k <= n && (String.sub e i k = sub || go (i + 1)) in
       go 0)

let test_record_with_wall () =
  let r = Record.make ~id:"X" Record.Experiment in
  let r1 = Record.with_wall ~wall_s:2.5 r in
  (match r1.timing with
  | Some { wall_s = Some w; _ } -> Alcotest.(check (float 0.0)) "filled" 2.5 w
  | _ -> Alcotest.fail "wall not filled");
  (* an existing wall-clock is never overwritten *)
  let r2 = Record.with_wall ~wall_s:9.9 r1 in
  (match r2.timing with
  | Some { wall_s = Some w; _ } -> Alcotest.(check (float 0.0)) "kept" 2.5 w
  | _ -> Alcotest.fail "wall lost");
  Alcotest.(check bool) "equal_modulo_timing ignores it" true
    (Record.equal_modulo_timing r r2);
  Alcotest.(check bool) "equal sees it" false (Record.equal r r2);
  Alcotest.(check bool) "strip_timing restores equality" true
    (Record.equal r (Record.strip_timing r2))

let test_record_read_missing_file () =
  match Record.read_file ~path:"/nonexistent/bench.json" with
  | Ok _ -> Alcotest.fail "missing file must be an Error"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Golden fixture                                                      *)
(* ------------------------------------------------------------------ *)

(* bench_golden.json was produced by `bench/main.exe E2 E3 --jobs 2 --json`
   and checked in.  Decoding it and re-encoding must reproduce the exact
   bytes — any drift in the schema or the canonical encoder shows up here
   as a diff against a file under version control. *)
let test_golden_fixture () =
  let candidates =
    [ "bench_golden.json"; "test/bench_golden.json";
      "_build/default/test/bench_golden.json" ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.fail "bench_golden.json not found"
  in
  let raw = read_all path in
  match Record.decode_file raw with
  | Error e -> Alcotest.failf "golden fixture does not decode: %s" e
  | Ok f ->
    Alcotest.(check int) "schema version" Record.schema_version f.version;
    Alcotest.(check int) "jobs recorded" 2 f.env.jobs;
    let e2 =
      match List.find_opt (fun (r : Record.t) -> r.id = "E2") f.records with
      | Some r -> r
      | None -> Alcotest.fail "no E2 record in fixture"
    in
    Alcotest.(check (option bool)) "E2 verdict CONFIRMED" (Some true)
      e2.verdict;
    Alcotest.(check bool) "E2 has the alpha=2 ratio metric" true
      (List.mem_assoc "final_ratio_alpha2" e2.metrics);
    (match e2.timing with
    | Some { wall_s = Some w; _ } ->
      Alcotest.(check bool) "wall-clock positive" true (w > 0.0)
    | _ -> Alcotest.fail "E2 record carries no wall-clock");
    Alcotest.(check string) "re-encode reproduces the bytes" raw
      (Record.encode_file f)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let test_runner_default_jobs () =
  let j = Runner.default_jobs () in
  Alcotest.(check bool) "clamped to 1..8" true (j >= 1 && j <= 8)

let test_runner_ordered_results () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Runner.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 7 ]

let test_runner_empty_and_fewer_tasks_than_jobs () =
  Alcotest.(check (list int)) "empty" [] (Runner.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "2 tasks, 8 jobs" [ 1; 2 ]
    (Runner.map ~jobs:8 succ [ 0; 1 ])

let test_runner_exception_propagation () =
  (* the earliest failing index wins, deterministically, at any jobs *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d" jobs)
        (Failure "boom 3")
        (fun () ->
          ignore
            (Runner.map ~jobs
               (fun i ->
                 if i mod 7 = 3 then failwith (Printf.sprintf "boom %d" i)
                 else i)
               (List.init 40 Fun.id))))
    [ 1; 4 ]

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "non-finite tokens" `Quick
            test_json_nonfinite_tokens;
          Alcotest.test_case "float format" `Quick test_json_float_format;
          q prop_json_float_roundtrip;
          q prop_json_string_roundtrip;
        ] );
      ( "record",
        [
          q prop_record_file_roundtrip;
          q prop_record_encode_stable;
          Alcotest.test_case "wrong schema rejected" `Quick
            test_record_wrong_schema_rejected;
          Alcotest.test_case "with_wall" `Quick test_record_with_wall;
          Alcotest.test_case "missing file" `Quick
            test_record_read_missing_file;
        ] );
      ( "golden",
        [ Alcotest.test_case "fixture byte-stable" `Quick test_golden_fixture ] );
      ( "runner",
        [
          Alcotest.test_case "default jobs" `Quick test_runner_default_jobs;
          Alcotest.test_case "ordered results" `Quick
            test_runner_ordered_results;
          Alcotest.test_case "edge sizes" `Quick
            test_runner_empty_and_fewer_tasks_than_jobs;
          Alcotest.test_case "exception propagation" `Quick
            test_runner_exception_propagation;
        ] );
    ]
