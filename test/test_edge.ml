(* Edge-case and robustness suite: pathological instances across the whole
   stack.  Each case runs PD end-to-end, validates the schedule, and checks
   the Theorem 3 certificate — the invariants that must survive any
   numerical corner. *)

open Speedscale_model

let mk ~id ~r ~d ~w ~v = Job.make ~id ~release:r ~deadline:d ~workload:w ~value:v

let run_and_check name (inst : Instance.t) =
  let r = Speedscale_core.Pd.run inst in
  (match Schedule.validate inst r.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid schedule: %s" name e);
  let cost = Cost.total r.cost in
  Alcotest.(check bool)
    (Printf.sprintf "%s: certificate (cost %.6g <= %.6g)" name cost
       (r.guarantee *. r.dual_bound))
    true
    (cost <= (r.guarantee *. r.dual_bound) +. (1e-6 *. (1.0 +. cost)));
  Alcotest.(check bool)
    (name ^ ": finite cost") true (Float.is_finite cost);
  r

let test_identical_jobs () =
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:2
      (List.init 4 (fun i -> mk ~id:i ~r:0.0 ~d:1.0 ~w:1.0 ~v:50.0))
  in
  let r = run_and_check "identical" inst in
  (* four equal jobs, two processors: pool at speed 2 each *)
  Alcotest.(check (float 1e-6)) "energy 2*1*2^2" 8.0 r.cost.energy

let test_nested_windows () =
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:1
      [
        mk ~id:0 ~r:0.0 ~d:8.0 ~w:2.0 ~v:1e6;
        mk ~id:1 ~r:1.0 ~d:7.0 ~w:2.0 ~v:1e6;
        mk ~id:2 ~r:2.0 ~d:6.0 ~w:2.0 ~v:1e6;
        mk ~id:3 ~r:3.0 ~d:5.0 ~w:2.0 ~v:1e6;
      ]
  in
  ignore (run_and_check "nested" inst)

let test_zero_laxity_chain () =
  (* back-to-back zero-laxity jobs force exact speeds *)
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:1
      (List.init 5 (fun i ->
           mk ~id:i
             ~r:(float_of_int i)
             ~d:(float_of_int (i + 1))
             ~w:(1.0 +. (0.3 *. float_of_int i))
             ~v:1e6))
  in
  let r = run_and_check "zero-laxity" inst in
  Alcotest.(check int) "all accepted" 5 (List.length r.accepted)

let test_extreme_alpha_high () =
  let inst =
    Instance.make ~power:(Power.make 8.0) ~machines:2
      [
        mk ~id:0 ~r:0.0 ~d:1.0 ~w:1.2 ~v:5.0;
        mk ~id:1 ~r:0.2 ~d:1.5 ~w:0.7 ~v:3.0;
        mk ~id:2 ~r:0.4 ~d:2.0 ~w:0.9 ~v:0.001;
      ]
  in
  ignore (run_and_check "alpha=8" inst)

let test_extreme_alpha_low () =
  let inst =
    Instance.make ~power:(Power.make 1.05) ~machines:1
      [
        mk ~id:0 ~r:0.0 ~d:1.0 ~w:1.2 ~v:5.0;
        mk ~id:1 ~r:0.2 ~d:1.5 ~w:0.7 ~v:0.4;
      ]
  in
  ignore (run_and_check "alpha=1.05" inst)

let test_extreme_magnitudes () =
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:1
      [
        mk ~id:0 ~r:1e6 ~d:(1e6 +. 1.0) ~w:1e-6 ~v:1e9;
        mk ~id:1 ~r:1e6 ~d:(1e6 +. 2.0) ~w:1e3 ~v:1e-6;
      ]
  in
  let r = run_and_check "magnitudes" inst in
  (* the heavy near-worthless job must be rejected *)
  Alcotest.(check bool) "heavy job rejected" true (List.mem 1 r.rejected)

let test_burst_arrivals () =
  let inst =
    Instance.make ~power:(Power.make 3.0) ~machines:4
      (List.init 20 (fun i ->
           mk ~id:i ~r:0.0
             ~d:(1.0 +. (0.1 *. float_of_int (i mod 5)))
             ~w:(0.4 +. (0.05 *. float_of_int i))
             ~v:(if i mod 3 = 0 then 0.05 else 10.0)))
  in
  let r = run_and_check "burst-20" inst in
  Alcotest.(check bool) "some rejected" true (r.rejected <> [])

let test_zero_value_jobs () =
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:1
      [
        mk ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 ~v:0.0;
        mk ~id:1 ~r:0.0 ~d:2.0 ~w:1.0 ~v:100.0;
      ]
  in
  let r = run_and_check "zero value" inst in
  Alcotest.(check bool) "free job rejected" true (List.mem 0 r.rejected);
  Alcotest.(check (float 1e-9)) "no value lost beyond 0" 0.0 r.cost.lost_value

let test_tiny_delta_degrades_gracefully () =
  (* The alpha^alpha certificate is proven only at delta = delta* (the
     assembly in Theorem 3 uses delta* exactly; Lemma 9's delta*E_PD term
     vanishes as delta -> 0).  With a tiny delta PD must still produce a
     feasible schedule and a VALID lower bound g <= OPT — just a weaker
     one. *)
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:2
      [
        mk ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 ~v:4.0;
        mk ~id:1 ~r:0.3 ~d:1.8 ~w:1.5 ~v:6.0;
        mk ~id:2 ~r:0.6 ~d:2.0 ~w:0.8 ~v:0.2;
      ]
  in
  let r = Speedscale_core.Pd.run ~delta:1e-6 inst in
  (match Schedule.validate inst r.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "tiny delta: %s" e);
  let opt = Speedscale_multi.Opt.solve inst in
  Alcotest.(check bool) "weak duality survives any delta" true
    (r.dual_bound <= opt.cost +. (2e-2 *. (1.0 +. opt.cost)));
  (* and the certificate DOES hold at delta* on the same instance *)
  let r_star = Speedscale_core.Pd.run inst in
  Alcotest.(check bool) "certificate at delta*" true
    (Cost.total r_star.cost <= (r_star.guarantee *. r_star.dual_bound) +. 1e-6)

let test_more_jobs_than_machines_single_interval () =
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:3
      (List.init 9 (fun i ->
           mk ~id:i ~r:0.0 ~d:1.0 ~w:(0.5 +. (0.1 *. float_of_int i)) ~v:1e6))
  in
  let r = run_and_check "9 jobs 3 machines" inst in
  (* everything accepted; pool spreads the total over 3 processors *)
  Alcotest.(check int) "all accepted" 9 (List.length r.accepted)

let test_long_quiet_gap () =
  (* two activity islands separated by a long idle gap *)
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:1
      [
        mk ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 ~v:1e6;
        mk ~id:1 ~r:1000.0 ~d:1001.0 ~w:1.0 ~v:1e6;
      ]
  in
  let r = run_and_check "quiet gap" inst in
  (* no energy burned in the gap *)
  Alcotest.(check (float 1e-6)) "energy islands only" 2.0 r.cost.energy

let test_repeated_boundaries () =
  (* many jobs sharing the same deadline: refinement no-ops must be safe *)
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:2
      (List.init 8 (fun i ->
           mk ~id:i ~r:(0.25 *. float_of_int (i / 2)) ~d:4.0 ~w:0.8 ~v:1e6))
  in
  ignore (run_and_check "repeated boundaries" inst)

let test_yds_zero_laxity_stack () =
  (* YDS on simultaneous zero-laxity jobs is exactly their density sum *)
  let jobs =
    [
      mk ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ~v:Float.infinity;
      mk ~id:1 ~r:0.0 ~d:1.0 ~w:3.0 ~v:Float.infinity;
    ]
  in
  Alcotest.(check (float 1e-9)) "density 5, alpha 2" 25.0
    (Speedscale_single.Yds.energy (Power.make 2.0) jobs)

let test_chen_degenerate_interval () =
  (* extremely short interval with large loads: speeds blow up but stay
     finite and consistent *)
  let t =
    Speedscale_chen.Chen.build ~machines:2 ~length:1e-9 [ (0, 1.0); (1, 2.0) ]
  in
  let speeds = Speedscale_chen.Chen.processor_loads t in
  Alcotest.(check bool) "finite loads" true
    (Array.for_all Float.is_finite speeds);
  Alcotest.(check (float 1e-3)) "speed of big job" (2.0 /. 1e-9)
    (Speedscale_chen.Chen.speed_of_job t 1)

let () =
  Alcotest.run "edge"
    [
      ( "pd-corners",
        [
          Alcotest.test_case "identical jobs" `Quick test_identical_jobs;
          Alcotest.test_case "nested windows" `Quick test_nested_windows;
          Alcotest.test_case "zero laxity chain" `Quick test_zero_laxity_chain;
          Alcotest.test_case "alpha = 8" `Quick test_extreme_alpha_high;
          Alcotest.test_case "alpha = 1.05" `Quick test_extreme_alpha_low;
          Alcotest.test_case "extreme magnitudes" `Quick test_extreme_magnitudes;
          Alcotest.test_case "burst of 20" `Quick test_burst_arrivals;
          Alcotest.test_case "zero-value jobs" `Quick test_zero_value_jobs;
          Alcotest.test_case "tiny delta" `Quick test_tiny_delta_degrades_gracefully;
          Alcotest.test_case "9 jobs / 3 machines" `Quick
            test_more_jobs_than_machines_single_interval;
          Alcotest.test_case "long quiet gap" `Quick test_long_quiet_gap;
          Alcotest.test_case "repeated boundaries" `Quick test_repeated_boundaries;
        ] );
      ( "substrate-corners",
        [
          Alcotest.test_case "yds zero-laxity stack" `Quick
            test_yds_zero_laxity_stack;
          Alcotest.test_case "chen degenerate interval" `Quick
            test_chen_degenerate_interval;
        ] );
    ]
