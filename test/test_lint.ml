(* Fixture-driven tests for the speedscale_lint engine: every rule firing
   and not firing, suppression handling, and the baseline round-trip. *)

open Speedscale_lint

(* Directive text assembled by concatenation so slint does not read these
   fixtures as directives for THIS file when scanning the tree. *)
let allow rule reason = "(* slint: " ^ "allow " ^ rule ^ " -- " ^ reason ^ " *)"

let rules_of name = Registry.select [ name ]

let findings ?(rel = "lib/model/fixture.ml") ?(has_mli = true) ~rule text =
  Engine.check_source ~has_mli ~rules:(rules_of rule) ~rel text
  |> List.filter (fun (f : Finding.t) -> String.equal f.rule rule)

let check_fires name ?rel ?has_mli ~rule text =
  Alcotest.(check bool)
    (name ^ ": fires") true
    (findings ?rel ?has_mli ~rule text <> [])

let check_quiet name ?rel ?has_mli ~rule text =
  let hits = findings ?rel ?has_mli ~rule text in
  Alcotest.(check int) (name ^ ": quiet") 0 (List.length hits)

(* ---------------- float-eq ---------------- *)

let test_float_eq () =
  let rule = "float-eq" in
  check_fires "literal rhs" ~rule "let f x = x = 1.0";
  check_fires "float op" ~rule "let f a b = a +. 1.0 = b";
  check_fires "infinity" ~rule "let f v = v = Float.infinity";
  check_fires "compare" ~rule "let f x = compare x 0.5";
  check_fires "physical" ~rule "let f x = x == 0.0";
  check_fires "not-equal" ~rule "let f x = x <> sqrt 2.0";
  check_quiet "int compare" ~rule "let f x = x = 1";
  check_quiet "Float.equal" ~rule "let f x = Float.equal x 1.0";
  check_quiet "string" ~rule {|let f s = s = "inf"|};
  (* the compare-with-0 idiom on float operands *)
  check_fires "compare = 0" ~rule "let f x = compare x 1.0 = 0";
  check_fires "0 = compare" ~rule "let f x = 0 = compare 1.0 x";
  check_fires "compare <> 0" ~rule "let f x = compare x 1.0 <> 0";
  check_quiet "int compare = 0" ~rule "let f x y = compare (x : int) y = 0";
  (* the idiom is one finding, not one for the inner compare too *)
  Alcotest.(check int)
    "compare = 0 reported once" 1
    (List.length (findings ~rule "let f x = compare x 1.0 = 0"));
  (* equality hidden inside a container scan: the operands of [=] look
     type-neutral but the scanned container holds floats *)
  check_fires "exists over float array" ~rule
    "let f b = Array.exists (fun x -> x = b) [| 1.0; 2.0 |]";
  check_fires "for_all flipped operands" ~rule
    "let f b = Array.for_all (fun x -> b <> x) [| 0.5 |]";
  check_fires "exists over Array.make" ~rule
    "let f b n = Array.exists (fun x -> x = b) (Array.make n 0.0)";
  check_fires "exists over Array.init" ~rule
    "let f b n = Array.exists (fun x -> x = b) (Array.init n float_of_int)";
  check_fires "mem with float needle" ~rule "let f a = Array.mem 1.0 a";
  check_fires "mem over float list" ~rule
    "let f b = List.mem b [ 1.0; 2.0 ]";
  check_quiet "exists over int array" ~rule
    "let f b = Array.exists (fun x -> x = b) [| 1; 2 |]";
  check_quiet "predicate without the param" ~rule
    "let f b c = Array.exists (fun _ -> b = c) [| 1.0 |]";
  check_quiet "Float.equal predicate" ~rule
    "let f b = Array.exists (fun x -> Float.equal x b) [| 1.0 |]";
  (* the hidden form is one finding, not one for the inner [=] too *)
  Alcotest.(check int)
    "scan reported once" 1
    (List.length
       (findings ~rule "let f b = Array.exists (fun x -> x = 1.0) [| 2.0 |]"))

(* ---------------- naive-sum ---------------- *)

let test_naive_sum () =
  let rule = "naive-sum" in
  check_fires "operator" ~rule "let f l = List.fold_left ( +. ) 0.0 l";
  check_fires "eta" ~rule "let f a = Array.fold_left (fun acc x -> acc +. x) 0.0 a";
  check_fires "projection" ~rule
    "let f l = List.fold_left (fun acc j -> acc +. j.value) 0.0 l";
  check_quiet "outside lib" ~rel:"bench/fixture.ml" ~rule
    "let f l = List.fold_left ( +. ) 0.0 l";
  check_quiet "int fold" ~rule "let f l = List.fold_left ( + ) 0 l";
  check_quiet "max fold" ~rule "let f l = List.fold_left Float.max 0.0 l"

(* ---------------- nondeterminism ---------------- *)

let test_nondeterminism () =
  let rule = "nondeterminism" in
  check_fires "Random.float" ~rule "let f () = Random.float 1.0";
  check_fires "Random.self_init" ~rule "let f () = Random.self_init ()";
  check_quiet "Random.State" ~rule "let f st = Random.State.float st 1.0";
  check_quiet "unrelated" ~rule "let f x = x + 1"

(* ---------------- printf-in-lib ---------------- *)

let test_printf_in_lib () =
  let rule = "printf-in-lib" in
  check_fires "Printf.printf" ~rule {|let f () = Printf.printf "x"|};
  check_fires "Printf.sprintf" ~rule {|let f n = Printf.sprintf "%d" n|};
  check_fires "print_endline" ~rule {|let f () = print_endline "x"|};
  check_fires "Format.printf" ~rule {|let f () = Format.printf "x"|};
  check_quiet "outside lib" ~rel:"bin/fixture.ml" ~rule
    {|let f () = Printf.printf "x"|};
  check_quiet "Fmt.str" ~rule {|let f n = Fmt.str "%d" n|};
  check_quiet "Format.fprintf" ~rule {|let pp ppf n = Format.fprintf ppf "%d" n|}

(* ---------------- missing-mli ---------------- *)

let test_missing_mli () =
  let rule = "missing-mli" in
  check_fires "no mli" ~has_mli:false ~rule "let x = 1";
  check_quiet "has mli" ~has_mli:true ~rule "let x = 1";
  check_quiet "outside lib" ~rel:"bench/fixture.ml" ~has_mli:false ~rule
    "let x = 1"

(* ---------------- catch-all-exn ---------------- *)

let test_catch_all_exn () =
  let rule = "catch-all-exn" in
  check_fires "try wildcard" ~rule "let f g = try g () with _ -> 0";
  check_fires "match exception _" ~rule
    "let f g = match g () with x -> x | exception _ -> 0";
  check_quiet "named exn" ~rule "let f g = try g () with Not_found -> 0";
  check_quiet "guarded wildcard" ~rule
    "let f g p = try g () with _ when p -> 0"

(* ---------------- unsafe-pow ---------------- *)

let test_unsafe_pow () =
  let rule = "unsafe-pow" in
  check_fires "unknown base" ~rule "let f x a = x ** (1.0 /. a)";
  check_fires "unguarded arg" ~rule "let f s alpha = s ** alpha";
  check_quiet "integral exponent" ~rule "let f x = x ** 2.0";
  check_quiet "float_of_int exponent" ~rule "let f x n = x ** float_of_int n";
  check_quiet "literal base" ~rule "let f a = 2.0 ** a";
  check_quiet "guarded branch" ~rule
    "let f s a = if s >= 0.0 then s ** a else 0.0";
  check_quiet "guard-raise sequence" ~rule
    {|let f s a = if s < 0.0 then invalid_arg "s"; s ** a|};
  check_quiet "nonneg let" ~rule "let f x a = let y = Float.abs x in y ** a";
  check_fires "rebound variable" ~rule
    {|let f s a = if s < 0.0 then invalid_arg "s"; let s = s -. 2.0 in s ** a|};
  check_quiet "alpha producer" ~rule "let f p a = Power.alpha p ** a";
  check_quiet "sqrt base" ~rule "let f x a = sqrt x ** a";
  (* Float.pow is the same partial function as ( ** ) *)
  check_fires "Float.pow unknown base" ~rule "let f s a = Float.pow s a";
  check_quiet "Float.pow guarded" ~rule
    "let f s a = if s >= 0.0 then Float.pow s a else 0.0";
  check_quiet "Float.pow integral exponent" ~rule "let f x = Float.pow x 2.0"

(* ---------------- obj-magic ---------------- *)

let test_obj_magic () =
  let rule = "obj-magic" in
  check_fires "Obj.magic" ~rule "let f x = (Obj.magic x : int)";
  check_fires "assert false" ~rule "let f () = assert false";
  check_quiet "assert cond" ~rule "let f x = assert (x > 0)";
  check_quiet "plain code" ~rule "let f x = x + 1"

(* ---------------- domain-race ---------------- *)

let test_domain_race () =
  let rule = "domain-race" in
  (* the seeded regression: a mutable capture in a spawned closure *)
  check_fires "ref captured by spawned closure" ~rule
    {|let total = ref 0
let add x = total := !total + x
let go xs = Domain.spawn (fun () -> List.iter add xs)|};
  check_fires "incr two calls below the spawn" ~rule
    {|let hits = ref 0
let bump () = incr hits
let work () = bump ()
let go () = Domain.spawn (fun () -> work ())|};
  check_fires "named worker root" ~rule
    {|let flag = ref false
let worker () = flag := true
let go () = Domain.spawn worker|};
  check_fires "Runner.map closure" ~rule
    {|let hits = ref 0
let f xs = Runner.map (fun x -> incr hits; x) xs|};
  check_fires "hashtbl mutation" ~rule
    {|let cache = Hashtbl.create 8
let go () = Domain.spawn (fun () -> Hashtbl.replace cache 1 2)|};
  check_fires "bare deref read" ~rule
    {|let total = ref 0
let go () = Domain.spawn (fun () -> !total + 1)|};
  check_quiet "atomic is exempt" ~rule
    {|let total = Atomic.make 0
let go () = Domain.spawn (fun () -> Atomic.incr total)|};
  check_quiet "mutex mediation" ~rule
    {|let m = Mutex.create ()
let total = ref 0
let add x = Mutex.lock m; total := !total + x; Mutex.unlock m
let go xs = Domain.spawn (fun () -> List.iter add xs)|};
  check_quiet "state local to the closure" ~rule
    {|let go () = Domain.spawn (fun () -> let c = ref 0 in c := 1; !c)|};
  check_quiet "state local to a named root" ~rule
    {|let worker () = let c = ref 0 in incr c; !c
let go () = Domain.spawn worker|};
  check_quiet "data argument is not a root" ~rule
    {|let tally = ref 0
let build () = tally := 1; [ 1; 2 ]
let xs = build ()
let go f = Runner.map f xs|};
  check_quiet "no spawn at all" ~rule
    {|let total = ref 0
let add x = total := !total + x|}

(* ---------------- dls-misuse ---------------- *)

let test_dls_misuse () =
  let rule = "dls-misuse" in
  check_fires "key created inside a function" ~rule
    "let f () = Domain.DLS.new_key (fun () -> 0)";
  check_fires "key created inside a spawned closure" ~rule
    "let go () = Domain.spawn (fun () -> Domain.DLS.new_key (fun () -> 0))";
  check_fires "get before set" ~rule
    {|let k = Domain.DLS.new_key (fun () -> 0)
let f v = let old = Domain.DLS.get k in Domain.DLS.set k v; old|};
  check_quiet "toplevel key" ~rule
    "let k = Domain.DLS.new_key (fun () -> 0)";
  check_quiet "set before get" ~rule
    {|let k = Domain.DLS.new_key (fun () -> 0)
let f v = Domain.DLS.set k v; Domain.DLS.get k|};
  check_quiet "get without any set" ~rule
    {|let k = Domain.DLS.new_key (fun () -> 0)
let f () = Domain.DLS.get k|}

(* ---------------- taint-nondet ---------------- *)

let test_taint_nondet () =
  let rule = "taint-nondet" in
  (* the seeded regression: a Random call two levels below the function
     building the record payload *)
  check_fires "random two calls below the payload" ~rule
    {|let noise () = Random.float 1.0
let jitter () = noise () +. 1.0
let payload () =
  Record.make ~id:"x" ~metrics:[ ("m", jitter ()) ] Experiment|};
  check_fires "clock through a local binding" ~rule
    {|let f () = let d = Unix.gettimeofday () in metric "t" d|};
  check_fires "hashtbl order through a closure parameter" ~rule
    {|let rows tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
let emit tbl = List.iter (fun (name, v) -> counter name v) (rows tbl)|};
  check_fires "direct source in the sink argument" ~rule
    "let f () = verdict (Sys.time () > 0.0)";
  check_quiet "untainted payload" ~rule
    {|let payload v = Record.make ~id:"x" ~metrics:[ ("m", v) ] Experiment|};
  check_quiet "taint that never reaches the sink" ~rule
    {|let noise () = Random.float 1.0
let f () = let _ = noise () in metric "t" 1.0|};
  check_quiet "Random.State is deterministic" ~rule
    {|let f st = metric "t" (Random.State.float st 1.0)|};
  check_quiet "untainted rebinding shadows the taint" ~rule
    {|let f () =
  let d = Unix.gettimeofday () in
  let d = 1.0 in
  metric "t" (d +. 0.0)|}

(* ---------------- taint solver ---------------- *)

(* The fixpoint the solver must reach for boolean reachability facts:
   [fact v] iff some node reachable from [v] along [deps] satisfies
   [init] — computed here independently with a DFS. *)
let expected_reachability ~n ~deps ~init v =
  let visited = Array.make n false in
  let rec go u =
    if not visited.(u) then begin
      visited.(u) <- true;
      List.iter go (deps u)
    end
  in
  go v;
  List.exists (fun u -> visited.(u) && init u) (List.init n Fun.id)

let solver_arbitrary =
  QCheck.(pair (int_range 1 25) (small_list (pair small_nat small_nat)))

let test_solver_terminates =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"solver terminates and reaches the least fixpoint on random graphs"
       solver_arbitrary
       (fun (n, raw_edges) ->
         (* arbitrary edges modulo n: self-loops and mutual recursion
            included by construction *)
         let edges = List.map (fun (a, b) -> (a mod n, b mod n)) raw_edges in
         let deps v =
           List.filter_map (fun (a, b) -> if a = v then Some b else None) edges
         in
         let init v = v mod 3 = 0 in
         let r =
           Taint.solve ~n ~deps ~init ~join:( || ) ~equal:Bool.equal ()
         in
         r.Taint.converged
         && List.for_all
              (fun v ->
                Bool.equal (r.Taint.fact v)
                  (expected_reachability ~n ~deps ~init v))
              (List.init n Fun.id)))

let test_solver_bound () =
  (* a hostile transfer function that never stabilises must still stop at
     the bound, reporting non-convergence rather than hanging *)
  let r =
    Taint.solve ~n:2
      ~deps:(fun v -> [ 1 - v ])
      ~init:(fun _ -> 0)
      ~join:max ~equal:Int.equal
      ~transfer:(fun _ f -> f + 1)
      ()
  in
  Alcotest.(check bool) "did not converge" false r.Taint.converged

(* ---------------- SARIF golden ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sarif_fixture_findings =
  [
    Finding.v ~line:3 ~col:4 ~file:"lib/model/power.ml" ~rule:"float-eq"
      ~severity:Finding.Error {|polymorphic = on a "float" expression|};
    Finding.v ~file:"lib/obs/runner.ml" ~rule:"domain-race"
      ~severity:Finding.Warning "whole-file finding without a region";
  ]

let test_sarif_golden () =
  let rules = Registry.select [ "float-eq"; "domain-race" ] in
  let got =
    Format.asprintf "%a" (Report.pp_sarif ~rules) sarif_fixture_findings
  in
  let path =
    if Sys.file_exists "slint_golden.sarif" then "slint_golden.sarif"
    else "test/slint_golden.sarif"
  in
  Alcotest.(check string) "sarif golden bytes" (read_file path) got

(* ---------------- suppression handling ---------------- *)

let test_suppression () =
  let rule = "float-eq" in
  (* end-of-line directive silences that line's finding *)
  check_quiet "same line" ~rule
    ("let f x = x = 1.0  " ^ allow "float-eq" "fixture");
  (* directive-only line governs the next code line *)
  check_quiet "next line" ~rule
    (allow "float-eq" "fixture" ^ "\nlet f x = x = 1.0");
  (* a directive for a different rule does not apply *)
  check_fires "wrong rule" ~rule
    ("let f x = x = 1.0  " ^ allow "unsafe-pow" "fixture");
  (* the line after the governed one is not covered *)
  check_fires "only one line" ~rule
    (allow "float-eq" "fixture" ^ "\nlet f x = x = 1.0\nlet g x = x = 2.0");
  (* file-level findings accept a directive anywhere *)
  check_quiet "file-level" ~rel:"lib/model/fixture.ml" ~has_mli:false
    ~rule:"missing-mli"
    ("let x = 1\n" ^ allow "missing-mli" "fixture")

let test_suppression_diagnostics () =
  let all f rule =
    List.filter (fun (g : Finding.t) -> String.equal g.rule rule) f
  in
  (* missing reason -> suppress-syntax error *)
  let f =
    Engine.check_source ~rules:Registry.all ~rel:"lib/model/fixture.ml"
      ("let f x = x = 1.0  (* slint: " ^ "allow float-eq *)")
  in
  Alcotest.(check int) "missing reason" 1 (List.length (all f "suppress-syntax"));
  (* a malformed directive suppresses nothing *)
  Alcotest.(check int) "still reported" 1 (List.length (all f "float-eq"));
  (* directive matching no finding -> unused-suppression warning *)
  let f =
    Engine.check_source ~rules:Registry.all ~rel:"lib/model/fixture.ml"
      ("let f x = x + 1  " ^ allow "float-eq" "fixture")
  in
  let unused = all f "unused-suppression" in
  Alcotest.(check int) "unused" 1 (List.length unused);
  Alcotest.(check bool)
    "unused is a warning" true
    (match unused with
    | [ u ] -> u.severity = Finding.Warning
    | _ -> false)

(* ---------------- parse errors ---------------- *)

let test_parse_error () =
  let f =
    Engine.check_source ~rules:Registry.all ~rel:"lib/model/fixture.ml"
      "let f x = ("
  in
  Alcotest.(check bool)
    "syntax error reported" true
    (List.exists (fun (g : Finding.t) -> String.equal g.rule "parse-error") f)

(* ---------------- baseline ---------------- *)

let test_baseline_roundtrip () =
  let entries =
    [
      { Baseline.file = "lib/model/power.ml"; line = 12; rule = "float-eq" };
      { Baseline.file = "bench/experiments.ml"; line = 39; rule = "unsafe-pow" };
    ]
  in
  (match Baseline.of_string (Baseline.to_string entries) with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check int) "length" (List.length entries) (List.length back);
    List.iter2
      (fun (a : Baseline.entry) (b : Baseline.entry) ->
        Alcotest.(check string) "file" a.file b.file;
        Alcotest.(check int) "line" a.line b.line;
        Alcotest.(check string) "rule" a.rule b.rule)
      entries back);
  (* comments and blank lines are ignored *)
  (match Baseline.of_string "; header\n\n(a.ml 3 float-eq)\n" with
  | Error e -> Alcotest.fail e
  | Ok l -> Alcotest.(check int) "comments skipped" 1 (List.length l));
  (* mem matches findings against entries *)
  let fnd =
    Finding.v ~line:12 ~file:"lib/model/power.ml" ~rule:"float-eq"
      ~severity:Finding.Error "m"
  in
  Alcotest.(check bool) "mem hit" true (Baseline.mem entries fnd);
  Alcotest.(check bool)
    "mem miss" false
    (Baseline.mem entries { fnd with line = 13 });
  (* of_findings drops nothing *)
  Alcotest.(check int) "of_findings" 1
    (List.length (Baseline.of_findings [ fnd ]))

let test_baseline_malformed () =
  match Baseline.of_string "(a.ml not-a-number float-eq)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_baseline_rot () =
  let live = { Baseline.file = "lib/a.ml"; line = 3; rule = "float-eq" } in
  let dead = { Baseline.file = "lib/b.ml"; line = 9; rule = "unsafe-pow" } in
  let findings =
    [
      Finding.v ~line:3 ~file:"lib/a.ml" ~rule:"float-eq"
        ~severity:Finding.Error "m";
    ]
  in
  (* stale = entries matching no current finding *)
  (match Baseline.stale [ live; dead ] findings with
  | [ e ] ->
    Alcotest.(check string) "stale file" "lib/b.ml" e.Baseline.file;
    Alcotest.(check int) "stale line" 9 e.Baseline.line
  | l -> Alcotest.failf "expected one stale entry, got %d" (List.length l));
  Alcotest.(check int)
    "nothing stale when all fire" 0
    (List.length (Baseline.stale [ live ] findings));
  (* prune keeps exactly the entries that still fire *)
  (match Baseline.prune [ live; dead ] findings with
  | [ e ] -> Alcotest.(check string) "kept the live entry" "lib/a.ml" e.Baseline.file
  | l -> Alcotest.failf "expected one kept entry, got %d" (List.length l));
  Alcotest.(check int)
    "prune of empty is empty" 0
    (List.length (Baseline.prune [] findings))

(* ---------------- interval domain soundness ---------------- *)

(* The qcheck-pinned property from absdom.mli: whenever the inputs are in
   the concretisation of the abstract inputs, the concrete result is in
   the concretisation of the abstract result — over randomly generated
   arithmetic expressions including every IEEE special value. *)

type aexp =
  | Const of float
  | Var of int
  | Neg of aexp
  | Add of aexp * aexp
  | Sub of aexp * aexp
  | Mul of aexp * aexp
  | Div of aexp * aexp
  | Min of aexp * aexp
  | Max of aexp * aexp
  | Abs of aexp
  | Sqrt of aexp
  | Exp of aexp
  | Log of aexp
  | Pow of aexp * aexp

let rec ceval env = function
  | Const c -> c
  | Var i -> env.(i)
  | Neg e -> -.ceval env e
  | Add (a, b) -> ceval env a +. ceval env b
  | Sub (a, b) -> ceval env a -. ceval env b
  | Mul (a, b) -> ceval env a *. ceval env b
  | Div (a, b) -> ceval env a /. ceval env b
  | Min (a, b) -> Stdlib.min (ceval env a) (ceval env b)
  | Max (a, b) -> Stdlib.max (ceval env a) (ceval env b)
  | Abs e -> Float.abs (ceval env e)
  | Sqrt e -> sqrt (ceval env e)
  | Exp e -> exp (ceval env e)
  | Log e -> log (ceval env e)
  | Pow (a, b) ->
    (* slint: allow unsafe-pow -- the concrete oracle must exercise the negative-base corner the domain models *)
    ceval env a ** ceval env b

let rec aeval env = function
  | Const c -> Absdom.const c
  | Var i -> env.(i)
  | Neg e -> Absdom.neg (aeval env e)
  | Add (a, b) -> Absdom.add (aeval env a) (aeval env b)
  | Sub (a, b) -> Absdom.sub (aeval env a) (aeval env b)
  | Mul (a, b) -> Absdom.mul (aeval env a) (aeval env b)
  | Div (a, b) -> Absdom.div (aeval env a) (aeval env b)
  | Min (a, b) -> Absdom.fmin (aeval env a) (aeval env b)
  | Max (a, b) -> Absdom.fmax (aeval env a) (aeval env b)
  | Abs e -> Absdom.abs_ (aeval env e)
  | Sqrt e -> Absdom.sqrt_ (aeval env e)
  | Exp e -> Absdom.exp_ (aeval env e)
  | Log e -> Absdom.log_ (aeval env e)
  | Pow (a, b) -> Absdom.pow (aeval env a) (aeval env b)

let special_floats =
  [
    0.0; -0.0; 1.0; -1.0; 0.5; -2.5; Float.pi; 1e300; -1e300; 1e-300;
    infinity; neg_infinity; nan; Float.max_float; Float.min_float;
  ]

let gen_aexp =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun c -> Const c) (oneofl special_floats);
        map (fun c -> Const c) float;
        map (fun i -> Var i) (int_bound 1);
      ]
  in
  sized
    (fix (fun self n ->
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           oneof
             [
               leaf;
               map (fun e -> Neg e) sub;
               map2 (fun a b -> Add (a, b)) sub sub;
               map2 (fun a b -> Sub (a, b)) sub sub;
               map2 (fun a b -> Mul (a, b)) sub sub;
               map2 (fun a b -> Div (a, b)) sub sub;
               map2 (fun a b -> Min (a, b)) sub sub;
               map2 (fun a b -> Max (a, b)) sub sub;
               map (fun e -> Abs e) sub;
               map (fun e -> Sqrt e) sub;
               map (fun e -> Exp e) sub;
               map (fun e -> Log e) sub;
               map2 (fun a b -> Pow (a, b)) sub sub;
             ]))

(* An abstract input that provably contains the concrete input: exact,
   unknown, or a widened interval around it. *)
let absvar x mode =
  match mode mod 3 with
  | 0 -> Absdom.const x
  | 1 -> Absdom.top_nan
  | _ -> Absdom.join (Absdom.const x) (Absdom.const 2.0)

let rec pp_aexp ppf = function
  | Const c -> Fmt.pf ppf "%h" c
  | Var i -> Fmt.pf ppf "x%d" i
  | Neg e -> Fmt.pf ppf "(- %a)" pp_aexp e
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_aexp a pp_aexp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_aexp a pp_aexp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_aexp a pp_aexp b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp_aexp a pp_aexp b
  | Min (a, b) -> Fmt.pf ppf "(min %a %a)" pp_aexp a pp_aexp b
  | Max (a, b) -> Fmt.pf ppf "(max %a %a)" pp_aexp a pp_aexp b
  | Abs e -> Fmt.pf ppf "(abs %a)" pp_aexp e
  | Sqrt e -> Fmt.pf ppf "(sqrt %a)" pp_aexp e
  | Exp e -> Fmt.pf ppf "(exp %a)" pp_aexp e
  | Log e -> Fmt.pf ppf "(log %a)" pp_aexp e
  | Pow (a, b) -> Fmt.pf ppf "(%a ** %a)" pp_aexp a pp_aexp b

let soundness_arbitrary =
  QCheck.make
    ~print:(fun (e, (x0, x1), (m0, m1)) ->
      Fmt.str "%a with x0=%h (mode %d), x1=%h (mode %d)" pp_aexp e x0 m0 x1
        m1)
    QCheck.Gen.(
      tup3 gen_aexp
        (tup2 (oneofl special_floats) (oneofl special_floats))
        (tup2 (int_bound 2) (int_bound 2)))

let test_absdom_soundness =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:2000
       ~name:"abstract evaluation over-approximates concrete evaluation"
       soundness_arbitrary
       (fun (e, (x0, x1), (m0, m1)) ->
         let conc = ceval [| x0; x1 |] e in
         let abst = aeval [| absvar x0 m0; absvar x1 m1 |] e in
         Absdom.mem conc abst))

let test_absdom_basics () =
  let open Absdom in
  Alcotest.(check bool) "const mem" true (mem 1.5 (const 1.5));
  Alcotest.(check bool) "nan in nan_only" true (mem nan nan_only);
  Alcotest.(check bool) "nan not in top" false (mem nan top);
  Alcotest.(check bool) "bot empty" false (mem 0.0 bot);
  Alcotest.(check bool) "join order" true (leq (const 1.0) (interval 0.0 2.0));
  Alcotest.(check bool)
    "meet refines" true
    (equal (interval 1.0 2.0) (meet (interval 0.0 2.0) (interval 1.0 3.0)));
  Alcotest.(check bool)
    "widen escapes" true
    (equal
       (interval 0.0 infinity)
       (widen (interval 0.0 1.0) (interval 0.0 2.0)));
  Alcotest.(check bool)
    "widen keeps stable bound" true
    (match widen (interval 0.0 1.0) (interval 0.0 2.0) with
    | V { lo; _ } -> Float.equal lo 0.0
    | Bot -> false);
  Alcotest.(check bool) "nonneg" true (nonneg (interval 0.0 5.0));
  Alcotest.(check bool) "not nonneg" false (nonneg (interval (-1.0) 5.0))

(* Widening termination: any increasing iteration through [widen]
   stabilises.  Checked end to end — random mutually recursive float
   programs are parsed, summarised and must converge. *)

let gen_loopy_source =
  let open QCheck.Gen in
  let body k =
    oneofl
      [
        (fun j -> Fmt.str "if x > 0.0 then 1.0 +. f%d (x -. 1.0) else 0.0" j);
        (fun j -> Fmt.str "if x < 10.0 then f%d (x +. 1.0) *. 2.0 else x" j);
        (fun j -> Fmt.str "0.5 +. f%d x" j);
        (fun j -> Fmt.str "if x > 5.0 then x else f%d (x *. 2.0) -. 1.0" j);
        (fun j -> Fmt.str "Float.max 0.0 (f%d (x -. 0.5))" j);
      ]
    >>= fun mk ->
    map mk (int_bound (k - 1))
  in
  int_range 1 5 >>= fun k ->
  flatten_l (List.init k (fun _ -> body k)) >|= fun bodies ->
  String.concat "\nand "
    (List.mapi (fun i b -> Fmt.str "f%d x = %s" i b) bodies)
  |> Fmt.str "let rec %s"

let analyze_source ?(rel = "lib/gen/loopy.ml") text =
  match Engine.parse_structure ~rel text with
  | Error f -> Alcotest.failf "fixture does not parse: %s" f.Finding.message
  | Ok str ->
    let project = Project.build [ { Project.rel; str; exported = None } ] in
    (project, Absint.analyze project)

let test_widening_terminates =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"summary fixpoint converges on random loopy call graphs"
       (QCheck.make ~print:Fun.id gen_loopy_source)
       (fun src ->
         let _, a = analyze_source src in
         Absint.converged a))

let test_widening_good_case () =
  (* the canonical widening case: an unbounded increasing recursion must
     converge to a summary with an infinite upper bound and a stable
     non-negative lower bound *)
  let project, a =
    analyze_source
      "let rec f x = if x > 0.0 then 1.0 +. f (x -. 1.0) else 0.0"
  in
  Alcotest.(check bool) "converged" true (Absint.converged a);
  let file = (Project.files project).(0) in
  match Project.toplevel_value file "f" with
  | None -> Alcotest.fail "node f not found"
  | Some gid ->
    Alcotest.(check bool)
      "summary is non-negative" true
      (Absdom.nonneg (Absint.summary a gid));
    Alcotest.(check bool)
      "upper bound widened to +inf" true
      (match Absint.summary a gid with
      | Absdom.V { hi; _ } -> Float.equal hi infinity
      | Absdom.Bot -> false)

(* ---------------- whole-program fixtures ---------------- *)

let msrc rel text = { Engine.rel; text; mli = None }

let project_findings ?(cross_module = true) ~rule sources =
  Engine.check_sources ~cross_module ~rules:(Registry.select [ rule ]) sources
  |> List.filter (fun (f : Finding.t) -> String.equal f.rule rule)

let check_project_fires name ?cross_module ~rule sources =
  Alcotest.(check bool)
    (name ^ ": fires") true
    (project_findings ?cross_module ~rule sources <> [])

let check_project_quiet name ?cross_module ~rule sources =
  Alcotest.(check int)
    (name ^ ": quiet") 0
    (List.length (project_findings ?cross_module ~rule sources))

let test_cross_module_unsafe_pow () =
  let rule = "unsafe-pow" in
  (* the acceptance chain lib/workload -> lib/core -> lib/chen: the
     non-negativity proof of the pow base lives two modules away, so the
     finding disappears exactly when cross-module resolution is on *)
  let chain =
    [
      msrc "lib/chen/chen.ml" "let mass x = Float.abs x";
      msrc "lib/core/core.ml" "let boost v = Chen.mass v +. 1.0";
      msrc "lib/workload/workload.ml"
        "let energy v a = Core.boost v ** a";
    ]
  in
  check_project_quiet "cross-module proof" ~cross_module:true ~rule chain;
  check_project_fires "proof unreachable without cross-module"
    ~cross_module:false ~rule chain;
  (* qualified toplevel constant *)
  let const_chain =
    [
      msrc "lib/model/params.ml" "let scale = 4.0";
      msrc "lib/core/core.ml" "let f a = Params.scale ** a";
    ]
  in
  check_project_quiet "toplevel constant" ~cross_module:true ~rule const_chain;
  check_project_fires "constant invisible without cross-module"
    ~cross_module:false ~rule const_chain;
  (* module alias *)
  check_project_quiet "module alias" ~cross_module:true ~rule
    [
      msrc "lib/chen/chen.ml" "let mass x = Float.abs x";
      msrc "lib/core/core.ml"
        "module C = Chen\nlet f a = C.mass 3.0 ** a";
    ];
  (* toplevel open *)
  check_project_quiet "open route" ~cross_module:true ~rule
    [
      msrc "lib/chen/chen.ml" "let mass x = Float.abs x";
      msrc "lib/core/core.ml" "open Chen\nlet f a = mass 2.0 ** a";
    ];
  (* an .mli restricts visibility: the producer is not exported, so the
     qualified call cannot be resolved and nothing proves the base *)
  check_project_fires "mli hides the producer" ~cross_module:true ~rule
    [
      { Engine.rel = "lib/chen/chen.ml";
        text = "let mass x = Float.abs x";
        mli = Some "" };
      msrc "lib/core/core.ml" "let f a = Chen.mass 3.0 ** a";
    ];
  (* homonymous modules are ambiguous and never resolve *)
  check_project_fires "ambiguous module" ~cross_module:true ~rule
    [
      msrc "lib/chen/helper.ml" "let mass x = Float.abs x";
      msrc "lib/model/helper.ml" "let mass x = x -. 1.0";
      msrc "lib/core/core.ml" "let f a = Helper.mass 3.0 ** a";
    ];
  (* a possibly-negative producer in another module keeps firing *)
  check_project_fires "negative producer" ~cross_module:true ~rule
    [
      msrc "lib/chen/chen.ml" "let shift x = Float.abs x -. 2.0";
      msrc "lib/core/core.ml" "let f a = Chen.shift 1.0 ** a";
    ]

let test_cross_module_nan_flow () =
  let rule = "nan-flow" in
  (* acceptance chain: the 0/0 evidence is manufactured in lib/core from
     lib/chen values and reaches a payload in lib/workload — only the
     whole-program path can see it *)
  let chain =
    [
      msrc "lib/chen/chen.ml"
        "let unit_load x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 \
         else x";
      msrc "lib/core/core.ml"
        "let efficiency a b = Chen.unit_load a /. Chen.unit_load b";
      msrc "lib/workload/workload.ml"
        {|let report a b = Record.make (Core.efficiency a b)|};
    ]
  in
  check_project_fires "cross-module 0/0 into payload" ~cross_module:true ~rule
    chain;
  check_project_quiet "taint needs cross-module" ~cross_module:false ~rule
    chain;
  (* direct creator in the sink argument *)
  check_project_fires "direct 0/0 at the sink" ~rule
    [
      msrc "lib/core/core.ml"
        {|let f x = let r = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x in metric "m" (r /. r)|};
    ];
  (* log of a value refined negative by the dominating branch *)
  check_project_fires "log of possibly-negative" ~rule
    [
      msrc "lib/core/core.ml"
        "let g x = if x < 0.0 then verdict (log x > 0.0) else ()";
    ];
  (* a denominator bounded away from zero is quiet *)
  check_project_quiet "guarded denominator" ~rule
    [
      msrc "lib/core/core.ml"
        {|let f x = if x > 1.0 then metric "m" (1.0 /. x) else ()|};
    ];
  (* sqrt of a cross-module non-negative producer is quiet *)
  check_project_quiet "sqrt of nonneg producer" ~rule
    [
      msrc "lib/chen/chen.ml" "let mass x = Float.abs x";
      msrc "lib/core/core.ml" {|let f x = metric "m" (sqrt (Chen.mass x))|};
    ];
  (* an unconstrained division is not evidence *)
  check_project_quiet "top operands are not evidence" ~rule
    [ msrc "lib/core/core.ml" {|let f a b = metric "m" (a /. b)|} ];
  (* taint that never reaches a sink is quiet *)
  check_project_quiet "creator without a sink" ~rule
    [
      msrc "lib/core/core.ml"
        "let f x = let r = if x < 0.0 then 0.0 else x in r /. r";
    ]

let test_cross_module_domain_race () =
  let rule = "domain-race" in
  let counters = msrc "lib/core/counters.ml" "let hits = ref 0" in
  (* qualified write from a spawned closure: state lives in lib/core,
     the spawn in lib/workload *)
  let write =
    [
      counters;
      msrc "lib/workload/worker.ml"
        "let run () = Domain.spawn (fun () -> Counters.hits := 1)";
    ]
  in
  check_project_fires "qualified write under spawn" ~cross_module:true ~rule
    write;
  check_project_quiet "foreign state invisible without cross-module"
    ~cross_module:false ~rule write;
  check_project_fires "qualified deref read" ~cross_module:true ~rule
    [
      counters;
      msrc "lib/workload/worker.ml"
        "let peek () = Domain.spawn (fun () -> !Counters.hits)";
    ];
  (* the access is one call below the spawned closure *)
  check_project_fires "access through a local helper" ~cross_module:true ~rule
    [
      counters;
      msrc "lib/workload/worker.ml"
        "let bump () = Counters.hits := 1\n\
         let run () = Domain.spawn (fun () -> bump ())";
    ];
  (* the spawned root is itself a foreign function *)
  check_project_fires "qualified spawn root" ~cross_module:true ~rule
    [
      counters;
      msrc "lib/engine/pool.ml" "let worker () = Counters.hits := 1";
      msrc "lib/workload/worker.ml"
        "let run () = Domain.spawn Pool.worker";
    ];
  check_project_quiet "atomic foreign state is exempt" ~cross_module:true ~rule
    [
      msrc "lib/core/counters.ml" "let hits = Atomic.make 0";
      msrc "lib/workload/worker.ml"
        "let run () = Domain.spawn (fun () -> Atomic.incr Counters.hits)";
    ];
  check_project_quiet "mutex mediation" ~cross_module:true ~rule
    [
      counters;
      msrc "lib/workload/worker.ml"
        "let m = Mutex.create ()\n\
         let run () =\n\
        \  Domain.spawn (fun () ->\n\
        \      Mutex.lock m;\n\
        \      Counters.hits := 1;\n\
        \      Mutex.unlock m)";
    ];
  check_project_quiet "no spawn" ~cross_module:true ~rule
    [ counters; msrc "lib/workload/worker.ml" "let tally () = Counters.hits := 1" ];
  check_project_quiet "immutable target" ~cross_module:true ~rule
    [
      msrc "lib/core/counters.ml" "let limit = 5";
      msrc "lib/workload/worker.ml"
        "let run () = Domain.spawn (fun () -> Counters.limit := 1)";
    ]

let test_magic_tolerance () =
  let rule = "magic-tolerance" in
  check_fires "absolute-difference tolerance" ~rule
    "let f a b = Float.abs (a -. b) < 1e-9";
  check_fires "guard against 1e-12" ~rule "let f x = x > 1e-12";
  check_fires "literal on the left" ~rule "let f x = 1e-7 = x";
  check_fires "negated literal" ~rule "let f x = x < -1e-9";
  check_quiet "threshold, not tolerance" ~rule "let f x = x < 0.5";
  check_quiet "sign test" ~rule "let f x = x < 0.0";
  check_quiet "named constant" ~rule "let f x = x < Feq.tol_snap";
  check_quiet "sanctioned home" ~rel:"lib/util/feq.ml" ~rule
    "let f x = x < 1e-9";
  check_quiet "bisect is sanctioned" ~rel:"lib/util/bisect.ml" ~rule
    "let f x = x < 1e-12";
  check_quiet "outside lib" ~rel:"bench/fixture.ml" ~rule
    "let f x = x < 1e-9";
  check_quiet "int literal" ~rule "let f x = x < 1";
  check_quiet "non-comparison use" ~rule "let f x = x +. 1e-9"

(* ---------------- registry & reporters ---------------- *)

let test_registry () =
  Alcotest.(check int) "thirteen rules" 13 (List.length Registry.all);
  Alcotest.(check bool)
    "select resolves every name" true
    (List.length (Registry.select Registry.names) = 13);
  Alcotest.(check bool)
    "every rule carries an example for --explain" true
    (List.for_all
       (fun (r : Rule.t) -> not (String.equal r.example ""))
       Registry.all);
  match Registry.select [ "no-such-rule" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i =
    i + k <= n && (String.equal (String.sub s i k) sub || go (i + 1))
  in
  go 0

let test_reporters () =
  let f =
    [
      Finding.v ~line:3 ~col:4 ~file:"a.ml" ~rule:"float-eq"
        ~severity:Finding.Error {|msg with "quote"|};
    ]
  in
  let human = Format.asprintf "%a" Report.pp_human f in
  Alcotest.(check bool)
    "human line" true
    (contains human "a.ml:3:4: [float-eq]");
  let json = Format.asprintf "%a" Report.pp_json f in
  Alcotest.(check bool) "json escapes" true (contains json {|\"quote\"|});
  Alcotest.(check bool)
    "json fields" true
    (contains json {|"rule":"float-eq"|})

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "float-eq" `Quick test_float_eq;
          Alcotest.test_case "naive-sum" `Quick test_naive_sum;
          Alcotest.test_case "nondeterminism" `Quick test_nondeterminism;
          Alcotest.test_case "printf-in-lib" `Quick test_printf_in_lib;
          Alcotest.test_case "missing-mli" `Quick test_missing_mli;
          Alcotest.test_case "catch-all-exn" `Quick test_catch_all_exn;
          Alcotest.test_case "unsafe-pow" `Quick test_unsafe_pow;
          Alcotest.test_case "obj-magic" `Quick test_obj_magic;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "domain-race" `Quick test_domain_race;
          Alcotest.test_case "dls-misuse" `Quick test_dls_misuse;
          Alcotest.test_case "taint-nondet" `Quick test_taint_nondet;
          test_solver_terminates;
          Alcotest.test_case "solver bound" `Quick test_solver_bound;
          Alcotest.test_case "sarif golden" `Quick test_sarif_golden;
        ] );
      ( "absdom",
        [
          Alcotest.test_case "lattice basics" `Quick test_absdom_basics;
          test_absdom_soundness;
          test_widening_terminates;
          Alcotest.test_case "widening good case" `Quick
            test_widening_good_case;
        ] );
      ( "whole-program",
        [
          Alcotest.test_case "unsafe-pow cross-module" `Quick
            test_cross_module_unsafe_pow;
          Alcotest.test_case "nan-flow" `Quick test_cross_module_nan_flow;
          Alcotest.test_case "domain-race cross-module" `Quick
            test_cross_module_domain_race;
          Alcotest.test_case "magic-tolerance" `Quick test_magic_tolerance;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "directives" `Quick test_suppression;
          Alcotest.test_case "diagnostics" `Quick test_suppression_diagnostics;
        ] );
      ( "engine",
        [
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "reporters" `Quick test_reporters;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "malformed" `Quick test_baseline_malformed;
          Alcotest.test_case "rot" `Quick test_baseline_rot;
        ] );
    ]
