(* Fixture-driven tests for the speedscale_lint engine: every rule firing
   and not firing, suppression handling, and the baseline round-trip. *)

open Speedscale_lint

(* Directive text assembled by concatenation so slint does not read these
   fixtures as directives for THIS file when scanning the tree. *)
let allow rule reason = "(* slint: " ^ "allow " ^ rule ^ " -- " ^ reason ^ " *)"

let rules_of name = Registry.select [ name ]

let findings ?(rel = "lib/model/fixture.ml") ?(has_mli = true) ~rule text =
  Engine.check_source ~has_mli ~rules:(rules_of rule) ~rel text
  |> List.filter (fun (f : Finding.t) -> String.equal f.rule rule)

let check_fires name ?rel ?has_mli ~rule text =
  Alcotest.(check bool)
    (name ^ ": fires") true
    (findings ?rel ?has_mli ~rule text <> [])

let check_quiet name ?rel ?has_mli ~rule text =
  let hits = findings ?rel ?has_mli ~rule text in
  Alcotest.(check int) (name ^ ": quiet") 0 (List.length hits)

(* ---------------- float-eq ---------------- *)

let test_float_eq () =
  let rule = "float-eq" in
  check_fires "literal rhs" ~rule "let f x = x = 1.0";
  check_fires "float op" ~rule "let f a b = a +. 1.0 = b";
  check_fires "infinity" ~rule "let f v = v = Float.infinity";
  check_fires "compare" ~rule "let f x = compare x 0.5";
  check_fires "physical" ~rule "let f x = x == 0.0";
  check_fires "not-equal" ~rule "let f x = x <> sqrt 2.0";
  check_quiet "int compare" ~rule "let f x = x = 1";
  check_quiet "Float.equal" ~rule "let f x = Float.equal x 1.0";
  check_quiet "string" ~rule {|let f s = s = "inf"|}

(* ---------------- naive-sum ---------------- *)

let test_naive_sum () =
  let rule = "naive-sum" in
  check_fires "operator" ~rule "let f l = List.fold_left ( +. ) 0.0 l";
  check_fires "eta" ~rule "let f a = Array.fold_left (fun acc x -> acc +. x) 0.0 a";
  check_fires "projection" ~rule
    "let f l = List.fold_left (fun acc j -> acc +. j.value) 0.0 l";
  check_quiet "outside lib" ~rel:"bench/fixture.ml" ~rule
    "let f l = List.fold_left ( +. ) 0.0 l";
  check_quiet "int fold" ~rule "let f l = List.fold_left ( + ) 0 l";
  check_quiet "max fold" ~rule "let f l = List.fold_left Float.max 0.0 l"

(* ---------------- nondeterminism ---------------- *)

let test_nondeterminism () =
  let rule = "nondeterminism" in
  check_fires "Random.float" ~rule "let f () = Random.float 1.0";
  check_fires "Random.self_init" ~rule "let f () = Random.self_init ()";
  check_quiet "Random.State" ~rule "let f st = Random.State.float st 1.0";
  check_quiet "unrelated" ~rule "let f x = x + 1"

(* ---------------- printf-in-lib ---------------- *)

let test_printf_in_lib () =
  let rule = "printf-in-lib" in
  check_fires "Printf.printf" ~rule {|let f () = Printf.printf "x"|};
  check_fires "Printf.sprintf" ~rule {|let f n = Printf.sprintf "%d" n|};
  check_fires "print_endline" ~rule {|let f () = print_endline "x"|};
  check_fires "Format.printf" ~rule {|let f () = Format.printf "x"|};
  check_quiet "outside lib" ~rel:"bin/fixture.ml" ~rule
    {|let f () = Printf.printf "x"|};
  check_quiet "Fmt.str" ~rule {|let f n = Fmt.str "%d" n|};
  check_quiet "Format.fprintf" ~rule {|let pp ppf n = Format.fprintf ppf "%d" n|}

(* ---------------- missing-mli ---------------- *)

let test_missing_mli () =
  let rule = "missing-mli" in
  check_fires "no mli" ~has_mli:false ~rule "let x = 1";
  check_quiet "has mli" ~has_mli:true ~rule "let x = 1";
  check_quiet "outside lib" ~rel:"bench/fixture.ml" ~has_mli:false ~rule
    "let x = 1"

(* ---------------- catch-all-exn ---------------- *)

let test_catch_all_exn () =
  let rule = "catch-all-exn" in
  check_fires "try wildcard" ~rule "let f g = try g () with _ -> 0";
  check_fires "match exception _" ~rule
    "let f g = match g () with x -> x | exception _ -> 0";
  check_quiet "named exn" ~rule "let f g = try g () with Not_found -> 0";
  check_quiet "guarded wildcard" ~rule
    "let f g p = try g () with _ when p -> 0"

(* ---------------- unsafe-pow ---------------- *)

let test_unsafe_pow () =
  let rule = "unsafe-pow" in
  check_fires "unknown base" ~rule "let f x a = x ** (1.0 /. a)";
  check_fires "unguarded arg" ~rule "let f s alpha = s ** alpha";
  check_quiet "integral exponent" ~rule "let f x = x ** 2.0";
  check_quiet "float_of_int exponent" ~rule "let f x n = x ** float_of_int n";
  check_quiet "literal base" ~rule "let f a = 2.0 ** a";
  check_quiet "guarded branch" ~rule
    "let f s a = if s >= 0.0 then s ** a else 0.0";
  check_quiet "guard-raise sequence" ~rule
    {|let f s a = if s < 0.0 then invalid_arg "s"; s ** a|};
  check_quiet "nonneg let" ~rule "let f x a = let y = Float.abs x in y ** a";
  check_fires "rebound variable" ~rule
    {|let f s a = if s < 0.0 then invalid_arg "s"; let s = s -. 2.0 in s ** a|};
  check_quiet "alpha producer" ~rule "let f p a = Power.alpha p ** a";
  check_quiet "sqrt base" ~rule "let f x a = sqrt x ** a"

(* ---------------- obj-magic ---------------- *)

let test_obj_magic () =
  let rule = "obj-magic" in
  check_fires "Obj.magic" ~rule "let f x = (Obj.magic x : int)";
  check_fires "assert false" ~rule "let f () = assert false";
  check_quiet "assert cond" ~rule "let f x = assert (x > 0)";
  check_quiet "plain code" ~rule "let f x = x + 1"

(* ---------------- suppression handling ---------------- *)

let test_suppression () =
  let rule = "float-eq" in
  (* end-of-line directive silences that line's finding *)
  check_quiet "same line" ~rule
    ("let f x = x = 1.0  " ^ allow "float-eq" "fixture");
  (* directive-only line governs the next code line *)
  check_quiet "next line" ~rule
    (allow "float-eq" "fixture" ^ "\nlet f x = x = 1.0");
  (* a directive for a different rule does not apply *)
  check_fires "wrong rule" ~rule
    ("let f x = x = 1.0  " ^ allow "unsafe-pow" "fixture");
  (* the line after the governed one is not covered *)
  check_fires "only one line" ~rule
    (allow "float-eq" "fixture" ^ "\nlet f x = x = 1.0\nlet g x = x = 2.0");
  (* file-level findings accept a directive anywhere *)
  check_quiet "file-level" ~rel:"lib/model/fixture.ml" ~has_mli:false
    ~rule:"missing-mli"
    ("let x = 1\n" ^ allow "missing-mli" "fixture")

let test_suppression_diagnostics () =
  let all f rule =
    List.filter (fun (g : Finding.t) -> String.equal g.rule rule) f
  in
  (* missing reason -> suppress-syntax error *)
  let f =
    Engine.check_source ~rules:Registry.all ~rel:"lib/model/fixture.ml"
      ("let f x = x = 1.0  (* slint: " ^ "allow float-eq *)")
  in
  Alcotest.(check int) "missing reason" 1 (List.length (all f "suppress-syntax"));
  (* a malformed directive suppresses nothing *)
  Alcotest.(check int) "still reported" 1 (List.length (all f "float-eq"));
  (* directive matching no finding -> unused-suppression warning *)
  let f =
    Engine.check_source ~rules:Registry.all ~rel:"lib/model/fixture.ml"
      ("let f x = x + 1  " ^ allow "float-eq" "fixture")
  in
  let unused = all f "unused-suppression" in
  Alcotest.(check int) "unused" 1 (List.length unused);
  Alcotest.(check bool)
    "unused is a warning" true
    (match unused with
    | [ u ] -> u.severity = Finding.Warning
    | _ -> false)

(* ---------------- parse errors ---------------- *)

let test_parse_error () =
  let f =
    Engine.check_source ~rules:Registry.all ~rel:"lib/model/fixture.ml"
      "let f x = ("
  in
  Alcotest.(check bool)
    "syntax error reported" true
    (List.exists (fun (g : Finding.t) -> String.equal g.rule "parse-error") f)

(* ---------------- baseline ---------------- *)

let test_baseline_roundtrip () =
  let entries =
    [
      { Baseline.file = "lib/model/power.ml"; line = 12; rule = "float-eq" };
      { Baseline.file = "bench/experiments.ml"; line = 39; rule = "unsafe-pow" };
    ]
  in
  (match Baseline.of_string (Baseline.to_string entries) with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check int) "length" (List.length entries) (List.length back);
    List.iter2
      (fun (a : Baseline.entry) (b : Baseline.entry) ->
        Alcotest.(check string) "file" a.file b.file;
        Alcotest.(check int) "line" a.line b.line;
        Alcotest.(check string) "rule" a.rule b.rule)
      entries back);
  (* comments and blank lines are ignored *)
  (match Baseline.of_string "; header\n\n(a.ml 3 float-eq)\n" with
  | Error e -> Alcotest.fail e
  | Ok l -> Alcotest.(check int) "comments skipped" 1 (List.length l));
  (* mem matches findings against entries *)
  let fnd =
    Finding.v ~line:12 ~file:"lib/model/power.ml" ~rule:"float-eq"
      ~severity:Finding.Error "m"
  in
  Alcotest.(check bool) "mem hit" true (Baseline.mem entries fnd);
  Alcotest.(check bool)
    "mem miss" false
    (Baseline.mem entries { fnd with line = 13 });
  (* of_findings drops nothing *)
  Alcotest.(check int) "of_findings" 1
    (List.length (Baseline.of_findings [ fnd ]))

let test_baseline_malformed () =
  match Baseline.of_string "(a.ml not-a-number float-eq)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

(* ---------------- registry & reporters ---------------- *)

let test_registry () =
  Alcotest.(check int) "eight rules" 8 (List.length Registry.all);
  Alcotest.(check bool)
    "select resolves every name" true
    (List.length (Registry.select Registry.names) = 8);
  match Registry.select [ "no-such-rule" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i =
    i + k <= n && (String.equal (String.sub s i k) sub || go (i + 1))
  in
  go 0

let test_reporters () =
  let f =
    [
      Finding.v ~line:3 ~col:4 ~file:"a.ml" ~rule:"float-eq"
        ~severity:Finding.Error {|msg with "quote"|};
    ]
  in
  let human = Format.asprintf "%a" Report.pp_human f in
  Alcotest.(check bool)
    "human line" true
    (contains human "a.ml:3:4: [float-eq]");
  let json = Format.asprintf "%a" Report.pp_json f in
  Alcotest.(check bool) "json escapes" true (contains json {|\"quote\"|});
  Alcotest.(check bool)
    "json fields" true
    (contains json {|"rule":"float-eq"|})

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "float-eq" `Quick test_float_eq;
          Alcotest.test_case "naive-sum" `Quick test_naive_sum;
          Alcotest.test_case "nondeterminism" `Quick test_nondeterminism;
          Alcotest.test_case "printf-in-lib" `Quick test_printf_in_lib;
          Alcotest.test_case "missing-mli" `Quick test_missing_mli;
          Alcotest.test_case "catch-all-exn" `Quick test_catch_all_exn;
          Alcotest.test_case "unsafe-pow" `Quick test_unsafe_pow;
          Alcotest.test_case "obj-magic" `Quick test_obj_magic;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "directives" `Quick test_suppression;
          Alcotest.test_case "diagnostics" `Quick test_suppression_diagnostics;
        ] );
      ( "engine",
        [
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "reporters" `Quick test_reporters;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "malformed" `Quick test_baseline_malformed;
        ] );
    ]
