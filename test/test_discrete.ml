(* Tests for the discrete speed-level extension. *)

open Speedscale_model
open Speedscale_discrete

let check_float = Alcotest.(check (float 1e-9))
let p2 = Power.make 2.0
let p3 = Power.make 3.0

let slice proc t0 t1 job speed = { Schedule.proc; t0; t1; job; speed }

let test_make_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Levels.make: empty level set")
    (fun () -> ignore (Levels.make []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Levels.make: levels must be finite > 0") (fun () ->
      ignore (Levels.make [ 1.0; 0.0 ]));
  let t = Levels.make [ 2.0; 1.0; 2.0 ] in
  Alcotest.(check (list (float 0.0))) "sorted dedup" [ 1.0; 2.0 ]
    (Levels.speeds t)

let test_geometric () =
  let t = Levels.geometric ~base:1.0 ~ratio:2.0 ~count:4 in
  Alcotest.(check (list (float 1e-9))) "powers of two" [ 1.0; 2.0; 4.0; 8.0 ]
    (Levels.speeds t);
  check_float "max" 8.0 (Levels.max_level t);
  Alcotest.(check bool) "covering inside" true (Levels.covering t 5.0);
  Alcotest.(check bool) "not covering above" false (Levels.covering t 9.0)

let test_round_slice_exact_level () =
  let t = Levels.make [ 1.0; 2.0 ] in
  match Levels.round_slice t (slice 0 0.0 1.0 0 2.0) with
  | [ s ] -> check_float "kept" 2.0 s.speed
  | other -> Alcotest.failf "expected 1 slice, got %d" (List.length other)

let test_round_slice_between_levels () =
  let t = Levels.make [ 1.0; 3.0 ] in
  (* speed 2 for 1s: half the time at 3, half at 1 *)
  match Levels.round_slice t (slice 0 0.0 1.0 0 2.0) with
  | [ fast; slow ] ->
    check_float "fast speed" 3.0 fast.speed;
    check_float "fast end" 0.5 fast.t1;
    check_float "slow speed" 1.0 slow.speed;
    check_float "work preserved" 2.0
      (((fast.t1 -. fast.t0) *. fast.speed) +. ((slow.t1 -. slow.t0) *. slow.speed))
  | other -> Alcotest.failf "expected 2 slices, got %d" (List.length other)

let test_round_slice_below_grid () =
  let t = Levels.make [ 2.0 ] in
  (* speed 1 for 2s -> speed 2 for 1s then idle *)
  match Levels.round_slice t (slice 0 0.0 2.0 0 1.0) with
  | [ s ] ->
    check_float "level speed" 2.0 s.speed;
    check_float "busy time" 1.0 (s.t1 -. s.t0);
    check_float "work" 2.0 ((s.t1 -. s.t0) *. s.speed)
  | other -> Alcotest.failf "expected 1 slice, got %d" (List.length other)

let test_round_slice_above_grid () =
  let t = Levels.make [ 1.0 ] in
  match Levels.round_slice t (slice 0 0.0 1.0 0 5.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let instance_for_pd =
  Instance.make ~power:p2 ~machines:2
    [
      Job.make ~id:0 ~release:0.0 ~deadline:2.0 ~workload:2.0 ~value:40.0;
      Job.make ~id:1 ~release:0.0 ~deadline:1.0 ~workload:1.5 ~value:30.0;
      Job.make ~id:2 ~release:0.5 ~deadline:3.0 ~workload:1.0 ~value:20.0;
    ]

let test_round_schedule_stays_feasible () =
  let r = Speedscale_core.Pd.run instance_for_pd in
  let levels = Levels.geometric ~base:0.05 ~ratio:1.5 ~count:14 in
  let rounded = Levels.round_schedule levels r.schedule in
  (match Schedule.validate instance_for_pd rounded with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rounded schedule invalid: %s" e);
  (* same jobs finished *)
  Alcotest.(check (list int)) "finished set preserved"
    (Schedule.finished instance_for_pd r.schedule)
    (Schedule.finished instance_for_pd rounded)

let test_overhead_decreases_with_density () =
  let r = Speedscale_core.Pd.run instance_for_pd in
  let overhead count =
    Levels.energy_overhead p2
      (Levels.geometric ~base:0.05 ~ratio:(64.0 ** (1.0 /. float_of_int count))
         ~count:(count + 1))
      r.schedule
  in
  let o4 = overhead 4 and o16 = overhead 16 and o64 = overhead 64 in
  Alcotest.(check bool) "all >= 1" true (o4 >= 1.0 && o16 >= 1.0 && o64 >= 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "monotone towards 1: %.4f >= %.4f >= %.4f" o4 o16 o64)
    true
    (o4 >= o16 -. 1e-9 && o16 >= o64 -. 1e-9);
  Alcotest.(check bool) "dense grid nearly free" true (o64 < 1.01)

let prop_rounding_preserves_work =
  QCheck.Test.make ~name:"rounding preserves every job's work" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 10)
           (triple (make Gen.(float_range 0.1 5.0))
              (make Gen.(float_range 0.1 3.0))
              (make Gen.(float_range 0.05 7.9))))
        (int_range 1 6))
    (fun (slices, count) ->
      let slices =
        List.mapi
          (fun i (t0, dur, speed) -> slice 0 t0 (t0 +. dur) i speed)
          slices
      in
      let sched = Schedule.make ~machines:1 ~rejected:[] slices in
      let levels = Levels.geometric ~base:0.05 ~ratio:2.0 ~count:(count + 8) in
      let rounded = Levels.round_schedule levels sched in
      List.for_all
        (fun (sl : Schedule.slice) ->
          Float.abs
            (Schedule.work_of_job rounded sl.job
            -. Schedule.work_of_job sched sl.job)
          <= 1e-6)
        slices)

let prop_rounded_speeds_on_grid =
  QCheck.Test.make ~name:"every rounded slice sits exactly on a level"
    ~count:200
    QCheck.(make Gen.(float_range 0.05 7.9))
    (fun speed ->
      let levels = Levels.geometric ~base:0.05 ~ratio:2.0 ~count:9 in
      let rounded = Levels.round_slice levels (slice 0 0.0 1.0 0 speed) in
      List.for_all
        (fun (sl : Schedule.slice) ->
          List.exists
            (fun l -> Float.abs (l -. sl.speed) <= 1e-9 *. (1.0 +. l))
            (Levels.speeds levels))
        rounded)

let prop_overhead_at_least_one =
  QCheck.Test.make ~name:"discrete emulation never saves energy" ~count:100
    QCheck.(make Gen.(float_range 0.06 7.9))
    (fun speed ->
      let levels = Levels.geometric ~base:0.05 ~ratio:2.0 ~count:9 in
      let sched =
        Schedule.make ~machines:1 ~rejected:[] [ slice 0 0.0 1.0 0 speed ]
      in
      Levels.energy_overhead p3 levels sched >= 1.0 -. 1e-9)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "discrete"
    [
      ( "levels",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "geometric" `Quick test_geometric;
          Alcotest.test_case "exact level" `Quick test_round_slice_exact_level;
          Alcotest.test_case "between levels" `Quick
            test_round_slice_between_levels;
          Alcotest.test_case "below grid" `Quick test_round_slice_below_grid;
          Alcotest.test_case "above grid" `Quick test_round_slice_above_grid;
          Alcotest.test_case "schedule stays feasible" `Quick
            test_round_schedule_stays_feasible;
          Alcotest.test_case "overhead decreases" `Quick
            test_overhead_decreases_with_density;
          q prop_rounding_preserves_work;
          q prop_rounded_speeds_on_grid;
          q prop_overhead_at_least_one;
        ] );
    ]
