(* Tests for the uniform algorithm driver and the ratio metrics. *)

open Speedscale_model
open Speedscale_sim
open Speedscale_metrics

let p2 = Power.make 2.0

let mk_job ~id ~r ~d ~w ?(v = Float.infinity) () =
  Job.make ~id ~release:r ~deadline:d ~workload:w ~value:v

let small_single =
  Instance.make ~power:p2 ~machines:1
    [
      mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 ~v:9.0 ();
      mk_job ~id:1 ~r:0.5 ~d:1.5 ~w:1.0 ~v:9.0 ();
      mk_job ~id:2 ~r:1.0 ~d:3.0 ~w:0.5 ~v:0.01 ();
    ]

let small_multi =
  Instance.make ~power:p2 ~machines:2
    [
      mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:2.0 ~v:20.0 ();
      mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:1.0 ~v:20.0 ();
      mk_job ~id:2 ~r:1.0 ~d:3.0 ~w:1.0 ~v:20.0 ();
    ]

let test_evaluate_pd () =
  let r = Driver.evaluate Driver.pd small_single in
  Alcotest.(check string) "name" "PD" r.algorithm;
  (match r.validation with
  | Ok () -> ()
  | Error e -> Alcotest.failf "PD invalid: %s" e);
  let direct = Speedscale_core.Pd.run small_single in
  Alcotest.(check (float 1e-9))
    "cost matches direct run"
    (Cost.total direct.cost)
    (Cost.total r.cost)

let test_applicability_gate () =
  Alcotest.(check bool) "OA not applicable on m=2" false
    (Driver.oa.applicable small_multi);
  Alcotest.check_raises "evaluate raises"
    (Invalid_argument "Driver.evaluate: OA is not applicable here") (fun () ->
      ignore (Driver.evaluate Driver.oa small_multi))

let test_all_single_processor_algorithms_valid () =
  List.iter
    (fun alg ->
      if alg.Driver.applicable small_single then begin
        let r = Driver.evaluate alg small_single in
        match r.validation with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s invalid: %s" alg.Driver.name e
      end)
    Driver.all

let test_all_multi_processor_algorithms_valid () =
  List.iter
    (fun alg ->
      if alg.Driver.applicable small_multi then begin
        let r = Driver.evaluate alg small_multi in
        match r.validation with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s invalid: %s" alg.Driver.name e
      end)
    Driver.all

let test_offline_dominates_online () =
  (* exact profitable optimum is cheapest among profitable algorithms *)
  let opt = Driver.evaluate Driver.opt_small small_single in
  let pd = Driver.evaluate Driver.pd small_single in
  let cll = Driver.evaluate Driver.cll small_single in
  Alcotest.(check bool) "opt <= pd" true
    (Cost.total opt.cost <= Cost.total pd.cost +. 1e-2);
  Alcotest.(check bool) "opt <= cll" true
    (Cost.total opt.cost <= Cost.total cll.cost +. 1e-2)

let test_pd_with_delta_name () =
  let alg = Driver.pd_with_delta 0.25 in
  Alcotest.(check string) "name carries delta" "PD(delta=0.25)" alg.name;
  let r = Driver.evaluate alg small_single in
  match r.validation with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" e

(* ------------------------------------------------------------------ *)
(* Ratio metrics                                                        *)
(* ------------------------------------------------------------------ *)

let test_ratio_make () =
  let s = Ratio.make ~cost:6.0 ~lower_bound:2.0 in
  Alcotest.(check (float 1e-9)) "ratio" 3.0 s.ratio;
  Alcotest.check_raises "zero lower bound"
    (Invalid_argument "Ratio.make: lower bound must be > 0 (got 0)") (fun () ->
      ignore (Ratio.make ~cost:1.0 ~lower_bound:0.0))

let test_ratio_aggregate () =
  let samples =
    [
      Ratio.make ~cost:2.0 ~lower_bound:1.0;
      Ratio.make ~cost:3.0 ~lower_bound:1.0;
      Ratio.make ~cost:5.0 ~lower_bound:1.0;
    ]
  in
  let a = Ratio.aggregate ~guarantee:4.0 samples in
  Alcotest.(check int) "count" 3 a.count;
  Alcotest.(check (float 1e-9)) "max" 5.0 a.max_ratio;
  Alcotest.(check int) "one violation" 1 a.violations;
  Alcotest.(check (float 1e-9)) "mean" (10.0 /. 3.0) a.mean_ratio

(* ------------------------------------------------------------------ *)
(* Structure metrics                                                    *)
(* ------------------------------------------------------------------ *)

let slice proc t0 t1 job speed = { Schedule.proc; t0; t1; job; speed }

let test_structure_counts () =
  (* job 0: runs [0,1) on proc 0, pauses, resumes [2,3) on proc 1:
     one preemption, one migration *)
  let s =
    Schedule.make ~machines:2 ~rejected:[]
      [ slice 0 0.0 1.0 0 1.0; slice 1 2.0 3.0 0 1.0; slice 1 0.0 1.0 1 2.0 ]
  in
  let st = Structure.of_schedule s in
  Alcotest.(check int) "slices" 3 st.n_slices;
  Alcotest.(check int) "preemptions" 1 st.preemptions;
  Alcotest.(check int) "migrations" 1 st.migrations;
  Alcotest.(check (float 1e-9)) "busy" 3.0 st.busy_time;
  Alcotest.(check (float 1e-9)) "max speed" 2.0 st.max_speed;
  (* span 3, 2 machines: utilization 3/6 *)
  Alcotest.(check (float 1e-9)) "utilization" 0.5 st.utilization

let test_structure_contiguous_same_proc () =
  (* contiguous same-processor slices are neither preemption nor
     migration (a speed change at an interval boundary) *)
  let s =
    Schedule.make ~machines:1 ~rejected:[]
      [ slice 0 0.0 1.0 0 1.0; slice 0 1.0 2.0 0 2.0 ]
  in
  let st = Structure.of_schedule s in
  Alcotest.(check int) "no preemption" 0 st.preemptions;
  Alcotest.(check int) "no migration" 0 st.migrations

let test_structure_empty () =
  let st = Structure.of_schedule (Schedule.make ~machines:2 ~rejected:[] []) in
  Alcotest.(check int) "no slices" 0 st.n_slices;
  Alcotest.(check (float 0.0)) "zero utilization" 0.0 st.utilization

(* ------------------------------------------------------------------ *)
(* Profit view                                                          *)
(* ------------------------------------------------------------------ *)

let test_profit_identity () =
  let r = Driver.evaluate Driver.pd small_single in
  let profit = Profit.of_schedule small_single r.schedule in
  let gap = Profit.identity_gap small_single r.schedule in
  Alcotest.(check (float 1e-6)) "profit + cost = total value" 0.0 gap;
  Alcotest.(check (float 1e-6)) "explicit identity"
    (Instance.total_value small_single -. Cost.total r.cost)
    profit

let test_profit_can_be_negative () =
  (* a schedule that burns energy finishing a worthless job *)
  let inst =
    Instance.make ~power:p2 ~machines:1
      [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ~v:0.5 () ]
  in
  let s = Schedule.make ~machines:1 ~rejected:[] [ slice 0 0.0 1.0 0 2.0 ] in
  Alcotest.(check (float 1e-9)) "0.5 - 4" (-3.5) (Profit.of_schedule inst s)

(* ------------------------------------------------------------------ *)
(* Baselines                                                            *)
(* ------------------------------------------------------------------ *)

let test_baselines_extremes () =
  let all = Baselines.admit_all small_single in
  Alcotest.(check (list int)) "admit-all rejects none" [] all.rejected;
  (match Schedule.validate
           (Instance.with_values small_single (fun _ -> Float.infinity))
           all
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "admit-all invalid: %s" e);
  let none = Baselines.reject_all small_single in
  Alcotest.(check int) "reject-all rejects all" 3 (List.length none.rejected);
  Alcotest.(check (float 1e-9)) "reject-all cost = total value"
    (Instance.total_value small_single)
    (Cost.total (Schedule.cost small_single none))

let test_value_density_threshold_behaviour () =
  (* small_single: two jobs with v/w = 9, one with v/w = 0.02 *)
  let low = Baselines.value_density_threshold 0.01 small_single in
  Alcotest.(check (list int)) "low threshold admits all" [] low.rejected;
  let mid = Baselines.value_density_threshold 1.0 small_single in
  Alcotest.(check (list int)) "mid threshold drops the cheap job" [ 2 ]
    mid.rejected;
  let high = Baselines.value_density_threshold 100.0 small_single in
  Alcotest.(check int) "high threshold drops everything" 3
    (List.length high.rejected)

let test_best_static_threshold () =
  let c, cost =
    Baselines.best_static_threshold ~candidates:[ 0.01; 1.0; 100.0 ]
      small_single
  in
  (* best must be at least as good as each candidate *)
  List.iter
    (fun c' ->
      let cost' =
        Schedule.cost small_single
          (Baselines.value_density_threshold c' small_single)
      in
      Alcotest.(check bool)
        (Printf.sprintf "best (%.2g) <= %.2g" c c')
        true
        (Cost.total cost <= Cost.total cost' +. 1e-9))
    [ 0.01; 1.0; 100.0 ]

let () =
  Alcotest.run "sim"
    [
      ( "driver",
        [
          Alcotest.test_case "evaluate pd" `Quick test_evaluate_pd;
          Alcotest.test_case "applicability" `Quick test_applicability_gate;
          Alcotest.test_case "single-proc algorithms" `Quick
            test_all_single_processor_algorithms_valid;
          Alcotest.test_case "multi-proc algorithms" `Quick
            test_all_multi_processor_algorithms_valid;
          Alcotest.test_case "offline dominates" `Quick
            test_offline_dominates_online;
          Alcotest.test_case "pd with delta" `Quick test_pd_with_delta_name;
        ] );
      ( "ratio",
        [
          Alcotest.test_case "make" `Quick test_ratio_make;
          Alcotest.test_case "aggregate" `Quick test_ratio_aggregate;
        ] );
      ( "structure",
        [
          Alcotest.test_case "counts" `Quick test_structure_counts;
          Alcotest.test_case "contiguous" `Quick test_structure_contiguous_same_proc;
          Alcotest.test_case "empty" `Quick test_structure_empty;
        ] );
      ( "profit",
        [
          Alcotest.test_case "identity" `Quick test_profit_identity;
          Alcotest.test_case "negative" `Quick test_profit_can_be_negative;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "glyphs" `Quick (fun () ->
              Alcotest.(check char) "digit" '7' (Gantt.job_glyph 7);
              Alcotest.(check char) "letter" 'a' (Gantt.job_glyph 10);
              Alcotest.(check char) "overflow" '*' (Gantt.job_glyph 99));
          Alcotest.test_case "renders lanes" `Quick (fun () ->
              let s =
                Schedule.make ~machines:2 ~rejected:[]
                  [ slice 0 0.0 1.0 0 1.0; slice 1 0.5 1.5 1 2.0 ]
              in
              let out = Gantt.render ~width:20 s in
              Alcotest.(check bool) "lane p0" true
                (String.length out > 0
                && String.split_on_char '\n' out
                   |> List.exists (fun l ->
                          String.length l >= 3 && String.sub l 0 3 = "p0 "));
              Alcotest.(check bool) "mentions job glyph 1" true
                (String.contains out '1'));
          Alcotest.test_case "empty schedule" `Quick (fun () ->
              Alcotest.(check string) "note" "(empty schedule)"
                (Gantt.render (Schedule.make ~machines:1 ~rejected:[] [])));
        ] );
      ( "baselines",
        [
          Alcotest.test_case "extremes" `Quick test_baselines_extremes;
          Alcotest.test_case "density threshold" `Quick
            test_value_density_threshold_behaviour;
          Alcotest.test_case "best static" `Quick test_best_static_threshold;
        ] );
    ]
