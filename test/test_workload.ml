(* Tests for the workload generators. *)

open Speedscale_model
open Speedscale_workload

let p2 = Power.make 2.0

let test_bkp_family_shape () =
  let inst = Generate.bkp_lower_bound ~alpha:2.0 ~n:5 () in
  Alcotest.(check int) "n jobs" 5 (Instance.n_jobs inst);
  Alcotest.(check int) "single processor" 1 inst.machines;
  (* job j (1-based) released at j-1 with workload (n-j+1)^(-1/2) *)
  let j3 = Instance.job inst 2 in
  Alcotest.(check (float 1e-9)) "release" 2.0 j3.release;
  Alcotest.(check (float 1e-9)) "deadline" 5.0 j3.deadline;
  Alcotest.(check (float 1e-9)) "workload" (3.0 ** (-0.5)) j3.workload

let test_bkp_custom_value () =
  let inst = Generate.bkp_lower_bound ~alpha:2.0 ~n:3 ~value:7.0 () in
  Alcotest.(check (float 1e-9)) "value" 7.0 (Instance.job inst 0).value

let test_random_deterministic () =
  let make () =
    Generate.random ~power:p2 ~machines:2 ~seed:42 ~n:10
      ~arrivals:(Poisson 1.0)
      ~sizes:(Uniform_size (0.5, 2.0))
      ~laxity:(0.5, 2.0)
      ~values:(Proportional 3.0)
  in
  let a = make () and b = make () in
  Alcotest.(check int) "same n" (Instance.n_jobs a) (Instance.n_jobs b);
  List.iter
    (fun i ->
      let ja = Instance.job a i and jb = Instance.job b i in
      Alcotest.(check (float 0.0)) "release" ja.release jb.release;
      Alcotest.(check (float 0.0)) "workload" ja.workload jb.workload;
      Alcotest.(check (float 0.0)) "value" ja.value jb.value)
    (List.init (Instance.n_jobs a) Fun.id)

let test_random_seed_variation () =
  let make seed =
    Generate.random ~power:p2 ~machines:1 ~seed ~n:5 ~arrivals:(Poisson 1.0)
      ~sizes:(Uniform_size (0.5, 2.0))
      ~laxity:(0.5, 2.0) ~values:Infinite
  in
  let a = make 1 and b = make 2 in
  Alcotest.(check bool) "different seeds differ" true
    ((Instance.job a 0).workload <> (Instance.job b 0).workload
    || (Instance.job a 0).release <> (Instance.job b 0).release)

let test_random_density_in_laxity_range () =
  let inst =
    Generate.random ~power:p2 ~machines:1 ~seed:7 ~n:40
      ~arrivals:(Regular 0.5)
      ~sizes:(Pareto_size { shape = 2.0; scale = 0.5 })
      ~laxity:(0.25, 4.0) ~values:Infinite
  in
  Array.iter
    (fun j ->
      let d = Job.density j in
      Alcotest.(check bool)
        (Printf.sprintf "density %g in range" d)
        true
        (d >= 0.25 -. 1e-9 && d <= 4.0 +. 1e-9))
    inst.jobs

let test_value_models () =
  let base values =
    Generate.random ~power:p2 ~machines:1 ~seed:3 ~n:20
      ~arrivals:(Regular 1.0) ~sizes:(Fixed 2.0) ~laxity:(1.0, 1.0) ~values
  in
  (* proportional: v = 5 * w = 10 *)
  Array.iter
    (fun (j : Job.t) -> Alcotest.(check (float 1e-9)) "prop" 10.0 j.value)
    (base (Proportional 5.0)).jobs;
  (* infinite *)
  Array.iter
    (fun (j : Job.t) ->
      Alcotest.(check bool) "inf" true (Float.equal j.value Float.infinity))
    (base Infinite).jobs;
  (* per-density with fixed density 1: v = c * w *)
  Array.iter
    (fun (j : Job.t) -> Alcotest.(check (float 1e-9)) "per-density" 6.0 j.value)
    (base (Per_density 3.0)).jobs;
  (* lottery: both levels occur over 20 draws with p=0.5 *)
  let lottery = (base (Lottery { low = 1.0; high = 9.0; p_high = 0.5 })).jobs in
  let lows = Array.exists (fun (j : Job.t) -> Float.equal j.value 1.0) lottery in
  let highs = Array.exists (fun (j : Job.t) -> Float.equal j.value 9.0) lottery in
  Alcotest.(check bool) "both outcomes" true (lows && highs)

let test_arrival_processes () =
  let regular =
    Generate.random ~power:p2 ~machines:1 ~seed:1 ~n:4 ~arrivals:(Regular 2.0)
      ~sizes:(Fixed 1.0) ~laxity:(1.0, 1.0) ~values:Infinite
  in
  Alcotest.(check (float 1e-9)) "regular gap" 2.0 (Instance.job regular 0).release;
  Alcotest.(check (float 1e-9)) "regular gap 2" 4.0 (Instance.job regular 1).release;
  let bursty =
    Generate.random ~power:p2 ~machines:1 ~seed:1 ~n:4
      ~arrivals:(Bursty { burst = 2; gap = 3.0 })
      ~sizes:(Fixed 1.0) ~laxity:(1.0, 1.0) ~values:Infinite
  in
  Alcotest.(check (float 1e-9)) "burst 1a" 3.0 (Instance.job bursty 0).release;
  Alcotest.(check (float 1e-9)) "burst 1b" 3.0 (Instance.job bursty 1).release;
  Alcotest.(check (float 1e-9)) "burst 2a" 6.0 (Instance.job bursty 2).release

let test_figure2_and_figure3 () =
  let m, l, loads, (new_id, new_load) = Generate.figure2_loads () in
  Alcotest.(check int) "three processors" 3 m;
  Alcotest.(check (float 1e-9)) "unit interval" 1.0 l;
  Alcotest.(check int) "three existing jobs" 3 (List.length loads);
  Alcotest.(check bool) "new job fresh id" true
    (not (List.mem_assoc new_id loads));
  Alcotest.(check bool) "new load positive" true (new_load > 0.0);
  let f3 = Generate.figure3 ~power:p2 in
  Alcotest.(check int) "figure3 jobs" 2 (Instance.n_jobs f3);
  Alcotest.(check int) "figure3 single proc" 1 f3.machines

let test_datacenter_preset () =
  let inst = Generate.datacenter ~power:p2 ~machines:4 ~seed:11 ~n:30 in
  Alcotest.(check int) "n" 30 (Instance.n_jobs inst);
  Alcotest.(check int) "m" 4 inst.machines;
  (* values follow the lottery: only two levels *)
  Array.iter
    (fun (j : Job.t) ->
      Alcotest.(check bool) "lottery level" true
        (Float.equal j.value 0.4 || Float.equal j.value 30.0))
    inst.jobs

let test_diurnal_preset () =
  let inst =
    Generate.diurnal ~power:p2 ~machines:2 ~seed:5 ~n:50 ~period:10.0 ()
  in
  Alcotest.(check int) "n" 50 (Instance.n_jobs inst);
  (* deterministic *)
  let inst' =
    Generate.diurnal ~power:p2 ~machines:2 ~seed:5 ~n:50 ~period:10.0 ()
  in
  Alcotest.(check (float 0.0)) "deterministic"
    (Instance.job inst 10).release
    (Instance.job inst' 10).release;
  (* arrivals are increasing and positive *)
  let releases =
    List.init 50 (fun i -> (Instance.job inst i).release)
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted arrivals" true (increasing releases);
  Alcotest.(check bool) "positive times" true (List.for_all (fun r -> r > 0.0) releases);
  (* values proportional to work *)
  Array.iter
    (fun (j : Job.t) ->
      Alcotest.(check (float 1e-9)) "v = 2w" (2.0 *. j.workload) j.value)
    inst.jobs

let test_diurnal_concentrates_at_peak () =
  (* with an extreme peak/trough contrast, most arrivals land near the
     middle of each period *)
  let inst =
    Generate.diurnal ~power:p2 ~machines:1 ~seed:9 ~n:400 ~period:10.0
      ~peak_rate:50.0 ~trough_rate:0.5 ()
  in
  let near_peak = ref 0 in
  Array.iter
    (fun (j : Job.t) ->
      let phase = Float.rem j.release 10.0 /. 10.0 in
      if phase > 0.25 && phase < 0.75 then incr near_peak)
    inst.jobs;
  Alcotest.(check bool)
    (Printf.sprintf "%d/400 near peak" !near_peak)
    true
    (float_of_int !near_peak /. 400.0 > 0.7)

let test_invalid_arguments () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Generate.random: n < 1")
    (fun () ->
      ignore
        (Generate.random ~power:p2 ~machines:1 ~seed:0 ~n:0
           ~arrivals:(Poisson 1.0) ~sizes:(Fixed 1.0) ~laxity:(1.0, 1.0)
           ~values:Infinite));
  Alcotest.check_raises "bad laxity"
    (Invalid_argument "Generate.random: bad laxity range") (fun () ->
      ignore
        (Generate.random ~power:p2 ~machines:1 ~seed:0 ~n:1
           ~arrivals:(Poisson 1.0) ~sizes:(Fixed 1.0) ~laxity:(2.0, 1.0)
           ~values:Infinite))

let () =
  Alcotest.run "workload"
    [
      ( "generate",
        [
          Alcotest.test_case "bkp shape" `Quick test_bkp_family_shape;
          Alcotest.test_case "bkp value" `Quick test_bkp_custom_value;
          Alcotest.test_case "deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "seed variation" `Quick test_random_seed_variation;
          Alcotest.test_case "laxity range" `Quick
            test_random_density_in_laxity_range;
          Alcotest.test_case "value models" `Quick test_value_models;
          Alcotest.test_case "arrival processes" `Quick test_arrival_processes;
          Alcotest.test_case "figures" `Quick test_figure2_and_figure3;
          Alcotest.test_case "datacenter" `Quick test_datacenter_preset;
          Alcotest.test_case "diurnal" `Quick test_diurnal_preset;
          Alcotest.test_case "diurnal peak" `Quick test_diurnal_concentrates_at_peak;
          Alcotest.test_case "invalid args" `Quick test_invalid_arguments;
        ] );
    ]
