(* Tests for the max-flow substrate and the scheduling feasibility /
   min-speed-cap solver built on it. *)

open Speedscale_model
open Speedscale_flow

let check_float = Alcotest.(check (float 1e-9))
let p2 = Power.make 2.0

(* ------------------------------------------------------------------ *)
(* Dinic                                                               *)
(* ------------------------------------------------------------------ *)

let test_dinic_single_edge () =
  let t = Dinic.create ~n_nodes:2 ~source:0 ~sink:1 in
  Dinic.add_edge t ~src:0 ~dst:1 ~capacity:3.5;
  check_float "trivial" 3.5 (Dinic.max_flow t);
  check_float "edge flow" 3.5 (Dinic.flow_on t ~src:0 ~dst:1)

let test_dinic_bottleneck_path () =
  (* 0 -> 2 -> 3 -> 1 with capacities 5, 2, 9: flow 2 *)
  let t = Dinic.create ~n_nodes:4 ~source:0 ~sink:1 in
  Dinic.add_edge t ~src:0 ~dst:2 ~capacity:5.0;
  Dinic.add_edge t ~src:2 ~dst:3 ~capacity:2.0;
  Dinic.add_edge t ~src:3 ~dst:1 ~capacity:9.0;
  check_float "bottleneck" 2.0 (Dinic.max_flow t)

let test_dinic_classic_diamond () =
  (* the classic network where augmenting through the cross edge is needed *)
  let t = Dinic.create ~n_nodes:4 ~source:0 ~sink:3 in
  Dinic.add_edge t ~src:0 ~dst:1 ~capacity:10.0;
  Dinic.add_edge t ~src:0 ~dst:2 ~capacity:10.0;
  Dinic.add_edge t ~src:1 ~dst:2 ~capacity:1.0;
  Dinic.add_edge t ~src:1 ~dst:3 ~capacity:10.0;
  Dinic.add_edge t ~src:2 ~dst:3 ~capacity:10.0;
  check_float "diamond" 20.0 (Dinic.max_flow t)

let test_dinic_disconnected () =
  let t = Dinic.create ~n_nodes:3 ~source:0 ~sink:2 in
  Dinic.add_edge t ~src:0 ~dst:1 ~capacity:4.0;
  check_float "no path" 0.0 (Dinic.max_flow t)

let test_dinic_validation () =
  Alcotest.check_raises "source = sink"
    (Invalid_argument "Dinic.create: bad node layout") (fun () ->
      ignore (Dinic.create ~n_nodes:3 ~source:1 ~sink:1));
  let t = Dinic.create ~n_nodes:2 ~source:0 ~sink:1 in
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Dinic.add_edge: negative capacity") (fun () ->
      Dinic.add_edge t ~src:0 ~dst:1 ~capacity:(-1.0))

(* max-flow = min-cut spot check on random bipartite graphs: flow is
   bounded by both the source-side and sink-side capacity sums *)
let prop_dinic_bounded_by_cuts =
  QCheck.Test.make ~name:"flow bounded by trivial cuts" ~count:200
    QCheck.(
      list_of_size Gen.(1 -- 12)
        (pair (int_bound 3) (make Gen.(float_range 0.0 5.0))))
    (fun pairs ->
      (* bipartite: source(0) -> left(2+i) -> right(6+j) -> sink(1) *)
      let t = Dinic.create ~n_nodes:12 ~source:0 ~sink:1 in
      let src_cap = Array.make 4 0.0 in
      List.iteri
        (fun i (j, c) ->
          let left = 2 + (i mod 4) and right = 6 + j in
          Dinic.add_edge t ~src:left ~dst:right ~capacity:c;
          src_cap.(i mod 4) <- src_cap.(i mod 4) +. c)
        pairs;
      for i = 0 to 3 do
        Dinic.add_edge t ~src:0 ~dst:(2 + i) ~capacity:src_cap.(i)
      done;
      for j = 0 to 3 do
        Dinic.add_edge t ~src:(6 + j) ~dst:1 ~capacity:2.5
      done;
      let f = Dinic.max_flow t in
      let total = Array.fold_left ( +. ) 0.0 src_cap in
      f <= total +. 1e-9 && f <= 10.0 +. 1e-9 && f >= -1e-9)

(* ------------------------------------------------------------------ *)
(* Feasibility                                                         *)
(* ------------------------------------------------------------------ *)

let mk_job ~id ~r ~d ~w =
  Job.make ~id ~release:r ~deadline:d ~workload:w ~value:Float.infinity

let test_feasibility_single_job () =
  let inst =
    Instance.make ~power:p2 ~machines:1 [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:4.0 ]
  in
  Alcotest.(check bool) "cap 2 feasible" true
    (Feasibility.feasible inst ~speed_cap:2.0);
  Alcotest.(check bool) "cap 1.9 infeasible" false
    (Feasibility.feasible inst ~speed_cap:1.9);
  check_float "min cap = density" 2.0 (Feasibility.min_speed_cap inst)

let test_feasibility_parallelism_limit () =
  (* one job cannot use two processors: m = 2 does not halve its cap *)
  let inst =
    Instance.make ~power:p2 ~machines:2 [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:3.0 ]
  in
  check_float "still density 3" 3.0 (Feasibility.min_speed_cap inst)

let test_feasibility_two_jobs_one_machine () =
  (* both jobs in [0,1]: cap must cover the sum *)
  let inst =
    Instance.make ~power:p2 ~machines:1
      [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0; mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:2.0 ]
  in
  check_float "sum density" 3.0 (Feasibility.min_speed_cap inst);
  (* two machines split them: cap = max density = 2 *)
  let inst2 =
    Instance.make ~power:p2 ~machines:2
      [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0; mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:2.0 ]
  in
  check_float "max density" 2.0 (Feasibility.min_speed_cap inst2)

let test_feasibility_work_assignment_realizes () =
  let inst =
    Instance.make ~power:p2 ~machines:2
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:2.0;
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:1.5;
        mk_job ~id:2 ~r:1.0 ~d:3.0 ~w:1.0;
      ]
  in
  let cap = Feasibility.min_speed_cap inst *. 1.001 in
  match Feasibility.work_assignment inst ~speed_cap:cap with
  | None -> Alcotest.fail "assignment should exist at 1.001 * min cap"
  | Some (loads, tl) ->
    (* per-job totals match workloads *)
    let per_job = Hashtbl.create 8 in
    Array.iter
      (List.iter (fun (j, f) ->
           Hashtbl.replace per_job j
             (f +. Option.value ~default:0.0 (Hashtbl.find_opt per_job j))))
      loads;
    List.iter
      (fun j ->
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "job %d work" j)
          (Instance.job inst j).workload
          (Option.value ~default:0.0 (Hashtbl.find_opt per_job j)))
      [ 0; 1; 2 ];
    (* no interval exceeds per-job or total capacity *)
    Array.iteri
      (fun k pairs ->
        let lk = Timeline.length tl k in
        let total = List.fold_left (fun a (_, f) -> a +. f) 0.0 pairs in
        Alcotest.(check bool) "interval capacity" true
          (total <= (2.0 *. cap *. lk) +. 1e-6);
        List.iter
          (fun (_, f) ->
            Alcotest.(check bool) "job parallelism" true
              (f <= (cap *. lk) +. 1e-6))
          pairs)
      loads

let prop_flow_schedule_respects_cap =
  QCheck.Test.make
    ~name:"flow-realized schedule: feasible and every speed <= cap"
    ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 6)
           (triple
              (make Gen.(float_range 0.0 5.0))
              (make Gen.(float_range 0.3 3.0))
              (make Gen.(float_range 0.2 2.0))))
        (int_range 1 3))
    (fun (jobs, machines) ->
      let inst =
        Instance.make ~power:p2 ~machines
          (List.mapi
             (fun i (r, span, w) -> mk_job ~id:i ~r ~d:(r +. span) ~w)
             jobs)
      in
      let cap = Feasibility.min_speed_cap inst *. 1.0001 in
      match Feasibility.schedule inst ~speed_cap:cap with
      | None -> QCheck.Test.fail_reportf "no schedule at 1.0001 * min cap"
      | Some s ->
        (match Schedule.validate inst s with
        | Ok () -> ()
        | Error e -> QCheck.Test.fail_reportf "infeasible: %s" e);
        List.for_all
          (fun (sl : Schedule.slice) -> sl.speed <= cap *. (1.0 +. 1e-6))
          s.slices)

(* min cap on a single machine equals the YDS maximum density *)
let gen_jobs =
  QCheck.Gen.(
    let* n = 1 -- 6 in
    list_size (return n)
      (let* r = float_range 0.0 5.0 in
       let* span = float_range 0.3 3.0 in
       let* w = float_range 0.2 2.0 in
       return (r, r +. span, w)))

let arb_jobs =
  QCheck.make gen_jobs ~print:(fun jobs ->
      String.concat ";"
        (List.map (fun (r, d, w) -> Printf.sprintf "(%g,%g,%g)" r d w) jobs))

let prop_min_cap_matches_yds_peak =
  QCheck.Test.make ~name:"min speed cap (m=1) = YDS peak density" ~count:80
    arb_jobs (fun jobs ->
      let inst =
        Instance.make ~power:p2 ~machines:1
          (List.mapi (fun i (r, d, w) -> mk_job ~id:i ~r ~d ~w) jobs)
      in
      let cap = Feasibility.min_speed_cap inst in
      let peak =
        List.fold_left
          (fun acc (r : Speedscale_single.Yds.round) -> Float.max acc r.density)
          0.0
          (Speedscale_single.Yds.rounds (Array.to_list inst.jobs))
      in
      Float.abs (cap -. peak) <= 1e-6 *. (1.0 +. peak))

let prop_min_cap_monotone_in_machines =
  QCheck.Test.make ~name:"min speed cap never increases with more machines"
    ~count:80 arb_jobs (fun jobs ->
      let cap m =
        Feasibility.min_speed_cap
          (Instance.make ~power:p2 ~machines:m
             (List.mapi (fun i (r, d, w) -> mk_job ~id:i ~r ~d ~w) jobs))
      in
      let c1 = cap 1 and c2 = cap 2 and c4 = cap 4 in
      c1 >= c2 -. 1e-9 && c2 >= c4 -. 1e-9)

(* Scaling every workload by c >= 1 scales all flow capacities linearly
   while the interval structure (job windows) is unchanged, so the minimum
   feasible cap is monotone and in fact exactly linear in the scale. *)
let prop_min_cap_monotone_in_workload_scale =
  QCheck.Test.make
    ~name:"min speed cap scales linearly with workload" ~count:60
    QCheck.(pair arb_jobs (float_range 1.0 4.0))
    (fun (jobs, c) ->
      let mk scale =
        Instance.make ~power:p2 ~machines:2
          (List.mapi
             (fun i (r, d, w) -> mk_job ~id:i ~r ~d ~w:(w *. scale))
             jobs)
      in
      let cap = Feasibility.min_speed_cap (mk 1.0) in
      let cap' = Feasibility.min_speed_cap (mk c) in
      cap' >= cap *. (1.0 -. 1e-6)
      && Float.abs (cap' -. (c *. cap)) <= 1e-5 *. (1.0 +. (c *. cap)))

let prop_pd_schedule_respects_feasibility =
  QCheck.Test.make
    ~name:"PD's max speed is at least the min feasible cap" ~count:50
    arb_jobs (fun jobs ->
      let inst =
        Instance.make ~power:p2 ~machines:2
          (List.mapi (fun i (r, d, w) -> mk_job ~id:i ~r ~d ~w) jobs)
      in
      let r = Speedscale_core.Pd.run inst in
      let st = Speedscale_metrics.Structure.of_schedule r.schedule in
      st.max_speed >= Feasibility.min_speed_cap inst -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Migratory — exact optimum by flow peeling                            *)
(* ------------------------------------------------------------------ *)

let inst_of ~machines jobs =
  Instance.make ~power:p2 ~machines
    (List.mapi (fun i (r, d, w) -> mk_job ~id:i ~r ~d ~w) jobs)

(* On one machine the migratory optimum is YDS, which we have in exact
   closed form — the strongest available oracle for the peeling. *)
let prop_migratory_matches_yds_single =
  QCheck.Test.make ~name:"migratory optimum (m=1) = YDS energy" ~count:60
    arb_jobs (fun jobs ->
      let inst = inst_of ~machines:1 jobs in
      let r = Migratory.solve inst in
      let yds =
        Speedscale_single.Yds.energy p2 (Array.to_list inst.jobs)
      in
      if Float.abs (r.energy -. yds) > 1e-6 *. (1.0 +. yds) then
        QCheck.Test.fail_reportf "peeling %.12g vs YDS %.12g" r.energy yds
      else true)

let prop_migratory_schedule_valid_and_certified =
  QCheck.Test.make
    ~name:"migratory schedule validates; certificate feasible & pinched"
    ~count:60
    QCheck.(pair arb_jobs (QCheck.make QCheck.Gen.(oneofl [ 1; 2; 3 ])))
    (fun (jobs, machines) ->
      let inst = inst_of ~machines jobs in
      let r = Migratory.solve inst in
      (match Schedule.validate inst r.schedule with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid schedule: %s" e);
      let energy = (Schedule.cost inst r.schedule).energy in
      if Float.abs (energy -. r.energy) > 1e-6 *. (1.0 +. r.energy) then
        QCheck.Test.fail_reportf "realized %.12g vs claimed %.12g" energy
          r.energy;
      let c = Migratory.certify inst r in
      if not c.feasible then QCheck.Test.fail_reportf "certificate infeasible"
      else if not c.pinched then
        QCheck.Test.fail_reportf "certificate not pinched: a level is slack"
      else true)

(* Mopt converges to the same optimum numerically: the two independent
   solvers (projected gradient vs flow peeling) must agree. *)
let prop_migratory_matches_mopt =
  QCheck.Test.make ~name:"migratory optimum = Mopt (PGD) energy" ~count:25
    arb_jobs (fun jobs ->
      let inst = inst_of ~machines:2 jobs in
      let peel = Migratory.energy inst in
      let pgd = Speedscale_multi.Mopt.energy inst in
      if Float.abs (peel -. pgd) > 1e-4 *. (1.0 +. pgd) then
        QCheck.Test.fail_reportf "peeling %.12g vs PGD %.12g" peel pgd
      else true)

let test_migratory_single_job () =
  (* one job on two machines: runs at its density on one machine *)
  let inst = Instance.make ~power:p2 ~machines:2 [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:4.0 ] in
  let r = Migratory.solve inst in
  Alcotest.(check (float 1e-6)) "speed = density" 2.0 r.speeds.(0);
  (* energy = (w/s) * s^alpha = 2 * 4 = 8 *)
  Alcotest.(check (float 1e-5)) "energy" 8.0 r.energy;
  let c = Migratory.certify inst r in
  Alcotest.(check bool) "certified" true (c.feasible && c.pinched)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "flow"
    [
      ( "dinic",
        [
          Alcotest.test_case "single edge" `Quick test_dinic_single_edge;
          Alcotest.test_case "bottleneck" `Quick test_dinic_bottleneck_path;
          Alcotest.test_case "diamond" `Quick test_dinic_classic_diamond;
          Alcotest.test_case "disconnected" `Quick test_dinic_disconnected;
          Alcotest.test_case "validation" `Quick test_dinic_validation;
          q prop_dinic_bounded_by_cuts;
        ] );
      ( "feasibility",
        [
          Alcotest.test_case "single job" `Quick test_feasibility_single_job;
          Alcotest.test_case "parallelism limit" `Quick
            test_feasibility_parallelism_limit;
          Alcotest.test_case "two jobs" `Quick test_feasibility_two_jobs_one_machine;
          Alcotest.test_case "work assignment" `Quick
            test_feasibility_work_assignment_realizes;
          q prop_flow_schedule_respects_cap;
          q prop_min_cap_matches_yds_peak;
          q prop_min_cap_monotone_in_machines;
          q prop_min_cap_monotone_in_workload_scale;
          q prop_pd_schedule_respects_feasibility;
        ] );
      ( "migratory",
        [
          Alcotest.test_case "single job" `Quick test_migratory_single_job;
          q prop_migratory_matches_yds_single;
          q prop_migratory_schedule_valid_and_certified;
          q prop_migratory_matches_mopt;
        ] );
    ]
