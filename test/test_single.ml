(* Tests for the single-processor classics: YDS (exact offline optimum),
   OA, AVR, BKP and the Chan-Lam-Li profitable algorithm. *)

open Speedscale_model
open Speedscale_single

let check_float = Alcotest.(check (float 1e-6))
let p2 = Power.make 2.0
let p3 = Power.make 3.0

let mk_job ~id ~r ~d ~w ?(v = Float.infinity) () =
  Job.make ~id ~release:r ~deadline:d ~workload:w ~value:v

let instance ?(power = p2) ?(machines = 1) jobs =
  Instance.make ~power ~machines jobs

(* ------------------------------------------------------------------ *)
(* YDS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_yds_single_job () =
  let jobs = [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:3.0 () ] in
  (match Yds.profile jobs with
  | [ (a, b, s) ] ->
    check_float "t0" 0.0 a;
    check_float "t1" 1.0 b;
    check_float "speed" 3.0 s
  | other -> Alcotest.failf "expected one segment, got %d" (List.length other));
  check_float "energy (alpha=3)" 27.0 (Yds.energy p3 jobs)

let test_yds_two_jobs_same_window () =
  let jobs =
    [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 (); mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:1.0 () ]
  in
  check_float "density 2, alpha 3" 8.0 (Yds.energy p3 jobs)

let test_yds_staggered () =
  (* j1 [0,2] w=1; j2 [0,1] w=2: critical [0,1] at speed 2, then [1,2] at
     speed 1. *)
  let jobs =
    [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 (); mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:2.0 () ]
  in
  (match Yds.rounds jobs with
  | [ r1; r2 ] ->
    check_float "first density" 2.0 r1.density;
    Alcotest.(check (list int)) "first members" [ 1 ] r1.members;
    check_float "second density" 1.0 r2.density;
    Alcotest.(check (list int)) "second members" [ 0 ] r2.members;
    Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
      "second segments" [ (1.0, 2.0) ] r2.segments
  | rs -> Alcotest.failf "expected 2 rounds, got %d" (List.length rs));
  check_float "energy alpha=2" 5.0 (Yds.energy p2 jobs)

let test_yds_disjoint_jobs () =
  let jobs =
    [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 (); mk_job ~id:1 ~r:3.0 ~d:4.0 ~w:1.0 () ]
  in
  check_float "energy alpha=2" 5.0 (Yds.energy p2 jobs);
  (* the idle gap [1,3] carries no speed *)
  let total_span =
    Speedscale_util.Ksum.sum_by (fun (a, b, _) -> b -. a) (Yds.profile jobs)
  in
  check_float "busy time" 2.0 total_span

let test_yds_nested_critical () =
  (* a dense inner job inside a long sparse one *)
  let jobs =
    [
      mk_job ~id:0 ~r:0.0 ~d:10.0 ~w:2.0 ();
      mk_job ~id:1 ~r:4.0 ~d:5.0 ~w:5.0 ();
    ]
  in
  (match Yds.rounds jobs with
  | r1 :: _ ->
    check_float "inner critical density" 5.0 r1.density;
    Alcotest.(check (list int)) "inner member" [ 1 ] r1.members
  | [] -> Alcotest.fail "no rounds");
  (* outer job spreads over the remaining 9 time units *)
  check_float "outer speed" (2.0 /. 9.0) (Yds.speed_of_job jobs 0)

let test_yds_schedule_valid () =
  let inst =
    instance
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 ();
        mk_job ~id:1 ~r:0.0 ~d:1.0 ~w:2.0 ();
        mk_job ~id:2 ~r:1.5 ~d:3.0 ~w:1.0 ();
      ]
  in
  let s = Yds.schedule inst in
  (match Schedule.validate inst s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" e);
  check_float "schedule energy = profile energy"
    (Yds.energy p2 (Array.to_list inst.jobs))
    (Schedule.energy p2 s)

let gen_jobs =
  QCheck.Gen.(
    let* n = 1 -- 7 in
    list_size (return n)
      (let* r = float_range 0.0 6.0 in
       let* span = float_range 0.3 4.0 in
       let* w = float_range 0.2 3.0 in
       return (r, r +. span, w)))

let arb_jobs =
  QCheck.make gen_jobs ~print:(fun jobs ->
      String.concat ";"
        (List.map (fun (r, d, w) -> Printf.sprintf "(%g,%g,%g)" r d w) jobs))

let to_instance ?(power = p2) jobs =
  instance ~power
    (List.mapi (fun i (r, d, w) -> mk_job ~id:i ~r ~d ~w ()) jobs)

let prop_yds_schedule_feasible =
  QCheck.Test.make ~name:"YDS schedule is always feasible" ~count:150 arb_jobs
    (fun jobs ->
      let inst = to_instance jobs in
      match Schedule.validate inst (Yds.schedule inst) with
      | Ok () -> true
      | Error _ -> false)

let prop_yds_densities_decreasing =
  QCheck.Test.make ~name:"YDS round densities are non-increasing" ~count:150
    arb_jobs (fun jobs ->
      let inst = to_instance jobs in
      let rec decreasing = function
        | (a : Yds.round) :: (b :: _ as rest) ->
          a.density >= b.density -. 1e-9 && decreasing rest
        | _ -> true
      in
      decreasing (Yds.rounds (Array.to_list inst.jobs)))

let prop_yds_beats_feasible_alternatives =
  QCheck.Test.make ~name:"YDS energy <= AVR energy (optimality spot check)"
    ~count:150 arb_jobs (fun jobs ->
      let inst = to_instance jobs in
      let yds = Yds.energy p2 (Array.to_list inst.jobs) in
      yds <= Avr.energy inst +. 1e-6)

(* ------------------------------------------------------------------ *)
(* OA                                                                  *)
(* ------------------------------------------------------------------ *)

let test_oa_single_job_equals_yds () =
  let inst = instance [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:4.0 () ] in
  check_float "same as YDS" (Yds.energy p2 (Array.to_list inst.jobs))
    (Oa.energy inst)

let test_oa_planned_speed () =
  let inst = instance [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:4.0 () ] in
  check_float "planned speed = density" 2.0
    (Oa.planned_speed_of_new_job inst 0)

let prop_oa_feasible_and_bounded =
  QCheck.Test.make
    ~name:"OA feasible; YDS <= OA <= alpha^alpha * YDS" ~count:100 arb_jobs
    (fun jobs ->
      let inst = to_instance jobs in
      let s = Oa.schedule inst in
      (match Schedule.validate inst s with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible OA schedule: %s" e);
      let oa = Schedule.energy p2 s in
      let yds = Yds.energy p2 (Array.to_list inst.jobs) in
      yds <= oa +. 1e-6 *. (1.0 +. oa)
      && oa <= (4.0 *. yds) +. 1e-6)

(* the classical lower-bound instance drives OA towards alpha^alpha *)
let test_oa_adversarial_ratio_grows () =
  let n = 12 in
  let alpha = 2.0 in
  let jobs =
    List.init n (fun i ->
        let j = i + 1 in
        mk_job ~id:i ~r:(float_of_int (j - 1)) ~d:(float_of_int n)
          (* slint: allow unsafe-pow -- j <= n so the base is >= 1 *)
          ~w:(float_of_int (n - j + 1) ** (-1.0 /. alpha))
          ())
  in
  let inst = instance jobs in
  let ratio = Oa.energy inst /. Yds.energy p2 (Array.to_list inst.jobs) in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f in (1.5, 4]" ratio)
    true
    (ratio > 1.5 && ratio <= 4.0 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* AVR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_avr_single_job () =
  let inst = instance [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:4.0 () ] in
  (* constant density 2 over 2 time units *)
  check_float "energy" 8.0 (Avr.energy inst)

let test_avr_overlap () =
  (* two jobs, overlapping on [1,2]: speeds 1; 2; 1 *)
  let inst =
    instance
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:2.0 ();
        mk_job ~id:1 ~r:1.0 ~d:3.0 ~w:2.0 ();
      ]
  in
  check_float "piecewise energy" (1.0 +. 4.0 +. 1.0) (Avr.energy inst)

let prop_avr_feasible =
  QCheck.Test.make ~name:"AVR schedule feasible; energy matches closed form"
    ~count:150 arb_jobs (fun jobs ->
      let inst = to_instance jobs in
      let s = Avr.schedule inst in
      (match Schedule.validate inst s with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible AVR schedule: %s" e);
      Float.abs (Schedule.energy p2 s -. Avr.energy inst)
      <= 1e-6 *. (1.0 +. Avr.energy inst))

(* ------------------------------------------------------------------ *)
(* BKP                                                                 *)
(* ------------------------------------------------------------------ *)

let test_bkp_single_job_speed () =
  (* speed formula at t inside the window of a single job *)
  let inst = instance [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 () ] in
  (* at t=0: max over t2=1: w(0, -(e-1), 1)/(e(1-0)) = 1/e; s = e * 1/e = 1 *)
  check_float "speed at release" 1.0 (Bkp.speed_at inst 0.0)

let prop_bkp_feasible_and_dominates_yds =
  QCheck.Test.make ~name:"BKP feasible; energy >= YDS" ~count:40 arb_jobs
    (fun jobs ->
      let inst = to_instance jobs in
      let s = Bkp.schedule ~steps_per_interval:32 inst in
      (match Schedule.validate inst s with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible BKP schedule: %s" e);
      Schedule.energy p2 s >= Yds.energy p2 (Array.to_list inst.jobs) -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Oa_engine: the shared admission/execution core                      *)
(* ------------------------------------------------------------------ *)

let test_engine_admission_called_once_per_job () =
  let inst =
    instance
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 ~v:5.0 ();
        mk_job ~id:1 ~r:0.5 ~d:2.5 ~w:1.0 ~v:5.0 ();
        mk_job ~id:2 ~r:0.5 ~d:3.0 ~w:1.0 ~v:5.0 ();
      ]
  in
  let seen = ref [] in
  let admit ~now:_ ~plan:_ ~candidate =
    seen := (candidate : Job.t).id :: !seen;
    true
  in
  ignore (Oa_engine.run ~admit inst);
  Alcotest.(check (list int)) "each job probed exactly once, in order"
    [ 0; 1; 2 ] (List.rev !seen)

let test_engine_rejected_never_processed () =
  let inst =
    instance
      [
        mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:1.0 ~v:5.0 ();
        mk_job ~id:1 ~r:0.0 ~d:2.0 ~w:1.0 ~v:5.0 ();
      ]
  in
  let admit ~now:_ ~plan:_ ~candidate = (candidate : Job.t).id <> 1 in
  let s = Oa_engine.run ~admit inst in
  Alcotest.(check (list int)) "job 1 rejected" [ 1 ] s.rejected;
  check_float "no work on rejected job" 0.0 (Schedule.work_of_job s 1);
  check_float "accepted job done" 1.0 (Schedule.work_of_job s 0)

let test_engine_admission_sees_candidate_in_plan () =
  let inst = instance [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:3.0 ~v:5.0 () ] in
  let saw = ref false in
  let admit ~now:_ ~plan ~candidate =
    saw := List.exists (fun (j : Job.t) -> j.id = (candidate : Job.t).id) plan;
    true
  in
  ignore (Oa_engine.run ~admit inst);
  Alcotest.(check bool) "plan includes the candidate" true !saw

(* ------------------------------------------------------------------ *)
(* qOA                                                                 *)
(* ------------------------------------------------------------------ *)

let test_qoa_q_factor () =
  check_float "q at alpha=2" 1.5 (Qoa.q_factor p2);
  check_float "q at alpha=3" (5.0 /. 3.0) (Qoa.q_factor p3)

let test_qoa_single_job () =
  (* one job: OA speed = density 2; qOA starts at 3 but its plan speed
     decays as it runs ahead; energy sits between YDS's 8 and 12. *)
  let inst = instance [ mk_job ~id:0 ~r:0.0 ~d:2.0 ~w:4.0 () ] in
  let e = Qoa.energy inst in
  Alcotest.(check bool)
    (Printf.sprintf "energy %g in [8, 12.1]" e)
    true
    (e >= 8.0 -. 1e-6 && e <= 12.1)

let prop_qoa_feasible_and_dominates_yds =
  QCheck.Test.make ~name:"qOA feasible; YDS <= qOA <= q^(alpha-1) OA + slack"
    ~count:40 arb_jobs (fun jobs ->
      let inst = to_instance jobs in
      let s = Qoa.schedule ~steps_per_interval:16 inst in
      (match Schedule.validate inst s with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible qOA schedule: %s" e);
      let qoa = Schedule.energy p2 s in
      let yds = Yds.energy p2 (Array.to_list inst.jobs) in
      let oa = Oa.energy inst in
      qoa >= yds -. (1e-6 *. (1.0 +. yds))
      && qoa <= (Qoa.q_factor p2 ** 2.0 *. oa) +. (1e-2 *. (1.0 +. oa)))

(* ------------------------------------------------------------------ *)
(* CLL                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cll_threshold_formula () =
  (* alpha = 2: threshold = 1 * (v/w)^(1) = v/w *)
  let j = mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ~v:6.0 () in
  check_float "alpha=2 threshold" 3.0 (Cll.threshold_speed p2 j);
  (* infinite value -> never reject *)
  let j_inf = mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 () in
  check_float "infinite" Float.infinity (Cll.threshold_speed p2 j_inf)

let test_cll_accepts_valuable () =
  let inst =
    instance [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:1.0 ~v:100.0 () ]
  in
  let s = Cll.schedule inst in
  Alcotest.(check (list int)) "no rejections" [] s.rejected;
  check_float "cost is energy" 1.0 (Cost.total (Cll.cost inst))

let test_cll_rejects_worthless () =
  (* planned speed 2, threshold v/w = 0.05/2 -> reject; cost = value *)
  let inst =
    instance [ mk_job ~id:0 ~r:0.0 ~d:1.0 ~w:2.0 ~v:0.05 () ]
  in
  let s = Cll.schedule inst in
  Alcotest.(check (list int)) "rejected" [ 0 ] s.rejected;
  check_float "cost = lost value" 0.05 (Cost.total (Cll.cost inst))

let prop_cll_infinite_values_equals_oa =
  QCheck.Test.make ~name:"CLL with infinite values degenerates to OA"
    ~count:60 arb_jobs (fun jobs ->
      let inst = to_instance jobs in
      Float.abs (Cost.total (Cll.cost inst) -. Oa.energy inst)
      <= 1e-6 *. (1.0 +. Oa.energy inst))

let prop_cll_cost_bounded_by_reject_all =
  QCheck.Test.make ~name:"CLL never loses more than all values" ~count:60
    QCheck.(
      pair arb_jobs
        (list_of_size Gen.(1 -- 7) (make Gen.(float_range 0.05 5.0))))
    (fun (jobs, values) ->
      QCheck.assume (List.length values >= List.length jobs);
      let inst =
        instance
          (List.mapi
             (fun i (r, d, w) -> mk_job ~id:i ~r ~d ~w ~v:(List.nth values i) ())
             jobs)
      in
      let c = Cll.cost inst in
      (* sanity: the schedule is feasible and the lost value is the sum of
         rejected jobs' values *)
      (match Schedule.validate inst (Cll.schedule inst) with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible CLL: %s" e);
      c.lost_value <= Instance.total_value inst +. 1e-9)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "single"
    [
      ( "yds",
        [
          Alcotest.test_case "single job" `Quick test_yds_single_job;
          Alcotest.test_case "two jobs same window" `Quick
            test_yds_two_jobs_same_window;
          Alcotest.test_case "staggered" `Quick test_yds_staggered;
          Alcotest.test_case "disjoint" `Quick test_yds_disjoint_jobs;
          Alcotest.test_case "nested critical" `Quick test_yds_nested_critical;
          Alcotest.test_case "schedule valid" `Quick test_yds_schedule_valid;
          q prop_yds_schedule_feasible;
          q prop_yds_densities_decreasing;
          q prop_yds_beats_feasible_alternatives;
        ] );
      ( "oa",
        [
          Alcotest.test_case "single job = YDS" `Quick
            test_oa_single_job_equals_yds;
          Alcotest.test_case "planned speed" `Quick test_oa_planned_speed;
          Alcotest.test_case "adversarial ratio" `Quick
            test_oa_adversarial_ratio_grows;
          q prop_oa_feasible_and_bounded;
        ] );
      ( "avr",
        [
          Alcotest.test_case "single job" `Quick test_avr_single_job;
          Alcotest.test_case "overlap" `Quick test_avr_overlap;
          q prop_avr_feasible;
        ] );
      ( "bkp",
        [
          Alcotest.test_case "speed formula" `Quick test_bkp_single_job_speed;
          q prop_bkp_feasible_and_dominates_yds;
        ] );
      ( "oa-engine",
        [
          Alcotest.test_case "admission once per job" `Quick
            test_engine_admission_called_once_per_job;
          Alcotest.test_case "rejected never processed" `Quick
            test_engine_rejected_never_processed;
          Alcotest.test_case "candidate in plan" `Quick
            test_engine_admission_sees_candidate_in_plan;
        ] );
      ( "qoa",
        [
          Alcotest.test_case "q factor" `Quick test_qoa_q_factor;
          Alcotest.test_case "single job" `Quick test_qoa_single_job;
          q prop_qoa_feasible_and_dominates_yds;
        ] );
      ( "cll",
        [
          Alcotest.test_case "threshold" `Quick test_cll_threshold_formula;
          Alcotest.test_case "accepts valuable" `Quick test_cll_accepts_valuable;
          Alcotest.test_case "rejects worthless" `Quick test_cll_rejects_worthless;
          q prop_cll_infinite_values_equals_oa;
          q prop_cll_cost_bounded_by_reject_all;
        ] );
    ]
