(* Tests for the Chen et al. per-interval scheduler: the dedicated/pool
   partition (Eq. 5), the interval energy P_k (Eq. 6), its gradient
   (Proposition 1) and the monotonicity of processor loads under new
   arrivals (Proposition 2). *)

open Speedscale_util
open Speedscale_model
open Speedscale_chen

let check_float = Alcotest.(check (float 1e-9))
let p3 = Power.make 3.0

let build ?(m = 3) ?(l = 1.0) loads =
  Chen.build ~machines:m ~length:l (List.mapi (fun i w -> (i, w)) loads)

(* ------------------------------------------------------------------ *)
(* Partition structure                                                 *)
(* ------------------------------------------------------------------ *)

let test_all_dedicated_when_few_jobs () =
  (* with at most m positive loads every job gets its own processor *)
  let t = build ~m:3 [ 5.0; 1.0; 0.1 ] in
  let p = Chen.partition t in
  Alcotest.(check int) "no pool jobs" 0 (List.length p.pool);
  Alcotest.(check int) "three dedicated" 3 (List.length p.dedicated);
  check_float "fastest speed" 5.0 (Chen.speed_of_job t 0)

let test_single_processor_pools_everything () =
  let t = build ~m:1 [ 1.0; 2.0; 3.0 ] in
  let p = Chen.partition t in
  Alcotest.(check int) "no dedicated" 0 (List.length p.dedicated);
  check_float "pool speed is total" 6.0 p.pool_speed

let test_big_job_dedicated () =
  (* m=2: loads 10, 1, 1, 1 -> job 0 dedicated, rest pooled on 1 proc *)
  let t = build ~m:2 [ 10.0; 1.0; 1.0; 1.0 ] in
  let p = Chen.partition t in
  Alcotest.(check int) "one dedicated" 1 (List.length p.dedicated);
  check_float "dedicated speed" 10.0 (Chen.speed_of_job t 0);
  check_float "pool speed" 3.0 p.pool_speed;
  Alcotest.(check int) "one pool proc" 1 p.pool_procs

let test_balanced_jobs_all_pool () =
  (* m=2: four equal jobs: none dominates the average of the rest *)
  let t = build ~m:2 [ 1.0; 1.0; 1.0; 1.0 ] in
  let p = Chen.partition t in
  Alcotest.(check int) "no dedicated" 0 (List.length p.dedicated);
  check_float "pool speed" 2.0 p.pool_speed

let test_zero_loads_dropped () =
  let t = Chen.build ~machines:2 ~length:1.0 [ (0, 0.0); (1, 2.0) ] in
  check_float "total" 2.0 (Chen.total_load t);
  Alcotest.check_raises "job 0 absent" Not_found (fun () ->
      ignore (Chen.speed_of_job t 0))

let test_interval_length_scaling () =
  (* doubling the interval halves the speeds and scales energy by
     l * (1/l)^alpha *)
  let t1 = build ~m:2 ~l:1.0 [ 4.0; 4.0 ] in
  let t2 = build ~m:2 ~l:2.0 [ 4.0; 4.0 ] in
  check_float "speed halves" 2.0 (Chen.speed_of_job t2 0);
  check_float "energy t1" (2.0 *. 64.0) (Chen.energy p3 t1);
  check_float "energy t2" (2.0 *. 2.0 *. 8.0) (Chen.energy p3 t2)

let gen_loads =
  QCheck.Gen.(
    let* m = 1 -- 5 in
    let* n = 1 -- 12 in
    let* loads = list_size (return n) (float_range 0.01 10.0) in
    let* l = float_range 0.1 5.0 in
    return (m, l, loads))

let arb_loads =
  QCheck.make gen_loads ~print:(fun (m, l, loads) ->
      Printf.sprintf "m=%d l=%g loads=[%s]" m l
        (String.concat ";" (List.map string_of_float loads)))

let prop_partition_invariants =
  QCheck.Test.make ~name:"dedicated >= pool speed; pool fits McNaughton"
    ~count:500 arb_loads (fun (m, l, loads) ->
      let t = build ~m ~l loads in
      let p = Chen.partition t in
      List.length p.dedicated + p.pool_procs = m
      && List.for_all
           (fun (_, w) -> Feq.geq (w /. l) p.pool_speed)
           p.dedicated
      && List.for_all
           (fun (_, w) -> Feq.leq w (p.pool_speed *. l))
           p.pool
      && (p.pool = [] || p.pool_procs > 0))

let prop_work_conservation =
  QCheck.Test.make ~name:"processor loads sum to total load" ~count:500
    arb_loads (fun (m, l, loads) ->
      let t = build ~m ~l loads in
      let per_proc = Ksum.sum_array (Chen.processor_loads t) in
      Feq.approx ~rtol:1e-6 per_proc (Chen.total_load t))

let prop_energy_matches_processor_loads =
  QCheck.Test.make ~name:"P_k equals sum over processor speeds" ~count:500
    arb_loads (fun (m, l, loads) ->
      let t = build ~m ~l loads in
      let direct =
        Ksum.sum_array
          (Array.map
             (fun load -> Power.energy p3 ~speed:(load /. l) ~duration:l)
             (Chen.processor_loads t))
      in
      Feq.approx ~rtol:1e-6 direct (Chen.energy p3 t))

(* Energy optimality against a crude competitor: evenly spreading all the
   work over all m processors is a lower bound ONLY when feasible; instead
   we check Chen is no worse than (a) everything pooled as one block with
   the dedicated rule ignored when it is feasible, and (b) each job on its
   own processor when n <= m. *)
let prop_energy_not_worse_than_naive =
  QCheck.Test.make ~name:"P_k <= naive single-speed upper bounds" ~count:500
    arb_loads (fun (m, l, loads) ->
      let t = build ~m ~l loads in
      let p = Chen.partition t in
      ignore p;
      let n = List.length (List.filter (fun w -> w > 0.0) loads) in
      let chen = Chen.energy p3 t in
      (* bound (b): n <= m, one processor per job *)
      let per_job_ok =
        if n > m then true
        else
          let e =
            Ksum.sum_by
              (fun w ->
                if w <= 0.0 then 0.0
                else Power.energy p3 ~speed:(w /. l) ~duration:l)
              loads
          in
          Feq.leq ~rtol:1e-6 chen e
      in
      (* bound (a): run the whole load on ONE processor (always feasible
         only for a single job, but it upper-bounds the pool part when no
         job exceeds the total; we only apply it when n = 1) *)
      let single_ok =
        if n <> 1 then true
        else
          Feq.approx ~rtol:1e-6 chen
            (Power.energy p3 ~speed:(Chen.total_load t /. l) ~duration:l)
      in
      per_job_ok && single_ok)

(* Convexity of P_k (Proposition 1(a)) along random segments. *)
let prop_pk_convex =
  QCheck.Test.make ~name:"P_k is convex (Prop 1a)" ~count:300
    QCheck.(
      pair arb_loads (pair arb_loads (float_bound_exclusive 1.0)))
    (fun ((m, l, xs), ((_, _, ys), lam)) ->
      let n = min (List.length xs) (List.length ys) in
      QCheck.assume (n >= 1);
      let xs = List.filteri (fun i _ -> i < n) xs in
      let ys = List.filteri (fun i _ -> i < n) ys in
      let mix =
        List.map2 (fun a b -> (lam *. a) +. ((1.0 -. lam) *. b)) xs ys
      in
      let e loads = Chen.energy p3 (build ~m ~l loads) in
      e mix <= (lam *. e xs) +. ((1.0 -. lam) *. e ys) +. 1e-7)

(* ------------------------------------------------------------------ *)
(* Proposition 1(b): gradient                                          *)
(* ------------------------------------------------------------------ *)

(* Central finite difference of P_k w.r.t. one job's load.  We skip points
   that sit exactly on a partition kink by requiring the dedicated set to
   be stable across the probe width. *)
let prop_gradient_matches_fd =
  QCheck.Test.make ~name:"dP_k/dW_j = P'(s_j) (Prop 1b)" ~count:300
    QCheck.(pair arb_loads (int_bound 11))
    (fun ((m, l, loads), pick) ->
      QCheck.assume (loads <> []);
      let idx = pick mod List.length loads in
      let w = List.nth loads idx in
      let h = 1e-6 *. (1.0 +. w) in
      QCheck.assume (w -. h > 0.0);
      let with_load x =
        build ~m ~l (List.mapi (fun i v -> if i = idx then x else v) loads)
      in
      let t = with_load w in
      let t_lo = with_load (w -. h) and t_hi = with_load (w +. h) in
      let stable =
        List.length (Chen.partition t_lo).dedicated
        = List.length (Chen.partition t_hi).dedicated
      in
      QCheck.assume stable;
      let fd = (Chen.energy p3 t_hi -. Chen.energy p3 t_lo) /. (2.0 *. h) in
      let grad = Power.deriv p3 (Chen.speed_of_job t idx) in
      Float.abs (fd -. grad) <= 1e-3 *. (1.0 +. Float.abs grad))

(* ------------------------------------------------------------------ *)
(* Proposition 2: arrival monotonicity                                 *)
(* ------------------------------------------------------------------ *)

let prop_arrival_monotonicity =
  QCheck.Test.make ~name:"0 <= L'_i - L_i <= z (Prop 2)" ~count:500
    QCheck.(pair arb_loads (float_range 0.01 10.0))
    (fun ((m, l, loads), z) ->
      let before = build ~m ~l loads in
      let after =
        Chen.build ~machines:m ~length:l
          ((List.length loads, z) :: List.mapi (fun i w -> (i, w)) loads)
      in
      let lb = Chen.processor_loads before
      and la = Chen.processor_loads after in
      let ok = ref true in
      Array.iteri
        (fun i l_before ->
          let diff = la.(i) -. l_before in
          if not (Feq.geq diff 0.0 && Feq.leq ~rtol:1e-6 diff z) then
            ok := false)
        lb;
      !ok)

(* ------------------------------------------------------------------ *)
(* Probe functions                                                     *)
(* ------------------------------------------------------------------ *)

let test_probe_speed_zero () =
  (* pool exists -> marginal speed is pool speed *)
  let t = build ~m:2 [ 10.0; 1.0; 1.0; 1.0 ] in
  check_float "pool marginal" 3.0 (Chen.probe_speed t 0.0);
  (* all dedicated -> marginal is the smallest dedicated speed *)
  let t2 = build ~m:2 [ 5.0; 4.0 ] in
  check_float "smallest dedicated" 4.0 (Chen.probe_speed t2 0.0);
  (* empty machine -> free capacity *)
  let t3 = build ~m:2 [] in
  check_float "empty" 0.0 (Chen.probe_speed t3 0.0)

let test_probe_speed_grows () =
  let t = build ~m:2 [ 5.0; 4.0 ] in
  (* probe of load 1 pools with the 4-job on one processor: together they
     carry 5 units of work in unit time *)
  check_float "pooled with smallest" 5.0 (Chen.probe_speed t 1.0);
  (* huge probe becomes dedicated *)
  check_float "dedicated probe" 20.0 (Chen.probe_speed t 20.0)

let test_probe_load_for_speed_examples () =
  let t = build ~m:2 [ 5.0; 4.0 ] in
  (* to reach speed 4.5 the probe pools with the 4-job:
     z + 4 = 4.5 * 2?? no: pool = {4, z} on one proc -> speed (4+z)/1;
     for speed 4.5: z = 0.5 *)
  check_float "pool with 4" 0.5 (Chen.probe_load_for_speed t 4.5);
  (* to reach speed 6 the probe must be dedicated: z = 6, and the 4 and 5
     jobs share the other processor at speed 9 > 6?? then probe would not
     be fastest... still consistent: dedicated set by Eq.5. *)
  let z = Chen.probe_load_for_speed t 6.0 in
  check_float "roundtrip" 6.0 (Chen.probe_speed t z)

let test_probe_below_current_speed () =
  let t = build ~m:1 [ 3.0 ] in
  check_float "unreachable speed" 0.0 (Chen.probe_load_for_speed t 2.0)

let prop_probe_roundtrip =
  QCheck.Test.make ~name:"probe_load_for_speed inverts probe_speed"
    ~count:500
    QCheck.(pair arb_loads (float_range 0.01 20.0))
    (fun ((m, l, loads), z) ->
      let t = build ~m ~l loads in
      let s = Chen.probe_speed t z in
      let z' = Chen.probe_load_for_speed t s in
      (* the inversion can only fail at the plateau s = probe_speed 0 *)
      if s <= Chen.probe_speed t 0.0 +. 1e-9 then true
      else Feq.approx ~atol:1e-6 ~rtol:1e-6 z z')

let prop_probe_speed_monotone =
  QCheck.Test.make ~name:"probe_speed is nondecreasing" ~count:300
    QCheck.(triple arb_loads (float_range 0.0 10.0) (float_range 0.0 10.0))
    (fun ((m, l, loads), z1, z2) ->
      let t = build ~m ~l loads in
      let lo = Float.min z1 z2 and hi = Float.max z1 z2 in
      Chen.probe_speed t lo <= Chen.probe_speed t hi +. 1e-9)

let prop_marginal_power_is_min_gradient =
  QCheck.Test.make
    ~name:"marginal power equals P' of the slowest processor's speed"
    ~count:300 arb_loads (fun (m, l, loads) ->
      let t = build ~m ~l loads in
      let speeds =
        Array.map (fun load -> load /. l) (Chen.processor_loads t)
      in
      let slowest = Array.fold_left Float.min Float.infinity speeds in
      Feq.approx ~rtol:1e-6
        (Chen.marginal_power p3 t)
        (Power.deriv p3 slowest))

(* ------------------------------------------------------------------ *)
(* Breakpoints and incremental updates                                 *)
(* ------------------------------------------------------------------ *)

(* The contract PD's fast water-filling relies on: the capped response
   g s = min (probe_load_for_speed s) cap is affine between adjacent
   breakpoints, zero at the first and cap at the last.  Affinity is
   checked by midpoint interpolation on every segment. *)
let prop_breakpoints_piecewise_affine =
  QCheck.Test.make
    ~name:"probe_breakpoints: g affine per segment, 0 at first, cap at last"
    ~count:500
    QCheck.(pair arb_loads (float_range 0.05 8.0))
    (fun ((m, l, loads), cap) ->
      let t = build ~m ~l loads in
      let bps = Chen.probe_breakpoints t ~cap in
      let g s = Float.min (Chen.probe_load_for_speed t s) cap in
      let n = Array.length bps in
      if n < 2 then QCheck.Test.fail_reportf "only %d breakpoints" n;
      for i = 1 to n - 1 do
        if not (bps.(i) > bps.(i - 1)) then
          QCheck.Test.fail_reportf "not strictly sorted at %d" i
      done;
      if not (Feq.approx ~atol:1e-9 ~rtol:1e-9 (g bps.(0)) 0.0) then
        QCheck.Test.fail_reportf "g at first = %g, expected 0" (g bps.(0));
      if not (Feq.approx ~rtol:1e-9 (g bps.(n - 1)) cap) then
        QCheck.Test.fail_reportf "g at last = %g, expected cap %g"
          (g bps.(n - 1))
          cap;
      let ok = ref true in
      for i = 0 to n - 2 do
        let a = bps.(i) and b = bps.(i + 1) in
        let mid = 0.5 *. (a +. b) in
        let interp = 0.5 *. (g a +. g b) in
        if Float.abs (g mid -. interp) > 1e-7 *. (1.0 +. Float.abs interp)
        then ok := false
      done;
      !ok)

let test_breakpoints_empty_interval () =
  (* a fresh interval with no committed load: the response is s*l capped *)
  let t = build ~m:2 ~l:2.0 [] in
  let bps = Chen.probe_breakpoints t ~cap:3.0 in
  let g s = Float.min (Chen.probe_load_for_speed t s) 3.0 in
  check_float "zero at first" 0.0 (g bps.(0));
  check_float "cap at last" 3.0 (g bps.(Array.length bps - 1))

let close_12 a b = Feq.approx ~atol:1e-12 ~rtol:1e-12 a b

let same_problem a b =
  let la = Chen.processor_loads a and lb = Chen.processor_loads b in
  close_12 (Chen.total_load a) (Chen.total_load b)
  && close_12 (Chen.energy p3 a) (Chen.energy p3 b)
  && Array.length la = Array.length lb
  && Array.for_all2 close_12 la lb
  &&
  let s = (1.5 *. Chen.probe_speed a 0.0) +. 0.5 in
  close_12 (Chen.probe_load_for_speed a s) (Chen.probe_load_for_speed b s)

let prop_add_load_matches_build =
  QCheck.Test.make ~name:"add_load = build on the extended load list"
    ~count:500
    QCheck.(pair arb_loads (float_range 0.01 10.0))
    (fun ((m, l, loads), z) ->
      let incr = Chen.add_load (build ~m ~l loads) (List.length loads, z) in
      let full =
        Chen.build ~machines:m ~length:l
          ((List.length loads, z) :: List.mapi (fun i w -> (i, w)) loads)
      in
      same_problem incr full)

let prop_rescale_matches_build =
  QCheck.Test.make ~name:"rescale = build on the scaled loads" ~count:500
    QCheck.(triple arb_loads (float_range 0.1 3.0) (float_range 0.1 3.0))
    (fun ((m, l, loads), factor, l') ->
      let scaled = Chen.rescale (build ~m ~l loads) ~length:l' ~factor in
      let full =
        Chen.build ~machines:m ~length:l'
          (List.mapi (fun i w -> (i, w *. factor)) loads)
      in
      same_problem scaled full)

(* ------------------------------------------------------------------ *)
(* Slices (McNaughton realization)                                     *)
(* ------------------------------------------------------------------ *)

let slices_work_per_job slices =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Schedule.slice) ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl s.job) in
      Hashtbl.replace tbl s.job (prev +. ((s.t1 -. s.t0) *. s.speed)))
    slices;
  tbl

let no_overlap key_of slices =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (s : Schedule.slice) ->
      let k = key_of s in
      Hashtbl.replace groups k
        (s :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
    slices;
  Hashtbl.fold
    (fun _ group acc ->
      acc
      &&
      let sorted =
        List.sort
          (fun (a : Schedule.slice) b -> Float.compare a.t0 b.t0)
          group
      in
      let rec ok = function
        | (a : Schedule.slice) :: (b :: _ as rest) ->
          b.t0 >= a.t1 -. 1e-9 && ok rest
        | _ -> true
      in
      ok sorted)
    groups true

let prop_slices_realize_loads =
  QCheck.Test.make ~name:"slices process exactly each job's load" ~count:400
    arb_loads (fun (m, l, loads) ->
      let t = build ~m ~l loads in
      let slices = Chen.slices t ~t0:1.0 ~t1:(1.0 +. l) in
      let work = slices_work_per_job slices in
      List.for_all
        (fun (i, w) ->
          if w <= 0.0 then true
          else
            Feq.approx ~atol:1e-6 ~rtol:1e-6 w
              (Option.value ~default:0.0 (Hashtbl.find_opt work i)))
        (List.mapi (fun i w -> (i, w)) loads))

let prop_slices_no_overlap =
  QCheck.Test.make ~name:"slices overlap-free per processor and per job"
    ~count:400 arb_loads (fun (m, l, loads) ->
      let t = build ~m ~l loads in
      let slices = Chen.slices t ~t0:0.0 ~t1:l in
      no_overlap (fun s -> s.Schedule.proc) slices
      && no_overlap (fun s -> s.Schedule.job) slices
      && List.for_all
           (fun (s : Schedule.slice) ->
             s.proc >= 0 && s.proc < m && s.t0 >= -1e-9 && s.t1 <= l +. 1e-9)
           slices)

let prop_slices_energy_matches_pk =
  QCheck.Test.make ~name:"slice energy equals P_k" ~count:400 arb_loads
    (fun (m, l, loads) ->
      let t = build ~m ~l loads in
      let slices = Chen.slices t ~t0:0.0 ~t1:l in
      let e =
        Ksum.sum_by
          (fun (s : Schedule.slice) ->
            Power.energy p3 ~speed:s.speed ~duration:(s.t1 -. s.t0))
          slices
      in
      Feq.approx ~atol:1e-6 ~rtol:1e-6 e (Chen.energy p3 t))

(* Regression: accumulated rounding in the McNaughton wrap once pushed the
   cursor past the last pool processor ("slice processor out of range").
   Many equal pool jobs with non-representable durations exercise it. *)
let test_mcnaughton_float_spill () =
  List.iter
    (fun (m, n, l) ->
      let loads = List.init n (fun i -> (i, 1.0 /. 3.0)) in
      let t = Chen.build ~machines:m ~length:l loads in
      let slices = Chen.slices t ~t0:0.0 ~t1:l in
      List.iter
        (fun (s : Schedule.slice) ->
          Alcotest.(check bool) "processor in range" true
            (s.proc >= 0 && s.proc < m))
        slices;
      (* work preserved for every job *)
      let work = slices_work_per_job slices in
      List.iter
        (fun (i, w) ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "work of job %d" i)
            w
            (Option.value ~default:0.0 (Hashtbl.find_opt work i)))
        (List.mapi (fun i w -> (i, snd w)) (List.map (fun x -> x) loads)))
    [ (4, 12, 0.3); (2, 9, 0.7); (3, 17, 1.0 /. 7.0); (1, 5, 0.1) ]

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "chen"
    [
      ( "partition",
        [
          Alcotest.test_case "few jobs all dedicated" `Quick
            test_all_dedicated_when_few_jobs;
          Alcotest.test_case "single processor" `Quick
            test_single_processor_pools_everything;
          Alcotest.test_case "big job dedicated" `Quick test_big_job_dedicated;
          Alcotest.test_case "balanced all pool" `Quick
            test_balanced_jobs_all_pool;
          Alcotest.test_case "zero loads dropped" `Quick test_zero_loads_dropped;
          Alcotest.test_case "length scaling" `Quick test_interval_length_scaling;
          q prop_partition_invariants;
          q prop_work_conservation;
          q prop_energy_matches_processor_loads;
          q prop_energy_not_worse_than_naive;
          q prop_pk_convex;
        ] );
      ( "gradient",
        [ q prop_gradient_matches_fd ] );
      ( "arrival",
        [ q prop_arrival_monotonicity ] );
      ( "probe",
        [
          Alcotest.test_case "probe at zero" `Quick test_probe_speed_zero;
          Alcotest.test_case "probe grows" `Quick test_probe_speed_grows;
          Alcotest.test_case "load for speed" `Quick
            test_probe_load_for_speed_examples;
          Alcotest.test_case "unreachable speed" `Quick
            test_probe_below_current_speed;
          q prop_probe_roundtrip;
          q prop_probe_speed_monotone;
          q prop_marginal_power_is_min_gradient;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "breakpoints on empty interval" `Quick
            test_breakpoints_empty_interval;
          q prop_breakpoints_piecewise_affine;
          q prop_add_load_matches_build;
          q prop_rescale_matches_build;
        ] );
      ( "slices",
        [
          Alcotest.test_case "mcnaughton float spill" `Quick
            test_mcnaughton_float_spill;
          q prop_slices_realize_loads;
          q prop_slices_no_overlap;
          q prop_slices_energy_matches_pk;
        ] );
    ]
