(* Smoke test for the umbrella namespace: the README's 30-second tour,
   written against [Speedscale] only. *)

open Speedscale

let test_readme_tour () =
  let power = Power.make 3.0 in
  let jobs =
    [
      Job.make ~id:0 ~release:0.0 ~deadline:2.0 ~workload:2.0 ~value:50.0;
      Job.make ~id:1 ~release:0.5 ~deadline:1.5 ~workload:3.0 ~value:0.8;
    ]
  in
  let inst = Instance.make ~power ~machines:2 jobs in
  let r = Pd.run inst in
  Alcotest.(check bool) "theorem 3" true
    (Cost.total r.cost <= r.guarantee *. r.dual_bound +. 1e-9);
  (match Schedule.validate inst r.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" e);
  (* a few umbrella modules are reachable and consistent *)
  let a = Analysis.analyze inst r in
  Alcotest.(check bool) "analysis" true a.theorem3_ok;
  let run = Executor.replay inst r.schedule in
  Alcotest.(check bool) "replay energy" true
    (Float.abs (run.total_energy -. r.cost.energy) <= 1e-6);
  let st = Structure.of_schedule r.schedule in
  Alcotest.(check bool) "structure" true (st.busy_time > 0.0);
  Alcotest.(check bool) "gantt renders" true
    (String.length (Gantt.render r.schedule) > 0)

let test_umbrella_io_roundtrip () =
  let inst =
    Instance.make ~power:(Power.make 2.0) ~machines:1
      [ Job.make ~id:0 ~release:0.0 ~deadline:1.0 ~workload:1.0 ~value:2.0 ]
  in
  let inst' = Io.of_string (Io.to_string inst) in
  Alcotest.(check int) "jobs" 1 (Instance.n_jobs inst')

let () =
  Alcotest.run "umbrella"
    [
      ( "speedscale",
        [
          Alcotest.test_case "readme tour" `Quick test_readme_tour;
          Alcotest.test_case "io" `Quick test_umbrella_io_roundtrip;
        ] );
    ]
